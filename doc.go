// Package repro is a from-scratch Go reproduction of Starlinger, Brancotte,
// Cohen-Boulakia and Leser, "Similarity Search for Scientific Workflows"
// (PVLDB 7(12):1143–1154, VLDB 2014).
//
// The library decomposes scientific-workflow comparison into the paper's
// explicit subtasks — pairwise module comparison, module mapping, topological
// comparison, normalization — and implements every measure the paper
// evaluates (Module Sets, Path Sets, Graph Edit Distance, Bag of Words, Bag
// of Tags, ensembles) plus the repository-knowledge refinements (type
// equivalence preselection, importance projection).
//
// Use the public API in repro/pkg/wfsim: the Engine facade wraps the
// internal packages behind context-aware Search/Compare/Duplicates/Cluster
// methods, and its measure registry resolves the paper's notation (e.g.
// "MS_ip_te_pll", "ensemble(BW, MS_plm)") into configured measures. See
// README.md for a quickstart.
//
// The benchmark harness in bench_test.go regenerates each figure of the
// paper's evaluation; the cmd/wfbench command prints them as text tables.
package repro
