// Package repro is a from-scratch Go reproduction of Starlinger, Brancotte,
// Cohen-Boulakia and Leser, "Similarity Search for Scientific Workflows"
// (PVLDB 7(12):1143–1154, VLDB 2014).
//
// The library decomposes scientific-workflow comparison into the paper's
// explicit subtasks — pairwise module comparison, module mapping, topological
// comparison, normalization — and implements every measure the paper
// evaluates (Module Sets, Path Sets, Graph Edit Distance, Bag of Words, Bag
// of Tags, ensembles) plus the repository-knowledge refinements (type
// equivalence preselection, importance projection).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitution notes, and EXPERIMENTS.md for the paper-vs-measured record of
// every figure. The benchmark harness in bench_test.go regenerates each
// figure; the cmd/wfbench command prints them as text tables.
package repro
