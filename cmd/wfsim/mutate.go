package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/pkg/wfsim"
)

// cmdAdd applies an AddWorkflow mutation batch to a corpus: each input file
// is parsed, the whole batch commits transactionally through Engine.Apply
// (so one bad file leaves the corpus untouched), and the mutated corpus is
// written back. This is the living-repository ingest path — the corpus
// equivalent of a new workflow being uploaded to myExperiment.
func cmdAdd(args []string) error {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	format := fs.String("format", "t2flow", "input format: t2flow or galaxy")
	out := fs.String("out", "", "output corpus file (default: overwrite -corpus)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("add: no input files given")
	}

	eng, err := newEngine(*corpusPath)
	if err != nil {
		return err
	}
	muts := make([]wfsim.Mutation, 0, fs.NArg())
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var wf *wfsim.Workflow
		switch *format {
		case "t2flow":
			wf, err = wfsim.ParseT2Flow(f)
		case "galaxy":
			wf, err = wfsim.ParseGalaxy(f)
		default:
			f.Close() //wfsimvet:ignore errpath read-only handle; the unknown-format error wins
			return fmt.Errorf("add: unknown format %q", *format)
		}
		f.Close() //wfsimvet:ignore errpath read-only handle; no buffered writes to lose
		if err != nil {
			return fmt.Errorf("add %s: %w", filepath.Base(path), err)
		}
		muts = append(muts, wfsim.AddWorkflow(wf))
	}
	gen, err := eng.Apply(context.Background(), muts...)
	if err != nil {
		return err
	}
	target := *out
	if target == "" {
		target = *corpusPath
	}
	if err := eng.Repository().SaveFile(target); err != nil {
		return err
	}
	fmt.Printf("added %d workflows: %d total at generation %d, written to %s\n",
		len(muts), eng.Repository().Size(), gen, target)
	return nil
}

// cmdRm applies a RemoveWorkflow mutation batch to a corpus and writes the
// result back; unknown IDs fail the whole batch.
func cmdRm(args []string) error {
	fs := flag.NewFlagSet("rm", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	ids := fs.String("ids", "", "comma-separated workflow IDs to remove")
	out := fs.String("out", "", "output corpus file (default: overwrite -corpus)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ids == "" {
		return fmt.Errorf("rm: no -ids given")
	}

	eng, err := newEngine(*corpusPath)
	if err != nil {
		return err
	}
	var muts []wfsim.Mutation
	for _, id := range strings.Split(*ids, ",") {
		muts = append(muts, wfsim.RemoveWorkflow(strings.TrimSpace(id)))
	}
	gen, err := eng.Apply(context.Background(), muts...)
	if err != nil {
		return err
	}
	target := *out
	if target == "" {
		target = *corpusPath
	}
	if err := eng.Repository().SaveFile(target); err != nil {
		return err
	}
	fmt.Printf("removed %d workflows: %d remain at generation %d, written to %s\n",
		len(muts), eng.Repository().Size(), gen, target)
	return nil
}
