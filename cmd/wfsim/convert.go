package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/pkg/wfsim"
)

// cmdImport converts external workflow files (Taverna-style XML, Galaxy .ga
// JSON) into a corpus file, inlining nested subworkflows that are resolvable
// within the imported set — the paper's corpus preparation pipeline.
func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	format := fs.String("format", "t2flow", "input format: t2flow or galaxy")
	out := fs.String("out", "corpus.json", "output corpus file")
	inline := fs.Bool("inline", true, "inline nested subworkflows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("import: no input files given")
	}

	var wfs []*wfsim.Workflow
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var wf *wfsim.Workflow
		switch *format {
		case "t2flow":
			wf, err = wfsim.ParseT2Flow(f)
		case "galaxy":
			wf, err = wfsim.ParseGalaxy(f)
		default:
			f.Close() //wfsimvet:ignore errpath read-only handle; the unknown-format error wins
			return fmt.Errorf("import: unknown format %q", *format)
		}
		f.Close() //wfsimvet:ignore errpath read-only handle; no buffered writes to lose
		if err != nil {
			return fmt.Errorf("import %s: %w", filepath.Base(path), err)
		}
		wfs = append(wfs, wf)
	}

	if *inline {
		byID := map[string]*wfsim.Workflow{}
		for _, wf := range wfs {
			byID[wf.ID] = wf
		}
		resolve := func(m *wfsim.Module) *wfsim.Workflow {
			return byID[m.Params["dataflow"]]
		}
		for i, wf := range wfs {
			wfs[i] = wf.Inline(resolve, 0)
		}
	}

	repo, err := wfsim.NewRepository(wfs...)
	if err != nil {
		return err
	}
	if err := repo.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("imported %d workflows (%s) into %s\n", repo.Size(), *format, *out)
	return nil
}

// cmdExport writes workflows from a corpus into external formats, one file
// per workflow.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	format := fs.String("format", "t2flow", "output format: t2flow or galaxy")
	dir := fs.String("dir", ".", "output directory")
	ids := fs.String("ids", "", "comma-separated workflow IDs (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	repo, err := wfsim.LoadRepository(*corpusPath)
	if err != nil {
		return err
	}
	var selected []*wfsim.Workflow
	if *ids == "" {
		selected = repo.Workflows()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			wf := repo.Get(strings.TrimSpace(id))
			if wf == nil {
				return fmt.Errorf("export: workflow %q not found", id)
			}
			selected = append(selected, wf)
		}
	}
	ext := ".xml"
	if *format == "galaxy" {
		ext = ".ga"
	}
	for _, wf := range selected {
		path := filepath.Join(*dir, wf.ID+ext)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		switch *format {
		case "t2flow":
			err = wfsim.WriteT2Flow(f, wf)
		case "galaxy":
			err = wfsim.WriteGalaxy(f, wf)
		default:
			f.Close() //wfsimvet:ignore errpath nothing was written on this branch; the unknown-format error wins
			return fmt.Errorf("export: unknown format %q", *format)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("export %s: %w", wf.ID, err)
		}
	}
	fmt.Printf("exported %d workflows (%s) into %s\n", len(selected), *format, *dir)
	return nil
}

// cmdCluster groups a repository into functional clusters using a
// similarity measure — the clustering use case of the paper's introduction.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	measureName := fs.String("measure", "", "measure name (default MS_ip_te_pll)")
	minSim := fs.Float64("minsim", 0.5, "minimum average linkage similarity")
	method := fs.String("method", "agglomerative", "clustering method: agglomerative or components")
	limit := fs.Int("limit", 10, "max clusters to print")
	timeout := fs.Duration("timeout", 0, "whole-clustering deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng, err := newEngine(*corpusPath)
	if err != nil {
		return err
	}
	var single bool
	switch *method {
	case "agglomerative":
	case "components":
		single = true
	default:
		return fmt.Errorf("cluster: unknown method %q", *method)
	}
	ctx, cancel := contextFor(*timeout)
	defer cancel()
	t0 := time.Now()
	res, err := eng.Cluster(ctx, wfsim.ClusterOptions{
		Measure:       *measureName,
		MinSimilarity: minSim,
		SingleLinkage: single,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d clusters over %d workflows (%s, minsim %.2f, %d pairs skipped, %v)\n",
		len(res.Clusters), eng.Repository().Size(), res.Measure, *minSim, res.Skipped, time.Since(t0).Round(time.Millisecond))
	for k, members := range res.Clusters {
		if k >= *limit {
			fmt.Printf("... and %d more clusters\n", len(res.Clusters)-*limit)
			break
		}
		fmt.Printf("cluster %d (%d workflows):", k, len(members))
		for i, id := range members {
			if i >= 6 {
				fmt.Printf(" +%d more", len(members)-6)
				break
			}
			fmt.Printf(" %s", id)
		}
		fmt.Println()
	}
	return nil
}
