package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/pkg/wfsim"
)

// cmdRank ranks a set of candidate workflows against a query workflow under
// one or more measures, and — when several measures are given — aggregates
// their rankings into a BioConsert consensus, mirroring how the paper
// aggregates expert rankings.
func cmdRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	query := fs.String("query", "", "query workflow ID")
	cands := fs.String("candidates", "", "comma-separated candidate workflow IDs")
	measureNames := fs.String("measures", "BW,MS_ip_te_pll", "comma-separated measure names")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng, err := newEngine(*corpusPath)
	if err != nil {
		return err
	}
	q := eng.Workflow(*query)
	if q == nil {
		return fmt.Errorf("rank: query workflow %q not found", *query)
	}
	var candidates []string
	for _, id := range strings.Split(*cands, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if eng.Workflow(id) == nil {
			return fmt.Errorf("rank: candidate %q not found", id)
		}
		candidates = append(candidates, id)
	}
	if len(candidates) < 2 {
		return fmt.Errorf("rank: need at least two candidates")
	}

	var names []string
	for _, name := range strings.Split(*measureNames, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}

	var rankings []wfsim.Ranking
	var canonical []string
	for _, name := range names {
		m, err := eng.ParseMeasure(name)
		if err != nil {
			return err
		}
		scores := map[string]float64{}
		for _, id := range candidates {
			s, err := m.Compare(q, eng.Workflow(id))
			if err != nil {
				fmt.Printf("%-20s skipping %s: %v\n", m.Name(), id, err)
				continue
			}
			scores[id] = s
		}
		r := wfsim.RankingFromScores(scores, 1e-9)
		rankings = append(rankings, r)
		canonical = append(canonical, m.Name())
		fmt.Printf("%-20s %s\n", m.Name(), r)
	}
	if len(rankings) > 1 {
		consensus := wfsim.ConsensusRanking(rankings)
		fmt.Printf("%-20s %s\n", "consensus", consensus)
		for i, label := range canonical {
			fmt.Printf("  correctness(%s vs consensus) = %.3f\n",
				label, wfsim.RankingCorrectness(consensus, rankings[i]))
		}
	}
	return nil
}
