// Command wfsim is the user-facing CLI of the workflow similarity library:
// it generates corpora, compares workflow pairs under any measure
// configuration, runs top-k similarity search, and ranks candidate lists.
//
// Usage:
//
//	wfsim gen    -profile taverna|galaxy -seed N -out corpus.json
//	wfsim compare -corpus corpus.json -a ID -b ID [-measure NAME]
//	wfsim search -corpus corpus.json -query ID [-measure NAME] [-k 10]
//	wfsim dupes  -corpus corpus.json [-measure NAME] [-threshold 0.95]
//
// Measure names follow the paper's notation: BW, BT, or
// {MS|PS|GE}_{np|ip}_{ta|tm|te}_{pw0|pw3|pll|plm|gw1|gll},
// e.g. MS_ip_te_pll (the paper's best structural configuration).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/repoknow"
	"repro/internal/search"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "dupes":
		err = cmdDupes(os.Args[2:])
	case "import":
		err = cmdImport(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "rank":
		err = cmdRank(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: wfsim <gen|compare|search|dupes|import|export|cluster> [flags]
  gen     -profile taverna|galaxy -seed N -out corpus.json
  compare -corpus corpus.json -a ID -b ID [-measure MS_ip_te_pll]
  search  -corpus corpus.json -query ID [-measure MS_ip_te_pll] [-k 10]
  dupes   -corpus corpus.json [-measure MS_np_ta_pll] [-threshold 0.95]
  import  -format t2flow|galaxy -out corpus.json file...
  export  -corpus corpus.json -format t2flow|galaxy -dir DIR [-ids 1,2]
  cluster -corpus corpus.json [-measure MS_ip_te_pll] [-minsim 0.5]
  rank    -corpus corpus.json -query ID -candidates 1,2,3 [-measures BW,MS_ip_te_pll]`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	profile := fs.String("profile", "taverna", "corpus profile: taverna or galaxy")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "corpus.json", "output file")
	n := fs.Int("n", 0, "override workflow count (0 = profile default)")
	fs.Parse(args)

	var p gen.Profile
	switch *profile {
	case "taverna":
		p = gen.Taverna()
	case "galaxy":
		p = gen.Galaxy()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	if *n > 0 {
		p.Workflows = *n
		if p.Clusters > *n {
			p.Clusters = *n
		}
	}
	c, err := gen.Generate(p, *seed)
	if err != nil {
		return err
	}
	if err := c.Repo.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s workflows to %s\n", c.Repo.Size(), p.Name, *out)
	return nil
}

// parseMeasure resolves a measure name in the paper's notation, wiring in a
// shared importance projector and a generous interactive GED budget.
func parseMeasure(name string) (measures.Measure, error) {
	return measures.Parse(name, measures.ParseOptions{
		Project:      repoknow.NewProjector(repoknow.TypeScorer{}, 0.5).Project,
		GEDDeadline:  5 * time.Second,
		GEDBeamWidth: 64,
	})
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	a := fs.String("a", "", "first workflow ID")
	b := fs.String("b", "", "second workflow ID")
	measureName := fs.String("measure", "", "measure name (default: a representative set)")
	fs.Parse(args)

	repo, err := corpus.LoadFile(*corpusPath)
	if err != nil {
		return err
	}
	wa, wb := repo.Get(*a), repo.Get(*b)
	if wa == nil || wb == nil {
		return fmt.Errorf("workflow %q or %q not found", *a, *b)
	}
	names := []string{"BW", "BT", "MS_np_ta_pll", "MS_ip_te_pll", "PS_ip_te_pll", "GE_ip_te_pll"}
	if *measureName != "" {
		names = []string{*measureName}
	}
	fmt.Printf("%s (%d modules) vs %s (%d modules)\n", wa.ID, wa.Size(), wb.ID, wb.Size())
	for _, n := range names {
		m, err := parseMeasure(n)
		if err != nil {
			return err
		}
		s, err := m.Compare(wa, wb)
		if err != nil {
			fmt.Printf("  %-16s error: %v\n", m.Name(), err)
			continue
		}
		fmt.Printf("  %-16s %.4f\n", m.Name(), s)
	}
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	query := fs.String("query", "", "query workflow ID")
	measureName := fs.String("measure", "MS_ip_te_pll", "measure name")
	k := fs.Int("k", 10, "number of results")
	fs.Parse(args)

	repo, err := corpus.LoadFile(*corpusPath)
	if err != nil {
		return err
	}
	q := repo.Get(*query)
	if q == nil {
		return fmt.Errorf("query workflow %q not found", *query)
	}
	m, err := parseMeasure(*measureName)
	if err != nil {
		return err
	}
	t0 := time.Now()
	results, skipped := search.TopK(q, repo, m, search.Options{K: *k})
	fmt.Printf("top-%d for %q (%s) over %d workflows in %v (%d pairs skipped)\n",
		*k, q.ID, q.Annotations.Title, repo.Size(), time.Since(t0).Round(time.Millisecond), skipped)
	for i, r := range results {
		wf := repo.Get(r.ID)
		fmt.Printf("%2d. %-8s %.4f  %s\n", i+1, r.ID, r.Similarity, wf.Annotations.Title)
	}
	return nil
}

func cmdDupes(args []string) error {
	fs := flag.NewFlagSet("dupes", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	measureName := fs.String("measure", "MS_np_ta_pll", "measure name")
	threshold := fs.Float64("threshold", 0.95, "duplicate similarity threshold")
	limit := fs.Int("limit", 25, "max pairs to print")
	fs.Parse(args)

	repo, err := corpus.LoadFile(*corpusPath)
	if err != nil {
		return err
	}
	m, err := parseMeasure(*measureName)
	if err != nil {
		return err
	}
	t0 := time.Now()
	pairs := search.Duplicates(repo, m, *threshold, 0)
	fmt.Printf("%d near-duplicate pairs (>= %.2f under %s) among %d workflows in %v\n",
		len(pairs), *threshold, m.Name(), repo.Size(), time.Since(t0).Round(time.Millisecond))
	for i, p := range pairs {
		if i >= *limit {
			fmt.Printf("... and %d more\n", len(pairs)-*limit)
			break
		}
		fmt.Printf("  %-8s %-8s %.4f\n", p.A, p.B, p.Similarity)
	}
	return nil
}
