// Command wfsim is the user-facing CLI of the workflow similarity library:
// it generates corpora, compares workflow pairs under any measure
// configuration, runs top-k similarity search, and ranks candidate lists.
// It is built entirely on the public Engine facade of repro/pkg/wfsim.
//
// Usage:
//
//	wfsim gen     -profile taverna|galaxy -seed N -out corpus.json
//	wfsim compare -corpus corpus.json -a ID -b ID [-measure NAME]
//	wfsim search  -corpus corpus.json -query ID [-measure NAME] [-k 10]
//	wfsim dupes   -corpus corpus.json [-measure NAME] [-threshold 0.95]
//	wfsim measures
//
// Measure names follow the paper's notation: BW, BT, or
// {MS|PS|GE}_{np|ip}_{ta|tm|te}_{pw0|pw3|pll|plm|gw1|gll},
// e.g. MS_ip_te_pll (the paper's best structural configuration), plus
// shorthand like MS_plm and ensembles like "ensemble(BW,MS_ip_te_pll)".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/pkg/wfsim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "dupes":
		err = cmdDupes(os.Args[2:])
	case "add":
		err = cmdAdd(os.Args[2:])
	case "rm":
		err = cmdRm(os.Args[2:])
	case "import":
		err = cmdImport(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "rank":
		err = cmdRank(os.Args[2:])
	case "measures":
		err = cmdMeasures(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: wfsim <gen|compare|search|dupes|add|rm|import|export|cluster|rank|measures> [flags]
  gen      -profile taverna|galaxy -seed N -out corpus.json
  compare  -corpus corpus.json -a ID -b ID [-measure MS_ip_te_pll]
  search   -corpus corpus.json -query ID [-measure MS_ip_te_pll] [-k 10] [-timeout 30s]
           [-index] [-min-shared 1] [-cache 0] [-repeat 1]
  dupes    -corpus corpus.json [-measure MS_np_ta_pll] [-threshold 0.95] [-cache 0] [-repeat 1]
  add      -corpus corpus.json [-format t2flow|galaxy] [-out corpus.json] file...
  rm       -corpus corpus.json -ids 1,2 [-out corpus.json]
  import   -format t2flow|galaxy -out corpus.json file...
  export   -corpus corpus.json -format t2flow|galaxy -dir DIR [-ids 1,2]
  cluster  -corpus corpus.json [-measure MS_ip_te_pll] [-minsim 0.5]
  rank     -corpus corpus.json -query ID -candidates 1,2,3 [-measures BW,MS_ip_te_pll]
  measures`)
}

// newEngine loads a corpus and builds an Engine with the CLI's interactive
// defaults.
func newEngine(corpusPath string, opts ...wfsim.Option) (*wfsim.Engine, error) {
	repo, err := wfsim.LoadRepository(corpusPath)
	if err != nil {
		return nil, err
	}
	return wfsim.New(repo, opts...)
}

// contextFor returns a context honoring an optional -timeout flag value.
func contextFor(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	profile := fs.String("profile", "taverna", "corpus profile: taverna or galaxy")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "corpus.json", "output file")
	n := fs.Int("n", 0, "override workflow count (0 = profile default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p wfsim.Profile
	switch *profile {
	case "taverna":
		p = wfsim.TavernaProfile()
	case "galaxy":
		p = wfsim.GalaxyProfile()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	if *n > 0 {
		p.Workflows = *n
		if p.Clusters > *n {
			p.Clusters = *n
		}
	}
	c, err := wfsim.GenerateCorpus(p, *seed)
	if err != nil {
		return err
	}
	if err := c.Repo.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s workflows to %s\n", c.Repo.Size(), p.Name, *out)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	a := fs.String("a", "", "first workflow ID")
	b := fs.String("b", "", "second workflow ID")
	measureName := fs.String("measure", "", "measure name (default: a representative set)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng, err := newEngine(*corpusPath)
	if err != nil {
		return err
	}
	wa, wb := eng.Workflow(*a), eng.Workflow(*b)
	if wa == nil || wb == nil {
		return fmt.Errorf("workflow %q or %q not found", *a, *b)
	}
	var names []string
	if *measureName != "" {
		names = []string{*measureName}
	}
	scores, err := eng.Compare(context.Background(), wa, wb, names...)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d modules) vs %s (%d modules)\n", wa.ID, wa.Size(), wb.ID, wb.Size())
	for _, s := range scores {
		if s.Err != nil {
			fmt.Printf("  %-16s error: %v\n", s.Measure, s.Err)
			continue
		}
		fmt.Printf("  %-16s %.4f\n", s.Measure, s.Similarity)
	}
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	query := fs.String("query", "", "query workflow ID")
	measureName := fs.String("measure", "", "measure name (default MS_ip_te_pll)")
	k := fs.Int("k", 10, "number of results")
	timeout := fs.Duration("timeout", 0, "whole-search deadline (0 = none)")
	useIndex := fs.Bool("index", false, "filter-and-refine via the inverted label index")
	minShared := fs.Int("min-shared", 1, "index filter knob: min shared canonical labels (implies -index when > 1)")
	cacheSize := fs.Int("cache", 0, "pairwise score cache capacity (0 = no cache)")
	repeat := fs.Int("repeat", 1, "run the search N times (shows cache warm-up)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []wfsim.Option
	if *useIndex || *minShared > 1 {
		opts = append(opts, wfsim.WithIndex(*minShared))
	}
	if *cacheSize > 0 {
		opts = append(opts, wfsim.WithScoreCache(*cacheSize))
	}
	eng, err := newEngine(*corpusPath, opts...)
	if err != nil {
		return err
	}
	ctx, cancel := contextFor(*timeout)
	defer cancel()
	var results []wfsim.Result
	var stats wfsim.Stats
	for i := 0; i < *repeat || i == 0; i++ {
		results, stats, err = eng.SearchID(ctx, *query, wfsim.SearchOptions{Measure: *measureName, K: *k})
		if err != nil {
			return err
		}
	}
	q := eng.Workflow(*query)
	fmt.Printf("top-%d for %q (%s) by %s: scored %d, pruned %d, skipped %d in %v (gen %d)\n",
		*k, q.ID, q.Annotations.Title, stats.Measure,
		stats.Scored, stats.Pruned, stats.Skipped, stats.Elapsed.Round(time.Millisecond), stats.Generation)
	if *cacheSize > 0 {
		fmt.Printf("score cache: %d hits, %d misses this call; %d hits, %d misses, %d entries total\n",
			stats.CacheHits, stats.CacheMisses,
			eng.CacheStats().Hits, eng.CacheStats().Misses, eng.CacheStats().Entries)
	}
	for i, r := range results {
		wf := eng.Workflow(r.ID)
		fmt.Printf("%2d. %-8s %.4f  %s\n", i+1, r.ID, r.Similarity, wf.Annotations.Title)
	}
	return nil
}

func cmdDupes(args []string) error {
	fs := flag.NewFlagSet("dupes", flag.ExitOnError)
	corpusPath := fs.String("corpus", "corpus.json", "corpus file")
	measureName := fs.String("measure", "MS_np_ta_pll", "measure name")
	threshold := fs.Float64("threshold", 0.95, "duplicate similarity threshold")
	limit := fs.Int("limit", 25, "max pairs to print")
	timeout := fs.Duration("timeout", 0, "whole-scan deadline (0 = none)")
	cacheSize := fs.Int("cache", 0, "pairwise score cache capacity (0 = no cache)")
	repeat := fs.Int("repeat", 1, "run the scan N times (shows cache warm-up)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []wfsim.Option
	if *cacheSize > 0 {
		opts = append(opts, wfsim.WithScoreCache(*cacheSize))
	}
	eng, err := newEngine(*corpusPath, opts...)
	if err != nil {
		return err
	}
	ctx, cancel := contextFor(*timeout)
	defer cancel()
	var pairs []wfsim.Pair
	var stats wfsim.Stats
	for i := 0; i < *repeat || i == 0; i++ {
		pairs, stats, err = eng.Duplicates(ctx, *threshold, wfsim.DuplicateOptions{Measure: *measureName})
		if err != nil {
			return err
		}
	}
	fmt.Printf("%d near-duplicate pairs (>= %.2f under %s) among %d workflows in %v (%d pairs skipped)\n",
		len(pairs), *threshold, stats.Measure, eng.Repository().Size(), stats.Elapsed.Round(time.Millisecond), stats.Skipped)
	if *cacheSize > 0 {
		fmt.Printf("score cache: %d hits, %d misses on the last scan\n", stats.CacheHits, stats.CacheMisses)
	}
	for i, p := range pairs {
		if i >= *limit {
			fmt.Printf("... and %d more\n", len(pairs)-*limit)
			break
		}
		fmt.Printf("  %-8s %-8s %.4f\n", p.A, p.B, p.Similarity)
	}
	return nil
}

// cmdMeasures lists the measure notation the registry resolves.
func cmdMeasures(args []string) error {
	fs := flag.NewFlagSet("measures", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := wfsim.NewRegistry()
	fmt.Println("annotation and structural measures (paper notation):")
	for _, name := range reg.Builtin() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println(`suffixes: _greedy (greedy module mapping), _nonorm (no normalization)
shorthand: missing np/ip defaults to np, missing ta/tm/te to ta (MS_plm = MS_np_ta_plm)
ensembles: ENS(BW+MS_ip_te_pll) or ensemble(BW, MS_ip_te_pll), arbitrarily nested`)
	return nil
}
