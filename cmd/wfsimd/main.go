// Command wfsimd is the long-lived workflow-similarity service: an HTTP/JSON
// front-end over the wfsim Engine that serves searches, comparisons,
// duplicate detection, clustering and transactional mutation batches to many
// concurrent clients. It is built entirely on the public packages
// repro/pkg/wfsim and repro/pkg/wfsim/serve.
//
// Usage:
//
//	wfsimd [-addr :8080] [-corpus corpus.json] [-data DIR] [-shards N]
//	       [-index] [-min-shared 1] [-cache 65536] [-repoknow]
//	       [-threshold 0.5] [-measure NAME] [-concurrency N]
//	       [-default-deadline 30s] [-max-deadline 2m]
//	       [-compact-bytes N] [-compact-records N]
//
// Without -corpus the service starts over an empty repository and is
// populated through POST /v1/workflows:batch. With -data the repository is
// durable: every committed batch is written to an append-only mutation log
// in DIR before it is applied, the log is periodically compacted into
// snapshots, and a restart recovers the corpus to the last committed
// generation (replaying the log tail, tolerating a torn final record).
// -corpus may only be combined with a -data directory that holds no state
// yet; the preload then becomes the baseline snapshot.
//
// With -shards N (N > 1) the corpus is partitioned across N in-process
// shards by consistent-hashed workflow ID: mutation batches commit
// all-or-nothing across the touched shards, reads scatter-gather with
// per-shard generation vectors stamped into every response, and a -data
// directory holds one subdirectory per shard. A sharded data directory
// records its shard count and refuses to reopen under a different -shards
// value. See the package documentation of repro/pkg/wfsim/serve for the
// endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/wfsim"
	"repro/pkg/wfsim/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "wfsimd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wfsimd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	corpusPath := fs.String("corpus", "", "corpus JSON to serve (empty repository when omitted)")
	dataDir := fs.String("data", "", "data directory for durable storage (RAM-only when omitted)")
	shards := fs.Int("shards", 1, "partition the corpus across N in-process shards (1 = single engine)")
	compactBytes := fs.Int64("compact-bytes", 0, "compact the mutation log past this many bytes (0 = default 8 MiB)")
	compactRecords := fs.Int("compact-records", 0, "compact the mutation log past this many records (0 = default 4096)")
	useIndex := fs.Bool("index", false, "enable filter-and-refine inverted-index acceleration")
	minShared := fs.Int("min-shared", 1, "index candidate threshold (shared canonical labels)")
	cacheSize := fs.Int("cache", 1<<16, "pairwise score cache entries (0 disables)")
	repoKnow := fs.Bool("repoknow", false, "derive the importance projection from repository IDF instead of module types")
	threshold := fs.Float64("threshold", 0, "repository-knowledge projection threshold (0 = default)")
	measure := fs.String("measure", "", "default measure in paper notation (empty = library default)")
	concurrency := fs.Int("concurrency", 0, "scoring worker-pool width (0 = GOMAXPROCS)")
	defaultDeadline := fs.Duration("default-deadline", 30*time.Second, "per-request deadline when the client sends none")
	maxDeadline := fs.Duration("max-deadline", 2*time.Minute, "cap on client-requested deadlines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *corpusPath != "" && *dataDir != "" {
		// A preload into a directory that already recovered state would
		// silently double-load (or be shadowed by) the stored corpus;
		// require an explicit choice instead.
		has, err := wfsim.HasStoredState(*dataDir)
		if err != nil {
			return fmt.Errorf("inspect -data directory: %w", err)
		}
		if has {
			return fmt.Errorf("-corpus %s conflicts with -data %s: the data directory already holds a stored corpus; drop -corpus to serve the stored state, or point -data at a fresh directory to preload", *corpusPath, *dataDir)
		}
	}

	var repo *wfsim.Repository
	var err error
	if *corpusPath != "" {
		repo, err = wfsim.LoadRepository(*corpusPath)
		if err != nil {
			return err
		}
	} else {
		repo, err = wfsim.NewRepository()
		if err != nil {
			return err
		}
	}

	var opts []wfsim.Option
	if *shards != 1 {
		// Engine construction validates the count and, with -data, refuses a
		// directory initialised under a different shard count.
		opts = append(opts, wfsim.WithShards(*shards))
	}
	if *dataDir != "" {
		opts = append(opts, wfsim.WithStorage(*dataDir,
			wfsim.StorageCompaction(*compactBytes, *compactRecords),
			wfsim.StorageWarnings(log.Printf),
		))
	}
	if *useIndex {
		opts = append(opts, wfsim.WithIndex(*minShared))
	}
	if *cacheSize > 0 {
		opts = append(opts, wfsim.WithScoreCache(*cacheSize))
	}
	if *repoKnow {
		opts = append(opts, wfsim.WithRepositoryKnowledge(*threshold))
	}
	if *measure != "" {
		opts = append(opts, wfsim.WithDefaultMeasure(*measure))
	}
	if *concurrency > 0 {
		opts = append(opts, wfsim.WithConcurrency(*concurrency))
	}
	eng, err := wfsim.New(repo, opts...)
	if err != nil {
		return err
	}
	if st, ok := eng.StorageStats(); ok {
		log.Printf("wfsimd: recovered %d workflows at generation %d from %s (snapshot gen %d, %d log records replayed, %d warm cache entries)",
			st.Recovery.Workflows, st.Recovery.Generation, st.Dir,
			st.Recovery.SnapshotGeneration, st.Recovery.ReplayedRecords, st.WarmCacheEntries)
	}

	srv := serve.New(eng, serve.Config{
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if n := eng.Shards(); n > 1 {
			log.Printf("wfsimd: serving %d workflows across %d shards (generations %v) on %s", eng.Size(), n, eng.Generations(), *addr)
		} else {
			log.Printf("wfsimd: serving %d workflows (generation %d) on %s", eng.Size(), eng.Generation(), *addr)
		}
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("wfsimd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// In-flight mutations are done (the listener is drained): flush a final
	// snapshot and the warm score cache so the next boot replays nothing.
	if err := eng.Close(); err != nil {
		return fmt.Errorf("flush storage: %w", err)
	}
	return nil
}
