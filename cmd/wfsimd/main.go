// Command wfsimd is the long-lived workflow-similarity service: an HTTP/JSON
// front-end over the wfsim Engine that serves searches, comparisons,
// duplicate detection, clustering and transactional mutation batches to many
// concurrent clients. It is built entirely on the public packages
// repro/pkg/wfsim and repro/pkg/wfsim/serve.
//
// Usage:
//
//	wfsimd [-addr :8080] [-corpus corpus.json] [-index] [-min-shared 1]
//	       [-cache 65536] [-repoknow] [-threshold 0.5] [-measure NAME]
//	       [-concurrency N] [-default-deadline 30s] [-max-deadline 2m]
//
// Without -corpus the service starts over an empty repository and is
// populated through POST /v1/workflows:batch. See the package documentation
// of repro/pkg/wfsim/serve for the endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/wfsim"
	"repro/pkg/wfsim/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "wfsimd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wfsimd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	corpusPath := fs.String("corpus", "", "corpus JSON to serve (empty repository when omitted)")
	useIndex := fs.Bool("index", false, "enable filter-and-refine inverted-index acceleration")
	minShared := fs.Int("min-shared", 1, "index candidate threshold (shared canonical labels)")
	cacheSize := fs.Int("cache", 1<<16, "pairwise score cache entries (0 disables)")
	repoKnow := fs.Bool("repoknow", false, "derive the importance projection from repository IDF instead of module types")
	threshold := fs.Float64("threshold", 0, "repository-knowledge projection threshold (0 = default)")
	measure := fs.String("measure", "", "default measure in paper notation (empty = library default)")
	concurrency := fs.Int("concurrency", 0, "scoring worker-pool width (0 = GOMAXPROCS)")
	defaultDeadline := fs.Duration("default-deadline", 30*time.Second, "per-request deadline when the client sends none")
	maxDeadline := fs.Duration("max-deadline", 2*time.Minute, "cap on client-requested deadlines")
	fs.Parse(args)

	var repo *wfsim.Repository
	var err error
	if *corpusPath != "" {
		repo, err = wfsim.LoadRepository(*corpusPath)
		if err != nil {
			return err
		}
	} else {
		repo, err = wfsim.NewRepository()
		if err != nil {
			return err
		}
	}

	var opts []wfsim.Option
	if *useIndex {
		opts = append(opts, wfsim.WithIndex(*minShared))
	}
	if *cacheSize > 0 {
		opts = append(opts, wfsim.WithScoreCache(*cacheSize))
	}
	if *repoKnow {
		opts = append(opts, wfsim.WithRepositoryKnowledge(*threshold))
	}
	if *measure != "" {
		opts = append(opts, wfsim.WithDefaultMeasure(*measure))
	}
	if *concurrency > 0 {
		opts = append(opts, wfsim.WithConcurrency(*concurrency))
	}
	eng, err := wfsim.New(repo, opts...)
	if err != nil {
		return err
	}

	srv := serve.New(eng, serve.Config{
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("wfsimd: serving %d workflows (generation %d) on %s", repo.Size(), eng.Generation(), *addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("wfsimd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
