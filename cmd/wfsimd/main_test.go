package main

import (
	"context"
	"strings"
	"testing"

	"repro/pkg/wfsim"
)

// seedDataDir commits one workflow into dir so it holds stored state.
func seedDataDir(t *testing.T, dir string) {
	t.Helper()
	repo, err := wfsim.NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := wfsim.New(repo, wfsim.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	w := wfsim.NewWorkflow("seed")
	w.AddModule(&wfsim.Module{Label: "seed_step", Type: wfsim.TypeWSDL})
	if _, err := eng.Apply(context.Background(), wfsim.AddWorkflow(w)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsPreloadIntoStatefulDataDir: -corpus combined with a -data
// directory that already holds a stored corpus must fail fast with a clear
// error instead of double-loading.
func TestRunRejectsPreloadIntoStatefulDataDir(t *testing.T) {
	dir := t.TempDir()
	seedDataDir(t, dir)

	err := run([]string{"-corpus", "whatever.json", "-data", dir, "-addr", "127.0.0.1:0"})
	if err == nil {
		t.Fatal("run accepted -corpus with a stateful -data directory")
	}
	if !strings.Contains(err.Error(), "already holds a stored corpus") {
		t.Fatalf("conflict error %q does not explain the preload conflict", err)
	}
}
