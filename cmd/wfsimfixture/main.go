// Command wfsimfixture writes test data directories for smoke and
// migration testing. Its only mode today is -legacy: populate a data
// directory in the pre-symbol-table storage format (snapshot magic
// wfsimsn1, WAL magic wfsimwl1) holding the standard three-workflow smoke
// fixture, so a server booted over the directory must take the
// re-interning migration path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/storage"
	"repro/internal/workflow"
)

func fixtureWorkflow(id, title string, typ string, labels ...string) *workflow.Workflow {
	w := workflow.New(id)
	w.Annotations.Title = title
	prev := -1
	for i, label := range labels {
		idx := w.AddModule(&workflow.Module{ID: fmt.Sprintf("m%d", i+1), Label: label, Type: typ})
		if prev >= 0 {
			if err := w.AddEdge(prev, idx); err != nil {
				log.Fatalf("fixture %s: %v", id, err)
			}
		}
		prev = idx
	}
	return w
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("wfsimfixture: ")
	dir := flag.String("data", "", "data directory to populate (required)")
	legacy := flag.Bool("legacy", true, "write the pre-symbol-table v1 layout")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !*legacy {
		log.Fatal("only -legacy fixtures are supported")
	}
	if entries, err := os.ReadDir(*dir); err == nil && len(entries) > 0 {
		log.Fatalf("%s is not empty; refusing to overwrite", *dir)
	}

	// The smoke fixture: a and b share a module label, c is unrelated.
	// a and b land in the snapshot; c arrives via a WAL tail record, so a
	// boot exercises legacy decoding of both layouts.
	a := fixtureWorkflow("a", "blast a", workflow.TypeWSDL, "fetch_sequence", "run_blast")
	b := fixtureWorkflow("b", "blast b", workflow.TypeWSDL, "fetch_sequence", "plot_hits")
	c := fixtureWorkflow("c", "imaging", workflow.TypeTool, "load_image", "segment_cells")
	if err := storage.WriteLegacyFixture(*dir, 1, []*workflow.Workflow{a, b}, []*workflow.Workflow{c}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote legacy-format fixture (3 workflows) to %s\n", *dir)
}
