// Command wfbench regenerates every table and figure of the evaluation
// section of Starlinger et al. (PVLDB 2014) on synthetic corpora and prints
// them as text tables. Its output is the source of EXPERIMENTS.md.
//
// Usage:
//
//	wfbench [-scale quick|full] [-seed N] [-only fig5,fig10,...]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/pkg/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "corpus and study generation seed")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	csvDir := flag.String("csv", "", "directory to also write per-figure CSV files into")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
			os.Exit(1)
		}
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "wfbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	start := time.Now()
	fmt.Printf("wfbench: scale=%s seed=%d\n", scale.Name, *seed)
	setup, err := experiments.NewSetup(scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("corpora: taverna=%d galaxy=%d | queries: rank=%d galaxy=%d retrieval=%d | raters=%d | ratings collected=%d (+%d galaxy)\n",
		setup.Taverna.Repo.Size(), setup.Galaxy.Repo.Size(),
		len(setup.Study.Queries), len(setup.GalaxyStudy.Queries), scale.RetrievalQueries,
		len(setup.Panel), setup.Study.RatingsGiven, setup.GalaxyStudy.RatingsGiven)
	fmt.Printf("setup took %v\n\n", time.Since(start).Round(time.Millisecond))

	writeCSV := func(id string, res fmt.Stringer) {
		if *csvDir == "" {
			return
		}
		type csvWriter interface{ WriteCSV(io.Writer) error }
		cw, ok := res.(csvWriter)
		if !ok {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
			return
		}
		defer f.Close()
		if err := cw.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "wfbench: csv %s: %v\n", id, err)
		}
	}

	run := func(id string, f func() fmt.Stringer) {
		if !want(id) {
			return
		}
		t0 := time.Now()
		res := f()
		fmt.Println(res.String())
		writeCSV(id, res)
		fmt.Printf("[%s took %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}

	run("fig4", func() fmt.Stringer { return experiments.Fig4(setup) })
	run("fig5", func() fmt.Stringer { return experiments.Fig5(setup) })
	run("fig6", func() fmt.Stringer { return experiments.Fig6(setup) })
	run("fig7", func() fmt.Stringer { return experiments.Fig7(setup) })
	run("fig8", func() fmt.Stringer { return experiments.Fig8(setup) })
	if want("fig9") {
		t0 := time.Now()
		f9 := experiments.Fig9(setup)
		fmt.Printf("(fig9 swept %d structural configurations)\n", f9.SweepSize)
		fmt.Println(f9.Best.String())
		fmt.Println(f9.Ensembles.String())
		writeCSV("fig9a", f9.Best)
		writeCSV("fig9b", f9.Ensembles)
		fmt.Printf("[fig9 took %v]\n\n", time.Since(t0).Round(time.Millisecond))
	}
	ctx := context.Background()
	run("fig10", func() fmt.Stringer { return experiments.Fig10(ctx, setup) })
	run("fig11", func() fmt.Stringer { return experiments.Fig11(ctx, setup) })
	run("fig12", func() fmt.Stringer { return experiments.Fig12(setup) })
	run("runtime", func() fmt.Stringer { return experiments.RuntimeStats(setup) })
	run("ext-autoip", func() fmt.Stringer { return experiments.AutoProjection(setup) })
	run("ext-tuned", func() fmt.Stringer { return experiments.TunedEnsemble(setup) })

	fmt.Printf("wfbench: total %v\n", time.Since(start).Round(time.Millisecond))
}
