// Command wfsimvet runs the repository's invariant analyzer suite
// (internal/lint) over the module: canonical pair ordering, snapshot-pinned
// reads, context flow, generation-stamped responses, lock scope, error
// paths, and hot-loop allocations. It is the lint gate CI runs next to
// go vet.
//
// Usage:
//
//	wfsimvet [-c analyzers] [-suppressed] [-list] [-json] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 1 when any unsuppressed finding remains, 2 on usage or load
// errors. Findings are silenced site-by-site with
//
//	//wfsimvet:ignore <analyzer> <justification>
//
// on the flagged line or the line above; -suppressed lists the silenced
// findings with their justifications.
//
// -json emits one JSON object per diagnostic (file, line, column, analyzer,
// message, suppressed, justification) for tooling — the CI problem matcher
// consumes the default text format, editors and scripts the JSON one. With
// -json, suppressed findings are always included, marked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// jsonDiagnostic is the -json wire format, one object per line.
type jsonDiagnostic struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Column        int    `json:"column"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

func main() {
	var (
		selection      = flag.String("c", "", "comma-separated analyzer subset to run (default: all)")
		listAnalyzers  = flag.Bool("list", false, "list the analyzers and exit")
		showSuppressed = flag.Bool("suppressed", false, "also print suppressed findings")
		asJSON         = flag.Bool("json", false, "emit one JSON object per diagnostic (suppressed included)")
	)
	flag.Parse()

	if *listAnalyzers {
		for _, a := range lint.All {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, summary)
		}
		return
	}

	analyzers, err := lint.ByName(*selection)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}

	u, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}

	diags, err := lint.RunAnalyzers(u, u.Targets, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	failures, suppressed := 0, 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		} else {
			failures++
		}
		switch {
		case *asJSON:
			if err := enc.Encode(jsonDiagnostic{
				File:          d.Pos.Filename,
				Line:          d.Pos.Line,
				Column:        d.Pos.Column,
				Analyzer:      d.Analyzer,
				Message:       d.Message,
				Suppressed:    d.Suppressed,
				Justification: d.Justification,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "wfsimvet: encode diagnostic: %v\n", err)
				os.Exit(2)
			}
		case !d.Suppressed || *showSuppressed:
			fmt.Println(d)
		}
	}
	if suppressed > 0 && !*showSuppressed && !*asJSON {
		fmt.Fprintf(os.Stderr, "wfsimvet: %d suppressed finding(s); rerun with -suppressed to list them\n", suppressed)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "wfsimvet: %d finding(s)\n", failures)
		os.Exit(1)
	}
}
