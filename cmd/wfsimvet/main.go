// Command wfsimvet runs the repository's invariant analyzer suite
// (internal/lint) over the module: canonical pair ordering, snapshot-pinned
// reads, context flow, and generation-stamped responses. It is the lint
// gate CI runs next to go vet.
//
// Usage:
//
//	wfsimvet [-c analyzers] [-suppressed] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 1 when any unsuppressed finding remains, 2 on usage or load
// errors. Findings are silenced site-by-site with
//
//	//wfsimvet:ignore <analyzer> <justification>
//
// on the flagged line or the line above; -suppressed lists the silenced
// findings with their justifications.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		selection      = flag.String("c", "", "comma-separated analyzer subset to run (default: all)")
		listAnalyzers  = flag.Bool("list", false, "list the analyzers and exit")
		showSuppressed = flag.Bool("suppressed", false, "also print suppressed findings")
	)
	flag.Parse()

	if *listAnalyzers {
		for _, a := range lint.All {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, summary)
		}
		return
	}

	analyzers, err := lint.ByName(*selection)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}

	u, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}

	diags, err := lint.RunAnalyzers(u, u.Targets, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsimvet: %v\n", err)
		os.Exit(2)
	}

	failures, suppressed := 0, 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if *showSuppressed {
				fmt.Println(d)
			}
			continue
		}
		failures++
		fmt.Println(d)
	}
	if suppressed > 0 && !*showSuppressed {
		fmt.Fprintf(os.Stderr, "wfsimvet: %d suppressed finding(s); rerun with -suppressed to list them\n", suppressed)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "wfsimvet: %d finding(s)\n", failures)
		os.Exit(1)
	}
}
