// Duplicate detection: scan a repository for functionally (near-)equivalent
// workflow pairs — one of the repository-management challenges motivating
// the paper (detecting functionally equivalent workflows, Section 1).
//
// Prototype workflows and their shallow mutants score near 1 under
// MS_ip_te_pll; the importance projection makes the measure robust to the
// shim-module noise that separates textual duplicates.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/pkg/wfsim"
)

func main() {
	profile := wfsim.TavernaProfile()
	profile.Workflows = 150
	profile.Clusters = 10
	c, err := wfsim.GenerateCorpus(profile, 99)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := wfsim.New(c.Repo)
	if err != nil {
		log.Fatal(err)
	}

	const threshold = 0.9
	pairs, stats, err := eng.Duplicates(context.Background(), threshold,
		wfsim.DuplicateOptions{Measure: "MS_ip_te_pll"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d workflow pairs in %v\n", stats.Scored, stats.Elapsed.Round(time.Millisecond))
	fmt.Printf("%d near-duplicate pairs at threshold %.2f under %s\n\n", len(pairs), threshold, stats.Measure)

	correct, shown := 0, 0
	for _, p := range pairs {
		sameCluster := c.Truth.Meta[p.A].Cluster == c.Truth.Meta[p.B].Cluster
		if sameCluster {
			correct++
		}
		if shown < 15 {
			shown++
			fmt.Printf("  %-6s %-6s %.4f  same-cluster=%v\n", p.A, p.B, p.Similarity, sameCluster)
		}
	}
	if len(pairs) > 0 {
		fmt.Printf("\nground-truth precision of the duplicate scan: %.1f%% (%d/%d pairs share a cluster)\n",
			100*float64(correct)/float64(len(pairs)), correct, len(pairs))
	}
}
