// Ensemble ranking: demonstrate the paper's Section 5.1.6 finding that
// combining an annotational and a structural measure by mean score yields
// rankings that beat either measure alone and are more stable — evaluated
// here against the generator's latent ground truth, averaged over several
// query workflows.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/rank"
	"repro/internal/repoknow"
	"repro/internal/stats"
)

func main() {
	profile := gen.Taverna()
	profile.Workflows = 300
	profile.Clusters = 16
	c, err := gen.Generate(profile, 5)
	if err != nil {
		log.Fatal(err)
	}

	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	structural := measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Preselect: module.TypeEquivalence,
		Project:   proj.Project,
		Normalize: true,
	})
	bw := measures.BagOfWords{}
	ensemble := measures.NewEnsemble(bw, structural)
	ms := []measures.Measure{bw, structural, ensemble}

	// Evaluate each measure's ranking of 40 candidates against the
	// ground-truth ranking, over 12 query workflows.
	ids := c.Repo.IDs()
	queries := ids[:12]
	perMeasure := map[string][]float64{}
	for qi, q := range queries {
		qwf := c.Repo.Get(q)
		// Candidate window: 40 workflows spread across the corpus.
		var candidates []string
		for i := 0; i < 40; i++ {
			id := ids[(qi*37+i*7)%len(ids)]
			if id != q {
				candidates = append(candidates, id)
			}
		}
		truthScores := map[string]float64{}
		for _, id := range candidates {
			truthScores[id] = c.Truth.Sim(q, id)
		}
		reference := rank.FromScores(truthScores, 0)

		for _, m := range ms {
			scores := map[string]float64{}
			for _, id := range candidates {
				s, err := m.Compare(qwf, c.Repo.Get(id))
				if err != nil {
					log.Fatalf("%s on (%s,%s): %v", m.Name(), q, id, err)
				}
				scores[id] = s
			}
			corr := rank.Correctness(reference, rank.FromScores(scores, 1e-9))
			perMeasure[m.Name()] = append(perMeasure[m.Name()], corr)
		}
	}

	fmt.Printf("mean ranking correctness vs ground truth over %d queries x 40 candidates\n\n", len(queries))
	fmt.Printf("%-28s %10s %9s\n", "measure", "corr.mean", "corr.sd")
	type row struct {
		name string
		s    stats.Summary
	}
	var rows []row
	for _, m := range ms {
		rows = append(rows, row{m.Name(), stats.Summarize(perMeasure[m.Name()])})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].s.Mean > rows[j].s.Mean })
	for _, r := range rows {
		fmt.Printf("%-28s %10.3f %9.3f\n", r.name, r.s.Mean, r.s.StdDev)
	}
	if t, err := stats.PairedTTest(perMeasure[ensemble.Name()], perMeasure[bw.Name()]); err == nil {
		fmt.Printf("\npaired t-test ensemble vs BW: t=%.2f p=%.4f\n", t.T, t.P)
	}
	fmt.Println("\n(the ensemble combines annotational and structural evidence; per the paper")
	fmt.Println(" it should rank best, with a smaller standard deviation than its members)")
}
