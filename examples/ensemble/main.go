// Ensemble ranking: demonstrate the paper's Section 5.1.6 finding that
// combining an annotational and a structural measure by mean score yields
// retrieval that beats either measure alone — evaluated here against the
// generator's latent ground truth, averaged over several query workflows.
//
// The ensemble is built purely from measure notation: the registry parses
// "ensemble(BW, MS_ip_te_pll)" into the mean-score combination of its
// members, so no measure is constructed by hand.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/pkg/wfsim"
)

func main() {
	profile := wfsim.TavernaProfile()
	profile.Workflows = 300
	profile.Clusters = 16
	c, err := wfsim.GenerateCorpus(profile, 5)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := wfsim.New(c.Repo)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	names := []string{"BW", "MS_ip_te_pll", "ensemble(BW, MS_ip_te_pll)"}
	queries := c.Repo.IDs()[:12]
	const k = 10

	// Precision@10 against the latent clusters: the fraction of each
	// query's top-10 that shares the query's functional cluster.
	type row struct {
		name string
		mean float64
		sd   float64
	}
	var rows []row
	for _, name := range names {
		var precisions []float64
		canonical := name
		for _, q := range queries {
			results, stats, err := eng.SearchID(ctx, q, wfsim.SearchOptions{Measure: name, K: k})
			if err != nil {
				log.Fatalf("%s on %s: %v", name, q, err)
			}
			canonical = stats.Measure
			hits := 0
			for _, r := range results {
				if c.Truth.Meta[r.ID].Cluster == c.Truth.Meta[q].Cluster {
					hits++
				}
			}
			precisions = append(precisions, float64(hits)/float64(k))
		}
		var sum float64
		for _, p := range precisions {
			sum += p
		}
		mean := sum / float64(len(precisions))
		var varsum float64
		for _, p := range precisions {
			varsum += (p - mean) * (p - mean)
		}
		sd := 0.0
		if len(precisions) > 1 {
			sd = varsum / float64(len(precisions)-1)
		}
		rows = append(rows, row{canonical, mean, sd})
	}

	fmt.Printf("mean precision@%d vs latent clusters over %d queries\n\n", k, len(queries))
	fmt.Printf("%-28s %10s %9s\n", "measure", "prec.mean", "prec.var")
	sort.Slice(rows, func(i, j int) bool { return rows[i].mean > rows[j].mean })
	for _, r := range rows {
		fmt.Printf("%-28s %10.3f %9.3f\n", r.name, r.mean, r.sd)
	}
	fmt.Println("\n(the ensemble combines annotational and structural evidence; per the paper")
	fmt.Println(" it should retrieve best, with lower variance than its members)")
}
