// Example incremental demonstrates the mutable-repository API: a living
// corpus mutated through transactional Engine.Apply batches, with
// snapshot-pinned reads, incremental inverted-index maintenance (no full
// rebuilds) and a shared pairwise score cache that survives across Search,
// Duplicates and Cluster until a mutation bumps the generation.
//
// It is the end-to-end shape of a myExperiment-style repository that grows
// and churns while serving similarity queries.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/wfsim"
)

func main() {
	// A small synthetic corpus stands in for the living repository.
	p := wfsim.TavernaProfile()
	p.Workflows = 120
	p.Clusters = 8
	c, err := wfsim.GenerateCorpus(p, 42)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := wfsim.New(c.Repo,
		wfsim.WithIndex(1),          // filter-and-refine, incrementally maintained
		wfsim.WithScoreCache(1<<16), // shared pairwise score cache
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	queryID := c.Repo.IDs()[0]

	// Cold search: every scored pair is a cache miss.
	results, stats, err := eng.SearchID(ctx, queryID, wfsim.SearchOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d | cold search:  %d scored, %d pruned, cache %d/%d hit/miss\n",
		stats.Generation, stats.Scored, stats.Pruned, stats.CacheHits, stats.CacheMisses)

	// Warm search: identical pairs come straight from the cache.
	_, stats, err = eng.SearchID(ctx, queryID, wfsim.SearchOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d | warm search:  %d scored, cache %d/%d hit/miss\n",
		stats.Generation, stats.Scored, stats.CacheHits, stats.CacheMisses)

	// Mutate the repository: one transactional batch — clone the current
	// best hit under a new ID, and drop one workflow. Reads in flight keep
	// their pinned snapshot; the index is updated in O(labels), not rebuilt.
	best := eng.Workflow(results[0].ID)
	clone := best.Clone()
	clone.ID = "clone-of-" + best.ID
	removed := c.Repo.IDs()[1]
	gen, err := eng.Apply(ctx,
		wfsim.AddWorkflow(clone),
		wfsim.RemoveWorkflow(removed),
	)
	if err != nil {
		log.Fatal(err)
	}
	ist, _ := eng.IndexStats()
	fmt.Printf("applied add+remove -> generation %d (index: %d live, %d tombstoned, %d full rebuilds)\n",
		gen, ist.Live, ist.Dead, ist.Rebuilds)

	// The new workflow is immediately searchable; the stale generation's
	// cached scores are never served (all misses again).
	results, stats, err = eng.SearchID(ctx, queryID, wfsim.SearchOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d | fresh search: cache %d/%d hit/miss, top hit %s (%.3f)\n",
		stats.Generation, stats.CacheHits, stats.CacheMisses, results[0].ID, results[0].Similarity)
	for _, r := range results {
		if r.ID == clone.ID {
			fmt.Printf("  the just-added %q already ranks in the top-5 — no rebuild needed\n", clone.ID)
		}
		if r.ID == removed {
			log.Fatalf("removed workflow %q served", removed)
		}
	}

	// Duplicates and Cluster share the same cache: the duplicate scan warms
	// the pair matrix the clustering then reuses.
	pairs, dstats, err := eng.Duplicates(ctx, 0.95, wfsim.DuplicateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("duplicates: %d pairs >= 0.95, cache %d/%d hit/miss\n",
		len(pairs), dstats.CacheHits, dstats.CacheMisses)
	if _, err := eng.Cluster(ctx, wfsim.ClusterOptions{}); err != nil {
		log.Fatal(err)
	}
	cs := eng.CacheStats()
	fmt.Printf("cluster reused the warmed matrix: %d cumulative hits, %d entries cached\n",
		cs.Hits, cs.Entries)
}
