// Clustering: group a repository of scientific workflows into functional
// clusters using a similarity measure — the repository-management use case
// of the paper's introduction ("grouping of workflows into functional
// clusters"). Cluster quality is evaluated against the generator's latent
// ground truth with purity, and the run also demonstrates the Engine's
// inverted-index search acceleration on the same corpus.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/pkg/wfsim"
)

func main() {
	profile := wfsim.TavernaProfile()
	profile.Workflows = 180
	profile.Clusters = 12
	c, err := wfsim.GenerateCorpus(profile, 77)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := wfsim.New(c.Repo, wfsim.WithIndex(1))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	t0 := time.Now()
	minSim := 0.45
	res, err := eng.Cluster(ctx, wfsim.ClusterOptions{Measure: "MS_ip_te_pll", MinSimilarity: &minSim})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d workflows in %v\n", c.Repo.Size(), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("agglomerative clustering found %d clusters (latent: %d)\n", len(res.Clusters), profile.Clusters)

	// Agreement with the generator's latent clusters.
	ref := map[string]int{}
	for id, meta := range c.Truth.Meta {
		ref[id] = meta.Cluster
	}
	fmt.Printf("agreement with latent clusters: rand index %.3f, purity %.3f\n\n",
		res.RandIndex(ref), res.Purity(ref))

	for k, members := range res.Clusters {
		if k >= 5 {
			fmt.Printf("... and %d more clusters\n", len(res.Clusters)-5)
			break
		}
		sample := eng.Workflow(members[0])
		fmt.Printf("cluster %d: %3d workflows, e.g. %q\n", k, len(members), sample.Annotations.Title)
	}

	// Bonus: the engine was built WithIndex, so search is filter-and-refine
	// over the inverted label index; compare against an exact scan.
	fmt.Println("\nfilter-and-refine search (inverted index over canonical module labels):")
	query := c.Repo.Workflows()[0]
	t1 := time.Now()
	fast, stats, err := eng.Search(ctx, query, wfsim.SearchOptions{Measure: "MS_ip_te_pll", K: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s: scored %d candidates, pruned %d of %d workflows, %v\n",
		query.ID, stats.Scored, stats.Pruned, c.Repo.Size(), time.Since(t1).Round(time.Microsecond))

	exact, _, err := eng.Search(ctx, query, wfsim.SearchOptions{Measure: "MS_ip_te_pll", K: 10, Exact: true})
	if err != nil {
		log.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range fast {
		got[r.ID] = true
	}
	hit := 0
	for _, r := range exact {
		if got[r.ID] {
			hit++
		}
	}
	fmt.Printf("top-10 recall vs exact scan: %.2f\n", float64(hit)/float64(len(exact)))
}
