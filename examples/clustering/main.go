// Clustering: group a repository of scientific workflows into functional
// clusters using a similarity measure — the repository-management use case
// of the paper's introduction ("grouping of workflows into functional
// clusters"). Cluster quality is evaluated against the generator's latent
// ground truth with the Rand index and purity, and the run also demonstrates
// the inverted-index search acceleration on the same corpus.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/repoknow"
)

func main() {
	profile := gen.Taverna()
	profile.Workflows = 180
	profile.Clusters = 12
	c, err := gen.Generate(profile, 77)
	if err != nil {
		log.Fatal(err)
	}

	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	m := measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Preselect: module.TypeEquivalence,
		Project:   proj.Project,
		Normalize: true,
	})

	t0 := time.Now()
	mat := cluster.BuildMatrix(c.Repo, m, 0)
	fmt.Printf("similarity matrix for %d workflows in %v\n", c.Repo.Size(), time.Since(t0).Round(time.Millisecond))

	found := cluster.Agglomerative(mat, 0.45)
	fmt.Printf("agglomerative clustering found %d clusters (latent: %d)\n", found.K, profile.Clusters)

	// Ground-truth reference clustering.
	ref := cluster.Clustering{Assign: make([]int, len(mat.IDs))}
	remap := map[int]int{}
	for i, id := range mat.IDs {
		cid := c.Truth.Meta[id].Cluster
		if _, ok := remap[cid]; !ok {
			remap[cid] = len(remap)
		}
		ref.Assign[i] = remap[cid]
	}
	ref.K = len(remap)

	ri, err := cluster.RandIndex(found, ref)
	if err != nil {
		log.Fatal(err)
	}
	purity, err := cluster.Purity(found, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement with latent clusters: rand index %.3f, purity %.3f\n\n", ri, purity)

	for k, members := range found.Members() {
		if k >= 5 {
			fmt.Printf("... and %d more clusters\n", found.K-5)
			break
		}
		sample := c.Repo.Get(mat.IDs[members[0]])
		fmt.Printf("cluster %d: %3d workflows, e.g. %q\n", k, len(members), sample.Annotations.Title)
	}

	// Bonus: the inverted-index accelerated search on the same corpus.
	fmt.Println("\nfilter-and-refine search (inverted index over canonical module labels):")
	idx := index.Build(c.Repo)
	query := c.Repo.Workflows()[0]
	t1 := time.Now()
	fast := idx.TopK(query, m, 10, 1)
	fmt.Printf("query %s: scored %d candidates, pruned %d of %d workflows, %v\n",
		query.ID, fast.CandidateCount, fast.Pruned, c.Repo.Size(), time.Since(t1).Round(time.Microsecond))
	fmt.Printf("top-10 recall vs exact scan: %.2f\n", idx.RecallAgainst(query, m, 10, 1))
}
