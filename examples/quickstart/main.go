// Quickstart: build two small scientific workflows by hand and compare them
// with every class of similarity measure from the paper — annotation-based
// (Bag of Words, Bag of Tags) and structure-based (Module Sets, Path Sets,
// Graph Edit Distance) — through the public wfsim Engine.
//
// The two workflows mirror the paper's running example (Figure 1): a "KEGG
// pathway analysis" workflow and a "Get pathway-genes by Entrez gene id"
// workflow: different authors, overlapping functionality.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/wfsim"
)

func keggPathwayAnalysis() *wfsim.Workflow {
	w := wfsim.NewWorkflow("1189")
	w.Annotations = wfsim.Annotations{
		Title:       "KEGG pathway analysis",
		Description: "Retrieves KEGG pathways for a list of genes and renders annotated pathway maps",
		Tags:        []string{"kegg", "pathway", "gene"},
	}
	genes := w.AddModule(&wfsim.Module{
		ID: "m0", Label: "gene_id_list", Type: wfsim.TypeStringConst,
	})
	getPw := w.AddModule(&wfsim.Module{
		ID: "m1", Label: "get_pathways_by_genes", Type: wfsim.TypeWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_pathways_by_genes", Authority: "kegg",
	})
	split := w.AddModule(&wfsim.Module{
		ID: "m2", Label: "split_string", Type: wfsim.TypeLocalWorker,
	})
	color := w.AddModule(&wfsim.Module{
		ID: "m3", Label: "color_pathway_by_objects", Type: wfsim.TypeWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "color_pathway_by_objects", Authority: "kegg",
	})
	render := w.AddModule(&wfsim.Module{
		ID: "m4", Label: "render_pathway_image", Type: wfsim.TypeBeanshell, Script: "img = render(pathway);",
	})
	for _, e := range [][2]int{{genes, getPw}, {getPw, split}, {split, color}, {color, render}} {
		if err := w.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	return w
}

func getPathwayGenesByEntrez() *wfsim.Workflow {
	w := wfsim.NewWorkflow("2805")
	w.Annotations = wfsim.Annotations{
		Title:       "Get Pathway-Genes by Entrez gene id",
		Description: "Gets the KEGG pathways containing a given Entrez gene and lists the genes on them",
		Tags:        []string{"kegg", "entrez", "pathway"},
	}
	entrez := w.AddModule(&wfsim.Module{
		ID: "m0", Label: "entrez_gene_id", Type: wfsim.TypeStringConst,
	})
	convert := w.AddModule(&wfsim.Module{
		ID: "m1", Label: "convertEntrezToKeggId", Type: wfsim.TypeRShell, Script: "ids = map(entrez2kegg, input);",
	})
	getPw := w.AddModule(&wfsim.Module{
		// Same service as workflow 1189, labeled differently by its author.
		ID: "m2", Label: "getPathwaysByGenes", Type: wfsim.TypeArbitraryWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_pathways_by_genes", Authority: "kegg",
	})
	getGenes := w.AddModule(&wfsim.Module{
		ID: "m3", Label: "get_genes_by_pathway", Type: wfsim.TypeWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_genes_by_pathway", Authority: "kegg",
	})
	merge := w.AddModule(&wfsim.Module{
		ID: "m4", Label: "merge_string_list_2", Type: wfsim.TypeLocalWorker,
	})
	for _, e := range [][2]int{{entrez, convert}, {convert, getPw}, {getPw, getGenes}, {getGenes, merge}} {
		if err := w.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	return w
}

func main() {
	a, b := keggPathwayAnalysis(), getPathwayGenesByEntrez()
	fmt.Printf("comparing %q and %q\n\n", a.Annotations.Title, b.Annotations.Title)

	repo, err := wfsim.NewRepository(a, b)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := wfsim.New(repo)
	if err != nil {
		log.Fatal(err)
	}

	// The default comparison set spans annotation measures (BW, BT) and the
	// paper's strongest structural configurations, with and without
	// repository knowledge (importance projection, type equivalence).
	scores, err := eng.Compare(context.Background(), a, b)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range scores {
		if s.Err != nil {
			fmt.Printf("  %-16s error: %v\n", s.Measure, s.Err)
			continue
		}
		fmt.Printf("  %-16s %.4f\n", s.Measure, s.Similarity)
	}

	// Importance projection (ip) strips trivial local modules and keeps the
	// functional core connected.
	fmt.Println("\nimportance projection of", a.ID, "keeps:")
	for _, m := range eng.Project(a).Modules {
		fmt.Printf("  %s (%s)\n", m.Label, m.Type)
	}
}
