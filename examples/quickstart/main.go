// Quickstart: build two small scientific workflows by hand and compare them
// with every class of similarity measure from the paper — annotation-based
// (Bag of Words, Bag of Tags) and structure-based (Module Sets, Path Sets,
// Graph Edit Distance) — with and without repository knowledge.
//
// The two workflows mirror the paper's running example (Figure 1): a "KEGG
// pathway analysis" workflow and a "Get pathway-genes by Entrez gene id"
// workflow: different authors, overlapping functionality.
package main

import (
	"fmt"
	"log"

	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/repoknow"
	"repro/internal/workflow"
)

func keggPathwayAnalysis() *workflow.Workflow {
	w := workflow.New("1189")
	w.Annotations = workflow.Annotations{
		Title:       "KEGG pathway analysis",
		Description: "Retrieves KEGG pathways for a list of genes and renders annotated pathway maps",
		Tags:        []string{"kegg", "pathway", "gene"},
	}
	genes := w.AddModule(&workflow.Module{
		ID: "m0", Label: "gene_id_list", Type: workflow.TypeStringConst,
	})
	getPw := w.AddModule(&workflow.Module{
		ID: "m1", Label: "get_pathways_by_genes", Type: workflow.TypeWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_pathways_by_genes", Authority: "kegg",
	})
	split := w.AddModule(&workflow.Module{
		ID: "m2", Label: "split_string", Type: workflow.TypeLocalWorker,
	})
	color := w.AddModule(&workflow.Module{
		ID: "m3", Label: "color_pathway_by_objects", Type: workflow.TypeWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "color_pathway_by_objects", Authority: "kegg",
	})
	render := w.AddModule(&workflow.Module{
		ID: "m4", Label: "render_pathway_image", Type: workflow.TypeBeanshell, Script: "img = render(pathway);",
	})
	for _, e := range [][2]int{{genes, getPw}, {getPw, split}, {split, color}, {color, render}} {
		if err := w.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	return w
}

func getPathwayGenesByEntrez() *workflow.Workflow {
	w := workflow.New("2805")
	w.Annotations = workflow.Annotations{
		Title:       "Get Pathway-Genes by Entrez gene id",
		Description: "Gets the KEGG pathways containing a given Entrez gene and lists the genes on them",
		Tags:        []string{"kegg", "entrez", "pathway"},
	}
	entrez := w.AddModule(&workflow.Module{
		ID: "m0", Label: "entrez_gene_id", Type: workflow.TypeStringConst,
	})
	convert := w.AddModule(&workflow.Module{
		ID: "m1", Label: "convertEntrezToKeggId", Type: workflow.TypeRShell, Script: "ids = map(entrez2kegg, input);",
	})
	getPw := w.AddModule(&workflow.Module{
		// Same service as workflow 1189, labeled differently by its author.
		ID: "m2", Label: "getPathwaysByGenes", Type: workflow.TypeArbitraryWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_pathways_by_genes", Authority: "kegg",
	})
	getGenes := w.AddModule(&workflow.Module{
		ID: "m3", Label: "get_genes_by_pathway", Type: workflow.TypeWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_genes_by_pathway", Authority: "kegg",
	})
	merge := w.AddModule(&workflow.Module{
		ID: "m4", Label: "merge_string_list_2", Type: workflow.TypeLocalWorker,
	})
	for _, e := range [][2]int{{entrez, convert}, {convert, getPw}, {getPw, getGenes}, {getGenes, merge}} {
		if err := w.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	return w
}

func main() {
	a, b := keggPathwayAnalysis(), getPathwayGenesByEntrez()
	fmt.Printf("comparing %q and %q\n\n", a.Annotations.Title, b.Annotations.Title)

	// Importance projection (ip): strips trivial local modules, keeps the
	// functional core connected.
	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)

	ms := []measures.Measure{
		measures.BagOfWords{},
		measures.BagOfTags{},
		measures.NewStructural(measures.Config{
			Topology: measures.ModuleSets, Scheme: module.PW0(), Normalize: true,
		}),
		measures.NewStructural(measures.Config{
			Topology: measures.ModuleSets, Scheme: module.PLL(), Normalize: true,
			Preselect: module.TypeEquivalence, Project: proj.Project,
		}),
		measures.NewStructural(measures.Config{
			Topology: measures.PathSets, Scheme: module.PLL(), Normalize: true,
			Preselect: module.TypeEquivalence, Project: proj.Project,
		}),
		measures.NewStructural(measures.Config{
			Topology: measures.GraphEdit, Scheme: module.PLL(), Normalize: true,
			Preselect: module.TypeEquivalence, Project: proj.Project,
		}),
	}
	for _, m := range ms {
		s, err := m.Compare(a, b)
		if err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		fmt.Printf("  %-16s %.4f\n", m.Name(), s)
	}

	fmt.Println("\nimportance projection of", a.ID, "keeps:")
	for _, m := range proj.Project(a).Modules {
		fmt.Printf("  %s (%s)\n", m.Label, m.Type)
	}
}
