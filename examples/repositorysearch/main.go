// Repository search: generate a myExperiment-style corpus, pick a query
// workflow, and retrieve its top-10 most similar workflows with the paper's
// best structural configuration (MS_ip_te_pll), comparing the hit lists of a
// structural and an annotation measure — the similarity-search use case the
// paper's evaluation centres on, driven through the public wfsim Engine.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/pkg/wfsim"
)

func main() {
	profile := wfsim.TavernaProfile()
	profile.Workflows = 400 // keep the example snappy; use 1483 for paper scale
	profile.Clusters = 24

	t0 := time.Now()
	c, err := wfsim.GenerateCorpus(profile, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d workflows in %v\n", c.Repo.Size(), time.Since(t0).Round(time.Millisecond))

	eng, err := wfsim.New(c.Repo)
	if err != nil {
		log.Fatal(err)
	}
	query := c.Repo.Workflows()[2]
	fmt.Printf("query: %s %q (%d modules)\n\n", query.ID, query.Annotations.Title, query.Size())

	// A whole-call deadline bounds the search (and tightens the per-pair GED
	// budget for GE measures) — the paper's timeout semantics as an API knob.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	for _, measure := range []string{"MS_ip_te_pll", "BW"} {
		results, stats, err := eng.Search(ctx, query, wfsim.SearchOptions{Measure: measure, K: 10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-10 by %s (%v, %d scored, %d skipped):\n",
			stats.Measure, stats.Elapsed.Round(time.Millisecond), stats.Scored, stats.Skipped)
		for i, r := range results {
			wf := eng.Workflow(r.ID)
			marker := " "
			if c.Truth.Meta[r.ID].Cluster == c.Truth.Meta[query.ID].Cluster {
				marker = "*" // same latent functional cluster as the query
			}
			fmt.Printf("%2d. %s %-6s %.4f  %s\n", i+1, marker, r.ID, r.Similarity, wf.Annotations.Title)
		}
		fmt.Println()
	}
	fmt.Println("* = same latent functional cluster as the query (generator ground truth)")
}
