// Repository search: generate a myExperiment-style corpus, pick a query
// workflow, and retrieve its top-10 most similar workflows with the paper's
// best structural configuration (MS_ip_te_pll), comparing the hit lists of a
// structural and an annotation measure — the similarity-search use case the
// paper's evaluation centres on.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/repoknow"
	"repro/internal/search"
)

func main() {
	profile := gen.Taverna()
	profile.Workflows = 400 // keep the example snappy; use 1483 for paper scale
	profile.Clusters = 24

	t0 := time.Now()
	c, err := gen.Generate(profile, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d workflows in %v\n", c.Repo.Size(), time.Since(t0).Round(time.Millisecond))

	query := c.Repo.Workflows()[2]
	fmt.Printf("query: %s %q (%d modules)\n\n", query.ID, query.Annotations.Title, query.Size())

	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	structural := measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Preselect: module.TypeEquivalence,
		Project:   proj.Project,
		Normalize: true,
	})
	annotational := measures.BagOfWords{}

	for _, m := range []measures.Measure{structural, annotational} {
		t1 := time.Now()
		results, skipped := search.TopK(query, c.Repo, m, search.Options{K: 10})
		fmt.Printf("top-10 by %s (%v, %d skipped):\n", m.Name(), time.Since(t1).Round(time.Millisecond), skipped)
		for i, r := range results {
			wf := c.Repo.Get(r.ID)
			marker := " "
			if c.Truth.Meta[r.ID].Cluster == c.Truth.Meta[query.ID].Cluster {
				marker = "*" // same latent functional cluster as the query
			}
			fmt.Printf("%2d. %s %-6s %.4f  %s\n", i+1, marker, r.ID, r.Similarity, wf.Annotations.Title)
		}
		fmt.Println()
	}
	fmt.Println("* = same latent functional cluster as the query (generator ground truth)")
}
