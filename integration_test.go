package repro

// End-to-end integration tests across module boundaries: corpus generation →
// persistence round trip → import/export formats → indexing → search →
// clustering → evaluation. These are the workflows a downstream adopter
// strings together; each step's output feeds the next.

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/rank"
	"repro/internal/repoknow"
	"repro/internal/search"
	"repro/internal/wfio"
)

func integrationCorpus(t testing.TB) *gen.Corpus {
	t.Helper()
	p := gen.Taverna()
	p.Workflows = 120
	p.Clusters = 8
	c, err := gen.Generate(p, 55)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tunedMS(proj *repoknow.Projector) measures.Measure {
	return measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Preselect: module.TypeEquivalence,
		Project:   proj.Project,
		Normalize: true,
	})
}

// TestEndToEndPersistenceAndSearchParity saves a generated corpus, reloads
// it, and verifies that top-k search over the reloaded corpus returns the
// same ranked hits: persistence loses nothing the measures use.
func TestEndToEndPersistenceAndSearchParity(t *testing.T) {
	c := integrationCorpus(t)
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := c.Repo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := corpus.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Size() != c.Repo.Size() {
		t.Fatalf("reloaded size %d != %d", reloaded.Size(), c.Repo.Size())
	}

	m1 := tunedMS(repoknow.NewProjector(repoknow.TypeScorer{}, 0.5))
	m2 := tunedMS(repoknow.NewProjector(repoknow.TypeScorer{}, 0.5))
	for _, qid := range c.Repo.IDs()[:5] {
		r1, _, _ := search.TopK(context.Background(), c.Repo.Get(qid), c.Repo, m1, search.Options{K: 10})
		r2, _, _ := search.TopK(context.Background(), reloaded.Get(qid), reloaded, m2, search.Options{K: 10})
		if len(r1) != len(r2) {
			t.Fatalf("query %s: result counts differ", qid)
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("query %s rank %d: %+v vs %+v", qid, i, r1[i], r2[i])
			}
		}
	}
}

// TestEndToEndFormatRoundTripPreservesSimilarity exports workflows to both
// external formats, re-imports them, and verifies pairwise similarities are
// unchanged for the attributes each format preserves.
func TestEndToEndFormatRoundTripPreservesSimilarity(t *testing.T) {
	c := integrationCorpus(t)
	wfs := c.Repo.Workflows()[:12]

	// t2flow preserves all Taverna attributes; similarities must be equal.
	m := measures.NewStructural(measures.Config{
		Topology: measures.ModuleSets, Scheme: module.PW0(), Normalize: true,
	})
	for i := 0; i+1 < len(wfs); i += 2 {
		a, b := wfs[i], wfs[i+1]
		var bufA, bufB bytes.Buffer
		if err := wfio.WriteT2Flow(&bufA, a); err != nil {
			t.Fatal(err)
		}
		if err := wfio.WriteT2Flow(&bufB, b); err != nil {
			t.Fatal(err)
		}
		a2, err := wfio.ParseT2Flow(&bufA)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := wfio.ParseT2Flow(&bufB)
		if err != nil {
			t.Fatal(err)
		}
		orig, _ := m.Compare(a, b)
		trip, _ := m.Compare(a2, b2)
		// Labels change to module IDs on import (processor names), so use
		// a scheme-stable bound rather than exact equality: service
		// attributes and structure survive, so the drift must be small.
		if diff := orig - trip; diff > 0.35 || diff < -0.35 {
			t.Errorf("pair (%s,%s): similarity drifted %0.3f -> %0.3f", a.ID, b.ID, orig, trip)
		}
	}
}

// TestEndToEndIndexedSearchAgreesOnTopHit verifies the inverted-index
// accelerated search and the exact scan agree on the best hit for cluster
// queries (the hit is a near-duplicate sharing vocabulary by construction).
func TestEndToEndIndexedSearchAgreesOnTopHit(t *testing.T) {
	c := integrationCorpus(t)
	idx := index.Build(c.Repo)
	m := tunedMS(repoknow.NewProjector(repoknow.TypeScorer{}, 0.5))
	agree := 0
	total := 0
	for _, qid := range c.Repo.IDs()[:10] {
		q := c.Repo.Get(qid)
		exact, _, _ := search.TopK(context.Background(), q, c.Repo, m, search.Options{K: 1})
		fast, err := idx.TopK(context.Background(), q, m, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) == 0 || len(fast.Results) == 0 {
			continue
		}
		total++
		if exact[0].Similarity <= fast.Results[0].Similarity+1e-9 {
			agree++
		}
	}
	if agree < total {
		t.Errorf("indexed search lost the top hit on %d/%d queries", total-agree, total)
	}
}

// TestEndToEndEvaluationPipeline runs the complete evaluation loop on a
// small corpus: rating study → algorithm ranking → correctness against
// consensus, and checks a tuned structural measure lands in a sane band.
func TestEndToEndEvaluationPipeline(t *testing.T) {
	c := integrationCorpus(t)
	panel := eval.NewPanel(15, 2)
	study := eval.BuildRankingStudy(c, 4, panel, 3)
	m := tunedMS(repoknow.NewProjector(repoknow.TypeScorer{}, 0.5))

	var corrs []float64
	for _, q := range study.Queries {
		scores := map[string]float64{}
		for _, cand := range study.Candidates[q] {
			s, err := m.Compare(c.Repo.Get(q), c.Repo.Get(cand))
			if err != nil {
				t.Fatal(err)
			}
			scores[cand] = s
		}
		corrs = append(corrs, rank.Correctness(study.Consensus[q], rank.FromScores(scores, 1e-9)))
	}
	var sum float64
	for _, v := range corrs {
		sum += v
	}
	mean := sum / float64(len(corrs))
	if mean < 0.4 {
		t.Errorf("tuned MS mean correctness %.3f too low for a functioning pipeline", mean)
	}
}

// TestEndToEndClusteringMatchesSearch clusters the corpus and verifies that
// a query's top search hit lands in the query's own cluster for most
// queries — the two views of similarity must cohere.
func TestEndToEndClusteringMatchesSearch(t *testing.T) {
	c := integrationCorpus(t)
	m := tunedMS(repoknow.NewProjector(repoknow.TypeScorer{}, 0.5))
	mat, err := cluster.BuildMatrix(context.Background(), c.Repo, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	clu := cluster.Agglomerative(mat, 0.45)

	posOf := map[string]int{}
	for i, id := range mat.IDs {
		posOf[id] = i
	}
	coherent, total := 0, 0
	for _, qid := range c.Repo.IDs()[:12] {
		q := c.Repo.Get(qid)
		hits, _, _ := search.TopK(context.Background(), q, c.Repo, m, search.Options{K: 1})
		if len(hits) == 0 {
			continue
		}
		total++
		if clu.Assign[posOf[qid]] == clu.Assign[posOf[hits[0].ID]] {
			coherent++
		}
	}
	if coherent*4 < total*3 {
		t.Errorf("only %d/%d queries share a cluster with their top hit", coherent, total)
	}
}
