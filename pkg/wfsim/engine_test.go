package wfsim

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/measures"
)

func testCorpus(t testing.TB) *GeneratedCorpus {
	t.Helper()
	p := TavernaProfile()
	p.Workflows = 80
	p.Clusters = 6
	c, err := GenerateCorpus(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testEngine(t testing.TB, opts ...Option) (*Engine, *GeneratedCorpus) {
	t.Helper()
	c := testCorpus(t)
	eng, err := New(c.Repo, append(testShardOpts(t), opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

// testShardOpts lets the nightly CI matrix re-run the engine tests against
// the sharded coordinator: WFSIM_TEST_SHARDS=n prepends WithShards(n). A
// test's own explicit options still win because they apply later.
func testShardOpts(t testing.TB) []Option {
	v := os.Getenv("WFSIM_TEST_SHARDS")
	if v == "" {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("WFSIM_TEST_SHARDS=%q: want a positive integer", v)
	}
	return []Option{WithShards(n)}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil repository accepted")
	}
	c := testCorpus(t)
	if _, err := New(c.Repo, WithDefaultMeasure("not_a_measure")); err == nil {
		t.Error("invalid default measure accepted")
	}
	if _, err := New(c.Repo, WithGEDBudget(-1, 0)); err == nil {
		t.Error("negative GED budget accepted")
	}
}

func TestSearchBasic(t *testing.T) {
	eng, _ := testEngine(t)
	query := eng.Repository().Workflows()[0]
	results, stats, err := eng.Search(context.Background(), query, SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("results = %d, want 10", len(results))
	}
	if stats.Measure != DefaultMeasure {
		t.Errorf("stats.Measure = %q, want default %q", stats.Measure, DefaultMeasure)
	}
	if stats.Scored != eng.Repository().Size()-1 {
		t.Errorf("Scored = %d, want %d", stats.Scored, eng.Repository().Size()-1)
	}
	for i, r := range results {
		if r.ID == query.ID {
			t.Error("query included in results")
		}
		if i > 0 && r.Similarity > results[i-1].Similarity {
			t.Error("results not sorted")
		}
	}
}

func TestSearchIDUnknownQuery(t *testing.T) {
	eng, _ := testEngine(t)
	if _, _, err := eng.SearchID(context.Background(), "no-such-id", SearchOptions{}); err == nil {
		t.Error("unknown query ID accepted")
	}
}

// TestSearchIndexedMatchesExact compares filter-and-refine search against
// the exact scan on the engine's default measure.
func TestSearchIndexedMatchesExact(t *testing.T) {
	eng, _ := testEngine(t, WithIndex(1))
	query := eng.Repository().Workflows()[3]
	fast, stats, err := eng.Search(context.Background(), query, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned+stats.Scored+stats.Skipped != eng.Repository().Size()-1 {
		t.Errorf("accounting: pruned %d + scored %d + skipped %d vs %d workflows",
			stats.Pruned, stats.Scored, stats.Skipped, eng.Repository().Size())
	}
	exact, estats, err := eng.Search(context.Background(), query, SearchOptions{K: 5, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if estats.Pruned != 0 {
		t.Errorf("exact scan pruned %d", estats.Pruned)
	}
	if len(fast) == 0 || len(exact) == 0 {
		t.Fatal("empty result lists")
	}
	if fast[0].Similarity < exact[0].Similarity-1e-9 {
		t.Errorf("indexed top hit %.4f below exact %.4f", fast[0].Similarity, exact[0].Similarity)
	}
}

// TestSearchCancelledContext is the satellite contract: Search with an
// already-cancelled context returns promptly with ctx.Err() and leaks no
// goroutines.
func TestSearchCancelledContext(t *testing.T) {
	eng, _ := testEngine(t)
	query := eng.Repository().Workflows()[0]
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	results, _, err := eng.Search(ctx, query, SearchOptions{K: 10})
	elapsed := time.Since(t0)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Errorf("results = %v, want nil", results)
	}
	if elapsed > time.Second {
		t.Errorf("cancelled search took %v, want prompt return", elapsed)
	}
	// The worker pool must drain: allow the runtime a moment to retire
	// goroutines, then require the count back at (or below) the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

func TestSearchExpiredDeadline(t *testing.T) {
	eng, _ := testEngine(t)
	query := eng.Repository().Workflows()[0]
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := eng.Search(ctx, query, SearchOptions{K: 10}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSearchDeadlineClampsGEDBudget checks the paper's GED-timeout
// semantics surface as a context deadline: a nearer context deadline
// tightens the per-pair budget below the configured one.
func TestSearchDeadlineClampsGEDBudget(t *testing.T) {
	eng, _ := testEngine(t, WithGEDBudget(time.Hour, 4))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	m, err := eng.measureFor(ctx, "GE_np_ta_pll", nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := measureGEDDeadline(t, m)
	if cfg <= 0 || cfg > 50*time.Millisecond {
		t.Errorf("GED deadline = %v, want clamped into (0, 50ms]", cfg)
	}
	// Without a context deadline the configured budget applies.
	m, err = eng.measureFor(context.Background(), "GE_np_ta_pll", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg := measureGEDDeadline(t, m); cfg != time.Hour {
		t.Errorf("GED deadline = %v, want 1h", cfg)
	}
	// Retuning the budget through the public registry must reach the
	// engine's own measure resolution.
	eng.Registry().SetGEDBudget(time.Minute, 8)
	m, err = eng.measureFor(context.Background(), "GE_np_ta_pll", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg := measureGEDDeadline(t, m); cfg != time.Minute {
		t.Errorf("GED deadline after SetGEDBudget = %v, want 1m", cfg)
	}
}

// measureGEDDeadline extracts the configured GED deadline from the internal
// structural measure (the test lives inside pkg/wfsim, so it may look).
func measureGEDDeadline(t *testing.T, m Measure) time.Duration {
	t.Helper()
	s, ok := m.(*measures.Structural)
	if !ok {
		t.Fatalf("measure %T is not *measures.Structural", m)
	}
	return s.Config().GEDDeadline
}

func TestDuplicatesAndCluster(t *testing.T) {
	eng, c := testEngine(t)
	ctx := context.Background()
	pairs, dstats, err := eng.Duplicates(ctx, 0.9, DuplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.Similarity < 0.9 {
			t.Errorf("pair %v below threshold", p)
		}
	}
	n := eng.Repository().Size()
	if dstats.Measure != DefaultMeasure || dstats.Scored != n*(n-1)/2 {
		t.Errorf("duplicate stats = %+v", dstats)
	}
	minSim := 0.45
	res, err := eng.Cluster(ctx, ClusterOptions{MinSimilarity: &minSim})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, members := range res.Clusters {
		total += len(members)
	}
	if total != c.Repo.Size() {
		t.Errorf("clustering covers %d of %d workflows", total, c.Repo.Size())
	}
}

func TestDuplicatesCancelled(t *testing.T) {
	eng, _ := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.Duplicates(ctx, 0.9, DuplicateOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := eng.Cluster(ctx, ClusterOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cluster err = %v, want context.Canceled", err)
	}
}

func TestCompareDefaultSet(t *testing.T) {
	eng, _ := testEngine(t)
	wfs := eng.Repository().Workflows()
	scores, err := eng.Compare(context.Background(), wfs[0], wfs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(CompareMeasures()) {
		t.Fatalf("scores = %d, want %d", len(scores), len(CompareMeasures()))
	}
	for _, s := range scores {
		if s.Err == nil && (s.Similarity < 0 || s.Similarity > 1) {
			t.Errorf("%s = %.4f outside [0,1]", s.Measure, s.Similarity)
		}
	}
}

func TestEngineCustomMeasure(t *testing.T) {
	eng, _ := testEngine(t, WithMeasure("always1", constantMeasure{name: "always1", v: 1}))
	results, stats, err := eng.SearchID(context.Background(), eng.Repository().IDs()[0],
		SearchOptions{Measure: "always1", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Measure != "always1" {
		t.Errorf("stats.Measure = %q", stats.Measure)
	}
	for _, r := range results {
		if r.Similarity != 1 {
			t.Errorf("custom measure score = %v", r.Similarity)
		}
	}
}

func TestWithRepositoryKnowledge(t *testing.T) {
	eng, _ := testEngine(t, WithRepositoryKnowledge(0.3))
	wf := eng.Repository().Workflows()[0]
	proj := eng.Project(wf)
	if proj.Size() > wf.Size() {
		t.Errorf("projection grew the workflow: %d -> %d", wf.Size(), proj.Size())
	}
	if _, _, err := eng.Search(context.Background(), wf, SearchOptions{Measure: "MS_ip_te_pll", K: 5}); err != nil {
		t.Fatal(err)
	}
}
