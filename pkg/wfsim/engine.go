package wfsim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/measures"
	"repro/internal/repoknow"
	"repro/internal/scorecache"
	"repro/internal/search"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/workflow"
)

// Engine is the similarity-search facade over one workflow repository. It
// owns a measure Registry, an optional filter-and-refine inverted index, an
// optional shared pairwise score cache, and a worker pool configuration, and
// exposes the paper's operations — top-k search, pairwise comparison,
// duplicate detection, clustering — as context-aware methods.
//
// The repository is mutable through Engine.Apply: mutation batches commit
// transactionally under a new generation number, the inverted index is
// maintained incrementally (no full rebuild), and every read operation pins
// an immutable repository Snapshot, so in-flight queries are never torn by
// concurrent writers.
//
// An Engine is safe for concurrent use once built.
type Engine struct {
	repo           *corpus.Repository
	reg            *Registry
	idx            atomic.Pointer[index.Index]
	cache          *scorecache.Cache
	cacheWanted    bool // WithScoreCache was given; cache(s) built in New
	cacheSize      int  // requested total capacity (<= 0 = default)
	minShared      int
	concurrency    int
	defaultMeasure string
	repoKnow       *repoKnowState

	// WithShards(n > 1) replaces the single-repository data plane with a
	// shard.Coordinator over n consistent-hash partitions; the legacy fields
	// above (repo/idx/cache/store) stay nil-ish and every operation routes
	// through coord. See sharded.go.
	shardCount int
	coord      *shard.Coordinator

	storageDir  string        // WithStorage data directory ("" = RAM only)
	storageCfg  storageConfig // WithStorage tuning
	store       *storage.Store
	storeClosed bool // guarded by applyMu
	warmEntries int  // score-cache entries re-seeded at boot

	applyMu       sync.Mutex   // serializes Apply batches
	indexRebuilds atomic.Int64 // full index rebuilds (drift recovery only)
}

// repoKnowState derives importance projectors from repository snapshots
// (WithRepositoryKnowledge). Projectors are keyed by the read frontier they
// were built over — a generation for single-repository engines, a generation
// vector for sharded ones — so a read over a pinned view always projects
// against that view's own module frequencies, even while readers at other
// frontiers are in flight; no reader can regress another reader's
// projection. Each built projector carries a unique epoch for score-cache
// keying.
type repoKnowState struct {
	threshold float64
	mu        sync.Mutex
	entries   map[string]*projEntry // frontier key -> projector, newest few kept
	order     []string              // insertion order, for eviction
	epochs    uint64
	rebuilds  atomic.Int64
}

// projEntry is one read frontier's importance projector.
type projEntry struct {
	epoch   uint64
	project measures.Projector
}

// entry returns the projector for the given frontier key, building it from
// workflows() (and counting the rebuild) on first use. A handful of recent
// frontiers stay cached so overlapping reads across a mutation boundary
// don't rebuild per call.
func (rk *repoKnowState) entry(key string, workflows func() []*workflow.Workflow) *projEntry {
	rk.mu.Lock()
	defer rk.mu.Unlock()
	if ent, ok := rk.entries[key]; ok {
		return ent
	}
	usage := repoknow.CollectUsage(workflows())
	proj := repoknow.NewProjector(repoknow.NewFrequencyScorer(usage), rk.threshold)
	rk.epochs++
	ent := &projEntry{epoch: rk.epochs, project: proj.Project}
	rk.entries[key] = ent
	rk.order = append(rk.order, key)
	for len(rk.order) > 4 {
		delete(rk.entries, rk.order[0])
		rk.order = rk.order[1:]
	}
	rk.rebuilds.Add(1)
	return ent
}

// entryFor is entry keyed by a single repository snapshot's generation.
func (rk *repoKnowState) entryFor(snap *corpus.Snapshot) *projEntry {
	return rk.entry(genKey(snap.Generation()), snap.Workflows)
}

// genKey formats a single-repository frontier key.
func genKey(gen uint64) string { return fmt.Sprintf("g%d", gen) }

// Option configures an Engine under construction.
type Option func(*Engine) error

// WithIndex enables filter-and-refine search acceleration: an inverted index
// over canonicalized module labels generates candidates sharing at least
// minShared labels with the query, and only candidates are scored exactly.
// Lossless for strict label-matching schemes (plm), a high-recall heuristic
// for edit-distance schemes; Stats.Pruned reports what was not scored.
func WithIndex(minShared int) Option {
	return func(e *Engine) error {
		if minShared < 1 {
			minShared = 1
		}
		e.minShared = minShared
		return nil
	}
}

// WithConcurrency bounds the scoring worker pools (default GOMAXPROCS).
func WithConcurrency(n int) Option {
	return func(e *Engine) error {
		e.concurrency = n
		return nil
	}
}

// WithRepositoryKnowledge derives the importance projection from the
// repository itself instead of the paper's manual type-based selection:
// module labels are scored by inverse document frequency across the
// repository, and "ip" measures drop modules scoring below threshold
// (<= 0 means DefaultProjectionThreshold). This is the automatic importance
// derivation the paper names as future work (Section 6).
//
// The projector tracks the living repository: it is first computed in New's
// finalize step (after all options, so option order does not matter) and
// recomputed from the post-mutation snapshot whenever the repository
// generation moves — an Engine.Apply that changes module document
// frequencies changes "ip" measure scores on the next read. An engine built
// over an empty repository is valid: the projector keeps everything until
// workflows arrive, then rebuilds from real frequencies.
func WithRepositoryKnowledge(threshold float64) Option {
	return func(e *Engine) error {
		if threshold <= 0 {
			threshold = DefaultProjectionThreshold
		}
		if threshold != threshold || threshold > 1 {
			return fmt.Errorf("repository-knowledge threshold %v out of range (0, 1]: IDF scores never exceed 1, so every module would be projected away", threshold)
		}
		e.repoKnow = &repoKnowState{threshold: threshold, entries: map[string]*projEntry{}}
		return nil
	}
}

// projectionFor resolves the importance projection a read over snap must
// use, plus the epoch that keys its cached scores. With repository knowledge
// the projector belongs to snap's generation (built lazily, per generation);
// otherwise it is the registry's configured projector, captured atomically
// with its epoch.
func (e *Engine) projectionFor(snap *corpus.Snapshot) (measures.Projector, uint64) {
	if rk := e.repoKnow; rk != nil {
		ent := rk.entryFor(snap)
		return ent.project, ent.epoch
	}
	return e.reg.projectorState()
}

// ProjectorRebuilds counts repository-knowledge projector computations
// (initial build included); it stays constant between mutations. Zero for
// engines without WithRepositoryKnowledge.
func (e *Engine) ProjectorRebuilds() int {
	if e.repoKnow == nil {
		return 0
	}
	return int(e.repoKnow.rebuilds.Load())
}

// WithGEDBudget sets the per-pair graph-edit-distance deadline and beam
// width used by GE measures (defaults: DefaultGEDDeadline,
// DefaultGEDBeamWidth). A context deadline nearer than the configured
// deadline tightens it further per call.
func WithGEDBudget(deadline time.Duration, beamWidth int) Option {
	return func(e *Engine) error {
		if deadline < 0 || beamWidth < 0 {
			return fmt.Errorf("negative GED budget")
		}
		e.reg.SetGEDBudget(deadline, beamWidth)
		return nil
	}
}

// WithDefaultMeasure sets the measure used when an options struct leaves
// Measure empty (default: DefaultMeasure, the paper's best configuration).
func WithDefaultMeasure(name string) Option {
	return func(e *Engine) error {
		e.defaultMeasure = name
		return nil
	}
}

// WithMeasure registers a custom measure in the engine's registry; it can
// then be named in any options struct and inside ensemble notation.
func WithMeasure(name string, m Measure) Option {
	return func(e *Engine) error {
		return e.reg.Register(name, m)
	}
}

// New builds an Engine over repo. Options are applied in order; the default
// measure is validated against the registry before the engine is returned.
func New(repo *Repository, opts ...Option) (*Engine, error) {
	if repo == nil {
		return nil, fmt.Errorf("nil repository")
	}
	e := &Engine{
		repo:           repo,
		reg:            NewRegistry(),
		defaultMeasure: DefaultMeasure,
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if _, err := e.reg.Parse(e.defaultMeasure); err != nil {
		return nil, fmt.Errorf("invalid default measure: %w", err)
	}
	// A sharded engine has its own construction path: per-shard repositories,
	// indexes, caches and stores, coordinated scatter-gather on top.
	if e.shardCount > 1 {
		if err := e.openSharded(); err != nil {
			return nil, err
		}
		return e, nil
	}
	if e.cacheWanted {
		e.cache = scorecache.New(e.cacheSize)
	}
	// Storage recovery runs first among the finalize steps, so the
	// projector and the index below are built over the recovered state,
	// not the empty repository the caller passed in.
	if e.storageDir != "" {
		if err := e.openStorage(); err != nil {
			return nil, err
		}
	}
	// Finalize step: the repository-knowledge projector for the initial
	// generation is computed here — after every option has run — and later
	// generations get their own projector lazily on first read.
	if e.repoKnow != nil {
		e.repoKnow.entryFor(repo.Snapshot())
	}
	if e.minShared > 0 {
		snap := repo.Snapshot()
		idx := index.Build(snap)
		idx.Parallelism = e.concurrency
		idx.SetGeneration(snap.Generation())
		e.idx.Store(idx)
	}
	// Warm-cache re-seeding needs the projector epoch, so it runs last.
	e.loadWarmCache()
	return e, nil
}

// Repository returns the engine's underlying repository. Prefer Engine.Apply
// over mutating it directly: Apply keeps the inverted index maintained
// incrementally, while direct mutation forces the next indexed search to
// fall back to an exact scan until the index is rebuilt.
//
// For a sharded engine (WithShards) the returned repository is only the
// construction-time seed: the live corpus is partitioned across the shards
// and this object is neither read nor updated afterwards. Use Size,
// Generations, Workflow and the read operations instead.
func (e *Engine) Repository() *Repository { return e.repo }

// Snapshot pins the current immutable view of the repository: the workflow
// set and the generation number every read in this instant would see. For a
// sharded engine it reflects only the construction-time seed repository (see
// Repository); use Size and Generations for live sharded state.
func (e *Engine) Snapshot() *Snapshot { return e.repo.Snapshot() }

// Generation returns the repository's current generation. It starts at the
// value the engine was built over and increases by one per Apply batch. For
// a sharded engine it is the aggregate generation: the sum of the per-shard
// vector, which every commit advances by at least one.
func (e *Engine) Generation() uint64 {
	if e.coord != nil {
		return e.coord.View().AggregateGeneration()
	}
	return e.repo.Generation()
}

// Generations returns the per-shard generation vector (a one-element vector
// for unsharded engines). The vector is captured atomically with respect to
// commits: it never shows half a cross-shard Apply batch.
func (e *Engine) Generations() []uint64 {
	if e.coord != nil {
		return e.coord.View().Generations()
	}
	return []uint64{e.repo.Generation()}
}

// Shards returns the engine's shard count (1 without WithShards).
func (e *Engine) Shards() int {
	if e.coord != nil {
		return e.coord.Shards()
	}
	return 1
}

// Size returns the number of workflows in the corpus across all shards.
func (e *Engine) Size() int {
	if e.coord != nil {
		return e.coord.View().Size()
	}
	return e.repo.Snapshot().Size()
}

// Registry returns the engine's measure registry, for registering custom
// measures or listing the built-in notation after construction.
func (e *Engine) Registry() *Registry { return e.reg }

// Workflow returns the repository workflow with the given ID, or nil. A
// sharded engine resolves it from the owning shard.
func (e *Engine) Workflow(id string) *Workflow {
	if e.coord != nil {
		return e.coord.View().Get(id)
	}
	return e.repo.Snapshot().Get(id)
}

// currentProjection resolves the engine's projection for its current read
// frontier, whichever data plane is active.
func (e *Engine) currentProjection() (measures.Projector, uint64) {
	if e.coord != nil {
		return e.projectionForView(e.coord.View())
	}
	return e.projectionFor(e.repo.Snapshot())
}

// ParseMeasure resolves a measure name in the paper's notation (see
// Registry) with the engine's projector and GED budget.
func (e *Engine) ParseMeasure(name string) (Measure, error) {
	if name == "" {
		name = e.defaultMeasure
	}
	project, _ := e.currentProjection()
	deadline, beam := e.reg.GEDBudget()
	return e.reg.parseResolved(name, deadline, beam, project)
}

// Project applies the engine's importance projection (the "ip" preprocessing
// of structural measures) to a workflow, against the current repository
// generation's module frequencies.
func (e *Engine) Project(wf *Workflow) *Workflow {
	project, _ := e.currentProjection()
	if project == nil {
		return wf
	}
	return project(wf)
}

// measureFor resolves name (or the default) with the given projection and
// the registry's GED budget, clamping the deadline to the context's
// remaining time — a call deadline becomes the paper's per-pair GED timeout.
func (e *Engine) measureFor(ctx context.Context, name string, project measures.Projector) (Measure, error) {
	if name == "" {
		name = e.defaultMeasure
	}
	deadline, beam := e.reg.GEDBudget()
	if t, ok := ctx.Deadline(); ok {
		if remaining := time.Until(t); deadline == 0 || remaining < deadline {
			deadline = remaining
		}
		if deadline <= 0 {
			deadline = time.Nanosecond // expired; pair scoring fails fast
		}
	}
	return e.reg.parseResolved(name, deadline, beam, project)
}

// SearchOptions configures Engine.Search.
type SearchOptions struct {
	// Measure is a name in the paper's notation ("" = engine default).
	Measure string
	// K is the number of results (default 10, the paper's top-10).
	K int
	// MinSimilarity drops results scoring at or below the threshold.
	MinSimilarity *float64
	// Exact forces a full scan even when the engine has an index.
	Exact bool
	// IncludeQuery keeps the query workflow in the results. Index-backed
	// search always excludes it; IncludeQuery falls back to a full scan.
	IncludeQuery bool
}

// Stats describes how a search was answered.
type Stats struct {
	// Measure is the canonical name of the measure used.
	Measure string
	// Scored is the number of repository workflows scored exactly.
	Scored int
	// Skipped counts pairs the measure failed on (e.g. GED timeouts),
	// disregarded as in the paper.
	Skipped int
	// Pruned is the number of workflows the index filtered out unscored
	// (0 for exact scans).
	Pruned int
	// CacheHits counts pairs answered from the score cache (0 when the
	// engine has no cache; see WithScoreCache).
	CacheHits int
	// CacheMisses counts cacheable pairs that had to be evaluated.
	CacheMisses int
	// Generation is the repository generation the call observed. For a
	// sharded engine it is the aggregate generation (the sum of the
	// per-shard vector), which is monotonic across commits.
	Generation uint64
	// Generations is the per-shard generation vector the call observed;
	// nil for unsharded engines.
	Generations []uint64
	// Elapsed is the wall-clock duration of the call.
	Elapsed time.Duration
}

// Search returns the top-k most similar repository workflows to query,
// fanning the scoring out across the engine's worker pool. It honors ctx:
// cancellation aborts the scan with ctx.Err(), and a deadline additionally
// tightens the per-pair GED budget. When the engine has an index (WithIndex)
// the search is filter-and-refine unless opts.Exact is set.
//
// The scan runs over a pinned repository snapshot: a Search issued before an
// Apply commits returns results consistent with the pre-mutation repository.
// An indexed search additionally requires the index generation to match the
// snapshot (it always does when mutations go through Apply); on mismatch the
// call degrades to an exact scan rather than serving a torn view.
func (e *Engine) Search(ctx context.Context, query *Workflow, opts SearchOptions) ([]Result, Stats, error) {
	if query == nil {
		return nil, Stats{}, fmt.Errorf("nil query workflow")
	}
	if e.coord != nil {
		return e.searchView(ctx, query, e.coord.View(), opts)
	}
	return e.searchSnap(ctx, query, e.repo.Snapshot(), opts)
}

// searchSnap is Search over an already-pinned snapshot: the projection, the
// scan and the cache keys all belong to snap's generation.
func (e *Engine) searchSnap(ctx context.Context, query *Workflow, snap *corpus.Snapshot, opts SearchOptions) ([]Result, Stats, error) {
	project, epoch := e.projectionFor(snap)
	m, err := e.measureFor(ctx, opts.Measure, project)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{Measure: m.Name(), Generation: snap.Generation()}
	t0 := time.Now()
	k := opts.K
	if k <= 0 {
		k = 10
	}
	mm, cm := e.cachedFor(m, snap, epoch)

	if idx := e.idx.Load(); idx != nil && idx.Generation() == snap.Generation() &&
		!opts.Exact && !opts.IncludeQuery && opts.MinSimilarity == nil {
		res, err := idx.TopK(ctx, query, mm, k, e.minShared)
		if err != nil {
			return nil, Stats{}, err
		}
		stats.Scored = res.CandidateCount - res.Skipped
		stats.Skipped = res.Skipped
		stats.Pruned = res.Pruned
		cm.fill(&stats)
		stats.Elapsed = time.Since(t0)
		return res.Results, stats, nil
	}

	results, skipped, err := search.TopK(ctx, query, snap, mm, search.Options{
		K:             k,
		Parallelism:   e.concurrency,
		IncludeQuery:  opts.IncludeQuery,
		MinSimilarity: opts.MinSimilarity,
	})
	if err != nil {
		return nil, Stats{}, err
	}
	stats.Skipped = skipped
	stats.Scored = snap.Size() - skipped
	if !opts.IncludeQuery && snap.Get(query.ID) != nil {
		stats.Scored--
	}
	cm.fill(&stats)
	stats.Elapsed = time.Since(t0)
	return results, stats, nil
}

// SearchID is Search with the query named by repository ID. The query is
// resolved from the same pinned snapshot the scan runs over, so a
// concurrent Replace cannot make the call score stale query content under a
// newer generation stamp.
func (e *Engine) SearchID(ctx context.Context, queryID string, opts SearchOptions) ([]Result, Stats, error) {
	if e.coord != nil {
		v := e.coord.View()
		query := v.Get(queryID)
		if query == nil {
			return nil, Stats{}, fmt.Errorf("query workflow %q not found", queryID)
		}
		return e.searchView(ctx, query, v, opts)
	}
	snap := e.repo.Snapshot()
	query := snap.Get(queryID)
	if query == nil {
		return nil, Stats{}, fmt.Errorf("query workflow %q not found", queryID)
	}
	return e.searchSnap(ctx, query, snap, opts)
}

// Score is one measure's verdict on a workflow pair.
type Score struct {
	// Measure is the canonical measure name.
	Measure string
	// Similarity is the score; meaningful only when Err is nil.
	Similarity float64
	// Err is the per-measure failure (e.g. a GED timeout), nil on success.
	Err error
}

// CompareMeasures is the representative measure set Compare uses when no
// names are given: both annotation measures and the paper's strongest
// structural configurations.
func CompareMeasures() []string {
	return []string{"BW", "BT", "MS_np_ta_pll", "MS_ip_te_pll", "PS_ip_te_pll", "GE_ip_te_pll"}
}

// Compare scores the pair (a, b) under each named measure (default:
// CompareMeasures). Unknown measure names fail the whole call; per-pair
// scoring failures are reported in the corresponding Score.Err so one GED
// timeout does not hide the other measures.
func (e *Engine) Compare(ctx context.Context, a, b *Workflow, measureNames ...string) ([]Score, error) {
	if e.coord != nil {
		scores, _, err := e.compareView(ctx, e.coord.View(), a, b, measureNames)
		return scores, err
	}
	return e.compareSnap(ctx, e.repo.Snapshot(), a, b, measureNames)
}

// CompareIDs is Compare with the pair named by repository IDs, both resolved
// from one pinned snapshot (one pinned view for a sharded engine). It
// additionally returns that snapshot's generation (aggregate generation for
// a sharded engine), so callers can correlate the scores with the mutation
// stream.
func (e *Engine) CompareIDs(ctx context.Context, aID, bID string, measureNames ...string) ([]Score, uint64, error) {
	if e.coord != nil {
		v := e.coord.View()
		a, b := v.Get(aID), v.Get(bID)
		if a == nil || b == nil {
			return nil, 0, fmt.Errorf("workflow %q or %q not found", aID, bID)
		}
		return e.compareView(ctx, v, a, b, measureNames)
	}
	snap := e.repo.Snapshot()
	a, b := snap.Get(aID), snap.Get(bID)
	if a == nil || b == nil {
		return nil, 0, fmt.Errorf("workflow %q or %q not found", aID, bID)
	}
	scores, err := e.compareSnap(ctx, snap, a, b, measureNames)
	return scores, snap.Generation(), err
}

// compareSnap scores one pair with snap's projection.
func (e *Engine) compareSnap(ctx context.Context, snap *corpus.Snapshot, a, b *Workflow, measureNames []string) ([]Score, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("nil workflow in Compare")
	}
	project, _ := e.projectionFor(snap)
	if len(measureNames) == 0 {
		measureNames = CompareMeasures()
	}
	out := make([]Score, 0, len(measureNames))
	for _, name := range measureNames {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := e.measureFor(ctx, name, project)
		if err != nil {
			return nil, err
		}
		s, err := m.Compare(a, b)
		out = append(out, Score{Measure: m.Name(), Similarity: s, Err: err})
	}
	return out, nil
}

// DuplicateOptions configures Engine.Duplicates.
type DuplicateOptions struct {
	// Measure is a name in the paper's notation ("" = engine default).
	Measure string
}

// Duplicates scans the repository's pair matrix for near-duplicate workflow
// pairs scoring at or above threshold — the functional-equivalence detection
// use case of the paper's introduction. The scan parallelizes across the
// engine's worker pool and honors ctx cancellation. Stats reports the
// canonical measure name, the number of pairs scored and skipped, and the
// wall-clock duration.
func (e *Engine) Duplicates(ctx context.Context, threshold float64, opts DuplicateOptions) ([]Pair, Stats, error) {
	if e.coord != nil {
		return e.duplicatesView(ctx, e.coord.View(), threshold, opts)
	}
	snap := e.repo.Snapshot()
	project, epoch := e.projectionFor(snap)
	m, err := e.measureFor(ctx, opts.Measure, project)
	if err != nil {
		return nil, Stats{}, err
	}
	mm, cm := e.cachedFor(m, snap, epoch)
	t0 := time.Now()
	pairs, skipped, err := search.Duplicates(ctx, snap, mm, threshold, e.concurrency)
	if err != nil {
		return nil, Stats{}, err
	}
	n := snap.Size()
	stats := Stats{
		Measure:    m.Name(),
		Scored:     n*(n-1)/2 - skipped,
		Skipped:    skipped,
		Generation: snap.Generation(),
		Elapsed:    time.Since(t0),
	}
	cm.fill(&stats)
	return pairs, stats, nil
}

// ClusterOptions configures Engine.Cluster.
type ClusterOptions struct {
	// Measure is a name in the paper's notation ("" = engine default).
	Measure string
	// MinSimilarity is the linkage cut-off; nil means 0.5. A pointer so an
	// explicit cut-off of 0 stays distinguishable from "use the default".
	MinSimilarity *float64
	// SingleLinkage switches from average-linkage agglomerative clustering
	// to threshold-graph connected components.
	SingleLinkage bool
}

// ClusterResult is a clustering of the repository into functional groups.
type ClusterResult struct {
	// Measure is the canonical name of the measure used.
	Measure string
	// Clusters holds the member workflow IDs per cluster, in deterministic
	// order (clusters ordered by first member, members in repository order).
	Clusters [][]string
	// Skipped counts pairs the measure could not score (similarity 0).
	Skipped int
	// Generation is the repository generation of the snapshot clustered
	// (aggregate generation for a sharded engine).
	Generation uint64
	// Generations is the per-shard generation vector of the view clustered;
	// nil for unsharded engines.
	Generations []uint64
}

// Purity evaluates the clustering against a reference assignment of
// workflow IDs to labels (e.g. a generator's GroundTruth clusters): the
// weighted fraction of each found cluster occupied by its dominant
// reference label. IDs missing from ref share the zero label.
func (r *ClusterResult) Purity(ref map[string]int) float64 {
	found, reference := r.assignments(ref)
	p, err := cluster.Purity(found, reference)
	if err != nil {
		return 0 // unreachable: both assignments are built over r's IDs
	}
	return p
}

// RandIndex evaluates the clustering against a reference assignment: the
// fraction of workflow pairs on which the two clusterings agree
// (same-cluster vs different-cluster).
func (r *ClusterResult) RandIndex(ref map[string]int) float64 {
	found, reference := r.assignments(ref)
	ri, err := cluster.RandIndex(found, reference)
	if err != nil {
		return 0 // unreachable: both assignments are built over r's IDs
	}
	return ri
}

// assignments converts the result and a reference labeling into the
// internal clustering representation over the same index space.
func (r *ClusterResult) assignments(ref map[string]int) (found, reference cluster.Clustering) {
	var n int
	for _, members := range r.Clusters {
		n += len(members)
	}
	found = cluster.Clustering{Assign: make([]int, n), K: len(r.Clusters)}
	reference = cluster.Clustering{Assign: make([]int, n)}
	remap := map[int]int{}
	pos := 0
	for k, members := range r.Clusters {
		for _, id := range members {
			found.Assign[pos] = k
			label := ref[id]
			if _, ok := remap[label]; !ok {
				remap[label] = len(remap)
			}
			reference.Assign[pos] = remap[label]
			pos++
		}
	}
	reference.K = len(remap)
	return found, reference
}

// Cluster groups the repository into functional clusters under a similarity
// measure — "grouping of workflows into functional clusters" from the
// paper's introduction. The underlying pair matrix is computed in parallel
// and honors ctx cancellation.
func (e *Engine) Cluster(ctx context.Context, opts ClusterOptions) (*ClusterResult, error) {
	if e.coord != nil {
		return e.clusterView(ctx, e.coord.View(), opts)
	}
	snap := e.repo.Snapshot()
	project, epoch := e.projectionFor(snap)
	m, err := e.measureFor(ctx, opts.Measure, project)
	if err != nil {
		return nil, err
	}
	minSim := 0.5
	if opts.MinSimilarity != nil {
		minSim = *opts.MinSimilarity
	}
	mm, _ := e.cachedFor(m, snap, epoch)
	mat, err := cluster.BuildMatrix(ctx, snap, mm, e.concurrency)
	if err != nil {
		return nil, err
	}
	var c cluster.Clustering
	if opts.SingleLinkage {
		c = cluster.Components(mat, minSim)
	} else {
		c = cluster.Agglomerative(mat, minSim)
	}
	out := &ClusterResult{Measure: m.Name(), Clusters: make([][]string, c.K), Skipped: mat.Skipped, Generation: snap.Generation()}
	for k, members := range c.Members() {
		ids := make([]string, len(members))
		for i, pos := range members {
			ids[i] = mat.IDs[pos]
		}
		out.Clusters[k] = ids
	}
	return out, nil
}
