package wfsim

import (
	"context"
	"math"
	"testing"
)

// ipWorkflow builds a valid chain workflow over the given module labels.
func ipWorkflow(id string, labels ...string) *Workflow {
	w := NewWorkflow(id)
	prev := -1
	for _, l := range labels {
		i := w.AddModule(&Module{Label: l, Type: TypeWSDL})
		if prev >= 0 {
			_ = w.AddEdge(prev, i)
		}
		prev = i
	}
	return w
}

// ipCorpus is a repository where the label "shim" appears in exactly half
// the workflows: document frequency 0.5, IDF score 0.5, kept at the default
// projection threshold. Every other label is unique (score 0.75, kept).
func ipCorpus(t *testing.T) *Repository {
	t.Helper()
	repo, err := NewRepository(
		ipWorkflow("w1", "shim", "fetch_protein_sequence"),
		ipWorkflow("w2", "shim", "render_bar_chart"),
		ipWorkflow("w3", "align_genomes", "call_variants"),
		ipWorkflow("w4", "annotate_pathways", "export_report"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// TestProjectorRefreshOnApply is the headline regression test: Engine.Apply
// mutations that change module document frequencies must change "ip" measure
// scores — the repository-knowledge projector is no longer frozen at
// construction.
func TestProjectorRefreshOnApply(t *testing.T) {
	eng, err := New(ipCorpus(t), WithRepositoryKnowledge(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const measure = "MS_ip_ta_pll"

	// At construction df(shim) = 2/4 = 0.5 → score 0.5 ≥ threshold: kept.
	if got := eng.Project(eng.Workflow("w1")).Size(); got != 2 {
		t.Fatalf("initial projection of w1 keeps %d modules, want 2", got)
	}
	before, _, err := eng.CompareIDs(ctx, "w1", "w2", measure)
	if err != nil {
		t.Fatal(err)
	}
	if before[0].Err != nil {
		t.Fatal(before[0].Err)
	}

	// Two more workflows using "shim": df rises to 4/6 ≈ 0.67, score drops
	// to ≈ 0.33 < 0.5 — the previously-kept module must now be projected
	// away on the next read, without any explicit refresh call.
	if _, err := eng.Apply(ctx,
		AddWorkflow(ipWorkflow("w5", "shim", "cluster_expression_data")),
		AddWorkflow(ipWorkflow("w6", "shim", "plot_phylogeny")),
	); err != nil {
		t.Fatal(err)
	}
	if got := eng.Project(eng.Workflow("w1")).Size(); got != 1 {
		t.Errorf("post-Apply projection of w1 keeps %d modules, want 1 (shim projected away)", got)
	}
	after, _, err := eng.CompareIDs(ctx, "w1", "w2", measure)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Err != nil {
		t.Fatal(after[0].Err)
	}
	// w1 and w2 shared only "shim"; with it projected away their structural
	// similarity must drop.
	if !(after[0].Similarity < before[0].Similarity) {
		t.Errorf("ip score frozen across Apply: before %v, after %v", before[0].Similarity, after[0].Similarity)
	}

	// Removing the added workflows restores the original frequencies — and
	// the original scores (refresh works in the shrinking direction too).
	if _, err := eng.Apply(ctx, RemoveWorkflow("w5"), RemoveWorkflow("w6")); err != nil {
		t.Fatal(err)
	}
	restored, _, err := eng.CompareIDs(ctx, "w1", "w2", measure)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(restored[0].Similarity-before[0].Similarity) > 1e-12 {
		t.Errorf("score after remove = %v, want %v (original frequencies restored)", restored[0].Similarity, before[0].Similarity)
	}

	// The projector is rebuilt once per generation, not once per read.
	rebuilds := eng.ProjectorRebuilds()
	for i := 0; i < 5; i++ {
		if _, _, err := eng.CompareIDs(ctx, "w1", "w2", measure); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.ProjectorRebuilds(); got != rebuilds {
		t.Errorf("projector rebuilt %d times across reads of one generation", got-rebuilds)
	}
}

// TestRepositoryKnowledgeOnEmptyRepository: an engine built over an empty
// repository (the wfsimd cold-start path) must not freeze a projector
// computed over zero workflows — once workflows arrive, projection uses
// their real frequencies.
func TestRepositoryKnowledgeOnEmptyRepository(t *testing.T) {
	repo, err := NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(repo, WithRepositoryKnowledge(0))
	if err != nil {
		t.Fatalf("empty repository rejected: %v", err)
	}
	ctx := context.Background()

	// "shim" in every workflow: df 1.0, score 0 — must be projected away
	// even though the projector was first built over nothing.
	if _, err := eng.Apply(ctx,
		AddWorkflow(ipWorkflow("w1", "shim", "fetch_protein_sequence")),
		AddWorkflow(ipWorkflow("w2", "shim", "render_bar_chart")),
		AddWorkflow(ipWorkflow("w3", "shim", "align_genomes")),
	); err != nil {
		t.Fatal(err)
	}
	if got := eng.Project(eng.Workflow("w1")).Size(); got != 1 {
		t.Errorf("projection over post-ingest corpus keeps %d modules, want 1", got)
	}
}

// TestRepositoryKnowledgeThresholdValidation: impossible thresholds are a
// construction error, not a silent keep-nothing projector.
func TestRepositoryKnowledgeThresholdValidation(t *testing.T) {
	for _, bad := range []float64{1.5, math.NaN()} {
		if _, err := New(ipCorpus(t), WithRepositoryKnowledge(bad)); err == nil {
			t.Errorf("threshold %v accepted", bad)
		}
	}
	// Option order must not matter: knowledge first, measures after.
	if _, err := New(ipCorpus(t),
		WithRepositoryKnowledge(0.5),
		WithMeasure("content", &contentMeasure{}),
		WithIndex(1),
	); err != nil {
		t.Errorf("option ordering rejected: %v", err)
	}
}

// TestProjectionPerSnapshotGeneration: readers pinned to different
// generations each get the projector of their own snapshot — an in-flight
// read over a pre-mutation snapshot cannot regress the projection a
// post-mutation reader uses, and both keep distinct cache epochs.
func TestProjectionPerSnapshotGeneration(t *testing.T) {
	eng, err := New(ipCorpus(t), WithRepositoryKnowledge(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	snapOld := eng.Snapshot()
	if _, err := eng.Apply(ctx,
		AddWorkflow(ipWorkflow("w5", "shim", "cluster_expression_data")),
		AddWorkflow(ipWorkflow("w6", "shim", "plot_phylogeny")),
	); err != nil {
		t.Fatal(err)
	}
	snapNew := eng.Snapshot()

	projOld, epochOld := eng.projectionFor(snapOld)
	projNew, epochNew := eng.projectionFor(snapNew)
	if epochOld == epochNew {
		t.Fatal("distinct generations share one projector epoch")
	}
	w1 := snapOld.Get("w1")
	// Under gen-0 frequencies "shim" is kept; under gen-1 it is projected
	// away — both projections must be served simultaneously.
	if got := projOld(w1).Size(); got != 2 {
		t.Errorf("old-snapshot projection keeps %d modules, want 2", got)
	}
	if got := projNew(w1).Size(); got != 1 {
		t.Errorf("new-snapshot projection keeps %d modules, want 1", got)
	}
	// Resolving the old generation again must reuse its entry, not rebuild
	// (and certainly not clobber the newer generation's projector).
	if _, e := eng.projectionFor(snapOld); e != epochOld {
		t.Errorf("old generation re-resolved to epoch %d, want %d", e, epochOld)
	}
	if _, e := eng.projectionFor(snapNew); e != epochNew {
		t.Errorf("new generation re-resolved to epoch %d, want %d", e, epochNew)
	}
}

// TestCompareIDsReportsGeneration: CompareIDs resolves both workflows from
// one pinned snapshot and reports its generation.
func TestCompareIDsReportsGeneration(t *testing.T) {
	eng, err := New(ipCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, gen, err := eng.CompareIDs(ctx, "w1", "w2", "BW"); err != nil || gen != 0 {
		t.Errorf("CompareIDs gen = %d err = %v, want 0/nil", gen, err)
	}
	if _, err := eng.Apply(ctx, RemoveWorkflow("w4")); err != nil {
		t.Fatal(err)
	}
	if _, gen, err := eng.CompareIDs(ctx, "w1", "w2", "BW"); err != nil || gen != 1 {
		t.Errorf("post-Apply CompareIDs gen = %d err = %v, want 1/nil", gen, err)
	}
}

// TestProjectorEpochRetiresCachedScores: replacing the projector without a
// repository mutation (same generation) must flush projection-dependent
// cached scores — the cache key carries the projector epoch.
func TestProjectorEpochRetiresCachedScores(t *testing.T) {
	eng, err := New(ipCorpus(t), WithScoreCache(1024))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const measure = "MS_ip_ta_pll"
	n := eng.Repository().Size()
	pairCount := n * (n - 1) / 2

	if _, stats, err := eng.Duplicates(ctx, 0.1, DuplicateOptions{Measure: measure}); err != nil {
		t.Fatal(err)
	} else if stats.CacheMisses != pairCount {
		t.Fatalf("cold run misses = %d, want %d", stats.CacheMisses, pairCount)
	}
	if _, stats, err := eng.Duplicates(ctx, 0.1, DuplicateOptions{Measure: measure}); err != nil {
		t.Fatal(err)
	} else if stats.CacheHits != pairCount {
		t.Fatalf("warm run hits = %d, want %d", stats.CacheHits, pairCount)
	}

	// A projector swap at the same generation: the warm scores were computed
	// under the old projection and must not be served.
	eng.Registry().SetProjector(func(wf *Workflow) *Workflow { return wf })
	_, stats, err := eng.Duplicates(ctx, 0.1, DuplicateOptions{Measure: measure})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 || stats.CacheMisses != pairCount {
		t.Errorf("post-SetProjector run: hits %d misses %d, want 0/%d (stale projection served)", stats.CacheHits, stats.CacheMisses, pairCount)
	}
}
