package wfsim

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// mutWorkflow builds a tiny valid workflow whose similarity under
// contentMeasure is driven by its first module label.
func mutWorkflow(id, label string) *Workflow {
	w := NewWorkflow(id)
	a := w.AddModule(&Module{Label: label, Type: TypeWSDL})
	b := w.AddModule(&Module{Label: label + "_step_two", Type: TypeWSDL})
	_ = w.AddEdge(a, b)
	return w
}

// contentMeasure scores pairs by content (first-label equality) and counts
// every real evaluation, so tests can prove the cache short-circuited it.
type contentMeasure struct {
	calls atomic.Int64
}

func (m *contentMeasure) Name() string { return "content" }

func (m *contentMeasure) Compare(a, b *Workflow) (float64, error) {
	m.calls.Add(1)
	if len(a.Modules) > 0 && len(b.Modules) > 0 && a.Modules[0].Label == b.Modules[0].Label {
		return 1, nil
	}
	return 0.3, nil
}

func mutEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	repo, err := NewRepository(
		mutWorkflow("w1", "fetch_sequence"),
		mutWorkflow("w2", "fetch_sequence"),
		mutWorkflow("w3", "run_blast"),
		mutWorkflow("w4", "render_plot"),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(repo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestApplyAddVisibleWithoutRebuild is the incremental-maintenance
// acceptance test: a post-Apply search sees the new workflow through the
// index with zero full rebuilds.
func TestApplyAddVisibleWithoutRebuild(t *testing.T) {
	eng := mutEngine(t, WithIndex(1), WithMeasure("content", &contentMeasure{}))
	ctx := context.Background()
	genBefore := eng.Generation()

	gen, err := eng.Apply(ctx,
		AddWorkflow(mutWorkflow("w5", "spot_image")),
		RemoveWorkflow("w4"),
		ReplaceWorkflow(mutWorkflow("w3", "spot_image")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if gen != genBefore+1 {
		t.Errorf("generation: %d -> %d, want +1", genBefore, gen)
	}

	// The added workflow and the replaced content are indexed: an indexed
	// search from w5 finds its new twin w3 (both "spot_image") at 1.0.
	results, stats, err := eng.SearchID(ctx, "w5", SearchOptions{Measure: "content", K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generation != gen {
		t.Errorf("search generation = %d, want %d", stats.Generation, gen)
	}
	if len(results) == 0 || results[0].ID != "w3" || results[0].Similarity != 1 {
		t.Errorf("post-Apply indexed search = %v, want w3 at 1.0", results)
	}
	for _, r := range results {
		if r.ID == "w4" {
			t.Error("removed workflow served from index")
		}
	}

	ist, ok := eng.IndexStats()
	if !ok {
		t.Fatal("engine has no index stats")
	}
	if ist.Rebuilds != 0 {
		t.Errorf("index was fully rebuilt %d times; maintenance must be incremental", ist.Rebuilds)
	}
	if ist.Generation != gen {
		t.Errorf("index generation = %d, want %d", ist.Generation, gen)
	}
	if ist.Live != 4 {
		t.Errorf("index live = %d, want 4", ist.Live)
	}
}

// TestApplyTransactional: a batch with one bad op must leave generation,
// repository and index untouched.
func TestApplyTransactional(t *testing.T) {
	eng := mutEngine(t, WithIndex(1))
	ctx := context.Background()
	genBefore := eng.Generation()
	istBefore, _ := eng.IndexStats()

	if _, err := eng.Apply(ctx,
		AddWorkflow(mutWorkflow("w9", "ok")),
		RemoveWorkflow("no-such-id"),
	); err == nil {
		t.Fatal("bad batch accepted")
	}
	if eng.Generation() != genBefore {
		t.Error("failed batch bumped the generation")
	}
	if eng.Workflow("w9") != nil {
		t.Error("failed batch partially applied")
	}
	if ist, _ := eng.IndexStats(); ist.Live != istBefore.Live {
		t.Errorf("failed batch touched the index: live %d -> %d", istBefore.Live, ist.Live)
	}

	if _, err := eng.Apply(ctx, Mutation{}); err == nil {
		t.Error("zero mutation accepted")
	}
	if _, err := eng.Apply(ctx, AddWorkflow(nil)); err == nil {
		t.Error("nil workflow accepted")
	}
	// Structural validation is part of the transaction.
	bad := NewWorkflow("bad")
	bad.AddModule(&Module{Label: "x", Type: TypeWSDL})
	bad.Edges = append(bad.Edges, Edge{From: 0, To: 9})
	if _, err := eng.Apply(ctx, AddWorkflow(bad)); err == nil {
		t.Error("structurally invalid workflow accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.Apply(cancelled, RemoveWorkflow("w1")); err == nil {
		t.Error("cancelled Apply accepted")
	}
	// An empty batch is a no-op reporting the current generation.
	if gen, err := eng.Apply(ctx); err != nil || gen != genBefore {
		t.Errorf("empty batch: gen %d err %v", gen, err)
	}
}

// gateMeasure blocks its first Compare until released, letting a test hold
// a search in flight while a mutation commits.
type gateMeasure struct {
	inner   contentMeasure
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateMeasure) Name() string { return "gate" }

func (g *gateMeasure) Compare(a, b *Workflow) (float64, error) {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
	return g.inner.Compare(a, b)
}

// TestSearchPinsPreMutationSnapshot is the snapshot-isolation acceptance
// test: a Search issued before Apply completes returns results consistent
// with the pre-mutation repository.
func TestSearchPinsPreMutationSnapshot(t *testing.T) {
	gm := &gateMeasure{started: make(chan struct{}), release: make(chan struct{})}
	eng := mutEngine(t, WithMeasure("gate", gm), WithConcurrency(2))
	ctx := context.Background()
	genBefore := eng.Generation()

	type outcome struct {
		results []Result
		stats   Stats
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		o.results, o.stats, o.err = eng.SearchID(ctx, "w1", SearchOptions{Measure: "gate", K: 10})
		done <- o
	}()

	<-gm.started // the search is mid-scan, pinned to the old snapshot
	gen, err := eng.Apply(ctx,
		AddWorkflow(mutWorkflow("w5", "fetch_sequence")), // would rank top for w1
		RemoveWorkflow("w2"),                             // w1's current best hit
	)
	if err != nil {
		t.Fatal(err)
	}
	if gen != genBefore+1 {
		t.Fatalf("apply generation = %d", gen)
	}
	close(gm.release)

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.stats.Generation != genBefore {
		t.Errorf("in-flight search observed generation %d, want pre-mutation %d", o.stats.Generation, genBefore)
	}
	ids := map[string]float64{}
	for _, r := range o.results {
		ids[r.ID] = r.Similarity
	}
	if _, ok := ids["w5"]; ok {
		t.Error("in-flight search saw a workflow added mid-scan")
	}
	if _, ok := ids["w2"]; !ok {
		t.Error("in-flight search lost a workflow removed mid-scan")
	}
	if len(o.results) != 3 {
		t.Errorf("in-flight search returned %d results, want 3 (pre-mutation corpus)", len(o.results))
	}

	// A fresh search sees the post-mutation repository.
	results, stats, err := eng.SearchID(ctx, "w1", SearchOptions{Measure: "gate", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generation != gen {
		t.Errorf("fresh search generation = %d, want %d", stats.Generation, gen)
	}
	ids = map[string]float64{}
	for _, r := range results {
		ids[r.ID] = r.Similarity
	}
	if _, ok := ids["w5"]; !ok {
		t.Error("fresh search misses the added workflow")
	}
	if _, ok := ids["w2"]; ok {
		t.Error("fresh search still serves the removed workflow")
	}
}

// TestWarmDuplicatesZeroEvaluations is the score-cache acceptance test:
// a repeated Duplicates run with a warm cache performs zero pairwise
// measure evaluations (hit counter equals pair count) and matches the cold
// run exactly.
func TestWarmDuplicatesZeroEvaluations(t *testing.T) {
	cm := &contentMeasure{}
	eng := mutEngine(t, WithScoreCache(1024), WithMeasure("content", cm))
	ctx := context.Background()
	n := eng.Repository().Size()
	pairCount := n * (n - 1) / 2

	cold, coldStats, err := eng.Duplicates(ctx, 0.2, DuplicateOptions{Measure: "content"})
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheMisses != pairCount || coldStats.CacheHits != 0 {
		t.Errorf("cold run: hits %d misses %d, want 0/%d", coldStats.CacheHits, coldStats.CacheMisses, pairCount)
	}
	evalsAfterCold := cm.calls.Load()

	warm, warmStats, err := eng.Duplicates(ctx, 0.2, DuplicateOptions{Measure: "content"})
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.calls.Load(); got != evalsAfterCold {
		t.Errorf("warm run evaluated %d pairs, want 0", got-evalsAfterCold)
	}
	if warmStats.CacheHits != pairCount || warmStats.CacheMisses != 0 {
		t.Errorf("warm run: hits %d misses %d, want %d/0", warmStats.CacheHits, warmStats.CacheMisses, pairCount)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm results diverge from cold:\ncold %v\nwarm %v", cold, warm)
	}
	if cs := eng.CacheStats(); cs.Hits != uint64(pairCount) || cs.Entries == 0 {
		t.Errorf("engine cache stats = %+v", cs)
	}
}

// TestCacheInvalidationOnApply is the generation-bump test: after Apply
// removes or replaces a workflow, cached pairs involving it are never
// served.
func TestCacheInvalidationOnApply(t *testing.T) {
	cm := &contentMeasure{}
	eng := mutEngine(t, WithScoreCache(1024), WithMeasure("content", cm))
	ctx := context.Background()

	// Warm the cache. Under "content", w1–w2 score 1.0 (shared label).
	pairs, _, err := eng.Duplicates(ctx, 0.9, DuplicateOptions{Measure: "content"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].A != "w1" || pairs[0].B != "w2" {
		t.Fatalf("cold duplicates = %v, want the w1-w2 twin pair", pairs)
	}

	// Replace w2 with different content and remove w4.
	if _, err := eng.Apply(ctx,
		ReplaceWorkflow(mutWorkflow("w2", "totally_new_label")),
		RemoveWorkflow("w4"),
	); err != nil {
		t.Fatal(err)
	}

	pairs, stats, err := eng.Duplicates(ctx, 0.9, DuplicateOptions{Measure: "content"})
	if err != nil {
		t.Fatal(err)
	}
	// The stale 1.0 score for (w1, w2) must not be served: under the new
	// content no pair clears the 0.9 threshold.
	if len(pairs) != 0 {
		t.Errorf("stale cached pairs served after Apply: %v", pairs)
	}
	// Generation keying means zero hits right after a mutation.
	if stats.CacheHits != 0 {
		t.Errorf("post-Apply run hit the stale generation %d times", stats.CacheHits)
	}
	n := eng.Repository().Size()
	if stats.CacheMisses != n*(n-1)/2 {
		t.Errorf("post-Apply misses = %d, want %d", stats.CacheMisses, n*(n-1)/2)
	}
	for _, p := range pairs {
		if p.A == "w4" || p.B == "w4" {
			t.Errorf("removed workflow in pair %v", p)
		}
	}
}

// TestDirectMutationDriftRecovery: mutating the repository directly
// (bypassing Apply) must not silently hide workflows from indexed search.
// The next Apply detects the generation lag and rebuilds the index.
func TestDirectMutationDriftRecovery(t *testing.T) {
	eng := mutEngine(t, WithIndex(1), WithMeasure("content", &contentMeasure{}))
	ctx := context.Background()

	// Bypass Apply: the engine's index never sees wX.
	if err := eng.Repository().Add(mutWorkflow("wX", "drifted_label")); err != nil {
		t.Fatal(err)
	}
	// Indexed search degrades to an exact scan (generation mismatch), so
	// the directly-added workflow is still found.
	results, _, err := eng.SearchID(ctx, "wX", SearchOptions{Measure: "content", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Errorf("degraded search returned %d results, want 4", len(results))
	}

	// The next Apply must not stamp the index current while it still lacks
	// wX: it rebuilds instead, and searches from a wX twin find it via the
	// index afterwards.
	if _, err := eng.Apply(ctx, AddWorkflow(mutWorkflow("wY", "drifted_label"))); err != nil {
		t.Fatal(err)
	}
	ist, _ := eng.IndexStats()
	if ist.Rebuilds != 1 {
		t.Errorf("rebuilds = %d, want exactly 1 (drift recovery)", ist.Rebuilds)
	}
	if ist.Generation != eng.Generation() {
		t.Errorf("index generation %d != repository %d after recovery", ist.Generation, eng.Generation())
	}
	results, stats, err := eng.SearchID(ctx, "wY", SearchOptions{Measure: "content", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned == 0 && len(results) == 5 {
		t.Log("note: nothing pruned on this corpus (fine)")
	}
	found := false
	for _, r := range results {
		found = found || r.ID == "wX"
	}
	if !found {
		t.Error("rebuilt index still hides the directly-added workflow")
	}
}

// TestConcurrentSearchDuringApply exercises reads racing mutation batches;
// under -race (CI) it is the engine's torn-state detector.
func TestConcurrentSearchDuringApply(t *testing.T) {
	cm := &contentMeasure{}
	eng := mutEngine(t, WithIndex(1), WithScoreCache(256), WithMeasure("content", cm))
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := eng.SearchID(ctx, "w1", SearchOptions{Measure: "content", K: 5}); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := eng.Duplicates(ctx, 0.5, DuplicateOptions{Measure: "content"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for round := 0; round < 25; round++ {
		id := "churn"
		if _, err := eng.Apply(ctx, AddWorkflow(mutWorkflow(id, "spin_label"))); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Apply(ctx,
			ReplaceWorkflow(mutWorkflow(id, "spun_label")),
			RemoveWorkflow(id),
		); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	ist, _ := eng.IndexStats()
	if ist.Rebuilds != 0 {
		t.Errorf("churn triggered %d full rebuilds", ist.Rebuilds)
	}
	if ist.Live != 4 {
		t.Errorf("index live = %d after churn, want 4", ist.Live)
	}
}
