package wfsim

import (
	"fmt"
	"testing"
)

// TestRegistryRoundTripsEveryFamily parses every canonical scalar name the
// notation can express — MS/PS/GE x np/ip x ta/tm/te x all six schemes, plus
// BW and BT — and checks Measure.Name() round-trips it.
func TestRegistryRoundTripsEveryFamily(t *testing.T) {
	reg := NewRegistry()
	names := reg.Builtin()
	if len(names) != 2+3*2*3*6 {
		t.Fatalf("Builtin() = %d names, want %d", len(names), 2+3*2*3*6)
	}
	for _, name := range names {
		m, err := reg.Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		if m.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, m.Name())
		}
	}
}

func TestRegistryRoundTripsSuffixes(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{
		"MS_np_ta_pw0_greedy", "GE_np_ta_pw0_nonorm", "PS_ip_te_pll_greedy_nonorm",
	} {
		m, err := reg.Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, m.Name())
		}
	}
}

// TestRegistryShorthand checks missing/reordered tokens canonicalize: the
// notation parser classifies tokens by value, defaults preprocessing to np
// and preselection to ta, and renders the canonical order.
func TestRegistryShorthand(t *testing.T) {
	reg := NewRegistry()
	cases := map[string]string{
		"MS_plm":               "MS_np_ta_plm",
		"MS_pll":               "MS_np_ta_pll",
		"GE_ip_pll":            "GE_ip_ta_pll",
		"MS_te_pll":            "MS_np_te_pll",
		"MS_te_ip_pll":         "MS_ip_te_pll",
		"ms_ip_te_pll":         "MS_ip_te_pll",
		"PS_nonorm_pll":        "PS_np_ta_pll_nonorm",
		"bw":                   "BW",
		"bt":                   "BT",
		"MS_PLL":               "MS_np_ta_pll",
		"ENS(MS_plm+bw)":       "ENS(MS_np_ta_plm+BW)",
		"ensemble(MS_plm,BW)":  "ENS(MS_np_ta_plm+BW)",
		"ensemble(MS_plm, BW)": "ENS(MS_np_ta_plm+BW)",
	}
	for in, want := range cases {
		got, err := reg.Canonical(in)
		if err != nil {
			t.Errorf("Canonical(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryNestedEnsemble(t *testing.T) {
	reg := NewRegistry()
	got, err := reg.Canonical("ensemble(BT, ensemble(BW, MS_plm), GE_ip_te_pll)")
	if err != nil {
		t.Fatal(err)
	}
	want := "ENS(BT+ENS(BW+MS_np_ta_plm)+GE_ip_te_pll)"
	if got != want {
		t.Errorf("nested ensemble = %q, want %q", got, want)
	}
	// The canonical form itself parses back.
	if _, err := reg.Parse(got); err != nil {
		t.Errorf("canonical form %q does not re-parse: %v", got, err)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewRegistry()
	bad := []string{
		"", "   ", "XX", "MS", "MS_np", "MS_np_ta", "MS_np_ta_nope",
		"ZZ_np_ta_pll", "MS_xx_ta_pll", "MS_np_xx_pll",
		"MS_np_ta_pll_bogus",
		"MS_np_ip_pll",      // duplicate preprocessing
		"MS_ta_te_pll",      // duplicate preselection
		"MS_pll_plm",        // duplicate scheme
		"ENS(BW)",           // single member
		"ensemble(BW)",      // single member, alternate spelling
		"ENS(BW+",           // unterminated
		"ensemble(BW,,BT)",  // empty member
		"ENS(BW+(BT)",       // unbalanced parens
		"ensemble(BW+BT))",  // unbalanced parens
		"ensemble(BW,nope)", // unknown member
	}
	for _, name := range bad {
		if _, err := reg.Parse(name); err == nil {
			t.Errorf("Parse(%q) should fail", name)
		}
	}
}

type constantMeasure struct {
	name string
	v    float64
}

func (m constantMeasure) Name() string { return m.name }
func (m constantMeasure) Compare(a, b *Workflow) (float64, error) {
	return m.v, nil
}

func TestRegistryCustomMeasures(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("half", constantMeasure{name: "half", v: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("half", constantMeasure{name: "half", v: 0.5}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Register("bad name", constantMeasure{name: "x"}); err == nil {
		t.Error("name with notation characters accepted")
	}
	// Built-in notation must not be shadowable ("MS" alone is fine: it
	// never resolves without a scheme, so there is nothing to shadow).
	for _, name := range []string{"BW", "bt"} {
		if err := reg.Register(name, constantMeasure{name: name}); err == nil {
			t.Errorf("Register(%q) shadows built-in notation", name)
		}
	}
	m, err := reg.Parse("half")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "half" {
		t.Errorf("Name = %q", m.Name())
	}
	// Custom measures compose into ensembles with built-ins.
	ens, err := reg.Parse("ensemble(half, BW)")
	if err != nil {
		t.Fatal(err)
	}
	if ens.Name() != "ENS(half+BW)" {
		t.Errorf("ensemble name = %q", ens.Name())
	}
	if got := reg.Registered(); len(got) != 1 || got[0] != "half" {
		t.Errorf("Registered = %v", got)
	}
}

func TestRegistryBuiltinAllParse(t *testing.T) {
	reg := NewRegistry()
	for _, scheme := range []string{"pw0", "pw3", "pll", "plm", "gw1", "gll"} {
		name := fmt.Sprintf("GE_ip_te_%s", scheme)
		if _, err := reg.Parse(name); err != nil {
			t.Errorf("Parse(%q): %v", name, err)
		}
	}
}
