package wfsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/repoknow"
)

// Default measure-resolution knobs: the paper's best overall configuration
// as the default measure, its importance-projection threshold, and an
// interactive-scale GED budget.
const (
	// DefaultMeasure is the paper's best structural configuration
	// (Module Sets, importance projection, type equivalence, label edit
	// distance), used wherever a measure name is left empty.
	DefaultMeasure = "MS_ip_te_pll"
	// DefaultProjectionThreshold is the importance-projection cut-off; any
	// positive threshold separates the type scorer's 0/1 scores.
	DefaultProjectionThreshold = 0.5
	// DefaultGEDDeadline is the per-pair graph-edit-distance budget.
	DefaultGEDDeadline = 5 * time.Second
	// DefaultGEDBeamWidth bounds the GED search frontier.
	DefaultGEDBeamWidth = 64
)

// Registry resolves measure names in the paper's notation into configured
// Measure values and holds custom, caller-registered measures. It accepts,
// beyond the canonical "{MS|PS|GE}_{np|ip}_{ta|tm|te}_{scheme}" form:
//
//   - shorthand with tokens omitted or reordered — "MS_plm" means
//     "MS_np_ta_plm", "GE_te_ip_pll" means "GE_ip_te_pll";
//   - "_greedy" (greedy module mapping) and "_nonorm" (skip normalization)
//     suffix tokens;
//   - ensembles in either "ENS(a+b)" or "ensemble(a, b)" spelling, nested
//     arbitrarily, whose members may be custom registered measures.
//
// Parsed measures render their canonical notation via Measure.Name().
// A Registry is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	custom  map[string]Measure
	project measures.Projector
	// projEpoch counts projector replacements; cached pairwise scores carry
	// the epoch they were computed under, so SetProjector acts as a cache
	// flush for projection-dependent scores.
	projEpoch atomic.Uint64
	// gedDeadline and gedBeam are the default GED budget; Engine clamps the
	// deadline further when a context deadline is nearer.
	gedDeadline time.Duration
	gedBeam     int
}

// NewRegistry returns a registry with the paper's defaults: type-scorer
// importance projection at threshold 0.5 and the default GED budget.
func NewRegistry() *Registry {
	return &Registry{
		custom:      map[string]Measure{},
		project:     repoknow.NewProjector(repoknow.TypeScorer{}, DefaultProjectionThreshold).Project,
		gedDeadline: DefaultGEDDeadline,
		gedBeam:     DefaultGEDBeamWidth,
	}
}

// SetProjector replaces the importance projection applied by "ip" measures
// and bumps the projector epoch, retiring every cached score computed under
// the previous projection (see Engine's score cache).
func (r *Registry) SetProjector(project func(*Workflow) *Workflow) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.project = project
	r.projEpoch.Add(1)
}

// ProjectorEpoch returns the number of times the projector has been
// replaced. Cached pairwise scores are keyed by this epoch so a
// projection-threshold or scorer change can never serve a score computed
// under a different projector.
func (r *Registry) ProjectorEpoch() uint64 { return r.projEpoch.Load() }

// projectorState captures the current projector together with its epoch
// under one lock, so a concurrent SetProjector cannot pair one projector
// with the other's epoch in a cache key.
func (r *Registry) projectorState() (measures.Projector, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.project, r.projEpoch.Load()
}

// SetGEDBudget replaces the default per-pair GED deadline and beam width.
func (r *Registry) SetGEDBudget(deadline time.Duration, beamWidth int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gedDeadline = deadline
	r.gedBeam = beamWidth
}

// Register adds a custom measure under the given name. The name must be
// non-empty, free of the notation metacharacters "_+(),", not already taken,
// and not resolvable as built-in notation (so "BW" cannot be shadowed).
// Registered measures resolve in Parse and inside ensembles.
func (r *Registry) Register(name string, m Measure) error {
	if name == "" || m == nil {
		return fmt.Errorf("Register needs a name and a measure")
	}
	if strings.ContainsAny(name, "_+(), ") {
		return fmt.Errorf("measure name %q contains notation characters", name)
	}
	if _, err := canonicalScalar(name); err == nil {
		return fmt.Errorf("measure name %q shadows built-in notation", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.custom[name]; dup {
		return fmt.Errorf("measure %q already registered", name)
	}
	r.custom[name] = m
	return nil
}

// Registered returns the names of custom measures, sorted.
func (r *Registry) Registered() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.custom))
	for n := range r.custom {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Builtin enumerates every canonical scalar measure name the notation can
// express without suffixes: BW, BT and the full structural sweep
// (3 topologies x 2 preprocessings x 3 preselections x 6 schemes).
func (r *Registry) Builtin() []string {
	names := []string{"BW", "BT"}
	for _, topo := range []string{"MS", "PS", "GE"} {
		for _, pre := range []string{"np", "ip"} {
			for _, sel := range []string{"ta", "tm", "te"} {
				for _, scheme := range []string{"pw0", "pw3", "pll", "plm", "gw1", "gll"} {
					names = append(names, fmt.Sprintf("%s_%s_%s_%s", topo, pre, sel, scheme))
				}
			}
		}
	}
	return names
}

// GEDBudget returns the registry's current default per-pair GED deadline
// and beam width.
func (r *Registry) GEDBudget() (time.Duration, int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gedDeadline, r.gedBeam
}

// Parse resolves a measure name with the registry's default GED budget.
func (r *Registry) Parse(name string) (Measure, error) {
	deadline, beam := r.GEDBudget()
	return r.parseWithBudget(name, deadline, beam)
}

// Canonical returns the canonical notation for a measure name, e.g.
// "ensemble(MS_plm, BW)" canonicalizes to "ENS(MS_np_ta_plm+BW)".
func (r *Registry) Canonical(name string) (string, error) {
	m, err := r.Parse(name)
	if err != nil {
		return "", err
	}
	return m.Name(), nil
}

func (r *Registry) parseWithBudget(name string, deadline time.Duration, beam int) (Measure, error) {
	r.mu.RLock()
	project := r.project
	r.mu.RUnlock()
	return r.parseResolved(name, deadline, beam, project)
}

// parseResolved resolves a measure name against an explicit projector — the
// engine passes the projection belonging to the snapshot a read pinned, so
// "ip" measures never mix another generation's module frequencies into the
// parse.
func (r *Registry) parseResolved(name string, deadline time.Duration, beam int, project measures.Projector) (Measure, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return nil, fmt.Errorf("empty measure name")
	}
	r.mu.RLock()
	custom, isCustom := r.custom[name]
	r.mu.RUnlock()
	if isCustom {
		return custom, nil
	}
	if inner, ok := ensembleBody(name); ok {
		parts, err := splitTopLevel(inner)
		if err != nil {
			return nil, fmt.Errorf("ensemble %q: %w", name, err)
		}
		if len(parts) < 2 {
			return nil, fmt.Errorf("ensemble %q needs >= 2 members", name)
		}
		members := make([]Measure, len(parts))
		for i, part := range parts {
			m, err := r.parseResolved(part, deadline, beam, project)
			if err != nil {
				return nil, err
			}
			members[i] = m
		}
		return measures.NewEnsemble(members...), nil
	}
	canonical, err := canonicalScalar(name)
	if err != nil {
		return nil, err
	}
	return measures.Parse(canonical, measures.ParseOptions{
		Project:      project,
		GEDDeadline:  deadline,
		GEDBeamWidth: beam,
	})
}

// ensembleBody strips an "ENS(...)" or "ensemble(...)" wrapper
// (case-insensitively), returning the member list between the parentheses.
func ensembleBody(name string) (string, bool) {
	open := strings.IndexByte(name, '(')
	if open < 0 || !strings.HasSuffix(name, ")") {
		return "", false
	}
	switch strings.ToLower(name[:open]) {
	case "ens", "ensemble":
		return name[open+1 : len(name)-1], true
	}
	return "", false
}

// splitTopLevel splits an ensemble member list on "+" or "," at parenthesis
// depth zero, so nested ensembles stay intact.
func splitTopLevel(s string) ([]string, error) {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses in %q", s)
			}
		case '+', ',':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses in %q", s)
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("empty member in %q", s)
		}
	}
	return parts, nil
}

// canonicalScalar normalizes a non-ensemble name to the canonical
// "{TOPO}_{np|ip}_{ta|tm|te}_{scheme}[_greedy][_nonorm]" form. Tokens after
// the topology may appear in any order; missing preprocessing defaults to
// np, missing preselection to ta.
func canonicalScalar(name string) (string, error) {
	switch strings.ToUpper(name) {
	case "BW":
		return "BW", nil
	case "BT":
		return "BT", nil
	}
	parts := strings.Split(name, "_")
	topo := strings.ToUpper(parts[0])
	switch topo {
	case "MS", "PS", "GE":
	default:
		return "", fmt.Errorf("%q is not a known measure: want BW, BT, a registered name, {MS|PS|GE}_... notation, or ENS(...)/ensemble(...)", name)
	}
	pre, sel, scheme := "", "", ""
	greedy, nonorm := false, false
	for _, tok := range parts[1:] {
		switch t := strings.ToLower(tok); t {
		case "np", "ip":
			if pre != "" {
				return "", fmt.Errorf("%q: duplicate preprocessing token %q", name, tok)
			}
			pre = t
		case "ta", "tm", "te":
			if sel != "" {
				return "", fmt.Errorf("%q: duplicate preselection token %q", name, tok)
			}
			sel = t
		case "greedy":
			greedy = true
		case "nonorm":
			nonorm = true
		default:
			if _, ok := module.SchemeByName(t); !ok {
				return "", fmt.Errorf("%q: unknown token %q (want np/ip, ta/tm/te, a scheme like pll, greedy or nonorm)", name, tok)
			}
			if scheme != "" {
				return "", fmt.Errorf("%q: duplicate scheme token %q", name, tok)
			}
			scheme = t
		}
	}
	if scheme == "" {
		return "", fmt.Errorf("%q: missing module-comparison scheme (pw0, pw3, pll, plm, gw1 or gll)", name)
	}
	if pre == "" {
		pre = "np"
	}
	if sel == "" {
		sel = "ta"
	}
	out := fmt.Sprintf("%s_%s_%s_%s", topo, pre, sel, scheme)
	if greedy {
		out += "_greedy"
	}
	if nonorm {
		out += "_nonorm"
	}
	return out, nil
}
