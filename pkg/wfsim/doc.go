// Package wfsim is the public API of the workflow-similarity library — a
// stable facade over the internal reproduction of Starlinger, Brancotte,
// Cohen-Boulakia and Leser, "Similarity Search for Scientific Workflows"
// (PVLDB 7(12), 2014).
//
// The entry point is Engine, built from a Repository of workflows with
// functional options:
//
//	repo, _ := wfsim.LoadRepository("corpus.json")
//	eng, _ := wfsim.New(repo,
//		wfsim.WithIndex(1),              // filter-and-refine acceleration
//		wfsim.WithConcurrency(8),        // worker-pool width
//		wfsim.WithGEDBudget(5*time.Second, 64),
//	)
//	results, stats, err := eng.SearchID(ctx, "1189", wfsim.SearchOptions{
//		Measure: "MS_ip_te_pll", K: 10,
//	})
//
// Every method takes a context: cancellation drains the internal worker
// pools promptly, and a context deadline bounds the whole call — including
// the per-pair graph-edit-distance budget, the API form of the paper's
// GED-timeout semantics.
//
// The repository is mutable and snapshot-versioned, matching the paper's
// living-repository setting. Engine.Apply commits a transactional batch of
// AddWorkflow / RemoveWorkflow / ReplaceWorkflow mutations under a new
// generation number; every read pins an immutable Snapshot, so in-flight
// queries are never torn by writers. With WithIndex the inverted label
// index is maintained incrementally (O(labels) per op, tombstones plus
// periodic compaction — never a full rebuild), and WithScoreCache adds a
// sharded LRU of pairwise scores keyed by measure, ID pair and generation,
// shared across Search, Duplicates and Cluster:
//
//	eng, _ := wfsim.New(repo, wfsim.WithIndex(1), wfsim.WithScoreCache(1<<16))
//	gen, err := eng.Apply(ctx, wfsim.AddWorkflow(wf), wfsim.RemoveWorkflow("42"))
//	results, stats, _ := eng.SearchID(ctx, "1189", wfsim.SearchOptions{K: 10})
//	// stats.Generation == gen; stats.CacheHits/CacheMisses report cache reuse.
//
// Measures are named in the paper's notation and resolved through a
// Registry: "BW", "BT", "{MS|PS|GE}_{np|ip}_{ta|tm|te}_{scheme}" with
// optional "_greedy"/"_nonorm" suffixes, shorthand forms such as "MS_plm"
// (missing tokens default to np and ta), and ensembles written either
// "ENS(BW+MS_ip_te_pll)" or "ensemble(BW, MS_ip_te_pll)". Custom Measure
// implementations can be registered under new names and combined into
// ensembles like any built-in.
package wfsim
