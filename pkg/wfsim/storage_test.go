package wfsim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
)

// storageWorkflow builds a small valid workflow for storage tests.
func storageWorkflow(id string, labels ...string) *Workflow {
	w := NewWorkflow(id)
	w.Annotations.Title = "wf " + id
	prev := -1
	for i, label := range labels {
		idx := w.AddModule(&Module{ID: fmt.Sprintf("m%d", i), Label: label, Type: TypeWSDL})
		if prev >= 0 {
			if err := w.AddEdge(prev, idx); err != nil {
				panic(err)
			}
		}
		prev = idx
	}
	return w
}

func newStoredEngine(t *testing.T, dir string, extra ...Option) *Engine {
	t.Helper()
	repo, err := NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]Option{WithStorage(dir), WithIndex(1), WithScoreCache(1 << 12)}, extra...)
	eng, err := New(repo, opts...)
	if err != nil {
		t.Fatalf("New with storage: %v", err)
	}
	return eng
}

func ingestFixture(t *testing.T, eng *Engine) {
	t.Helper()
	ctx := context.Background()
	if _, err := eng.Apply(ctx,
		AddWorkflow(storageWorkflow("a", "fetch_sequence", "run_blast")),
		AddWorkflow(storageWorkflow("b", "fetch_sequence", "plot_hits")),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(ctx,
		AddWorkflow(storageWorkflow("c", "load_image", "segment_cells")),
	); err != nil {
		t.Fatal(err)
	}
}

// TestStorageRestartRoundTrip is the headline durability contract: ingest,
// close, reopen from the same directory — same generation, same query
// results, and a warm score cache that answers the repeat query without a
// single measure evaluation.
func TestStorageRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	eng1 := newStoredEngine(t, dir)
	ingestFixture(t, eng1)
	res1, stats1, err := eng1.SearchID(ctx, "a", SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1) == 0 || res1[0].ID != "b" {
		t.Fatalf("pre-restart search results %v, want b first", res1)
	}
	gen1 := eng1.Generation()
	if err := eng1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	eng2 := newStoredEngine(t, dir)
	defer eng2.Close()
	if got := eng2.Generation(); got != gen1 {
		t.Fatalf("restart generation %d, want %d", got, gen1)
	}
	st, ok := eng2.StorageStats()
	if !ok {
		t.Fatal("engine with WithStorage reports no storage stats")
	}
	if st.Recovery.Generation != gen1 || st.Recovery.Workflows != 3 {
		t.Fatalf("recovery stats %+v, want generation %d with 3 workflows", st.Recovery, gen1)
	}
	if st.WarmCacheEntries == 0 {
		t.Fatal("no warm cache entries re-seeded after restart")
	}

	res2, stats2, err := eng2.SearchID(ctx, "a", SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != len(res1) {
		t.Fatalf("restart search returned %d results, want %d", len(res2), len(res1))
	}
	for i := range res2 {
		if res2[i].ID != res1[i].ID || res2[i].Similarity != res1[i].Similarity {
			t.Fatalf("restart result %d = %+v, want %+v", i, res2[i], res1[i])
		}
	}
	if stats2.Generation != stats1.Generation {
		t.Fatalf("restart served generation %d, want %d", stats2.Generation, stats1.Generation)
	}
	if stats2.CacheMisses != 0 || stats2.CacheHits == 0 {
		t.Fatalf("restart search was not warm: %d hits / %d misses, want all hits", stats2.CacheHits, stats2.CacheMisses)
	}
}

// TestStorageCrashRestart skips Close entirely — the kill -9 path: the
// fsynced log alone must reproduce the repository.
func TestStorageCrashRestart(t *testing.T) {
	dir := t.TempDir()
	eng1 := newStoredEngine(t, dir)
	ingestFixture(t, eng1)
	gen1 := eng1.Generation()
	// No Close: the daemon was killed. (The still-open file handle is
	// dropped with eng1; every commit was already fsynced.)

	eng2 := newStoredEngine(t, dir)
	defer eng2.Close()
	if got := eng2.Generation(); got != gen1 {
		t.Fatalf("crash-restart generation %d, want %d", got, gen1)
	}
	res, _, err := eng2.SearchID(context.Background(), "a", SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != "b" {
		t.Fatalf("crash-restart search results %v, want b first", res)
	}
	if st, _ := eng2.StorageStats(); st.Recovery.SnapshotLoaded {
		t.Fatal("crash restart claims a snapshot was loaded; none was ever written")
	}
}

// TestStorageCompactionThreshold proves Apply-driven compaction: with a
// 2-record threshold every other batch checkpoints, the log stays short,
// and restarts recover from snapshot + tail.
func TestStorageCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	eng := newStoredEngine(t, dir, WithStorage(dir, StorageCompaction(-1, 2)))
	for i := 0; i < 5; i++ {
		if _, err := eng.Apply(ctx, AddWorkflow(storageWorkflow(fmt.Sprintf("w%d", i), "step_a", "step_b"))); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := eng.StorageStats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions after 5 commits with a 2-record threshold: %+v", st)
	}
	if st.LogRecords >= 5 {
		t.Fatalf("log never truncated: %d records", st.LogRecords)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2 := newStoredEngine(t, dir)
	defer eng2.Close()
	if eng2.Generation() != 5 || eng2.Snapshot().Size() != 5 {
		t.Fatalf("recovered generation %d size %d, want 5/5", eng2.Generation(), eng2.Snapshot().Size())
	}
	st2, _ := eng2.StorageStats()
	if !st2.Recovery.SnapshotLoaded {
		t.Fatal("recovery after compaction did not load a snapshot")
	}
}

// TestStorageRefusesNonEmptyRepository pins the double-load guard at the
// engine layer: recovering stored state into a repository that already has
// contents must fail construction.
func TestStorageRefusesNonEmptyRepository(t *testing.T) {
	dir := t.TempDir()
	eng := newStoredEngine(t, dir)
	ingestFixture(t, eng)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	repo, err := NewRepository(storageWorkflow("pre", "loaded_step"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(repo, WithStorage(dir)); err == nil || !strings.Contains(err.Error(), "refusing to recover") {
		t.Fatalf("New over stored state with non-empty repository: %v, want refusal", err)
	}
}

// TestStoragePreloadBaseline: a pre-populated repository adopting a fresh
// directory persists its contents as the baseline snapshot.
func TestStoragePreloadBaseline(t *testing.T) {
	dir := t.TempDir()
	repo, err := NewRepository(storageWorkflow("pre", "loaded_step", "second_step"))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(repo, WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), AddWorkflow(storageWorkflow("post", "third_step"))); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close): both the baseline snapshot and the logged batch
	// must survive.
	eng2 := newStoredEngine(t, dir)
	defer eng2.Close()
	snap := eng2.Snapshot()
	if snap.Size() != 2 || snap.Get("pre") == nil || snap.Get("post") == nil {
		t.Fatalf("recovered %v, want pre and post", snap.IDs())
	}
}

// TestApplyAfterCloseFails: Close flushes and fences; later mutations must
// not silently succeed in RAM while the log no longer records them.
func TestApplyAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	eng := newStoredEngine(t, dir)
	ingestFixture(t, eng)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	_, err := eng.Apply(context.Background(), AddWorkflow(storageWorkflow("late", "too_late")))
	if !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Apply after Close: %v, want storage.ErrClosed", err)
	}
	if eng.Snapshot().Get("late") != nil {
		t.Fatal("rejected mutation is visible in memory")
	}
	// Reads still work after Close.
	if _, _, err := eng.SearchID(context.Background(), "a", SearchOptions{K: 3}); err != nil {
		t.Fatalf("read after Close: %v", err)
	}
}

// TestHasStoredState drives the daemon's preload-conflict check.
func TestHasStoredState(t *testing.T) {
	dir := t.TempDir()
	if has, err := HasStoredState(dir); err != nil || has {
		t.Fatalf("empty dir: has=%v err=%v", has, err)
	}
	eng := newStoredEngine(t, dir)
	if has, err := HasStoredState(dir); err != nil || has {
		t.Fatalf("opened-but-unwritten dir: has=%v err=%v, want false", has, err)
	}
	ingestFixture(t, eng)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if has, err := HasStoredState(dir); err != nil || !has {
		t.Fatalf("dir with committed state: has=%v err=%v, want true", has, err)
	}
}

// TestWarmCacheStaleOnDifferentProjection: a restart with a different
// projection configuration must boot cold, not serve scores computed under
// another projection.
func TestWarmCacheStaleOnDifferentProjection(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	eng1 := newStoredEngine(t, dir)
	ingestFixture(t, eng1)
	if _, _, err := eng1.SearchID(ctx, "a", SearchOptions{K: 5}); err != nil {
		t.Fatal(err)
	}
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}

	eng2 := newStoredEngine(t, dir, WithRepositoryKnowledge(0.5))
	defer eng2.Close()
	if st, _ := eng2.StorageStats(); st.WarmCacheEntries != 0 {
		t.Fatalf("warm cache re-seeded across a projection change: %d entries", st.WarmCacheEntries)
	}
}
