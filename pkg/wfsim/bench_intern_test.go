package wfsim

import (
	"context"
	"testing"

	"repro/internal/index"
	"repro/internal/measures"
	"repro/internal/storage"
)

// benchStringRepo clones the corpus into a repository with interning
// disabled — the pre-intern string representation the hot paths are
// benchmarked against.
func benchStringRepo(b *testing.B, c *GeneratedCorpus) *Repository {
	b.Helper()
	base, err := NewRepository()
	if err != nil {
		b.Fatal(err)
	}
	if err := base.AdoptSymtab(nil); err != nil {
		b.Fatal(err)
	}
	for _, wf := range c.Repo.Workflows() {
		if err := base.Add(wf.Clone()); err != nil {
			b.Fatal(err)
		}
	}
	return base
}

// BenchmarkLabelSetDuplicates is the label-set-heavy full pair scan: the
// pure label-set measure over every pair of a corpus, where the interned
// representation replaces per-pair canonical-set construction and hashing
// with a 256-bit popcount prescreen plus one sorted merge over []uint32.
// No score cache: every iteration pays the full scan.
func BenchmarkLabelSetDuplicates(b *testing.B) {
	const corpusSize = 10000
	c := benchCorpusN(b, corpusSize)
	ctx := context.Background()
	run := func(b *testing.B, repo *Repository) {
		eng, err := New(repo, WithMeasure("LS", measures.LabelSets{}))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pairs, _, err := eng.Duplicates(ctx, 0.9, DuplicateOptions{Measure: "LS"})
			if err != nil {
				b.Fatal(err)
			}
			if len(pairs) == 0 {
				b.Fatal("no high-overlap pairs in bench corpus")
			}
		}
	}
	b.Run("interned", func(b *testing.B) { run(b, c.Repo) })
	b.Run("string", func(b *testing.B) { run(b, benchStringRepo(b, c)) })
}

// BenchmarkIndexBuild times a full inverted-index build over the corpus.
// Interned workflows contribute their cached sorted label sets directly;
// the string path canonicalizes and interns every label per insert.
func BenchmarkIndexBuild(b *testing.B) {
	const corpusSize = 10000
	c := benchCorpusN(b, corpusSize)
	run := func(b *testing.B, repo *Repository) {
		snap := repo.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx := index.Build(snap)
			if idx.Size() != corpusSize {
				b.Fatalf("index holds %d workflows", idx.Size())
			}
		}
	}
	b.Run("interned", func(b *testing.B) { run(b, c.Repo) })
	b.Run("string", func(b *testing.B) { run(b, benchStringRepo(b, c)) })
}

// BenchmarkBootReintern times engine boot over a pre-symbol-table data
// directory: recovery reads the legacy snapshot and WAL tail, re-interns
// every recovered label, and reports the layout as migrated. The fixture
// is rebuilt outside the timed section each iteration (a boot converts
// nothing on disk, but Close writes a current-format snapshot).
func BenchmarkBootReintern(b *testing.B) {
	const corpusSize = 2000
	c := benchCorpusN(b, corpusSize)
	wfs := make([]*Workflow, 0, corpusSize)
	for _, wf := range c.Repo.Workflows() {
		wfs = append(wfs, wf.Clone())
	}
	quiet := StorageWarnings(func(string, ...any) {})
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			if err := storage.WriteLegacyFixture(dir, 1, wfs[:corpusSize-8], wfs[corpusSize-8:]); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			eng, err := New(mustRepo(b), WithStorage(dir, quiet))
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st, _ := eng.StorageStats()
			if !st.Recovery.MigratedFormat || eng.Size() != corpusSize {
				b.Fatalf("migration boot recovered %d workflows (migrated=%v)",
					eng.Size(), st.Recovery.MigratedFormat)
			}
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("current", func(b *testing.B) {
		dir := b.TempDir()
		if err := storage.WriteLegacyFixture(dir, 1, wfs[:corpusSize-8], wfs[corpusSize-8:]); err != nil {
			b.Fatal(err)
		}
		// One boot+close converts the directory to the current format.
		eng, err := New(mustRepo(b), WithStorage(dir, quiet))
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := New(mustRepo(b), WithStorage(dir, quiet))
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st, _ := eng.StorageStats()
			if st.Recovery.MigratedFormat || eng.Size() != corpusSize {
				b.Fatalf("current-format boot recovered %d workflows (migrated=%v)",
					eng.Size(), st.Recovery.MigratedFormat)
			}
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

func mustRepo(b *testing.B) *Repository {
	b.Helper()
	repo, err := NewRepository()
	if err != nil {
		b.Fatal(err)
	}
	return repo
}
