// Package serve is the long-lived HTTP/JSON front-end over a wfsim.Engine:
// the similarity library turned into a service that many concurrent clients
// can mutate and query — the living-repository setting of Starlinger et al.
// at service scale, in the spirit of long-running query services with
// bounded per-request response times.
//
// Endpoints (all JSON):
//
//	POST /v1/search            top-k similarity search (by query_id or inline query)
//	POST /v1/compare           pairwise scores under a measure set
//	POST /v1/duplicates        near-duplicate pairs at a threshold
//	POST /v1/cluster           functional clustering of the repository
//	POST /v1/workflows:batch   transactional mutation batch over Engine.Apply
//	                           (JSON {"ops": [...]} or streaming NDJSON, one op per line)
//	GET  /v1/workflows/{id}    fetch one workflow
//	GET  /v1/stats             engine + server counters
//	GET  /healthz              liveness
//
// Every read is served from a pinned repository snapshot and reports the
// generation it observed plus the call's score-cache hit/miss counters, so
// clients can correlate results with the mutation stream. Per-request
// deadlines (request field "deadline_ms", default/ceiling set by Config)
// bound the whole call and clamp the per-pair GED budget — a slow
// graph-edit-distance pair fails fast instead of blowing the response time.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/pkg/wfsim"
)

// Config tunes a Server. The zero value is usable: requests without a
// deadline get DefaultDeadline, and no request may exceed MaxDeadline.
type Config struct {
	// DefaultDeadline applies when a request carries no deadline_ms
	// (default 30s). It bounds the call context and therefore clamps the
	// per-pair GED budget.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 2m).
	MaxDeadline time.Duration
	// MaxBodyBytes caps request bodies (default 32 MiB). Batch ingest of
	// large corpora should stream NDJSON rather than grow one JSON array.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	return c
}

// Server is the HTTP front-end. Build one with New and mount it (it
// implements http.Handler); it is safe for concurrent use — reads are
// snapshot-pinned and mutation batches serialize through Engine.Apply.
type Server struct {
	eng *wfsim.Engine
	cfg Config
	mux *http.ServeMux

	started  time.Time
	requests atomic.Int64 // HTTP requests served
	batches  atomic.Int64 // successful mutation batches
	ops      atomic.Int64 // mutations committed across batches
}

// New builds a Server over eng.
func New(eng *wfsim.Engine, cfg Config) *Server {
	s := &Server{eng: eng, cfg: cfg.withDefaults(), mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/compare", s.handleCompare)
	s.mux.HandleFunc("POST /v1/duplicates", s.handleDuplicates)
	s.mux.HandleFunc("POST /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("POST /v1/workflows:batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/workflows/{id}", s.handleGetWorkflow)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// Engine returns the engine the server fronts.
func (s *Server) Engine() *wfsim.Engine { return s.eng }

// errorPayload is the uniform error envelope.
type errorPayload struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) //wfsimvet:ignore errpath status and headers are already on the wire; there is no channel left to report an encode failure on
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorPayload{Error: fmt.Sprintf(format, args...)})
}

// writeReadError maps a read-path failure: an expired or cancelled request
// deadline is a timeout, everything else a bad request (unknown measure,
// unknown workflow ID, malformed options).
func writeReadError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// decodeBody decodes one JSON request body into v, rejecting trailing data
// and unknown fields (misspelled options should fail loudly, not silently).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decode request: trailing data after JSON body")
	}
	return nil
}

// contextFor derives the request context honoring the deadline_ms request
// field: missing or zero uses the default deadline, anything above the cap
// is clamped. The deadline bounds the whole call and tightens the per-pair
// GED budget through the engine.
func (s *Server) contextFor(r *http.Request, deadlineMillis int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMillis > 0 {
		d = time.Duration(deadlineMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

// statsPayload mirrors wfsim.Stats over the wire. Generation is the pinned
// snapshot the call was served from; CacheHits/CacheMisses are the call's
// score-cache counters.
type statsPayload struct {
	Measure     string   `json:"measure"`
	Scored      int      `json:"scored"`
	Skipped     int      `json:"skipped"`
	Pruned      int      `json:"pruned,omitempty"`
	CacheHits   int      `json:"cache_hits"`
	CacheMisses int      `json:"cache_misses"`
	Generation  uint64   `json:"generation"`
	Generations []uint64 `json:"generations,omitempty"`
	ElapsedMS   float64  `json:"elapsed_ms"`
}

func toStatsPayload(st wfsim.Stats) statsPayload {
	return statsPayload{
		Measure:     st.Measure,
		Scored:      st.Scored,
		Skipped:     st.Skipped,
		Pruned:      st.Pruned,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
		Generation:  st.Generation,
		Generations: st.Generations,
		ElapsedMS:   float64(st.Elapsed) / float64(time.Millisecond),
	}
}

// --- search ---

type searchRequest struct {
	// QueryID names a repository workflow as the query; Query carries an
	// inline workflow instead. Exactly one must be set.
	QueryID       string          `json:"query_id,omitempty"`
	Query         *wfsim.Workflow `json:"query,omitempty"`
	Measure       string          `json:"measure,omitempty"`
	K             int             `json:"k,omitempty"`
	MinSimilarity *float64        `json:"min_similarity,omitempty"`
	Exact         bool            `json:"exact,omitempty"`
	IncludeQuery  bool            `json:"include_query,omitempty"`
	DeadlineMS    int64           `json:"deadline_ms,omitempty"`
}

type resultPayload struct {
	ID         string  `json:"id"`
	Similarity float64 `json:"similarity"`
}

type searchResponse struct {
	Results []resultPayload `json:"results"`
	Stats   statsPayload    `json:"stats"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if (req.QueryID == "") == (req.Query == nil) {
		writeError(w, http.StatusBadRequest, "exactly one of query_id and query must be set")
		return
	}
	ctx, cancel := s.contextFor(r, req.DeadlineMS)
	defer cancel()
	opts := wfsim.SearchOptions{
		Measure:       req.Measure,
		K:             req.K,
		MinSimilarity: req.MinSimilarity,
		Exact:         req.Exact,
		IncludeQuery:  req.IncludeQuery,
	}
	var (
		results []wfsim.Result
		stats   wfsim.Stats
		err     error
	)
	if req.QueryID != "" {
		results, stats, err = s.eng.SearchID(ctx, req.QueryID, opts)
	} else {
		if err := req.Query.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "invalid query workflow: %v", err)
			return
		}
		results, stats, err = s.eng.Search(ctx, req.Query, opts)
	}
	if err != nil {
		writeReadError(w, err)
		return
	}
	resp := searchResponse{Results: make([]resultPayload, len(results)), Stats: toStatsPayload(stats)}
	for i, res := range results {
		resp.Results[i] = resultPayload{ID: res.ID, Similarity: res.Similarity}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- compare ---

type compareRequest struct {
	AID        string   `json:"a_id"`
	BID        string   `json:"b_id"`
	Measures   []string `json:"measures,omitempty"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
}

type scorePayload struct {
	Measure    string  `json:"measure"`
	Similarity float64 `json:"similarity"`
	Error      string  `json:"error,omitempty"`
}

type compareResponse struct {
	Scores     []scorePayload `json:"scores"`
	Generation uint64         `json:"generation"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.AID == "" || req.BID == "" {
		writeError(w, http.StatusBadRequest, "a_id and b_id are required")
		return
	}
	ctx, cancel := s.contextFor(r, req.DeadlineMS)
	defer cancel()
	scores, gen, err := s.eng.CompareIDs(ctx, req.AID, req.BID, req.Measures...)
	if err != nil {
		writeReadError(w, err)
		return
	}
	resp := compareResponse{Scores: make([]scorePayload, len(scores)), Generation: gen}
	for i, sc := range scores {
		resp.Scores[i] = scorePayload{Measure: sc.Measure, Similarity: sc.Similarity}
		if sc.Err != nil {
			resp.Scores[i].Error = sc.Err.Error()
			resp.Scores[i].Similarity = 0
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- duplicates ---

type duplicatesRequest struct {
	Threshold  float64 `json:"threshold"`
	Measure    string  `json:"measure,omitempty"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
}

type pairPayload struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Similarity float64 `json:"similarity"`
}

type duplicatesResponse struct {
	Pairs []pairPayload `json:"pairs"`
	Stats statsPayload  `json:"stats"`
}

func (s *Server) handleDuplicates(w http.ResponseWriter, r *http.Request) {
	var req duplicatesRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Threshold <= 0 || req.Threshold > 1 {
		writeError(w, http.StatusBadRequest, "threshold %v out of range (0, 1]", req.Threshold)
		return
	}
	ctx, cancel := s.contextFor(r, req.DeadlineMS)
	defer cancel()
	pairs, stats, err := s.eng.Duplicates(ctx, req.Threshold, wfsim.DuplicateOptions{Measure: req.Measure})
	if err != nil {
		writeReadError(w, err)
		return
	}
	resp := duplicatesResponse{Pairs: make([]pairPayload, len(pairs)), Stats: toStatsPayload(stats)}
	for i, p := range pairs {
		resp.Pairs[i] = pairPayload{A: p.A, B: p.B, Similarity: p.Similarity}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- cluster ---

type clusterRequest struct {
	Measure       string   `json:"measure,omitempty"`
	MinSimilarity *float64 `json:"min_similarity,omitempty"`
	SingleLinkage bool     `json:"single_linkage,omitempty"`
	DeadlineMS    int64    `json:"deadline_ms,omitempty"`
}

type clusterResponse struct {
	Measure     string     `json:"measure"`
	Clusters    [][]string `json:"clusters"`
	Skipped     int        `json:"skipped"`
	Generation  uint64     `json:"generation"`
	Generations []uint64   `json:"generations,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req clusterRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.contextFor(r, req.DeadlineMS)
	defer cancel()
	res, err := s.eng.Cluster(ctx, wfsim.ClusterOptions{
		Measure:       req.Measure,
		MinSimilarity: req.MinSimilarity,
		SingleLinkage: req.SingleLinkage,
	})
	if err != nil {
		writeReadError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, clusterResponse{
		Measure:     res.Measure,
		Clusters:    res.Clusters,
		Skipped:     res.Skipped,
		Generation:  res.Generation,
		Generations: res.Generations,
	})
}

// --- mutation batch ---

// batchOp is one mutation over the wire: {"op": "add"|"replace", "workflow":
// {...}} or {"op": "remove", "id": "..."}.
type batchOp struct {
	Op       string          `json:"op"`
	ID       string          `json:"id,omitempty"`
	Workflow *wfsim.Workflow `json:"workflow,omitempty"`
}

type batchRequest struct {
	Ops []batchOp `json:"ops"`
}

type batchResponse struct {
	// Generation is the repository generation the batch committed under
	// (the aggregate generation for a sharded engine).
	Generation uint64 `json:"generation"`
	// Generations is the post-batch per-shard generation vector; omitted for
	// unsharded engines.
	Generations []uint64 `json:"generations,omitempty"`
	// Ops is the number of mutations in the committed batch.
	Ops int `json:"ops"`
}

func (op batchOp) toMutation(i int) (wfsim.Mutation, error) {
	switch strings.ToLower(op.Op) {
	case "add":
		if op.Workflow == nil {
			return wfsim.Mutation{}, fmt.Errorf("op %d: add needs a workflow", i)
		}
		return wfsim.AddWorkflow(op.Workflow), nil
	case "replace":
		if op.Workflow == nil {
			return wfsim.Mutation{}, fmt.Errorf("op %d: replace needs a workflow", i)
		}
		return wfsim.ReplaceWorkflow(op.Workflow), nil
	case "remove":
		if op.ID == "" {
			return wfsim.Mutation{}, fmt.Errorf("op %d: remove needs an id", i)
		}
		return wfsim.RemoveWorkflow(op.ID), nil
	default:
		return wfsim.Mutation{}, fmt.Errorf("op %d: unknown op %q (want add, replace or remove)", i, op.Op)
	}
}

// handleBatch ingests one transactional mutation batch. Two encodings:
//
//   - application/json (default): {"ops": [{...}, ...]}
//   - application/x-ndjson: one op object per line, streamed; the batch is
//     everything until EOF and still commits all-or-nothing.
//
// Either way the whole batch goes through Engine.Apply: it commits under a
// single new generation or not at all, and concurrent reads keep their
// pinned snapshots.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var ops []batchOp
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && (mt == "application/x-ndjson" || mt == "application/ndjson") {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		for {
			var op batchOp
			if err := dec.Decode(&op); err == io.EOF {
				break
			} else if err != nil {
				writeError(w, http.StatusBadRequest, "decode ndjson op %d: %v", len(ops), err)
				return
			}
			ops = append(ops, op)
		}
	} else {
		var req batchRequest
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ops = req.Ops
	}
	if len(ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	muts := make([]wfsim.Mutation, len(ops))
	for i, op := range ops {
		m, err := op.toMutation(i)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		muts[i] = m
	}
	gens, err := s.eng.ApplyVector(r.Context(), muts...)
	if err != nil {
		// The batch was rejected atomically: repository, index and caches
		// are untouched. ID conflicts (stale client state, retryable after
		// a refetch) are 409s; structurally invalid workflows and other
		// malformed batches are 400s; a dead request context is a timeout.
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "%v", err)
		case errors.Is(err, wfsim.ErrNotFound) || errors.Is(err, wfsim.ErrDuplicateID):
			writeError(w, http.StatusConflict, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.batches.Add(1)
	s.ops.Add(int64(len(ops)))
	resp := batchResponse{Ops: len(ops)}
	for _, g := range gens {
		resp.Generation += g
	}
	if s.eng.Shards() > 1 {
		resp.Generations = gens
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- workflow fetch, stats, health ---

// workflowResponse wraps a fetched workflow with the generation it was read
// at, so a client interleaving fetches with mutations can tell which state
// it observed.
type workflowResponse struct {
	Workflow   *wfsim.Workflow `json:"workflow"`
	Generation uint64          `json:"generation"`
}

func (s *Server) handleGetWorkflow(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wf := s.eng.Workflow(id)
	if wf == nil {
		writeError(w, http.StatusNotFound, "workflow %q not found", id)
		return
	}
	writeJSON(w, http.StatusOK, workflowResponse{Workflow: wf, Generation: s.eng.Generation()})
}

type statsResponse struct {
	// Generation is the engine's current generation (the aggregate, summed
	// across shards, for a sharded engine).
	Generation uint64 `json:"generation"`
	// Shards and Generations describe a sharded engine: the shard count and
	// the per-shard generation vector. Omitted for unsharded engines.
	Shards      int      `json:"shards,omitempty"`
	Generations []uint64 `json:"generations,omitempty"`
	Workflows   int      `json:"workflows"`
	// Index, Cache and Storage are cross-shard aggregates on a sharded
	// engine; PerShard holds the per-shard breakdown.
	Index             *wfsim.IndexStats   `json:"index,omitempty"`
	Cache             wfsim.CacheStats    `json:"cache"`
	Storage           *wfsim.StorageStats `json:"storage,omitempty"`
	PerShard          []wfsim.ShardInfo   `json:"per_shard,omitempty"`
	ProjectorRebuilds int                 `json:"projector_rebuilds"`
	UptimeMS          float64             `json:"uptime_ms"`
	Requests          int64               `json:"requests"`
	Batches           int64               `json:"batches"`
	OpsApplied        int64               `json:"ops_applied"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Generation:        s.eng.Generation(),
		Workflows:         s.eng.Size(),
		Cache:             s.eng.CacheStats(),
		ProjectorRebuilds: s.eng.ProjectorRebuilds(),
		UptimeMS:          float64(time.Since(s.started)) / float64(time.Millisecond),
		Requests:          s.requests.Load(),
		Batches:           s.batches.Load(),
		OpsApplied:        s.ops.Load(),
	}
	if n := s.eng.Shards(); n > 1 {
		resp.Shards = n
		resp.Generations = s.eng.Generations()
		resp.PerShard = s.eng.ShardStats()
	}
	if ist, ok := s.eng.IndexStats(); ok {
		resp.Index = &ist
	}
	if sst, ok := s.eng.StorageStats(); ok {
		resp.Storage = &sst
	}
	writeJSON(w, http.StatusOK, resp)
}

type healthzResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Workflows  int    `json:"workflows"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:     "ok",
		Generation: s.eng.Generation(),
		Workflows:  s.eng.Size(),
	})
}
