package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/wfsim"
	"repro/pkg/wfsim/serve"
)

// chainWorkflow builds a valid chain workflow over the given module labels.
func chainWorkflow(id string, labels ...string) *wfsim.Workflow {
	w := wfsim.NewWorkflow(id)
	prev := -1
	for _, l := range labels {
		i := w.AddModule(&wfsim.Module{Label: l, Type: wfsim.TypeWSDL})
		if prev >= 0 {
			_ = w.AddEdge(prev, i)
		}
		prev = i
	}
	return w
}

// slowMeasure spends d per pair, so request deadlines have something to cut
// short.
type slowMeasure struct{ d time.Duration }

func (m slowMeasure) Name() string { return "slow" }
func (m slowMeasure) Compare(a, b *wfsim.Workflow) (float64, error) {
	time.Sleep(m.d)
	return 0.5, nil
}

// newTestServer builds an engine over a small corpus and mounts the serve
// handler on an httptest server.
func newTestServer(t *testing.T, cfg serve.Config, opts ...wfsim.Option) (*httptest.Server, *wfsim.Engine) {
	t.Helper()
	repo, err := wfsim.NewRepository(
		chainWorkflow("w1", "fetch_sequence", "align_genomes"),
		chainWorkflow("w2", "fetch_sequence", "render_plot"),
		chainWorkflow("w3", "call_variants", "export_report"),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := wfsim.New(repo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(eng, cfg))
	t.Cleanup(ts.Close)
	return ts, eng
}

// postJSON posts v as JSON and decodes the response body into out (when
// non-nil), returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode response %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

type wireStats struct {
	Measure     string  `json:"measure"`
	Scored      int     `json:"scored"`
	Skipped     int     `json:"skipped"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	Generation  uint64  `json:"generation"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

type wireSearch struct {
	Results []struct {
		ID         string  `json:"id"`
		Similarity float64 `json:"similarity"`
	} `json:"results"`
	Stats wireStats `json:"stats"`
	Error string    `json:"error"`
}

// TestRoundTrip is the service acceptance test: ingest over HTTP (JSON batch
// and NDJSON stream), then search, duplicates, compare, cluster, fetch and
// stats all observe the mutations, with every read reporting the generation
// and cache counters it was served under.
func TestRoundTrip(t *testing.T) {
	ts, eng := newTestServer(t, serve.Config{}, wfsim.WithScoreCache(1024), wfsim.WithIndex(1))
	genBefore := eng.Generation()

	// JSON batch: one add, one replace, one remove — transactional.
	var br struct {
		Generation uint64 `json:"generation"`
		Ops        int    `json:"ops"`
	}
	status := postJSON(t, ts.URL+"/v1/workflows:batch", map[string]any{
		"ops": []map[string]any{
			{"op": "add", "workflow": chainWorkflow("w4", "fetch_sequence", "annotate_pathways")},
			{"op": "replace", "workflow": chainWorkflow("w3", "fetch_sequence", "export_report")},
			{"op": "remove", "id": "w2"},
		},
	}, &br)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	if br.Generation != genBefore+1 || br.Ops != 3 {
		t.Fatalf("batch response = %+v, want generation %d, 3 ops", br, genBefore+1)
	}

	// NDJSON stream: two more adds in one transactional batch.
	var nd bytes.Buffer
	for _, wf := range []*wfsim.Workflow{
		chainWorkflow("w5", "fetch_sequence", "cluster_expression"),
		chainWorkflow("w6", "plot_phylogeny", "render_tree"),
	} {
		op, _ := json.Marshal(map[string]any{"op": "add", "workflow": wf})
		nd.Write(op)
		nd.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/workflows:batch", "application/x-ndjson", &nd)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson batch status = %d", resp.StatusCode)
	}

	// Search by repository ID: w1, w3, w4, w5 share "fetch_sequence".
	var sr wireSearch
	if status := postJSON(t, ts.URL+"/v1/search", map[string]any{"query_id": "w1", "k": 10}, &sr); status != http.StatusOK {
		t.Fatalf("search status = %d (%s)", status, sr.Error)
	}
	if sr.Stats.Generation != genBefore+2 {
		t.Errorf("search generation = %d, want %d", sr.Stats.Generation, genBefore+2)
	}
	got := map[string]bool{}
	for _, r := range sr.Results {
		got[r.ID] = true
	}
	if got["w2"] {
		t.Error("search served the removed workflow w2")
	}
	if !got["w4"] || !got["w5"] {
		t.Errorf("search misses ingested workflows: %v", got)
	}

	// Inline-query search: a workflow that never entered the repository.
	if status := postJSON(t, ts.URL+"/v1/search", map[string]any{
		"query": chainWorkflow("external", "fetch_sequence", "align_genomes"),
		"k":     3,
	}, &sr); status != http.StatusOK {
		t.Fatalf("inline search status = %d (%s)", status, sr.Error)
	}
	if len(sr.Results) == 0 {
		t.Error("inline search returned nothing")
	}

	// Duplicates: warm the cache, then verify the repeated call reports
	// hits — the response carries the call's cache counters.
	var dr struct {
		Pairs []struct {
			A, B       string
			Similarity float64
		} `json:"pairs"`
		Stats wireStats `json:"stats"`
		Error string    `json:"error"`
	}
	pairCount := 5 * 4 / 2 // 5 workflows after the two batches
	if status := postJSON(t, ts.URL+"/v1/duplicates", map[string]any{"threshold": 0.2}, &dr); status != http.StatusOK {
		t.Fatalf("duplicates status = %d (%s)", status, dr.Error)
	}
	cold := dr.Stats
	// Earlier searches may have warmed some pairs; every pair is accounted
	// for either way.
	if cold.CacheHits+cold.CacheMisses != pairCount {
		t.Errorf("cold duplicates cache counters = %d/%d, want sum %d", cold.CacheHits, cold.CacheMisses, pairCount)
	}
	if status := postJSON(t, ts.URL+"/v1/duplicates", map[string]any{"threshold": 0.2}, &dr); status != http.StatusOK {
		t.Fatalf("warm duplicates status = %d", status)
	}
	if dr.Stats.CacheHits != pairCount || dr.Stats.CacheMisses != 0 {
		t.Errorf("warm duplicates cache counters = %d/%d, want %d/0",
			dr.Stats.CacheHits, dr.Stats.CacheMisses, pairCount)
	}

	// Compare and cluster.
	var cr struct {
		Scores []struct {
			Measure    string  `json:"measure"`
			Similarity float64 `json:"similarity"`
			Error      string  `json:"error"`
		} `json:"scores"`
		Generation uint64 `json:"generation"`
	}
	if status := postJSON(t, ts.URL+"/v1/compare", map[string]any{
		"a_id": "w1", "b_id": "w4", "measures": []string{"MS_pll", "BW"},
	}, &cr); status != http.StatusOK {
		t.Fatalf("compare status = %d", status)
	}
	if len(cr.Scores) != 2 || cr.Generation != genBefore+2 {
		t.Errorf("compare response = %+v", cr)
	}
	var cl struct {
		Clusters   [][]string `json:"clusters"`
		Generation uint64     `json:"generation"`
	}
	if status := postJSON(t, ts.URL+"/v1/cluster", map[string]any{"measure": "MS_pll"}, &cl); status != http.StatusOK {
		t.Fatalf("cluster status = %d", status)
	}
	members := 0
	for _, c := range cl.Clusters {
		members += len(c)
	}
	if members != 5 {
		t.Errorf("clustering covers %d workflows, want 5", members)
	}

	// Fetch one workflow; then a miss.
	resp, err = http.Get(ts.URL + "/v1/workflows/w4")
	if err != nil {
		t.Fatal(err)
	}
	var wfResp struct {
		Workflow   *wfsim.Workflow `json:"workflow"`
		Generation uint64          `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wfResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wf := wfResp.Workflow
	if resp.StatusCode != http.StatusOK || wf == nil || wf.ID != "w4" || len(wf.Modules) != 2 {
		t.Errorf("workflow fetch: status %d, wf %+v", resp.StatusCode, wf)
	}
	if wfResp.Generation == 0 {
		t.Error("workflow fetch carries no generation stamp")
	}
	resp, err = http.Get(ts.URL + "/v1/workflows/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing workflow status = %d, want 404", resp.StatusCode)
	}

	// Stats reflect the mutation stream.
	var st struct {
		Generation uint64 `json:"generation"`
		Workflows  int    `json:"workflows"`
		Batches    int64  `json:"batches"`
		OpsApplied int64  `json:"ops_applied"`
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Generation != genBefore+2 || st.Workflows != 5 || st.Batches != 2 || st.OpsApplied != 5 {
		t.Errorf("stats = %+v", st)
	}
}

// TestBatchTransactionality: a batch with one bad op must change nothing and
// come back as a conflict.
func TestBatchTransactionality(t *testing.T) {
	ts, eng := newTestServer(t, serve.Config{})
	genBefore := eng.Generation()

	var er struct {
		Error string `json:"error"`
	}
	status := postJSON(t, ts.URL+"/v1/workflows:batch", map[string]any{
		"ops": []map[string]any{
			{"op": "add", "workflow": chainWorkflow("w9", "ok_module")},
			{"op": "remove", "id": "no-such-id"},
		},
	}, &er)
	if status != http.StatusConflict || er.Error == "" {
		t.Errorf("bad batch: status %d, error %q", status, er.Error)
	}
	if eng.Generation() != genBefore {
		t.Error("failed batch bumped the generation")
	}
	if eng.Workflow("w9") != nil {
		t.Error("failed batch partially applied")
	}

	// A duplicate-ID add is a conflict too (stale client state, retryable
	// after a refetch)...
	if status := postJSON(t, ts.URL+"/v1/workflows:batch", map[string]any{
		"ops": []map[string]any{{"op": "add", "workflow": chainWorkflow("w1", "dup_module")}},
	}, nil); status != http.StatusConflict {
		t.Errorf("duplicate add: status %d, want 409", status)
	}
	// ...while malformed batches are 400s — retrying them can never succeed.
	for name, body := range map[string]any{
		"empty batch": map[string]any{"ops": []any{}},
		"unknown op":  map[string]any{"ops": []map[string]any{{"op": "upsert", "id": "w1"}}},
		"add sans wf": map[string]any{"ops": []map[string]any{{"op": "add"}}},
		"invalid wf": map[string]any{"ops": []map[string]any{{"op": "add", "workflow": map[string]any{
			"id":      "bad",
			"modules": []map[string]any{{"id": "m1", "label": "x", "type": "wsdl"}},
			"edges":   []map[string]any{{"from": 0, "to": 9}},
		}}}},
	} {
		if status := postJSON(t, ts.URL+"/v1/workflows:batch", body, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
	if resp, err := http.Post(ts.URL+"/v1/workflows:batch", "application/json", strings.NewReader("{not json")); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed JSON: status %d", resp.StatusCode)
		}
	}
}

// TestRequestValidation covers read-path input errors.
func TestRequestValidation(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	cases := []struct {
		path string
		body any
	}{
		{"/v1/search", map[string]any{}},                                            // neither query_id nor query
		{"/v1/search", map[string]any{"query_id": "w1", "query": map[string]any{}}}, // both
		{"/v1/search", map[string]any{"query_id": "no-such-id"}},
		{"/v1/search", map[string]any{"query_id": "w1", "measure": "XX_bogus"}},
		{"/v1/search", map[string]any{"query_id": "w1", "bogus_field": 1}},
		{"/v1/duplicates", map[string]any{"threshold": 0.0}},
		{"/v1/duplicates", map[string]any{"threshold": 1.5}},
		{"/v1/compare", map[string]any{"a_id": "w1"}},
		{"/v1/compare", map[string]any{"a_id": "w1", "b_id": "no-such-id"}},
		{"/v1/cluster", map[string]any{"measure": "nope_nope"}},
	}
	for _, c := range cases {
		var er struct {
			Error string `json:"error"`
		}
		if status := postJSON(t, ts.URL+c.path, c.body, &er); status != http.StatusBadRequest {
			t.Errorf("%s %v: status %d (%s), want 400", c.path, c.body, status, er.Error)
		}
	}
}

// TestDeadlineBoundsResponse: a request deadline bounds the whole call — a
// scan over a deliberately slow measure is cut off near the deadline instead
// of running to completion, and reports a timeout.
func TestDeadlineBoundsResponse(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{},
		wfsim.WithMeasure("slow", slowMeasure{d: 300 * time.Millisecond}))

	start := time.Now()
	var sr wireSearch
	status := postJSON(t, ts.URL+"/v1/search", map[string]any{
		"query_id": "w1", "measure": "slow", "deadline_ms": 100,
	}, &sr)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Errorf("slow search under 100ms deadline: status %d (%s), want 504", status, sr.Error)
	}
	// 3 pairs x 300ms = 900ms unbounded; the deadline must cut the scan off
	// long before that (generous slack for CI schedulers).
	if elapsed > 700*time.Millisecond {
		t.Errorf("deadline ignored: call took %v", elapsed)
	}
}

// TestDeadlineClampsGEDBudget: the per-request deadline tightens the
// engine's per-pair GED budget — a graph-edit-distance search under a tiny
// deadline returns promptly (all pairs failed fast and were skipped, or the
// call timed out), never taking anywhere near the engine's own generous GED
// budget.
func TestDeadlineClampsGEDBudget(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{},
		wfsim.WithGEDBudget(60*time.Second, 1<<14))

	// Generous deadline: GED completes and scores the corpus.
	var sr wireSearch
	if status := postJSON(t, ts.URL+"/v1/search", map[string]any{
		"query_id": "w1", "measure": "GE_ip_te_pll", "deadline_ms": 10_000,
	}, &sr); status != http.StatusOK {
		t.Fatalf("GED search status = %d (%s)", status, sr.Error)
	}
	if sr.Stats.Measure != "GE_ip_te_pll" || len(sr.Results) == 0 {
		t.Errorf("GED search = %+v", sr)
	}

	// Ingest two large workflows whose pairwise GED at beam width 2^14 is
	// far beyond a 50ms budget, then search under a 50ms deadline: the
	// clamped per-pair budget makes expensive pairs fail fast (skipped), or
	// the call context expires between pairs — either way the response is
	// bounded by the deadline, not by the engine's 60s GED budget.
	big := func(id string) *wfsim.Workflow {
		labels := make([]string, 60)
		for i := range labels {
			labels[i] = fmt.Sprintf("%s_stage_%c%c", id, 'a'+i%26, 'a'+(i*7)%26)
		}
		return chainWorkflow(id, labels...)
	}
	if status := postJSON(t, ts.URL+"/v1/workflows:batch", map[string]any{
		"ops": []map[string]any{
			{"op": "add", "workflow": big("big1")},
			{"op": "add", "workflow": big("big2")},
		},
	}, nil); status != http.StatusOK {
		t.Fatalf("big ingest status = %d", status)
	}
	start := time.Now()
	status := postJSON(t, ts.URL+"/v1/search", map[string]any{
		"query_id": "big1", "measure": "GE_ip_te_pll", "deadline_ms": 50,
	}, &sr)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Errorf("tiny deadline: call took %v, GED budget not clamped", elapsed)
	}
	switch status {
	case http.StatusGatewayTimeout: // context expired mid-scan
	case http.StatusOK: // expensive pairs timed out per-pair and were skipped
		if sr.Stats.Skipped == 0 {
			t.Errorf("tiny deadline scored every pair normally: %+v", sr.Stats)
		}
	default:
		t.Errorf("tiny deadline status = %d (%s)", status, sr.Error)
	}
}

// TestConcurrentIngestAndSearch hammers the service with writers posting
// transactional batches while readers search and fetch stats; under -race
// this is the service-level torn-state detector. Every response must report
// a generation at least as new as any generation observed before the request
// was issued.
func TestConcurrentIngestAndSearch(t *testing.T) {
	ts, eng := newTestServer(t, serve.Config{},
		wfsim.WithIndex(1), wfsim.WithScoreCache(512), wfsim.WithRepositoryKnowledge(0))
	genStart := eng.Generation()

	const writers, readers, rounds = 3, 4, 15
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("w%d-r%d", wr, i)
				status := postJSON(t, ts.URL+"/v1/workflows:batch", map[string]any{
					"ops": []map[string]any{
						{"op": "add", "workflow": chainWorkflow(id, "fetch_sequence", fmt.Sprintf("step_%d_%d", wr, i))},
					},
				}, nil)
				if status != http.StatusOK {
					t.Errorf("writer %d round %d: status %d", wr, i, status)
					return
				}
			}
		}(wr)
	}

	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				genBefore := eng.Generation()
				var sr wireSearch
				status := postJSON(t, ts.URL+"/v1/search", map[string]any{"query_id": "w1", "k": 5}, &sr)
				if status != http.StatusOK {
					t.Errorf("reader: status %d (%s)", status, sr.Error)
					return
				}
				// Snapshots are pinned after genBefore was observed and
				// generations are monotone: serving an older snapshot would
				// be a torn read.
				if sr.Stats.Generation < genBefore {
					t.Errorf("response generation %d older than pre-request generation %d", sr.Stats.Generation, genBefore)
					return
				}
				for _, res := range sr.Results {
					if res.ID == "" || res.Similarity < 0 || res.Similarity > 1 {
						t.Errorf("torn result: %+v", res)
						return
					}
				}
			}
		}()
	}

	// Writers finish first; then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var st struct {
			Batches int64 `json:"batches"`
		}
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Batches >= writers*rounds {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done

	if got, want := eng.Generation(), genStart+writers*rounds; got != want {
		t.Errorf("final generation = %d, want %d (one bump per batch)", got, want)
	}
	if got, want := eng.Snapshot().Size(), 3+writers*rounds; got != want {
		t.Errorf("final corpus size = %d, want %d", got, want)
	}
}

// TestHealthz: liveness reports status and generation.
func TestHealthz(t *testing.T) {
	ts, eng := newTestServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Generation != eng.Generation() {
		t.Errorf("healthz = %d %+v", resp.StatusCode, h)
	}
}

// TestStatsExposesStorage: with durable storage attached, /v1/stats carries a
// storage block (log size, snapshot generation, boot recovery counters);
// without it the key is omitted entirely.
func TestStatsExposesStorage(t *testing.T) {
	ts, eng := newTestServer(t, serve.Config{}, wfsim.WithStorage(t.TempDir()))
	t.Cleanup(func() { eng.Close() })

	status := postJSON(t, ts.URL+"/v1/workflows:batch", map[string]any{
		"ops": []map[string]any{
			{"op": "add", "workflow": chainWorkflow("w4", "durable_step")},
		},
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}

	var st struct {
		Storage *struct {
			Dir                string `json:"dir"`
			LogBytes           int64  `json:"log_bytes"`
			LogRecords         int64  `json:"log_records"`
			SnapshotGeneration uint64 `json:"snapshot_generation"`
			Recovery           struct {
				Generation uint64 `json:"generation"`
			} `json:"recovery"`
		} `json:"storage"`
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Storage == nil {
		t.Fatal("stats response has no storage block despite WithStorage")
	}
	if st.Storage.LogRecords != 1 || st.Storage.LogBytes == 0 {
		t.Errorf("storage stats after one batch = %+v, want 1 nonempty log record", st.Storage)
	}
	// The pre-populated test repository became the baseline snapshot.
	if st.Storage.SnapshotGeneration != 0 {
		t.Errorf("baseline snapshot generation = %d, want 0", st.Storage.SnapshotGeneration)
	}

	// A storage-less server must omit the block.
	ts2, _ := newTestServer(t, serve.Config{})
	var raw map[string]json.RawMessage
	resp, err = http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := raw["storage"]; ok {
		t.Error("stats response carries a storage block without WithStorage")
	}
}

// TestShardedService: a server over a sharded engine reports the per-shard
// generation vector on batch commits and reads, and /v1/stats carries the
// shard count plus per-shard blocks alongside the aggregates.
func TestShardedService(t *testing.T) {
	ts, eng := newTestServer(t, serve.Config{},
		wfsim.WithShards(3), wfsim.WithIndex(1), wfsim.WithScoreCache(1024))
	if eng.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", eng.Shards())
	}

	var batch struct {
		Generation  uint64   `json:"generation"`
		Generations []uint64 `json:"generations"`
		Ops         int      `json:"ops"`
	}
	status := postJSON(t, ts.URL+"/v1/workflows:batch", map[string]any{
		"ops": []map[string]any{
			{"op": "add", "workflow": chainWorkflow("s1", "fetch_sequence", "align_genomes")},
			{"op": "add", "workflow": chainWorkflow("s2", "fetch_sequence", "align_genomes")},
			{"op": "add", "workflow": chainWorkflow("s3", "fetch_sequence", "align_genomes")},
			{"op": "remove", "id": "w3"},
		},
	}, &batch)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	if len(batch.Generations) != 3 {
		t.Fatalf("batch generations = %v, want 3-element vector", batch.Generations)
	}
	var sum uint64
	for _, g := range batch.Generations {
		sum += g
	}
	if batch.Generation != sum || sum == 0 {
		t.Errorf("batch generation %d != vector sum %d", batch.Generation, sum)
	}

	// A conflicting batch fails atomically across shards: the vector must
	// not move even though the batch's first ops land on other shards.
	status = postJSON(t, ts.URL+"/v1/workflows:batch", map[string]any{
		"ops": []map[string]any{
			{"op": "add", "workflow": chainWorkflow("s4", "render_plot")},
			{"op": "add", "workflow": chainWorkflow("s1", "dup")},
		},
	}, nil)
	if status != http.StatusConflict {
		t.Fatalf("conflicting batch status = %d, want 409", status)
	}
	for i, g := range eng.Generations() {
		if g != batch.Generations[i] {
			t.Errorf("shard %d generation %d after failed batch, want %d", i, g, batch.Generations[i])
		}
	}

	var sr struct {
		Results []struct {
			ID string `json:"id"`
		} `json:"results"`
		Stats struct {
			Generation  uint64   `json:"generation"`
			Generations []uint64 `json:"generations"`
		} `json:"stats"`
	}
	status = postJSON(t, ts.URL+"/v1/search", map[string]any{"query_id": "s1", "k": 5}, &sr)
	if status != http.StatusOK {
		t.Fatalf("search status = %d", status)
	}
	if len(sr.Results) == 0 || len(sr.Stats.Generations) != 3 || sr.Stats.Generation != sum {
		t.Errorf("sharded search = %+v, want results and a 3-element generation vector summing to %d", sr, sum)
	}

	var st struct {
		Shards      int      `json:"shards"`
		Generations []uint64 `json:"generations"`
		Workflows   int      `json:"workflows"`
		PerShard    []struct {
			ID         int    `json:"id"`
			Generation uint64 `json:"generation"`
			Workflows  int    `json:"workflows"`
		} `json:"per_shard"`
		Index *struct {
			Live int `json:"live"`
		} `json:"index"`
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Shards != 3 || len(st.Generations) != 3 || len(st.PerShard) != 3 {
		t.Fatalf("sharded stats = %+v, want 3 shards with vector and per-shard blocks", st)
	}
	wfTotal := 0
	for i, ps := range st.PerShard {
		if ps.ID != i {
			t.Errorf("per_shard[%d].id = %d", i, ps.ID)
		}
		wfTotal += ps.Workflows
	}
	if wfTotal != st.Workflows || st.Workflows != eng.Size() {
		t.Errorf("per-shard workflows sum %d, aggregate %d, engine %d", wfTotal, st.Workflows, eng.Size())
	}
	if st.Index == nil || st.Index.Live != eng.Size() {
		t.Errorf("aggregate index block = %+v, want live = %d", st.Index, eng.Size())
	}

	// Unsharded servers omit the shard fields.
	ts2, _ := newTestServer(t, serve.Config{})
	var raw map[string]json.RawMessage
	resp, err = http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"shards", "generations", "per_shard"} {
		if _, ok := raw[key]; ok {
			t.Errorf("unsharded stats response carries %q", key)
		}
	}
}
