package wfsim

import (
	"context"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/index"
)

// Mutation is one operation in an Engine.Apply batch. Build mutations with
// AddWorkflow, RemoveWorkflow and ReplaceWorkflow; the zero Mutation is
// invalid and rejected by Apply.
type Mutation struct {
	op corpus.Op
}

// AddWorkflow inserts a workflow into the repository. Its ID must be
// non-empty and not already present.
func AddWorkflow(wf *Workflow) Mutation {
	m := Mutation{op: corpus.Op{Kind: corpus.OpAdd, Workflow: wf}}
	if wf != nil {
		m.op.ID = wf.ID
	}
	return m
}

// RemoveWorkflow deletes the workflow with the given ID.
func RemoveWorkflow(id string) Mutation {
	return Mutation{op: corpus.Op{Kind: corpus.OpRemove, ID: id}}
}

// ReplaceWorkflow swaps the repository workflow with wf.ID for wf, keeping
// its position. The ID must already be present.
func ReplaceWorkflow(wf *Workflow) Mutation {
	m := Mutation{op: corpus.Op{Kind: corpus.OpReplace, Workflow: wf}}
	if wf != nil {
		m.op.ID = wf.ID
	}
	return m
}

// String describes the mutation for logs and errors.
func (m Mutation) String() string {
	switch m.op.Kind {
	case corpus.OpAdd:
		return "add(" + m.op.ID + ")"
	case corpus.OpRemove:
		return "remove(" + m.op.ID + ")"
	case corpus.OpReplace:
		return "replace(" + m.op.ID + ")"
	default:
		return "invalid"
	}
}

// Apply commits a transactional mutation batch against the repository and
// returns the new generation number. The batch is all-or-nothing: every
// workflow is structurally validated and every op is checked against the
// repository state (with preceding ops of the same batch staged) before
// anything commits, so a failed Apply leaves the repository, the index and
// the caches exactly as they were.
//
// On success the whole batch becomes visible atomically under one new
// generation: the inverted index is maintained incrementally (O(labels) per
// op, no corpus rescans), the score cache's generation keying retires every
// cached pair involving removed or replaced workflows, and the
// repository-knowledge projector (WithRepositoryKnowledge) is recomputed
// from the post-batch snapshot on the next read — "ip" measures never score
// against pre-mutation module frequencies. Reads already in flight keep
// their pinned pre-mutation snapshot.
//
// Concurrent Apply calls are serialised; reads never block on a writer. An
// empty batch is a no-op returning the current generation.
func (e *Engine) Apply(ctx context.Context, muts ...Mutation) (uint64, error) {
	if e.coord != nil {
		gens, err := e.ApplyVector(ctx, muts...)
		if err != nil {
			return 0, err
		}
		var sum uint64
		for _, g := range gens {
			sum += g
		}
		return sum, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if len(muts) == 0 {
		return e.repo.Generation(), nil
	}
	ops, err := mutationOps(muts)
	if err != nil {
		return 0, err
	}
	gen, err := e.repo.ApplyBatch(ops)
	if err != nil {
		return 0, err
	}
	if idx := e.idx.Load(); idx != nil {
		// The index must have been current for the pre-batch repository —
		// generation gen-1, judged against the generation the batch
		// actually committed under, so a direct repository mutation
		// slipping in right before ApplyBatch still reads as drift. (It
		// lags when the repository was mutated directly, bypassing Apply —
		// incremental maintenance would then stamp a generation whose
		// earlier changes the index never saw, silently hiding them.) On
		// lag or on a drifted batch, recover with a full rebuild — the
		// only code path that ever rebuilds. The batch and its generation
		// stamp commit under one index write lock, so a concurrent search
		// can never pass the generation check against a partially-applied
		// or unstamped index.
		if idx.Generation() != gen-1 || idx.Apply(ops, gen) != nil {
			e.rebuildIndex()
		}
	}
	// With storage, checkpoint when the mutation log has outgrown its
	// thresholds; still under applyMu, so compactions never overlap.
	e.maybeCompact()
	return gen, nil
}

// mutationOps validates a batch's mutations and unwraps the corpus ops.
func mutationOps(muts []Mutation) ([]corpus.Op, error) {
	ops := make([]corpus.Op, len(muts))
	for i, m := range muts {
		if m.op.Kind == 0 {
			return nil, fmt.Errorf("wfsim: empty mutation at position %d", i)
		}
		if m.op.Workflow != nil {
			if err := m.op.Workflow.Validate(); err != nil {
				return nil, fmt.Errorf("wfsim: mutation %d (%s): %w", i, m, err)
			}
		}
		ops[i] = m.op
	}
	return ops, nil
}

// ApplyVector is Apply returning the post-batch per-shard generation vector
// instead of the aggregate. On an unsharded engine the vector has one
// element. The same all-or-nothing semantics hold: for a sharded engine,
// every touched shard validates its sub-batch before any shard commits, so a
// batch failing validation anywhere leaves every shard untouched.
func (e *Engine) ApplyVector(ctx context.Context, muts ...Mutation) ([]uint64, error) {
	if e.coord == nil {
		gen, err := e.Apply(ctx, muts...)
		if err != nil {
			return nil, err
		}
		return []uint64{gen}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if e.storeClosed {
		return nil, fmt.Errorf("wfsim: engine is closed")
	}
	if len(muts) == 0 {
		return e.coord.View().Generations(), nil
	}
	ops, err := mutationOps(muts)
	if err != nil {
		return nil, err
	}
	return e.coord.Apply(ops)
}

// rebuildIndex rebuilds the inverted index from the current snapshot. It is
// drift recovery, not routine maintenance: Apply keeps the index current
// incrementally, and IndexStats.Rebuilds stays 0 on that path.
func (e *Engine) rebuildIndex() {
	snap := e.repo.Snapshot()
	idx := index.Build(snap)
	idx.Parallelism = e.concurrency
	idx.SetGeneration(snap.Generation())
	e.idx.Store(idx)
	e.indexRebuilds.Add(1)
}

// IndexStats describes the inverted index's incremental-maintenance state.
type IndexStats struct {
	// Live is the number of searchable workflows in the index.
	Live int `json:"live"`
	// Dead is the number of tombstoned entries awaiting compaction.
	Dead int `json:"dead"`
	// Vocabulary is the number of distinct canonical labels indexed.
	Vocabulary int `json:"vocabulary"`
	// Compactions counts tombstone sweeps (cheap, label-list based).
	Compactions int `json:"compactions"`
	// Rebuilds counts full from-scratch index rebuilds; it stays 0 while
	// all mutations go through Apply.
	Rebuilds int `json:"rebuilds"`
	// Generation is the repository generation the index reflects.
	Generation uint64 `json:"generation"`
}

// IndexStats reports the index's maintenance counters; ok is false when the
// engine was built without WithIndex. For a sharded engine the counters are
// summed across the per-shard indexes (Vocabulary is the sum of per-shard
// vocabularies, not the global distinct-label count, and Generation is the
// aggregate generation); per-shard detail is in ShardStats.
func (e *Engine) IndexStats() (stats IndexStats, ok bool) {
	if e.coord != nil {
		any := false
		for _, info := range e.coord.Infos() {
			if info.Index == nil {
				continue
			}
			any = true
			stats.Live += info.Index.Live
			stats.Dead += info.Index.Dead
			stats.Vocabulary += info.Index.Vocabulary
			stats.Compactions += info.Index.Compactions
			stats.Rebuilds += info.IndexRebuilds
			stats.Generation += info.Index.Generation
		}
		return stats, any
	}
	idx := e.idx.Load()
	if idx == nil {
		return IndexStats{}, false
	}
	s := idx.Stats()
	return IndexStats{
		Live:        s.Live,
		Dead:        s.Dead,
		Vocabulary:  s.Vocabulary,
		Compactions: s.Compactions,
		Rebuilds:    int(e.indexRebuilds.Load()),
		Generation:  s.Generation,
	}, true
}
