package wfsim

import (
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/scorecache"
	"repro/internal/workflow"
)

// CacheStats reports the shared score cache's cumulative hit/miss counters
// and current population.
type CacheStats = scorecache.Stats

// WithScoreCache gives the engine a shared pairwise score cache holding up
// to size entries (a default capacity when size <= 0). The cache is threaded
// through Search, Duplicates and Cluster, so repeated and overlapping
// queries stop re-running measure evaluations — GED, label matching — on
// identical workflow pairs. Entries are keyed by measure, ID pair,
// repository generation and projector epoch: an Apply batch bumps the
// generation, so scores of removed or replaced workflows are never served
// stale, and a projector replacement (repository-knowledge refresh, manual
// SetProjector) bumps the epoch, so scores computed under a different
// importance projection are never served either.
// With WithShards(n), size is the total budget: each shard gets its own
// cache of size/n entries (or the default capacity per shard when
// size <= 0), serving that shard's intra- and cross-shard pair scores.
func WithScoreCache(size int) Option {
	return func(e *Engine) error {
		e.cacheWanted = true
		e.cacheSize = size
		return nil
	}
}

// CacheStats returns the cumulative statistics of the engine's score cache —
// summed across shards for a sharded engine — or zero statistics when the
// engine has none.
func (e *Engine) CacheStats() CacheStats {
	if e.coord != nil {
		var total CacheStats
		for _, info := range e.coord.Infos() {
			if info.Cache != nil {
				total.Hits += info.Cache.Hits
				total.Misses += info.Cache.Misses
				total.Entries += info.Cache.Entries
			}
		}
		return total
	}
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// cachedMeasure decorates a measure with the shared score cache for one read
// call: lookups are keyed to the call's pinned snapshot generation, and only
// pairs whose workflows are the snapshot's own objects are cached (an
// external query workflow can share an ID with a repository workflow without
// sharing its content, so it must not populate the cache). Per-call hit and
// miss counts feed the call's Stats.
type cachedMeasure struct {
	inner        Measure
	name         string
	snap         *corpus.Snapshot
	gen          uint64
	proj         uint64
	cache        *scorecache.Cache
	hits, misses atomic.Int64
}

// cachedFor wraps m for a read over snap; projEpoch is the epoch of the
// projection m was resolved with (see Engine.projectionFor). The second
// return value is nil when the engine has no cache; callers pass it to
// (*cachedMeasure).fill, which tolerates nil.
func (e *Engine) cachedFor(m Measure, snap *corpus.Snapshot, projEpoch uint64) (Measure, *cachedMeasure) {
	if e.cache == nil {
		return orderedMeasure{m}, nil
	}
	cm := &cachedMeasure{
		inner: m,
		name:  m.Name(),
		snap:  snap,
		gen:   snap.Generation(),
		proj:  projEpoch,
		cache: e.cache,
	}
	return cm, cm
}

func (cm *cachedMeasure) Name() string { return cm.name }

// orderedMeasure evaluates pairs in canonical ID order (workflow.OrderPair).
// Measures are symmetric in value but not in bits — a maximum-weight matching
// summed over a transposed weight matrix can differ by ulps — so every scan
// path must fix one evaluation order per unordered pair, or a score computed
// on the Search path (query first) would differ from the same pair's
// Duplicates-scan score. Engines without a cache wrap their measures in this
// so they stay bit-identical to cached engines, which apply the same ordering
// inside cachedMeasure.
type orderedMeasure struct {
	inner Measure
}

func (om orderedMeasure) Name() string { return om.inner.Name() }

func (om orderedMeasure) Compare(a, b *Workflow) (float64, error) {
	a, b = workflow.OrderPair(a, b)
	return om.inner.Compare(a, b)
}

func (cm *cachedMeasure) Compare(a, b *Workflow) (float64, error) {
	// Canonical evaluation order (see orderedMeasure): the cache key is
	// orientation-free, so the cached value must be too.
	a, b = workflow.OrderPair(a, b)
	if cm.snap.Get(a.ID) != a || cm.snap.Get(b.ID) != b {
		return cm.inner.Compare(a, b)
	}
	// Keys are built from the workflows' interned ID symbols. A repository
	// running without a symbol table leaves symbols at 0, which identifies
	// nothing — such pairs are scored directly rather than mis-keyed.
	ida, idb := a.SymID(), b.SymID()
	if ida == 0 || idb == 0 {
		return cm.inner.Compare(a, b)
	}
	key := scorecache.PairKey(cm.name, ida, idb, cm.gen, cm.proj)
	if s, ok := cm.cache.Get(key); ok {
		cm.hits.Add(1)
		return s, nil
	}
	cm.misses.Add(1)
	s, err := cm.inner.Compare(a, b)
	if err != nil {
		// Failures (e.g. GED timeouts) are not cached: the budget differs
		// per call, so a later call may succeed.
		return s, err
	}
	cm.cache.Put(key, s)
	return s, nil
}

// fill copies the per-call cache counters into stats; safe on nil.
func (cm *cachedMeasure) fill(stats *Stats) {
	if cm == nil {
		return
	}
	stats.CacheHits = int(cm.hits.Load())
	stats.CacheMisses = int(cm.misses.Load())
}
