package wfsim

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// benchCorpus caches one generated corpus per size across benchmark runs:
// generation dominates setup at 10k workflows and must not pollute timings.
var (
	benchCorpusMu sync.Mutex
	benchCorpora  = map[int]*GeneratedCorpus{}
)

func benchCorpusN(b *testing.B, n int) *GeneratedCorpus {
	b.Helper()
	benchCorpusMu.Lock()
	defer benchCorpusMu.Unlock()
	if c, ok := benchCorpora[n]; ok {
		return c
	}
	p := TavernaProfile()
	p.Workflows = n
	p.Clusters = n / 12
	c, err := GenerateCorpus(p, 7)
	if err != nil {
		b.Fatal(err)
	}
	benchCorpora[n] = c
	return c
}

// benchShardEngine builds an engine over the cached corpus, unsharded when
// shards == 1. No score cache: the point is the scan itself, not replaying
// cached scores, so every iteration re-evaluates every surviving pair.
func benchShardEngine(b *testing.B, n, shards int) *Engine {
	b.Helper()
	c := benchCorpusN(b, n)
	var opts []Option
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}
	eng, err := New(c.Repo, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkShardedSearch scans one query against the full corpus under the
// default measure at increasing shard counts — the scatter-gather read path
// against the single-engine baseline.
func BenchmarkShardedSearch(b *testing.B) {
	corpusSize := 10000
	if testing.Short() {
		corpusSize = 1000
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := benchShardEngine(b, corpusSize, shards)
			query := benchCorpusN(b, corpusSize).Repo.Workflows()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Search(context.Background(), query, SearchOptions{K: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedDuplicates runs the full pair-matrix near-duplicate scan
// at increasing shard counts. The sharded path additionally specialises the
// measure per scan (projection hoisting plus label-pair memoization), which
// is where the single-core speedup comes from.
func BenchmarkShardedDuplicates(b *testing.B) {
	corpusSize := 10000
	if testing.Short() {
		corpusSize = 1000
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := benchShardEngine(b, corpusSize, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Duplicates(context.Background(), 0.8, DuplicateOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
