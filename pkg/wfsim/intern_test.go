package wfsim

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
)

// internTestCorpus is small enough that the full measure sweep (including
// budgeted graph edit distance) over Search, Duplicates and Cluster stays
// fast, while still spanning several clusters and shard boundaries.
func internTestCorpus(t testing.TB) *GeneratedCorpus {
	t.Helper()
	p := TavernaProfile()
	p.Workflows = 36
	p.Clusters = 5
	c, err := GenerateCorpus(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// stringBaselineEngine builds an engine whose repository has interning
// disabled (AdoptSymtab(nil)) over deep clones of the corpus — the exact
// pre-intern string semantics every ID fast path must reproduce bit for
// bit. Clones drop all derived state, so no symbol ID leaks in.
func stringBaselineEngine(t *testing.T, c *GeneratedCorpus, opts ...Option) *Engine {
	t.Helper()
	base, err := NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	if err := base.AdoptSymtab(nil); err != nil {
		t.Fatal(err)
	}
	for _, wf := range c.Repo.Workflows() {
		if err := base.Add(wf.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if base.Symtab() != nil {
		t.Fatal("baseline repository still interning")
	}
	for _, wf := range base.Workflows() {
		if wf.Resolved() {
			t.Fatalf("baseline workflow %s carries an interned representation", wf.ID)
		}
	}
	eng, err := New(base, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestInternedEquivalenceWithStringBaseline is the tentpole's hard
// invariant: for every registered measure of the Compare spread, Search,
// Duplicates and Cluster on interned engines at 1, 2 and 4 shards return
// results bit-identical to the string baseline.
func TestInternedEquivalenceWithStringBaseline(t *testing.T) {
	ctx := context.Background()
	c := internTestCorpus(t)
	opts := []Option{WithIndex(2), WithScoreCache(1 << 14)}
	base := stringBaselineEngine(t, c, opts...)

	queries := []string{
		c.Repo.Workflows()[0].ID,
		c.Repo.Workflows()[7].ID,
		c.Repo.Workflows()[20].ID,
	}

	for _, n := range []int{1, 2, 4} {
		var engOpts []Option
		if n > 1 {
			engOpts = append([]Option{WithShards(n)}, opts...)
		} else {
			engOpts = opts
		}
		eng, err := New(c.Repo, engOpts...)
		if err != nil {
			t.Fatalf("%d shards: %v", n, err)
		}
		for _, m := range CompareMeasures() {
			for _, q := range queries {
				assertSameSearch(t, base, eng, q, SearchOptions{K: 12, Measure: m})
				// Repeat: the second pass is served from ID-keyed caches
				// and must not change a bit.
				assertSameSearch(t, base, eng, q, SearchOptions{K: 12, Measure: m})
			}

			p0, _, err := base.Duplicates(ctx, 0.45, DuplicateOptions{Measure: m})
			if err != nil {
				t.Fatalf("baseline Duplicates(%s): %v", m, err)
			}
			pN, _, err := eng.Duplicates(ctx, 0.45, DuplicateOptions{Measure: m})
			if err != nil {
				t.Fatalf("%d shards Duplicates(%s): %v", n, m, err)
			}
			if len(p0) != len(pN) {
				t.Fatalf("%s at %d shards: %d duplicate pairs vs %d baseline", m, n, len(pN), len(p0))
			}
			for i := range p0 {
				if p0[i] != pN[i] {
					t.Fatalf("%s at %d shards: pair %d = %+v, baseline %+v", m, n, i, pN[i], p0[i])
				}
			}

			c0, err := base.Cluster(ctx, ClusterOptions{Measure: m})
			if err != nil {
				t.Fatalf("baseline Cluster(%s): %v", m, err)
			}
			cN, err := eng.Cluster(ctx, ClusterOptions{Measure: m})
			if err != nil {
				t.Fatalf("%d shards Cluster(%s): %v", n, m, err)
			}
			if k0, kN := clusterKey(c0.Clusters), clusterKey(cN.Clusters); k0 != kN {
				t.Fatalf("%s at %d shards: clustering differs\nbaseline: %s\ninterned: %s", m, n, k0, kN)
			}
		}
	}
}

// TestSymbolTableStableAcrossRestart proves the ID stability guarantee:
// after a clean restart and after a crash restart, the recovered symbol
// table is element-for-element identical to the live one (zero
// re-interning drift) and warm score-cache entries survive keyed by the
// recovered symbols.
func TestSymbolTableStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	eng1 := newStoredEngine(t, dir)
	ingestFixture(t, eng1)
	if _, _, err := eng1.SearchID(ctx, "a", SearchOptions{K: 5}); err != nil {
		t.Fatal(err)
	}
	syms1 := eng1.repo.Symtab().Symbols()
	if len(syms1) < 2 {
		t.Fatalf("suspiciously small symbol table: %d entries", len(syms1))
	}
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean restart: snapshot/WAL symbols seed the table before the corpus
	// is re-resolved, so every ID comes back exactly as assigned.
	eng2 := newStoredEngine(t, dir)
	syms2 := eng2.repo.Symtab().Symbols()
	assertSameSymbols(t, "clean restart", syms1, syms2)
	st, ok := eng2.StorageStats()
	if !ok {
		t.Fatal("no storage stats")
	}
	if st.Recovery.SymbolsRecovered != len(syms1) {
		t.Errorf("recovery reports %d symbols, want %d", st.Recovery.SymbolsRecovered, len(syms1))
	}
	if st.Recovery.MigratedFormat {
		t.Error("current-format recovery flagged as migrated")
	}
	if st.WarmCacheEntries == 0 {
		t.Error("no warm score-cache entries survived the restart")
	}
	if _, stats, err := eng2.SearchID(ctx, "a", SearchOptions{K: 5}); err != nil {
		t.Fatal(err)
	} else if stats.CacheMisses != 0 || stats.CacheHits == 0 {
		t.Errorf("warm restart search not fully cached: %d hits / %d misses", stats.CacheHits, stats.CacheMisses)
	}

	// Crash restart: grow the table past the snapshot via one more commit,
	// then drop the engine without Close. The WAL symbol delta alone must
	// reproduce the extended table.
	if _, err := eng2.Apply(ctx, AddWorkflow(storageWorkflow("d", "novel_operation", "another_novel_step"))); err != nil {
		t.Fatal(err)
	}
	syms3 := eng2.repo.Symtab().Symbols()
	if len(syms3) <= len(syms1) {
		t.Fatalf("new workflow added no symbols: %d then %d", len(syms1), len(syms3))
	}
	// No Close: kill -9 semantics.

	eng3 := newStoredEngine(t, dir)
	defer eng3.Close()
	assertSameSymbols(t, "crash restart", syms3, eng3.repo.Symtab().Symbols())
}

func assertSameSymbols(t *testing.T, phase string, want, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: symbol table has %d entries, want %d", phase, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: symbol %d = %q, want %q: IDs drifted across restart", phase, i, got[i], want[i])
		}
	}
}

// TestLegacyLayoutMigration boots an engine over a pre-symbol-table data
// directory: the old layout must be migrated by re-interning the recovered
// labels — with a recovery warning, never a refusal — and serve results
// identical to a fresh engine over the same corpus.
func TestLegacyLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	mk := func() []*Workflow {
		return []*Workflow{
			storageWorkflow("a", "fetch_sequence", "run_blast"),
			storageWorkflow("b", "fetch_sequence", "plot_hits"),
		}
	}
	if err := storage.WriteLegacyFixture(dir, 2, mk(), []*Workflow{storageWorkflow("c", "load_image", "segment_cells")}); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	repo, err := NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(repo,
		WithStorage(dir, StorageWarnings(func(format string, args ...any) {
			warnings = append(warnings, fmt.Sprintf(format, args...))
		})),
		WithIndex(1), WithScoreCache(1<<12))
	if err != nil {
		t.Fatalf("open over legacy layout: %v", err)
	}
	st, ok := eng.StorageStats()
	if !ok {
		t.Fatal("no storage stats")
	}
	if !st.Recovery.MigratedFormat {
		t.Error("legacy layout not reported as migrated")
	}
	if st.Recovery.Workflows != 3 || eng.Size() != 3 {
		t.Fatalf("recovered %d workflows (engine size %d), want 3", st.Recovery.Workflows, eng.Size())
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "legacy") && strings.Contains(w, "re-interning") {
			found = true
		}
	}
	if !found {
		t.Errorf("no legacy-migration warning emitted; warnings: %q", warnings)
	}

	// Results must match a fresh in-memory engine over the same corpus.
	fresh, err := NewRepository(append(mk(), storageWorkflow("c", "load_image", "segment_cells"))...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(fresh, WithIndex(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"a", "b", "c"} {
		assertSameSearch(t, ref, eng, q, SearchOptions{K: 5})
	}

	// The first commit after migration persists the rebuilt table; a
	// subsequent restart must reproduce it without drift.
	if _, err := eng.Apply(ctx, AddWorkflow(storageWorkflow("d", "align_reads"))); err != nil {
		t.Fatal(err)
	}
	syms := eng.repo.Symtab().Symbols()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2 := newStoredEngine(t, dir)
	defer eng2.Close()
	assertSameSymbols(t, "post-migration restart", syms, eng2.repo.Symtab().Symbols())
}
