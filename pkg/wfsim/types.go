package wfsim

import (
	"io"

	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/rank"
	"repro/internal/search"
	"repro/internal/wfio"
	"repro/internal/workflow"
)

// Core model types, re-exported so callers outside this module can build
// workflows and repositories without reaching into internal packages.
type (
	// Workflow is a scientific workflow: a DAG of typed, labeled modules
	// with repository annotations (title, description, tags).
	Workflow = workflow.Workflow
	// Module is one workflow step (a web-service call, script, local shim...).
	Module = workflow.Module
	// Annotations carries a workflow's repository metadata.
	Annotations = workflow.Annotations
	// Edge is a directed data link between two modules.
	Edge = workflow.Edge
	// Repository is a mutable, snapshot-versioned in-memory workflow
	// collection with ID lookup and JSON persistence (Save/SaveFile).
	// Mutate it through Engine.Apply to keep the engine's index current.
	Repository = corpus.Repository
	// Snapshot is an immutable, generation-stamped view of a Repository —
	// what every Engine read operation pins for its duration.
	Snapshot = corpus.Snapshot
	// Measure scores the similarity of two workflows; see Registry for the
	// built-in measures and their paper notation.
	Measure = measures.Measure
	// Result is one search hit.
	Result = search.Result
	// Pair is a scored workflow pair, as returned by Engine.Duplicates.
	Pair = search.Pair
)

// Module type identifiers, as found in Taverna and Galaxy repositories.
// They drive type-match/type-equivalence preselection and the importance
// projection's notion of trivial local modules.
const (
	TypeWSDL          = workflow.TypeWSDL
	TypeArbitraryWSDL = workflow.TypeArbitraryWSDL
	TypeSoaplabWSDL   = workflow.TypeSoaplabWSDL
	TypeBioMoby       = workflow.TypeBioMoby
	TypeRESTService   = workflow.TypeRESTService
	TypeBeanshell     = workflow.TypeBeanshell
	TypeRShell        = workflow.TypeRShell
	TypeScript        = workflow.TypeScript
	TypeLocalWorker   = workflow.TypeLocalWorker
	TypeStringConst   = workflow.TypeStringConst
	TypeXMLSplitter   = workflow.TypeXMLSplitter
	TypeXMLMerger     = workflow.TypeXMLMerger
	TypeDataflow      = workflow.TypeDataflow
	TypeTool          = workflow.TypeTool
	TypeUnknown       = workflow.TypeUnknown
)

// Sentinel mutation errors, re-exported for errors.Is discrimination:
// Apply (and direct Repository mutation) failures wrap these, so callers —
// e.g. an HTTP layer separating conflicts from malformed requests — don't
// need to match error strings.
var (
	// ErrNotFound: a remove/replace named an ID the repository lacks.
	ErrNotFound = corpus.ErrNotFound
	// ErrDuplicateID: an add reused an existing workflow ID.
	ErrDuplicateID = corpus.ErrDuplicateID
)

// NewWorkflow returns an empty workflow with the given repository ID.
func NewWorkflow(id string) *Workflow { return workflow.New(id) }

// NewRepository builds a repository from the given workflows.
// Duplicate or empty IDs are rejected.
func NewRepository(wfs ...*Workflow) (*Repository, error) {
	return corpus.NewRepository(wfs...)
}

// LoadRepository reads a repository from a corpus JSON file written by
// Repository.SaveFile (or the wfsim CLI's gen/import commands).
func LoadRepository(path string) (*Repository, error) {
	return corpus.LoadFile(path)
}

// ReadRepository reads a repository from corpus JSON.
func ReadRepository(r io.Reader) (*Repository, error) {
	return corpus.Load(r)
}

// Ranking is an ordered list of candidate IDs with ties, as produced by
// scoring candidates under a measure.
type Ranking = rank.Ranking

// RankingFromScores turns a candidate->score map into a descending ranking;
// scores within eps tie.
func RankingFromScores(scores map[string]float64, eps float64) Ranking {
	return rank.FromScores(scores, eps)
}

// ConsensusRanking aggregates several rankings of the same candidates into
// a consensus with the BioConsert heuristic — how the paper aggregates
// expert rankings before scoring algorithms against them.
func ConsensusRanking(rankings []Ranking) Ranking { return rank.BioConsert(rankings) }

// RankingCorrectness scores a ranking against a reference ranking: the
// paper's correctness measure in [-1, 1] (generalized Kendall agreement).
func RankingCorrectness(reference, r Ranking) float64 {
	return rank.Correctness(reference, r)
}

// ParseT2Flow reads a Taverna-style t2flow XML workflow.
func ParseT2Flow(r io.Reader) (*Workflow, error) { return wfio.ParseT2Flow(r) }

// ParseGalaxy reads a Galaxy .ga JSON workflow.
func ParseGalaxy(r io.Reader) (*Workflow, error) { return wfio.ParseGalaxy(r) }

// WriteT2Flow writes a workflow as Taverna-style t2flow XML.
func WriteT2Flow(w io.Writer, wf *Workflow) error { return wfio.WriteT2Flow(w, wf) }

// WriteGalaxy writes a workflow as Galaxy .ga JSON.
func WriteGalaxy(w io.Writer, wf *Workflow) error { return wfio.WriteGalaxy(w, wf) }

// Synthetic corpus generation, re-exported for demos and benchmarks: the
// generator emits myExperiment-style corpora together with the latent
// ground truth (functional clusters) the paper's gold standard plays.
type (
	// Profile parameterises corpus generation (size, cluster count, module
	// vocabulary mix).
	Profile = gen.Profile
	// GeneratedCorpus bundles a generated Repository with its GroundTruth.
	GeneratedCorpus = gen.Corpus
	// GroundTruth is the generator's latent similarity structure.
	GroundTruth = gen.Truth
)

// TavernaProfile is the myExperiment/Taverna-style generation profile
// (the paper's main corpus: 1483 workflows in 48 functional clusters).
func TavernaProfile() Profile { return gen.Taverna() }

// GalaxyProfile is the Galaxy-style generation profile (139 workflows).
func GalaxyProfile() Profile { return gen.Galaxy() }

// GenerateCorpus deterministically generates a synthetic corpus with latent
// ground truth from the profile and seed.
func GenerateCorpus(p Profile, seed int64) (*GeneratedCorpus, error) {
	return gen.Generate(p, seed)
}
