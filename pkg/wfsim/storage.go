package wfsim

import (
	"errors"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/scorecache"
	"repro/internal/shard"
	"repro/internal/storage"
)

// WithStorage makes the engine's repository durable, backed by the given
// data directory. Every Apply batch is appended to an append-only mutation
// log and fsynced inside the transaction boundary — the in-memory commit
// happens only after the record is durable, so a process killed at any
// instant restarts at the last fully-committed generation. The log is
// periodically compacted into snapshot files, and construction recovers the
// directory's state: latest valid snapshot plus replayed log tail, with a
// torn final record truncated (warned about, never fatal).
//
// The repository passed to New must be empty when the directory holds
// state; an engine over a pre-populated repository and a fresh directory
// persists the initial contents as the baseline snapshot. When the engine
// also has a score cache (WithScoreCache), warm pairwise scores for the
// final generation are persisted on Close and re-seeded on the next boot,
// so a restart is warm, not just correct.
//
// Call Engine.Close on shutdown to flush a final snapshot; mutations after
// Close fail.
func WithStorage(dir string, opts ...StorageOption) Option {
	return func(e *Engine) error {
		if dir == "" {
			return fmt.Errorf("empty storage directory")
		}
		e.storageDir = dir
		for _, o := range opts {
			o(&e.storageCfg)
		}
		return nil
	}
}

// StorageOption fine-tunes WithStorage.
type StorageOption func(*storageConfig)

// storageConfig mirrors the internal storage options on the engine.
type storageConfig struct {
	compactBytes   int64
	compactRecords int64
	noSync         bool
	warnf          func(format string, args ...any)
}

// StorageCompaction sets the log-size thresholds (bytes, records) past
// which a commit triggers snapshot compaction; zero keeps a default,
// negative disables that trigger.
func StorageCompaction(bytes int64, records int) StorageOption {
	return func(c *storageConfig) {
		c.compactBytes = bytes
		c.compactRecords = int64(records)
	}
}

// StorageNoSync skips the per-commit fsync. Only for tests and benchmarks:
// a crash may then lose recent commits (never corrupt the store).
func StorageNoSync() StorageOption {
	return func(c *storageConfig) { c.noSync = true }
}

// StorageWarnings routes storage warnings — torn-tail truncation at boot,
// background compaction failures — to warnf (e.g. log.Printf). Discarded
// by default; the facts are still visible in StorageStats.
func StorageWarnings(warnf func(format string, args ...any)) StorageOption {
	return func(c *storageConfig) { c.warnf = warnf }
}

// StorageStats describes the engine's durability layer: mutation-log size,
// latest snapshot generation, compaction count, and what boot-time recovery
// found (snapshot loaded, records replayed, torn tail truncated).
type StorageStats struct {
	storage.Stats
	// WarmCacheEntries is the number of persisted pairwise scores re-seeded
	// into the score cache at boot.
	WarmCacheEntries int `json:"warm_cache_entries"`
}

// StorageStats reports the durability layer's counters; ok is false when
// the engine was built without WithStorage. For a sharded engine the
// counters are summed across the per-shard stores (Dir is the root data
// directory); per-shard detail is in ShardStats.
func (e *Engine) StorageStats() (stats StorageStats, ok bool) {
	if e.coord != nil {
		if e.storageDir == "" {
			return StorageStats{}, false
		}
		stats.Dir = e.storageDir
		for _, info := range e.coord.Infos() {
			if info.Storage == nil {
				continue
			}
			stats.LogBytes += info.Storage.LogBytes
			stats.LogRecords += info.Storage.LogRecords
			stats.SnapshotGeneration += info.Storage.SnapshotGeneration
			stats.Compactions += info.Storage.Compactions
			stats.Recovery.SnapshotLoaded = stats.Recovery.SnapshotLoaded || info.Storage.Recovery.SnapshotLoaded
			stats.Recovery.SnapshotGeneration += info.Storage.Recovery.SnapshotGeneration
			stats.Recovery.ReplayedRecords += info.Storage.Recovery.ReplayedRecords
			stats.Recovery.ReplayedOps += info.Storage.Recovery.ReplayedOps
			stats.Recovery.TornTailTruncated = stats.Recovery.TornTailTruncated || info.Storage.Recovery.TornTailTruncated
			stats.Recovery.Generation += info.Storage.Recovery.Generation
			stats.Recovery.Workflows += info.Storage.Recovery.Workflows
			stats.Recovery.SymbolsRecovered += info.Storage.Recovery.SymbolsRecovered
			stats.Recovery.MigratedFormat = stats.Recovery.MigratedFormat || info.Storage.Recovery.MigratedFormat
			stats.WarmCacheEntries += info.WarmEntries
		}
		return stats, true
	}
	if e.store == nil {
		return StorageStats{}, false
	}
	return StorageStats{Stats: e.store.Stats(), WarmCacheEntries: e.warmEntries}, true
}

// openStorage runs during New, after all options and before the index and
// projector finalize steps, so both are built over the recovered state.
func (e *Engine) openStorage() error {
	if e.storageCfg.warnf == nil {
		e.storageCfg.warnf = func(string, ...any) {}
	}
	// A directory initialised by a sharded engine must not be opened flat:
	// the corpus lives in the shard subdirectories, and a flat log written
	// alongside would fork the state.
	if n, ok, err := shard.ReadMarker(e.storageDir); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("storage directory %s holds a sharded corpus (%d shards); reopen it with WithShards(%d) (wfsimd: -shards %d)", e.storageDir, n, n, n)
	}
	store, wfs, gen, err := storage.Open(e.storageDir, storage.Options{
		CompactBytes:   e.storageCfg.compactBytes,
		CompactRecords: e.storageCfg.compactRecords,
		NoSync:         e.storageCfg.noSync,
		Warnf:          e.storageCfg.warnf,
		Symtab:         e.repo.Symtab(),
	})
	if err != nil {
		return err
	}
	switch {
	case gen > 0 || len(wfs) > 0:
		if e.repo.Generation() != 0 || e.repo.Snapshot().Size() != 0 {
			store.Close() //wfsimvet:ignore errpath abort path before any write; the refusal error wins
			return fmt.Errorf("storage directory %s holds state at generation %d; refusing to recover into a non-empty repository (preload only into a fresh data directory)", e.storageDir, gen)
		}
		if err := e.repo.Restore(gen, wfs...); err != nil {
			store.Close()
			return err
		}
	case e.repo.Snapshot().Size() > 0 || e.repo.Generation() > 0:
		// Fresh directory under a pre-populated repository: persist the
		// initial contents as the baseline snapshot, so the preload itself
		// survives a restart.
		snap := e.repo.Snapshot()
		if err := store.Compact(snap.Generation(), snap.Workflows()); err != nil {
			store.Close()
			return fmt.Errorf("persist initial repository state: %w", err)
		}
	}
	e.repo.SetCommitHook(func(gen uint64, ops []corpus.Op) error {
		return store.Commit(gen, ops)
	})
	e.store = store
	return nil
}

// projectionSig describes the projection configuration for warm-cache
// validity: persisted scores are only re-seeded into a process whose
// projection is derived the same way (same repository-knowledge threshold,
// or the same static configuration).
func (e *Engine) projectionSig() string {
	if e.repoKnow != nil {
		return fmt.Sprintf("repoknow:%g", e.repoKnow.threshold)
	}
	return "configured"
}

// loadWarmCache re-seeds the score cache from the persisted warm entries,
// if they match the recovered generation and projection configuration.
func (e *Engine) loadWarmCache() {
	if e.store == nil || e.cache == nil {
		return
	}
	snap := e.repo.Snapshot()
	entries, ok := e.store.LoadScoreCache(snap.Generation(), e.projectionSig())
	if !ok {
		return
	}
	gen := snap.Generation()
	_, epoch := e.projectionFor(snap)
	// Warm entries persist workflow IDs as strings; resolve them against
	// the repository's symbol table. An ID the table never saw marks a
	// stale entry, which is skipped rather than mis-keyed.
	tab := e.repo.Symtab()
	if tab == nil {
		return
	}
	n := 0
	for _, ent := range entries {
		a, okA := tab.Lookup(ent.A)
		b, okB := tab.Lookup(ent.B)
		if !okA || !okB || a == 0 || b == 0 {
			continue
		}
		e.cache.Put(scorecache.PairKey(ent.Measure, a, b, gen, epoch), ent.Score)
		n++
	}
	e.warmEntries = n
}

// maybeCompact runs after a committed Apply batch, under applyMu: when the
// log has outgrown its thresholds, checkpoint the post-batch snapshot and
// truncate the covered log prefix. Compaction failure never fails the
// commit — the batch is already durable in the log; the store just stays
// un-truncated until a later attempt succeeds.
func (e *Engine) maybeCompact() {
	if e.store == nil || !e.store.ShouldCompact() {
		return
	}
	snap := e.repo.Snapshot()
	if err := e.store.Compact(snap.Generation(), snap.Workflows()); err != nil && !errors.Is(err, storage.ErrClosed) {
		e.storageCfg.warnf("wfsim: snapshot compaction at generation %d failed: %v", snap.Generation(), err)
	}
}

// Close flushes and closes the engine's durability layer: a final snapshot
// compaction, warm score-cache persistence (when the engine has a cache),
// and release of the underlying files. Mutations after Close fail with a
// storage-closed error; reads keep working from memory. Close is
// idempotent and a no-op for engines without WithStorage.
func (e *Engine) Close() error {
	if e.coord != nil {
		return e.closeSharded()
	}
	if e.store == nil {
		return nil
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if e.storeClosed {
		return nil
	}
	e.storeClosed = true
	snap := e.repo.Snapshot()
	var firstErr error
	if err := e.store.Checkpoint(snap.Generation(), snap.Workflows()); err != nil {
		firstErr = err
	}
	if e.cache != nil {
		gen := snap.Generation()
		_, epoch := e.projectionFor(snap)
		exported := e.cache.Export(func(k scorecache.Key) bool {
			return k.Gen == gen && k.Proj == epoch
		})
		if tab := e.repo.Symtab(); tab != nil && len(exported) > 0 {
			// Persist workflow IDs as strings: the cache file outlives this
			// process's symbol table, so entries are re-resolved at the next
			// boot's warm load.
			entries := make([]storage.CachedScore, 0, len(exported))
			for _, ent := range exported {
				a, b := tab.String(ent.Key.A), tab.String(ent.Key.B)
				if a == "" || b == "" {
					continue
				}
				entries = append(entries, storage.CachedScore{Measure: ent.Key.Measure, A: a, B: b, Score: ent.Score})
			}
			if err := e.store.SaveScoreCache(gen, e.projectionSig(), entries); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := e.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// HasStoredState reports whether dir holds recoverable repository state (a
// snapshot or at least one committed log record, in a flat or sharded
// layout) — what a daemon checks before allowing a corpus preload to target
// the directory.
func HasStoredState(dir string) (bool, error) {
	if has, err := shard.DirHasState(dir); err != nil || has {
		return has, err
	}
	return storage.DirHasState(dir)
}
