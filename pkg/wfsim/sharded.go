package wfsim

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/measures"
	"repro/internal/scorecache"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

// WithShards partitions the corpus across n engine shards by
// consistent-hashed workflow ID. Each shard owns its slice of the corpus,
// its inverted label index (WithIndex), its score cache (WithScoreCache) and
// its own storage directory (WithStorage: shard-NNNN subdirectories under
// the data directory, plus a layout marker recording n). The engine's
// read/write surface is unchanged: reads fan out to every shard and merge
// deterministically, Apply routes each mutation to its owning shard with
// all-or-nothing validation across shards, and results are identical to a
// single-shard engine up to the documented tie-breaking notes in the README.
//
// n = 1 (the default) keeps the single-repository engine and its flat
// storage layout. A data directory initialised with one shard count refuses
// to open with another — resharding on disk is not supported.
func WithShards(n int) Option {
	return func(e *Engine) error {
		if n < 1 {
			return fmt.Errorf("wfsim: shard count %d < 1", n)
		}
		e.shardCount = n
		return nil
	}
}

// openSharded is the WithShards(n > 1) construction path, the sharded
// counterpart of the openStorage/index/projector finalize steps of New: it
// checks the on-disk layout, builds or recovers every shard, and stands up
// the coordinator the engine's operations route through.
func (e *Engine) openSharded() error {
	n := e.shardCount
	ring, err := shard.NewRing(n)
	if err != nil {
		return err
	}
	if e.storageCfg.warnf == nil {
		e.storageCfg.warnf = func(string, ...any) {}
	}
	durable := e.storageDir != ""
	if durable {
		if err := shard.CheckLayout(e.storageDir, n); err != nil {
			return err
		}
		hasState := false
		for i := 0; i < n && !hasState; i++ {
			has, err := storage.DirHasState(shard.ShardDir(e.storageDir, i))
			if err != nil {
				return err
			}
			hasState = has
		}
		if hasState && e.repo.Snapshot().Size() > 0 {
			return fmt.Errorf("storage directory %s holds sharded state; refusing to recover into a non-empty repository (preload only into a fresh data directory)", e.storageDir)
		}
	}
	// Partition the seed repository by ring owner. For a recovering engine
	// the repository is empty and every shard restores its own slice; the
	// marker pins the shard count, so the recovered partition matches the
	// ring.
	parts := make([][]*workflow.Workflow, n)
	for _, wf := range e.repo.Snapshot().Workflows() {
		o := ring.Owner(wf.ID)
		parts[o] = append(parts[o], wf)
	}
	perCache := 0
	if e.cacheWanted {
		total := e.cacheSize
		if total <= 0 {
			total = scorecache.DefaultSize
		}
		perCache = (total + n - 1) / n
	}
	// One symbol table for the whole deployment: cross-shard reads compare
	// and cache-key workflows from different shards, so their interned IDs
	// must come from the same assignment order. The seed repository's table
	// is reused so already-resolved seed workflows keep their IDs.
	tab := e.repo.Symtab()
	if tab == nil {
		tab = symtab.New()
	}
	shards := make([]shard.Shard, n)
	closeBuilt := func() {
		for _, s := range shards {
			if s != nil {
				s.Close(nil) //wfsimvet:ignore errpath best-effort unwind of partially built shards; the construction error wins
			}
		}
	}
	for i := range shards {
		cfg := shard.LocalConfig{
			MinShared:   e.minShared,
			CacheSize:   perCache,
			Concurrency: e.concurrency,
			Seed:        parts[i],
			Symtab:      tab,
		}
		if durable {
			cfg.Dir = shard.ShardDir(e.storageDir, i)
			cfg.Storage = storage.Options{
				CompactBytes:   e.storageCfg.compactBytes,
				CompactRecords: e.storageCfg.compactRecords,
				NoSync:         e.storageCfg.noSync,
				Warnf:          e.storageCfg.warnf,
			}
		}
		s, err := shard.NewLocal(i, cfg)
		if err != nil {
			closeBuilt()
			return err
		}
		shards[i] = s
	}
	coord, err := shard.NewCoordinator(shards)
	if err != nil {
		closeBuilt()
		return err
	}
	e.coord = coord
	// Finalize steps, mirroring the unsharded path: the initial
	// repository-knowledge projector is built over the boot view, and the
	// per-shard warm caches are re-seeded under its epoch.
	if e.repoKnow != nil {
		e.projectionForView(coord.View())
	}
	if durable && e.cacheWanted {
		_, epoch := e.projectionForView(coord.View())
		e.warmEntries = coord.WarmLoad(e.projectionSig(), epoch)
	}
	return nil
}

// vecKey formats a sharded frontier key from a generation vector.
func vecKey(gens []uint64) string {
	var b strings.Builder
	b.WriteByte('v')
	for i, g := range gens {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(g, 10))
	}
	return b.String()
}

// projectionForView resolves the importance projection a read over the view
// must use, plus the epoch keying its cached scores — the sharded
// counterpart of projectionFor. With repository knowledge the projector
// belongs to the view's generation vector: module frequencies are collected
// over the union of every shard's pinned slice, so the projection is
// identical to a single-shard engine's at the same corpus state.
func (e *Engine) projectionForView(v shard.View) (measures.Projector, uint64) {
	if rk := e.repoKnow; rk != nil {
		ent := rk.entry(vecKey(v.Generations()), v.Union)
		return ent.project, ent.epoch
	}
	return e.reg.projectorState()
}

// fillRead copies coordinator scan stats into a Stats under the view's
// generation stamps.
func fillRead(stats *Stats, v shard.View, r shard.ReadStats) {
	stats.Scored = r.Scored
	stats.Skipped = r.Skipped
	stats.Pruned = r.Pruned
	stats.CacheHits = r.CacheHits
	stats.CacheMisses = r.CacheMisses
	stats.Generation = v.AggregateGeneration()
	stats.Generations = v.Generations()
}

// searchView is Search over a pinned sharded view: the query fans out to
// every shard and the per-shard top-k lists merge into the global top-k with
// single-engine tie-breaking.
func (e *Engine) searchView(ctx context.Context, query *Workflow, v shard.View, opts SearchOptions) ([]Result, Stats, error) {
	project, epoch := e.projectionForView(v)
	m, err := e.measureFor(ctx, opts.Measure, project)
	if err != nil {
		return nil, Stats{}, err
	}
	t0 := time.Now()
	prep := shard.NewScanPrep(m, epoch)
	q := shard.Query{
		Query:         query,
		K:             opts.K,
		Exact:         opts.Exact,
		IncludeQuery:  opts.IncludeQuery,
		MinSimilarity: opts.MinSimilarity,
		Par:           e.concurrency,
	}
	if owner := v.Owner(query.ID); owner.Get(query.ID) == query {
		// The query is the owning shard's own snapshot object: its pair
		// scores may enter and be served from the shard caches.
		q.Cacheable = true
		q.QueryGen = owner.Generation()
	}
	res, rstats, err := e.coord.Search(ctx, v, prep, q)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{Measure: m.Name()}
	fillRead(&stats, v, rstats)
	stats.Elapsed = time.Since(t0)
	return res, stats, nil
}

// compareView scores one pair with the view's projection.
func (e *Engine) compareView(ctx context.Context, v shard.View, a, b *Workflow, measureNames []string) ([]Score, uint64, error) {
	if a == nil || b == nil {
		return nil, 0, fmt.Errorf("nil workflow in Compare")
	}
	project, _ := e.projectionForView(v)
	if len(measureNames) == 0 {
		measureNames = CompareMeasures()
	}
	out := make([]Score, 0, len(measureNames))
	for _, name := range measureNames {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		m, err := e.measureFor(ctx, name, project)
		if err != nil {
			return nil, 0, err
		}
		s, err := m.Compare(a, b)
		out = append(out, Score{Measure: m.Name(), Similarity: s, Err: err})
	}
	return out, v.AggregateGeneration(), nil
}

// duplicatesView is Duplicates over a pinned sharded view: the global pair
// triangle decomposes into per-shard triangles and cross-shard rectangles,
// scanned in parallel and merged into the single-engine pair order.
func (e *Engine) duplicatesView(ctx context.Context, v shard.View, threshold float64, opts DuplicateOptions) ([]Pair, Stats, error) {
	project, epoch := e.projectionForView(v)
	m, err := e.measureFor(ctx, opts.Measure, project)
	if err != nil {
		return nil, Stats{}, err
	}
	t0 := time.Now()
	prep := shard.NewScanPrep(m, epoch)
	pairs, rstats, err := e.coord.Duplicates(ctx, v, prep, threshold, e.concurrency)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{Measure: m.Name()}
	fillRead(&stats, v, rstats)
	stats.Elapsed = time.Since(t0)
	return pairs, stats, nil
}

// clusterView is Cluster over a pinned sharded view. The similarity matrix
// spans the union of every shard's slice in ID order (a sharded corpus has
// no global insertion order), scored through the per-shard caches.
func (e *Engine) clusterView(ctx context.Context, v shard.View, opts ClusterOptions) (*ClusterResult, error) {
	project, epoch := e.projectionForView(v)
	m, err := e.measureFor(ctx, opts.Measure, project)
	if err != nil {
		return nil, err
	}
	minSim := 0.5
	if opts.MinSimilarity != nil {
		minSim = *opts.MinSimilarity
	}
	prep := shard.NewScanPrep(m, epoch)
	mat, _, err := e.coord.Matrix(ctx, v, prep, e.concurrency)
	if err != nil {
		return nil, err
	}
	var c cluster.Clustering
	if opts.SingleLinkage {
		c = cluster.Components(mat, minSim)
	} else {
		c = cluster.Agglomerative(mat, minSim)
	}
	out := &ClusterResult{
		Measure:     m.Name(),
		Clusters:    make([][]string, c.K),
		Skipped:     mat.Skipped,
		Generation:  v.AggregateGeneration(),
		Generations: v.Generations(),
	}
	for k, members := range c.Members() {
		ids := make([]string, len(members))
		for i, pos := range members {
			ids[i] = mat.IDs[pos]
		}
		out.Clusters[k] = ids
	}
	return out, nil
}

// closeSharded is Close for a sharded engine: every shard checkpoints its
// final snapshot and persists its warm intra-shard pair scores. A RAM-only
// sharded engine has nothing to flush and stays open, like the unsharded
// path.
func (e *Engine) closeSharded() error {
	if e.storageDir == "" {
		return nil
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if e.storeClosed {
		return nil
	}
	e.storeClosed = true
	var warm *shard.WarmSpec
	if e.cacheWanted {
		_, epoch := e.projectionForView(e.coord.View())
		warm = &shard.WarmSpec{Sig: e.projectionSig(), Epoch: epoch}
	}
	return e.coord.Close(warm)
}

// ShardInfo is one shard's stats block, as reported by ShardStats.
type ShardInfo struct {
	// ID is the shard's ring position.
	ID int `json:"id"`
	// Generation is the shard's own generation (one element of the vector).
	Generation uint64 `json:"generation"`
	// Workflows is the number of corpus workflows the shard owns.
	Workflows int `json:"workflows"`
	// Index is the shard's inverted-index block; nil without WithIndex.
	Index *IndexStats `json:"index,omitempty"`
	// Cache is the shard's score-cache block; nil without WithScoreCache.
	Cache *CacheStats `json:"cache,omitempty"`
	// Storage is the shard's durability block; nil without WithStorage.
	Storage *StorageStats `json:"storage,omitempty"`
}

// ShardStats reports every shard's stats, in shard order; nil for an
// unsharded engine (use IndexStats/CacheStats/StorageStats, which a sharded
// engine also serves as cross-shard aggregates).
func (e *Engine) ShardStats() []ShardInfo {
	if e.coord == nil {
		return nil
	}
	infos := e.coord.Infos()
	out := make([]ShardInfo, len(infos))
	for i, info := range infos {
		si := ShardInfo{ID: info.ID, Generation: info.Generation, Workflows: info.Workflows}
		if info.Index != nil {
			si.Index = &IndexStats{
				Live:        info.Index.Live,
				Dead:        info.Index.Dead,
				Vocabulary:  info.Index.Vocabulary,
				Compactions: info.Index.Compactions,
				Rebuilds:    info.IndexRebuilds,
				Generation:  info.Index.Generation,
			}
		}
		if info.Cache != nil {
			st := *info.Cache
			si.Cache = &st
		}
		if info.Storage != nil {
			si.Storage = &StorageStats{Stats: *info.Storage, WarmCacheEntries: info.WarmEntries}
		}
		out[i] = si
	}
	return out
}
