package wfsim

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func shardTestWF(id string, labels ...string) *Workflow {
	wf := NewWorkflow(id)
	for i, l := range labels {
		wf.Modules = append(wf.Modules, &Module{Label: l, Type: TypeBeanshell})
		if i > 0 {
			wf.Edges = append(wf.Edges, Edge{From: i - 1, To: i})
		}
	}
	return wf
}

// shardedPair builds a 1-shard and an n-shard engine over the same generated
// corpus and identical options. Both must be constructed before any Apply:
// the sharded engine partitions the seed repository at construction time.
func shardedPair(t *testing.T, n int, opts ...Option) (*Engine, *Engine, *GeneratedCorpus) {
	t.Helper()
	c := testCorpus(t)
	e1, err := New(c.Repo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	eN, err := New(c.Repo, append([]Option{WithShards(n)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return e1, eN, c
}

// assertSameSearch requires identical search results (IDs and similarities,
// bit for bit) from both engines for the given query ID.
func assertSameSearch(t *testing.T, e1, eN *Engine, queryID string, opts SearchOptions) {
	t.Helper()
	r1, s1, err := e1.SearchID(context.Background(), queryID, opts)
	if err != nil {
		t.Fatalf("unsharded SearchID(%s): %v", queryID, err)
	}
	rN, sN, err := eN.SearchID(context.Background(), queryID, opts)
	if err != nil {
		t.Fatalf("sharded SearchID(%s): %v", queryID, err)
	}
	if len(r1) != len(rN) {
		t.Fatalf("query %s: %d results sharded vs %d unsharded", queryID, len(rN), len(r1))
	}
	for i := range r1 {
		if r1[i].ID != rN[i].ID || r1[i].Similarity != rN[i].Similarity {
			t.Fatalf("query %s rank %d: sharded (%s, %v) vs unsharded (%s, %v)",
				queryID, i, rN[i].ID, rN[i].Similarity, r1[i].ID, r1[i].Similarity)
		}
	}
	if s1.Measure != sN.Measure {
		t.Errorf("measure %q sharded vs %q unsharded", sN.Measure, s1.Measure)
	}
	if eN.Shards() > 1 && sN.Generations == nil {
		t.Error("sharded search stats missing generation vector")
	}
}

func TestShardedSearchEquivalence(t *testing.T) {
	for _, n := range []int{2, 4} {
		e1, eN, c := shardedPair(t, n, WithIndex(2), WithScoreCache(1<<14))
		if got := eN.Shards(); got != n {
			t.Fatalf("Shards() = %d, want %d", got, n)
		}
		if e1.Size() != eN.Size() {
			t.Fatalf("size %d sharded vs %d unsharded", eN.Size(), e1.Size())
		}
		for _, wf := range c.Repo.Workflows()[:4] {
			assertSameSearch(t, e1, eN, wf.ID, SearchOptions{K: 12})
			// Twice: the second pass is served from the shard caches and must
			// not change anything.
			assertSameSearch(t, e1, eN, wf.ID, SearchOptions{K: 12})
			assertSameSearch(t, e1, eN, wf.ID, SearchOptions{K: 12, Exact: true})
			assertSameSearch(t, e1, eN, wf.ID, SearchOptions{K: 12, Measure: "MS_ip_te_pll"})
		}
	}
}

func TestShardedEquivalenceAfterApply(t *testing.T) {
	e1, eN, c := shardedPair(t, 3, WithIndex(2), WithScoreCache(1<<14))
	ctx := context.Background()
	victim := c.Repo.Workflows()[7].ID
	replaced := c.Repo.Workflows()[3].ID
	muts := []Mutation{
		AddWorkflow(shardTestWF("zz-new-1", "fetch protein sequence", "align sequences", "render plot")),
		AddWorkflow(shardTestWF("zz-new-2", "fetch protein sequence", "blast search", "filter hits")),
		RemoveWorkflow(victim),
		ReplaceWorkflow(shardTestWF(replaced, "parse xml", "merge records")),
	}
	if _, err := e1.Apply(ctx, muts...); err != nil {
		t.Fatal(err)
	}
	if _, err := eN.Apply(ctx, muts...); err != nil {
		t.Fatal(err)
	}
	if e1.Size() != eN.Size() {
		t.Fatalf("post-apply size %d sharded vs %d unsharded", eN.Size(), e1.Size())
	}
	if eN.Workflow(victim) != nil {
		t.Error("removed workflow still resolvable on sharded engine")
	}
	for _, id := range []string{"zz-new-1", replaced, c.Repo.Workflows()[0].ID} {
		assertSameSearch(t, e1, eN, id, SearchOptions{K: 10})
	}

	p1, s1, err := e1.Duplicates(ctx, 0.45, DuplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pN, sN, err := eN.Duplicates(ctx, 0.45, DuplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) == 0 {
		t.Fatal("expected duplicate pairs")
	}
	if len(p1) != len(pN) {
		t.Fatalf("duplicates: %d sharded vs %d unsharded", len(pN), len(p1))
	}
	for i := range p1 {
		if p1[i] != pN[i] {
			t.Fatalf("duplicate pair %d: sharded %+v vs unsharded %+v", i, pN[i], p1[i])
		}
	}
	if s1.Scored != sN.Scored || s1.Skipped != sN.Skipped {
		t.Errorf("duplicate stats differ: sharded %d/%d vs unsharded %d/%d",
			sN.Scored, sN.Skipped, s1.Scored, s1.Skipped)
	}

	// Clustering: same partition of the corpus into groups. Cluster member
	// order may differ (a sharded corpus is globally ordered by ID, not by
	// insertion), so compare membership sets.
	c1, err := e1.Cluster(ctx, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cN, err := eN.Cluster(ctx, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if key1, keyN := clusterKey(c1.Clusters), clusterKey(cN.Clusters); key1 != keyN {
		t.Errorf("clusterings differ:\nunsharded: %s\nsharded:   %s", key1, keyN)
	}
	if cN.Generations == nil {
		t.Error("sharded cluster result missing generation vector")
	}
}

// clusterKey canonicalizes a clustering for comparison: members sorted within
// clusters, clusters sorted by first member.
func clusterKey(clusters [][]string) string {
	canon := make([]string, len(clusters))
	for i, members := range clusters {
		m := append([]string(nil), members...)
		sortStrings(m)
		canon[i] = strings.Join(m, ",")
	}
	sortStrings(canon)
	return strings.Join(canon, " | ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestShardedCompareEquivalence(t *testing.T) {
	e1, eN, c := shardedPair(t, 3)
	a, b := c.Repo.Workflows()[0], c.Repo.Workflows()[1]
	s1, err := e1.Compare(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	sN, err := eN.Compare(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i].Measure != sN[i].Measure || s1[i].Similarity != sN[i].Similarity {
			t.Errorf("Compare[%d]: sharded (%s, %v) vs unsharded (%s, %v)",
				i, sN[i].Measure, sN[i].Similarity, s1[i].Measure, s1[i].Similarity)
		}
	}
	scores, gen, err := eN.CompareIDs(context.Background(), a.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 || gen != eN.Generation() {
		t.Errorf("CompareIDs gen = %d, want %d", gen, eN.Generation())
	}
}

func TestShardedRepositoryKnowledgeEquivalence(t *testing.T) {
	e1, eN, c := shardedPair(t, 3, WithRepositoryKnowledge(0))
	ids := []string{c.Repo.Workflows()[0].ID, c.Repo.Workflows()[5].ID}
	for _, id := range ids {
		assertSameSearch(t, e1, eN, id, SearchOptions{K: 10, Measure: "MS_ip_te_pll"})
	}
	// A mutation changes module frequencies: both projectors must rebuild
	// over the same post-mutation corpus and keep agreeing.
	muts := []Mutation{
		AddWorkflow(shardTestWF("zz-rk-1", "fetch protein sequence", "align sequences")),
		RemoveWorkflow(c.Repo.Workflows()[9].ID),
	}
	if _, err := e1.Apply(context.Background(), muts...); err != nil {
		t.Fatal(err)
	}
	if _, err := eN.Apply(context.Background(), muts...); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		assertSameSearch(t, e1, eN, id, SearchOptions{K: 10, Measure: "MS_ip_te_pll"})
	}
	if r := eN.ProjectorRebuilds(); r < 2 {
		t.Errorf("sharded projector rebuilds = %d, want >= 2 (boot + post-mutation)", r)
	}
}

func TestShardedApplyAtomicity(t *testing.T) {
	c := testCorpus(t)
	eng, err := New(c.Repo, WithShards(4), WithIndex(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	beforeGens := eng.Generations()
	beforeSize := eng.Size()

	// The batch spans several shards; the last op is invalid (duplicate ID),
	// so no shard may commit anything.
	bad := []Mutation{
		AddWorkflow(shardTestWF("zz-atomic-1", "step one")),
		AddWorkflow(shardTestWF("zz-atomic-2", "step two")),
		AddWorkflow(shardTestWF("zz-atomic-3", "step three")),
		AddWorkflow(c.Repo.Workflows()[0]),
	}
	if _, err := eng.Apply(ctx, bad...); err == nil {
		t.Fatal("Apply with duplicate ID should fail")
	}
	afterGens := eng.Generations()
	for i := range beforeGens {
		if afterGens[i] != beforeGens[i] {
			t.Errorf("shard %d generation moved %d -> %d after failed Apply", i, beforeGens[i], afterGens[i])
		}
	}
	if eng.Size() != beforeSize {
		t.Errorf("size moved %d -> %d after failed Apply", beforeSize, eng.Size())
	}
	for _, id := range []string{"zz-atomic-1", "zz-atomic-2", "zz-atomic-3"} {
		if eng.Workflow(id) != nil {
			t.Errorf("failed Apply leaked %s", id)
		}
	}

	// Under the race detector: concurrent searches against concurrent
	// cross-shard applies (some failing validation) must stay consistent —
	// every observed generation vector is a commit boundary, never half a
	// batch.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := eng.SearchID(ctx, c.Repo.Workflows()[1].ID, SearchOptions{K: 5}); err != nil {
					t.Errorf("concurrent search: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		add := shardTestWF(fmt.Sprintf("zz-race-%d", i), "alpha", "beta")
		if _, err := eng.Apply(ctx, AddWorkflow(add), RemoveWorkflow(add.ID)); err != nil {
			t.Errorf("apply %d: %v", i, err)
		}
		if _, err := eng.Apply(ctx, AddWorkflow(c.Repo.Workflows()[0])); err == nil {
			t.Error("duplicate add slipped through")
		}
	}
	close(stop)
	wg.Wait()
	if eng.Size() != beforeSize {
		t.Errorf("size drifted to %d after balanced add/remove batches, want %d", eng.Size(), beforeSize)
	}
}

func TestShardedStorageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(t)
	eng, err := New(c.Repo, WithShards(3), WithIndex(2), WithScoreCache(1<<14),
		WithStorage(dir, StorageNoSync()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Apply(ctx, AddWorkflow(shardTestWF("zz-durable-1", "fetch data", "plot data"))); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(ctx, RemoveWorkflow(c.Repo.Workflows()[2].ID)); err != nil {
		t.Fatal(err)
	}
	wantGens := eng.Generations()
	wantSize := eng.Size()
	queryID := c.Repo.Workflows()[0].ID
	wantRes, _, err := eng.SearchID(ctx, queryID, SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(ctx, AddWorkflow(shardTestWF("zz-after-close", "x"))); err == nil {
		t.Error("Apply after Close should fail")
	}

	// Same shard count: full state comes back, warm cache re-seeded.
	repo2, err := NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := New(repo2, WithShards(3), WithIndex(2), WithScoreCache(1<<14),
		WithStorage(dir, StorageNoSync()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	gotGens := eng2.Generations()
	if len(gotGens) != len(wantGens) {
		t.Fatalf("generation vector length %d, want %d", len(gotGens), len(wantGens))
	}
	for i := range wantGens {
		if gotGens[i] != wantGens[i] {
			t.Errorf("shard %d generation %d after restart, want %d", i, gotGens[i], wantGens[i])
		}
	}
	if eng2.Size() != wantSize {
		t.Fatalf("size %d after restart, want %d", eng2.Size(), wantSize)
	}
	gotRes, stats, err := eng2.SearchID(ctx, queryID, SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantRes {
		if wantRes[i] != gotRes[i] {
			t.Fatalf("restart changed result %d: %+v vs %+v", i, gotRes[i], wantRes[i])
		}
	}
	if st, ok := eng2.StorageStats(); !ok || st.WarmCacheEntries == 0 {
		t.Errorf("expected warm cache entries after restart, got %+v ok=%v", st, ok)
	} else if stats.CacheHits == 0 {
		t.Errorf("restart search had no cache hits despite %d warm entries", st.WarmCacheEntries)
	}

	// Different shard count: refused with a clear error.
	repo3, _ := NewRepository()
	if _, err := New(repo3, WithShards(2), WithStorage(dir)); err == nil ||
		!strings.Contains(err.Error(), "3 shards") {
		t.Errorf("reopen with different shard count: err = %v, want mention of 3 shards", err)
	}
	// Unsharded open of a sharded directory: refused.
	repo4, _ := NewRepository()
	if _, err := New(repo4, WithStorage(dir)); err == nil ||
		!strings.Contains(err.Error(), "sharded") {
		t.Errorf("flat open of sharded dir: err = %v, want sharded-layout refusal", err)
	}
	// Preload into a directory holding sharded state: refused.
	c2 := testCorpus(t)
	if _, err := New(c2.Repo, WithShards(3), WithStorage(dir)); err == nil ||
		!strings.Contains(err.Error(), "refusing") {
		t.Errorf("preload over sharded state: err = %v, want refusal", err)
	}
	if has, err := HasStoredState(dir); err != nil || !has {
		t.Errorf("HasStoredState(sharded dir) = %v, %v; want true", has, err)
	}
}

func TestShardedStats(t *testing.T) {
	c := testCorpus(t)
	eng, err := New(c.Repo, WithShards(4), WithIndex(2), WithScoreCache(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	infos := eng.ShardStats()
	if len(infos) != 4 {
		t.Fatalf("ShardStats returned %d shards, want 4", len(infos))
	}
	totalWF, indexed := 0, 0
	for i, info := range infos {
		if info.ID != i {
			t.Errorf("shard %d reports ID %d", i, info.ID)
		}
		totalWF += info.Workflows
		if info.Index != nil {
			indexed++
			if info.Index.Live != info.Workflows {
				t.Errorf("shard %d index live %d != workflows %d", i, info.Index.Live, info.Workflows)
			}
		}
		if info.Cache == nil {
			t.Errorf("shard %d missing cache block", i)
		}
		if info.Storage != nil {
			t.Errorf("RAM-only shard %d has storage block", i)
		}
	}
	if totalWF != eng.Size() {
		t.Errorf("shard workflow counts sum to %d, want %d", totalWF, eng.Size())
	}
	if indexed != 4 {
		t.Errorf("%d shards indexed, want 4", indexed)
	}
	if _, ok := eng.IndexStats(); !ok {
		t.Error("aggregate IndexStats not ok")
	}
	if _, _, err := eng.SearchID(context.Background(), c.Repo.Workflows()[0].ID, SearchOptions{K: 5}); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Misses == 0 {
		t.Error("aggregate CacheStats shows no traffic after a search")
	}
	if eng.ShardStats()[0].Generation != 0 {
		t.Error("fresh shard generation != 0")
	}
	if n := len(eng.Generations()); n != 4 {
		t.Errorf("generation vector length %d, want 4", n)
	}
	// Unsharded engines report no shard blocks and a one-element vector.
	e1, err := New(testCorpus(t).Repo)
	if err != nil {
		t.Fatal(err)
	}
	if e1.ShardStats() != nil {
		t.Error("unsharded engine reports shard stats")
	}
	if v := e1.Generations(); len(v) != 1 {
		t.Errorf("unsharded generation vector length %d, want 1", len(v))
	}
}

func TestWithShardsValidation(t *testing.T) {
	c := testCorpus(t)
	if _, err := New(c.Repo, WithShards(0)); err == nil {
		t.Error("WithShards(0) accepted")
	}
	// WithShards(1) stays on the single-repository engine.
	eng, err := New(c.Repo, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if eng.ShardStats() != nil {
		t.Error("WithShards(1) built a sharded engine")
	}
}
