// Package experiments is the public facade over the paper-reproduction
// experiment harness: corpus + rating-study setup and one generator per
// table/figure of the evaluation section of Starlinger et al. (PVLDB 2014).
// Command wfbench is its only intended consumer; library users want
// repro/pkg/wfsim instead.
package experiments

import (
	internal "repro/internal/experiments"
)

type (
	// Scale sizes the synthetic corpora and rating studies (Quick or Full).
	Scale = internal.Scale
	// Setup bundles the generated corpora, simulated rater panel and rating
	// studies every figure draws on.
	Setup = internal.Setup
)

// Quick is the fast CI-sized experiment scale.
func Quick() Scale { return internal.Quick() }

// Full is the paper-sized experiment scale.
func Full() Scale { return internal.Full() }

// NewSetup generates corpora and rating studies deterministically from the
// scale and seed.
func NewSetup(scale Scale, seed int64) (*Setup, error) { return internal.NewSetup(scale, seed) }

// One generator per figure/table. Each result implements fmt.Stringer
// (text table) and, where applicable, WriteCSV(io.Writer) error.
var (
	Fig4           = internal.Fig4
	Fig5           = internal.Fig5
	Fig6           = internal.Fig6
	Fig7           = internal.Fig7
	Fig8           = internal.Fig8
	Fig9           = internal.Fig9
	Fig10          = internal.Fig10
	Fig11          = internal.Fig11
	Fig12          = internal.Fig12
	RuntimeStats   = internal.RuntimeStats
	AutoProjection = internal.AutoProjection
	TunedEnsemble  = internal.TunedEnsemble
)
