package repro

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Figures 4–12 and the Section 5.1.4 runtime statistics), plus
// ablation benches for the design choices called out in DESIGN.md (GED beam
// width, path enumeration cap, module mapping strategy, pair preselection).
//
// The figure benches run the full experiment pipeline at Quick scale and
// report the headline metric of the figure via b.ReportMetric, so
// `go test -bench=.` both regenerates the numbers and times the pipeline.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/ged"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/matching"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/rank"
	"repro/internal/workflow"
	"repro/pkg/wfsim"
)

var (
	benchOnce  sync.Once
	benchSetup *experiments.Setup
	benchErr   error
)

func setupBench(b *testing.B) *experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup, benchErr = experiments.NewSetup(experiments.Quick(), 1)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// BenchmarkFig4InterAnnotator regenerates Figure 4 (inter-annotator
// agreement with the BioConsert consensus) and reports the panel's mean
// ranking correctness.
func BenchmarkFig4InterAnnotator(b *testing.B) {
	s := setupBench(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig4(s)
		var sum float64
		for _, r := range f.Raters {
			sum += r.Correctness.Mean
		}
		mean = sum / float64(len(f.Raters))
	}
	b.ReportMetric(mean, "panel-mean-correctness")
}

// BenchmarkFig5Baseline regenerates Figure 5 (baseline ranking correctness
// of BW, BT, PS, MS, GE under pw0) and reports BW's lead over GE.
func BenchmarkFig5Baseline(b *testing.B) {
	s := setupBench(b)
	var bw, ge float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig5(s)
		bw = f.Rows[0].Correctness.Mean
		ge = f.Rows[4].Correctness.Mean
	}
	b.ReportMetric(bw, "BW-correctness")
	b.ReportMetric(ge, "GE-correctness")
}

// BenchmarkFig6ModuleSchemes regenerates Figure 6 (module comparison
// schemes) and reports pll's gain over pw0 for simMS.
func BenchmarkFig6ModuleSchemes(b *testing.B) {
	s := setupBench(b)
	var pw0, pll float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig6(s)
		pw0 = f.Rows[0].Correctness.Mean
		pll = f.Rows[2].Correctness.Mean
	}
	b.ReportMetric(pll-pw0, "pll-minus-pw0")
}

// BenchmarkFig7Ablations regenerates Figure 7 (greedy mapping;
// unnormalized GE) and reports the normalization penalty for GE.
func BenchmarkFig7Ablations(b *testing.B) {
	s := setupBench(b)
	var norm, nonorm float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig7(s)
		norm = f.Rows[2].Correctness.Mean
		nonorm = f.Rows[3].Correctness.Mean
	}
	b.ReportMetric(norm-nonorm, "normalization-gain")
}

// BenchmarkFig8RepositoryKnowledge regenerates Figure 8 (te preselection,
// ip projection) and reports ip's effect on simMS.
func BenchmarkFig8RepositoryKnowledge(b *testing.B) {
	s := setupBench(b)
	var np, ip float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig8(s)
		np = f.Rows[0].Correctness.Mean
		ip = f.Rows[3].Correctness.Mean
	}
	b.ReportMetric(ip-np, "ip-gain")
}

// BenchmarkFig9BestAndEnsembles regenerates Figure 9 (configuration sweep
// and ensembles) and reports the best ensemble's lead over the best single
// algorithm.
func BenchmarkFig9BestAndEnsembles(b *testing.B) {
	s := setupBench(b)
	var lead float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig9(s)
		bestSingle := 0.0
		for _, r := range f.Best.Rows {
			if r.Correctness.Mean > bestSingle {
				bestSingle = r.Correctness.Mean
			}
		}
		lead = f.Ensembles.Rows[0].Correctness.Mean - bestSingle
	}
	b.ReportMetric(lead, "ensemble-lead")
}

// BenchmarkFig10Retrieval regenerates Figure 10 (retrieval precision of MS
// module schemes) and reports MS_ip_te_pll's P@10 at relevance related.
func BenchmarkFig10Retrieval(b *testing.B) {
	s := setupBench(b)
	var p10 float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig10(context.Background(), s)
		p10 = f.Curves["MS_ip_te_pll"][eval.Related][9]
	}
	b.ReportMetric(p10, "MS_ip_te_pll-P@10-related")
}

// BenchmarkFig11Retrieval regenerates Figure 11 (structural vs annotational
// retrieval) and reports BW's and MS's P@10 at relevance related.
func BenchmarkFig11Retrieval(b *testing.B) {
	s := setupBench(b)
	var bw, ms float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig11(context.Background(), s)
		bw = f.Curves["BW"][eval.Related][9]
		ms = f.Curves["MS_ip_te_pll"][eval.Related][9]
	}
	b.ReportMetric(bw, "BW-P@10-related")
	b.ReportMetric(ms, "MS-P@10-related")
}

// BenchmarkFig12Galaxy regenerates Figure 12 (the Galaxy corpus) and reports
// the structural lead over BW on the sparsely annotated corpus.
func BenchmarkFig12Galaxy(b *testing.B) {
	s := setupBench(b)
	var lead float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig12(s)
		var bw, ms float64
		for _, r := range f.Rows {
			switch r.Name {
			case "BW":
				bw = r.Correctness.Mean
			case "MS_np_ta_gw1":
				ms = r.Correctness.Mean
			}
		}
		lead = ms - bw
	}
	b.ReportMetric(lead, "structural-lead-on-galaxy")
}

// BenchmarkRuntimeStats regenerates the Section 5.1.4 statistics and reports
// the te pair-comparison reduction factor (the paper's 2.3x).
func BenchmarkRuntimeStats(b *testing.B) {
	s := setupBench(b)
	var factor float64
	for i := 0; i < b.N; i++ {
		r := experiments.RuntimeStats(s)
		factor = r.ReductionFactor
	}
	b.ReportMetric(factor, "te-reduction-factor")
}

// --- Ablation benches (design choices from DESIGN.md) ---

func benchWorkflowPair(n int) (*workflow.Workflow, *workflow.Workflow) {
	mk := func(id string, shift int) *workflow.Workflow {
		w := workflow.New(id)
		labels := []string{"fetch_sequence", "run_ncbi_blast", "parse_blast_report",
			"filter_hits", "split_string", "merge_list", "render_image", "map_accession",
			"get_pathways", "color_pathway", "fetch_annotation", "summarise"}
		for i := 0; i < n; i++ {
			w.AddModule(&workflow.Module{
				Label: labels[(i+shift)%len(labels)],
				Type:  workflow.TypeWSDL,
			})
			if i > 0 {
				_ = w.AddEdge(i-1, i)
			}
		}
		return w
	}
	return mk("a", 0), mk("b", 1)
}

// BenchmarkAblationGEDBeamWidth compares GED cost across beam widths on a
// 10-node pair: exactness vs time, the trade-off behind the retrieval
// configuration.
func BenchmarkAblationGEDBeamWidth(b *testing.B) {
	for _, width := range []int{4, 16, 64, 0} { // 0 = exact
		name := "exact"
		if width > 0 {
			name = string(rune('0'+width/10)) + string(rune('0'+width%10))
		}
		b.Run("beam="+name, func(b *testing.B) {
			wa, wb := benchWorkflowPair(10)
			g1 := ged.NewGraph(wa.Size())
			g2 := ged.NewGraph(wb.Size())
			for i := range g1.Labels {
				g1.Labels[i] = i % 7
			}
			for i := range g2.Labels {
				g2.Labels[i] = (i + 1) % 7
			}
			for _, e := range wa.Edges {
				g1.AddEdge(e.From, e.To)
			}
			for _, e := range wb.Edges {
				g2.AddEdge(e.From, e.To)
			}
			b.ReportAllocs()
			var cost float64
			for i := 0; i < b.N; i++ {
				c, err := ged.Distance(g1, g2, ged.Options{BeamWidth: width})
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.ReportMetric(cost, "edit-cost")
		})
	}
}

// BenchmarkAblationMappingStrategy compares greedy vs maximum-weight module
// mapping on realistic weight matrices.
func BenchmarkAblationMappingStrategy(b *testing.B) {
	wa, wb := benchWorkflowPair(12)
	w, _ := module.WeightMatrix(wa, wb, module.PLL(), module.AllPairs)
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matching.Greedy(w)
		}
	})
	b.Run("maxweight", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matching.MaxWeight(w)
		}
	})
}

// BenchmarkAblationPreselection measures the pair-comparison saving of te
// vs ta on full MS comparisons.
func BenchmarkAblationPreselection(b *testing.B) {
	s := setupBench(b)
	wfs := s.Taverna.Repo.Workflows()
	for _, presel := range []module.Preselect{module.AllPairs, module.TypeEquivalence} {
		b.Run(presel.String(), func(b *testing.B) {
			var counter measures.PairCounter
			cfg := s.StructuralConfig(measures.ModuleSets, false, presel, module.PLL())
			cfg.Counter = &counter
			m := measures.NewStructural(cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Compare(wfs[i%40], wfs[(i+40)%80]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(counter.Compared())/float64(b.N), "module-pairs/op")
		})
	}
}

// BenchmarkAblationPathCap measures Path Sets comparison under different
// path enumeration caps on branch-heavy workflows.
func BenchmarkAblationPathCap(b *testing.B) {
	// Stacked diamonds: exponential path count, the worst case for PS.
	mk := func(id string) *workflow.Workflow {
		w := workflow.New(id)
		prev := w.AddModule(&workflow.Module{Label: "src", Type: workflow.TypeWSDL})
		for d := 0; d < 6; d++ {
			b1 := w.AddModule(&workflow.Module{Label: "branch_a", Type: workflow.TypeWSDL})
			b2 := w.AddModule(&workflow.Module{Label: "branch_b", Type: workflow.TypeWSDL})
			j := w.AddModule(&workflow.Module{Label: "join", Type: workflow.TypeWSDL})
			_ = w.AddEdge(prev, b1)
			_ = w.AddEdge(prev, b2)
			_ = w.AddEdge(b1, j)
			_ = w.AddEdge(b2, j)
			prev = j
		}
		return w
	}
	wa, wb := mk("a"), mk("b")
	for _, cap := range []int{8, 64, 0} { // 0 = default (4096)
		name := "default"
		switch cap {
		case 8:
			name = "8"
		case 64:
			name = "64"
		}
		b.Run("cap="+name, func(b *testing.B) {
			m := measures.NewStructural(measures.Config{
				Topology:  measures.PathSets,
				Scheme:    module.PLL(),
				Normalize: true,
				PathCap:   cap,
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Compare(wa, wb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Mutable-repository benches (PR 2: incremental index + score cache) ---

var (
	benchMutOnce sync.Once
	benchMutRepo *corpus.Repository
)

// benchRepo1k is a 1000-workflow corpus for the incremental-maintenance
// benchmarks (the acceptance criterion's scale).
func benchRepo1k(b *testing.B) *corpus.Repository {
	b.Helper()
	benchMutOnce.Do(func() {
		p := gen.Taverna()
		p.Workflows = 1000
		p.Clusters = 40
		c, err := gen.Generate(p, 17)
		if err != nil {
			b.Fatal(err)
		}
		benchMutRepo = c.Repo
	})
	if benchMutRepo == nil {
		b.Fatal("corpus generation failed earlier")
	}
	return benchMutRepo
}

// BenchmarkFullRebuild measures a from-scratch index.Build over a
// 1k-workflow corpus — the cost the old build-once Engine paid on every
// repository change.
func BenchmarkFullRebuild(b *testing.B) {
	repo := benchRepo1k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Build(repo)
	}
}

// BenchmarkIncrementalInsert measures one incremental Insert into an index
// already holding the 1k corpus — the cost Engine.Apply pays per added
// workflow. The acceptance criterion wants this ≫ faster than a full Build.
func BenchmarkIncrementalInsert(b *testing.B) {
	repo := benchRepo1k(b)
	idx := index.Build(repo)
	template := repo.Workflows()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wf := template.Clone()
		wf.ID = fmt.Sprintf("bench-insert-%d", i)
		if err := idx.Insert(wf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalInsertDelete measures a steady-state churn op
// (insert + delete of the same workflow), including amortized compactions.
func BenchmarkIncrementalInsertDelete(b *testing.B) {
	repo := benchRepo1k(b)
	idx := index.Build(repo)
	template := repo.Workflows()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wf := template.Clone()
		wf.ID = fmt.Sprintf("bench-churn-%d", i)
		if err := idx.Insert(wf); err != nil {
			b.Fatal(err)
		}
		if !idx.Delete(wf.ID) {
			b.Fatal("delete failed")
		}
	}
}

// benchDupesEngine builds a 150-workflow engine for the duplicate-scan
// cache benches.
func benchDupesEngine(b *testing.B, opts ...wfsim.Option) *wfsim.Engine {
	b.Helper()
	p := wfsim.TavernaProfile()
	p.Workflows = 150
	p.Clusters = 10
	c, err := wfsim.GenerateCorpus(p, 23)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := wfsim.New(c.Repo, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkDuplicatesCold measures the full pair-matrix duplicate scan with
// no score cache — every iteration re-runs every pairwise evaluation.
func BenchmarkDuplicatesCold(b *testing.B) {
	eng := benchDupesEngine(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Duplicates(ctx, 0.95, wfsim.DuplicateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDuplicatesWarm measures the same scan with a warmed score cache:
// the acceptance criterion's zero-pairwise-evaluation repeat run.
func BenchmarkDuplicatesWarm(b *testing.B) {
	eng := benchDupesEngine(b, wfsim.WithScoreCache(1<<17))
	ctx := context.Background()
	if _, _, err := eng.Duplicates(ctx, 0.95, wfsim.DuplicateOptions{}); err != nil {
		b.Fatal(err) // warm-up
	}
	b.ReportAllocs()
	b.ResetTimer()
	var stats wfsim.Stats
	for i := 0; i < b.N; i++ {
		var err error
		if _, stats, err = eng.Duplicates(ctx, 0.95, wfsim.DuplicateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.CacheHits), "cache-hits/op")
	b.ReportMetric(float64(stats.CacheMisses), "cache-misses/op")
}

// BenchmarkBioConsertConsensus measures consensus aggregation at the study's
// scale (10 candidates, 15 raters).
func BenchmarkBioConsertConsensus(b *testing.B) {
	s := setupBench(b)
	q := s.Study.Queries[0]
	inputs := s.Study.RaterRankings[q]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rank.BioConsert(inputs)
	}
}

// BenchmarkCorpusGeneration measures full Taverna-profile corpus generation.
func BenchmarkCorpusGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSetup(experiments.Quick(), int64(i+2)); err != nil {
			b.Fatal(err)
		}
	}
}
