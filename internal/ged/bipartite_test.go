package ged

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBipartiteUpperIdentical(t *testing.T) {
	g := lineGraph([]int{1, 2, 3})
	if got := BipartiteUpper(g, g); got != 0 {
		t.Errorf("BipartiteUpper(g,g) = %v, want 0", got)
	}
}

func TestBipartiteUpperEmpty(t *testing.T) {
	g := lineGraph([]int{1, 2})
	if got := BipartiteUpper(NewGraph(0), g); got != 3 {
		t.Errorf("empty vs line = %v, want 3", got)
	}
	if got := BipartiteUpper(g, NewGraph(0)); got != 3 {
		t.Errorf("line vs empty = %v, want 3", got)
	}
}

func TestBipartiteUpperKnownCase(t *testing.T) {
	// One substitution: the assignment must find the obvious mapping.
	g1 := lineGraph([]int{1, 2, 3})
	g2 := lineGraph([]int{1, 2, 4})
	if got := BipartiteUpper(g1, g2); got != 1 {
		t.Errorf("one-sub upper = %v, want 1", got)
	}
}

// The defining property: the bipartite result is never below the exact
// distance, and never above the trivial worst case.
func TestPropertyBipartiteIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := randGraph(r, r.Intn(5)+1, 3)
		g2 := randGraph(r, r.Intn(5)+1, 3)
		exact, err := Distance(g1, g2, Options{})
		if err != nil {
			return false
		}
		upper := BipartiteUpper(g1, g2)
		return upper >= exact-1e-9 && upper <= MaxCost(g1, g2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBipartiteSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := randGraph(r, r.Intn(5)+1, 3)
		g2 := randGraph(r, r.Intn(5)+1, 3)
		d1 := BipartiteUpper(g1, g2)
		d2 := BipartiteUpper(g2, g1)
		// The heuristic is not guaranteed symmetric (assignment ties), but
		// both directions must bound the exact distance; check closeness.
		diff := d1 - d2
		if diff < 0 {
			diff = -diff
		}
		return diff <= MaxCost(g1, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// On larger graphs the approximation must stay close to the beam result
// while being much cheaper than exact search.
func TestBipartiteTracksBeamOnLargerGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g1 := randGraph(r, 10, 5)
		g2 := randGraph(r, 10, 5)
		beam, err := Distance(g1, g2, Options{BeamWidth: 128})
		if err != nil {
			t.Fatal(err)
		}
		upper := BipartiteUpper(g1, g2)
		if upper > 2.5*beam+6 {
			t.Errorf("bipartite upper %v far above beam %v", upper, beam)
		}
	}
}

func BenchmarkBipartiteUpper12Nodes(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	g1 := randGraph(r, 12, 6)
	g2 := randGraph(r, 12, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BipartiteUpper(g1, g2)
	}
}
