package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// bruteForce computes the exact GED by enumerating all injective partial
// mappings of g1 nodes onto g2 nodes.
func bruteForce(g1, g2 *Graph) float64 {
	n1, n2 := g1.N(), g2.N()
	best := math.Inf(1)
	assign := make([]int, n1)
	var rec func(k int, used int)
	rec = func(k int, used int) {
		if k == n1 {
			if c := mappingCost(g1, g2, assign); c < best {
				best = c
			}
			return
		}
		assign[k] = -1
		rec(k+1, used)
		for v := 0; v < n2; v++ {
			if used&(1<<uint(v)) == 0 {
				assign[k] = v
				rec(k+1, used|1<<uint(v))
			}
		}
	}
	rec(0, 0)
	return best
}

// mappingCost scores a complete assignment under the uniform cost model.
func mappingCost(g1, g2 *Graph, assign []int) float64 {
	n1, n2 := g1.N(), g2.N()
	cost := 0.0
	used := make([]bool, n2)
	for u := 0; u < n1; u++ {
		v := assign[u]
		if v == -1 {
			cost++ // deletion
			continue
		}
		used[v] = true
		if g1.Labels[u] != g2.Labels[v] {
			cost++ // substitution
		}
	}
	for v := 0; v < n2; v++ {
		if !used[v] {
			cost++ // insertion
		}
	}
	// g1 edges: deleted unless mapped onto a g2 edge.
	for u := 0; u < n1; u++ {
		for w := 0; w < n1; w++ {
			if !g1.HasEdge(u, w) {
				continue
			}
			if assign[u] == -1 || assign[w] == -1 || !g2.HasEdge(assign[u], assign[w]) {
				cost++
			}
		}
	}
	// g2 edges: inserted unless covered by a mapped g1 edge.
	inv := make([]int, n2)
	for i := range inv {
		inv[i] = -1
	}
	for u, v := range assign {
		if v >= 0 {
			inv[v] = u
		}
	}
	for x := 0; x < n2; x++ {
		for y := 0; y < n2; y++ {
			if !g2.HasEdge(x, y) {
				continue
			}
			if inv[x] == -1 || inv[y] == -1 || !g1.HasEdge(inv[x], inv[y]) {
				cost++
			}
		}
	}
	return cost
}

func lineGraph(labels []int) *Graph {
	g := NewGraph(len(labels))
	copy(g.Labels, labels)
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestDistanceIdenticalGraphs(t *testing.T) {
	g := lineGraph([]int{1, 2, 3})
	d, err := Distance(g, g, Options{})
	if err != nil || d != 0 {
		t.Fatalf("Distance(g,g) = %v, %v; want 0, nil", d, err)
	}
}

func TestDistanceEmptyGraphs(t *testing.T) {
	d, err := Distance(NewGraph(0), NewGraph(0), Options{})
	if err != nil || d != 0 {
		t.Fatalf("empty Distance = %v, %v", d, err)
	}
	// Empty vs 2-node 1-edge graph: 2 insertions + 1 edge insertion.
	d, err = Distance(NewGraph(0), lineGraph([]int{1, 2}), Options{})
	if err != nil || d != 3 {
		t.Fatalf("empty-vs-line Distance = %v, %v; want 3", d, err)
	}
}

func TestDistanceOneSubstitution(t *testing.T) {
	g1 := lineGraph([]int{1, 2, 3})
	g2 := lineGraph([]int{1, 2, 4})
	d, err := Distance(g1, g2, Options{})
	if err != nil || d != 1 {
		t.Fatalf("Distance = %v, %v; want 1 (one relabel)", d, err)
	}
}

func TestDistanceNodeAndEdgeInsertion(t *testing.T) {
	g1 := lineGraph([]int{1, 2})
	g2 := lineGraph([]int{1, 2, 3})
	// Insert node labeled 3 and edge 2->3: cost 2.
	d, err := Distance(g1, g2, Options{})
	if err != nil || d != 2 {
		t.Fatalf("Distance = %v, %v; want 2", d, err)
	}
}

func TestDistanceEdgeDirectionMatters(t *testing.T) {
	g1 := NewGraph(2)
	g1.Labels = []int{1, 2}
	g1.AddEdge(0, 1)
	g2 := NewGraph(2)
	g2.Labels = []int{1, 2}
	g2.AddEdge(1, 0)
	// Same labels, opposite edge: delete one edge, insert the other.
	d, err := Distance(g1, g2, Options{})
	if err != nil || d != 2 {
		t.Fatalf("Distance = %v, %v; want 2", d, err)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	g1 := lineGraph([]int{1, 2, 3, 4})
	g2 := lineGraph([]int{1, 3, 5})
	d1, err1 := Distance(g1, g2, Options{})
	d2, err2 := Distance(g2, g1, Options{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if d1 != d2 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestDeadline(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g1 := randGraph(r, 14, 6)
	g2 := randGraph(r, 14, 6)
	_, err := Distance(g1, g2, Options{Deadline: time.Microsecond})
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestBeamUpperBoundsExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g1 := randGraph(r, r.Intn(4)+2, 8)
		g2 := randGraph(r, r.Intn(4)+2, 8)
		exact, err := Distance(g1, g2, Options{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		beamed, err := Distance(g1, g2, Options{BeamWidth: 8})
		if err != nil {
			t.Fatalf("beam: %v", err)
		}
		if beamed < exact-1e-9 {
			t.Errorf("beam %v below exact %v", beamed, exact)
		}
	}
}

func TestMaxCost(t *testing.T) {
	g1 := lineGraph([]int{1, 2, 3}) // 3 nodes, 2 edges
	g2 := lineGraph([]int{4, 5})    // 2 nodes, 1 edge
	if got := MaxCost(g1, g2); got != 6 {
		t.Errorf("MaxCost = %v, want 6 (max(3,2)+2+1)", got)
	}
}

func TestDistanceNeverExceedsMaxCost(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g1 := randGraph(r, r.Intn(5)+1, 4)
		g2 := randGraph(r, r.Intn(5)+1, 4)
		d, err := Distance(g1, g2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d > MaxCost(g1, g2)+1e-9 {
			t.Errorf("distance %v exceeds max cost %v", d, MaxCost(g1, g2))
		}
	}
}

func randGraph(r *rand.Rand, n, labelRange int) *Graph {
	g := NewGraph(n)
	for i := range g.Labels {
		g.Labels[i] = r.Intn(labelRange)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(3) == 0 {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestPropertyExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := randGraph(r, r.Intn(4)+1, 3)
		g2 := randGraph(r, r.Intn(4)+1, 3)
		d, err := Distance(g1, g2, Options{})
		if err != nil {
			return false
		}
		return math.Abs(d-bruteForce(g1, g2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randGraph(r, r.Intn(3)+1, 3)
		b := randGraph(r, r.Intn(3)+1, 3)
		c := randGraph(r, r.Intn(3)+1, 3)
		dab, _ := Distance(a, b, Options{})
		dbc, _ := Distance(b, c, Options{})
		dac, _ := Distance(a, c, Options{})
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAddEdgeGuards(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0) // self-loop ignored
	g.AddEdge(-1, 1)
	g.AddEdge(0, 5)
	if g.Edges() != 0 {
		t.Errorf("invalid edges accepted, count = %d", g.Edges())
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // duplicate
	if g.Edges() != 1 {
		t.Errorf("edge count = %d, want 1", g.Edges())
	}
}

func BenchmarkDistanceExact6Nodes(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	g1 := randGraph(r, 6, 4)
	g2 := randGraph(r, 6, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Distance(g1, g2, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceBeam12Nodes(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	g1 := randGraph(r, 12, 6)
	g2 := randGraph(r, 12, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Distance(g1, g2, Options{BeamWidth: 64}); err != nil {
			b.Fatal(err)
		}
	}
}
