package ged

import "repro/internal/matching"

// Assignment-based graph edit distance approximation after Riesen & Bunke
// ("Approximate graph edit distance computation by means of bipartite graph
// matching", Image and Vision Computing 2009): nodes of the two graphs are
// optimally assigned by solving a linear assignment problem over local
// node+incident-edge edit costs; the induced complete edit path gives an
// upper bound on the true edit distance in O(n^3) — a polynomial alternative
// to the exponential exact search, useful for whole-repository scans.

// BipartiteUpper returns an upper bound on Distance(g1, g2) under the
// uniform cost model, computed from the optimal assignment of nodes by
// local cost. The bound is exact for many small or well-separated graphs
// and never below the true distance.
func BipartiteUpper(g1, g2 *Graph) float64 {
	n1, n2 := g1.N(), g2.N()
	if n1 == 0 {
		return float64(n2 + g2.Edges())
	}
	if n2 == 0 {
		return float64(n1 + g1.Edges())
	}
	size := n1 + n2
	// Cost matrix of the (n1+n2) x (n2+n1) assignment problem:
	// rows: g1 nodes then n2 deletion slots;
	// cols: g2 nodes then n1 insertion slots.
	// We convert to a max-weight problem for the Hungarian solver by
	// negating against a constant.
	const big = 1e9
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
	}
	deg1 := degrees(g1)
	deg2 := degrees(g2)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			switch {
			case i < n1 && j < n2: // substitution
				c := 0.0
				if g1.Labels[i] != g2.Labels[j] {
					c = 1
				}
				// Local edge estimate: degree difference edges must be
				// inserted or deleted (each incident edge is shared by two
				// nodes, so halve to avoid double counting).
				d := deg1[i] - deg2[j]
				if d < 0 {
					d = -d
				}
				cost[i][j] = c + float64(d)/2
			case i < n1 && j >= n2: // deletion of g1 node i
				if j-n2 == i {
					cost[i][j] = 1 + float64(deg1[i])/2
				} else {
					cost[i][j] = big
				}
			case i >= n1 && j < n2: // insertion of g2 node j
				if i-n1 == j {
					cost[i][j] = 1 + float64(deg2[j])/2
				} else {
					cost[i][j] = big
				}
			default: // dummy-dummy
				cost[i][j] = 0
			}
		}
	}
	// Max-weight transform: w = maxCost - cost (clamped at 0 for the big
	// entries so they are never chosen over real options).
	maxc := 0.0
	for i := range cost {
		for j := range cost[i] {
			if cost[i][j] < big && cost[i][j] > maxc {
				maxc = cost[i][j]
			}
		}
	}
	w := make(matching.Weights, size)
	for i := range w {
		w[i] = make([]float64, size)
		for j := range w[i] {
			if cost[i][j] >= big {
				w[i][j] = 0
			} else {
				// +1 keeps zero-cost assignments strictly positive so the
				// matcher includes them.
				w[i][j] = maxc - cost[i][j] + 1
			}
		}
	}
	assignment := matching.MaxWeight(w)

	// Derive the actual node mapping: g1 node i -> g2 node j, or -1.
	mapTo := make([]int, n1)
	for i := range mapTo {
		mapTo[i] = -1
	}
	for _, p := range assignment {
		if p.I < n1 && p.J < n2 {
			mapTo[p.I] = p.J
		}
	}
	return editPathCost(g1, g2, mapTo)
}

// editPathCost computes the exact cost of the complete edit path induced by
// a node mapping (g1 node i -> mapTo[i], -1 = deleted): this is what makes
// the assignment result a sound upper bound.
func editPathCost(g1, g2 *Graph, mapTo []int) float64 {
	n1, n2 := g1.N(), g2.N()
	cost := 0.0
	used := make([]bool, n2)
	for i := 0; i < n1; i++ {
		j := mapTo[i]
		if j == -1 {
			cost++ // deletion
			continue
		}
		used[j] = true
		if g1.Labels[i] != g2.Labels[j] {
			cost++ // substitution
		}
	}
	for j := 0; j < n2; j++ {
		if !used[j] {
			cost++ // insertion
		}
	}
	// g1 edges not preserved by the mapping are deleted.
	for u := 0; u < n1; u++ {
		for v := 0; v < n1; v++ {
			if !g1.HasEdge(u, v) {
				continue
			}
			if mapTo[u] == -1 || mapTo[v] == -1 || !g2.HasEdge(mapTo[u], mapTo[v]) {
				cost++
			}
		}
	}
	// g2 edges not covered by mapped g1 edges are inserted.
	inv := make([]int, n2)
	for i := range inv {
		inv[i] = -1
	}
	for i, j := range mapTo {
		if j >= 0 {
			inv[j] = i
		}
	}
	for x := 0; x < n2; x++ {
		for y := 0; y < n2; y++ {
			if !g2.HasEdge(x, y) {
				continue
			}
			if inv[x] == -1 || inv[y] == -1 || !g1.HasEdge(inv[x], inv[y]) {
				cost++
			}
		}
	}
	return cost
}

func degrees(g *Graph) []int {
	n := g.N()
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.HasEdge(u, v) {
				deg[u]++
				deg[v]++
			}
		}
	}
	return deg
}
