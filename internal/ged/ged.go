// Package ged computes the graph edit distance between labeled directed
// graphs under a uniform cost model: every node substitution (label
// mismatch), node insertion, node deletion, edge insertion and edge deletion
// costs 1, matching the SUBDUE default configuration used by Xiang & Madey
// 2007 and adopted in Section 2.1.3 of Starlinger et al. (PVLDB 2014).
//
// The search is A* over partial node assignments with an admissible
// label-multiset heuristic. Like SUBDUE's inexact match, the search can be
// bounded: a beam width caps the frontier (making the result an upper bound
// on the true distance) and a deadline aborts expensive pairs — the paper
// allowed 5 minutes per workflow pair and disregarded pairs exceeding it.
package ged

import (
	"container/heap"
	"errors"
	"time"
)

// ErrTimeout is returned when the search exceeds the configured deadline,
// mirroring the paper's per-pair timeout treatment (the pair is then
// disregarded in evaluation).
var ErrTimeout = errors.New("ged: deadline exceeded")

// Graph is a node-labeled directed graph. Labels are interned integers;
// how labels are derived from module mappings is the caller's concern
// (see measures.GraphEditDistance).
type Graph struct {
	Labels []int
	adj    []bool // n*n adjacency matrix, adj[u*n+v]
	edges  int
}

// NewGraph returns a graph with n unlabeled (label 0) nodes and no edges.
func NewGraph(n int) *Graph {
	return &Graph{Labels: make([]int, n), adj: make([]bool, n*n)}
}

// N returns the node count.
func (g *Graph) N() int { return len(g.Labels) }

// Edges returns the edge count.
func (g *Graph) Edges() int { return g.edges }

// AddEdge inserts the directed edge u -> v. Duplicate edges are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v {
		return
	}
	if !g.adj[u*g.N()+v] {
		g.adj[u*g.N()+v] = true
		g.edges++
	}
}

// HasEdge reports whether the edge u -> v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	return g.adj[u*g.N()+v]
}

// Options configures the search.
type Options struct {
	// BeamWidth bounds the open list; 0 means exact (unbounded) search.
	// With a beam the returned distance is an upper bound on the true GED.
	BeamWidth int
	// Deadline bounds wall-clock time; 0 means no limit.
	Deadline time.Duration
}

// MaxCost returns the worst-case edit cost between the two graphs under
// uniform costs: every node of the larger node set substituted or deleted
// plus all edges of both graphs inserted/deleted — the normalisation
// denominator of Section 2.1.4.
func MaxCost(g1, g2 *Graph) float64 {
	n := g1.N()
	if g2.N() > n {
		n = g2.N()
	}
	return float64(n + g1.Edges() + g2.Edges())
}

type state struct {
	k       int   // number of g1 nodes assigned (in processing order)
	assign  []int // assign[i] = g2 node for g1 node order[i], or -1 (deleted)
	used    uint64
	usedBig map[int]bool // used when g2 has > 64 nodes
	g       float64
	f       float64
}

func (s *state) isUsed(v int) bool {
	if s.usedBig != nil {
		return s.usedBig[v]
	}
	return s.used&(1<<uint(v)) != 0
}

type pq []*state

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(*state)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	s := old[n-1]
	*p = old[:n-1]
	return s
}

// Distance computes the graph edit distance between g1 and g2.
// With Options.BeamWidth == 0 the result is exact; with a beam it is an
// upper bound. ErrTimeout is returned when the deadline elapses first.
func Distance(g1, g2 *Graph, opts Options) (float64, error) {
	n1, n2 := g1.N(), g2.N()
	if n1 == 0 {
		// Everything in g2 is inserted.
		return float64(n2 + g2.Edges()), nil
	}
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}

	// Process g1 nodes in order of decreasing total degree: constrained
	// nodes first improves pruning substantially.
	order := degreeOrder(g1)

	big := n2 > 64
	start := &state{assign: nil, g: 0}
	if big {
		start.usedBig = map[int]bool{}
	}
	start.f = heuristic(g1, g2, order, start)

	open := pq{start}
	heap.Init(&open)
	expansions := 0
	for open.Len() > 0 {
		expansions++
		if expansions%256 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return 0, ErrTimeout
		}
		cur := heap.Pop(&open).(*state)
		if cur.k == n1 {
			// Complete states carry their full cost (completion charged in
			// extend), so the first goal popped is optimal.
			return cur.g, nil
		}
		u := order[cur.k]
		// Successors: map u to every unused g2 node, or delete u.
		for v := -1; v < n2; v++ {
			if v >= 0 && cur.isUsed(v) {
				continue
			}
			child := extend(g1, g2, order, cur, u, v)
			child.f = child.g + heuristic(g1, g2, order, child)
			heap.Push(&open, child)
		}
		if opts.BeamWidth > 0 && open.Len() > opts.BeamWidth {
			open = prune(open, opts.BeamWidth)
		}
	}
	// Unreachable: deletion successor always exists.
	return 0, errors.New("ged: search exhausted without a solution")
}

// extend creates the child state mapping g1 node u (at position cur.k of the
// processing order) to g2 node v (or -1 for deletion), charging node and
// incident-edge costs against previously assigned nodes.
func extend(g1, g2 *Graph, order []int, cur *state, u, v int) *state {
	child := &state{
		k:      cur.k + 1,
		assign: append(append([]int(nil), cur.assign...), v),
		used:   cur.used,
		g:      cur.g,
	}
	if cur.usedBig != nil {
		child.usedBig = make(map[int]bool, len(cur.usedBig)+1)
		for k := range cur.usedBig {
			child.usedBig[k] = true
		}
	}
	if v == -1 {
		child.g++ // node deletion
	} else {
		if child.usedBig != nil {
			child.usedBig[v] = true
		} else {
			child.used |= 1 << uint(v)
		}
		if g1.Labels[u] != g2.Labels[v] {
			child.g++ // node substitution
		}
	}
	// Edge costs against all previously processed g1 nodes.
	for i := 0; i < cur.k; i++ {
		up := order[i]
		vp := cur.assign[i]
		// direction u -> up
		child.g += edgeCost(g1.HasEdge(u, up), v, vp, g2, false)
		// direction up -> u
		child.g += edgeCost(g1.HasEdge(up, u), v, vp, g2, true)
	}
	if child.k == g1.N() {
		// Goal level: charge the completion cost (insertions of unused g2
		// nodes and their incident edges) so f is the exact total and the
		// A* goal test remains optimal.
		child.g += completionCost(g2, child)
	}
	return child
}

// edgeCost charges the cost of one directed edge slot between the g1 pair
// (current node, previous node) given their g2 images v and vp. reversed
// selects the up->u direction.
func edgeCost(inG1 bool, v, vp int, g2 *Graph, reversed bool) float64 {
	inG2 := false
	if v >= 0 && vp >= 0 {
		if reversed {
			inG2 = g2.HasEdge(vp, v)
		} else {
			inG2 = g2.HasEdge(v, vp)
		}
	}
	if inG1 != inG2 {
		return 1 // edge deletion (in g1 only) or insertion (in g2 only)
	}
	return 0
}

// completionCost charges insertions for g2 nodes never used by the mapping
// and for every g2 edge with at least one unused endpoint.
func completionCost(g2 *Graph, s *state) float64 {
	n2 := g2.N()
	cost := 0.0
	for v := 0; v < n2; v++ {
		if !s.isUsed(v) {
			cost++
		}
	}
	for x := 0; x < n2; x++ {
		for y := 0; y < n2; y++ {
			if g2.HasEdge(x, y) && (!s.isUsed(x) || !s.isUsed(y)) {
				cost++
			}
		}
	}
	return cost
}

// heuristic is an admissible lower bound on the remaining cost: the
// label-multiset assignment bound max(r1, r2) - matchable, where matchable
// is the number of label-equal pairings possible between the remaining g1
// nodes and the unused g2 nodes.
func heuristic(g1, g2 *Graph, order []int, s *state) float64 {
	if s.k == g1.N() {
		return 0 // complete states already carry their full cost
	}
	r1 := g1.N() - s.k
	counts := map[int]int{}
	for i := s.k; i < g1.N(); i++ {
		counts[g1.Labels[order[i]]]++
	}
	r2 := 0
	matchable := 0
	for v := 0; v < g2.N(); v++ {
		if s.isUsed(v) {
			continue
		}
		r2++
		if counts[g2.Labels[v]] > 0 {
			counts[g2.Labels[v]]--
			matchable++
		}
	}
	hi := r1
	if r2 > hi {
		hi = r2
	}
	h := float64(hi - matchable)
	if h < 0 {
		return 0
	}
	return h
}

func degreeOrder(g *Graph) []int {
	n := g.N()
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.HasEdge(u, v) {
				deg[u]++
				deg[v]++
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by degree descending (n is small).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && deg[order[j]] > deg[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// prune keeps the width best states of the open list and re-heapifies.
func prune(open pq, width int) pq {
	// Partial selection: heap-pop the best width states.
	kept := make(pq, 0, width)
	for len(kept) < width && open.Len() > 0 {
		kept = append(kept, heap.Pop(&open).(*state))
	}
	heap.Init(&kept)
	return kept
}
