// Package repoknow derives knowledge from a workflow repository as a whole
// and applies it to structural comparison (Section 2.1.5 of Starlinger et
// al., PVLDB 2014): module usage frequencies, importance scoring, and the
// Importance Projection (ip) preprocessing that projects a workflow onto its
// most functionally relevant modules while preserving connectivity between
// them via transitive edges.
package repoknow

import (
	"sync"

	"repro/internal/workflow"
)

// UsageStats counts how often each module signature occurs across a
// repository. Modules used most frequently across different workflows tend
// to provide trivial, unspecific functionality (string splitting and the
// like), which motivates removing them before structural comparison.
type UsageStats struct {
	// ByType counts module occurrences per module type.
	ByType map[string]int
	// ByLabel counts module occurrences per canonicalized label.
	ByLabel map[string]int
	// DocFreq counts, per canonicalized label, the number of distinct
	// workflows containing it (document frequency).
	DocFreq map[string]int
	// DocFreqID mirrors DocFreq keyed by canonical label symbol ID. It
	// is authoritative only when every scanned workflow carried a
	// resolved hot representation (see idExact); FrequencyScorer falls
	// back to the string-keyed DocFreq otherwise, so scores are always
	// bit-identical to the string baseline.
	DocFreqID map[uint32]int
	// Workflows is the number of workflows scanned.
	Workflows int
	// Modules is the total number of modules scanned.
	Modules int

	// idExact records that all scanned workflows were resolved, making
	// the symbol-keyed projection safe to consult.
	idExact bool
}

// CollectUsage scans a set of workflows and tallies module usage.
func CollectUsage(wfs []*workflow.Workflow) *UsageStats {
	s := &UsageStats{
		ByType:    map[string]int{},
		ByLabel:   map[string]int{},
		DocFreq:   map[string]int{},
		DocFreqID: map[uint32]int{},
		idExact:   true,
	}
	for _, wf := range wfs {
		s.Workflows++
		if !wf.Resolved() {
			s.idExact = false
		}
		seen := map[string]bool{}
		for _, m := range wf.Modules {
			s.Modules++
			s.ByType[m.Type]++
			key := CanonicalLabel(m.Label)
			s.ByLabel[key]++
			if !seen[key] {
				seen[key] = true
				s.DocFreq[key]++
			}
		}
		// A resolved workflow's label set is exactly its deduplicated
		// nonzero canonical label IDs, i.e. the document-frequency
		// contribution in symbol space.
		for _, id := range wf.LabelSet() {
			s.DocFreqID[id]++
		}
	}
	return s
}

// CanonicalLabel folds author-specific label styling away: lowercase, strip
// non-alphanumeric characters, strip trailing digits (version suffixes such
// as "split_string_2"). "getPathwaysByGenes" and "get_pathways_by_genes"
// share a canonical form. It is defined in package workflow (where ingest
// resolution needs it) and re-exported here for compatibility.
func CanonicalLabel(label string) string { return workflow.CanonicalLabel(label) }

// Scorer assigns each module an importance score in [0,1]; modules scoring
// below a projector's threshold are removed by the projection.
type Scorer interface {
	Score(m *workflow.Module) float64
}

// TypeScorer is the paper's manually curated selection: modules performing
// predefined, trivial local operations (local workers, string constants,
// XML shims) are unimportant (score 0); everything else is important
// (score 1). This reproduces the manual type-based selection of
// Section 2.1.5.
type TypeScorer struct{}

// Score implements Scorer.
func (TypeScorer) Score(m *workflow.Module) float64 {
	if m.IsLocal() {
		return 0
	}
	return 1
}

// FrequencyScorer scores modules by inverse document frequency in a
// repository: score = 1 - df(label), where df is the fraction of workflows
// containing the canonicalized label. Labels spread across a large share of
// the repository provide unspecific shim functionality; labels confined to
// one functional family are informative. It implements the automatic
// derivation of importance from module usage frequencies that the paper
// names as future work (Sections 2.1.5 and 6).
type FrequencyScorer struct {
	stats *UsageStats
}

// NewFrequencyScorer builds a FrequencyScorer from usage statistics.
func NewFrequencyScorer(stats *UsageStats) *FrequencyScorer {
	return &FrequencyScorer{stats: stats}
}

// Score implements Scorer. When the statistics were collected over a
// fully resolved corpus and the module carries a canonical label symbol,
// the document frequency comes from the symbol-keyed projection — one
// integer map probe instead of re-canonicalizing the label. Both paths
// read the same counts, so scores are bit-identical.
//
//wfsimvet:hotpath
func (f *FrequencyScorer) Score(m *workflow.Module) float64 {
	if f.stats.Workflows == 0 {
		return 1
	}
	if f.stats.idExact && m.CanonID != 0 {
		return 1 - float64(f.stats.DocFreqID[m.CanonID])/float64(f.stats.Workflows)
	}
	df := float64(f.stats.DocFreq[CanonicalLabel(m.Label)]) / float64(f.stats.Workflows)
	return 1 - df
}

// Projector applies the Importance Projection: it keeps modules whose score
// meets Threshold, preserves all paths between kept modules as edges (via
// the construction of workflow.InducedSubgraph), and transitively reduces
// the result.
type Projector struct {
	Scorer    Scorer
	Threshold float64

	mu    sync.Mutex
	cache map[*workflow.Workflow]*workflow.Workflow
}

// NewProjector returns a caching projector with the given scorer and
// threshold. The paper's configuration corresponds to TypeScorer with
// threshold 0.5 (any positive threshold separates scores 0 and 1).
func NewProjector(s Scorer, threshold float64) *Projector {
	return &Projector{Scorer: s, Threshold: threshold, cache: map[*workflow.Workflow]*workflow.Workflow{}}
}

// Project returns the importance projection of wf. Results are cached per
// workflow pointer, so repeated comparisons against a repository project
// each workflow once. If no module meets the threshold the original
// workflow is returned unchanged (projecting to an empty graph would make
// every comparison degenerate).
func (p *Projector) Project(wf *workflow.Workflow) *workflow.Workflow {
	p.mu.Lock()
	if c, ok := p.cache[wf]; ok {
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()

	var keep []int
	for i, m := range wf.Modules {
		if p.Scorer.Score(m) >= p.Threshold {
			keep = append(keep, i)
		}
	}
	out := wf
	if len(keep) > 0 && len(keep) < len(wf.Modules) {
		out = wf.InducedSubgraph(keep)
	} else if len(keep) == len(wf.Modules) {
		out = wf
	}

	p.mu.Lock()
	p.cache[wf] = out
	p.mu.Unlock()
	return out
}

// MeanModuleCount reports the average number of modules per workflow before
// and after projection — the paper reports a drop from 11.3 to 4.7 on the
// myExperiment corpus.
func (p *Projector) MeanModuleCount(wfs []*workflow.Workflow) (before, after float64) {
	if len(wfs) == 0 {
		return 0, 0
	}
	var b, a int
	for _, wf := range wfs {
		b += wf.Size()
		a += p.Project(wf).Size()
	}
	n := float64(len(wfs))
	return float64(b) / n, float64(a) / n
}
