package repoknow

import (
	"testing"

	"repro/internal/workflow"
)

func wfWithModules(id string, types ...string) *workflow.Workflow {
	w := workflow.New(id)
	for i, typ := range types {
		w.AddModule(&workflow.Module{Label: "m" + string(rune('a'+i)), Type: typ})
		if i > 0 {
			_ = w.AddEdge(i-1, i)
		}
	}
	return w
}

func TestCollectUsage(t *testing.T) {
	wfs := []*workflow.Workflow{
		wfWithModules("a", workflow.TypeWSDL, workflow.TypeLocalWorker),
		wfWithModules("b", workflow.TypeWSDL),
	}
	s := CollectUsage(wfs)
	if s.Workflows != 2 || s.Modules != 3 {
		t.Errorf("Workflows=%d Modules=%d, want 2, 3", s.Workflows, s.Modules)
	}
	if s.ByType[workflow.TypeWSDL] != 2 || s.ByType[workflow.TypeLocalWorker] != 1 {
		t.Errorf("ByType = %v", s.ByType)
	}
	if s.ByLabel["ma"] != 2 {
		t.Errorf("ByLabel[ma] = %d, want 2 (case-folded)", s.ByLabel["ma"])
	}
}

func TestTypeScorer(t *testing.T) {
	s := TypeScorer{}
	if s.Score(&workflow.Module{Type: workflow.TypeLocalWorker}) != 0 {
		t.Error("local worker should score 0")
	}
	if s.Score(&workflow.Module{Type: workflow.TypeStringConst}) != 0 {
		t.Error("string constant should score 0")
	}
	if s.Score(&workflow.Module{Type: workflow.TypeWSDL}) != 1 {
		t.Error("web service should score 1")
	}
	if s.Score(&workflow.Module{Type: workflow.TypeBeanshell}) != 1 {
		t.Error("script should score 1")
	}
}

func TestFrequencyScorer(t *testing.T) {
	wfs := []*workflow.Workflow{}
	for i := 0; i < 10; i++ {
		w := workflow.New("w")
		w.AddModule(&workflow.Module{Label: "split_string", Type: workflow.TypeLocalWorker})
		if i == 0 {
			w.AddModule(&workflow.Module{Label: "rare_service", Type: workflow.TypeWSDL})
		}
		wfs = append(wfs, w)
	}
	f := NewFrequencyScorer(CollectUsage(wfs))
	common := f.Score(&workflow.Module{Label: "split_string"})
	rare := f.Score(&workflow.Module{Label: "rare_service"})
	if common != 0 {
		t.Errorf("most frequent label score = %v, want 0", common)
	}
	if rare <= common {
		t.Errorf("rare %v should outscore common %v", rare, common)
	}
	unseen := f.Score(&workflow.Module{Label: "never_seen"})
	if unseen != 1 {
		t.Errorf("unseen label score = %v, want 1", unseen)
	}
}

func TestProjectorRemovesTrivialAndBridges(t *testing.T) {
	// ws -> local -> script: projection must drop the local module and
	// bridge ws -> script.
	w := wfWithModules("w", workflow.TypeWSDL, workflow.TypeLocalWorker, workflow.TypeBeanshell)
	p := NewProjector(TypeScorer{}, 0.5)
	out := p.Project(w)
	if out.Size() != 2 {
		t.Fatalf("projected size = %d, want 2", out.Size())
	}
	if !out.HasEdge(0, 1) {
		t.Errorf("bridge edge missing: %v", out.Edges)
	}
}

func TestProjectorAllTrivialKeepsOriginal(t *testing.T) {
	w := wfWithModules("w", workflow.TypeLocalWorker, workflow.TypeStringConst)
	p := NewProjector(TypeScorer{}, 0.5)
	out := p.Project(w)
	if out != w {
		t.Error("projection to empty set must return the original workflow")
	}
}

func TestProjectorCaches(t *testing.T) {
	w := wfWithModules("w", workflow.TypeWSDL, workflow.TypeLocalWorker, workflow.TypeBeanshell)
	p := NewProjector(TypeScorer{}, 0.5)
	a, b := p.Project(w), p.Project(w)
	if a != b {
		t.Error("repeated projection must return the cached value")
	}
}

func TestMeanModuleCount(t *testing.T) {
	wfs := []*workflow.Workflow{
		wfWithModules("a", workflow.TypeWSDL, workflow.TypeLocalWorker, workflow.TypeLocalWorker, workflow.TypeBeanshell),
		wfWithModules("b", workflow.TypeWSDL, workflow.TypeLocalWorker),
	}
	p := NewProjector(TypeScorer{}, 0.5)
	before, after := p.MeanModuleCount(wfs)
	if before != 3 {
		t.Errorf("before = %v, want 3", before)
	}
	if after != 1.5 {
		t.Errorf("after = %v, want 1.5", after)
	}
	if b0, a0 := p.MeanModuleCount(nil); b0 != 0 || a0 != 0 {
		t.Error("empty input should give zeros")
	}
}
