// Package scorecache caches pairwise workflow similarity scores across the
// engine's read operations (Search, Duplicates, Cluster), so repeated and
// overlapping queries stop re-running expensive measure evaluations — GED
// with beam search, label edit-distance matching — on identical pairs. The
// precomputed-per-pair-work reuse follows the same logic that lets
// approximate query engines bound response times on repeated queries.
//
// Entries are keyed by (measure, symA, symB, repository generation),
// where symA/symB are the interned symbol IDs of the workflow IDs: a
// mutation batch bumps the generation, so stale scores for removed or
// replaced workflows are never served and age out of the LRU naturally.
// Symbol keys make every probe two integer compares instead of two
// string hashes; callers resolve IDs through the repository's shared
// symbol table and must skip the cache for unresolved workflows (symbol
// 0), which carry no stable identity. The cache is sharded to keep lock
// contention off the scoring worker pools; each shard is an independent
// LRU.
package scorecache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies one cached pairwise score. A and B are the workflow-ID
// symbols in canonical (numerically sorted) order — use PairKey to build
// keys. Gen is the repository generation the score was computed under;
// Proj is the projector epoch (bumped whenever the importance projection
// changes), so a score computed under one projection configuration is
// never served under another even within the same repository generation.
// Self-pairs (A == B) are ordinary keys: the canonical ordering is a
// no-op and the cached score is the measure's self-similarity.
type Key struct {
	Measure string
	A, B    uint32
	Gen     uint64
	Proj    uint64
}

// PairKey builds a Key with the symbol pair in canonical order, so (a,b)
// and (b,a) hit the same entry — similarity is symmetric. Callers must
// not build keys from unresolved workflows: symbol 0 identifies nothing.
func PairKey(measure string, a, b uint32, gen, proj uint64) Key {
	if b < a {
		a, b = b, a
	}
	return Key{Measure: measure, A: a, B: b, Gen: gen, Proj: proj}
}

const shardCount = 16

// DefaultSize is the total entry capacity used when New is given a
// non-positive size.
const DefaultSize = 1 << 16

type cacheEntry struct {
	key   Key
	score float64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
}

// Cache is a sharded LRU of pairwise similarity scores. It is safe for
// concurrent use.
type Cache struct {
	shards       [shardCount]shard
	perShardCap  int
	hits, misses atomic.Uint64
}

// New builds a cache holding up to size entries in total (DefaultSize when
// size <= 0).
func New(size int) *Cache {
	if size <= 0 {
		size = DefaultSize
	}
	per := (size + shardCount - 1) / shardCount
	if per < 1 {
		per = 1
	}
	c := &Cache{perShardCap: per}
	for i := range c.shards {
		c.shards[i] = shard{entries: map[Key]*list.Element{}, lru: list.New()}
	}
	return c
}

// shardFor hashes the key onto a shard (FNV-1a over the key fields).
func (c *Cache) shardFor(k Key) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Measure); i++ {
		h ^= uint64(k.Measure[i])
		h *= prime64
	}
	h ^= 0xff // field separator
	h *= prime64
	h ^= uint64(k.A)<<32 | uint64(k.B)
	h *= prime64
	h ^= k.Gen
	h *= prime64
	h ^= k.Proj
	h *= prime64
	return &c.shards[h%shardCount]
}

// Get returns the cached score for k and whether it was present, updating
// recency and the hit/miss counters.
func (c *Cache) Get(k Key) (float64, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if ok {
		s.lru.MoveToFront(el)
		score := el.Value.(*cacheEntry).score
		s.mu.Unlock()
		c.hits.Add(1)
		return score, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return 0, false
}

// Put stores a score for k, evicting the shard's least recently used entry
// when the shard is full.
func (c *Cache) Put(k Key, score float64) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		el.Value.(*cacheEntry).score = score
		s.lru.MoveToFront(el)
		return
	}
	s.entries[k] = s.lru.PushFront(&cacheEntry{key: k, score: score})
	if s.lru.Len() > c.perShardCap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the current number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Entry is one cached score, as enumerated by Export.
type Entry struct {
	Key   Key
	Score float64
}

// Export returns the cached entries whose keys satisfy keep (nil keeps
// everything), in unspecified order — the serialization point for warm
// cache persistence. It holds each shard's lock only while copying that
// shard and does not update recency.
func (c *Cache) Export(keep func(Key) bool) []Entry {
	var out []Entry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			ent := el.Value.(*cacheEntry)
			if keep == nil || keep(ent.key) {
				out = append(out, Entry{Key: ent.key, Score: ent.score})
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Stats reports cumulative hit/miss counters since construction.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Entries is the current cache population.
	Entries int `json:"entries"`
}

// Stats returns the cache's cumulative counters and population.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.Len()}
}
