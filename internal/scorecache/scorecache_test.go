package scorecache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPairKeyCanonicalOrder(t *testing.T) {
	if PairKey("m", "b", "a", 3, 0) != PairKey("m", "a", "b", 3, 0) {
		t.Error("pair order not canonicalized")
	}
	if PairKey("m", "a", "b", 3, 0) == PairKey("m", "a", "b", 4, 0) {
		t.Error("generation not part of the key")
	}
	if PairKey("m1", "a", "b", 3, 0) == PairKey("m2", "a", "b", 3, 0) {
		t.Error("measure not part of the key")
	}
	if PairKey("m", "a", "b", 3, 1) == PairKey("m", "a", "b", 3, 2) {
		t.Error("projector epoch not part of the key")
	}
}

// TestSelfPairKeys: a self-pair (a == b) is an ordinary key — canonical
// ordering is a no-op, and it never collides with a distinct pair whose
// concatenation matches.
func TestSelfPairKeys(t *testing.T) {
	c := New(64)
	self := PairKey("m", "x", "x", 1, 0)
	c.Put(self, 1.0)
	if v, ok := c.Get(PairKey("m", "x", "x", 1, 0)); !ok || v != 1.0 {
		t.Fatalf("self-pair lookup = %v/%v", v, ok)
	}
	// A projector change must retire the cached self-pair too.
	if _, ok := c.Get(PairKey("m", "x", "x", 1, 1)); ok {
		t.Error("self-pair served across projector epochs")
	}
	if self == PairKey("m", "xx", "", 1, 0) {
		t.Error("self-pair collides with concatenated IDs")
	}
}

func TestGetPutAndCounters(t *testing.T) {
	c := New(64)
	k := PairKey("MS", "1", "2", 0, 0)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 0.75)
	v, ok := c.Get(PairKey("MS", "2", "1", 0, 0)) // symmetric lookup
	if !ok || v != 0.75 {
		t.Fatalf("got %v/%v", v, ok)
	}
	// Overwrite updates in place.
	c.Put(k, 0.5)
	if v, _ := c.Get(k); v != 0.5 {
		t.Errorf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(shardCount) // one entry per shard
	var keys []Key
	for i := 0; i < 10*shardCount; i++ {
		k := PairKey("m", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), 1, 0)
		keys = append(keys, k)
		c.Put(k, float64(i))
	}
	if n := c.Len(); n > shardCount {
		t.Errorf("cache over capacity: %d entries", n)
	}
	// The oldest keys of each shard must be gone.
	present := 0
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			present++
		}
	}
	if present > shardCount {
		t.Errorf("%d entries survived in a %d-capacity cache", present, shardCount)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := PairKey("m", fmt.Sprintf("a%d", i%100), fmt.Sprintf("b%d", (i+w)%100), uint64(i%3), 0)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("negative score")
				}
				c.Put(k, float64(i))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Error("empty after concurrent fill")
	}
}

func TestDefaultSize(t *testing.T) {
	c := New(0)
	if c.perShardCap*shardCount < DefaultSize {
		t.Errorf("default capacity too small: %d", c.perShardCap*shardCount)
	}
}

func TestExportFiltersWithoutTouchingRecency(t *testing.T) {
	c := New(64)
	for i := 0; i < 8; i++ {
		gen := uint64(i % 2)
		c.Put(PairKey("MS", fmt.Sprint(i), "q", gen, 0), float64(i)/10)
	}
	all := c.Export(nil)
	if len(all) != 8 {
		t.Fatalf("Export(nil) returned %d entries, want 8", len(all))
	}
	gen1 := c.Export(func(k Key) bool { return k.Gen == 1 })
	if len(gen1) != 4 {
		t.Fatalf("filtered export returned %d entries, want 4", len(gen1))
	}
	for _, e := range gen1 {
		if e.Key.Gen != 1 {
			t.Fatalf("filter leaked entry %+v", e)
		}
	}
	// Export is a read: hit/miss counters stay untouched.
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Export moved counters: %+v", st)
	}
}
