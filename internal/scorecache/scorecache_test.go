package scorecache

import (
	"sync"
	"testing"
)

func TestPairKeyCanonicalOrder(t *testing.T) {
	if PairKey("m", 2, 1, 3, 0) != PairKey("m", 1, 2, 3, 0) {
		t.Error("pair order not canonicalized")
	}
	if PairKey("m", 1, 2, 3, 0) == PairKey("m", 1, 2, 4, 0) {
		t.Error("generation not part of the key")
	}
	if PairKey("m1", 1, 2, 3, 0) == PairKey("m2", 1, 2, 3, 0) {
		t.Error("measure not part of the key")
	}
	if PairKey("m", 1, 2, 3, 1) == PairKey("m", 1, 2, 3, 2) {
		t.Error("projector epoch not part of the key")
	}
}

// TestSelfPairKeys: a self-pair (a == b) is an ordinary key — canonical
// ordering is a no-op, and it never collides with a pair sharing one side.
func TestSelfPairKeys(t *testing.T) {
	c := New(64)
	self := PairKey("m", 7, 7, 1, 0)
	c.Put(self, 1.0)
	if v, ok := c.Get(PairKey("m", 7, 7, 1, 0)); !ok || v != 1.0 {
		t.Fatalf("self-pair lookup = %v/%v", v, ok)
	}
	// A projector change must retire the cached self-pair too.
	if _, ok := c.Get(PairKey("m", 7, 7, 1, 1)); ok {
		t.Error("self-pair served across projector epochs")
	}
	if self == PairKey("m", 7, 8, 1, 0) {
		t.Error("self-pair collides with a distinct pair")
	}
}

func TestGetPutAndCounters(t *testing.T) {
	c := New(64)
	k := PairKey("MS", 1, 2, 0, 0)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 0.75)
	v, ok := c.Get(PairKey("MS", 2, 1, 0, 0)) // symmetric lookup
	if !ok || v != 0.75 {
		t.Fatalf("got %v/%v", v, ok)
	}
	// Overwrite updates in place.
	c.Put(k, 0.5)
	if v, _ := c.Get(k); v != 0.5 {
		t.Errorf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(shardCount) // one entry per shard
	var keys []Key
	for i := 0; i < 10*shardCount; i++ {
		k := PairKey("m", uint32(2*i+1), uint32(2*i+2), 1, 0)
		keys = append(keys, k)
		c.Put(k, float64(i))
	}
	if n := c.Len(); n > shardCount {
		t.Errorf("cache over capacity: %d entries", n)
	}
	// The oldest keys of each shard must be gone.
	present := 0
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			present++
		}
	}
	if present > shardCount {
		t.Errorf("%d entries survived in a %d-capacity cache", present, shardCount)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := PairKey("m", uint32(i%100+1), uint32((i+w)%100+101), uint64(i%3), 0)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("negative score")
				}
				c.Put(k, float64(i))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Error("empty after concurrent fill")
	}
}

func TestDefaultSize(t *testing.T) {
	c := New(0)
	if c.perShardCap*shardCount < DefaultSize {
		t.Errorf("default capacity too small: %d", c.perShardCap*shardCount)
	}
}

func TestExportFiltersWithoutTouchingRecency(t *testing.T) {
	c := New(64)
	for i := 0; i < 8; i++ {
		gen := uint64(i % 2)
		c.Put(PairKey("MS", uint32(i+1), 999, gen, 0), float64(i)/10)
	}
	all := c.Export(nil)
	if len(all) != 8 {
		t.Fatalf("Export(nil) returned %d entries, want 8", len(all))
	}
	gen1 := c.Export(func(k Key) bool { return k.Gen == 1 })
	if len(gen1) != 4 {
		t.Fatalf("filtered export returned %d entries, want 4", len(gen1))
	}
	for _, e := range gen1 {
		if e.Key.Gen != 1 {
			t.Fatalf("filter leaked entry %+v", e)
		}
	}
	// Export is a read: hit/miss counters stay untouched.
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Export moved counters: %+v", st)
	}
}
