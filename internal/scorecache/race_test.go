package scorecache

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRaceEvictionVsGenerationBump drives a deliberately tiny cache (a
// handful of entries per shard, so every Put races an eviction) with
// concurrent scorers while a mutator thread bumps the repository
// generation. Scores are written as float64(key.Gen), so a Get that
// returns a value disagreeing with its own key's generation means the
// cache served a score computed under a different generation — the
// staleness bug the generation-keyed design exists to rule out. Run under
// -race this also shakes out lock-ordering mistakes between Put's eviction
// path and Get's recency update.
func TestRaceEvictionVsGenerationBump(t *testing.T) {
	c := New(64) // 4 entries per shard: constant eviction under the load below
	ids := make([]uint32, 24)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}

	var gen atomic.Uint64
	stop := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen.Add(1)
			runtime.Gosched()
		}
	}()

	const (
		workers = 8
		iters   = 4000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				g := gen.Load()
				k := PairKey("m", ids[r.Intn(len(ids))], ids[r.Intn(len(ids))], g, 0)
				c.Put(k, float64(g))
				// Read back at the current generation and at an older one:
				// both may miss (eviction is racing us), but a hit must
				// carry the score written under exactly that key's
				// generation.
				if s, ok := c.Get(k); ok && s != float64(g) {
					t.Errorf("Get(gen=%d) = %v, want %v: stale-generation score served", g, s, float64(g))
				}
				if g > 0 {
					old := PairKey("m", ids[r.Intn(len(ids))], ids[r.Intn(len(ids))], g-1, 0)
					if s, ok := c.Get(old); ok && s != float64(g-1) {
						t.Errorf("Get(gen=%d) = %v, want %v: stale-generation score served", g-1, s, float64(g-1))
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	mutator.Wait()

	if c.Len() > 64 {
		t.Errorf("cache grew past its capacity under churn: %d entries", c.Len())
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Error("no cache hit in the entire run; the race exercised nothing")
	}
}
