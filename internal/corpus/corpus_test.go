package corpus

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workflow"
)

func sample(id string) *workflow.Workflow {
	w := workflow.New(id)
	w.Annotations = workflow.Annotations{Title: "t " + id, Tags: []string{"x"}}
	a := w.AddModule(&workflow.Module{ID: "m0", Label: "a", Type: workflow.TypeWSDL, ServiceURI: "http://u"})
	b := w.AddModule(&workflow.Module{ID: "m1", Label: "b", Type: workflow.TypeBeanshell, Script: "s"})
	_ = w.AddEdge(a, b)
	return w
}

func TestRepositoryAddGet(t *testing.T) {
	r, err := NewRepository(sample("1"), sample("2"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Errorf("Size = %d", r.Size())
	}
	if r.Get("1") == nil || r.Get("404") != nil {
		t.Error("Get misbehaves")
	}
	if got := r.IDs(); !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Errorf("IDs = %v", got)
	}
	if err := r.Add(sample("1")); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := r.Add(workflow.New("")); err == nil {
		t.Error("empty ID accepted")
	}
	if err := r.Add(nil); err == nil {
		t.Error("nil workflow accepted")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r, err := NewRepository(sample("1"), sample("2"))
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap.Generation() != 0 {
		t.Errorf("fresh repository generation = %d", snap.Generation())
	}
	if r.Snapshot() != snap {
		t.Error("snapshot not cached between writes")
	}
	if err := r.Add(sample("3")); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("1"); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot is unaffected by both writes.
	if snap.Size() != 2 || snap.Get("1") == nil || snap.Get("3") != nil {
		t.Errorf("pinned snapshot torn by writes: size %d", snap.Size())
	}
	now := r.Snapshot()
	if now.Generation() != 2 {
		t.Errorf("generation after two writes = %d", now.Generation())
	}
	if now.Size() != 2 || now.Get("1") != nil || now.Get("3") == nil {
		t.Error("current snapshot missing the writes")
	}
}

func TestRemoveReplace(t *testing.T) {
	r, _ := NewRepository(sample("1"), sample("2"))
	if err := r.Remove("404"); err == nil {
		t.Error("removing unknown ID accepted")
	}
	if err := r.Replace(sample("404")); err == nil {
		t.Error("replacing unknown ID accepted")
	}
	repl := sample("2")
	repl.Annotations.Title = "replaced"
	if err := r.Replace(repl); err != nil {
		t.Fatal(err)
	}
	if got := r.Get("2").Annotations.Title; got != "replaced" {
		t.Errorf("Replace not visible: title %q", got)
	}
	if r.Size() != 2 {
		t.Errorf("Replace changed size to %d", r.Size())
	}
	if err := r.Remove("1"); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 1 || r.Get("1") != nil {
		t.Error("Remove not visible")
	}
}

func TestApplyBatchTransactional(t *testing.T) {
	r, _ := NewRepository(sample("1"), sample("2"))
	before := r.Snapshot()

	// A batch with a bad trailing op must leave the repository untouched.
	_, err := r.ApplyBatch([]Op{
		{Kind: OpAdd, Workflow: sample("3")},
		{Kind: OpRemove, ID: "404"},
	})
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	if r.Snapshot() != before {
		t.Error("failed batch mutated the repository")
	}

	// Remove-then-re-add of the same ID inside one batch is valid.
	gen, err := r.ApplyBatch([]Op{
		{Kind: OpRemove, ID: "1"},
		{Kind: OpAdd, Workflow: sample("1")},
		{Kind: OpAdd, Workflow: sample("3")},
		{Kind: OpReplace, Workflow: sample("2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != before.Generation()+1 {
		t.Errorf("batch bumped generation by %d, want 1", gen-before.Generation())
	}
	if r.Size() != 3 {
		t.Errorf("size after batch = %d", r.Size())
	}

	// Duplicate add within one batch is caught by staged validation.
	if _, err := r.ApplyBatch([]Op{
		{Kind: OpAdd, Workflow: sample("9")},
		{Kind: OpAdd, Workflow: sample("9")},
	}); err == nil {
		t.Error("duplicate add within batch accepted")
	}
	if _, err := r.ApplyBatch([]Op{{}}); err == nil {
		t.Error("zero op accepted")
	}
}

func TestAddErrorsIncludeSize(t *testing.T) {
	r, _ := NewRepository(sample("1"), sample("2"))
	err := r.Add(sample("1"))
	if err == nil || !strings.Contains(err.Error(), "repository size 2") {
		t.Errorf("duplicate error lacks repository size: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r, _ := NewRepository(sample("1"), sample("2"))
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != 2 {
		t.Fatalf("loaded size = %d", r2.Size())
	}
	w1, w2 := r.Get("1"), r2.Get("1")
	if w1.Annotations.Title != w2.Annotations.Title {
		t.Error("annotations lost in round trip")
	}
	if w1.Size() != w2.Size() || w1.EdgeCount() != w2.EdgeCount() {
		t.Error("structure lost in round trip")
	}
	if w2.Modules[0].ServiceURI != "http://u" {
		t.Error("module attributes lost")
	}
	if err := r2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsWrongFormat(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"format":"other","workflows":[]}`)); err == nil {
		t.Error("wrong format accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.json")
	r, _ := NewRepository(sample("1"))
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != 1 {
		t.Errorf("loaded size = %d", r2.Size())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCommitHookSeesEveryMutation(t *testing.T) {
	r, err := NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	type call struct {
		gen uint64
		ops []Op
	}
	var calls []call
	r.SetCommitHook(func(gen uint64, ops []Op) error {
		calls = append(calls, call{gen, ops})
		return nil
	})
	if err := r.Add(sample("1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Replace(sample("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyBatch([]Op{
		{Kind: OpAdd, ID: "2", Workflow: sample("2")},
		{Kind: OpRemove, ID: "1"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("2"); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 {
		t.Fatalf("hook fired %d times, want 4", len(calls))
	}
	for i, c := range calls {
		if c.gen != uint64(i+1) {
			t.Errorf("call %d carries generation %d, want %d", i, c.gen, i+1)
		}
	}
	if len(calls[2].ops) != 2 {
		t.Errorf("batch hook got %d ops, want 2", len(calls[2].ops))
	}
	if calls[1].ops[0].Kind != OpReplace || calls[3].ops[0].Kind != OpRemove {
		t.Errorf("hook op kinds wrong: %+v / %+v", calls[1].ops, calls[3].ops)
	}
}

func TestCommitHookErrorAbortsCommit(t *testing.T) {
	r, err := NewRepository(sample("1"))
	if err != nil {
		t.Fatal(err)
	}
	genBefore := r.Generation()
	hookErr := errors.New("denied")
	r.SetCommitHook(func(uint64, []Op) error {
		return hookErr
	})
	if err := r.Add(sample("2")); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("Add with failing hook: %v", err)
	}
	if _, err := r.ApplyBatch([]Op{{Kind: OpRemove, ID: "1"}}); err == nil {
		t.Fatal("ApplyBatch with failing hook succeeded")
	}
	if r.Generation() != genBefore || r.Size() != 1 || r.Get("2") != nil {
		t.Fatalf("aborted commit leaked state: gen %d size %d", r.Generation(), r.Size())
	}
	// Validation failures must surface before the hook is consulted.
	fired := false
	r.SetCommitHook(func(uint64, []Op) error { fired = true; return nil })
	if err := r.Add(sample("1")); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if fired {
		t.Fatal("hook fired for a mutation that failed validation")
	}
}

func TestRestoreOnlyOnFreshRepository(t *testing.T) {
	r, err := NewRepository()
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	r.SetCommitHook(func(uint64, []Op) error { fired = true; return nil })
	if err := r.Restore(7, sample("1"), sample("2")); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("Restore fired the commit hook; recovery must not re-log itself")
	}
	if r.Generation() != 7 || r.Size() != 2 {
		t.Fatalf("restored gen %d size %d, want 7/2", r.Generation(), r.Size())
	}
	if got := r.IDs(); !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Fatalf("restored IDs %v", got)
	}
	if err := r.Restore(9, sample("3")); err == nil {
		t.Fatal("second Restore accepted on a non-fresh repository")
	}
	r2, _ := NewRepository(sample("1"))
	if err := r2.Restore(1, sample("2")); err == nil {
		t.Fatal("Restore accepted on a pre-populated repository")
	}
	// Restore validates its input like any other mutation path.
	r3, _ := NewRepository()
	if err := r3.Restore(1, sample("dup"), sample("dup")); err == nil {
		t.Fatal("Restore accepted duplicate IDs")
	}
	if r3.Size() != 0 || r3.Generation() != 0 {
		t.Fatal("failed Restore mutated the repository")
	}
}
