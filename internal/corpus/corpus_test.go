package corpus

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workflow"
)

func sample(id string) *workflow.Workflow {
	w := workflow.New(id)
	w.Annotations = workflow.Annotations{Title: "t " + id, Tags: []string{"x"}}
	a := w.AddModule(&workflow.Module{ID: "m0", Label: "a", Type: workflow.TypeWSDL, ServiceURI: "http://u"})
	b := w.AddModule(&workflow.Module{ID: "m1", Label: "b", Type: workflow.TypeBeanshell, Script: "s"})
	_ = w.AddEdge(a, b)
	return w
}

func TestRepositoryAddGet(t *testing.T) {
	r, err := NewRepository(sample("1"), sample("2"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Errorf("Size = %d", r.Size())
	}
	if r.Get("1") == nil || r.Get("404") != nil {
		t.Error("Get misbehaves")
	}
	if got := r.IDs(); !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Errorf("IDs = %v", got)
	}
	if err := r.Add(sample("1")); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := r.Add(workflow.New("")); err == nil {
		t.Error("empty ID accepted")
	}
	if err := r.Add(nil); err == nil {
		t.Error("nil workflow accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r, _ := NewRepository(sample("1"), sample("2"))
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != 2 {
		t.Fatalf("loaded size = %d", r2.Size())
	}
	w1, w2 := r.Get("1"), r2.Get("1")
	if w1.Annotations.Title != w2.Annotations.Title {
		t.Error("annotations lost in round trip")
	}
	if w1.Size() != w2.Size() || w1.EdgeCount() != w2.EdgeCount() {
		t.Error("structure lost in round trip")
	}
	if w2.Modules[0].ServiceURI != "http://u" {
		t.Error("module attributes lost")
	}
	if err := r2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsWrongFormat(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"format":"other","workflows":[]}`)); err == nil {
		t.Error("wrong format accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.json")
	r, _ := NewRepository(sample("1"))
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != 1 {
		t.Errorf("loaded size = %d", r2.Size())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
