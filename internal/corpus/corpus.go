// Package corpus manages collections of scientific workflows: a mutable,
// snapshot-versioned in-memory repository with ID lookup, and JSON
// (de)serialisation so generated corpora and their ground truth can be
// stored, shared and reloaded — the paper's equivalent artefacts are the
// myExperiment dump transformed into a custom graph format and the published
// gold-standard ratings.
//
// The repository is copy-on-write: writers mutate private state under a
// lock, and readers pin an immutable Snapshot that is rebuilt lazily after
// the next write. An in-flight scan over a pinned Snapshot is therefore
// never torn by a concurrent Add/Remove/ApplyBatch, and a whole mutation
// batch becomes visible atomically under a single new generation number —
// the continuous-ingest-with-versioned-snapshots design of large living
// catalogs, scaled down to one process.
package corpus

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/symtab"
	"repro/internal/workflow"
)

// Sentinel errors wrapped by mutation failures, so callers (e.g. an HTTP
// layer mapping conflicts vs. malformed requests) can discriminate with
// errors.Is instead of string matching.
var (
	// ErrNotFound: a Remove/Replace named an ID the repository lacks.
	ErrNotFound = errors.New("workflow not found")
	// ErrDuplicateID: an Add reused an existing workflow ID.
	ErrDuplicateID = errors.New("duplicate workflow ID")
)

// Snapshot is an immutable, generation-stamped view of a repository. All
// read methods are safe for concurrent use and unaffected by later writes
// to the Repository the snapshot was taken from.
type Snapshot struct {
	workflows []*workflow.Workflow
	byID      map[string]*workflow.Workflow
	gen       uint64
}

// Get returns the workflow with the given ID, or nil.
func (s *Snapshot) Get(id string) *workflow.Workflow { return s.byID[id] }

// Size returns the number of workflows in the snapshot.
func (s *Snapshot) Size() int { return len(s.workflows) }

// Workflows returns the workflows in insertion order. The slice is shared
// with other readers of the same snapshot; callers must not modify it.
func (s *Snapshot) Workflows() []*workflow.Workflow { return s.workflows }

// Generation returns the repository generation this snapshot captures.
// Generations start at 0 for an empty repository and increase by exactly one
// per successful mutation call (a whole ApplyBatch counts once).
func (s *Snapshot) Generation() uint64 { return s.gen }

// IDs returns all workflow IDs in the snapshot, sorted.
func (s *Snapshot) IDs() []string {
	ids := make([]string, 0, len(s.workflows))
	for _, wf := range s.workflows {
		ids = append(ids, wf.ID)
	}
	sort.Strings(ids)
	return ids
}

// Repository is a mutable collection of workflows with unique IDs.
// Reads delegate to the current Snapshot, so they are safe concurrently
// with writes; writes (Add, Remove, Replace, ApplyBatch) are serialised by
// an internal lock and each bumps the generation counter.
type Repository struct {
	mu        sync.Mutex
	workflows []*workflow.Workflow
	byID      map[string]*workflow.Workflow
	gen       atomic.Uint64
	snap      atomic.Pointer[Snapshot]
	hook      CommitHook

	// syms is the repository's symbol table: every ingested workflow is
	// resolved against it (module labels, canonical labels, types, and
	// the workflow's own ID are interned into dense uint32 symbols)
	// before the commit hook fires and before the mutation becomes
	// visible, so snapshot readers always observe resolved workflows and
	// a write-ahead log can persist the symbol delta with the batch.
	// Created lazily; shared across shards via AdoptSymtab. noIntern
	// disables resolution (the string-baseline mode).
	syms     *symtab.Table
	noIntern bool
}

// CommitHook intercepts mutations inside the transaction boundary: it is
// called after a batch has fully validated but before any in-memory state
// changes, with the generation the batch will commit under and the ops it
// contains. A non-nil error aborts the commit and leaves the repository
// untouched — this is how a write-ahead log makes the in-memory commit
// conditional on durability. The hook runs under the repository's write
// lock: it must not call back into the repository.
type CommitHook func(gen uint64, ops []Op) error

// SetCommitHook installs (or, with nil, removes) the repository's commit
// hook. It applies to all mutation paths: Add, Remove, Replace and
// ApplyBatch all fire it exactly once per committed transaction.
func (r *Repository) SetCommitHook(h CommitHook) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hook = h
}

// fireHookLocked invokes the commit hook, if any, for a validated batch
// about to commit under the next generation.
func (r *Repository) fireHookLocked(ops []Op) error {
	if r.hook == nil {
		return nil
	}
	if err := r.hook(r.gen.Load()+1, ops); err != nil {
		return fmt.Errorf("corpus: commit hook: %w", err)
	}
	return nil
}

// NewRepository builds a repository from the given workflows.
// Duplicate or empty IDs are rejected.
func NewRepository(wfs ...*workflow.Workflow) (*Repository, error) {
	r := &Repository{byID: make(map[string]*workflow.Workflow, len(wfs))}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, wf := range wfs {
		wf = r.resolveLocked(wf)
		if err := r.addLocked(wf); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// symsLocked returns the repository's symbol table, creating it lazily,
// or nil when interning is disabled.
func (r *Repository) symsLocked() *symtab.Table {
	if r.noIntern {
		return nil
	}
	if r.syms == nil {
		r.syms = symtab.New()
	}
	return r.syms
}

// resolveLocked interns a workflow about to be ingested and returns the
// repository-owned object. Normally that is wf itself, but a workflow
// already resolved by a *different* symbol table is cloned first:
// re-resolving it in place would rewrite its module IDs out from under
// whoever owns that other table, silently corrupting their equal-ID fast
// paths. The clone drops all derived state, so it re-resolves cleanly
// against this repository's table. Resolve is a no-op with a nil table,
// so the string-baseline mode flows through here unchanged.
func (r *Repository) resolveLocked(wf *workflow.Workflow) *workflow.Workflow {
	if wf == nil {
		return nil
	}
	t := r.symsLocked()
	if t == nil {
		return wf
	}
	if ref := wf.SymtabRef(); ref != nil && ref != t {
		wf = wf.Clone()
	}
	wf.Resolve(t)
	return wf
}

// Symtab returns the repository's shared symbol table, creating it if
// necessary. It returns nil when interning was disabled via
// AdoptSymtab(nil).
func (r *Repository) Symtab() *symtab.Table {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.symsLocked()
}

// AdoptSymtab installs a shared symbol table on an empty, never-mutated
// repository — the boot path of sharded engines, where every shard's
// repository must assign symbols from one table so cross-shard scans
// compare IDs directly. The table may already hold symbols (e.g. seeded
// by storage recovery); interning is idempotent, so re-resolving restores
// the persisted IDs exactly. Passing nil disables interning altogether:
// the string-baseline mode used by equivalence tests and benchmarks.
func (r *Repository) AdoptSymtab(t *symtab.Table) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.workflows) != 0 || r.gen.Load() != 0 {
		return fmt.Errorf("corpus: AdoptSymtab on non-empty repository (size %d, generation %d)", len(r.workflows), r.gen.Load())
	}
	r.syms = t
	r.noIntern = t == nil
	return nil
}

// addLocked is the single insertion path shared by NewRepository, Add and
// ApplyBatch; it validates the workflow and mutates the private state.
func (r *Repository) addLocked(wf *workflow.Workflow) error {
	if err := r.checkAddable(wf, r.byID); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	r.workflows = append(r.workflows, wf)
	r.byID[wf.ID] = wf
	return nil
}

// checkAddable validates an insertion against a membership map (the live
// index, or a staged overlay during batch validation). Errors carry no
// package prefix; callers add their own context.
func (r *Repository) checkAddable(wf *workflow.Workflow, member map[string]*workflow.Workflow) error {
	switch {
	case wf == nil:
		return fmt.Errorf("nil workflow (repository size %d)", len(r.workflows))
	case wf.ID == "":
		return fmt.Errorf("workflow without ID (repository size %d)", len(r.workflows))
	}
	if _, dup := member[wf.ID]; dup {
		return fmt.Errorf("%w %q (repository size %d)", ErrDuplicateID, wf.ID, len(r.workflows))
	}
	return nil
}

// invalidateLocked bumps the generation and drops the cached snapshot after
// a successful mutation.
func (r *Repository) invalidateLocked() uint64 {
	gen := r.gen.Add(1)
	r.snap.Store(nil)
	return gen
}

// Add inserts a workflow; its ID must be non-empty and unique.
func (r *Repository) Add(wf *workflow.Workflow) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byID == nil {
		r.byID = map[string]*workflow.Workflow{}
	}
	if err := r.checkAddable(wf, r.byID); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	// Resolve before the hook so a write-ahead log sees the symbol delta
	// this workflow contributes. The returned object (possibly a clone of
	// a foreign-resolved input) is what gets logged and stored.
	wf = r.resolveLocked(wf)
	if err := r.fireHookLocked([]Op{{Kind: OpAdd, ID: wf.ID, Workflow: wf}}); err != nil {
		return err
	}
	_ = r.addLocked(wf) //wfsimvet:ignore errpath checkAddable above proved the add applies; the durable hook already committed it
	r.invalidateLocked()
	return nil
}

// Remove deletes the workflow with the given ID.
func (r *Repository) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return fmt.Errorf("corpus: workflow %q %w (repository size %d)", id, ErrNotFound, len(r.workflows))
	}
	if err := r.fireHookLocked([]Op{{Kind: OpRemove, ID: id}}); err != nil {
		return err
	}
	_ = r.removeLocked(id) //wfsimvet:ignore errpath presence checked above; the durable hook already committed the remove
	r.invalidateLocked()
	return nil
}

func (r *Repository) removeLocked(id string) error {
	if _, ok := r.byID[id]; !ok {
		return fmt.Errorf("corpus: workflow %q %w (repository size %d)", id, ErrNotFound, len(r.workflows))
	}
	for i, wf := range r.workflows {
		if wf.ID == id {
			// The mutable slice is never shared with snapshots (Snapshot
			// copies it), so shifting in place is safe.
			r.workflows = append(r.workflows[:i], r.workflows[i+1:]...)
			break
		}
	}
	delete(r.byID, id)
	return nil
}

// Replace swaps the workflow with wf.ID for wf, keeping its position.
func (r *Repository) Replace(wf *workflow.Workflow) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if wf == nil {
		return fmt.Errorf("corpus: nil workflow (repository size %d)", len(r.workflows))
	}
	if _, ok := r.byID[wf.ID]; !ok {
		return fmt.Errorf("corpus: workflow %q %w (repository size %d)", wf.ID, ErrNotFound, len(r.workflows))
	}
	wf = r.resolveLocked(wf)
	if err := r.fireHookLocked([]Op{{Kind: OpReplace, ID: wf.ID, Workflow: wf}}); err != nil {
		return err
	}
	_ = r.replaceLocked(wf) //wfsimvet:ignore errpath presence checked above; the durable hook already committed the replace
	r.invalidateLocked()
	return nil
}

func (r *Repository) replaceLocked(wf *workflow.Workflow) error {
	if wf == nil {
		return fmt.Errorf("corpus: nil workflow (repository size %d)", len(r.workflows))
	}
	if _, ok := r.byID[wf.ID]; !ok {
		return fmt.Errorf("corpus: workflow %q %w (repository size %d)", wf.ID, ErrNotFound, len(r.workflows))
	}
	for i, old := range r.workflows {
		if old.ID == wf.ID {
			r.workflows[i] = wf
			break
		}
	}
	r.byID[wf.ID] = wf
	return nil
}

// OpKind discriminates batch mutation operations.
type OpKind int

const (
	// OpAdd inserts Op.Workflow (ID must be new).
	OpAdd OpKind = iota + 1
	// OpRemove deletes the workflow with Op.ID.
	OpRemove
	// OpReplace swaps the workflow with Op.Workflow.ID for Op.Workflow.
	OpReplace
)

// Op is one mutation in an ApplyBatch transaction. Workflow is set for
// OpAdd/OpReplace; ID is set for OpRemove (and mirrors Workflow.ID
// otherwise).
type Op struct {
	Kind     OpKind
	ID       string
	Workflow *workflow.Workflow
}

// validateBatchLocked runs the validation pass of a mutation batch over a
// staged overlay of the current state; nothing is mutated. It is the prepare
// phase of a transaction: an error means the batch cannot commit here.
func (r *Repository) validateBatchLocked(ops []Op) error {
	staged := make(map[string]*workflow.Workflow, len(r.byID)+len(ops))
	for id, wf := range r.byID {
		staged[id] = wf
	}
	for i, op := range ops {
		switch op.Kind {
		case OpAdd:
			if err := r.checkAddable(op.Workflow, staged); err != nil {
				return fmt.Errorf("corpus: batch op %d: %w", i, err)
			}
			staged[op.Workflow.ID] = op.Workflow
		case OpRemove:
			if _, ok := staged[op.ID]; !ok {
				return fmt.Errorf("corpus: batch op %d: workflow %q %w (repository size %d)", i, op.ID, ErrNotFound, len(r.workflows))
			}
			delete(staged, op.ID)
		case OpReplace:
			if op.Workflow == nil {
				return fmt.Errorf("corpus: batch op %d: nil workflow (repository size %d)", i, len(r.workflows))
			}
			if _, ok := staged[op.Workflow.ID]; !ok {
				return fmt.Errorf("corpus: batch op %d: workflow %q %w (repository size %d)", i, op.Workflow.ID, ErrNotFound, len(r.workflows))
			}
			staged[op.Workflow.ID] = op.Workflow
		default:
			return fmt.Errorf("corpus: batch op %d: invalid op kind %d", i, op.Kind)
		}
	}
	return nil
}

// ValidateBatch checks whether a mutation batch would commit against the
// current state, without mutating anything and without firing the commit
// hook. It is the prepare phase of a cross-repository transaction: a
// coordinator validates a split batch on every touched repository before
// committing to any of them. A nil error is a point-in-time statement; it
// stays true only while the caller prevents interleaved writers.
func (r *Repository) ValidateBatch(ops []Op) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.validateBatchLocked(ops)
}

// ApplyBatch applies a transactional mutation batch: every op is validated
// against the repository state with all preceding ops of the batch staged,
// and either the whole batch commits under a single new generation or the
// repository is left untouched. The new generation is returned on success.
func (r *Repository) ApplyBatch(ops []Op) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byID == nil {
		r.byID = map[string]*workflow.Workflow{}
	}
	if len(ops) == 0 {
		return r.gen.Load(), nil
	}
	if err := r.validateBatchLocked(ops); err != nil {
		return 0, err
	}
	// Resolve incoming workflows before the hook so a write-ahead log
	// sees the batch's symbol delta. Resolution may substitute a clone
	// for a foreign-resolved input, so the ops are rewritten in place:
	// the hook and the commit pass below must both see the owned object.
	for i := range ops {
		if ops[i].Kind == OpAdd || ops[i].Kind == OpReplace {
			ops[i].Workflow = r.resolveLocked(ops[i].Workflow)
		}
	}
	// The batch is fully validated: give the commit hook (e.g. a write-ahead
	// log) its one chance to veto before any in-memory state changes.
	if err := r.fireHookLocked(ops); err != nil {
		return 0, err
	}
	// Commit pass: every op was validated against its staged state, so the
	// mirrored mutations cannot fail.
	for _, op := range ops {
		switch op.Kind {
		case OpAdd:
			_ = r.addLocked(op.Workflow) //wfsimvet:ignore errpath validated against the staged overlay; failing here would tear the committed batch
		case OpRemove:
			_ = r.removeLocked(op.ID) //wfsimvet:ignore errpath validated against the staged overlay; failing here would tear the committed batch
		case OpReplace:
			_ = r.replaceLocked(op.Workflow) //wfsimvet:ignore errpath validated against the staged overlay; failing here would tear the committed batch
		}
	}
	return r.invalidateLocked(), nil
}

// Restore replaces the contents and generation of an empty, never-mutated
// repository with a recovered state — the boot path of a storage layer that
// loaded a snapshot and replayed a mutation log. It does not fire the
// commit hook (the restored state is by definition already durable) and
// fails on a repository that has any workflows or a non-zero generation.
func (r *Repository) Restore(gen uint64, wfs ...*workflow.Workflow) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.workflows) != 0 || r.gen.Load() != 0 {
		return fmt.Errorf("corpus: Restore into non-empty repository (size %d, generation %d)", len(r.workflows), r.gen.Load())
	}
	byID := make(map[string]*workflow.Workflow, len(wfs))
	for _, wf := range wfs {
		if err := r.checkAddable(wf, byID); err != nil {
			return fmt.Errorf("corpus: restore: %w", err)
		}
		byID[wf.ID] = wf
	}
	// Re-intern the recovered state in insertion order. When storage
	// seeded the table from persisted symbols this is a pure no-op pass
	// (IDs are already assigned); when recovering a pre-symbol layout it
	// rebuilds the table deterministically from the corpus itself. An
	// input resolved by a foreign table is replaced by its owned clone.
	owned := make([]*workflow.Workflow, len(wfs))
	for i, wf := range wfs {
		owned[i] = r.resolveLocked(wf)
		byID[owned[i].ID] = owned[i]
	}
	r.workflows = owned
	r.byID = byID
	r.gen.Store(gen)
	r.snap.Store(nil)
	return nil
}

// Snapshot pins the current immutable view of the repository. The snapshot
// is cached until the next write, so repeated calls between writes are a
// single atomic load.
func (r *Repository) Snapshot() *Snapshot {
	if s := r.snap.Load(); s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.snap.Load(); s != nil { // raced with another rebuild
		return s
	}
	s := &Snapshot{
		workflows: append([]*workflow.Workflow(nil), r.workflows...),
		byID:      make(map[string]*workflow.Workflow, len(r.workflows)),
		gen:       r.gen.Load(),
	}
	for _, wf := range r.workflows {
		s.byID[wf.ID] = wf
	}
	r.snap.Store(s)
	return s
}

// Generation returns the current repository generation.
func (r *Repository) Generation() uint64 { return r.gen.Load() }

// Get returns the workflow with the given ID, or nil.
func (r *Repository) Get(id string) *workflow.Workflow { return r.Snapshot().Get(id) }

// Size returns the number of workflows.
func (r *Repository) Size() int { return r.Snapshot().Size() }

// Workflows returns the workflows in insertion order. The slice belongs to
// the current snapshot and is shared; callers must not modify it.
func (r *Repository) Workflows() []*workflow.Workflow { return r.Snapshot().Workflows() }

// IDs returns all workflow IDs, sorted.
func (r *Repository) IDs() []string { return r.Snapshot().IDs() }

// Validate checks every workflow in the repository.
func (r *Repository) Validate() error {
	for _, wf := range r.Workflows() {
		if err := wf.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// fileFormat is the on-disk JSON envelope.
type fileFormat struct {
	Format    string               `json:"format"`
	Workflows []*workflow.Workflow `json:"workflows"`
}

const formatID = "wfsim-corpus-v1"

// Save writes the repository as JSON.
func (r *Repository) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fileFormat{Format: formatID, Workflows: r.Workflows()})
}

// Load reads a repository from JSON produced by Save.
func Load(rd io.Reader) (*Repository, error) {
	var f fileFormat
	if err := json.NewDecoder(rd).Decode(&f); err != nil {
		return nil, fmt.Errorf("corpus: decode: %w", err)
	}
	if f.Format != formatID {
		return nil, fmt.Errorf("corpus: unexpected format %q (want %q)", f.Format, formatID)
	}
	return NewRepository(f.Workflows...)
}

// SaveFile writes the repository to the named file.
func (r *Repository) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a repository from the named file.
func LoadFile(path string) (*Repository, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
