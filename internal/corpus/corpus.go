// Package corpus manages collections of scientific workflows: an in-memory
// repository with ID lookup, and JSON (de)serialisation so generated corpora
// and their ground truth can be stored, shared and reloaded — the paper's
// equivalent artefacts are the myExperiment dump transformed into a custom
// graph format and the published gold-standard ratings.
package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/workflow"
)

// Repository is a collection of workflows with unique IDs.
type Repository struct {
	workflows []*workflow.Workflow
	byID      map[string]*workflow.Workflow
}

// NewRepository builds a repository from the given workflows.
// Duplicate or empty IDs are rejected.
func NewRepository(wfs ...*workflow.Workflow) (*Repository, error) {
	r := &Repository{byID: make(map[string]*workflow.Workflow, len(wfs))}
	for _, wf := range wfs {
		if err := r.Add(wf); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add inserts a workflow; its ID must be non-empty and unique.
func (r *Repository) Add(wf *workflow.Workflow) error {
	if wf == nil {
		return fmt.Errorf("corpus: nil workflow")
	}
	if wf.ID == "" {
		return fmt.Errorf("corpus: workflow without ID")
	}
	if _, dup := r.byID[wf.ID]; dup {
		return fmt.Errorf("corpus: duplicate workflow ID %q", wf.ID)
	}
	if r.byID == nil {
		r.byID = map[string]*workflow.Workflow{}
	}
	r.workflows = append(r.workflows, wf)
	r.byID[wf.ID] = wf
	return nil
}

// Get returns the workflow with the given ID, or nil.
func (r *Repository) Get(id string) *workflow.Workflow { return r.byID[id] }

// Size returns the number of workflows.
func (r *Repository) Size() int { return len(r.workflows) }

// Workflows returns the workflows in insertion order. The slice is shared;
// callers must not modify it.
func (r *Repository) Workflows() []*workflow.Workflow { return r.workflows }

// IDs returns all workflow IDs, sorted.
func (r *Repository) IDs() []string {
	ids := make([]string, 0, len(r.workflows))
	for _, wf := range r.workflows {
		ids = append(ids, wf.ID)
	}
	sort.Strings(ids)
	return ids
}

// Validate checks every workflow in the repository.
func (r *Repository) Validate() error {
	for _, wf := range r.workflows {
		if err := wf.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// fileFormat is the on-disk JSON envelope.
type fileFormat struct {
	Format    string               `json:"format"`
	Workflows []*workflow.Workflow `json:"workflows"`
}

const formatID = "wfsim-corpus-v1"

// Save writes the repository as JSON.
func (r *Repository) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fileFormat{Format: formatID, Workflows: r.workflows})
}

// Load reads a repository from JSON produced by Save.
func Load(rd io.Reader) (*Repository, error) {
	var f fileFormat
	if err := json.NewDecoder(rd).Decode(&f); err != nil {
		return nil, fmt.Errorf("corpus: decode: %w", err)
	}
	if f.Format != formatID {
		return nil, fmt.Errorf("corpus: unexpected format %q (want %q)", f.Format, formatID)
	}
	return NewRepository(f.Workflows...)
}

// SaveFile writes the repository to the named file.
func (r *Repository) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a repository from the named file.
func LoadFile(path string) (*Repository, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
