package workflow

import (
	"fmt"
	"testing"

	"repro/internal/symtab"
)

func TestCanonicalLabel(t *testing.T) {
	cases := map[string]string{
		"get_pathways_by_genes": "getpathwaysbygenes",
		"getPathwaysByGenes":    "getpathwaysbygenes",
		"Split String 2":        "splitstring",
		"split_string_2":        "splitstring",
		"":                      "",
		"42":                    "",
	}
	for in, want := range cases {
		if got := CanonicalLabel(in); got != want {
			t.Errorf("CanonicalLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func resolveTestWorkflow(id string) *Workflow {
	w := New(id)
	w.AddModule(&Module{ID: "m0", Label: "Fetch_Sequence", Type: TypeWSDL})
	w.AddModule(&Module{ID: "m1", Label: "fetch sequence", Type: TypeWSDL}) // same canonical form
	w.AddModule(&Module{ID: "m2", Label: "run_blast", Type: TypeSoaplabWSDL})
	w.AddModule(&Module{ID: "m3", Label: "", Type: TypeStringConst}) // empty label: not in the set
	return w
}

func TestResolveDerivedState(t *testing.T) {
	tab := symtab.New()
	w := resolveTestWorkflow("wf1")
	if w.Resolved() || w.SymID() != 0 || w.LabelSet() != nil || w.SymtabRef() != nil {
		t.Fatal("fresh workflow must be unresolved with zero derived state")
	}

	w.Resolve(tab)
	if !w.Resolved() || !w.ResolvedBy(tab) || w.SymtabRef() != tab {
		t.Fatal("Resolve did not mark the workflow resolved by tab")
	}
	if w.SymID() == 0 {
		t.Error("workflow ID symbol is zero after Resolve")
	}
	for _, m := range w.Modules {
		if m.LabelID != tab.Intern(m.Label) || m.CanonID != tab.Intern(CanonicalLabel(m.Label)) || m.TypeID != tab.Intern(m.Type) {
			t.Errorf("module %s: IDs do not round-trip through the table", m.ID)
		}
	}
	// Label set: canonical, sorted, deduplicated, no zero ID. The two
	// fetch-sequence spellings collapse; the empty label contributes nothing.
	set := w.LabelSet()
	if len(set) != 2 {
		t.Fatalf("label set %v, want 2 entries", set)
	}
	for i, id := range set {
		if id == 0 {
			t.Error("label set contains the empty symbol")
		}
		if i > 0 && set[i-1] >= id {
			t.Errorf("label set not strictly sorted: %v", set)
		}
	}
	if other := symtab.New(); w.ResolvedBy(other) {
		t.Error("ResolvedBy(true) for a table that never resolved the workflow")
	}
}

func TestLabelOverlapKernel(t *testing.T) {
	tab := symtab.New()
	a := resolveTestWorkflow("a")
	b := New("b")
	b.AddModule(&Module{ID: "m0", Label: "FETCH_SEQUENCE", Type: TypeWSDL})
	b.AddModule(&Module{ID: "m1", Label: "plot_hits", Type: TypeWSDL})
	c := New("c")
	c.AddModule(&Module{ID: "m0", Label: "segment_cells", Type: TypeTool})

	if got := LabelOverlap(a, b); got != -1 {
		t.Fatalf("unresolved pair overlap = %d, want -1 (string fallback)", got)
	}
	for _, w := range []*Workflow{a, b, c} {
		w.Resolve(tab)
	}
	if got := LabelOverlap(a, b); got != 1 {
		t.Errorf("overlap(a,b) = %d, want 1", got)
	}
	if got := LabelOverlap(a, c); got != 0 {
		t.Errorf("overlap(a,c) = %d, want 0 (bitset prescreen)", got)
	}
	foreign := resolveTestWorkflow("a")
	foreign.Resolve(symtab.New())
	if got := LabelOverlap(a, foreign); got != -1 {
		t.Errorf("cross-table overlap = %d, want -1: symbols from two tables must never be compared", got)
	}
}

func TestBitset256(t *testing.T) {
	var x, y Bitset256
	x.Set(3)
	x.Set(64 + 5)
	x.Set(255)
	y.Set(255)
	if x.Disjoint(&y) {
		t.Error("sets sharing bit 255 reported disjoint")
	}
	if got := x.OverlapUpper(&y); got != 1 {
		t.Errorf("OverlapUpper = %d, want 1", got)
	}
	var z Bitset256
	z.Set(256 + 3) // aliases bit 3 (mod 256): upper bound, not exact
	if x.Disjoint(&z) {
		t.Error("aliased bit must count as potential overlap")
	}
	if !y.Disjoint(&z) {
		t.Error("bits 255 and 3 reported overlapping")
	}
}

func TestIntersectCount(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want int
	}{
		{nil, nil, 0},
		{[]uint32{1, 2, 3}, nil, 0},
		{[]uint32{1, 3, 5, 9}, []uint32{2, 3, 4, 9}, 2},
		{[]uint32{1, 2}, []uint32{1, 2}, 2},
		{[]uint32{7}, []uint32{8}, 0},
	}
	for _, c := range cases {
		if got := IntersectCount(c.a, c.b); got != c.want {
			t.Errorf("IntersectCount(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Rendering always goes through the retained string attributes: a
// zero-value module prints its (empty) strings, and resolving a module
// must not change how it renders — symbol IDs never leak into output.
func TestModuleStringNeverRendersSymbols(t *testing.T) {
	var zero Module
	if got := zero.String(); got != "()" {
		t.Errorf("zero-value Module.String() = %q, want %q", got, "()")
	}
	m := &Module{ID: "m0", Label: "fetch_sequence", Type: TypeWSDL}
	before := m.String()
	w := New("wf")
	w.AddModule(m)
	w.Resolve(symtab.New())
	if m.LabelID == 0 {
		t.Fatal("module not resolved")
	}
	if got := m.String(); got != before {
		t.Errorf("String changed across Resolve: %q -> %q", before, got)
	}
	if s := fmt.Sprint(m); s != before {
		t.Errorf("fmt.Sprint renders %q, want %q", s, before)
	}
}
