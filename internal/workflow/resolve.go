package workflow

import (
	"math/bits"
	"sort"

	"repro/internal/symtab"
)

// CanonicalLabel folds author-specific label styling away: lowercase, strip
// non-alphanumeric characters, strip trailing digits (version suffixes such
// as "split_string_2"). "getPathwaysByGenes" and "get_pathways_by_genes"
// share a canonical form. Package repoknow re-exports this function; it
// lives here so ingest-time resolution can compute canonical symbol IDs
// without an import cycle.
func CanonicalLabel(label string) string {
	b := make([]byte, 0, len(label))
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			b = append(b, c)
		case c >= 'A' && c <= 'Z':
			b = append(b, c+'a'-'A')
		}
	}
	for len(b) > 0 && b[len(b)-1] >= '0' && b[len(b)-1] <= '9' {
		b = b[:len(b)-1]
	}
	return string(b)
}

// Resolve interns the workflow's hot strings into t and caches the
// derived representation: each module's LabelID/CanonID/TypeID, the
// workflow ID's own symbol, and the sorted set of canonical label IDs
// with its bitset summary. Resolution is derived state only — string
// attributes remain authoritative, and every consumer falls back to them
// when IDs are zero — so resolving can never change a comparison result.
// A nil table leaves the workflow unresolved (the string baseline).
func (w *Workflow) Resolve(t *symtab.Table) {
	if t == nil {
		return
	}
	w.symID = t.Intern(w.ID)
	set := make([]uint32, 0, len(w.Modules))
	for _, m := range w.Modules {
		m.LabelID = t.Intern(m.Label)
		m.CanonID = t.Intern(CanonicalLabel(m.Label))
		m.TypeID = t.Intern(m.Type)
		if m.CanonID != 0 {
			set = append(set, m.CanonID)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	// Deduplicate in place; the set semantics mirror the string-keyed
	// canonical label sets used before interning.
	uniq := set[:0]
	for i, id := range set {
		if i == 0 || id != set[i-1] {
			uniq = append(uniq, id)
		}
	}
	w.labelSet = uniq
	w.labelBits = Bitset256{}
	for _, id := range uniq {
		w.labelBits.Set(id)
	}
	w.resolved = true
	w.tab = t
}

// ResolvedBy reports whether the workflow's interned representation was
// produced by t. Symbol IDs are only meaningful relative to the table
// that assigned them; consumers holding their own table must re-derive
// IDs for workflows resolved elsewhere.
func (w *Workflow) ResolvedBy(t *symtab.Table) bool {
	return w.resolved && w.tab == t
}

// SymtabRef returns the table that resolved this workflow, or nil when
// unresolved.
func (w *Workflow) SymtabRef() *symtab.Table {
	if !w.resolved {
		return nil
	}
	return w.tab
}

// Resolved reports whether the workflow carries an interned hot
// representation (set by Resolve, cleared by mutation).
func (w *Workflow) Resolved() bool { return w.resolved }

// SymID returns the interned symbol of the workflow's own ID, or zero if
// the workflow is unresolved.
func (w *Workflow) SymID() uint32 { return w.symID }

// LabelSet returns the sorted, deduplicated canonical label symbol IDs,
// or nil if unresolved. The slice is shared cache state; callers must
// not modify it.
func (w *Workflow) LabelSet() []uint32 { return w.labelSet }

// LabelBits returns the bitset summary of the label set. The zero value
// is returned for unresolved workflows.
func (w *Workflow) LabelBits() *Bitset256 {
	return &w.labelBits
}

// Bitset256 is a fixed-width, 256-bit membership summary over symbol IDs
// (bit index = id mod 256). It cannot answer membership exactly, but a
// zero AND of two summaries proves the underlying sets are disjoint, and
// the popcount of the AND upper-bounds the true overlap — the prescreen
// that lets merge kernels skip provably-disjoint pairs.
type Bitset256 [4]uint64

// Set marks id's bit.
func (b *Bitset256) Set(id uint32) {
	b[(id>>6)&3] |= 1 << (id & 63)
}

// Disjoint reports whether the two summaries share no bit — a proof that
// the summarized sets are disjoint.
//
//wfsimvet:hotpath
func (b *Bitset256) Disjoint(o *Bitset256) bool {
	return b[0]&o[0]|b[1]&o[1]|b[2]&o[2]|b[3]&o[3] == 0
}

// OverlapUpper returns the popcount of the AND of the two summaries, an
// upper bound on the true set overlap.
//
//wfsimvet:hotpath
func (b *Bitset256) OverlapUpper(o *Bitset256) int {
	return bits.OnesCount64(b[0]&o[0]) +
		bits.OnesCount64(b[1]&o[1]) +
		bits.OnesCount64(b[2]&o[2]) +
		bits.OnesCount64(b[3]&o[3])
}

// IntersectCount returns |a ∩ b| for two sorted, deduplicated ID slices
// via a single allocation-free merge pass.
//
//wfsimvet:hotpath
func IntersectCount(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// LabelOverlap returns the number of shared canonical labels between two
// resolved workflows, or -1 if either side is unresolved (callers fall
// back to string sets). The bitset prescreen rejects provably-disjoint
// pairs without touching the sorted sets.
//
//wfsimvet:hotpath
func LabelOverlap(a, b *Workflow) int {
	if !a.resolved || !b.resolved || a.tab != b.tab {
		return -1
	}
	if a.labelBits.Disjoint(&b.labelBits) {
		return 0
	}
	return IntersectCount(a.labelSet, b.labelSet)
}
