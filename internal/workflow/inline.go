package workflow

// Subworkflow inlining. myExperiment Taverna workflows may nest dataflows:
// a module of type "dataflow" stands for an embedded child workflow. The
// paper's corpus preparation (Section 4.1) inlines subworkflows during
// import; Inline reproduces that transformation.

// SubworkflowResolver maps a dataflow module to the child workflow it embeds.
// The module's Params["dataflow"] value conventionally holds the child's ID.
type SubworkflowResolver func(m *Module) *Workflow

// Inline returns a copy of w in which every module of TypeDataflow that the
// resolver can resolve is replaced by the child workflow's modules:
//
//   - predecessors of the dataflow module are connected to the child's
//     source modules,
//   - the child's sink modules are connected to the dataflow module's
//     successors,
//   - the child's internal edges are preserved.
//
// Unresolvable dataflow modules are kept as ordinary modules. Nested
// subworkflows are expanded recursively up to maxDepth levels (guarding
// against recursive definitions); maxDepth <= 0 means a default of 8.
func (w *Workflow) Inline(resolve SubworkflowResolver, maxDepth int) *Workflow {
	if maxDepth <= 0 {
		maxDepth = 8
	}
	cur := w
	for depth := 0; depth < maxDepth; depth++ {
		next, expanded := cur.inlineOnce(resolve)
		if !expanded {
			return next
		}
		cur = next
	}
	return cur
}

func (w *Workflow) inlineOnce(resolve SubworkflowResolver) (*Workflow, bool) {
	hasDataflow := false
	for _, m := range w.Modules {
		if m.Type == TypeDataflow && resolve != nil && resolve(m) != nil {
			hasDataflow = true
			break
		}
	}
	if !hasDataflow {
		return w.Clone(), false
	}

	out := New(w.ID)
	out.Annotations = w.Clone().Annotations

	// For each original module index, record either its index in out, or the
	// child graph's source/sink indexes in out if it was expanded.
	type expansion struct {
		plain   int   // index in out when not expanded, else -1
		sources []int // indexes in out of the child's sources
		sinks   []int // indexes in out of the child's sinks
	}
	exp := make([]expansion, len(w.Modules))

	for i, m := range w.Modules {
		child := (*Workflow)(nil)
		if m.Type == TypeDataflow && resolve != nil {
			child = resolve(m)
		}
		if child == nil {
			exp[i] = expansion{plain: out.AddModule(m.Clone())}
			continue
		}
		remap := make([]int, len(child.Modules))
		for j, cm := range child.Modules {
			nm := cm.Clone()
			// Qualify nested module IDs so Validate's uniqueness holds.
			if nm.ID != "" {
				nm.ID = m.ID + "/" + nm.ID
			}
			remap[j] = out.AddModule(nm)
		}
		for _, e := range child.Edges {
			_ = out.AddEdge(remap[e.From], remap[e.To]) //wfsimvet:ignore errpath child edges remap within the child's own modules; duplicates are dropped by design
		}
		e := expansion{plain: -1}
		for _, s := range child.Sources() {
			e.sources = append(e.sources, remap[s])
		}
		for _, s := range child.Sinks() {
			e.sinks = append(e.sinks, remap[s])
		}
		if len(child.Modules) == 0 {
			// Empty child: treat as removed; edges through it are dropped.
			e.sources, e.sinks = nil, nil
		}
		exp[i] = e
	}

	outsOf := func(i int) []int {
		if exp[i].plain >= 0 {
			return []int{exp[i].plain}
		}
		return exp[i].sinks
	}
	insOf := func(i int) []int {
		if exp[i].plain >= 0 {
			return []int{exp[i].plain}
		}
		return exp[i].sources
	}
	for _, e := range w.Edges {
		for _, u := range outsOf(e.From) {
			for _, v := range insOf(e.To) {
				_ = out.AddEdge(u, v) //wfsimvet:ignore errpath expansion can fan an edge into a duplicate; dropping it is the inlining semantics
			}
		}
	}
	return out, true
}
