package workflow

import "testing"

func pairWF(id string, modules int) *Workflow {
	w := &Workflow{ID: id}
	for i := 0; i < modules; i++ {
		w.Modules = append(w.Modules, &Module{ID: "m", Label: "l"})
	}
	return w
}

func TestOrderPair(t *testing.T) {
	a, b := pairWF("a", 1), pairWF("b", 2)
	if x, y := OrderPair(a, b); x != a || y != b {
		t.Error("ordered pair was reordered")
	}
	if x, y := OrderPair(b, a); x != a || y != b {
		t.Error("reversed pair was not canonicalized")
	}
	// Same ID: smaller module count first.
	small, big := pairWF("same", 1), pairWF("same", 3)
	if x, y := OrderPair(big, small); x != small || y != big {
		t.Error("same-ID pair not ordered by size")
	}
	if x, y := OrderPair(small, big); x != small || y != big {
		t.Error("ordered same-ID pair was reordered")
	}
}

func TestOrderIDs(t *testing.T) {
	if a, b := OrderIDs("z", "a"); a != "a" || b != "z" {
		t.Errorf("OrderIDs(z, a) = (%s, %s)", a, b)
	}
	if a, b := OrderIDs("a", "z"); a != "a" || b != "z" {
		t.Errorf("OrderIDs(a, z) = (%s, %s)", a, b)
	}
}

func TestIDsInOrder(t *testing.T) {
	if !IDsInOrder("a", "b") || !IDsInOrder("a", "a") || IDsInOrder("b", "a") {
		t.Error("IDsInOrder disagrees with lexicographic order")
	}
}
