package workflow

// Graph algorithms used by the topological similarity measures and the
// importance-projection preprocessing: source-to-sink path enumeration
// (Path Sets decomposition, Section 2.1.3 of the paper), reachability,
// transitive closure over removed nodes and transitive reduction
// (importance projection, Section 2.1.5).

// Path is a sequence of module indexes from a source to a sink.
type Path []int

// DefaultPathCap bounds the number of source-to-sink paths enumerated per
// workflow. Real Taverna DAGs are shallow, but pathological fan-out/fan-in
// chains have exponentially many paths; the cap keeps Path Sets comparison
// tractable, analogous to the paper's per-pair GED timeout.
const DefaultPathCap = 4096

// Paths enumerates the source-to-sink paths of the DAG, visiting at most cap
// paths (cap <= 0 uses DefaultPathCap). Isolated modules yield length-1
// paths: a module that is both source and sink is its own path.
func (w *Workflow) Paths(cap int) []Path {
	if cap <= 0 {
		cap = DefaultPathCap
	}
	a := w.buildAdjacency()
	var out []Path
	var stack []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		stack = append(stack, v)
		defer func() { stack = stack[:len(stack)-1] }()
		if len(a.succ[v]) == 0 {
			p := make(Path, len(stack))
			copy(p, stack)
			out = append(out, p)
			return len(out) < cap
		}
		for _, s := range a.succ[v] {
			if !dfs(s) {
				return false
			}
		}
		return true
	}
	for _, src := range w.Sources() {
		if !dfs(src) {
			break
		}
	}
	return out
}

// Reachable returns, for each module index, the set of module indexes
// reachable via one or more datalinks (the strict transitive closure).
func (w *Workflow) Reachable() []map[int]bool {
	a := w.buildAdjacency()
	n := len(w.Modules)
	reach := make([]map[int]bool, n)
	order, err := w.TopoSort()
	if err != nil {
		// A cyclic graph is invalid; callers should have validated.
		// Fall back to empty reachability rather than panicking.
		for i := range reach {
			reach[i] = map[int]bool{}
		}
		return reach
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		r := make(map[int]bool)
		for _, s := range a.succ[v] {
			r[s] = true
			for t := range reach[s] {
				r[t] = true
			}
		}
		reach[v] = r
	}
	return reach
}

// TransitiveReduction returns a copy of the workflow with every edge removed
// whose endpoints remain connected by a longer path; the result is the unique
// minimal DAG with the same reachability relation.
func (w *Workflow) TransitiveReduction() *Workflow {
	c := w.Clone()
	// Edge-only rewrite: module strings are untouched, so the interned
	// symbol IDs remain valid and are preserved for the comparison fast
	// paths (Clone drops them by default, assuming mutation).
	for i, m := range w.Modules {
		c.Modules[i].LabelID, c.Modules[i].CanonID, c.Modules[i].TypeID = m.LabelID, m.CanonID, m.TypeID
	}
	if len(c.Edges) == 0 {
		return c
	}
	// An edge u->v is redundant iff some other successor s of u (s != v)
	// reaches v.
	reach := c.Reachable()
	adj := c.buildAdjacency()
	kept := c.Edges[:0]
	for _, e := range c.Edges {
		redundant := false
		for _, s := range adj.succ[e.From] {
			if s == e.To {
				continue
			}
			if reach[s][e.To] {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, e)
		}
	}
	c.Edges = kept
	c.invalidate()
	return c
}

// InducedSubgraph returns a new workflow containing only the modules whose
// indexes are in keep, with edges connecting kept modules that were connected
// by a path (possibly through removed modules) in the original workflow, per
// the importance-projection construction of Section 2.1.5. The result is
// transitively reduced. Annotations and workflow ID are preserved.
func (w *Workflow) InducedSubgraph(keep []int) *Workflow {
	keepSet := make(map[int]bool, len(keep))
	for _, i := range keep {
		keepSet[i] = true
	}
	out := New(w.ID)
	out.Annotations = w.Clone().Annotations
	remap := make(map[int]int, len(keep))
	// Preserve original module order for determinism.
	for i, m := range w.Modules {
		if keepSet[i] {
			cm := m.Clone()
			// The projection never rewrites module strings, so the
			// interned symbol IDs stay valid on the copy.
			cm.LabelID, cm.CanonID, cm.TypeID = m.LabelID, m.CanonID, m.TypeID
			remap[i] = out.AddModule(cm)
		}
	}
	// Connect kept module u to kept module v iff v is reachable from u
	// through a path whose interior nodes are all removed.
	a := w.buildAdjacency()
	for u := range keepSet {
		// BFS through removed nodes only.
		visited := map[int]bool{u: true}
		frontier := []int{u}
		for len(frontier) > 0 {
			next := frontier[:0:0]
			for _, x := range frontier {
				for _, s := range a.succ[x] {
					if visited[s] {
						continue
					}
					visited[s] = true
					if keepSet[s] {
						_ = out.AddEdge(remap[u], remap[s]) //wfsimvet:ignore errpath contraction can fold an edge into a duplicate or self-loop; dropping it is the contraction semantics
						continue                            // do not traverse through kept nodes
					}
					next = append(next, s)
				}
			}
			frontier = next
		}
	}
	return out.TransitiveReduction()
}

// LongestPathLen returns the number of modules on a longest source-to-sink
// path (the DAG depth), or 0 for an empty workflow.
func (w *Workflow) LongestPathLen() int {
	order, err := w.TopoSort()
	if err != nil || len(order) == 0 {
		return 0
	}
	a := w.buildAdjacency()
	depth := make([]int, len(w.Modules))
	best := 0
	for _, v := range order {
		if depth[v] == 0 {
			depth[v] = 1
		}
		if depth[v] > best {
			best = depth[v]
		}
		for _, s := range a.succ[v] {
			if depth[v]+1 > depth[s] {
				depth[s] = depth[v] + 1
			}
		}
	}
	return best
}
