package workflow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// chain builds a linear workflow m0 -> m1 -> ... -> m(n-1).
func chain(t *testing.T, n int) *Workflow {
	t.Helper()
	w := New("chain")
	for i := 0; i < n; i++ {
		w.AddModule(&Module{Label: "m", Type: TypeLocalWorker})
	}
	for i := 0; i+1 < n; i++ {
		if err := w.AddEdge(i, i+1); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", i, i+1, err)
		}
	}
	return w
}

// diamond builds a -> {b, c} -> d.
func diamond(t *testing.T) *Workflow {
	t.Helper()
	w := New("diamond")
	for _, l := range []string{"a", "b", "c", "d"} {
		w.AddModule(&Module{Label: l, Type: TypeWSDL})
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := w.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return w
}

func TestAddEdgeValidation(t *testing.T) {
	w := New("w")
	w.AddModule(&Module{Label: "a"})
	w.AddModule(&Module{Label: "b"})
	if err := w.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := w.AddEdge(0, 1); err != nil {
		t.Fatalf("duplicate edge should be silently ignored, got %v", err)
	}
	if got := w.EdgeCount(); got != 1 {
		t.Fatalf("EdgeCount = %d, want 1 (duplicate ignored)", got)
	}
	if err := w.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := w.AddEdge(-1, 1); err == nil {
		t.Fatal("negative source accepted")
	}
	if err := w.AddEdge(0, 2); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestSourcesSinks(t *testing.T) {
	w := diamond(t)
	if got := w.Sources(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Sources = %v, want [0]", got)
	}
	if got := w.Sinks(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Sinks = %v, want [3]", got)
	}
	// Isolated module is both source and sink.
	i := w.AddModule(&Module{Label: "iso"})
	if got := w.Sources(); !reflect.DeepEqual(got, []int{0, i}) {
		t.Errorf("Sources with isolated = %v", got)
	}
	if got := w.Sinks(); !reflect.DeepEqual(got, []int{3, i}) {
		t.Errorf("Sinks with isolated = %v", got)
	}
}

func TestTopoSortChain(t *testing.T) {
	w := chain(t, 5)
	order, err := w.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("order = %v", order)
	}
}

func TestTopoSortCycle(t *testing.T) {
	w := New("cyc")
	w.AddModule(&Module{Label: "a"})
	w.AddModule(&Module{Label: "b"})
	_ = w.AddEdge(0, 1)
	w.Edges = append(w.Edges, Edge{From: 1, To: 0}) // bypass AddEdge for the cycle
	w.invalidate()
	if _, err := w.TopoSort(); err != ErrCycle {
		t.Fatalf("TopoSort err = %v, want ErrCycle", err)
	}
	if err := w.Validate(); err == nil {
		t.Fatal("Validate accepted cyclic workflow")
	}
}

func TestValidate(t *testing.T) {
	w := diamond(t)
	for i, m := range w.Modules {
		m.ID = string(rune('a' + i))
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate valid workflow: %v", err)
	}
	w.Modules[1].ID = "a" // duplicate
	if err := w.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate module IDs")
	}
}

func TestPathsDiamond(t *testing.T) {
	w := diamond(t)
	paths := w.Paths(0)
	want := []Path{{0, 1, 3}, {0, 2, 3}}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("Paths = %v, want %v", paths, want)
	}
}

func TestPathsIsolated(t *testing.T) {
	w := New("iso")
	w.AddModule(&Module{Label: "only"})
	paths := w.Paths(0)
	if !reflect.DeepEqual(paths, []Path{{0}}) {
		t.Errorf("Paths = %v, want [[0]]", paths)
	}
}

func TestPathsCap(t *testing.T) {
	// Stacked diamonds: k diamonds give 2^k paths. Cap must bound output.
	w := New("stack")
	prev := w.AddModule(&Module{Label: "s"})
	for d := 0; d < 10; d++ {
		b1 := w.AddModule(&Module{Label: "b1"})
		b2 := w.AddModule(&Module{Label: "b2"})
		j := w.AddModule(&Module{Label: "j"})
		_ = w.AddEdge(prev, b1)
		_ = w.AddEdge(prev, b2)
		_ = w.AddEdge(b1, j)
		_ = w.AddEdge(b2, j)
		prev = j
	}
	if got := len(w.Paths(0)); got != 1024 {
		t.Errorf("uncapped (default) path count = %d, want 1024", got)
	}
	if got := len(w.Paths(100)); got != 100 {
		t.Errorf("capped path count = %d, want 100", got)
	}
}

func TestReachable(t *testing.T) {
	w := diamond(t)
	reach := w.Reachable()
	if !reach[0][3] || !reach[0][1] || !reach[0][2] {
		t.Errorf("reach[0] = %v, want {1,2,3}", reach[0])
	}
	if len(reach[3]) != 0 {
		t.Errorf("reach[3] = %v, want empty", reach[3])
	}
	if reach[1][2] || reach[2][1] {
		t.Error("branches must not reach each other")
	}
}

func TestTransitiveReduction(t *testing.T) {
	w := chain(t, 3)
	_ = w.AddEdge(0, 2) // redundant shortcut
	r := w.TransitiveReduction()
	if r.EdgeCount() != 2 {
		t.Fatalf("reduced edge count = %d, want 2 (%v)", r.EdgeCount(), r.Edges)
	}
	if r.HasEdge(0, 2) {
		t.Error("redundant edge 0->2 survived reduction")
	}
	// Reduction of the diamond is the diamond itself.
	d := diamond(t)
	if got := d.TransitiveReduction().EdgeCount(); got != 4 {
		t.Errorf("diamond reduction edge count = %d, want 4", got)
	}
}

func TestInducedSubgraphBridgesRemovedModules(t *testing.T) {
	// a -> x -> b with x removed must yield a -> b.
	w := New("w")
	a := w.AddModule(&Module{Label: "a", Type: TypeWSDL})
	x := w.AddModule(&Module{Label: "x", Type: TypeLocalWorker})
	b := w.AddModule(&Module{Label: "b", Type: TypeWSDL})
	_ = w.AddEdge(a, x)
	_ = w.AddEdge(x, b)
	sub := w.InducedSubgraph([]int{a, b})
	if sub.Size() != 2 {
		t.Fatalf("size = %d, want 2", sub.Size())
	}
	if !sub.HasEdge(0, 1) {
		t.Errorf("expected bridged edge a->b, edges=%v", sub.Edges)
	}
}

func TestInducedSubgraphNoPathThroughKept(t *testing.T) {
	// a -> k -> b, keeping all three: a->b must NOT appear (path runs
	// through a kept node), only a->k and k->b.
	w := New("w")
	a := w.AddModule(&Module{Label: "a"})
	k := w.AddModule(&Module{Label: "k"})
	b := w.AddModule(&Module{Label: "b"})
	_ = w.AddEdge(a, k)
	_ = w.AddEdge(k, b)
	sub := w.InducedSubgraph([]int{a, k, b})
	if sub.EdgeCount() != 2 {
		t.Fatalf("edges = %v, want exactly a->k, k->b", sub.Edges)
	}
	if sub.HasEdge(0, 2) {
		t.Error("spurious transitive edge a->b")
	}
}

func TestCloneIndependence(t *testing.T) {
	w := diamond(t)
	w.Annotations = Annotations{Title: "t", Tags: []string{"x"}}
	w.Modules[0].Params = map[string]string{"k": "v"}
	c := w.Clone()
	c.Modules[0].Label = "changed"
	c.Modules[0].Params["k"] = "changed"
	c.Annotations.Tags[0] = "changed"
	c.Edges[0].To = 99
	if w.Modules[0].Label != "a" || w.Modules[0].Params["k"] != "v" {
		t.Error("Clone shares module state")
	}
	if w.Annotations.Tags[0] != "x" {
		t.Error("Clone shares tag slice")
	}
	if w.Edges[0].To == 99 {
		t.Error("Clone shares edge slice")
	}
}

func TestLongestPathLen(t *testing.T) {
	if got := chain(t, 7).LongestPathLen(); got != 7 {
		t.Errorf("chain depth = %d, want 7", got)
	}
	if got := diamond(t).LongestPathLen(); got != 3 {
		t.Errorf("diamond depth = %d, want 3", got)
	}
	if got := New("e").LongestPathLen(); got != 0 {
		t.Errorf("empty depth = %d, want 0", got)
	}
}

func TestInline(t *testing.T) {
	child := New("child")
	c0 := child.AddModule(&Module{ID: "c0", Label: "inner-src", Type: TypeWSDL})
	c1 := child.AddModule(&Module{ID: "c1", Label: "inner-snk", Type: TypeWSDL})
	_ = child.AddEdge(c0, c1)

	parent := New("parent")
	p0 := parent.AddModule(&Module{ID: "p0", Label: "pre", Type: TypeWSDL})
	df := parent.AddModule(&Module{ID: "df", Label: "nested", Type: TypeDataflow})
	p2 := parent.AddModule(&Module{ID: "p2", Label: "post", Type: TypeWSDL})
	_ = parent.AddEdge(p0, df)
	_ = parent.AddEdge(df, p2)

	resolve := func(m *Module) *Workflow {
		if m.ID == "df" {
			return child
		}
		return nil
	}
	flat := parent.Inline(resolve, 0)
	if flat.Size() != 4 {
		t.Fatalf("inlined size = %d, want 4", flat.Size())
	}
	if err := flat.Validate(); err != nil {
		t.Fatalf("inlined workflow invalid: %v", err)
	}
	// pre -> inner-src -> inner-snk -> post must be the single path.
	paths := flat.Paths(0)
	if len(paths) != 1 || len(paths[0]) != 4 {
		t.Fatalf("paths = %v, want one path of length 4", paths)
	}
	for _, m := range flat.Modules {
		if m.Type == TypeDataflow {
			t.Error("dataflow module survived inlining")
		}
	}
}

func TestInlineUnresolvable(t *testing.T) {
	w := New("w")
	w.AddModule(&Module{ID: "df", Label: "nested", Type: TypeDataflow})
	flat := w.Inline(func(*Module) *Workflow { return nil }, 0)
	if flat.Size() != 1 || flat.Modules[0].Type != TypeDataflow {
		t.Error("unresolvable dataflow must be kept as a plain module")
	}
}

func TestInlineRecursionGuard(t *testing.T) {
	// A workflow whose dataflow module resolves to itself must terminate.
	w := New("rec")
	w.AddModule(&Module{ID: "df", Label: "self", Type: TypeDataflow})
	resolve := func(m *Module) *Workflow { return w }
	flat := w.Inline(resolve, 3)
	if flat == nil {
		t.Fatal("Inline returned nil")
	}
}

// randomDAG builds a random DAG: edges only from lower to higher index, so
// acyclicity holds by construction.
func randomDAG(r *rand.Rand, n int) *Workflow {
	w := New("rand")
	for i := 0; i < n; i++ {
		w.AddModule(&Module{Label: "m", Type: TypeWSDL})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(3) == 0 {
				_ = w.AddEdge(i, j)
			}
		}
	}
	return w
}

func TestPropertyTransitiveReductionPreservesReachability(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(szRaw%10) + 2
		w := randomDAG(r, n)
		red := w.TransitiveReduction()
		a, b := w.Reachable(), red.Reachable()
		for i := 0; i < n; i++ {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for k := range a[i] {
				if !b[i][k] {
					return false
				}
			}
		}
		return red.EdgeCount() <= w.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInducedSubgraphAcyclicAndReachabilityConsistent(t *testing.T) {
	f := func(seed int64, szRaw, keepMask uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(szRaw%8) + 2
		w := randomDAG(r, n)
		var keep []int
		for i := 0; i < n; i++ {
			if keepMask&(1<<uint(i%8)) != 0 || r.Intn(2) == 0 {
				keep = append(keep, i)
			}
		}
		sub := w.InducedSubgraph(keep)
		if err := sub.Validate(); err != nil {
			return false
		}
		// Reachability between kept nodes must match the original's.
		origReach := w.Reachable()
		subReach := sub.Reachable()
		for si, oi := range keep {
			for sj, oj := range keep {
				if si == sj {
					continue
				}
				if origReach[oi][oj] != subReach[si][sj] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTopoSortRespectsEdges(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(szRaw%12) + 1
		w := randomDAG(r, n)
		order, err := w.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for p, v := range order {
			pos[v] = p
		}
		for _, e := range w.Edges {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModuleHelpers(t *testing.T) {
	cases := []struct {
		typ                  string
		web, scripted, local bool
	}{
		{TypeWSDL, true, false, false},
		{TypeSoaplabWSDL, true, false, false},
		{TypeBeanshell, false, true, false},
		{TypeLocalWorker, false, false, true},
		{TypeStringConst, false, false, true},
		{TypeDataflow, false, false, false},
	}
	for _, c := range cases {
		m := &Module{Type: c.typ}
		if m.IsWebService() != c.web || m.IsScripted() != c.scripted || m.IsLocal() != c.local {
			t.Errorf("type %s: web=%v scripted=%v local=%v", c.typ, m.IsWebService(), m.IsScripted(), m.IsLocal())
		}
	}
}

func TestParamSignatureDeterministic(t *testing.T) {
	m := &Module{Params: map[string]string{"b": "2", "a": "1"}}
	if got := m.ParamSignature(); got != "a=1;b=2" {
		t.Errorf("ParamSignature = %q, want a=1;b=2", got)
	}
	if got := (&Module{}).ParamSignature(); got != "" {
		t.Errorf("empty ParamSignature = %q", got)
	}
}
