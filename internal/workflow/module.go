// Package workflow defines the scientific-workflow data model used throughout
// this repository: directed acyclic graphs of attributed data-processing
// modules connected by datalinks, annotated with repository metadata
// (title, description, keyword tags).
//
// The model follows Section 1 and 2 of Starlinger et al., "Similarity Search
// for Scientific Workflows" (PVLDB 2014): workflows have global inputs and
// outputs (removed during import, as in the paper's preprocessing), modules
// carry a label, a type, and type-dependent attributes such as the URI of an
// invoked web service or the body of a local script.
package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// Common module type identifiers found in Taverna workflows on myExperiment.
// The heterogeneity of these identifiers (three distinct spellings for WSDL
// web services, for example) is deliberate: it mirrors the repository data
// the paper works with and is what the type-equivalence preselection (te)
// is designed to absorb.
const (
	TypeWSDL          = "wsdl"
	TypeArbitraryWSDL = "arbitrarywsdl"
	TypeSoaplabWSDL   = "soaplabwsdl"
	TypeBioMoby       = "biomobywsdl"
	TypeRESTService   = "rest"
	TypeBeanshell     = "beanshell"
	TypeRShell        = "rshell"
	TypeScript        = "script"
	TypeLocalWorker   = "localworker"
	TypeStringConst   = "stringconstant"
	TypeXMLSplitter   = "xmlsplitter"
	TypeXMLMerger     = "xmlmerger"
	TypeDataflow      = "dataflow"
	TypeTool          = "tool" // Galaxy-style tool invocation
	TypeUnknown       = "unknown"
)

// Module is a single data-processing step of a scientific workflow.
// Which attributes are populated depends on the module's type: a web-service
// module carries ServiceURI/ServiceName/Authority, a scripted module carries
// Script, a local operation typically carries only Label and Type.
type Module struct {
	// ID uniquely identifies the module within its workflow.
	ID string `json:"id"`
	// Label is the name the workflow author gave this module instance.
	Label string `json:"label"`
	// Type identifies the kind of operation (see the Type* constants).
	Type string `json:"type"`
	// Description is optional free-text documentation.
	Description string `json:"description,omitempty"`
	// Script holds the source of scripted modules (beanshell, rshell, ...).
	Script string `json:"script,omitempty"`
	// ServiceURI is the endpoint of web-service modules.
	ServiceURI string `json:"serviceURI,omitempty"`
	// ServiceName is the operation name of web-service modules.
	ServiceName string `json:"serviceName,omitempty"`
	// Authority names the organisation providing the service.
	Authority string `json:"authority,omitempty"`
	// Params holds static, data-independent configuration parameters.
	Params map[string]string `json:"params,omitempty"`

	// LabelID, CanonID and TypeID are the interned symbol IDs of Label,
	// CanonicalLabel(Label) and Type, resolved at repository ingest by
	// Workflow.Resolve. Zero means "not resolved": comparisons fall back
	// to the string attributes, which remain authoritative. The IDs are
	// derived state and are never serialized.
	LabelID uint32 `json:"-"`
	CanonID uint32 `json:"-"`
	TypeID  uint32 `json:"-"`
}

// Clone returns a deep copy of the module. Interned symbol IDs are
// dropped: a clone exists to be mutated, and stale IDs on a renamed
// module would be worse than none. Re-ingesting the clone re-resolves.
func (m *Module) Clone() *Module {
	c := *m
	c.LabelID, c.CanonID, c.TypeID = 0, 0, 0
	if m.Params != nil {
		c.Params = make(map[string]string, len(m.Params))
		for k, v := range m.Params {
			c.Params[k] = v
		}
	}
	return &c
}

// String implements fmt.Stringer for debugging output. It renders the
// string attributes directly — never the interned IDs — so a zero-value
// module prints "()" rather than a symbol placeholder, in diagnostics
// and serve responses alike.
func (m *Module) String() string {
	return fmt.Sprintf("%s(%s)", m.Label, m.Type)
}

// ParamSignature returns a deterministic rendering of the static parameters,
// usable as a comparable attribute value.
func (m *Module) ParamSignature() string {
	if len(m.Params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m.Params))
	for k := range m.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m.Params[k])
	}
	return b.String()
}

// IsWebService reports whether the module's type denotes a web-service call.
func (m *Module) IsWebService() bool {
	switch m.Type {
	case TypeWSDL, TypeArbitraryWSDL, TypeSoaplabWSDL, TypeBioMoby, TypeRESTService:
		return true
	}
	return false
}

// IsScripted reports whether the module's type denotes a user-provided script.
func (m *Module) IsScripted() bool {
	switch m.Type {
	case TypeBeanshell, TypeRShell, TypeScript:
		return true
	}
	return false
}

// IsLocal reports whether the module performs a predefined local operation
// (shim operations such as string splitting, constants, XML splitters).
// These are the modules the importance projection removes.
func (m *Module) IsLocal() bool {
	switch m.Type {
	case TypeLocalWorker, TypeStringConst, TypeXMLSplitter, TypeXMLMerger:
		return true
	}
	return false
}
