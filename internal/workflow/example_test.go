package workflow_test

import (
	"fmt"

	"repro/internal/workflow"
)

// ExampleWorkflow builds the DAG of a small analysis pipeline and inspects
// its topology.
func ExampleWorkflow() {
	wf := workflow.New("1189")
	get := wf.AddModule(&workflow.Module{Label: "get_pathways", Type: workflow.TypeWSDL})
	split := wf.AddModule(&workflow.Module{Label: "split_string", Type: workflow.TypeLocalWorker})
	render := wf.AddModule(&workflow.Module{Label: "render", Type: workflow.TypeBeanshell})
	_ = wf.AddEdge(get, split)
	_ = wf.AddEdge(split, render)

	order, _ := wf.TopoSort()
	fmt.Println(wf)
	fmt.Println("sources:", wf.Sources(), "sinks:", wf.Sinks(), "topo:", order)
	// Output:
	// workflow 1189 (3 modules, 2 edges)
	// sources: [0] sinks: [2] topo: [0 1 2]
}

// ExampleWorkflow_Paths decomposes a workflow into its source-to-sink paths,
// the substructures the Path Sets measure compares.
func ExampleWorkflow_Paths() {
	wf := workflow.New("diamond")
	a := wf.AddModule(&workflow.Module{Label: "a"})
	b := wf.AddModule(&workflow.Module{Label: "b"})
	c := wf.AddModule(&workflow.Module{Label: "c"})
	d := wf.AddModule(&workflow.Module{Label: "d"})
	_ = wf.AddEdge(a, b)
	_ = wf.AddEdge(a, c)
	_ = wf.AddEdge(b, d)
	_ = wf.AddEdge(c, d)
	for _, p := range wf.Paths(0) {
		fmt.Println(p)
	}
	// Output:
	// [0 1 3]
	// [0 2 3]
}

// ExampleWorkflow_InducedSubgraph shows the importance-projection
// construction: removed modules are bridged by transitive edges.
func ExampleWorkflow_InducedSubgraph() {
	wf := workflow.New("w")
	ws := wf.AddModule(&workflow.Module{Label: "web_service", Type: workflow.TypeWSDL})
	shim := wf.AddModule(&workflow.Module{Label: "split_string", Type: workflow.TypeLocalWorker})
	script := wf.AddModule(&workflow.Module{Label: "analyse", Type: workflow.TypeRShell})
	_ = wf.AddEdge(ws, shim)
	_ = wf.AddEdge(shim, script)

	projected := wf.InducedSubgraph([]int{ws, script})
	fmt.Println(projected)
	fmt.Println("bridged edge:", projected.HasEdge(0, 1))
	// Output:
	// workflow w (2 modules, 1 edges)
	// bridged edge: true
}
