package workflow

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/symtab"
)

// Edge is a datalink from one module to another, identified by their indexes
// in the owning workflow's Modules slice. Data flows From -> To.
type Edge struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Annotations is the repository metadata recorded alongside a workflow when
// it is uploaded: a title, a free-form description, keyword tags and the
// uploading author. Annotation-based similarity measures (Bag of Words,
// Bag of Tags) operate exclusively on this data.
type Annotations struct {
	Title       string   `json:"title"`
	Description string   `json:"description,omitempty"`
	Tags        []string `json:"tags,omitempty"`
	Author      string   `json:"author,omitempty"`
}

// Workflow is a scientific workflow: a DAG of modules joined by datalinks,
// together with its repository annotations.
//
// Modules are stored in a slice; edges refer to modules by index. The zero
// value is an empty workflow ready for use via AddModule/AddEdge.
type Workflow struct {
	// ID uniquely identifies the workflow within a repository.
	ID string `json:"id"`
	// Annotations holds the author-provided repository metadata.
	Annotations Annotations `json:"annotations"`
	// Modules are the data-processing steps, in insertion order.
	Modules []*Module `json:"modules"`
	// Edges are the datalinks between modules, by module index.
	Edges []Edge `json:"edges"`

	// adj is the adjacency cache, built lazily and invalidated by
	// mutation. It is an atomic pointer because parallel scans share
	// workflows across scoring goroutines (the query of a search, both
	// sides of a pair scan): concurrent first readers each build the
	// same adjacency from the immutable Edges and store it idempotently.
	// Mutating a workflow while another goroutine reads it remains the
	// caller's bug — the ownership rules already forbid it.
	adj atomic.Pointer[adjacency]

	// interned hot representation, resolved at ingest by Resolve and
	// invalidated by mutation. symID is the workflow ID's symbol;
	// labelSet is the sorted, deduplicated set of canonical module-label
	// symbol IDs; labelBits is its fixed-width bitset summary.
	symID     uint32
	labelSet  []uint32
	labelBits Bitset256
	resolved  bool
	tab       *symtab.Table
}

// New returns an empty workflow with the given repository ID.
func New(id string) *Workflow {
	return &Workflow{ID: id}
}

// ErrCycle is returned by Validate and TopoSort when the datalink graph
// contains a directed cycle and therefore is not a DAG.
var ErrCycle = errors.New("workflow: datalink graph contains a cycle")

// AddModule appends m and returns its index.
func (w *Workflow) AddModule(m *Module) int {
	w.Modules = append(w.Modules, m)
	w.invalidate()
	return len(w.Modules) - 1
}

// AddEdge adds a datalink from module index from to module index to.
// It returns an error if either endpoint is out of range or the edge is a
// self-loop. Duplicate edges are ignored.
func (w *Workflow) AddEdge(from, to int) error {
	if from < 0 || from >= len(w.Modules) {
		return fmt.Errorf("workflow %s: edge source %d out of range [0,%d)", w.ID, from, len(w.Modules))
	}
	if to < 0 || to >= len(w.Modules) {
		return fmt.Errorf("workflow %s: edge target %d out of range [0,%d)", w.ID, to, len(w.Modules))
	}
	if from == to {
		return fmt.Errorf("workflow %s: self-loop on module %d", w.ID, from)
	}
	for _, e := range w.Edges {
		if e.From == from && e.To == to {
			return nil
		}
	}
	w.Edges = append(w.Edges, Edge{From: from, To: to})
	w.invalidate()
	return nil
}

func (w *Workflow) invalidate() {
	w.adj.Store(nil)
	w.symID = 0
	w.labelSet = nil
	w.labelBits = Bitset256{}
	w.resolved = false
	w.tab = nil
}

// Size returns the number of modules, |V|.
func (w *Workflow) Size() int { return len(w.Modules) }

// EdgeCount returns the number of datalinks, |E|.
func (w *Workflow) EdgeCount() int { return len(w.Edges) }

// Successors returns the indexes of modules directly downstream of i.
// The returned slice is shared cache state and must not be modified.
func (w *Workflow) Successors(i int) []int {
	return w.buildAdjacency().succ[i]
}

// Predecessors returns the indexes of modules directly upstream of i.
// The returned slice is shared cache state and must not be modified.
func (w *Workflow) Predecessors(i int) []int {
	return w.buildAdjacency().pred[i]
}

// adjacency is the immutable successor/predecessor cache of one workflow.
type adjacency struct {
	succ [][]int
	pred [][]int
}

func (w *Workflow) buildAdjacency() *adjacency {
	if a := w.adj.Load(); a != nil {
		return a
	}
	n := len(w.Modules)
	a := &adjacency{succ: make([][]int, n), pred: make([][]int, n)}
	for _, e := range w.Edges {
		a.succ[e.From] = append(a.succ[e.From], e.To)
		a.pred[e.To] = append(a.pred[e.To], e.From)
	}
	// Concurrent first readers build identical adjacencies from the same
	// Edges; last store wins and every reader holds a complete copy.
	w.adj.Store(a)
	return a
}

// Sources returns the indexes of modules without inbound datalinks.
func (w *Workflow) Sources() []int {
	a := w.buildAdjacency()
	var src []int
	for i := range w.Modules {
		if len(a.pred[i]) == 0 {
			src = append(src, i)
		}
	}
	return src
}

// Sinks returns the indexes of modules without outbound datalinks.
func (w *Workflow) Sinks() []int {
	a := w.buildAdjacency()
	var snk []int
	for i := range w.Modules {
		if len(a.succ[i]) == 0 {
			snk = append(snk, i)
		}
	}
	return snk
}

// TopoSort returns the module indexes in a topological order of the datalink
// graph, or ErrCycle if the graph is not acyclic.
func (w *Workflow) TopoSort() ([]int, error) {
	a := w.buildAdjacency()
	n := len(w.Modules)
	indeg := make([]int, n)
	for _, e := range w.Edges {
		indeg[e.To]++
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range a.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural integrity: edge endpoints in range, no
// self-loops, no duplicate edges, acyclicity, and module IDs unique.
func (w *Workflow) Validate() error {
	n := len(w.Modules)
	seen := make(map[Edge]bool, len(w.Edges))
	for _, e := range w.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("workflow %s: edge %v out of range", w.ID, e)
		}
		if e.From == e.To {
			return fmt.Errorf("workflow %s: self-loop %v", w.ID, e)
		}
		if seen[e] {
			return fmt.Errorf("workflow %s: duplicate edge %v", w.ID, e)
		}
		seen[e] = true
	}
	ids := make(map[string]bool, n)
	for _, m := range w.Modules {
		if m == nil {
			return fmt.Errorf("workflow %s: nil module", w.ID)
		}
		if m.ID != "" {
			if ids[m.ID] {
				return fmt.Errorf("workflow %s: duplicate module id %q", w.ID, m.ID)
			}
			ids[m.ID] = true
		}
	}
	if _, err := w.TopoSort(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the workflow.
func (w *Workflow) Clone() *Workflow {
	c := &Workflow{
		ID: w.ID,
		Annotations: Annotations{
			Title:       w.Annotations.Title,
			Description: w.Annotations.Description,
			Author:      w.Annotations.Author,
		},
	}
	if w.Annotations.Tags != nil {
		c.Annotations.Tags = append([]string(nil), w.Annotations.Tags...)
	}
	c.Modules = make([]*Module, len(w.Modules))
	for i, m := range w.Modules {
		c.Modules[i] = m.Clone()
	}
	c.Edges = append([]Edge(nil), w.Edges...)
	return c
}

// HasEdge reports whether a datalink from -> to exists.
func (w *Workflow) HasEdge(from, to int) bool {
	for _, e := range w.Edges {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (w *Workflow) String() string {
	return fmt.Sprintf("workflow %s (%d modules, %d edges)", w.ID, len(w.Modules), len(w.Edges))
}
