package workflow

// Pair-order canonicalization. Similarity measures are mathematically
// symmetric but not always bit-symmetric: summation order inside the module
// matcher, tie-breaking among equally-optimal mappings, and floating-point
// accumulation can all depend on operand order. Every pairwise scoring path
// therefore evaluates the pair in one canonical orientation — smaller ID
// first — so a score is a function of the unordered pair, independent of
// corpus insertion order or of which shard of a scatter-gather scan happens
// to evaluate it. This is what makes N-shard reads bit-identical to 1-shard
// reads, and what keeps score-cache keys (scorecache.PairKey) collision-free
// across orientations.
//
// These helpers are the blessed canonicalization points. The wfsimvet
// pairorder analyzer rejects ad-hoc ID comparisons at scoring call sites;
// route new pair-ordering code through OrderPair, OrderIDs or IDsInOrder.

// OrderPair returns the pair in canonical scoring order: the workflow with
// the smaller ID first, ties (same ID, e.g. an ad-hoc Compare of two
// versions of one workflow) broken by smaller module count first. The
// returned pointers alias the arguments.
func OrderPair(a, b *Workflow) (*Workflow, *Workflow) {
	if a.ID > b.ID || (a.ID == b.ID && a.Size() > b.Size()) {
		return b, a
	}
	return a, b
}

// OrderIDs returns the ID pair in canonical (ascending) order.
func OrderIDs(a, b string) (string, string) {
	if b < a {
		return b, a
	}
	return a, b
}

// IDsInOrder reports whether the ID pair (a, b) is already canonically
// ordered. Callers that must swap more than the pair itself (projections,
// generations) branch on this instead of comparing IDs ad hoc.
func IDsInOrder(a, b string) bool { return a <= b }
