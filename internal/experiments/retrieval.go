package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/eval"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/search"
)

// Thresholds are the three relevance levels of the precision@k plots.
var Thresholds = []eval.Rating{eval.Related, eval.Similar, eval.VerySimilar}

// RetrievalResult holds precision@k curves for a set of algorithms at the
// three relevance thresholds — the content of Figures 10 and 11.
type RetrievalResult struct {
	ID      string
	Title   string
	Queries []string
	// Curves maps measure name -> threshold -> mean precision@k for
	// k = 1..10 ("User: median, Workflow: mean" in the paper's plots).
	Curves map[string]map[eval.Rating][]float64
	// PoolSizes reports the merged result-list length per query (21–68 in
	// the paper, depending on algorithm overlap).
	PoolSizes map[string]int
	// Skipped counts pairs each measure could not score during retrieval.
	Skipped map[string]int
}

// RunRetrieval reproduces the second experiment's protocol for a set of
// measures: each measure retrieves its top-10 from the full corpus for every
// query; the per-query result lists are merged; the merged pool is rated by
// the panel (median aggregation); every measure's ranked list is then scored
// by precision@k at each relevance threshold, averaged over queries. A
// cancelled or expired context aborts the retrieval phase via panic (the
// harness has no partial-result story), so callers that want cancellation
// should recover at the figure boundary.
func RunRetrieval(ctx context.Context, s *Setup, id, title string, ms []measures.Measure) RetrievalResult {
	queries := retrievalQueries(s)
	res := RetrievalResult{
		ID:        id,
		Title:     title,
		Queries:   queries,
		Curves:    map[string]map[eval.Rating][]float64{},
		PoolSizes: map[string]int{},
		Skipped:   map[string]int{},
	}

	// Retrieve per measure per query.
	perMeasure := map[string]map[string][]search.Result{}
	for _, m := range ms {
		perMeasure[m.Name()] = map[string][]search.Result{}
	}
	pooled := map[string][]string{}
	for _, q := range queries {
		qwf := s.Taverna.Repo.Get(q)
		var lists [][]search.Result
		for _, m := range ms {
			results, skipped, err := search.TopK(ctx, qwf, s.Taverna.Repo, m, search.Options{K: 10})
			if err != nil {
				panic(err) // only context errors are possible
			}
			perMeasure[m.Name()][q] = results
			res.Skipped[m.Name()] += skipped
			lists = append(lists, results)
		}
		pooled[q] = search.PoolResults(lists...)
		res.PoolSizes[q] = len(pooled[q])
	}

	// Rate the pooled lists once.
	study := eval.BuildRetrievalStudy(s.Taverna, pooled, s.Panel)

	// Precision curves per measure and threshold, mean over queries.
	for _, m := range ms {
		res.Curves[m.Name()] = map[eval.Rating][]float64{}
		for _, th := range Thresholds {
			var curves [][]float64
			for _, q := range queries {
				ids := search.IDs(perMeasure[m.Name()][q])
				curves = append(curves, eval.PrecisionCurve(ids, study.MedianRatings[q], th, 10))
			}
			res.Curves[m.Name()][th] = eval.MeanCurves(curves)
		}
	}
	return res
}

// retrievalQueries draws the retrieval queries from the ranking study's
// queries (the paper reused 8 of the 24), topping up from the corpus if the
// study has fewer queries than needed.
func retrievalQueries(s *Setup) []string {
	n := s.Scale.RetrievalQueries
	qs := append([]string(nil), s.Study.Queries...)
	rng := rand.New(rand.NewSource(s.Seed + 5))
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	if n > len(qs) {
		n = len(qs)
	}
	out := qs[:n]
	sort.Strings(out)
	return out
}

// Fig10 reproduces Figure 10: retrieval precision of simMS under the module
// similarity schemes pw3, pll, plm, with and without repository knowledge
// (np_ta vs ip_te), at the three relevance thresholds.
func Fig10(ctx context.Context, s *Setup) RetrievalResult {
	ms := []measures.Measure{
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PW3()),
		s.Structural(measures.ModuleSets, true, module.TypeEquivalence, module.PW3()),
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PLL()),
		s.Structural(measures.ModuleSets, true, module.TypeEquivalence, module.PLL()),
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PLM()),
		s.Structural(measures.ModuleSets, true, module.TypeEquivalence, module.PLM()),
	}
	return RunRetrieval(ctx, s, "fig10", "Retrieval precision@k: MS module schemes x {np_ta, ip_te}", ms)
}

// Fig11 reproduces Figure 11: retrieval precision of the structural (pll)
// and annotational measures. GE runs with importance projection and a beam,
// as full-corpus exact edit distance is unaffordable — the paper likewise
// reports GE retrieval only on preprocessed graphs.
func Fig11(ctx context.Context, s *Setup) RetrievalResult {
	geCfg := s.StructuralConfig(measures.GraphEdit, true, module.TypeEquivalence, module.PLL())
	geCfg.Project = s.Projector.Project
	geCfg.GEDBeamWidth = s.Scale.GEDBeamRetrieval
	ms := []measures.Measure{
		measures.BagOfWords{},
		measures.BagOfTags{},
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PLL()),
		s.Structural(measures.ModuleSets, true, module.TypeEquivalence, module.PLL()),
		s.Structural(measures.PathSets, false, module.AllPairs, module.PLL()),
		s.Structural(measures.PathSets, true, module.TypeEquivalence, module.PLL()),
		measures.NewStructural(geCfg),
	}
	return RunRetrieval(ctx, s, "fig11", "Retrieval precision@k: structural vs annotational measures", ms)
}

// String renders one precision table per threshold.
func (r RetrievalResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "queries: %s\n", strings.Join(r.Queries, ", "))
	names := make([]string, 0, len(r.Curves))
	for n := range r.Curves {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, th := range Thresholds {
		fmt.Fprintf(&b, "-- relevance >= %s --\n", th)
		fmt.Fprintf(&b, "%-28s", "algorithm")
		for k := 1; k <= 10; k++ {
			fmt.Fprintf(&b, " P@%-4d", k)
		}
		fmt.Fprintln(&b)
		for _, n := range names {
			fmt.Fprintf(&b, "%-28s", n)
			for _, v := range r.Curves[n][th] {
				fmt.Fprintf(&b, " %5.2f ", v)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}
