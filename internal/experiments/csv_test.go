package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/stats"
)

func TestRankingFigureWriteCSV(t *testing.T) {
	fig := RankingFigure{
		ID: "fig5",
		Rows: []AlgoRankingResult{
			{Name: "BW", Correctness: stats.Summary{Mean: 0.9, StdDev: 0.1}, Completeness: 0.98, Queries: []string{"a", "b"}},
			{Name: "GE", Correctness: stats.Summary{Mean: 0.3, StdDev: 0.4}, SkippedPairs: 5, Queries: []string{"a"}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want header + 2 rows", len(recs))
	}
	if recs[1][1] != "BW" || recs[1][2] != "0.9000" {
		t.Errorf("row = %v", recs[1])
	}
	if recs[2][5] != "5" || recs[2][6] != "1" {
		t.Errorf("row = %v", recs[2])
	}
}

func TestRetrievalResultWriteCSV(t *testing.T) {
	r := RetrievalResult{
		ID: "fig10",
		Curves: map[string]map[eval.Rating][]float64{
			"MS": {
				eval.Related:     {1, 0.5},
				eval.Similar:     {0.5, 0.25},
				eval.VerySimilar: {0.25, 0.125},
			},
		},
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 3 thresholds x 2 ks
	if len(recs) != 7 {
		t.Fatalf("records = %d, want 7", len(recs))
	}
	if recs[1][2] != "related" || recs[1][3] != "1" || recs[1][4] != "1.0000" {
		t.Errorf("first row = %v", recs[1])
	}
}

func TestFig4WriteCSV(t *testing.T) {
	f := Fig4Result{Raters: []RaterAgreement{
		{Rater: "expert01", Correctness: stats.Summary{Mean: 0.95}, Completeness: 0.9},
	}}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "expert01,0.9500") {
		t.Errorf("csv = %q", buf.String())
	}
}
