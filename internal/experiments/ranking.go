package experiments

import (
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/rank"
	"repro/internal/stats"
)

// tieEps groups algorithm scores within this distance into one rank bucket.
// Coarse measures (label matching, tag overlap) produce exact ties anyway;
// the epsilon only absorbs floating-point noise.
const tieEps = 1e-9

// AlgoRankingResult is one algorithm's performance in the ranking
// experiment: the per-query correctness values (for the bar + error bars of
// the paper's figures) and mean completeness (the black squares).
type AlgoRankingResult struct {
	Name string
	// Correctness summarises per-query ranking correctness.
	Correctness stats.Summary
	// PerQuery holds the correctness value per evaluated query, aligned
	// with Queries, for paired significance testing.
	PerQuery []float64
	// Queries are the query IDs actually evaluated (BT skips tagless
	// queries; queries whose pairs all failed are skipped too).
	Queries []string
	// Completeness is the mean ranking completeness.
	Completeness float64
	// SkippedPairs counts (query, candidate) pairs the measure could not
	// score (GED timeouts).
	SkippedPairs int
	// SkippedQueries counts queries excluded from evaluation.
	SkippedQueries int
}

// EvaluateRanking runs one measure over a ranking study: for every query the
// candidates are scored, ranked, and compared against the expert consensus.
//
// Following the paper: pairs the measure cannot score are disregarded
// (the candidate is left unranked, giving an incomplete algorithm ranking);
// Bag of Tags cannot rank queries without tags, and such queries are not
// considered for its ranking performance.
func EvaluateRanking(c *gen.Corpus, study *eval.RankingStudy, m measures.Measure) AlgoRankingResult {
	res := AlgoRankingResult{Name: m.Name()}
	var completeness []float64
	for _, q := range study.Queries {
		qwf := c.Repo.Get(q)
		if _, isBT := m.(measures.BagOfTags); isBT && !measures.HasTags(qwf) {
			res.SkippedQueries++
			continue
		}
		scores := map[string]float64{}
		for _, cand := range study.Candidates[q] {
			s, err := m.Compare(qwf, c.Repo.Get(cand))
			if err != nil {
				res.SkippedPairs++
				continue
			}
			scores[cand] = s
		}
		if len(scores) < 2 {
			res.SkippedQueries++
			continue
		}
		algoRank := rank.FromScores(scores, tieEps)
		consensus := study.Consensus[q]
		res.PerQuery = append(res.PerQuery, rank.Correctness(consensus, algoRank))
		res.Queries = append(res.Queries, q)
		completeness = append(completeness, rank.Completeness(consensus, algoRank))
	}
	res.Correctness = stats.Summarize(res.PerQuery)
	res.Completeness = stats.Mean(completeness)
	return res
}

// EvaluateAll runs several measures over the same study.
func EvaluateAll(c *gen.Corpus, study *eval.RankingStudy, ms ...measures.Measure) []AlgoRankingResult {
	out := make([]AlgoRankingResult, len(ms))
	for i, m := range ms {
		out[i] = EvaluateRanking(c, study, m)
	}
	return out
}

// PairedSignificance runs a paired t-test between two algorithms'
// per-query correctness values over their common queries. It returns the
// test result and whether enough common queries existed.
func PairedSignificance(a, b AlgoRankingResult) (stats.TTestResult, bool) {
	bByQuery := map[string]float64{}
	for i, q := range b.Queries {
		bByQuery[q] = b.PerQuery[i]
	}
	var xs, ys []float64
	for i, q := range a.Queries {
		if y, ok := bByQuery[q]; ok {
			xs = append(xs, a.PerQuery[i])
			ys = append(ys, y)
		}
	}
	res, err := stats.PairedTTest(xs, ys)
	if err != nil {
		return stats.TTestResult{}, false
	}
	return res, true
}
