// Package experiments reproduces every table and figure of the evaluation
// section of Starlinger et al., "Similarity Search for Scientific
// Workflows" (PVLDB 2014): Figures 4–12 plus the runtime statistics quoted
// in the text (module-pair comparison reduction, importance-projection
// module counts, GED timeout counts). Each figure has a driver returning a
// structured result that the wfbench command and the benchmark harness
// render as the paper-shaped rows/series.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/repoknow"
)

// Scale sizes an experiment run. Full reproduces the paper's corpus sizes;
// Quick is a scaled-down variant for tests and fast iteration. All shapes
// (who wins, by how much, where the crossovers are) must hold at both
// scales.
type Scale struct {
	Name             string
	TavernaWorkflows int
	TavernaClusters  int
	GalaxyWorkflows  int
	GalaxyClusters   int
	RankQueries      int // paper: 24
	GalaxyQueries    int // paper: 8
	RetrievalQueries int // paper: 8
	Raters           int // paper: 15
	// GEDDeadline is the per-pair GED budget in the ranking experiment.
	// The paper allowed 5 minutes per pair on its hardware; we scale the
	// budget down with the corpus so that unprojected (np) comparisons of
	// large workflows time out occasionally, exactly as in the paper
	// (23 of 240 pairs, Section 5.1.1).
	GEDDeadline time.Duration
	// GEDBeamRetrieval bounds the GED frontier in whole-repository
	// retrieval, where exactness is unaffordable (the paper only reports
	// GE retrieval with importance projection for the same reason).
	GEDBeamRetrieval int
	// GEDBeamRanking bounds the GED frontier in the ranking experiments.
	// SUBDUE, the matcher the paper uses, is itself a beam search; exact
	// edit distance on unprojected workflows is exponential and would time
	// out on a large share of pairs (the exact-mode computability numbers
	// are reported separately by RuntimeStats).
	GEDBeamRanking int
}

// Full is the paper-scale configuration.
func Full() Scale {
	return Scale{
		Name:             "full",
		TavernaWorkflows: 1483,
		TavernaClusters:  48,
		GalaxyWorkflows:  139,
		GalaxyClusters:   14,
		RankQueries:      24,
		GalaxyQueries:    8,
		RetrievalQueries: 8,
		Raters:           15,
		GEDDeadline:      300 * time.Millisecond,
		GEDBeamRetrieval: 32,
		GEDBeamRanking:   64,
	}
}

// Quick is the test-scale configuration.
func Quick() Scale {
	return Scale{
		Name:             "quick",
		TavernaWorkflows: 160,
		TavernaClusters:  10,
		GalaxyWorkflows:  60,
		GalaxyClusters:   8,
		RankQueries:      8,
		GalaxyQueries:    4,
		RetrievalQueries: 4,
		Raters:           15,
		GEDDeadline:      150 * time.Millisecond,
		GEDBeamRetrieval: 32,
		GEDBeamRanking:   64,
	}
}

// Setup bundles everything the experiments share: the two corpora, the
// rater panel, and the first experiment's rating study with its BioConsert
// consensus rankings.
type Setup struct {
	Scale   Scale
	Seed    int64
	Taverna *gen.Corpus
	Galaxy  *gen.Corpus
	Panel   []*eval.Rater
	// Study is experiment 1 on the Taverna corpus.
	Study *eval.RankingStudy
	// GalaxyStudy is the repeated ranking experiment on Galaxy (Fig. 12).
	GalaxyStudy *eval.RankingStudy
	// Projector is the importance projection (ip) used by all experiments,
	// with its cache shared so each workflow is projected once.
	Projector *repoknow.Projector
	// GalaxyProjector projects the Galaxy corpus.
	GalaxyProjector *repoknow.Projector
}

// NewSetup generates corpora, panel and rating studies deterministically.
func NewSetup(scale Scale, seed int64) (*Setup, error) {
	tp := gen.Taverna()
	tp.Workflows = scale.TavernaWorkflows
	tp.Clusters = scale.TavernaClusters
	tav, err := gen.Generate(tp, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: taverna corpus: %w", err)
	}
	gp := gen.Galaxy()
	gp.Workflows = scale.GalaxyWorkflows
	gp.Clusters = scale.GalaxyClusters
	gal, err := gen.Generate(gp, seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiments: galaxy corpus: %w", err)
	}
	panel := eval.NewPanel(scale.Raters, seed+2)
	study := eval.BuildRankingStudy(tav, scale.RankQueries, panel, seed+3)
	galaxyStudy := eval.BuildRankingStudy(gal, scale.GalaxyQueries, panel, seed+4)
	return &Setup{
		Scale:           scale,
		Seed:            seed,
		Taverna:         tav,
		Galaxy:          gal,
		Panel:           panel,
		Study:           study,
		GalaxyStudy:     galaxyStudy,
		Projector:       repoknow.NewProjector(repoknow.TypeScorer{}, 0.5),
		GalaxyProjector: repoknow.NewProjector(repoknow.TypeScorer{}, 0.5),
	}, nil
}

// Measure construction shorthand. The notation mirrors the paper's
// (Table 2): topology, np/ip, ta/te, scheme.

// StructuralConfig builds the Config for a notation tuple on the Taverna
// corpus. GE measures get the scale's deadline; retrieval callers override
// the beam.
func (s *Setup) StructuralConfig(topo measures.Topology, ip bool, presel module.Preselect, scheme module.Scheme) measures.Config {
	cfg := measures.Config{
		Topology:  topo,
		Scheme:    scheme,
		Preselect: presel,
		Normalize: true,
	}
	if ip {
		cfg.Project = s.Projector.Project
	}
	if topo == measures.GraphEdit {
		cfg.GEDDeadline = s.Scale.GEDDeadline
		cfg.GEDBeamWidth = s.Scale.GEDBeamRanking
	}
	return cfg
}

// Structural builds the measure for a notation tuple.
func (s *Setup) Structural(topo measures.Topology, ip bool, presel module.Preselect, scheme module.Scheme) *measures.Structural {
	return measures.NewStructural(s.StructuralConfig(topo, ip, presel, scheme))
}

// GalaxyStructural builds a structural measure wired to the Galaxy
// projector.
func (s *Setup) GalaxyStructural(topo measures.Topology, ip bool, presel module.Preselect, scheme module.Scheme) *measures.Structural {
	cfg := s.StructuralConfig(topo, ip, presel, scheme)
	if ip {
		cfg.Project = s.GalaxyProjector.Project
	}
	return measures.NewStructural(cfg)
}
