package experiments

import (
	"fmt"
	"sort"

	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/rank"
	"repro/internal/stats"
)

// RaterAgreement is one expert's agreement with the consensus (Figure 4).
type RaterAgreement struct {
	Rater        string
	Correctness  stats.Summary
	Completeness float64
}

// Fig4Result reproduces Figure 4: inter-annotator agreement of each expert's
// rankings with the BioConsert consensus.
type Fig4Result struct {
	Raters []RaterAgreement
}

// Fig4 computes per-rater ranking correctness and completeness against the
// consensus over all query workflows of the first experiment.
func Fig4(s *Setup) Fig4Result {
	var out Fig4Result
	for ri, rater := range s.Panel {
		var corr, comp []float64
		for _, q := range s.Study.Queries {
			own := s.Study.RaterRankings[q][ri]
			consensus := s.Study.Consensus[q]
			if own.Len() < 2 {
				continue
			}
			corr = append(corr, rank.Correctness(consensus, own))
			comp = append(comp, rank.Completeness(consensus, own))
		}
		out.Raters = append(out.Raters, RaterAgreement{
			Rater:        rater.Name,
			Correctness:  stats.Summarize(corr),
			Completeness: stats.Mean(comp),
		})
	}
	return out
}

// RankingFigure is a generic "bars with error bars plus completeness
// squares" figure over a set of algorithms, the shape of Figures 5–9 and 12.
type RankingFigure struct {
	ID    string
	Title string
	Rows  []AlgoRankingResult
	// Significance optionally records pairwise t-tests referenced by the
	// paper's text (e.g. "simGE is the only algorithm significantly worse
	// than simBW").
	Significance []SignificanceNote
}

// SignificanceNote is one paired t-test between two algorithms.
type SignificanceNote struct {
	A, B string
	Test stats.TTestResult
}

// Fig5 reproduces Figure 5: the baseline evaluation of BW, BT, PS, MS and GE
// in their basic configuration (pw0, maximum-weight mapping, normalized, no
// preprocessing, no preselection).
func Fig5(s *Setup) RankingFigure {
	ms := []measures.Measure{
		measures.BagOfWords{},
		measures.BagOfTags{},
		s.Structural(measures.PathSets, false, module.AllPairs, module.PW0()),
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PW0()),
		s.Structural(measures.GraphEdit, false, module.AllPairs, module.PW0()),
	}
	fig := RankingFigure{
		ID:    "fig5",
		Title: "Baseline ranking correctness/completeness (pw0, mw, normalized)",
		Rows:  EvaluateAll(s.Taverna, s.Study, ms...),
	}
	// The paper: GE is the only algorithm with a statistically significant
	// difference to BW (p < 0.05, paired t-test).
	bw := fig.Rows[0]
	for _, other := range fig.Rows[1:] {
		if t, ok := PairedSignificance(bw, other); ok {
			fig.Significance = append(fig.Significance, SignificanceNote{A: bw.Name, B: other.Name, Test: t})
		}
	}
	return fig
}

// Fig6 reproduces Figure 6: the impact of the module comparison scheme —
// (a) simMS under pw0, pw3, pll, plm; (b) simPS and simGE under pw3.
func Fig6(s *Setup) RankingFigure {
	ms := []measures.Measure{
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PW0()),
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PW3()),
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PLL()),
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PLM()),
		s.Structural(measures.PathSets, false, module.AllPairs, module.PW3()),
		s.Structural(measures.GraphEdit, false, module.AllPairs, module.PW3()),
	}
	fig := RankingFigure{
		ID:    "fig6",
		Title: "Module comparison schemes: MS x {pw0,pw3,pll,plm}; PS, GE with pw3",
		Rows:  EvaluateAll(s.Taverna, s.Study, ms...),
	}
	// pw0 significantly worst for MS (paper: p < 0.05 vs pw3).
	if t, ok := PairedSignificance(fig.Rows[0], fig.Rows[1]); ok {
		fig.Significance = append(fig.Significance, SignificanceNote{A: fig.Rows[0].Name, B: fig.Rows[1].Name, Test: t})
	}
	return fig
}

// Fig7 reproduces Figure 7: the module-mapping and normalization ablations —
// greedy mapping for simMS (vs maximum weight) and unnormalized simGE.
func Fig7(s *Setup) RankingFigure {
	greedyCfg := s.StructuralConfig(measures.ModuleSets, false, module.AllPairs, module.PW0())
	greedyCfg.Mapping = measures.GreedyMapping
	nonormCfg := s.StructuralConfig(measures.GraphEdit, false, module.AllPairs, module.PW0())
	nonormCfg.Normalize = false
	ms := []measures.Measure{
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PW0()),
		measures.NewStructural(greedyCfg),
		s.Structural(measures.GraphEdit, false, module.AllPairs, module.PW0()),
		measures.NewStructural(nonormCfg),
	}
	fig := RankingFigure{
		ID:    "fig7",
		Title: "Ablations: greedy module mapping (MS); unnormalized edit distance (GE)",
		Rows:  EvaluateAll(s.Taverna, s.Study, ms...),
	}
	// Normalization: paper reports significant reduction without it.
	if t, ok := PairedSignificance(fig.Rows[2], fig.Rows[3]); ok {
		fig.Significance = append(fig.Significance, SignificanceNote{A: fig.Rows[2].Name, B: fig.Rows[3].Name, Test: t})
	}
	return fig
}

// Fig8 reproduces Figure 8: the inclusion of repository knowledge — type
// equivalence preselection (te) and importance projection (ip) for MS, PS
// and GE.
func Fig8(s *Setup) RankingFigure {
	ms := []measures.Measure{
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PLL()),
		s.Structural(measures.ModuleSets, false, module.TypeEquivalence, module.PLL()),
		s.Structural(measures.ModuleSets, true, module.AllPairs, module.PLL()),
		s.Structural(measures.ModuleSets, true, module.TypeEquivalence, module.PLL()),
		s.Structural(measures.PathSets, true, module.TypeEquivalence, module.PLL()),
		s.Structural(measures.GraphEdit, true, module.TypeEquivalence, module.PLL()),
	}
	return RankingFigure{
		ID:    "fig8",
		Title: "Repository knowledge: te preselection and ip projection (pll)",
		Rows:  EvaluateAll(s.Taverna, s.Study, ms...),
	}
}

// Fig9Result reproduces Figure 9: (a) the best standalone configuration per
// algorithm from the configuration sweep, against the annotation measures;
// (b) the best ensembles of two.
type Fig9Result struct {
	Best      RankingFigure
	Ensembles RankingFigure
	// SweepSize is the number of structural configurations swept.
	SweepSize int
}

// Fig9 sweeps structural configurations (projection x preselection x
// scheme per topology), picks each topology's best by mean correctness, and
// evaluates all two-measure ensembles over the best single measures plus
// the annotation measures.
func Fig9(s *Setup) Fig9Result {
	schemes := []module.Scheme{module.PW3(), module.PLL()}
	presels := []module.Preselect{module.AllPairs, module.TypeEquivalence}
	projections := []bool{false, true}

	var out Fig9Result
	best := map[measures.Topology]AlgoRankingResult{}
	bestMeasure := map[measures.Topology]measures.Measure{}
	for _, topo := range []measures.Topology{measures.ModuleSets, measures.PathSets, measures.GraphEdit} {
		for _, ip := range projections {
			// Unprojected exact GED over the sweep is unaffordable, and the
			// paper likewise reports GE's best configurations with ip only.
			if topo == measures.GraphEdit && !ip {
				continue
			}
			for _, presel := range presels {
				for _, scheme := range schemes {
					m := s.Structural(topo, ip, presel, scheme)
					out.SweepSize++
					r := EvaluateRanking(s.Taverna, s.Study, m)
					if cur, ok := best[topo]; !ok || r.Correctness.Mean > cur.Correctness.Mean {
						best[topo] = r
						bestMeasure[topo] = m
					}
				}
			}
		}
	}

	bw := measures.BagOfWords{}
	bt := measures.BagOfTags{}
	out.Best = RankingFigure{
		ID:    "fig9a",
		Title: "Best standalone configuration per algorithm vs annotation measures",
		Rows: append(EvaluateAll(s.Taverna, s.Study, bw, bt),
			best[measures.ModuleSets], best[measures.PathSets], best[measures.GraphEdit]),
	}

	// Ensembles of two over {BW, BT, best MS, best PS}.
	members := []measures.Measure{
		bw, bt,
		bestMeasure[measures.ModuleSets],
		bestMeasure[measures.PathSets],
	}
	var rows []AlgoRankingResult
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			ens := measures.NewEnsemble(members[i], members[j])
			rows = append(rows, EvaluateRanking(s.Taverna, s.Study, ens))
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Correctness.Mean > rows[j].Correctness.Mean })
	out.Ensembles = RankingFigure{
		ID:    "fig9b",
		Title: "Ensembles of two (mean of scores), best first",
		Rows:  rows,
	}
	return out
}

// Fig12 reproduces Figure 12: the ranking experiment repeated on the Galaxy
// corpus with the gw1 (multi-attribute) and gll (label-only) schemes.
// The headline finding: BW collapses on the sparsely annotated corpus while
// structural measures keep working.
func Fig12(s *Setup) RankingFigure {
	ms := []measures.Measure{
		measures.BagOfWords{},
		measures.BagOfTags{},
		s.GalaxyStructural(measures.ModuleSets, false, module.AllPairs, module.GW1()),
		s.GalaxyStructural(measures.ModuleSets, false, module.AllPairs, module.GLL()),
		s.GalaxyStructural(measures.PathSets, false, module.AllPairs, module.GW1()),
		s.GalaxyStructural(measures.PathSets, false, module.AllPairs, module.GLL()),
		s.GalaxyStructural(measures.GraphEdit, true, module.AllPairs, module.GW1()),
		s.GalaxyStructural(measures.GraphEdit, true, module.AllPairs, module.GLL()),
	}
	return RankingFigure{
		ID:    "fig12",
		Title: "Galaxy corpus ranking (gw1 multi-attribute vs gll label-only)",
		Rows:  EvaluateAll(s.Galaxy, s.GalaxyStudy, ms...),
	}
}

// String renders the figure as an aligned text table.
func (f RankingFigure) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", f.ID, f.Title)
	out += fmt.Sprintf("%-28s %10s %9s %13s %8s %8s\n",
		"algorithm", "corr.mean", "corr.sd", "completeness", "skipped", "queries")
	for _, r := range f.Rows {
		out += fmt.Sprintf("%-28s %10.3f %9.3f %13.3f %8d %8d\n",
			r.Name, r.Correctness.Mean, r.Correctness.StdDev, r.Completeness, r.SkippedPairs, len(r.Queries))
	}
	for _, n := range f.Significance {
		out += fmt.Sprintf("  t-test %s vs %s: t=%.3f p=%.4f significant(0.05)=%v\n",
			n.A, n.B, n.Test.T, n.Test.P, n.Test.Significant(0.05))
	}
	return out
}

// String renders the per-rater agreement table.
func (f Fig4Result) String() string {
	out := "== fig4: Inter-annotator agreement vs BioConsert consensus ==\n"
	out += fmt.Sprintf("%-10s %10s %9s %13s\n", "rater", "corr.mean", "corr.sd", "completeness")
	for _, r := range f.Raters {
		out += fmt.Sprintf("%-10s %10.3f %9.3f %13.3f\n",
			r.Rater, r.Correctness.Mean, r.Correctness.StdDev, r.Completeness)
	}
	return out
}
