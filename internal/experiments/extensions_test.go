package experiments

import (
	"strings"
	"testing"
)

func TestAutoProjection(t *testing.T) {
	s := quickSetup(t)
	r := AutoProjection(s)
	for _, row := range []AlgoRankingResult{r.None, r.Manual, r.Auto} {
		if row.Correctness.Mean < -1 || row.Correctness.Mean > 1 {
			t.Errorf("%s correctness out of range: %v", row.Name, row.Correctness.Mean)
		}
		if len(row.Queries) == 0 {
			t.Errorf("%s evaluated no queries", row.Name)
		}
	}
	// Automatic projection is noisy (the paper flags automatic derivation
	// as open future work); it must at least not collapse below the
	// unprojected baseline.
	if r.Auto.Correctness.Mean < r.None.Correctness.Mean-0.15 {
		t.Errorf("auto ip (%.3f) collapses below np (%.3f)",
			r.Auto.Correctness.Mean, r.None.Correctness.Mean)
	}
	if r.MeanModulesAuto <= 0 || r.MeanModulesManual <= 0 {
		t.Error("projected module means must be positive")
	}
	if !strings.Contains(r.String(), "ext-autoip") {
		t.Error("String() must label the extension")
	}
}

func TestTunedEnsemble(t *testing.T) {
	s := quickSetup(t)
	r := TunedEnsemble(s)
	if r.BestWeight < 0 || r.BestWeight > 1 {
		t.Errorf("BestWeight = %v", r.BestWeight)
	}
	// The tuned ensemble may not beat the mean ensemble on held-out data
	// (small query counts), but it must stay in a sane range and evaluate
	// the same held-out queries.
	if len(r.Tuned.Queries) != len(r.Mean.Queries) {
		t.Errorf("tuned and mean evaluated different query counts: %d vs %d",
			len(r.Tuned.Queries), len(r.Mean.Queries))
	}
	for _, row := range []AlgoRankingResult{r.MemberA, r.MemberB, r.Mean, r.Tuned} {
		if row.Correctness.Mean < -1 || row.Correctness.Mean > 1 {
			t.Errorf("%s correctness out of range", row.Name)
		}
	}
	if !strings.Contains(r.String(), "tuned weight") {
		t.Error("String() incomplete")
	}
}

func TestSubsetStudy(t *testing.T) {
	s := quickSetup(t)
	sub := subsetStudy(s.Study, s.Study.Queries[:2])
	if len(sub.Queries) != 2 {
		t.Fatalf("subset queries = %d", len(sub.Queries))
	}
	for _, q := range sub.Queries {
		if len(sub.Candidates[q]) == 0 {
			t.Errorf("subset lost candidates for %s", q)
		}
		if sub.Consensus[q].Len() == 0 {
			t.Errorf("subset lost consensus for %s", q)
		}
	}
}
