package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSV exporters for the figure data, so the regenerated series can be
// plotted or diffed against the paper with external tooling.

// WriteCSV writes a ranking figure as CSV with one row per algorithm.
func (f RankingFigure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "algorithm", "correctness_mean", "correctness_sd", "completeness", "skipped_pairs", "queries"}); err != nil {
		return err
	}
	for _, r := range f.Rows {
		rec := []string{
			f.ID, r.Name,
			fmtF(r.Correctness.Mean), fmtF(r.Correctness.StdDev),
			fmtF(r.Completeness),
			strconv.Itoa(r.SkippedPairs), strconv.Itoa(len(r.Queries)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes a retrieval result as CSV with one row per
// (algorithm, threshold, k).
func (r RetrievalResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "algorithm", "relevance", "k", "precision"}); err != nil {
		return err
	}
	names := make([]string, 0, len(r.Curves))
	for n := range r.Curves {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, th := range Thresholds {
			for k, p := range r.Curves[name][th] {
				rec := []string{r.ID, name, th.String(), strconv.Itoa(k + 1), fmtF(p)}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the per-rater agreement as CSV.
func (f Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rater", "correctness_mean", "correctness_sd", "completeness"}); err != nil {
		return err
	}
	for _, r := range f.Raters {
		rec := []string{r.Rater, fmtF(r.Correctness.Mean), fmtF(r.Correctness.StdDev), fmtF(r.Completeness)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }
