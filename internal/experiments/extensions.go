package experiments

// Extensions beyond the paper's evaluation, implementing two directions its
// conclusion names as future work (Section 6):
//
//  1. deriving module importance automatically from repository usage
//     frequencies instead of manual type curation (AutoProjection);
//  2. going beyond plain mean-score ensembles by tuning member weights on
//     held-out queries (TunedEnsemble), a lightweight form of stacking.

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/repoknow"
)

// AutoProjectionResult compares the manual type-based importance projection
// with the automatic frequency-derived one.
type AutoProjectionResult struct {
	// Manual is MS_ip_te_pll with the paper's manual type-based scorer.
	Manual AlgoRankingResult
	// Auto is the same measure with a frequency-derived scorer: modules
	// whose (lowercased) label accounts for a large share of corpus usage
	// are deemed unimportant.
	Auto AlgoRankingResult
	// None is the unprojected baseline MS_np_te_pll.
	None AlgoRankingResult
	// MeanModulesManual/MeanModulesAuto are the projected corpus means.
	MeanModulesManual float64
	MeanModulesAuto   float64
}

// AutoProjection evaluates frequency-based automatic importance scoring
// (the paper's proposed future work) against the manual curation.
func AutoProjection(s *Setup) AutoProjectionResult {
	usage := repoknow.CollectUsage(s.Taverna.Repo.Workflows())
	freqScorer := repoknow.NewFrequencyScorer(usage)
	// Threshold 0.65 removes labels spread across more than ~35% of the
	// repository. Document frequency separates shims from core operations
	// imperfectly (very popular functional families look like shims), which
	// is exactly why the paper leaves automatic derivation as future work.
	autoProj := repoknow.NewProjector(freqScorer, 0.65)

	manual := s.Structural(measures.ModuleSets, true, module.TypeEquivalence, module.PLL())

	autoCfg := s.StructuralConfig(measures.ModuleSets, false, module.TypeEquivalence, module.PLL())
	autoCfg.Project = autoProj.Project
	auto := measures.NewStructural(autoCfg)

	none := s.Structural(measures.ModuleSets, false, module.TypeEquivalence, module.PLL())

	var out AutoProjectionResult
	out.Manual = EvaluateRanking(s.Taverna, s.Study, manual)
	out.Auto = EvaluateRanking(s.Taverna, s.Study, auto)
	out.Auto.Name = "MS_autoip_te_pll"
	out.None = EvaluateRanking(s.Taverna, s.Study, none)
	_, out.MeanModulesManual = s.Projector.MeanModuleCount(s.Taverna.Repo.Workflows())
	_, out.MeanModulesAuto = autoProj.MeanModuleCount(s.Taverna.Repo.Workflows())
	return out
}

// String renders the comparison table.
func (r AutoProjectionResult) String() string {
	out := "== ext-autoip: automatic importance projection (paper future work) ==\n"
	out += fmt.Sprintf("%-28s %10s %9s %13s\n", "algorithm", "corr.mean", "corr.sd", "completeness")
	for _, row := range []AlgoRankingResult{r.None, r.Manual, r.Auto} {
		out += fmt.Sprintf("%-28s %10.3f %9.3f %13.3f\n",
			row.Name, row.Correctness.Mean, row.Correctness.StdDev, row.Completeness)
	}
	out += fmt.Sprintf("mean modules after projection: manual=%.1f auto=%.1f\n",
		r.MeanModulesManual, r.MeanModulesAuto)
	return out
}

// TunedEnsembleResult compares the paper's plain mean ensemble with a
// weight-tuned variant fitted on half the queries and evaluated on the
// other half.
type TunedEnsembleResult struct {
	// MemberA/MemberB evaluated on the held-out queries.
	MemberA, MemberB AlgoRankingResult
	// Mean is the untuned 1:1 ensemble on the held-out queries.
	Mean AlgoRankingResult
	// Tuned is the grid-search-weighted ensemble on the held-out queries.
	Tuned AlgoRankingResult
	// BestWeight is the tuned weight of member A (member B gets 1-w).
	BestWeight float64
}

// TunedEnsemble fits the BW:structural mixing weight by grid search on the
// first half of the ranking study's queries (training) and reports all
// variants on the second half (evaluation) — a minimal stacking setup in the
// spirit of the paper's "boosting or stacking" outlook.
func TunedEnsemble(s *Setup) TunedEnsembleResult {
	memberA := measures.Measure(measures.BagOfWords{})
	memberB := measures.Measure(s.Structural(measures.ModuleSets, true, module.TypeEquivalence, module.PLL()))

	queries := s.Study.Queries
	split := len(queries) / 2
	train := subsetStudy(s.Study, queries[:split])
	test := subsetStudy(s.Study, queries[split:])

	// Grid search the training queries.
	bestW, bestCorr := 0.5, -2.0
	for w := 0.0; w <= 1.0001; w += 0.1 {
		ens := measures.NewWeightedEnsemble([]measures.Measure{memberA, memberB}, []float64{w, 1 - w})
		r := EvaluateRanking(s.Taverna, train, ens)
		if r.Correctness.Mean > bestCorr {
			bestCorr = r.Correctness.Mean
			bestW = w
		}
	}

	var out TunedEnsembleResult
	out.BestWeight = bestW
	out.MemberA = EvaluateRanking(s.Taverna, test, memberA)
	out.MemberB = EvaluateRanking(s.Taverna, test, memberB)
	out.Mean = EvaluateRanking(s.Taverna, test, measures.NewEnsemble(memberA, memberB))
	tuned := measures.NewWeightedEnsemble([]measures.Measure{memberA, memberB}, []float64{bestW, 1 - bestW})
	out.Tuned = EvaluateRanking(s.Taverna, test, tuned)
	out.Tuned.Name = fmt.Sprintf("ENS[w=%.1f](%s+%s)", bestW, memberA.Name(), memberB.Name())
	return out
}

// subsetStudy restricts a ranking study to a subset of its queries.
func subsetStudy(study *eval.RankingStudy, queries []string) *eval.RankingStudy {
	return &eval.RankingStudy{
		Queries:       queries,
		Candidates:    study.Candidates,
		RaterRankings: study.RaterRankings,
		Consensus:     study.Consensus,
	}
}

// String renders the held-out comparison.
func (r TunedEnsembleResult) String() string {
	out := "== ext-tuned: weight-tuned ensemble on held-out queries (paper future work) ==\n"
	out += fmt.Sprintf("%-36s %10s %9s\n", "algorithm", "corr.mean", "corr.sd")
	for _, row := range []AlgoRankingResult{r.MemberA, r.MemberB, r.Mean, r.Tuned} {
		out += fmt.Sprintf("%-36s %10.3f %9.3f\n", row.Name, row.Correctness.Mean, row.Correctness.StdDev)
	}
	out += fmt.Sprintf("tuned weight on %s: %.1f\n", r.MemberA.Name, r.BestWeight)
	return out
}
