package experiments

import (
	"fmt"

	"repro/internal/measures"
	"repro/internal/module"
)

// RuntimeStatsResult reproduces the runtime observations quoted in the text
// of Section 5.1.4:
//
//   - type-equivalence preselection reduces pairwise module comparisons by a
//     factor of ~2.3 (172k -> 74k on the paper's experiment-1 pairs);
//   - importance projection reduces the average modules per workflow from
//     11.3 to 4.7;
//   - GED becomes computable for (almost) all pairs under the projection
//     (217/240 without ip vs 239/240 with ip under the paper's 5-minute
//     per-pair budget).
type RuntimeStatsResult struct {
	// PairsTotal is the number of module pairs in the Cartesian products of
	// the experiment-1 workflow pairs (the paper's 172k).
	PairsTotal int64
	// PairsCompared is the number admitted by te (the paper's 74k).
	PairsCompared int64
	// ReductionFactor is PairsTotal / PairsCompared (the paper's 2.3).
	ReductionFactor float64
	// MeanModulesBefore / MeanModulesAfter are the corpus-wide module
	// counts per workflow without and with importance projection
	// (the paper's 11.3 and 4.7).
	MeanModulesBefore float64
	MeanModulesAfter  float64
	// GEDPairs is the number of experiment-1 workflow pairs.
	GEDPairs int
	// GEDComputableNP / GEDComputableIP count pairs whose edit distance was
	// computed within the per-pair budget without / with projection.
	GEDComputableNP int
	GEDComputableIP int
}

// RuntimeStats measures the three quantities on the ranking study's
// workflow pairs.
func RuntimeStats(s *Setup) RuntimeStatsResult {
	var out RuntimeStatsResult

	// Module-pair comparison reduction under te, measured with MS_pll over
	// all experiment-1 (query, candidate) pairs.
	var counter measures.PairCounter
	cfg := s.StructuralConfig(measures.ModuleSets, false, module.TypeEquivalence, module.PLL())
	cfg.Counter = &counter
	m := measures.NewStructural(cfg)
	for _, q := range s.Study.Queries {
		qwf := s.Taverna.Repo.Get(q)
		for _, cand := range s.Study.Candidates[q] {
			_, _ = m.Compare(qwf, s.Taverna.Repo.Get(cand)) //wfsimvet:ignore errpath timing run; only the pair counters are measured
		}
	}
	out.PairsTotal = counter.Total()
	out.PairsCompared = counter.Compared()
	if out.PairsCompared > 0 {
		out.ReductionFactor = float64(out.PairsTotal) / float64(out.PairsCompared)
	}

	// Importance projection module counts over the full corpus.
	out.MeanModulesBefore, out.MeanModulesAfter = s.Projector.MeanModuleCount(s.Taverna.Repo.Workflows())

	// GED computability within the per-pair budget, np vs ip, in exact
	// mode (beam 0): this isolates how the importance projection turns an
	// intractable exact comparison into a tractable one.
	npCfg := s.StructuralConfig(measures.GraphEdit, false, module.AllPairs, module.PW0())
	npCfg.GEDBeamWidth = 0
	ipCfg := s.StructuralConfig(measures.GraphEdit, true, module.TypeEquivalence, module.PW0())
	ipCfg.GEDBeamWidth = 0
	geNP := measures.NewStructural(npCfg)
	geIP := measures.NewStructural(ipCfg)
	for _, q := range s.Study.Queries {
		qwf := s.Taverna.Repo.Get(q)
		for _, cand := range s.Study.Candidates[q] {
			out.GEDPairs++
			cwf := s.Taverna.Repo.Get(cand)
			if _, err := geNP.Compare(qwf, cwf); err == nil {
				out.GEDComputableNP++
			}
			if _, err := geIP.Compare(qwf, cwf); err == nil {
				out.GEDComputableIP++
			}
		}
	}
	return out
}

// String renders the statistics block.
func (r RuntimeStatsResult) String() string {
	return fmt.Sprintf(`== runtime: repository-knowledge statistics (Section 5.1.4) ==
module pair comparisons (ta):      %d
module pair comparisons (te):      %d
reduction factor:                  %.2fx  (paper: 2.3x, 172k/74k)
mean modules/workflow (np):        %.1f   (paper: 11.3)
mean modules/workflow (ip):        %.1f   (paper: 4.7)
GED computable pairs without ip:   %d/%d  (paper: 217/240)
GED computable pairs with ip:      %d/%d  (paper: 239/240)
`,
		r.PairsTotal, r.PairsCompared, r.ReductionFactor,
		r.MeanModulesBefore, r.MeanModulesAfter,
		r.GEDComputableNP, r.GEDPairs, r.GEDComputableIP, r.GEDPairs)
}
