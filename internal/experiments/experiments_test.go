package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/measures"
	"repro/internal/module"
)

// sharedSetup builds one Quick-scale setup per test binary; experiments are
// read-only over it.
var (
	setupOnce sync.Once
	setupVal  *Setup
	setupErr  error
)

func quickSetup(t testing.TB) *Setup {
	setupOnce.Do(func() {
		setupVal, setupErr = NewSetup(Quick(), 1)
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return setupVal
}

func rowByName(t *testing.T, fig RankingFigure, name string) AlgoRankingResult {
	t.Helper()
	for _, r := range fig.Rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("figure %s has no row %q (rows: %v)", fig.ID, name, rowNames(fig))
	return AlgoRankingResult{}
}

func rowNames(fig RankingFigure) []string {
	out := make([]string, len(fig.Rows))
	for i, r := range fig.Rows {
		out[i] = r.Name
	}
	return out
}

func TestFig4InterAnnotatorAgreement(t *testing.T) {
	s := quickSetup(t)
	f := Fig4(s)
	if len(f.Raters) != s.Scale.Raters {
		t.Fatalf("raters = %d, want %d", len(f.Raters), s.Scale.Raters)
	}
	// Most experts must be rather d'accord with the consensus (paper: a few
	// outliers, positive agreement overall).
	positive := 0
	for _, r := range f.Raters {
		if r.Correctness.Mean > 0.3 {
			positive++
		}
		if r.Completeness < 0 || r.Completeness > 1 {
			t.Errorf("rater %s completeness = %v", r.Rater, r.Completeness)
		}
	}
	if positive < len(f.Raters)*3/4 {
		t.Errorf("only %d/%d raters agree with consensus", positive, len(f.Raters))
	}
	if !strings.Contains(f.String(), "fig4") {
		t.Error("String() must label the figure")
	}
}

func TestFig5BaselineShape(t *testing.T) {
	s := quickSetup(t)
	f := Fig5(s)
	if len(f.Rows) != 5 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	bw := rowByName(t, f, "BW")
	ge := rowByName(t, f, "GE_np_ta_pw0")
	ms := rowByName(t, f, "MS_np_ta_pw0")
	ps := rowByName(t, f, "PS_np_ta_pw0")
	bt := rowByName(t, f, "BT")

	// Paper shape: BW best; GE worst; annotation measures less complete
	// than structural ones; BT skips tagless queries.
	if bw.Correctness.Mean <= ge.Correctness.Mean {
		t.Errorf("BW (%.3f) must beat GE (%.3f)", bw.Correctness.Mean, ge.Correctness.Mean)
	}
	if ge.Correctness.Mean >= ms.Correctness.Mean || ge.Correctness.Mean >= ps.Correctness.Mean {
		t.Errorf("GE (%.3f) must be worst among structural (MS %.3f, PS %.3f)",
			ge.Correctness.Mean, ms.Correctness.Mean, ps.Correctness.Mean)
	}
	if ms.Completeness < 0.95 || ps.Completeness < 0.95 {
		t.Errorf("structural measures should be (nearly) complete: MS %.3f PS %.3f",
			ms.Completeness, ps.Completeness)
	}
	if bt.Completeness >= ms.Completeness {
		t.Errorf("BT completeness (%.3f) should fall below structural (%.3f)",
			bt.Completeness, ms.Completeness)
	}
	for _, r := range f.Rows {
		if r.Correctness.Mean < -1 || r.Correctness.Mean > 1 {
			t.Errorf("%s correctness out of range: %v", r.Name, r.Correctness.Mean)
		}
	}
}

func TestFig6SchemeShape(t *testing.T) {
	s := quickSetup(t)
	f := Fig6(s)
	pw0 := rowByName(t, f, "MS_np_ta_pw0")
	pw3 := rowByName(t, f, "MS_np_ta_pw3")
	pll := rowByName(t, f, "MS_np_ta_pll")
	plm := rowByName(t, f, "MS_np_ta_plm")

	// Paper shape: pw0 worst; pll on par with pw3; plm's correctness is
	// inflated by a completeness drop.
	if pw0.Correctness.Mean >= pw3.Correctness.Mean {
		t.Errorf("pw0 (%.3f) must trail pw3 (%.3f)", pw0.Correctness.Mean, pw3.Correctness.Mean)
	}
	if pw0.Correctness.Mean >= pll.Correctness.Mean {
		t.Errorf("pw0 (%.3f) must trail pll (%.3f)", pw0.Correctness.Mean, pll.Correctness.Mean)
	}
	if plm.Completeness >= pll.Completeness {
		t.Errorf("plm completeness (%.3f) must fall below pll (%.3f)",
			plm.Completeness, pll.Completeness)
	}
}

func TestFig7AblationShape(t *testing.T) {
	s := quickSetup(t)
	f := Fig7(s)
	mw := rowByName(t, f, "MS_np_ta_pw0")
	greedy := rowByName(t, f, "MS_np_ta_pw0_greedy")
	norm := rowByName(t, f, "GE_np_ta_pw0")
	nonorm := rowByName(t, f, "GE_np_ta_pw0_nonorm")

	// Greedy mapping ~ maximum weight (paper: no impact).
	if d := mw.Correctness.Mean - greedy.Correctness.Mean; d > 0.15 || d < -0.15 {
		t.Errorf("greedy vs mw differ too much: %.3f vs %.3f", greedy.Correctness.Mean, mw.Correctness.Mean)
	}
	// Dropping normalization hurts GE (paper: significant reduction).
	if nonorm.Correctness.Mean >= norm.Correctness.Mean {
		t.Errorf("unnormalized GE (%.3f) must trail normalized GE (%.3f)",
			nonorm.Correctness.Mean, norm.Correctness.Mean)
	}
}

func TestFig8RepositoryKnowledgeShape(t *testing.T) {
	s := quickSetup(t)
	f := Fig8(s)
	ta := rowByName(t, f, "MS_np_ta_pll")
	te := rowByName(t, f, "MS_np_te_pll")
	ip := rowByName(t, f, "MS_ip_te_pll")

	// te ~ ta in quality (paper: comparable correctness).
	if d := ta.Correctness.Mean - te.Correctness.Mean; d > 0.15 {
		t.Errorf("te (%.3f) degrades too much vs ta (%.3f)", te.Correctness.Mean, ta.Correctness.Mean)
	}
	// ip must not collapse quality; paper reports a benefit for MS.
	if ip.Correctness.Mean < ta.Correctness.Mean-0.15 {
		t.Errorf("ip (%.3f) collapses vs np (%.3f)", ip.Correctness.Mean, ta.Correctness.Mean)
	}
	// GE with ip must compute (nearly) all pairs.
	ge := rowByName(t, f, "GE_ip_te_pll")
	if ge.SkippedPairs > 2 {
		t.Errorf("GE_ip skipped %d pairs, want near 0", ge.SkippedPairs)
	}
}

func TestFig9BestAndEnsembles(t *testing.T) {
	s := quickSetup(t)
	f := Fig9(s)
	if f.SweepSize < 12 {
		t.Errorf("sweep size = %d, want >= 12", f.SweepSize)
	}
	if len(f.Best.Rows) != 5 {
		t.Fatalf("fig9a rows = %d", len(f.Best.Rows))
	}
	if len(f.Ensembles.Rows) != 6 {
		t.Fatalf("fig9b rows = %d (pairs of 4 members)", len(f.Ensembles.Rows))
	}
	// Paper: the best ensemble beats every standalone algorithm.
	bestSingle := 0.0
	for _, r := range f.Best.Rows {
		if r.Correctness.Mean > bestSingle {
			bestSingle = r.Correctness.Mean
		}
	}
	bestEns := f.Ensembles.Rows[0]
	if bestEns.Correctness.Mean < bestSingle-0.05 {
		t.Errorf("best ensemble (%.3f, %s) falls well below best single (%.3f)",
			bestEns.Correctness.Mean, bestEns.Name, bestSingle)
	}
	// Ensemble rows must be sorted descending.
	for i := 1; i < len(f.Ensembles.Rows); i++ {
		if f.Ensembles.Rows[i].Correctness.Mean > f.Ensembles.Rows[i-1].Correctness.Mean+1e-9 {
			t.Error("ensembles not sorted by mean correctness")
		}
	}
}

func TestFig12GalaxyShape(t *testing.T) {
	s := quickSetup(t)
	f := Fig12(s)
	bw := rowByName(t, f, "BW")
	msGW1 := rowByName(t, f, "MS_np_ta_gw1")
	msGLL := rowByName(t, f, "MS_np_ta_gll")

	// Paper: BW doesn't provide satisfying results on Galaxy; structural
	// measures survive.
	if bw.Correctness.Mean >= msGW1.Correctness.Mean {
		t.Errorf("BW (%.3f) must collapse below MS_gw1 (%.3f) on Galaxy",
			bw.Correctness.Mean, msGW1.Correctness.Mean)
	}
	// Paper: on Galaxy, label-only comparison offers less correct results
	// than multi-attribute comparison (generic step labels).
	if msGLL.Correctness.Mean > msGW1.Correctness.Mean+0.05 {
		t.Errorf("gll (%.3f) must not beat gw1 (%.3f) on Galaxy",
			msGLL.Correctness.Mean, msGW1.Correctness.Mean)
	}
}

func TestRuntimeStatsShape(t *testing.T) {
	s := quickSetup(t)
	r := RuntimeStats(s)
	if r.ReductionFactor < 1.5 || r.ReductionFactor > 4 {
		t.Errorf("te reduction factor = %.2f, want in the ballpark of the paper's 2.3", r.ReductionFactor)
	}
	if r.MeanModulesAfter >= r.MeanModulesBefore {
		t.Errorf("ip must shrink workflows: %.1f -> %.1f", r.MeanModulesBefore, r.MeanModulesAfter)
	}
	if r.MeanModulesBefore < 8 || r.MeanModulesBefore > 15 {
		t.Errorf("mean modules before = %.1f, want near 11.3", r.MeanModulesBefore)
	}
	if r.GEDComputableIP < r.GEDComputableNP {
		t.Errorf("ip must not reduce GED computability: %d vs %d", r.GEDComputableIP, r.GEDComputableNP)
	}
	if r.GEDComputableIP < r.GEDPairs-2 {
		t.Errorf("GED with ip computable for %d/%d pairs, want nearly all", r.GEDComputableIP, r.GEDPairs)
	}
	if !strings.Contains(r.String(), "reduction factor") {
		t.Error("String() incomplete")
	}
}

func TestFig10RetrievalShape(t *testing.T) {
	s := quickSetup(t)
	f := Fig10(context.Background(), s)
	if len(f.Curves) != 6 {
		t.Fatalf("curves = %d", len(f.Curves))
	}
	for name, per := range f.Curves {
		for th, curve := range per {
			if len(curve) != 10 {
				t.Fatalf("%s@%v curve length %d", name, th, len(curve))
			}
			for _, v := range curve {
				if v < 0 || v > 1 {
					t.Errorf("%s@%v precision out of range: %v", name, th, v)
				}
			}
		}
	}
	// Differences shrink as the threshold rises (paper: all configurations
	// similar for very similar retrieval). Compare spread at Related vs
	// VerySimilar for P@10.
	spread := func(th eval.Rating) float64 {
		lo, hi := 2.0, -1.0
		for _, per := range f.Curves {
			v := per[th][9]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}
	if spread(eval.Related) < spread(eval.VerySimilar)-0.25 {
		t.Errorf("spread at related (%.3f) should not be far below very similar (%.3f)",
			spread(eval.Related), spread(eval.VerySimilar))
	}
	for q, size := range f.PoolSizes {
		if size < 10 || size > 60 {
			t.Errorf("pool size for %s = %d, want within [10, 60]", q, size)
		}
	}
}

func TestFig11RetrievalShape(t *testing.T) {
	s := quickSetup(t)
	f := Fig11(context.Background(), s)
	if len(f.Curves) != 7 {
		t.Fatalf("curves = %d", len(f.Curves))
	}
	// The tuned structural measures must retrieve related workflows well.
	msIP := f.Curves["MS_ip_te_pll"][eval.Related]
	if msIP[0] < 0.5 {
		t.Errorf("MS_ip_te_pll P@1(related) = %.2f, want >= 0.5", msIP[0])
	}
	if !strings.Contains(f.String(), "fig11") {
		t.Error("String() must label the figure")
	}
}

func TestEvaluateRankingSkipsBTQueriesWithoutTags(t *testing.T) {
	s := quickSetup(t)
	res := EvaluateRanking(s.Taverna, s.Study, measures.BagOfTags{})
	// ~15% of workflows lack tags, so with 8 queries it is likely but not
	// guaranteed some are skipped; assert only the accounting adds up.
	if res.SkippedQueries+len(res.Queries) > len(s.Study.Queries) {
		t.Errorf("query accounting broken: %d skipped + %d evaluated > %d total",
			res.SkippedQueries, len(res.Queries), len(s.Study.Queries))
	}
}

func TestPairedSignificanceAlignsQueries(t *testing.T) {
	s := quickSetup(t)
	a := EvaluateRanking(s.Taverna, s.Study, measures.BagOfWords{})
	b := EvaluateRanking(s.Taverna, s.Study,
		s.Structural(measures.ModuleSets, false, module.AllPairs, module.PLL()))
	if _, ok := PairedSignificance(a, b); !ok {
		t.Error("expected overlapping queries for significance test")
	}
}
