package cluster

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/repoknow"
)

func blockMatrix() *Matrix {
	// Two tight blocks {0,1,2} and {3,4}, near-zero across.
	n := 5
	m := &Matrix{IDs: []string{"a", "b", "c", "d", "e"}, Sim: make([][]float64, n)}
	for i := range m.Sim {
		m.Sim[i] = make([]float64, n)
		m.Sim[i][i] = 1
	}
	set := func(i, j int, v float64) { m.Sim[i][j] = v; m.Sim[j][i] = v }
	set(0, 1, 0.9)
	set(0, 2, 0.85)
	set(1, 2, 0.95)
	set(3, 4, 0.9)
	set(0, 3, 0.05)
	set(1, 4, 0.1)
	return m
}

func TestAgglomerativeBlocks(t *testing.T) {
	c := Agglomerative(blockMatrix(), 0.5)
	if c.K != 2 {
		t.Fatalf("K = %d, want 2 (assign %v)", c.K, c.Assign)
	}
	if c.Assign[0] != c.Assign[1] || c.Assign[1] != c.Assign[2] {
		t.Errorf("block 1 split: %v", c.Assign)
	}
	if c.Assign[3] != c.Assign[4] || c.Assign[0] == c.Assign[3] {
		t.Errorf("block 2 wrong: %v", c.Assign)
	}
}

func TestAgglomerativeThresholdOne(t *testing.T) {
	// With minSim above all pairwise similarities everything stays a
	// singleton.
	c := Agglomerative(blockMatrix(), 0.99)
	if c.K != 5 {
		t.Errorf("K = %d, want 5 singletons", c.K)
	}
}

func TestComponentsBlocks(t *testing.T) {
	c := Components(blockMatrix(), 0.5)
	if c.K != 2 {
		t.Fatalf("K = %d, want 2 (assign %v)", c.K, c.Assign)
	}
}

func TestComponentsChaining(t *testing.T) {
	// Single linkage chains: a-b and b-c linked, a-c not — still one
	// component.
	n := 3
	m := &Matrix{IDs: []string{"a", "b", "c"}, Sim: make([][]float64, n)}
	for i := range m.Sim {
		m.Sim[i] = make([]float64, n)
		m.Sim[i][i] = 1
	}
	m.Sim[0][1], m.Sim[1][0] = 0.9, 0.9
	m.Sim[1][2], m.Sim[2][1] = 0.9, 0.9
	c := Components(m, 0.5)
	if c.K != 1 {
		t.Errorf("K = %d, want 1 chained component", c.K)
	}
}

func TestRandIndexAndPurity(t *testing.T) {
	a := Clustering{Assign: []int{0, 0, 1, 1}, K: 2}
	if ri, err := RandIndex(a, a); err != nil || ri != 1 {
		t.Errorf("self Rand = %v, %v", ri, err)
	}
	b := Clustering{Assign: []int{0, 1, 0, 1}, K: 2}
	ri, err := RandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (0,1)s/d (0,2)d/s (0,3)d/d (1,2)d/d (1,3)d/s (2,3)s/d -> agree 2/6.
	if ri < 0.33 || ri > 0.34 {
		t.Errorf("Rand = %v, want 1/3", ri)
	}
	p, err := Purity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("purity = %v, want 0.5", p)
	}
	if _, err := RandIndex(a, Clustering{Assign: []int{0}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Purity(a, Clustering{Assign: []int{0}}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestEmptyMatrix(t *testing.T) {
	c := Agglomerative(&Matrix{}, 0.5)
	if c.K != 0 {
		t.Errorf("empty K = %d", c.K)
	}
}

// End-to-end: clustering a generated corpus with MS_ip_te_pll must recover
// the latent cluster structure well above chance.
func TestClusteringRecoversGroundTruth(t *testing.T) {
	p := gen.Taverna()
	p.Workflows = 60
	p.Clusters = 5
	c, err := gen.Generate(p, 23)
	if err != nil {
		t.Fatal(err)
	}
	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	m := measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Preselect: module.TypeEquivalence,
		Project:   proj.Project,
		Normalize: true,
	})
	mat, err := BuildMatrix(context.Background(), c.Repo, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Skipped != 0 {
		t.Errorf("skipped %d pairs", mat.Skipped)
	}
	found := Agglomerative(mat, 0.45)

	// Reference clustering from generator ground truth.
	ref := Clustering{Assign: make([]int, len(mat.IDs))}
	clusterIDs := map[int]int{}
	for i, id := range mat.IDs {
		cid := c.Truth.Meta[id].Cluster
		if _, ok := clusterIDs[cid]; !ok {
			clusterIDs[cid] = len(clusterIDs)
		}
		ref.Assign[i] = clusterIDs[cid]
	}
	ref.K = len(clusterIDs)

	ri, err := RandIndex(found, ref)
	if err != nil {
		t.Fatal(err)
	}
	purity, err := Purity(found, ref)
	if err != nil {
		t.Fatal(err)
	}
	if ri < 0.75 {
		t.Errorf("Rand index = %.3f, want >= 0.75", ri)
	}
	if purity < 0.75 {
		t.Errorf("purity = %.3f, want >= 0.75", purity)
	}
}

func BenchmarkBuildMatrix60(b *testing.B) {
	p := gen.Taverna()
	p.Workflows = 60
	p.Clusters = 5
	c, err := gen.Generate(p, 23)
	if err != nil {
		b.Fatal(err)
	}
	m := measures.NewStructural(measures.Config{
		Topology: measures.ModuleSets, Scheme: module.PLL(), Normalize: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildMatrix(context.Background(), c.Repo, m, 0)
	}
}

func BenchmarkAgglomerative60(b *testing.B) {
	m := &Matrix{IDs: make([]string, 60), Sim: make([][]float64, 60)}
	for i := range m.Sim {
		m.IDs[i] = string(rune('a' + i%26))
		m.Sim[i] = make([]float64, 60)
		for j := range m.Sim[i] {
			if i/10 == j/10 {
				m.Sim[i][j] = 0.8
			} else {
				m.Sim[i][j] = 0.1
			}
		}
		m.Sim[i][i] = 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Agglomerative(m, 0.5)
	}
}

func TestBuildMatrixCancelledContext(t *testing.T) {
	p := gen.Taverna()
	p.Workflows = 30
	p.Clusters = 3
	c, err := gen.Generate(p, 23)
	if err != nil {
		t.Fatal(err)
	}
	m := measures.NewStructural(measures.Config{
		Topology: measures.ModuleSets, Scheme: module.PLL(), Normalize: true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildMatrix(ctx, c.Repo, m, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
