// Package cluster implements similarity-based workflow clustering — one of
// the repository-management challenges motivating the paper (Section 1:
// "grouping of workflows into functional clusters", after Silva et al. 2011
// and Santos et al. 2008). Any similarity measure from package measures can
// drive the clustering.
//
// Two methods are provided: average-linkage agglomerative clustering with a
// similarity cut-off, and a simple threshold-graph connected-components
// clustering (single linkage), both operating on a precomputed similarity
// matrix.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/measures"
	"repro/internal/search"
	"repro/internal/workflow"
)

// Matrix is a symmetric similarity matrix over a repository's workflows,
// indexed in repository order.
type Matrix struct {
	IDs []string
	Sim [][]float64
	// Skipped counts pairs the measure could not score (treated as
	// similarity 0).
	Skipped int
}

// BuildMatrix computes the pairwise similarity matrix of a repository under
// m with a row-per-task worker pool. Unscorable pairs get similarity 0 and
// are counted. A cancelled or expired context aborts the computation with
// the context's error.
func BuildMatrix(ctx context.Context, repo search.Corpus, m measures.Measure, par int) (*Matrix, error) {
	wfs := repo.Workflows()
	n := len(wfs)
	mat := &Matrix{IDs: make([]string, n), Sim: make([][]float64, n)}
	for i, wf := range wfs {
		mat.IDs[i] = wf.ID
		mat.Sim[i] = make([]float64, n)
		mat.Sim[i][i] = 1
	}
	var skipped atomic.Int64
	// Row i writes Sim[i][j] and Sim[j][i] for j > i only, so rows never
	// race: the mirror cell Sim[j][i] belongs to no other row's range.
	err := search.Batched(ctx, n, par, 1, func(i int) error {
		for j := i + 1; j < n; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Evaluate in ID order so the cell value is a function of the
			// unordered pair (see search.Duplicates): measures need not be
			// bit-symmetric under operand swap.
			x, y := workflow.OrderPair(wfs[i], wfs[j])
			s, err := m.Compare(x, y)
			if err != nil {
				skipped.Add(1)
				continue
			}
			mat.Sim[i][j] = s
			mat.Sim[j][i] = s
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mat.Skipped = int(skipped.Load())
	return mat, nil
}

// Clustering assigns each workflow (by matrix index) to a cluster.
type Clustering struct {
	// Assign[i] is the cluster id of workflow i; ids are dense from 0.
	Assign []int
	// K is the number of clusters.
	K int
}

// Members returns the workflow indexes per cluster.
func (c Clustering) Members() [][]int {
	out := make([][]int, c.K)
	for i, k := range c.Assign {
		out[k] = append(out[k], i)
	}
	return out
}

// Agglomerative performs average-linkage agglomerative clustering: starting
// from singletons, the two clusters with the highest average pairwise
// similarity are merged while that similarity is at least minSim.
func Agglomerative(m *Matrix, minSim float64) Clustering {
	n := len(m.IDs)
	if n == 0 {
		return Clustering{}
	}
	// active clusters as index sets.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	avg := func(a, b []int) float64 {
		var s float64
		for _, i := range a {
			for _, j := range b {
				s += m.Sim[i][j]
			}
		}
		return s / float64(len(a)*len(b))
	}
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, minSim
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if s := avg(clusters[i], clusters[j]); s >= best {
					bi, bj, best = i, j, s
				}
			}
		}
		if bi < 0 {
			break
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	return toClustering(clusters, n)
}

// Components clusters by connected components of the threshold graph:
// workflows i and j are linked iff Sim[i][j] >= minSim (single linkage).
func Components(m *Matrix, minSim float64) Clustering {
	n := len(m.IDs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.Sim[i][j] >= minSim {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	clusters := make([][]int, 0, len(roots))
	for _, r := range roots {
		clusters = append(clusters, groups[r])
	}
	return toClustering(clusters, n)
}

func toClustering(clusters [][]int, n int) Clustering {
	// Deterministic cluster ids: order clusters by smallest member index.
	sort.Slice(clusters, func(a, b int) bool {
		return minOf(clusters[a]) < minOf(clusters[b])
	})
	assign := make([]int, n)
	for k, members := range clusters {
		for _, i := range members {
			assign[i] = k
		}
	}
	return Clustering{Assign: assign, K: len(clusters)}
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Quality metrics against a reference assignment (e.g. generator ground
// truth): the Rand index and purity.

// RandIndex computes the fraction of workflow pairs on which two
// clusterings agree (same-cluster vs different-cluster).
func RandIndex(a, b Clustering) (float64, error) {
	if len(a.Assign) != len(b.Assign) {
		return 0, fmt.Errorf("cluster: assignments differ in length: %d vs %d", len(a.Assign), len(b.Assign))
	}
	n := len(a.Assign)
	if n < 2 {
		return 1, nil
	}
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			sameA := a.Assign[i] == a.Assign[j]
			sameB := b.Assign[i] == b.Assign[j]
			if sameA == sameB {
				agree++
			}
		}
	}
	return float64(agree) / float64(total), nil
}

// Purity computes the weighted fraction of each found cluster occupied by
// its dominant reference cluster.
func Purity(found, ref Clustering) (float64, error) {
	if len(found.Assign) != len(ref.Assign) {
		return 0, fmt.Errorf("cluster: assignments differ in length")
	}
	n := len(found.Assign)
	if n == 0 {
		return 1, nil
	}
	correct := 0
	for _, members := range found.Members() {
		counts := map[int]int{}
		for _, i := range members {
			counts[ref.Assign[i]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(n), nil
}
