package gen

import (
	"math"
	"math/rand"
)

// zipfS is the skew exponent of the generator's vocabulary distribution.
// Real repositories reuse a handful of popular operations, shims and topic
// words far more often than the tail (myExperiment's service usage is
// heavily head-skewed), so pool draws follow P(i) ∝ 1/(i+1)^zipfS instead
// of a uniform pick. A mild exponent keeps the tail populated enough that
// every pool element still appears in a corpus of realistic size.
const zipfS = 1.1

// zipfPick returns an index in [0, n) drawn Zipf-distributed from r. It
// consumes exactly one value from the stream, so corpus generation stays a
// deterministic function of (profile, seed).
func zipfPick(r *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	u := r.Float64() * zipfNorm(n)
	for i := 0; i < n; i++ {
		u -= math.Pow(float64(i+1), -zipfS)
		if u <= 0 {
			return i
		}
	}
	return n - 1
}

// zipfNorm returns the normalisation constant sum_{i=1..n} i^-zipfS.
// Pools are tens of elements, so the loop is cheaper than maintaining a
// cache keyed by n.
func zipfNorm(n int) float64 {
	var s float64
	for i := 1; i <= n; i++ {
		s += math.Pow(float64(i), -zipfS)
	}
	return s
}
