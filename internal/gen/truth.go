package gen

import (
	"hash/fnv"
)

// Truth is the latent ground-truth similarity structure of a generated
// corpus. It substitutes for the paper's expert gold standard: simulated
// raters perceive a noisy version of this function (see package eval).
type Truth struct {
	// Meta maps workflow ID to its generation metadata.
	Meta map[string]WorkflowMeta
}

// WorkflowMeta records how a workflow was derived.
type WorkflowMeta struct {
	// Cluster is the functional cluster the workflow belongs to.
	Cluster int
	// Domain is the scientific domain of the cluster.
	Domain int
	// MutationDepth is the number of mutations applied to the cluster
	// prototype when deriving this workflow (0 = the prototype itself).
	MutationDepth int
}

// Sim returns the latent functional similarity of two workflows in [0,1]:
// 1 for identical IDs; high (decaying with mutation depth) within a cluster;
// moderate across clusters of the same domain ("related"); near zero across
// domains. A small deterministic per-pair jitter avoids degenerate ties.
func (t *Truth) Sim(id1, id2 string) float64 {
	if id1 == id2 {
		return 1
	}
	m1, ok1 := t.Meta[id1]
	m2, ok2 := t.Meta[id2]
	if !ok1 || !ok2 {
		return 0
	}
	jitter := pairJitter(id1, id2) // in [0, 1)
	switch {
	case m1.Cluster == m2.Cluster:
		v := 0.92 - 0.07*float64(m1.MutationDepth+m2.MutationDepth) + 0.04*jitter
		return clamp(v, 0.45, 1)
	case m1.Domain == m2.Domain:
		return clamp(0.28+0.12*jitter, 0, 0.42)
	default:
		return clamp(0.02+0.08*jitter, 0, 0.12)
	}
}

// Related reports whether two workflows share a domain (but see Sim for the
// graded view).
func (t *Truth) Related(id1, id2 string) bool {
	m1, ok1 := t.Meta[id1]
	m2, ok2 := t.Meta[id2]
	return ok1 && ok2 && m1.Domain == m2.Domain
}

// pairJitter returns a deterministic pseudo-random value in [0,1) for an
// unordered pair of IDs.
func pairJitter(a, b string) float64 {
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
