package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/workflow"
)

// Profile parameterises corpus generation for a repository style.
type Profile struct {
	// Name identifies the profile ("taverna", "galaxy").
	Name string
	// Workflows is the corpus size.
	Workflows int
	// Clusters is the number of latent functional clusters.
	Clusters int
	// CoreMin/CoreMax bound the number of core operations per prototype.
	CoreMin, CoreMax int
	// ShimMin/ShimMax bound the trivial shim modules inserted per workflow.
	ShimMin, ShimMax int
	// MaxMutations bounds the mutation depth of cluster members.
	MaxMutations int
	// TagProb is the probability a workflow carries tags (the paper notes
	// ~15% of myExperiment workflows lack tags).
	TagProb float64
	// DescProb is the probability a workflow carries a description.
	DescProb float64
	// TitleQuality is the probability a title carries topical words rather
	// than a generic name ("Unnamed workflow 7"). Galaxy uploads are often
	// titled generically, which starves annotation-based comparison.
	TitleQuality float64
	// Galaxy switches module realisation to Galaxy tool style (sparse
	// annotations, uniform "tool" type, parameters instead of services).
	Galaxy bool
}

// Taverna returns the myExperiment-like profile: 1483 workflows, rich
// annotations, heterogeneous Taverna module types, ~11 modules per workflow.
func Taverna() Profile {
	return Profile{
		Name:      "taverna",
		Workflows: 1483,
		Clusters:  48,
		CoreMin:   5, CoreMax: 8,
		ShimMin: 2, ShimMax: 6,
		MaxMutations: 4,
		TagProb:      0.85,
		DescProb:     0.90,
		TitleQuality: 0.95,
	}
}

// Galaxy returns the Galaxy-repository profile: 139 workflows, sparse
// annotations, tool-style modules, fewer shims.
func Galaxy() Profile {
	return Profile{
		Name:      "galaxy",
		Workflows: 139,
		Clusters:  14,
		CoreMin:   4, CoreMax: 8,
		ShimMin: 0, ShimMax: 2,
		MaxMutations: 4,
		TagProb:      0.35,
		DescProb:     0.15,
		TitleQuality: 0.30,
		Galaxy:       true,
	}
}

// Corpus is a generated repository together with its latent ground truth.
type Corpus struct {
	Profile Profile
	Repo    *corpus.Repository
	Truth   *Truth
}

// Generate builds a corpus deterministically from the profile and seed.
func Generate(p Profile, seed int64) (*Corpus, error) {
	r := rand.New(rand.NewSource(seed))
	doms := domains()
	shims := shimBank()

	truth := &Truth{Meta: map[string]WorkflowMeta{}}
	repo, err := corpus.NewRepository()
	if err != nil {
		return nil, err
	}

	// Build cluster prototypes.
	protos := make([]*prototype, p.Clusters)
	for c := range protos {
		d := c % len(doms)
		protos[c] = newPrototype(r, c, d, doms[d], p)
	}

	// Distribute workflows over clusters with a mild skew: popular
	// functionality is reused more often, as in real repositories.
	sizes := clusterSizes(r, p.Workflows, p.Clusters)

	next := 1000 // myExperiment-style numeric IDs
	for c, proto := range protos {
		for k := 0; k < sizes[c]; k++ {
			id := fmt.Sprintf("%d", next)
			next++
			depth := 0
			if k > 0 { // the first member is the prototype itself
				depth = 1 + r.Intn(p.MaxMutations)
			}
			wf := proto.instantiate(r, id, depth, p, shims)
			if err := repo.Add(wf); err != nil {
				return nil, err
			}
			truth.Meta[id] = WorkflowMeta{Cluster: c, Domain: proto.domain, MutationDepth: depth}
		}
	}
	if err := repo.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated invalid corpus: %w", err)
	}
	return &Corpus{Profile: p, Repo: repo, Truth: truth}, nil
}

// clusterSizes partitions total into clusters parts with a 1/rank skew,
// each part at least 1.
func clusterSizes(r *rand.Rand, total, clusters int) []int {
	weights := make([]float64, clusters)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		wsum += weights[i]
	}
	sizes := make([]int, clusters)
	assigned := 0
	for i := range sizes {
		sizes[i] = 1 + int(float64(total-clusters)*weights[i]/wsum)
		assigned += sizes[i]
	}
	// Distribute the rounding remainder randomly.
	for assigned < total {
		sizes[r.Intn(clusters)]++
		assigned++
	}
	for assigned > total {
		i := r.Intn(clusters)
		if sizes[i] > 1 {
			sizes[i]--
			assigned--
		}
	}
	return sizes
}

// prototype is a cluster's canonical pipeline.
type prototype struct {
	cluster int
	domain  int
	dom     domain
	ops     []operation // pipeline order
	topics  []string    // cluster-specific topic words
	// branchAt marks pipeline positions where the DAG forks (op i and i+1
	// run in parallel, joining at i+2).
	branchAt map[int]bool
}

func newPrototype(r *rand.Rand, cluster, domIdx int, dom domain, p Profile) *prototype {
	n := p.CoreMin + r.Intn(p.CoreMax-p.CoreMin+1)
	if n > len(dom.operations) {
		n = len(dom.operations)
	}
	perm := r.Perm(len(dom.operations))
	ops := make([]operation, n)
	for i := 0; i < n; i++ {
		ops[i] = dom.operations[perm[i]]
	}
	// Cluster topics: 3-4 domain topics, fixed per cluster.
	tperm := r.Perm(len(dom.topics))
	tn := 3 + r.Intn(2)
	if tn > len(dom.topics) {
		tn = len(dom.topics)
	}
	topics := make([]string, tn)
	for i := 0; i < tn; i++ {
		topics[i] = dom.topics[tperm[i]]
	}
	branch := map[int]bool{}
	for i := 0; i+2 < n; i++ {
		if r.Intn(4) == 0 {
			branch[i] = true
		}
	}
	return &prototype{cluster: cluster, domain: domIdx, dom: dom, ops: ops, topics: topics, branchAt: branch}
}

// instantiate derives one member workflow by applying depth mutations to the
// prototype, inserting shims, and annotating.
func (pr *prototype) instantiate(r *rand.Rand, id string, depth int, p Profile, shims []shim) *workflow.Workflow {
	ops := append([]operation(nil), pr.ops...)
	branch := map[int]bool{}
	for k, v := range pr.branchAt {
		branch[k] = v
	}
	relabeled := map[int]int{} // op index -> label style mutation count

	for m := 0; m < depth; m++ {
		switch r.Intn(5) {
		case 0, 1: // relabel is the most common drift
			if len(ops) > 0 {
				relabeled[r.Intn(len(ops))]++
			}
		case 2: // delete a core op
			if len(ops) > 3 {
				i := r.Intn(len(ops))
				ops = append(ops[:i], ops[i+1:]...)
				delete(branch, i)
			}
		case 3: // add a uniformly random op from the domain pool
			ops = insertOp(ops, pr.dom.operations[r.Intn(len(pr.dom.operations))], r)
		case 4: // rewire: toggle a branch point
			if len(ops) > 2 {
				i := r.Intn(len(ops) - 2)
				branch[i] = !branch[i]
			}
		}
	}

	wf := workflow.New(id)
	idxOf := make([]int, len(ops))
	for i, op := range ops {
		style := relabeled[i]
		wf.AddModule(realiseModule(r, op, style, p, i))
		idxOf[i] = i
	}
	// Pipeline edges with optional diamonds: at a branch point i, both i+1
	// and i+2 depend on i, and i+3 (if any) joins them.
	for i := 0; i+1 < len(ops); i++ {
		if branch[i] && i+2 < len(ops) {
			mustEdge(wf, idxOf[i], idxOf[i+1])
			mustEdge(wf, idxOf[i], idxOf[i+2])
			if i+3 < len(ops) {
				mustEdge(wf, idxOf[i+1], idxOf[i+3])
				mustEdge(wf, idxOf[i+2], idxOf[i+3])
			}
		} else {
			mustEdge(wf, idxOf[i], idxOf[i+1])
		}
	}

	// Insert shims by splitting random edges.
	nshims := p.ShimMin
	if p.ShimMax > p.ShimMin {
		nshims += r.Intn(p.ShimMax - p.ShimMin + 1)
	}
	for s := 0; s < nshims && wf.EdgeCount() > 0; s++ {
		e := wf.Edges[r.Intn(len(wf.Edges))]
		// Shim vocabulary is Zipf-skewed: a few ubiquitous shims (string
		// concatenation, list flattening) dominate real corpora.
		sh := shims[zipfPick(r, len(shims))]
		// Authors name their shim instances: about half carry a suffix or
		// case variant, so strict label matching fails across workflows
		// while edit distance still scores them close.
		label := sh.label
		switch r.Intn(4) {
		case 0:
			label = fmt.Sprintf("%s_%d", label, 2+r.Intn(3))
		case 1:
			label = strings.ReplaceAll(label, "_", " ")
		}
		si := wf.AddModule(&workflow.Module{
			ID:    fmt.Sprintf("shim%d", s),
			Label: label,
			Type:  sh.typ,
		})
		// Replace e with e.From -> shim -> e.To.
		for i := range wf.Edges {
			if wf.Edges[i] == e {
				wf.Edges = append(wf.Edges[:i], wf.Edges[i+1:]...)
				break
			}
		}
		mustEdge(wf, e.From, si)
		mustEdge(wf, si, e.To)
	}
	for i, m := range wf.Modules {
		if m.ID == "" || !strings.HasPrefix(m.ID, "shim") {
			m.ID = fmt.Sprintf("m%d", i)
		} else {
			m.ID = fmt.Sprintf("m%d", i)
		}
	}

	pr.annotate(r, wf, depth, p)
	return wf
}

// insertOp inserts op at a random position.
func insertOp(ops []operation, op operation, r *rand.Rand) []operation {
	i := r.Intn(len(ops) + 1)
	out := make([]operation, 0, len(ops)+1)
	out = append(out, ops[:i]...)
	out = append(out, op)
	out = append(out, ops[i:]...)
	return out
}

// realiseModule turns an abstract operation into a concrete module,
// rendering the label in one of several author styles (mutation shifts the
// style), and choosing a type spelling.
func realiseModule(r *rand.Rand, op operation, styleShift int, p Profile, pos int) *workflow.Module {
	label := renderLabel(op.labelWords, (hashWords(op.labelWords)+styleShift)%numLabelStyles, styleShift)
	m := &workflow.Module{Label: label}
	switch {
	case p.Galaxy:
		m.Type = workflow.TypeTool
		m.ServiceName = strings.Join(op.labelWords, "_") // tool id
		m.Params = map[string]string{"version": fmt.Sprintf("1.%d", styleShift%3)}
		// Galaxy step labels are often left at their generic defaults
		// ("step_3"); the tool id remains informative. This is why
		// multi-attribute comparison (gw1) beats label-only comparison
		// (gll) on Galaxy, inverting the Taverna finding (Section 5.3).
		if r.Intn(5) < 2 {
			m.Label = fmt.Sprintf("step_%d", pos+1)
		}
	case op.scripted:
		m.Type = scriptSpellings()[r.Intn(len(scriptSpellings()))]
		m.Script = op.script
		if styleShift > 0 {
			m.Script += " // v" + fmt.Sprint(styleShift)
		}
	default:
		m.Type = wsdlSpellings()[r.Intn(len(wsdlSpellings()))]
		// Service endpoints churn across mirrors and deployments, so exact
		// URI matching (as in pw0's uniform weighting) is brittle even for
		// the same logical service; labels drift less. This is what makes
		// uniform attribute weights the worst module scheme (Section 5.1.2).
		switch r.Intn(3) {
		case 0:
			m.ServiceURI = op.uri
		case 1:
			m.ServiceURI = op.uri + "?wsdl"
		default:
			m.ServiceURI = strings.Replace(op.uri, "http://", "http://mirror.", 1)
		}
		m.ServiceName = op.service
		if r.Intn(4) == 0 {
			m.Authority = strings.ToUpper(op.authority)
		} else {
			m.Authority = op.authority
		}
	}
	return m
}

const numLabelStyles = 4

// renderLabel renders label words in a consistent per-operation base style;
// styleShift > 0 (relabeling mutations) switches style and may append a
// version suffix or drop a word — label drift that edit distance absorbs but
// strict matching does not.
func renderLabel(words []string, style, styleShift int) string {
	w := append([]string(nil), words...)
	if styleShift >= 2 && len(w) > 2 {
		w = w[:len(w)-1] // drop trailing word
	}
	var label string
	switch style % numLabelStyles {
	case 0:
		label = strings.Join(w, "_")
	case 1: // camelCase
		var b strings.Builder
		for i, word := range w {
			if i == 0 {
				b.WriteString(word)
				continue
			}
			b.WriteString(strings.ToUpper(word[:1]) + word[1:])
		}
		label = b.String()
	case 2: // TitleCase with underscores
		up := make([]string, len(w))
		for i, word := range w {
			up[i] = strings.ToUpper(word[:1]) + word[1:]
		}
		label = strings.Join(up, "_")
	default:
		label = strings.Join(w, " ")
	}
	if styleShift >= 3 {
		label += fmt.Sprintf("_%d", styleShift)
	}
	return label
}

func hashWords(words []string) int {
	h := 0
	for _, w := range words {
		for _, c := range w {
			h = (h*31 + int(c)) & 0x7fffffff
		}
	}
	return h
}

// annotate writes title, description and tags. Taverna-profile annotations
// are rich and cluster-coherent; Galaxy-profile annotations are sparse.
func (pr *prototype) annotate(r *rand.Rand, wf *workflow.Workflow, depth int, p Profile) {
	noise := noiseWords()
	if r.Float64() < p.TitleQuality {
		titleWords := append([]string(nil), pr.topics[:min(2, len(pr.topics))]...)
		titleWords = append(titleWords, noise[zipfPick(r, len(noise))])
		if depth >= 2 {
			titleWords = append(titleWords, noise[zipfPick(r, len(noise))])
		}
		wf.Annotations.Title = strings.Title(strings.Join(titleWords, " "))
	} else {
		wf.Annotations.Title = fmt.Sprintf("Unnamed %s %d", noise[zipfPick(r, len(noise))], r.Intn(100))
	}
	wf.Annotations.Author = fmt.Sprintf("author%02d", r.Intn(40))

	if r.Float64() < p.DescProb {
		var b strings.Builder
		fmt.Fprintf(&b, "This workflow performs %s using %s.",
			strings.Join(pr.topics, " "), pr.dom.name)
		for i := 0; i < 2; i++ {
			op := pr.ops[r.Intn(len(pr.ops))]
			fmt.Fprintf(&b, " It uses %s to process the %s data.",
				strings.Join(op.labelWords, " "), noise[zipfPick(r, len(noise))])
		}
		wf.Annotations.Description = b.String()
	}
	if r.Float64() < p.TagProb {
		nt := 2 + r.Intn(3)
		perm := r.Perm(len(pr.dom.topics))
		for i := 0; i < nt && i < len(perm); i++ {
			wf.Annotations.Tags = append(wf.Annotations.Tags, pr.dom.topics[perm[i]])
		}
		wf.Annotations.Tags = append(wf.Annotations.Tags, pr.dom.name)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mustEdge wires an edge between modules the generator itself just created.
// The indices are valid by construction, so a failure is a generator bug:
// panic instead of discarding the error.
func mustEdge(wf *workflow.Workflow, from, to int) {
	if err := wf.AddEdge(from, to); err != nil {
		panic(fmt.Sprintf("gen: internal edge %d->%d rejected: %v", from, to, err))
	}
}
