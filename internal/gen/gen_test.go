package gen

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/workflow"
)

func smallProfile() Profile {
	p := Taverna()
	p.Workflows = 120
	p.Clusters = 8
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	c1, err := Generate(smallProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(smallProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Repo.Size() != c2.Repo.Size() {
		t.Fatalf("sizes differ: %d vs %d", c1.Repo.Size(), c2.Repo.Size())
	}
	for _, wf1 := range c1.Repo.Workflows() {
		wf2 := c2.Repo.Get(wf1.ID)
		if wf2 == nil {
			t.Fatalf("workflow %s missing in second run", wf1.ID)
		}
		if wf1.Size() != wf2.Size() || wf1.EdgeCount() != wf2.EdgeCount() {
			t.Fatalf("workflow %s differs across runs", wf1.ID)
		}
		if wf1.Annotations.Title != wf2.Annotations.Title {
			t.Fatalf("title of %s differs across runs", wf1.ID)
		}
	}
}

func TestGenerateSizeAndValidity(t *testing.T) {
	c, err := Generate(smallProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Repo.Size() != 120 {
		t.Errorf("size = %d, want 120", c.Repo.Size())
	}
	if err := c.Repo.Validate(); err != nil {
		t.Errorf("invalid corpus: %v", err)
	}
	for _, wf := range c.Repo.Workflows() {
		if wf.Size() == 0 {
			t.Errorf("workflow %s empty", wf.ID)
		}
		if _, ok := c.Truth.Meta[wf.ID]; !ok {
			t.Errorf("workflow %s missing from truth", wf.ID)
		}
	}
}

func TestGenerateTavernaStatistics(t *testing.T) {
	c, err := Generate(Taverna(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Repo.Size() != 1483 {
		t.Fatalf("size = %d, want 1483", c.Repo.Size())
	}
	var modules, tagged, withDesc int
	typeSpellings := map[string]bool{}
	for _, wf := range c.Repo.Workflows() {
		modules += wf.Size()
		if len(wf.Annotations.Tags) > 0 {
			tagged++
		}
		if wf.Annotations.Description != "" {
			withDesc++
		}
		for _, m := range wf.Modules {
			typeSpellings[m.Type] = true
		}
	}
	mean := float64(modules) / float64(c.Repo.Size())
	if mean < 8 || mean > 15 {
		t.Errorf("mean modules/workflow = %.1f, want near the paper's 11.3", mean)
	}
	tagFrac := float64(tagged) / float64(c.Repo.Size())
	if tagFrac < 0.78 || tagFrac > 0.92 {
		t.Errorf("tagged fraction = %.2f, want ~0.85", tagFrac)
	}
	// Heterogeneous web-service spellings must occur.
	found := 0
	for _, sp := range wsdlSpellings() {
		if typeSpellings[sp] {
			found++
		}
	}
	if found < 3 {
		t.Errorf("only %d wsdl spellings in corpus, want >= 3", found)
	}
}

func TestGenerateGalaxySparseAnnotations(t *testing.T) {
	c, err := Generate(Galaxy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Repo.Size() != 139 {
		t.Fatalf("size = %d, want 139", c.Repo.Size())
	}
	var withDesc int
	for _, wf := range c.Repo.Workflows() {
		if wf.Annotations.Description != "" {
			withDesc++
		}
		for _, m := range wf.Modules {
			if !m.IsLocal() && m.Type != workflow.TypeTool {
				t.Fatalf("galaxy module with type %q", m.Type)
			}
		}
	}
	frac := float64(withDesc) / float64(c.Repo.Size())
	if frac > 0.3 {
		t.Errorf("description fraction = %.2f, want sparse (< 0.3)", frac)
	}
}

func TestTruthStructure(t *testing.T) {
	c, err := Generate(smallProfile(), 13)
	if err != nil {
		t.Fatal(err)
	}
	tr := c.Truth
	// Group IDs by cluster and domain.
	byCluster := map[int][]string{}
	byDomain := map[int][]string{}
	for id, m := range tr.Meta {
		byCluster[m.Cluster] = append(byCluster[m.Cluster], id)
		byDomain[m.Domain] = append(byDomain[m.Domain], id)
	}
	// Intra-cluster similarity must dominate cross-domain similarity.
	var intra, cross []float64
	for _, ids := range byCluster {
		if len(ids) >= 2 {
			intra = append(intra, tr.Sim(ids[0], ids[1]))
		}
	}
	for id1, m1 := range tr.Meta {
		for id2, m2 := range tr.Meta {
			if m1.Domain != m2.Domain {
				cross = append(cross, tr.Sim(id1, id2))
				break
			}
		}
		break
	}
	for _, v := range intra {
		if v < 0.4 {
			t.Errorf("intra-cluster truth %v too low", v)
		}
	}
	for _, v := range cross {
		if v > 0.15 {
			t.Errorf("cross-domain truth %v too high", v)
		}
	}
	if got := tr.Sim("1000", "1000"); got != 1 {
		t.Errorf("self truth = %v, want 1", got)
	}
	if got := tr.Sim("nope", "1000"); got != 0 {
		t.Errorf("unknown truth = %v, want 0", got)
	}
}

func TestTruthSymmetricDeterministic(t *testing.T) {
	c, _ := Generate(smallProfile(), 3)
	ids := c.Repo.IDs()
	for i := 0; i < 20; i++ {
		a, b := ids[i], ids[len(ids)-1-i]
		if c.Truth.Sim(a, b) != c.Truth.Sim(b, a) {
			t.Fatalf("truth asymmetric for (%s,%s)", a, b)
		}
	}
}

// The generated corpus must be discriminable by the similarity measures:
// same-cluster pairs should score above cross-domain pairs on average for
// both structural and annotation measures. This is the linchpin of the
// whole evaluation pipeline.
func TestGeneratedCorpusDiscriminable(t *testing.T) {
	c, err := Generate(smallProfile(), 5)
	if err != nil {
		t.Fatal(err)
	}
	byCluster := map[int][]string{}
	for id, m := range c.Truth.Meta {
		byCluster[m.Cluster] = append(byCluster[m.Cluster], id)
	}
	ms := measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Normalize: true,
	})
	bw := measures.BagOfWords{}

	var sameMS, crossMS, sameBW, crossBW []float64
	count := 0
	for _, ids := range byCluster {
		if len(ids) < 2 || count >= 6 {
			continue
		}
		count++
		a := c.Repo.Get(ids[0])
		b := c.Repo.Get(ids[1])
		s, _ := ms.Compare(a, b)
		sameMS = append(sameMS, s)
		s, _ = bw.Compare(a, b)
		sameBW = append(sameBW, s)
		// Cross-domain partner.
		ma := c.Truth.Meta[ids[0]]
		for id2, m2 := range c.Truth.Meta {
			if m2.Domain != ma.Domain {
				x := c.Repo.Get(id2)
				s, _ := ms.Compare(a, x)
				crossMS = append(crossMS, s)
				s, _ = bw.Compare(a, x)
				crossBW = append(crossBW, s)
				break
			}
		}
	}
	if mean(sameMS) <= mean(crossMS) {
		t.Errorf("MS cannot discriminate: same %.3f vs cross %.3f", mean(sameMS), mean(crossMS))
	}
	if mean(sameBW) <= mean(crossBW) {
		t.Errorf("BW cannot discriminate: same %.3f vs cross %.3f", mean(sameBW), mean(crossBW))
	}
}

// Labels in the same cluster must drift (case/style variants) so that edit
// distance beats strict matching — a precondition for the paper's pll vs
// plm finding.
func TestLabelDriftWithinClusters(t *testing.T) {
	c, err := Generate(smallProfile(), 11)
	if err != nil {
		t.Fatal(err)
	}
	byCluster := map[int][]string{}
	for id, m := range c.Truth.Meta {
		byCluster[m.Cluster] = append(byCluster[m.Cluster], id)
	}
	drifted := 0
	for _, ids := range byCluster {
		if len(ids) < 4 {
			continue
		}
		labels := map[string]bool{}
		for _, id := range ids {
			for _, m := range c.Repo.Get(id).Modules {
				if !m.IsLocal() {
					labels[strings.ToLower(m.Label)] = true
				}
			}
		}
		if len(labels) > 4 { // more label variants than core ops implies drift
			drifted++
		}
	}
	if drifted == 0 {
		t.Error("no cluster exhibits label drift")
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// The vocabulary draws behind mutations, shims and annotation words follow
// a Zipf distribution: the head of a pool must dominate its tail, and every
// element must remain reachable.
func TestZipfPickSkewAndCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n, draws = 20, 20000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := zipfPick(r, n)
		if k < 0 || k >= n {
			t.Fatalf("zipfPick out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[n-1]*3 {
		t.Errorf("head not dominant: counts[0]=%d counts[%d]=%d", counts[0], n-1, counts[n-1])
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("pool element %d never drawn in %d draws", i, draws)
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max != counts[0] {
		t.Errorf("mode is not the first element: counts=%v", counts[:5])
	}
	// Degenerate pools stay total and consume the stream consistently.
	if zipfPick(r, 1) != 0 || zipfPick(r, 0) != 0 {
		t.Error("degenerate pool sizes must yield index 0")
	}
}

// Zipf-skewed shim vocabulary shows up in generated corpora: the most
// common canonical shim label is used far more often than the median one.
func TestGeneratedShimLabelsSkewed(t *testing.T) {
	c, err := Generate(smallProfile(), 11)
	if err != nil {
		t.Fatal(err)
	}
	freq := map[string]int{}
	for _, wf := range c.Repo.Workflows() {
		for _, m := range wf.Modules {
			switch m.Type {
			case workflow.TypeLocalWorker, workflow.TypeStringConst, workflow.TypeXMLSplitter, workflow.TypeXMLMerger:
				freq[workflow.CanonicalLabel(m.Label)]++
			}
		}
	}
	if len(freq) < 3 {
		t.Skipf("too few shim labels to measure skew: %d", len(freq))
	}
	counts := make([]int, 0, len(freq))
	for _, n := range freq {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if counts[0] < 2*counts[len(counts)/2] {
		t.Errorf("shim label distribution not head-skewed: top=%d median=%d", counts[0], counts[len(counts)/2])
	}
}
