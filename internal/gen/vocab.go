// Package gen generates synthetic scientific-workflow corpora that stand in
// for the paper's myExperiment (1483 Taverna workflows) and Galaxy (139
// workflows) datasets, which are not redistributable here. The generator
// reproduces the statistical properties the similarity algorithms are
// sensitive to — heterogeneous module labels for the same operation, varying
// web-service type spellings, trivial shim modules, clustered functionality,
// annotation richness (Taverna) vs. sparsity (Galaxy) — and records latent
// ground-truth similarity used to simulate expert raters. See DESIGN.md for
// the substitution argument.
package gen

// domain is a scientific field whose clusters share vocabulary and service
// providers; workflows from the same domain but different clusters are
// "related", not "similar".
type domain struct {
	name       string
	topics     []string    // words for titles, descriptions and tags
	operations []operation // pool of data-processing operations
}

// operation is an abstract data-processing step a cluster pipeline can use.
type operation struct {
	labelWords []string // words combined into module labels
	authority  string   // service provider
	service    string   // service operation name
	uri        string   // service endpoint
	scripted   bool     // realised as a script module instead of a service
	script     string
}

// shim is a trivial local operation inserted as structural noise. These are
// the high-frequency, unspecific modules the importance projection removes.
type shim struct {
	label string
	typ   string
}

func shimBank() []shim {
	return []shim{
		{"split_string", "localworker"},
		{"string_constant", "stringconstant"},
		{"flatten_list", "localworker"},
		{"merge_string_list", "localworker"},
		{"concatenate_strings", "localworker"},
		{"xml_splitter", "xmlsplitter"},
		{"xml_merger", "xmlmerger"},
		{"byte_array_to_string", "localworker"},
		{"remove_duplicates", "localworker"},
		{"extract_element", "xmlsplitter"},
	}
}

// noiseWords pad titles and descriptions without carrying signal.
func noiseWords() []string {
	return []string{
		"workflow", "analysis", "data", "result", "input", "output",
		"simple", "example", "test", "updated", "version", "final",
		"pipeline", "service", "list", "annotated", "basic",
	}
}

func domains() []domain {
	return []domain{
		{
			name:   "pathways",
			topics: []string{"kegg", "pathway", "gene", "entrez", "compound", "enzyme", "metabolic", "map"},
			operations: []operation{
				{labelWords: []string{"get", "pathways", "by", "genes"}, authority: "kegg", service: "get_pathways_by_genes", uri: "http://soap.genome.jp/KEGG.wsdl"},
				{labelWords: []string{"get", "genes", "by", "pathway"}, authority: "kegg", service: "get_genes_by_pathway", uri: "http://soap.genome.jp/KEGG.wsdl"},
				{labelWords: []string{"get", "compounds", "by", "pathway"}, authority: "kegg", service: "get_compounds_by_pathway", uri: "http://soap.genome.jp/KEGG.wsdl"},
				{labelWords: []string{"color", "pathway", "by", "objects"}, authority: "kegg", service: "color_pathway_by_objects", uri: "http://soap.genome.jp/KEGG.wsdl"},
				{labelWords: []string{"convert", "entrez", "to", "kegg", "id"}, scripted: true, script: "ids = map(entrez2kegg, input);"},
				{labelWords: []string{"get", "enzymes", "by", "compound"}, authority: "kegg", service: "get_enzymes_by_compound", uri: "http://soap.genome.jp/KEGG.wsdl"},
				{labelWords: []string{"render", "pathway", "image"}, scripted: true, script: "img = render(pathway);"},
				{labelWords: []string{"fetch", "gene", "annotation"}, authority: "ncbi", service: "efetch_gene", uri: "http://eutils.ncbi.nlm.nih.gov/soap/eutils.wsdl"},
			},
		},
		{
			name:   "alignment",
			topics: []string{"blast", "sequence", "alignment", "protein", "swissprot", "similarity", "hit", "homolog"},
			operations: []operation{
				{labelWords: []string{"fetch", "sequence"}, authority: "ebi", service: "fetchData", uri: "http://www.ebi.ac.uk/ws/services/urn:Dbfetch"},
				{labelWords: []string{"run", "ncbi", "blast"}, authority: "ebi", service: "runNCBIBlast", uri: "http://www.ebi.ac.uk/ws/services/WSNCBIBlast"},
				{labelWords: []string{"run", "wu", "blast"}, authority: "ebi", service: "runWUBlast", uri: "http://www.ebi.ac.uk/ws/services/WSWUBlast"},
				{labelWords: []string{"poll", "job", "status"}, authority: "ebi", service: "checkStatus", uri: "http://www.ebi.ac.uk/ws/services/WSWUBlast"},
				{labelWords: []string{"parse", "blast", "report"}, scripted: true, script: "hits = parseBlast(report);"},
				{labelWords: []string{"filter", "hits", "by", "evalue"}, scripted: true, script: "hits[hits$eval < 1e-5,]"},
				{labelWords: []string{"clustalw", "multiple", "alignment"}, authority: "ebi", service: "runClustalW", uri: "http://www.ebi.ac.uk/ws/services/WSClustalW"},
				{labelWords: []string{"get", "fasta", "from", "uniprot"}, authority: "uniprot", service: "getFasta", uri: "http://www.uniprot.org/ws/fasta.wsdl"},
			},
		},
		{
			name:   "proteomics",
			topics: []string{"protein", "interpro", "domain", "motif", "structure", "pdb", "scan", "family"},
			operations: []operation{
				{labelWords: []string{"interproscan", "sequence"}, authority: "ebi", service: "runInterProScan", uri: "http://www.ebi.ac.uk/ws/services/WSInterProScan"},
				{labelWords: []string{"get", "pdb", "structure"}, authority: "pdb", service: "getStructure", uri: "http://www.rcsb.org/pdb/services/pdbws.wsdl"},
				{labelWords: []string{"extract", "domains"}, scripted: true, script: "domains = extract(scan);"},
				{labelWords: []string{"map", "uniprot", "accession"}, authority: "uniprot", service: "mapAccession", uri: "http://www.uniprot.org/ws/mapping.wsdl"},
				{labelWords: []string{"predict", "secondary", "structure"}, authority: "ebi", service: "runJpred", uri: "http://www.compbio.dundee.ac.uk/jpred.wsdl"},
				{labelWords: []string{"summarise", "motif", "hits"}, scripted: true, script: "summary(motifs)"},
			},
		},
		{
			name:   "expression",
			topics: []string{"microarray", "expression", "probe", "affymetrix", "normalize", "differential", "chip"},
			operations: []operation{
				{labelWords: []string{"load", "cel", "files"}, scripted: true, script: "data = ReadAffy();"},
				{labelWords: []string{"normalize", "rma"}, scripted: true, script: "eset = rma(data);"},
				{labelWords: []string{"fit", "linear", "model"}, scripted: true, script: "fit = lmFit(eset, design);"},
				{labelWords: []string{"get", "probe", "annotation"}, authority: "biomart", service: "getAnnotation", uri: "http://www.biomart.org/biomart/martservice.wsdl"},
				{labelWords: []string{"select", "differential", "genes"}, scripted: true, script: "topTable(fit)"},
				{labelWords: []string{"plot", "heatmap"}, scripted: true, script: "heatmap(exprs)"},
			},
		},
		{
			name:   "phylogenetics",
			topics: []string{"tree", "phylogeny", "taxonomy", "species", "newick", "distance", "evolution"},
			operations: []operation{
				{labelWords: []string{"fetch", "taxonomy", "lineage"}, authority: "ncbi", service: "efetch_taxonomy", uri: "http://eutils.ncbi.nlm.nih.gov/soap/eutils.wsdl"},
				{labelWords: []string{"compute", "distance", "matrix"}, scripted: true, script: "d = distMatrix(aln);"},
				{labelWords: []string{"build", "neighbor", "joining", "tree"}, scripted: true, script: "tree = nj(d);"},
				{labelWords: []string{"draw", "phylogram"}, scripted: true, script: "plot(tree)"},
				{labelWords: []string{"run", "muscle", "alignment"}, authority: "ebi", service: "runMuscle", uri: "http://www.ebi.ac.uk/ws/services/WSMuscle"},
			},
		},
		{
			name:   "astronomy",
			topics: []string{"image", "catalog", "survey", "magnitude", "coordinates", "fits", "photometry"},
			operations: []operation{
				{labelWords: []string{"query", "vizier", "catalog"}, authority: "cds", service: "queryVizieR", uri: "http://vizier.u-strasbg.fr/viz-bin/votable.wsdl"},
				{labelWords: []string{"cone", "search"}, authority: "ivoa", service: "coneSearch", uri: "http://www.ivoa.net/cone.wsdl"},
				{labelWords: []string{"convert", "coordinates"}, scripted: true, script: "radec = convert(coords);"},
				{labelWords: []string{"crossmatch", "sources"}, scripted: true, script: "xmatch(a, b)"},
				{labelWords: []string{"plot", "lightcurve"}, scripted: true, script: "plot(lc)"},
			},
		},
	}
}

// wsdlSpellings are the heterogeneous Taverna type identifiers for
// web-service modules; the generator picks one per module instance,
// reproducing the heterogeneity that motivates type-equivalence classes.
func wsdlSpellings() []string {
	return []string{"wsdl", "arbitrarywsdl", "soaplabwsdl", "biomobywsdl"}
}

// scriptSpellings are the type identifiers for scripted modules.
func scriptSpellings() []string {
	return []string{"beanshell", "rshell", "script"}
}
