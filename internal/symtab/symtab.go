// Package symtab provides a concurrent, append-only string↔ID symbol
// table. IDs are dense uint32 values handed out in interning order, so a
// table that re-interns the same strings in the same order reproduces the
// same IDs — the property the storage layer relies on to keep symbol IDs
// stable across restarts.
//
// ID 0 is reserved for the empty string. A zero symbol therefore renders
// as "" everywhere, which is exactly what a zero-value module should print
// (never a placeholder like "<sym:0>").
package symtab

import "sync"

// Table is a concurrent append-only symbol table. The zero value is not
// usable; call New.
type Table struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

// New returns an empty table with the empty string pre-interned as ID 0.
func New() *Table {
	t := &Table{ids: make(map[string]uint32, 64)}
	t.ids[""] = 0
	t.strs = append(t.strs, "")
	return t
}

// Intern returns the ID for s, assigning the next dense ID if s has not
// been seen before. IDs are never reused or reassigned.
func (t *Table) Intern(s string) uint32 {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = uint32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns the ID for s without interning. The second result is
// false when s has never been interned.
func (t *Table) Lookup(s string) (uint32, bool) {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	return id, ok
}

// String resolves an ID back to its string. Unknown IDs — including the
// zero ID of an unresolved module — resolve to the empty string, so
// rendering through the table can never leak a "<sym:N>" placeholder.
func (t *Table) String(id uint32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.strs) {
		return ""
	}
	return t.strs[id]
}

// Len returns the number of interned symbols, including the reserved
// empty string at ID 0.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs)
}

// Symbols returns a copy of the symbol list in ID order (index == ID).
func (t *Table) Symbols() []string {
	return t.SymbolsFrom(0)
}

// SymbolsFrom returns a copy of the symbols with IDs >= from, in ID
// order. It is the delta primitive the write-ahead log uses: a store that
// has persisted the first hw symbols appends SymbolsFrom(hw) to its next
// record, so each store's persisted symbol sequence is a contiguous
// prefix of the table's interning order.
func (t *Table) SymbolsFrom(from int) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.strs) {
		return nil
	}
	out := make([]string, len(t.strs)-from)
	copy(out, t.strs[from:])
	return out
}
