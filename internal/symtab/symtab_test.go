package symtab

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternAssignsDenseStableIDs(t *testing.T) {
	tab := New()
	if got := tab.Len(); got != 1 {
		t.Fatalf("new table Len = %d, want 1 (reserved empty string)", got)
	}
	if id := tab.Intern(""); id != 0 {
		t.Fatalf(`Intern("") = %d, want 0`, id)
	}

	words := []string{"fetch_sequence", "run_blast", "plot_hits"}
	for i, w := range words {
		if id := tab.Intern(w); id != uint32(i+1) {
			t.Fatalf("Intern(%q) = %d, want %d (dense assignment order)", w, id, i+1)
		}
	}
	// Re-interning never reassigns.
	for i, w := range words {
		if id := tab.Intern(w); id != uint32(i+1) {
			t.Fatalf("re-Intern(%q) = %d, want %d", w, id, i+1)
		}
	}
	if id, ok := tab.Lookup("run_blast"); !ok || id != 2 {
		t.Fatalf("Lookup(run_blast) = %d,%v, want 2,true", id, ok)
	}
	if _, ok := tab.Lookup("never_seen"); ok {
		t.Fatal("Lookup of unseen string reported ok")
	}
	if got := tab.String(2); got != "run_blast" {
		t.Fatalf("String(2) = %q", got)
	}
	// Zero and out-of-range IDs render as "", never a placeholder.
	if tab.String(0) != "" || tab.String(99) != "" {
		t.Error(`String(0) and String(out-of-range) must be ""`)
	}
}

// Re-interning the same strings in the same order into a fresh table
// reproduces the same IDs — the restart-stability property storage relies on.
func TestReplayReproducesIDs(t *testing.T) {
	a := New()
	for i := 0; i < 100; i++ {
		a.Intern(fmt.Sprintf("sym_%d", i%40)) // duplicates interleaved
	}
	b := New()
	for _, s := range a.Symbols() {
		b.Intern(s)
	}
	if a.Len() != b.Len() {
		t.Fatalf("replayed table has %d symbols, want %d", b.Len(), a.Len())
	}
	for i, s := range a.Symbols() {
		if id, ok := b.Lookup(s); !ok || id != uint32(i) {
			t.Fatalf("symbol %q: replayed ID %d, want %d", s, id, i)
		}
	}
}

func TestSymbolsFromDelta(t *testing.T) {
	tab := New()
	tab.Intern("a")
	tab.Intern("b")
	hw := tab.Len()
	tab.Intern("c")
	tab.Intern("d")

	delta := tab.SymbolsFrom(hw)
	if len(delta) != 2 || delta[0] != "c" || delta[1] != "d" {
		t.Fatalf("SymbolsFrom(%d) = %v, want [c d]", hw, delta)
	}
	if got := tab.SymbolsFrom(tab.Len()); got != nil {
		t.Fatalf("SymbolsFrom(Len) = %v, want nil", got)
	}
	if got := tab.SymbolsFrom(-5); len(got) != tab.Len() {
		t.Fatalf("SymbolsFrom(-5) returned %d symbols, want all %d", len(got), tab.Len())
	}
	// The returned slices are copies: mutating one must not corrupt the table.
	all := tab.Symbols()
	all[1] = "mutated"
	if tab.String(1) != "a" {
		t.Error("Symbols() aliases the table's backing array")
	}
}

// Concurrent interning of an overlapping vocabulary must stay consistent:
// one ID per string, dense ID space, Len symbols total.
func TestConcurrentIntern(t *testing.T) {
	tab := New()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	ids := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint32, perWorker)
			for i := 0; i < perWorker; i++ {
				ids[w][i] = tab.Intern(fmt.Sprintf("sym_%d", (i+w)%300))
			}
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			s := fmt.Sprintf("sym_%d", (i+w)%300)
			if id, ok := tab.Lookup(s); !ok || id != ids[w][i] {
				t.Fatalf("worker %d saw ID %d for %q, table says %d", w, ids[w][i], s, id)
			}
		}
	}
	if tab.Len() != 301 { // 300 distinct strings + reserved ""
		t.Fatalf("Len = %d, want 301", tab.Len())
	}
	seen := map[string]bool{}
	for i, s := range tab.Symbols() {
		if seen[s] {
			t.Fatalf("symbol %q appears twice (second at ID %d)", s, i)
		}
		seen[s] = true
	}
}
