// Package matching implements the module-mapping strategies of Section 2.1.2
// of Starlinger et al. (PVLDB 2014): greedy selection of mapped modules,
// maximum-weight bipartite matching (mw), and maximum-weight non-crossing
// matching (mwnc, Malucelli/Ottmann/Pretolani 1993) for ordered
// decompositions such as paths.
//
// All strategies operate on a dense weight matrix w[i][j] >= 0 giving the
// similarity of left element i to right element j. Pairs of weight 0 are
// never part of a returned matching: a zero-similarity mapping carries no
// information and would only distort additive scores.
package matching

import "sort"

// Pair maps left element I to right element J with similarity Weight.
type Pair struct {
	I, J   int
	Weight float64
}

// Matching is a set of pairwise disjoint Pairs.
type Matching []Pair

// TotalWeight returns the additive similarity score of the matching —
// the nnsim of the paper's set-based measures.
func (m Matching) TotalWeight() float64 {
	var s float64
	for _, p := range m {
		s += p.Weight
	}
	return s
}

// Weights is a dense similarity matrix: Weights[i][j] is the similarity of
// left element i to right element j. Rows must have equal length.
type Weights [][]float64

// Dims returns the matrix dimensions (rows, cols).
func (w Weights) Dims() (int, int) {
	if len(w) == 0 {
		return 0, 0
	}
	return len(w), len(w[0])
}

// Greedy computes a matching by repeatedly selecting the highest-weight
// still-available pair, as used by Silva et al. for Module Sets comparison.
// Ties are broken by lower (i, then j) for determinism.
func Greedy(w Weights) Matching {
	n, m := w.Dims()
	if n == 0 || m == 0 {
		return nil
	}
	type cand struct {
		i, j int
		wt   float64
	}
	cands := make([]cand, 0, n*m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if w[i][j] > 0 {
				cands = append(cands, cand{i, j, w[i][j]})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].wt != cands[b].wt {
			return cands[a].wt > cands[b].wt
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	usedI := make([]bool, n)
	usedJ := make([]bool, m)
	var out Matching
	for _, c := range cands {
		if usedI[c.i] || usedJ[c.j] {
			continue
		}
		usedI[c.i], usedJ[c.j] = true, true
		out = append(out, Pair{I: c.i, J: c.j, Weight: c.wt})
	}
	sortMatching(out)
	return out
}

// MaxWeight computes a maximum-weight bipartite matching (the paper's mw)
// using the Hungarian algorithm with potentials in O(n^3). The matrix need
// not be square; it is implicitly padded with zero-weight dummy elements.
// Zero-weight assignments are dropped from the result, so the returned
// matching maximises total weight over all (partial) matchings.
func MaxWeight(w Weights) Matching {
	n, m := w.Dims()
	if n == 0 || m == 0 {
		return nil
	}
	size := n
	if m > size {
		size = m
	}
	// Hungarian algorithm solves min-cost assignment; negate weights.
	// cost is 1-indexed per the classic potentials formulation.
	const inf = 1e18
	cost := make([][]float64, size+1)
	for i := range cost {
		cost[i] = make([]float64, size+1)
	}
	for i := 1; i <= size; i++ {
		for j := 1; j <= size; j++ {
			if i <= n && j <= m {
				cost[i][j] = -w[i-1][j-1]
			}
		}
	}
	u := make([]float64, size+1)
	v := make([]float64, size+1)
	p := make([]int, size+1) // p[j] = row assigned to column j
	way := make([]int, size+1)
	for i := 1; i <= size; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, size+1)
		used := make([]bool, size+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0, delta, j1 := p[j0], inf, 0
			for j := 1; j <= size; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= size; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	var out Matching
	for j := 1; j <= size; j++ {
		i := p[j]
		if i >= 1 && i <= n && j <= m && w[i-1][j-1] > 0 {
			out = append(out, Pair{I: i - 1, J: j - 1, Weight: w[i-1][j-1]})
		}
	}
	sortMatching(out)
	return out
}

// MaxWeightNonCrossing computes the maximum-weight non-crossing matching
// (the paper's mwnc) between two ordered sequences: the result never
// contains pairs (i,j) and (i+x, j-y) with x,y >= 1. This is the classic
// O(n*m) alignment DP:
//
//	f[i][j] = max(f[i-1][j], f[i][j-1], f[i-1][j-1] + w[i-1][j-1])
//
// with zero-weight pairs excluded from the reconstruction.
func MaxWeightNonCrossing(w Weights) Matching {
	n, m := w.Dims()
	if n == 0 || m == 0 {
		return nil
	}
	f := make([][]float64, n+1)
	for i := range f {
		f[i] = make([]float64, m+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := f[i-1][j]
			if f[i][j-1] > best {
				best = f[i][j-1]
			}
			if d := f[i-1][j-1] + w[i-1][j-1]; d > best {
				best = d
			}
			f[i][j] = best
		}
	}
	// Reconstruct, preferring the diagonal when it attains the optimum and
	// carries positive weight.
	var out Matching
	i, j := n, m
	for i > 0 && j > 0 {
		switch {
		case w[i-1][j-1] > 0 && f[i][j] == f[i-1][j-1]+w[i-1][j-1]:
			out = append(out, Pair{I: i - 1, J: j - 1, Weight: w[i-1][j-1]})
			i--
			j--
		case f[i][j] == f[i-1][j]:
			i--
		default:
			j--
		}
	}
	// Reverse into ascending order.
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	return out
}

func sortMatching(m Matching) {
	sort.Slice(m, func(a, b int) bool { return m[a].I < m[b].I })
}

// IsNonCrossing reports whether the matching, when sorted by I, has strictly
// increasing J — i.e. contains no crossing pairs.
func (m Matching) IsNonCrossing() bool {
	s := append(Matching(nil), m...)
	sortMatching(s)
	for k := 1; k < len(s); k++ {
		if s[k].J <= s[k-1].J {
			return false
		}
	}
	return true
}

// IsValid reports whether no left or right element is matched twice and all
// indexes are within the given dimensions.
func (m Matching) IsValid(n, mcols int) bool {
	seenI := map[int]bool{}
	seenJ := map[int]bool{}
	for _, p := range m {
		if p.I < 0 || p.I >= n || p.J < 0 || p.J >= mcols {
			return false
		}
		if seenI[p.I] || seenJ[p.J] {
			return false
		}
		seenI[p.I] = true
		seenJ[p.J] = true
	}
	return true
}
