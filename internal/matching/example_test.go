package matching_test

import (
	"fmt"

	"repro/internal/matching"
)

// ExampleMaxWeight shows why maximum-weight matching can beat greedy
// selection: taking the single best pair first can block a better total.
func ExampleMaxWeight() {
	w := matching.Weights{
		{0.9, 0.8},
		{0.8, 0.1},
	}
	fmt.Printf("greedy    %.1f\n", matching.Greedy(w).TotalWeight())
	fmt.Printf("maxweight %.1f\n", matching.MaxWeight(w).TotalWeight())
	// Output:
	// greedy    1.0
	// maxweight 1.6
}

// ExampleMaxWeightNonCrossing aligns two ordered sequences (e.g. the modules
// along two workflow paths) without crossing pairs.
func ExampleMaxWeightNonCrossing() {
	// Crossing pairs (0→1) and (1→0) cannot both be taken.
	w := matching.Weights{
		{0, 1},
		{1, 0},
	}
	m := matching.MaxWeightNonCrossing(w)
	fmt.Printf("total %.0f, non-crossing %v\n", m.TotalWeight(), m.IsNonCrossing())
	// Output: total 1, non-crossing true
}
