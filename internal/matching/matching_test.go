package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceMax finds the true maximum-weight matching by exhaustive search
// over all subsets of assignments (feasible only for tiny matrices).
func bruteForceMax(w Weights) float64 {
	n, m := w.Dims()
	best := 0.0
	var rec func(i int, usedJ int, acc float64)
	rec = func(i int, usedJ int, acc float64) {
		if acc > best {
			best = acc
		}
		if i >= n {
			return
		}
		rec(i+1, usedJ, acc) // leave row i unmatched
		for j := 0; j < m; j++ {
			if usedJ&(1<<uint(j)) == 0 && w[i][j] > 0 {
				rec(i+1, usedJ|1<<uint(j), acc+w[i][j])
			}
		}
	}
	rec(0, 0, 0)
	return best
}

// bruteForceMWNC finds the true maximum-weight non-crossing matching.
func bruteForceMWNC(w Weights) float64 {
	n, m := w.Dims()
	best := 0.0
	var rec func(i, j int, acc float64)
	rec = func(i, j int, acc float64) {
		if acc > best {
			best = acc
		}
		for a := i; a < n; a++ {
			for b := j; b < m; b++ {
				if w[a][b] > 0 {
					rec(a+1, b+1, acc+w[a][b])
				}
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func randWeights(r *rand.Rand, n, m int) Weights {
	w := make(Weights, n)
	for i := range w {
		w[i] = make([]float64, m)
		for j := range w[i] {
			if r.Intn(3) > 0 {
				w[i][j] = float64(r.Intn(10)) / 10
			}
		}
	}
	return w
}

func TestMaxWeightSimple(t *testing.T) {
	// Greedy would pick (0,0)=0.9 then (1,1)=0.1 for 1.0;
	// optimum is (0,1)=0.8 + (1,0)=0.8 = 1.6.
	w := Weights{
		{0.9, 0.8},
		{0.8, 0.1},
	}
	m := MaxWeight(w)
	if got := m.TotalWeight(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("MaxWeight total = %v, want 1.6 (matching %v)", got, m)
	}
	g := Greedy(w)
	if got := g.TotalWeight(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Greedy total = %v, want 1.0 (matching %v)", got, g)
	}
}

func TestMaxWeightRectangular(t *testing.T) {
	// 1 row, 3 cols and vice versa.
	w := Weights{{0.2, 0.9, 0.5}}
	m := MaxWeight(w)
	if len(m) != 1 || m[0].J != 1 {
		t.Errorf("matching = %v, want single pair (0,1)", m)
	}
	wt := Weights{{0.2}, {0.9}, {0.5}}
	m = MaxWeight(wt)
	if len(m) != 1 || m[0].I != 1 {
		t.Errorf("matching = %v, want single pair (1,0)", m)
	}
}

func TestMaxWeightZeroOmitted(t *testing.T) {
	w := Weights{
		{1, 0},
		{0, 0},
	}
	m := MaxWeight(w)
	if len(m) != 1 {
		t.Fatalf("matching = %v, want exactly one pair", m)
	}
	if m[0].I != 0 || m[0].J != 0 {
		t.Errorf("pair = %v, want (0,0)", m[0])
	}
}

func TestEmptyInputs(t *testing.T) {
	if m := MaxWeight(nil); m != nil {
		t.Errorf("MaxWeight(nil) = %v", m)
	}
	if m := Greedy(Weights{}); m != nil {
		t.Errorf("Greedy(empty) = %v", m)
	}
	if m := MaxWeightNonCrossing(nil); m != nil {
		t.Errorf("MWNC(nil) = %v", m)
	}
}

func TestMaxWeightNonCrossingSimple(t *testing.T) {
	// Crossing pairs (0,1) and (1,0) both weight 1; non-crossing optimum
	// can take only one of them.
	w := Weights{
		{0, 1},
		{1, 0},
	}
	m := MaxWeightNonCrossing(w)
	if got := m.TotalWeight(); got != 1 {
		t.Errorf("MWNC total = %v, want 1 (matching %v)", got, m)
	}
	if !m.IsNonCrossing() {
		t.Errorf("MWNC produced crossing matching %v", m)
	}
	// Diagonal is non-crossing and fully matchable.
	w = Weights{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
	}
	m = MaxWeightNonCrossing(w)
	if got := m.TotalWeight(); got != 3 {
		t.Errorf("diag MWNC total = %v, want 3", got)
	}
}

func TestPropertyMaxWeightOptimalVsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := r.Intn(5)+1, r.Intn(5)+1
		w := randWeights(r, n, m)
		got := MaxWeight(w)
		if !got.IsValid(n, m) {
			return false
		}
		return math.Abs(got.TotalWeight()-bruteForceMax(w)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMWNCOptimalVsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := r.Intn(5)+1, r.Intn(5)+1
		w := randWeights(r, n, m)
		got := MaxWeightNonCrossing(w)
		if !got.IsValid(n, m) || !got.IsNonCrossing() {
			return false
		}
		return math.Abs(got.TotalWeight()-bruteForceMWNC(w)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGreedyValidAndBoundedByOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := r.Intn(6)+1, r.Intn(6)+1
		w := randWeights(r, n, m)
		g := Greedy(w)
		if !g.IsValid(n, m) {
			return false
		}
		opt := MaxWeight(w).TotalWeight()
		// Greedy is a 1/2-approximation for weighted matching.
		return g.TotalWeight() <= opt+1e-9 && g.TotalWeight() >= opt/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMWNCBoundedByMaxWeight(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := r.Intn(6)+1, r.Intn(6)+1
		w := randWeights(r, n, m)
		return MaxWeightNonCrossing(w).TotalWeight() <= MaxWeight(w).TotalWeight()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsNonCrossing(t *testing.T) {
	if !(Matching{{I: 0, J: 0}, {I: 1, J: 2}}).IsNonCrossing() {
		t.Error("increasing matching misreported as crossing")
	}
	if (Matching{{I: 0, J: 2}, {I: 1, J: 0}}).IsNonCrossing() {
		t.Error("crossing matching misreported as non-crossing")
	}
}

func TestIsValid(t *testing.T) {
	if !(Matching{{I: 0, J: 1}, {I: 1, J: 0}}).IsValid(2, 2) {
		t.Error("valid matching rejected")
	}
	if (Matching{{I: 0, J: 0}, {I: 0, J: 1}}).IsValid(2, 2) {
		t.Error("duplicate left index accepted")
	}
	if (Matching{{I: 0, J: 5}}).IsValid(2, 2) {
		t.Error("out-of-range index accepted")
	}
}

func BenchmarkMaxWeight10x10(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	w := randWeights(r, 10, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxWeight(w)
	}
}

func BenchmarkMaxWeight50x50(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	w := randWeights(r, 50, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxWeight(w)
	}
}

func BenchmarkGreedy50x50(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	w := randWeights(r, 50, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Greedy(w)
	}
}

func BenchmarkMWNC50x50(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	w := randWeights(r, 50, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxWeightNonCrossing(w)
	}
}
