package module

import (
	"repro/internal/matching"
	"repro/internal/workflow"
)

// Preselect is a module-pair preselection strategy (Section 2.1.5): it
// decides which pairs from the Cartesian product of two module sets are
// candidates for comparison at all. Excluded pairs receive similarity 0
// without being compared, which both restricts the mapping and reduces
// runtime (the paper reports a 2.3x reduction in pairwise comparisons
// for type equivalence).
type Preselect int

const (
	// AllPairs compares every pair (the paper's "ta").
	AllPairs Preselect = iota
	// TypeMatch requires strict equality of module types ("tm").
	TypeMatch
	// TypeEquivalence requires membership in the same type-equivalence
	// class ("te"), after the categorisation of Wassink et al. 2009.
	TypeEquivalence
)

// String returns the notation token used in algorithm names.
func (p Preselect) String() string {
	switch p {
	case AllPairs:
		return "ta"
	case TypeMatch:
		return "tm"
	case TypeEquivalence:
		return "te"
	}
	return "t?"
}

// TypeClass is an equivalence class of module types.
type TypeClass int

// Equivalence classes over module types. The web-service class absorbs the
// many spellings under which Taverna types web services ('wsdl',
// 'arbitrarywsdl', 'soaplabwsdl', ...), which motivated the te strategy.
const (
	ClassWebService TypeClass = iota
	ClassScript
	ClassLocal
	ClassDataflow
	ClassTool
	ClassOther
)

// String implements fmt.Stringer.
func (c TypeClass) String() string {
	switch c {
	case ClassWebService:
		return "webservice"
	case ClassScript:
		return "script"
	case ClassLocal:
		return "local"
	case ClassDataflow:
		return "dataflow"
	case ClassTool:
		return "tool"
	}
	return "other"
}

// ClassOf maps a module type identifier to its equivalence class.
func ClassOf(typ string) TypeClass {
	switch typ {
	case workflow.TypeWSDL, workflow.TypeArbitraryWSDL, workflow.TypeSoaplabWSDL,
		workflow.TypeBioMoby, workflow.TypeRESTService:
		return ClassWebService
	case workflow.TypeBeanshell, workflow.TypeRShell, workflow.TypeScript:
		return ClassScript
	case workflow.TypeLocalWorker, workflow.TypeStringConst,
		workflow.TypeXMLSplitter, workflow.TypeXMLMerger:
		return ClassLocal
	case workflow.TypeDataflow:
		return ClassDataflow
	case workflow.TypeTool:
		return ClassTool
	}
	return ClassOther
}

// Allows reports whether the pair (a, b) is a candidate for comparison
// under the strategy.
func (p Preselect) Allows(a, b *workflow.Module) bool {
	switch p {
	case AllPairs:
		return true
	case TypeMatch:
		if a.TypeID != 0 && b.TypeID != 0 {
			return a.TypeID == b.TypeID
		}
		return a.Type == b.Type
	case TypeEquivalence:
		return ClassOf(a.Type) == ClassOf(b.Type)
	}
	return false
}

// PairStats reports how many module pairs a strategy admits out of the
// Cartesian product — the quantity behind the paper's reported 2.3x
// comparison reduction.
type PairStats struct {
	Total    int // |V1| * |V2|
	Compared int // pairs admitted by the preselection
}

// WeightMatrix computes the dense module-similarity matrix between the
// module sets of two workflows under the given scheme and preselection.
// Pairs excluded by the preselection get weight 0 without being compared.
// It returns the matrix together with comparison statistics.
func WeightMatrix(a, b *workflow.Workflow, s Scheme, p Preselect) (matching.Weights, PairStats) {
	return weightMatrixModules(a.Modules, b.Modules, s, p, nil)
}

// WeightMatrixFor computes the similarity matrix between two explicit module
// sequences (used for path-wise comparison, where the sequences are the
// modules along two paths).
func WeightMatrixFor(a, b []*workflow.Module, s Scheme, p Preselect) (matching.Weights, PairStats) {
	return weightMatrixModules(a, b, s, p, nil)
}

func weightMatrixModules(ma, mb []*workflow.Module, s Scheme, p Preselect, memo *SimMemo) (matching.Weights, PairStats) {
	stats := PairStats{Total: len(ma) * len(mb)}
	w := make(matching.Weights, len(ma))
	for i, x := range ma {
		w[i] = make([]float64, len(mb))
		for j, y := range mb {
			if !p.Allows(x, y) {
				continue
			}
			stats.Compared++
			w[i][j] = s.SimilarityMemo(x, y, memo)
		}
	}
	return w, stats
}
