package module

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/workflow"
)

func wsModule(label, uri, svc, auth string) *workflow.Module {
	return &workflow.Module{
		Label: label, Type: workflow.TypeWSDL,
		ServiceURI: uri, ServiceName: svc, Authority: auth,
	}
}

func TestSchemeIdenticalModules(t *testing.T) {
	m := wsModule("getPathway", "http://soap.genome.jp/KEGG.wsdl", "get_pathway", "kegg")
	for _, s := range []Scheme{PW0(), PW3(), PLL(), PLM(), GW1(), GLL()} {
		if got := s.Similarity(m, m); got != 1 {
			t.Errorf("%s self-similarity = %v, want 1", s.Name, got)
		}
	}
}

func TestSchemeRange(t *testing.T) {
	a := wsModule("getPathway", "http://a", "op1", "x")
	b := &workflow.Module{Label: "split_string", Type: workflow.TypeLocalWorker}
	for _, s := range []Scheme{PW0(), PW3(), PLL(), PLM()} {
		got := s.Similarity(a, b)
		if got < 0 || got > 1 {
			t.Errorf("%s similarity out of range: %v", s.Name, got)
		}
	}
}

func TestPLMStrictVsPLLGraded(t *testing.T) {
	a := &workflow.Module{Label: "getPathways"}
	b := &workflow.Module{Label: "getPathway"} // one char off
	if got := PLM().Similarity(a, b); got != 0 {
		t.Errorf("plm on near-identical labels = %v, want 0 (strict)", got)
	}
	if got := PLL().Similarity(a, b); got <= 0.8 {
		t.Errorf("pll on near-identical labels = %v, want > 0.8", got)
	}
}

func TestAbsentAttributesNotPenalised(t *testing.T) {
	// Two local modules with identical labels: under pw0 the web-service
	// attributes are absent from both and must not drag similarity down.
	a := &workflow.Module{Label: "mergeLists", Type: workflow.TypeLocalWorker}
	b := &workflow.Module{Label: "mergeLists", Type: workflow.TypeLocalWorker}
	if got := PW0().Similarity(a, b); got != 1 {
		t.Errorf("pw0 on identical local modules = %v, want 1", got)
	}
}

func TestAttributePresentOnOneSideCounts(t *testing.T) {
	// One module has a script, the other doesn't: the script attribute is
	// present in the union and must contribute a mismatch.
	a := &workflow.Module{Label: "x", Type: workflow.TypeBeanshell, Script: "return 1;"}
	b := &workflow.Module{Label: "x", Type: workflow.TypeBeanshell}
	got := PW0().Similarity(a, b)
	if got >= 1 {
		t.Errorf("similarity = %v, want < 1 (script mismatch)", got)
	}
	if got <= 0 {
		t.Errorf("similarity = %v, want > 0 (labels+types match)", got)
	}
}

func TestPW3WeightsLabelHigher(t *testing.T) {
	// Same label, different type: pw3 weighs the label (3) against type (1),
	// pw0 weighs them equally, so pw3 must score higher.
	a := &workflow.Module{Label: "BLAST", Type: workflow.TypeWSDL}
	b := &workflow.Module{Label: "BLAST", Type: workflow.TypeSoaplabWSDL}
	if pw3, pw0 := PW3().Similarity(a, b), PW0().Similarity(a, b); pw3 <= pw0 {
		t.Errorf("pw3=%v should exceed pw0=%v when labels agree but type differs", pw3, pw0)
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"pw0", "pw3", "pll", "plm", "gw1", "gll"} {
		s, ok := SchemeByName(name)
		if !ok || s.Name != name {
			t.Errorf("SchemeByName(%q) = %v, %v", name, s.Name, ok)
		}
	}
	if _, ok := SchemeByName("nope"); ok {
		t.Error("unknown scheme resolved")
	}
}

func TestComparators(t *testing.T) {
	if Exact.compare("a", "a") != 1 || Exact.compare("a", "A") != 0 {
		t.Error("Exact misbehaves")
	}
	if ExactFold.compare("a", "A") != 1 || ExactFold.compare("a", "b") != 0 {
		t.Error("ExactFold misbehaves")
	}
	if EditDistance.compare("abc", "abc") != 1 {
		t.Error("EditDistance identical != 1")
	}
}

func TestClassOf(t *testing.T) {
	cases := map[string]TypeClass{
		workflow.TypeWSDL:          ClassWebService,
		workflow.TypeArbitraryWSDL: ClassWebService,
		workflow.TypeSoaplabWSDL:   ClassWebService,
		workflow.TypeBioMoby:       ClassWebService,
		workflow.TypeRESTService:   ClassWebService,
		workflow.TypeBeanshell:     ClassScript,
		workflow.TypeRShell:        ClassScript,
		workflow.TypeLocalWorker:   ClassLocal,
		workflow.TypeStringConst:   ClassLocal,
		workflow.TypeDataflow:      ClassDataflow,
		workflow.TypeTool:          ClassTool,
		"somethingelse":            ClassOther,
	}
	for typ, want := range cases {
		if got := ClassOf(typ); got != want {
			t.Errorf("ClassOf(%q) = %v, want %v", typ, got, want)
		}
	}
}

func TestPreselectAllows(t *testing.T) {
	wsdl := &workflow.Module{Type: workflow.TypeWSDL}
	soaplab := &workflow.Module{Type: workflow.TypeSoaplabWSDL}
	local := &workflow.Module{Type: workflow.TypeLocalWorker}

	if !AllPairs.Allows(wsdl, local) {
		t.Error("ta must allow everything")
	}
	if TypeMatch.Allows(wsdl, soaplab) {
		t.Error("tm must reject wsdl vs soaplabwsdl")
	}
	if !TypeMatch.Allows(wsdl, wsdl) {
		t.Error("tm must allow identical types")
	}
	if !TypeEquivalence.Allows(wsdl, soaplab) {
		t.Error("te must allow wsdl vs soaplabwsdl (same class)")
	}
	if TypeEquivalence.Allows(wsdl, local) {
		t.Error("te must reject webservice vs local")
	}
}

func TestWeightMatrixStats(t *testing.T) {
	a := workflow.New("a")
	a.AddModule(wsModule("get", "u1", "s1", "auth"))
	a.AddModule(&workflow.Module{Label: "split", Type: workflow.TypeLocalWorker})
	b := workflow.New("b")
	b.AddModule(wsModule("get", "u1", "s1", "auth"))
	b.AddModule(&workflow.Module{Label: "merge", Type: workflow.TypeLocalWorker})
	b.AddModule(&workflow.Module{Label: "sh", Type: workflow.TypeBeanshell, Script: "x"})

	w, st := WeightMatrix(a, b, PW0(), TypeEquivalence)
	if st.Total != 6 {
		t.Errorf("Total = %d, want 6", st.Total)
	}
	// Admitted: ws-ws (1), local-local (1); rejected: ws-local, ws-script,
	// local-ws, local-script.
	if st.Compared != 2 {
		t.Errorf("Compared = %d, want 2", st.Compared)
	}
	if w[0][0] != 1 {
		t.Errorf("identical ws modules weight = %v, want 1", w[0][0])
	}
	if w[0][1] != 0 || w[0][2] != 0 {
		t.Error("excluded pairs must have weight 0")
	}
}

func TestPreselectString(t *testing.T) {
	if AllPairs.String() != "ta" || TypeMatch.String() != "tm" || TypeEquivalence.String() != "te" {
		t.Error("Preselect notation tokens wrong")
	}
}

func randModule(r *rand.Rand) *workflow.Module {
	types := []string{
		workflow.TypeWSDL, workflow.TypeSoaplabWSDL, workflow.TypeBeanshell,
		workflow.TypeLocalWorker, workflow.TypeStringConst, "weird",
	}
	labels := []string{"getPathway", "get_pathway", "BLAST", "split", "merge", ""}
	return &workflow.Module{
		Label:      labels[r.Intn(len(labels))],
		Type:       types[r.Intn(len(types))],
		Script:     []string{"", "return x;"}[r.Intn(2)],
		ServiceURI: []string{"", "http://a", "http://b"}[r.Intn(3)],
	}
}

func TestPropertySchemeSymmetricBounded(t *testing.T) {
	schemes := []Scheme{PW0(), PW3(), PLL(), PLM(), GW1(), GLL()}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randModule(r), randModule(r)
		for _, s := range schemes {
			sab, sba := s.Similarity(a, b), s.Similarity(b, a)
			if sab != sba {
				return false
			}
			if sab < 0 || sab > 1 {
				return false
			}
			// Self-similarity must be 1 whenever the scheme sees at
			// least one non-empty attribute on the module.
			seesValue := false
			for _, spec := range s.Specs {
				if value(a, spec.Attr) != "" {
					seesValue = true
					break
				}
			}
			if seesValue && s.Similarity(a, a) < 1-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPW0Similarity(b *testing.B) {
	x := wsModule("getKEGGPathway", "http://soap.genome.jp/KEGG.wsdl", "get_pathway", "kegg")
	y := wsModule("get_pathway_by_gene", "http://soap.genome.jp/KEGG.wsdl", "get_pathways_by_genes", "kegg")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PW0().Similarity(x, y)
	}
}

func BenchmarkWeightMatrix12x12(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	wa, wb := workflow.New("a"), workflow.New("b")
	for i := 0; i < 12; i++ {
		wa.AddModule(randModule(r))
		wb.AddModule(randModule(r))
	}
	s := PW0()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WeightMatrix(wa, wb, s, AllPairs)
	}
}
