package module

import (
	"sync"

	"repro/internal/matching"
	"repro/internal/workflow"
)

// SimMemo memoizes EditDistance comparator results for the duration of one
// whole-corpus scan. Module labels (and scripts, descriptions, service
// fields) are drawn from a corpus vocabulary that is tiny compared to the
// O(n²·m²) attribute pairs a Duplicates scan compares, so the same
// Levenshtein computation is repeated millions of times; the memo collapses
// each distinct string pair to one computation. Levenshtein similarity is
// symmetric and pure, so memoized scans return bit-identical scores.
//
// Only EditDistance results are memoized — Exact/ExactFold are cheaper than
// the lookup. A SimMemo is safe for concurrent use (internally sharded) and
// is meant to be scan-scoped: it has no eviction, only a hard entry cap
// (insertion stops when full, correctness is unaffected).
type SimMemo struct {
	shards [simMemoShards]simMemoShard
}

const (
	simMemoShards = 32
	// simMemoCap bounds total entries across shards. At two interned-ish
	// strings and a float per entry this keeps a runaway vocabulary under
	// ~100 MB instead of unbounded.
	simMemoCap = 1 << 20
)

type simMemoShard struct {
	mu sync.RWMutex
	m  map[simMemoKey]float64
}

type simMemoKey struct{ a, b string }

// NewSimMemo returns an empty memo.
func NewSimMemo() *SimMemo {
	return &SimMemo{}
}

// editSimilarity returns the memoized Levenshtein similarity of (a, b).
func (sm *SimMemo) editSimilarity(a, b string) float64 {
	if a > b {
		a, b = b, a // symmetric: canonicalize key order
	}
	k := simMemoKey{a, b}
	sh := &sm.shards[memoHash(a, b)%simMemoShards]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	v = EditDistance.compare(a, b)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[simMemoKey]float64)
	}
	if len(sh.m) < simMemoCap/simMemoShards {
		sh.m[k] = v
	}
	sh.mu.Unlock()
	return v
}

// Len returns the number of memoized pairs (for tests and stats).
func (sm *SimMemo) Len() int {
	n := 0
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// memoHash is FNV-1a over both strings, matching the canonicalized order.
func memoHash(a, b string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= prime64
	}
	h ^= 0xff // separator so ("ab","c") and ("a","bc") differ
	h *= prime64
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// compareMemo is Comparator.compare routed through a memo for the
// comparators where memoization pays; a nil memo degrades to the plain
// comparison.
func (c Comparator) compareMemo(a, b string, memo *SimMemo) float64 {
	if memo != nil && c == EditDistance {
		return memo.editSimilarity(a, b)
	}
	return c.compare(a, b)
}

// SimilarityMemo computes the scheme's module similarity like Similarity,
// memoizing EditDistance attribute comparisons in memo (which may be nil).
// Scores are bit-identical to Similarity.
func (s Scheme) SimilarityMemo(a, b *workflow.Module, memo *SimMemo) float64 {
	var sum, wsum float64
	for _, spec := range s.Specs {
		va, vb := value(a, spec.Attr), value(b, spec.Attr)
		if va == "" && vb == "" {
			continue // attribute absent from both: no evidence either way
		}
		sum += spec.Weight * spec.Cmp.compareMemo(va, vb, memo)
		wsum += spec.Weight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// WeightMatrixMemo is WeightMatrix with a scan-scoped memo (which may be
// nil) threaded through the attribute comparisons.
func WeightMatrixMemo(a, b *workflow.Workflow, s Scheme, p Preselect, memo *SimMemo) (matching.Weights, PairStats) {
	return weightMatrixModules(a.Modules, b.Modules, s, p, memo)
}

// WeightMatrixForMemo is WeightMatrixFor with a scan-scoped memo (which may
// be nil) threaded through the attribute comparisons.
func WeightMatrixForMemo(a, b []*workflow.Module, s Scheme, p Preselect, memo *SimMemo) (matching.Weights, PairStats) {
	return weightMatrixModules(a, b, s, p, memo)
}
