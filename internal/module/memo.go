package module

import (
	"sync"

	"repro/internal/matching"
	"repro/internal/workflow"
)

// SimMemo memoizes EditDistance comparator results for the duration of one
// whole-corpus scan. Module labels (and scripts, descriptions, service
// fields) are drawn from a corpus vocabulary that is tiny compared to the
// O(n²·m²) attribute pairs a Duplicates scan compares, so the same
// Levenshtein computation is repeated millions of times; the memo collapses
// each distinct string pair to one computation. Levenshtein similarity is
// symmetric and pure, so memoized scans return bit-identical scores.
//
// Only EditDistance results are memoized — Exact/ExactFold are cheaper than
// the lookup. A SimMemo is safe for concurrent use (internally sharded) and
// is meant to be scan-scoped: it has no eviction, only a hard entry cap
// (insertion stops when full, correctness is unaffected).
type SimMemo struct {
	shards [simMemoShards]simMemoShard
}

const (
	simMemoShards = 32
	// simMemoCap bounds total entries across shards. At two interned-ish
	// strings and a float per entry this keeps a runaway vocabulary under
	// ~100 MB instead of unbounded.
	simMemoCap = 1 << 20
)

type simMemoShard struct {
	mu sync.RWMutex
	m  map[simMemoKey]float64
	// ids memoizes by packed symbol-pair key for interned attributes:
	// one integer probe instead of hashing two strings.
	ids map[uint64]float64
}

type simMemoKey struct{ a, b string }

// NewSimMemo returns an empty memo.
func NewSimMemo() *SimMemo {
	return &SimMemo{}
}

// editSimilarity returns the memoized Levenshtein similarity of (a, b).
func (sm *SimMemo) editSimilarity(a, b string) float64 {
	if a > b {
		a, b = b, a // symmetric: canonicalize key order
	}
	k := simMemoKey{a, b}
	sh := &sm.shards[memoHash(a, b)%simMemoShards]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	v = EditDistance.compare(a, b)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[simMemoKey]float64)
	}
	if len(sh.m) < simMemoCap/simMemoShards {
		sh.m[k] = v
	}
	sh.mu.Unlock()
	return v
}

// editSimilarityID returns the memoized Levenshtein similarity of two
// interned attribute values. Both IDs must be nonzero and distinct (equal
// IDs prove identical strings, decided by the caller without a lookup).
// The key is the packed ordered ID pair; Levenshtein similarity is
// symmetric, so canonicalizing by ID instead of string order returns the
// same value as the string-keyed memo.
//
//wfsimvet:hotpath
func (sm *SimMemo) editSimilarityID(ida, idb uint32, a, b string) float64 {
	if ida > idb {
		ida, idb = idb, ida
		a, b = b, a
	}
	k := uint64(ida)<<32 | uint64(idb)
	sh := &sm.shards[(ida^idb)%simMemoShards]
	sh.mu.RLock()
	v, ok := sh.ids[k]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	v = EditDistance.compare(a, b)
	sh.mu.Lock()
	if sh.ids == nil {
		sh.ids = make(map[uint64]float64)
	}
	if len(sh.ids) < simMemoCap/simMemoShards {
		sh.ids[k] = v
	}
	sh.mu.Unlock()
	return v
}

// Len returns the number of memoized pairs (for tests and stats),
// counting string-keyed and symbol-keyed entries.
func (sm *SimMemo) Len() int {
	n := 0
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.mu.RLock()
		n += len(sh.m) + len(sh.ids)
		sh.mu.RUnlock()
	}
	return n
}

// memoHash is FNV-1a over both strings, matching the canonicalized order.
func memoHash(a, b string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= prime64
	}
	h ^= 0xff // separator so ("ab","c") and ("a","bc") differ
	h *= prime64
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// compareMemo is Comparator.compare routed through a memo for the
// comparators where memoization pays; a nil memo degrades to the plain
// comparison.
func (c Comparator) compareMemo(a, b string, memo *SimMemo) float64 {
	if memo != nil && c == EditDistance {
		return memo.editSimilarity(a, b)
	}
	return c.compare(a, b)
}

// SimilarityMemo computes the scheme's module similarity like Similarity,
// memoizing EditDistance attribute comparisons in memo (which may be nil).
// Interned attributes (labels, types) take a symbol fast path: IDs come
// from one shared append-only table, so equal nonzero IDs prove the
// strings identical (similarity 1 under every comparator) and distinct
// nonzero IDs prove them different, which decides Exact outright and
// routes EditDistance through the symbol-keyed memo. ExactFold still
// compares the strings for distinct IDs — case-folded equality is not
// symbol equality. Scores are bit-identical to Similarity on unresolved
// modules.
//
//wfsimvet:hotpath
func (s Scheme) SimilarityMemo(a, b *workflow.Module, memo *SimMemo) float64 {
	var sum, wsum float64
	for _, spec := range s.Specs {
		if ida, idb, interned := attrIDs(a, b, spec.Attr); interned && ida != 0 && idb != 0 {
			// Nonzero IDs prove both strings nonempty: the attribute
			// is present and contributes its weight.
			wsum += spec.Weight
			if ida == idb {
				sum += spec.Weight // identical strings: similarity 1
				continue
			}
			switch spec.Cmp {
			case Exact:
				// distinct symbols: distinct strings, similarity 0
			case ExactFold:
				sum += spec.Weight * ExactFold.compare(value(a, spec.Attr), value(b, spec.Attr))
			case EditDistance:
				if memo != nil {
					sum += spec.Weight * memo.editSimilarityID(ida, idb, value(a, spec.Attr), value(b, spec.Attr))
				} else {
					sum += spec.Weight * EditDistance.compare(value(a, spec.Attr), value(b, spec.Attr))
				}
			}
			continue
		}
		va, vb := value(a, spec.Attr), value(b, spec.Attr)
		if va == "" && vb == "" {
			continue // attribute absent from both: no evidence either way
		}
		sum += spec.Weight * spec.Cmp.compareMemo(va, vb, memo)
		wsum += spec.Weight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// WeightMatrixMemo is WeightMatrix with a scan-scoped memo (which may be
// nil) threaded through the attribute comparisons.
func WeightMatrixMemo(a, b *workflow.Workflow, s Scheme, p Preselect, memo *SimMemo) (matching.Weights, PairStats) {
	return weightMatrixModules(a.Modules, b.Modules, s, p, memo)
}

// WeightMatrixForMemo is WeightMatrixFor with a scan-scoped memo (which may
// be nil) threaded through the attribute comparisons.
func WeightMatrixForMemo(a, b []*workflow.Module, s Scheme, p Preselect, memo *SimMemo) (matching.Weights, PairStats) {
	return weightMatrixModules(a, b, s, p, memo)
}
