// Package module implements pairwise module comparison (Section 2.1.1 of
// Starlinger et al., PVLDB 2014): configurable multi-attribute similarity
// with per-attribute comparators and weights, the concrete weighting schemes
// evaluated in the paper (pw0, pw3, pll, plm and the Galaxy variants gw1,
// gll), and module-pair preselection strategies (all pairs, strict type
// match, type-equivalence classes).
package module

import (
	"strings"

	"repro/internal/textutil"
	"repro/internal/workflow"
)

// Attribute identifies a comparable module attribute.
type Attribute string

// The attributes the framework can compare. Which ones are populated depends
// on the module type (a ServiceURI exists only on web-service modules).
const (
	AttrLabel       Attribute = "label"
	AttrType        Attribute = "type"
	AttrDescription Attribute = "description"
	AttrScript      Attribute = "script"
	AttrServiceURI  Attribute = "serviceURI"
	AttrServiceName Attribute = "serviceName"
	AttrAuthority   Attribute = "authority"
	AttrParams      Attribute = "params"
)

// value extracts the attribute's raw value from a module.
func value(m *workflow.Module, a Attribute) string {
	switch a {
	case AttrLabel:
		return m.Label
	case AttrType:
		return m.Type
	case AttrDescription:
		return m.Description
	case AttrScript:
		return m.Script
	case AttrServiceURI:
		return m.ServiceURI
	case AttrServiceName:
		return m.ServiceName
	case AttrAuthority:
		return m.Authority
	case AttrParams:
		return m.ParamSignature()
	}
	return ""
}

// attrIDs returns the interned symbol IDs backing an attribute for both
// modules. Only labels and types are interned; ok is false for every
// other attribute. A zero ID means "unresolved" and decides nothing.
func attrIDs(a, b *workflow.Module, attr Attribute) (uint32, uint32, bool) {
	switch attr {
	case AttrLabel:
		return a.LabelID, b.LabelID, true
	case AttrType:
		return a.TypeID, b.TypeID, true
	}
	return 0, 0, false
}

// Comparator is a similarity function on attribute values, returning a value
// in [0,1].
type Comparator int

const (
	// Exact yields 1 for identical strings, 0 otherwise.
	Exact Comparator = iota
	// ExactFold yields 1 for case-insensitively identical strings.
	ExactFold
	// EditDistance yields the length-normalised Levenshtein similarity.
	EditDistance
)

func (c Comparator) compare(a, b string) float64 {
	switch c {
	case Exact:
		if a == b {
			return 1
		}
		return 0
	case ExactFold:
		if strings.EqualFold(a, b) {
			return 1
		}
		return 0
	case EditDistance:
		return textutil.LevenshteinSimilarity(a, b)
	}
	return 0
}

// String implements fmt.Stringer.
func (c Comparator) String() string {
	switch c {
	case Exact:
		return "exact"
	case ExactFold:
		return "exactfold"
	case EditDistance:
		return "editdistance"
	}
	return "unknown"
}

// AttributeSpec configures how one attribute contributes to module
// similarity.
type AttributeSpec struct {
	Attr   Attribute
	Weight float64
	Cmp    Comparator
}

// Scheme is a complete module-comparison configuration: a named set of
// attribute specs. Similarity is the weighted mean of per-attribute
// similarities over the attributes present in at least one of the modules;
// weights are renormalised over present attributes so that modules of types
// carrying fewer attributes (e.g. local operations without a ServiceURI) are
// not penalised for structurally absent data.
type Scheme struct {
	Name  string
	Specs []AttributeSpec
}

// Similarity computes the scheme's module similarity in [0,1].
func (s Scheme) Similarity(a, b *workflow.Module) float64 {
	return s.SimilarityMemo(a, b, nil)
}

// PW0 is the paper's default scheme: uniform weights on all attributes,
// exact string matching for module type and the web-service properties
// (authority, service name, service URI), Levenshtein edit distance for
// labels, descriptions and scripts.
func PW0() Scheme {
	return Scheme{
		Name: "pw0",
		Specs: []AttributeSpec{
			{AttrType, 1, Exact},
			{AttrAuthority, 1, Exact},
			{AttrServiceName, 1, Exact},
			{AttrServiceURI, 1, Exact},
			{AttrLabel, 1, EditDistance},
			{AttrDescription, 1, EditDistance},
			{AttrScript, 1, EditDistance},
		},
	}
}

// PW3 compares the same attributes as PW0 but with tuned, non-uniform
// weights: highest on labels, script and service URI, then service name,
// then service authority (after Silva et al. 2011).
func PW3() Scheme {
	return Scheme{
		Name: "pw3",
		Specs: []AttributeSpec{
			{AttrLabel, 3, EditDistance},
			{AttrScript, 3, EditDistance},
			{AttrServiceURI, 3, Exact},
			{AttrServiceName, 2, Exact},
			{AttrAuthority, 1, Exact},
			{AttrType, 1, Exact},
			{AttrDescription, 1, EditDistance},
		},
	}
}

// PLL disregards all attributes but the labels and compares them by edit
// distance (after Bergmann & Gil 2012).
func PLL() Scheme {
	return Scheme{
		Name:  "pll",
		Specs: []AttributeSpec{{AttrLabel, 1, EditDistance}},
	}
}

// PLM disregards all attributes but the labels and compares them by strict
// string matching (after Santos et al. 2008, Goderis et al. 2006, Xiang &
// Madey 2007).
func PLM() Scheme {
	return Scheme{
		Name:  "plm",
		Specs: []AttributeSpec{{AttrLabel, 1, Exact}},
	}
}

// GW1 is the Galaxy-profile scheme of Section 5.3: a selection of attributes
// compared with uniform weights (labels and tool parameters by edit
// distance, tool id/type exactly).
func GW1() Scheme {
	return Scheme{
		Name: "gw1",
		Specs: []AttributeSpec{
			{AttrLabel, 1, EditDistance},
			{AttrType, 1, Exact},
			{AttrServiceName, 1, Exact}, // Galaxy tool id
			{AttrParams, 1, EditDistance},
		},
	}
}

// GLL compares only module labels by edit distance on Galaxy workflows.
func GLL() Scheme {
	return Scheme{
		Name:  "gll",
		Specs: []AttributeSpec{{AttrLabel, 1, EditDistance}},
	}
}

// SchemeByName resolves a scheme identifier as used in algorithm notation
// (e.g. the "pll" in "MS_ip_te_pll"). It returns false for unknown names.
func SchemeByName(name string) (Scheme, bool) {
	switch name {
	case "pw0":
		return PW0(), true
	case "pw3":
		return PW3(), true
	case "pll":
		return PLL(), true
	case "plm":
		return PLM(), true
	case "gw1":
		return GW1(), true
	case "gll":
		return GLL(), true
	}
	return Scheme{}, false
}
