package eval

import (
	"math/rand"
	"sort"

	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/rank"
)

// RankingStudy is the artefact of the paper's first experiment (Section
// 4.2): query workflows, ten candidates each, per-rater rankings, and the
// BioConsert consensus per query. Algorithms are evaluated by ranking the
// candidates and comparing against the consensus.
type RankingStudy struct {
	// Queries are the query workflow IDs (the paper used 24).
	Queries []string
	// Candidates maps each query to its rated candidate workflows.
	Candidates map[string][]string
	// RaterRankings maps query -> one ranking per rater (incomplete where
	// the rater was unsure).
	RaterRankings map[string][]rank.Ranking
	// Consensus maps query -> BioConsert consensus ranking.
	Consensus map[string]rank.Ranking
	// RatingsGiven counts all non-query ratings collected (the paper
	// reports 2424 ratings overall across both experiments).
	RatingsGiven int
}

// BuildRankingStudy runs the first experiment's data collection protocol on
// a generated corpus: numQueries query workflows are drawn at random; for
// each, all other workflows are ranked by a naive annotation measure (Bag of
// Words) and 10 candidates are drawn from the top 10, the middle, and the
// lower 30 — then every rater on the panel rates every (query, candidate)
// pair and the ratings are aggregated with BioConsert.
func BuildRankingStudy(c *gen.Corpus, numQueries int, panel []*Rater, seed int64) *RankingStudy {
	rng := rand.New(rand.NewSource(seed))
	ids := c.Repo.IDs()
	queries := sampleIDs(rng, ids, numQueries)

	study := &RankingStudy{
		Candidates:    map[string][]string{},
		RaterRankings: map[string][]rank.Ranking{},
		Consensus:     map[string]rank.Ranking{},
	}
	study.Queries = queries
	bw := measures.BagOfWords{}

	for _, q := range queries {
		qwf := c.Repo.Get(q)
		// Naive annotation ranking of the whole repository.
		var all []scored
		for _, wf := range c.Repo.Workflows() {
			if wf.ID == q {
				continue
			}
			s, _ := bw.Compare(qwf, wf) //wfsimvet:ignore errpath ranking protocol scores every candidate; an incomparable pair correctly ranks at 0
			all = append(all, scored{wf.ID, s})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].s != all[j].s {
				return all[i].s > all[j].s
			}
			return all[i].id < all[j].id
		})
		// Draw 4 from the top 10, 3 from the middle, 3 from the lower 30.
		var cands []string
		cands = append(cands, drawFrom(rng, all, 0, min(10, len(all)), 4)...)
		midLo, midHi := len(all)/3, 2*len(all)/3
		cands = append(cands, drawFromExcluding(rng, all, midLo, midHi, 3, cands)...)
		loStart := len(all) - 30
		if loStart < 0 {
			loStart = 0
		}
		cands = append(cands, drawFromExcluding(rng, all, loStart, len(all), 3, cands)...)
		study.Candidates[q] = cands

		// Collect ratings and per-rater rankings.
		var rankings []rank.Ranking
		for _, rater := range panel {
			ratings := map[string]Rating{}
			for _, cand := range cands {
				rt := rater.RatePair(c.Truth, q, cand)
				ratings[cand] = rt
				study.RatingsGiven++
			}
			rankings = append(rankings, RankingFromRatings(ratings))
		}
		study.RaterRankings[q] = rankings
		study.Consensus[q] = rank.BioConsert(rankings)
	}
	return study
}

// RetrievalStudy is the artefact of the paper's second experiment: for each
// query, the pooled search results of all algorithms under test, rated by
// the panel and aggregated as the median — the ground truth for
// precision@k.
type RetrievalStudy struct {
	// Queries are the query workflow IDs (the paper used 8).
	Queries []string
	// MedianRatings maps query -> result workflow -> median rating.
	MedianRatings map[string]map[string]Rating
	// RatingsGiven counts all individual ratings collected.
	RatingsGiven int
}

// BuildRetrievalStudy rates the pooled results: pooled maps each query to
// the union of the algorithms' top-k lists (between 21 and 68 elements in
// the paper, depending on overlap).
func BuildRetrievalStudy(c *gen.Corpus, pooled map[string][]string, panel []*Rater) *RetrievalStudy {
	study := &RetrievalStudy{MedianRatings: map[string]map[string]Rating{}}
	for q := range pooled {
		study.Queries = append(study.Queries, q)
	}
	sort.Strings(study.Queries)
	for _, q := range study.Queries {
		med := map[string]Rating{}
		for _, res := range pooled[q] {
			var rs []Rating
			for _, rater := range panel {
				rs = append(rs, rater.RatePair(c.Truth, q, res))
				study.RatingsGiven++
			}
			med[res] = MedianRating(rs)
		}
		study.MedianRatings[q] = med
	}
	return study
}

// sampleIDs draws n distinct IDs uniformly.
func sampleIDs(rng *rand.Rand, ids []string, n int) []string {
	if n > len(ids) {
		n = len(ids)
	}
	perm := rng.Perm(len(ids))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ids[perm[i]]
	}
	sort.Strings(out)
	return out
}

// scored pairs a workflow ID with a similarity score.
type scored struct {
	id string
	s  float64
}

// drawFrom draws up to n distinct IDs from all[lo:hi].
func drawFrom(rng *rand.Rand, all []scored, lo, hi, n int) []string {
	return drawFromExcluding(rng, all, lo, hi, n, nil)
}

// drawFromExcluding draws up to n distinct IDs from all[lo:hi], skipping IDs
// already in exclude.
func drawFromExcluding(rng *rand.Rand, all []scored, lo, hi, n int, exclude []string) []string {
	if lo < 0 {
		lo = 0
	}
	if hi > len(all) {
		hi = len(all)
	}
	if lo >= hi {
		return nil
	}
	ex := map[string]bool{}
	for _, id := range exclude {
		ex[id] = true
	}
	idx := rng.Perm(hi - lo)
	var out []string
	for _, i := range idx {
		if len(out) == n {
			break
		}
		id := all[lo+i].id
		if !ex[id] {
			out = append(out, id)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
