package eval

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/rank"
)

func TestMedianRating(t *testing.T) {
	cases := []struct {
		in   []Rating
		want Rating
	}{
		{[]Rating{Similar, Similar, Related}, Similar},
		{[]Rating{Dissimilar, Related, VerySimilar}, Related},
		{[]Rating{Unsure, Similar, Unsure}, Similar},
		{[]Rating{Unsure, Unsure}, Unsure},
		{nil, Unsure},
		{[]Rating{Related, Similar}, Related}, // even: lower middle
		{[]Rating{VerySimilar}, VerySimilar},
	}
	for _, c := range cases {
		if got := MedianRating(c.in); got != c.want {
			t.Errorf("MedianRating(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRatingFromTruth(t *testing.T) {
	cases := []struct {
		sim  float64
		want Rating
	}{
		{1.0, VerySimilar},
		{0.75, VerySimilar},
		{0.6, Similar},
		{0.5, Similar},
		{0.3, Related},
		{0.25, Related},
		{0.1, Dissimilar},
		{-0.2, Dissimilar},
	}
	for _, c := range cases {
		if got := RatingFromTruth(c.sim); got != c.want {
			t.Errorf("RatingFromTruth(%v) = %v, want %v", c.sim, got, c.want)
		}
	}
}

func TestRatingString(t *testing.T) {
	if VerySimilar.String() != "very similar" || Unsure.String() != "unsure" {
		t.Error("Rating.String wrong")
	}
	if Rating(42).String() != "invalid" {
		t.Error("invalid rating string")
	}
}

func TestPanelDeterministic(t *testing.T) {
	p1 := NewPanel(15, 7)
	p2 := NewPanel(15, 7)
	if len(p1) != 15 {
		t.Fatalf("panel size = %d", len(p1))
	}
	for i := range p1 {
		if p1[i].Bias != p2[i].Bias || p1[i].Noise != p2[i].Noise {
			t.Fatal("panel not deterministic")
		}
		r1 := p1[i].Rate(0.6)
		r2 := p2[i].Rate(0.6)
		if r1 != r2 {
			t.Fatal("ratings not deterministic")
		}
	}
}

func TestRaterFollowsTruthOnAverage(t *testing.T) {
	panel := NewPanel(15, 3)
	// High-truth pairs must be rated above low-truth pairs by the median.
	var hi, lo []Rating
	for _, r := range panel {
		hi = append(hi, r.Rate(0.9))
		lo = append(lo, r.Rate(0.05))
	}
	if MedianRating(hi) < Similar {
		t.Errorf("median of high-truth ratings = %v, want >= similar", MedianRating(hi))
	}
	if MedianRating(lo) > Related {
		t.Errorf("median of low-truth ratings = %v, want <= related", MedianRating(lo))
	}
}

func TestRankingFromRatings(t *testing.T) {
	ratings := map[string]Rating{
		"a": VerySimilar,
		"b": Similar,
		"c": Similar,
		"d": Dissimilar,
		"e": Unsure,
	}
	r := RankingFromRatings(ratings)
	if r.Len() != 4 {
		t.Fatalf("ranked items = %d, want 4 (unsure dropped)", r.Len())
	}
	pos := r.Positions()
	if !(pos["a"] < pos["b"] && pos["b"] == pos["c"] && pos["c"] < pos["d"]) {
		t.Errorf("ranking order wrong: %v", r)
	}
	if _, ok := pos["e"]; ok {
		t.Error("unsure item ranked")
	}
}

func TestPrecisionAtK(t *testing.T) {
	results := []string{"a", "b", "c", "d"}
	ratings := map[string]Rating{
		"a": VerySimilar, "b": Related, "c": Dissimilar, "d": Similar,
	}
	if got := PrecisionAtK(results, ratings, Related, 4); got != 0.75 {
		t.Errorf("P@4(related) = %v, want 0.75", got)
	}
	if got := PrecisionAtK(results, ratings, Similar, 4); got != 0.5 {
		t.Errorf("P@4(similar) = %v, want 0.5", got)
	}
	if got := PrecisionAtK(results, ratings, VerySimilar, 1); got != 1.0 {
		t.Errorf("P@1(verysim) = %v, want 1", got)
	}
	// Short result lists: missing positions are misses.
	if got := PrecisionAtK([]string{"a"}, ratings, Related, 10); got != 0.1 {
		t.Errorf("P@10 with one result = %v, want 0.1", got)
	}
	// Unrated results are irrelevant.
	if got := PrecisionAtK([]string{"zz"}, ratings, Related, 1); got != 0 {
		t.Errorf("P@1 unrated = %v, want 0", got)
	}
	if got := PrecisionAtK(results, ratings, Related, 0); got != 0 {
		t.Errorf("P@0 = %v, want 0", got)
	}
}

func TestPrecisionCurveMonotoneK(t *testing.T) {
	results := []string{"a", "b", "c"}
	ratings := map[string]Rating{"a": Similar, "b": Dissimilar, "c": Similar}
	curve := PrecisionCurve(results, ratings, Similar, 3)
	want := []float64{1, 0.5, 2.0 / 3.0}
	for i := range want {
		if math.Abs(curve[i]-want[i]) > 1e-9 {
			t.Errorf("curve[%d] = %v, want %v", i, curve[i], want[i])
		}
	}
}

func TestMeanCurves(t *testing.T) {
	got := MeanCurves([][]float64{{1, 0}, {0, 1}})
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("MeanCurves = %v", got)
	}
	if MeanCurves(nil) != nil {
		t.Error("MeanCurves(nil) should be nil")
	}
}

func testCorpus(t *testing.T) *gen.Corpus {
	t.Helper()
	p := gen.Taverna()
	p.Workflows = 150
	p.Clusters = 8
	c, err := gen.Generate(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildRankingStudy(t *testing.T) {
	c := testCorpus(t)
	panel := NewPanel(15, 4)
	study := BuildRankingStudy(c, 6, panel, 9)
	if len(study.Queries) != 6 {
		t.Fatalf("queries = %d", len(study.Queries))
	}
	for _, q := range study.Queries {
		cands := study.Candidates[q]
		if len(cands) != 10 {
			t.Errorf("query %s: %d candidates, want 10", q, len(cands))
		}
		seen := map[string]bool{}
		for _, id := range cands {
			if id == q {
				t.Errorf("query %s is its own candidate", q)
			}
			if seen[id] {
				t.Errorf("duplicate candidate %s for %s", id, q)
			}
			seen[id] = true
			if c.Repo.Get(id) == nil {
				t.Errorf("candidate %s not in corpus", id)
			}
		}
		if len(study.RaterRankings[q]) != 15 {
			t.Errorf("rater rankings = %d", len(study.RaterRankings[q]))
		}
		consensus := study.Consensus[q]
		if consensus.Len() == 0 {
			t.Errorf("empty consensus for %s", q)
		}
		if err := consensus.Validate(); err != nil {
			t.Errorf("consensus invalid: %v", err)
		}
	}
	if study.RatingsGiven != 6*10*15 {
		t.Errorf("RatingsGiven = %d, want 900", study.RatingsGiven)
	}
}

func TestConsensusCorrelatesWithTruth(t *testing.T) {
	// The consensus ranking must be positively correlated with the ranking
	// induced directly by ground truth — otherwise the rating pipeline is
	// broken.
	c := testCorpus(t)
	panel := NewPanel(15, 4)
	study := BuildRankingStudy(c, 4, panel, 9)
	for _, q := range study.Queries {
		truthScores := map[string]float64{}
		for _, cand := range study.Candidates[q] {
			truthScores[cand] = c.Truth.Sim(q, cand)
		}
		truthRank := rank.FromScores(truthScores, 0)
		if corr := rank.Correctness(truthRank, study.Consensus[q]); corr < 0.5 {
			t.Errorf("query %s: consensus-truth correctness %.2f < 0.5", q, corr)
		}
	}
}

func TestBuildRetrievalStudy(t *testing.T) {
	c := testCorpus(t)
	panel := NewPanel(15, 4)
	ids := c.Repo.IDs()
	pooled := map[string][]string{
		ids[0]: {ids[1], ids[2], ids[3]},
		ids[5]: {ids[6], ids[7]},
	}
	study := BuildRetrievalStudy(c, pooled, panel)
	if len(study.Queries) != 2 {
		t.Fatalf("queries = %d", len(study.Queries))
	}
	if study.RatingsGiven != 5*15 {
		t.Errorf("RatingsGiven = %d, want 75", study.RatingsGiven)
	}
	for q, results := range pooled {
		for _, r := range results {
			if _, ok := study.MedianRatings[q][r]; !ok {
				t.Errorf("missing median rating for (%s, %s)", q, r)
			}
		}
	}
}
