package eval

// PrecisionAtK computes retrieval precision at rank k (Section 4.3):
// P@k = (1/k) * sum_{i<=k} rel(r_i), where a result is relevant iff its
// median expert rating reaches the threshold level (related, similar or
// very similar). Results without a usable rating (Unsure) count as
// irrelevant. If fewer than k results exist, the missing positions count as
// irrelevant (the algorithm failed to fill its top-k).
func PrecisionAtK(results []string, ratings map[string]Rating, threshold Rating, k int) float64 {
	if k <= 0 {
		return 0
	}
	rel := 0
	for i := 0; i < k && i < len(results); i++ {
		r, ok := ratings[results[i]]
		if ok && r != Unsure && r >= threshold {
			rel++
		}
	}
	return float64(rel) / float64(k)
}

// PrecisionCurve computes P@k for k = 1..maxK, the series plotted in
// Figures 10 and 11.
func PrecisionCurve(results []string, ratings map[string]Rating, threshold Rating, maxK int) []float64 {
	out := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		out[k-1] = PrecisionAtK(results, ratings, threshold, k)
	}
	return out
}

// MeanCurves averages several precision curves pointwise (mean over query
// workflows, as in the paper's "Workflow: mean" plots).
func MeanCurves(curves [][]float64) []float64 {
	if len(curves) == 0 {
		return nil
	}
	n := len(curves[0])
	out := make([]float64, n)
	for _, c := range curves {
		for i := 0; i < n && i < len(c); i++ {
			out[i] += c[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(curves))
	}
	return out
}
