package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/rank"
)

// Rater simulates one workflow expert: it perceives the latent ground-truth
// similarity through personal bias and noise, quantises onto the Likert
// scale, and is occasionally unsure. Fifteen such raters substitute for the
// paper's 15 experts from six institutions; their disagreement structure is
// what Figure 4 inspects.
type Rater struct {
	// Name identifies the rater ("expert03").
	Name string
	// Bias shifts perceived similarity (a lenient or strict rater).
	Bias float64
	// Noise is the standard deviation of per-pair perception noise.
	Noise float64
	// UnsureProb is the probability of abstaining on a pair.
	UnsureProb float64

	rng *rand.Rand
}

// NewPanel creates n raters with deterministic per-rater characteristics
// derived from the seed: biases in roughly ±0.08, noise between 0.05 and
// 0.13, unsure probability between 2% and 8%.
func NewPanel(n int, seed int64) []*Rater {
	src := rand.New(rand.NewSource(seed))
	panel := make([]*Rater, n)
	for i := range panel {
		panel[i] = &Rater{
			Name:       fmt.Sprintf("expert%02d", i+1),
			Bias:       (src.Float64() - 0.5) * 0.16,
			Noise:      0.05 + src.Float64()*0.08,
			UnsureProb: 0.02 + src.Float64()*0.06,
			rng:        rand.New(rand.NewSource(src.Int63())),
		}
	}
	return panel
}

// Rate produces the rater's Likert judgement for a pair with latent truth
// similarity sim.
func (r *Rater) Rate(sim float64) Rating {
	if r.rng.Float64() < r.UnsureProb {
		return Unsure
	}
	perceived := sim + r.Bias + r.rng.NormFloat64()*r.Noise
	return RatingFromTruth(perceived)
}

// RatePair rates the pair (queryID, otherID) against ground truth.
func (r *Rater) RatePair(truth *gen.Truth, queryID, otherID string) Rating {
	return r.Rate(truth.Sim(queryID, otherID))
}

// RankingFromRatings turns one rater's ratings of a candidate set into a
// ranking with ties: candidates bucketed by Likert level, best first;
// unsure-rated candidates are unranked (incomplete ranking).
func RankingFromRatings(ratings map[string]Rating) rank.Ranking {
	buckets := map[Rating][]string{}
	for id, rt := range ratings {
		if rt == Unsure {
			continue
		}
		buckets[rt] = append(buckets[rt], id)
	}
	var out rank.Ranking
	for _, level := range []Rating{VerySimilar, Similar, Related, Dissimilar} {
		if ids := buckets[level]; len(ids) > 0 {
			sortStrings(ids)
			out.Buckets = append(out.Buckets, ids)
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
