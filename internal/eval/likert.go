// Package eval implements the evaluation apparatus of Section 4 of
// Starlinger et al. (PVLDB 2014): the four-step Likert rating scale with an
// "unsure" option, simulated expert raters standing in for the paper's 15
// human experts, median rating aggregation, retrieval precision at k with
// configurable relevance thresholds, and the two experiment protocols
// (ranking against BioConsert consensus; retrieval over the full corpus).
package eval

import "sort"

// Rating is a similarity judgement on the paper's four-step Likert scale,
// plus Unsure, which removes the pair from evaluation.
type Rating int

// Likert levels in increasing similarity order. Numeric values matter:
// medians and thresholds compare them.
const (
	Unsure      Rating = -1
	Dissimilar  Rating = 0
	Related     Rating = 1
	Similar     Rating = 2
	VerySimilar Rating = 3
)

// String implements fmt.Stringer.
func (r Rating) String() string {
	switch r {
	case Unsure:
		return "unsure"
	case Dissimilar:
		return "dissimilar"
	case Related:
		return "related"
	case Similar:
		return "similar"
	case VerySimilar:
		return "very similar"
	}
	return "invalid"
}

// MedianRating aggregates multiple expert ratings of one pair as their
// median, as the paper's second experiment does. Unsure ratings are dropped
// first; with no usable rating the result is Unsure. An even count takes the
// lower middle (conservative).
func MedianRating(rs []Rating) Rating {
	var vals []int
	for _, r := range rs {
		if r != Unsure {
			vals = append(vals, int(r))
		}
	}
	if len(vals) == 0 {
		return Unsure
	}
	sort.Ints(vals)
	return Rating(vals[(len(vals)-1)/2])
}

// RatingFromTruth quantises a latent similarity in [0,1] to the Likert
// scale. The band edges are the rater model's perception thresholds.
func RatingFromTruth(sim float64) Rating {
	switch {
	case sim >= 0.75:
		return VerySimilar
	case sim >= 0.50:
		return Similar
	case sim >= 0.25:
		return Related
	default:
		return Dissimilar
	}
}
