package shard

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/scorecache"
	"repro/internal/search"
	"repro/internal/storage"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

// ScanPrep carries one read operation's measure across shards: the resolved
// measure, the projector epoch for cache keying, and — when the measure
// supports it (measures.Specialisable) — a scan-specialised form that hoists
// the importance projection out of the per-pair Compare and shares a memo
// for repeated attribute comparisons across every shard's workers. The
// specialised form returns bit-identical scores; only redundant per-pair
// work (re-projecting the same workflow, re-running Levenshtein on the same
// label pair) is removed, which is what makes the scatter-gather scan faster
// than the legacy single-engine scan even before shards get their own cores.
//
// A ScanPrep is built once per read operation and is safe for concurrent use
// by all shards of that operation.
type ScanPrep struct {
	// Name is the measure's canonical notation name (stats, cache keys).
	Name string
	// Epoch is the projector epoch the measure was resolved under.
	Epoch uint64

	inner   measures.Measure   // compares pre-projected workflows
	project measures.Projector // nil when nothing was hoisted
	memo    *module.SimMemo    // nil for non-specialisable measures

	mu       sync.Mutex
	prepared map[Pin]*Prepared
}

// NewScanPrep resolves m for a scatter-gather scan. epoch is the projector
// epoch of the projection m was resolved with.
func NewScanPrep(m measures.Measure, epoch uint64) *ScanPrep {
	p := &ScanPrep{
		Name:     m.Name(),
		Epoch:    epoch,
		inner:    m,
		prepared: map[Pin]*Prepared{},
	}
	if sp, ok := m.(measures.Specialisable); ok {
		p.memo = module.NewSimMemo()
		p.project, p.inner = sp.Specialise(p.memo)
	}
	return p
}

// Prepared is one pin's slice of the corpus, pre-projected for the scan.
type Prepared struct {
	// Orig is the pin's workflows in repository order (snapshot-owned).
	Orig []*workflow.Workflow
	// Proj is the projected counterpart of Orig (the same slice when the
	// scan's measure has no hoisted projection).
	Proj   []*workflow.Workflow
	byOrig map[*workflow.Workflow]*workflow.Workflow // nil without projection
}

// ProjOf returns the projected form of a workflow from the prepared slice,
// falling back to projecting on the spot for pointers outside it (e.g. an
// index candidate captured across a compaction).
func (pr *Prepared) projOf(wf *workflow.Workflow, p *ScanPrep) *workflow.Workflow {
	if pr.byOrig == nil {
		return wf
	}
	if proj, ok := pr.byOrig[wf]; ok {
		return proj
	}
	return p.ProjectOne(wf)
}

// For returns pin's prepared slice, building it on first use: each workflow
// is projected exactly once per scan, instead of once per pair inside the
// measure.
func (p *ScanPrep) For(pin Pin) *Prepared {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pr, ok := p.prepared[pin]; ok {
		return pr
	}
	orig := pin.Workflows()
	pr := &Prepared{Orig: orig, Proj: orig}
	if p.project != nil {
		proj := make([]*workflow.Workflow, len(orig))
		byOrig := make(map[*workflow.Workflow]*workflow.Workflow, len(orig))
		for i, wf := range orig {
			proj[i] = p.project(wf)
			byOrig[wf] = proj[i]
		}
		pr.Proj = proj
		pr.byOrig = byOrig
	}
	p.prepared[pin] = pr
	return pr
}

// ProjectOne applies the hoisted projection to a single workflow (the query
// of a search); it is the identity when nothing was hoisted.
func (p *ScanPrep) ProjectOne(wf *workflow.Workflow) *workflow.Workflow {
	if p.project == nil {
		return wf
	}
	return p.project(wf)
}

// Compare scores a pre-projected pair with the scan's specialised measure.
func (p *ScanPrep) Compare(aProj, bProj *workflow.Workflow) (float64, error) {
	return p.inner.Compare(aProj, bProj)
}

// MemoSize reports the number of memoized attribute comparisons (0 for
// non-specialisable measures) — benchmark/debug visibility.
func (p *ScanPrep) MemoSize() int {
	if p.memo == nil {
		return 0
	}
	return p.memo.Len()
}

// packPairGen builds the cache-key generation for a pair whose sides live on
// shards at generations aGen and bGen: the two per-shard generations packed
// into one uint64, ordered to match scorecache.PairKey's symbol
// canonicalization (the generation of the shard owning the numerically
// smaller workflow symbol lands in the high bits). ok is false when either
// generation no longer fits in 32 bits — the pair is then simply not cached
// rather than risking key collisions.
func packPairGen(ida uint32, aGen uint64, idb uint32, bGen uint64) (uint64, bool) {
	if idb < ida {
		aGen, bGen = bGen, aGen
	}
	if aGen >= 1<<32 || bGen >= 1<<32 {
		return 0, false
	}
	return aGen<<32 | bGen, true
}

// PackGen is packPairGen for an intra-shard pair (both sides at gen): the
// keyspace of a shard's own pairs, used for warm-cache persistence filters.
func PackGen(gen uint64) (uint64, bool) {
	if gen >= 1<<32 {
		return 0, false
	}
	return gen<<32 | gen, true
}

// pairScorer scores (origin, projected) pairs through a shard's score cache.
// It is built per scan task; hit/miss counters accumulate into ReadStats.
type pairScorer struct {
	prep  *ScanPrep
	cache *scorecache.Cache // nil disables caching
	tab   *symtab.Table     // the owning shard's symbol table (cache keyspace)
	hits  atomic.Int64
	miss  atomic.Int64
}

// score evaluates the pair (a at aGen, b at bGen), serving and populating
// the cache when both sides are cacheable corpus-owned objects. Cache keys
// are built from the workflows' interned ID symbols; an unresolved side
// (symbol 0 — e.g. a repository running without a symbol table) carries no
// stable cache identity and is scored directly.
func (ps *pairScorer) score(a, b, aProj, bProj *workflow.Workflow, aGen, bGen uint64, cacheable bool) (float64, error) {
	if ps.cache == nil || !cacheable {
		return ps.prep.Compare(aProj, bProj)
	}
	if ps.tab == nil || !a.ResolvedBy(ps.tab) || !b.ResolvedBy(ps.tab) {
		// Symbols are only meaningful relative to the table that assigned
		// them: a workflow resolved elsewhere (or not at all) could collide
		// with an unrelated pair's key in this shard's cache keyspace, so
		// the pair is scored directly instead.
		return ps.prep.Compare(aProj, bProj)
	}
	ida, idb := a.SymID(), b.SymID()
	if ida == 0 || idb == 0 {
		return ps.prep.Compare(aProj, bProj)
	}
	g, ok := packPairGen(ida, aGen, idb, bGen)
	if !ok {
		return ps.prep.Compare(aProj, bProj)
	}
	key := scorecache.PairKey(ps.prep.Name, ida, idb, g, ps.prep.Epoch)
	if s, ok := ps.cache.Get(key); ok {
		ps.hits.Add(1)
		return s, nil
	}
	ps.miss.Add(1)
	s, err := ps.prep.Compare(aProj, bProj)
	if err != nil {
		// Failures (e.g. GED timeouts) are not cached: the budget differs
		// per call, so a later call may succeed.
		return s, err
	}
	ps.cache.Put(key, s)
	return s, nil
}

// fill copies the scorer's counters into stats.
func (ps *pairScorer) fill(st *ReadStats) {
	st.CacheHits += int(ps.hits.Load())
	st.CacheMisses += int(ps.miss.Load())
}

// ReadStats aggregates one shard's (or one merged operation's) scan work.
type ReadStats struct {
	// Scored is the number of pairs evaluated or served from cache.
	Scored int
	// Skipped counts pairs the measure failed on (disregarded, as in the
	// paper's GED-timeout treatment).
	Skipped int
	// Pruned counts workflows the inverted index filtered out unscored.
	Pruned int
	// CacheHits / CacheMisses are the scan's score-cache counters.
	CacheHits   int
	CacheMisses int
}

// add accumulates per-shard stats into a merged total.
func (s *ReadStats) add(o ReadStats) {
	s.Scored += o.Scored
	s.Skipped += o.Skipped
	s.Pruned += o.Pruned
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
}

// Query is one scatter-gather search request, fanned out to every pin.
type Query struct {
	// Query is the query workflow (resolved from its owner shard for
	// SearchID, or caller-provided for ad-hoc queries).
	Query *workflow.Workflow
	// QueryGen is the generation of the shard owning Query's ID (cache
	// keying); meaningful only when Cacheable.
	QueryGen uint64
	// Cacheable marks Query as the owner shard's own snapshot object, so
	// query/corpus pair scores may enter and be served from the cache.
	Cacheable bool
	// K is the per-shard (and merged) result count.
	K int
	// Exact forces a full scan even on shards with an index.
	Exact bool
	// IncludeQuery keeps the query workflow in the results.
	IncludeQuery bool
	// MinSimilarity drops results at or below the threshold.
	MinSimilarity *float64
	// Par bounds each shard's scoring workers on the full-scan path.
	Par int
}

// Shard is the boundary between the coordinator and one partition of the
// corpus. The in-process implementation is Local; a future remote
// implementation speaks the same contract over RPC, with Pin degenerating
// to a generation token and ScanPrep to a measure descriptor.
//
// Reads go through Pin (a consistent point-in-time capture); writes go
// through the two-phase Validate/Commit pair, driven by a Coordinator that
// serializes writers across shards. Maintain runs deferrable upkeep
// (snapshot compaction) outside the coordinator's commit lock.
type Shard interface {
	// ID is the shard's position in the ring ([0, N)).
	ID() int
	// Pin captures the shard's current state for a consistent read.
	Pin() Pin
	// Validate checks a sub-batch against current state without mutating
	// anything — the prepare phase of a cross-shard Apply.
	Validate(ops []corpus.Op) error
	// Commit applies a validated sub-batch and returns the shard's new
	// generation. Between a coordinator's Validate and Commit no other
	// writer may intervene.
	Commit(ops []corpus.Op) (uint64, error)
	// Maintain performs deferrable maintenance (e.g. log compaction).
	Maintain()
	// Info reports the shard's current stats for aggregation.
	Info() Info
	// WarmLoad re-seeds the shard's score cache from persisted warm
	// entries under the given projection signature and epoch, returning
	// the number of entries restored.
	WarmLoad(sig string, epoch uint64) int
	// Close flushes durable state (final snapshot, warm cache under spec
	// when non-nil) and releases resources. Idempotent.
	Close(warm *WarmSpec) error
}

// Pin is a consistent point-in-time read view of one shard. Scans run
// against the pin while later commits proceed; the view never tears.
type Pin interface {
	// Shard is the owning shard's ID.
	Shard() int
	// Generation is the shard generation this pin captures.
	Generation() uint64
	// Size is the number of workflows in the pinned slice.
	Size() int
	// Get returns the pinned workflow with the given ID, or nil.
	Get(id string) *workflow.Workflow
	// Workflows returns the pinned slice in repository order; callers must
	// not modify it.
	Workflows() []*workflow.Workflow
	// Search scores q against the pinned slice and returns the shard-local
	// top-k (merged globally by the coordinator).
	Search(ctx context.Context, prep *ScanPrep, q Query) ([]search.Result, ReadStats, error)
	// PairsBlock scans pairs against other's pinned slice (all pairs of
	// self × other), or the shard's own upper-triangle block when other is
	// nil, returning pairs scoring at or above threshold. The receiver's
	// score cache serves the block.
	PairsBlock(ctx context.Context, other Pin, prep *ScanPrep, threshold float64, par int) ([]search.Pair, ReadStats, error)
}

// WarmSpec identifies the projection configuration warm-cache entries are
// persisted under (see the engine's projection signature and epoch).
type WarmSpec struct {
	Sig   string
	Epoch uint64
}

// Info is one shard's stats snapshot, aggregated by the engine and exposed
// per-shard by the service layer.
type Info struct {
	ID         int
	Generation uint64
	Workflows  int
	// Index is nil for shards without an inverted index.
	Index *index.Stats
	// IndexRebuilds counts full index rebuilds (drift recovery).
	IndexRebuilds int
	// Cache is nil for shards without a score cache.
	Cache *scorecache.Stats
	// Storage is nil for RAM-only shards.
	Storage *storage.Stats
	// WarmEntries is the number of warm cache entries re-seeded at boot.
	WarmEntries int
}
