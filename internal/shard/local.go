package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/scorecache"
	"repro/internal/search"
	"repro/internal/storage"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

// LocalConfig configures one in-process shard.
type LocalConfig struct {
	// MinShared > 0 gives the shard an inverted label index with that
	// candidate threshold.
	MinShared int
	// CacheSize > 0 gives the shard its own pairwise score cache.
	CacheSize int
	// Concurrency bounds the shard's refine workers (0 = GOMAXPROCS).
	Concurrency int
	// Dir, when non-empty, backs the shard with its own storage directory
	// (mutation log + snapshots); boot recovers it.
	Dir string
	// Storage tunes the shard's store; ignored without Dir.
	Storage storage.Options
	// Seed populates a shard with no recovered state at generation 0 (and
	// persists it as the baseline snapshot when the shard is durable).
	// Seeding a shard that recovered state is an error.
	Seed []*workflow.Workflow
	// Symtab, when non-nil, is the symbol table this shard's repository
	// interns into — one table shared by every shard of a deployment, so a
	// workflow's interned IDs mean the same thing on whichever shard scores
	// it. Nil gives the shard's repository its own private table.
	Symtab *symtab.Table
}

// Local is the in-process Shard implementation: it owns its slice of the
// corpus as a snapshot-versioned corpus.Repository, its inverted label
// index, its score cache, and (optionally) its own durable store.
type Local struct {
	id          int
	repo        *corpus.Repository
	idx         atomic.Pointer[index.Index]
	minShared   int
	concurrency int
	cache       *scorecache.Cache
	store       *storage.Store
	syms        *symtab.Table
	warnf       func(format string, args ...any)

	rebuilds    atomic.Int64
	warmEntries int

	closeMu sync.Mutex
	closed  bool
}

// NewLocal builds (and, when cfg.Dir is set, recovers) one shard.
func NewLocal(id int, cfg LocalConfig) (*Local, error) {
	repo, err := corpus.NewRepository()
	if err != nil {
		return nil, err
	}
	s := &Local{
		id:          id,
		repo:        repo,
		minShared:   cfg.MinShared,
		concurrency: cfg.Concurrency,
		warnf:       cfg.Storage.Warnf,
	}
	if s.warnf == nil {
		s.warnf = func(string, ...any) {}
	}
	if cfg.CacheSize > 0 {
		s.cache = scorecache.New(cfg.CacheSize)
	}
	// Wire the shared symbol table (or the repository's own) before any
	// workflow enters the repository, so every ingest resolves against it.
	tab := cfg.Symtab
	if tab != nil {
		if err := repo.AdoptSymtab(tab); err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
	} else {
		tab = repo.Symtab()
	}
	s.syms = tab
	if cfg.Dir != "" {
		cfg.Storage.Symtab = tab
		store, wfs, gen, err := storage.Open(cfg.Dir, cfg.Storage)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
		if gen > 0 || len(wfs) > 0 {
			if len(cfg.Seed) > 0 {
				store.Close() //wfsimvet:ignore errpath abort path before any write; the refusal error wins
				return nil, fmt.Errorf("shard %d: directory %s holds state at generation %d; refusing to seed over it", id, cfg.Dir, gen)
			}
			if err := repo.Restore(gen, wfs...); err != nil {
				store.Close()
				return nil, fmt.Errorf("shard %d: %w", id, err)
			}
		} else if len(cfg.Seed) > 0 {
			if err := s.seed(cfg.Seed); err != nil {
				store.Close()
				return nil, err
			}
			// Persist the seed as the baseline snapshot so the partition
			// assignment itself survives a restart.
			if err := store.Compact(0, cfg.Seed); err != nil {
				store.Close()
				return nil, fmt.Errorf("shard %d: persist seed: %w", id, err)
			}
		}
		repo.SetCommitHook(func(gen uint64, ops []corpus.Op) error {
			return store.Commit(gen, ops)
		})
		s.store = store
	} else if len(cfg.Seed) > 0 {
		if err := s.seed(cfg.Seed); err != nil {
			return nil, err
		}
	}
	if s.minShared > 0 {
		s.rebuildIndex()
		s.rebuilds.Store(0) // the initial build is not drift recovery
	}
	return s, nil
}

// seed installs the initial partition slice at generation 0.
func (s *Local) seed(wfs []*workflow.Workflow) error {
	if err := s.repo.Restore(0, wfs...); err != nil {
		return fmt.Errorf("shard %d: seed: %w", s.id, err)
	}
	return nil
}

// ID implements Shard.
func (s *Local) ID() int { return s.id }

// Repository exposes the shard's repository for tests.
func (s *Local) Repository() *corpus.Repository { return s.repo }

// Validate implements Shard: the prepare phase of a cross-shard Apply.
func (s *Local) Validate(ops []corpus.Op) error {
	return s.repo.ValidateBatch(ops)
}

// Commit implements Shard: applies a coordinator-validated sub-batch and
// maintains the inverted index incrementally, mirroring the single-engine
// Apply path (full rebuild only on drift).
func (s *Local) Commit(ops []corpus.Op) (uint64, error) {
	gen, err := s.repo.ApplyBatch(ops)
	if err != nil {
		return 0, err
	}
	if idx := s.idx.Load(); idx != nil {
		if idx.Generation() != gen-1 || idx.Apply(ops, gen) != nil {
			s.rebuildIndex()
			s.rebuilds.Add(1)
		}
	}
	return gen, nil
}

// rebuildIndex rebuilds the inverted index from the current snapshot.
func (s *Local) rebuildIndex() {
	snap := s.repo.Snapshot()
	idx := index.Build(snap)
	idx.Parallelism = s.concurrency
	idx.SetGeneration(snap.Generation())
	s.idx.Store(idx)
}

// Maintain implements Shard: compacts the mutation log into a snapshot when
// it has outgrown its thresholds. Runs outside the coordinator's commit
// lock, so compaction I/O never blocks readers pinning new views.
func (s *Local) Maintain() {
	if s.store == nil || !s.store.ShouldCompact() {
		return
	}
	snap := s.repo.Snapshot()
	if err := s.store.Compact(snap.Generation(), snap.Workflows()); err != nil {
		s.warnf("shard %d: snapshot compaction at generation %d failed: %v", s.id, snap.Generation(), err)
	}
}

// Info implements Shard.
func (s *Local) Info() Info {
	snap := s.repo.Snapshot()
	info := Info{
		ID:          s.id,
		Generation:  snap.Generation(),
		Workflows:   snap.Size(),
		WarmEntries: s.warmEntries,
	}
	if idx := s.idx.Load(); idx != nil {
		st := idx.Stats()
		info.Index = &st
		info.IndexRebuilds = int(s.rebuilds.Load())
	}
	if s.cache != nil {
		st := s.cache.Stats()
		info.Cache = &st
	}
	if s.store != nil {
		st := s.store.Stats()
		info.Storage = &st
	}
	return info
}

// WarmLoad implements Shard: re-seeds the shard's cache with its persisted
// intra-shard pair scores, keyed under the current generation and the
// boot-time projector epoch.
func (s *Local) WarmLoad(sig string, epoch uint64) int {
	if s.store == nil || s.cache == nil {
		return 0
	}
	gen := s.repo.Generation()
	packed, ok := PackGen(gen)
	if !ok {
		return 0
	}
	entries, ok := s.store.LoadScoreCache(gen, sig)
	if !ok {
		return 0
	}
	// Warm entries persist workflow IDs as strings (the cache file format
	// is symbol-table independent); resolve them against the live table.
	// An ID with no symbol belongs to a workflow this table never saw —
	// the entry is stale and is skipped rather than mis-keyed.
	tab := s.repo.Symtab()
	if tab == nil {
		return 0
	}
	n := 0
	for _, ent := range entries {
		a, okA := tab.Lookup(ent.A)
		b, okB := tab.Lookup(ent.B)
		if !okA || !okB || a == 0 || b == 0 {
			continue
		}
		s.cache.Put(scorecache.PairKey(ent.Measure, a, b, packed, epoch), ent.Score)
		n++
	}
	s.warmEntries = n
	return s.warmEntries
}

// Close implements Shard: final snapshot checkpoint, warm-cache export for
// the shard's own pairs, store release. Idempotent; a no-op for RAM-only
// shards.
func (s *Local) Close(warm *WarmSpec) error {
	if s.store == nil {
		return nil
	}
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	snap := s.repo.Snapshot()
	var firstErr error
	if err := s.store.Checkpoint(snap.Generation(), snap.Workflows()); err != nil {
		firstErr = err
	}
	if s.cache != nil && warm != nil {
		if packed, ok := PackGen(snap.Generation()); ok {
			exported := s.cache.Export(func(k scorecache.Key) bool {
				return k.Gen == packed && k.Proj == warm.Epoch
			})
			if tab := s.repo.Symtab(); tab != nil && len(exported) > 0 {
				// Persist workflow IDs as strings: the cache file outlives
				// this process's symbol table, so entries are re-resolved at
				// the next boot's WarmLoad.
				entries := make([]storage.CachedScore, 0, len(exported))
				for _, ent := range exported {
					a, b := tab.String(ent.Key.A), tab.String(ent.Key.B)
					if a == "" || b == "" {
						continue
					}
					entries = append(entries, storage.CachedScore{Measure: ent.Key.Measure, A: a, B: b, Score: ent.Score})
				}
				if err := s.store.SaveScoreCache(snap.Generation(), warm.Sig, entries); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	if err := s.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Pin implements Shard.
func (s *Local) Pin() Pin {
	return &localPin{s: s, snap: s.repo.Snapshot(), idx: s.idx.Load()}
}

// Symtab returns the shard's symbol table. NewCoordinator uses it to
// verify that every shard of a deployment assigns IDs from one table.
func (s *Local) Symtab() *symtab.Table { return s.syms }

// localPin is a consistent read view of a Local shard: a pinned repository
// snapshot plus the index as of pin time.
type localPin struct {
	s    *Local
	snap *corpus.Snapshot
	idx  *index.Index
}

func (p *localPin) Shard() int                       { return p.s.id }
func (p *localPin) Generation() uint64               { return p.snap.Generation() }
func (p *localPin) Size() int                        { return p.snap.Size() }
func (p *localPin) Get(id string) *workflow.Workflow { return p.snap.Get(id) }
func (p *localPin) Workflows() []*workflow.Workflow  { return p.snap.Workflows() }

// searchMeasure adapts one shard's scan state to measures.Measure for the
// index refine stage and the full-scan TopK: per candidate it routes the
// pre-projected pair through the shard's cache and the scan's specialised
// measure. Compare's first argument is always the query.
type searchMeasure struct {
	pin       *localPin
	prep      *ScanPrep
	pr        *Prepared
	scorer    pairScorer
	queryOrig *workflow.Workflow
	queryProj *workflow.Workflow
	queryGen  uint64
	cacheable bool
}

func (sm *searchMeasure) Name() string { return sm.prep.Name }

func (sm *searchMeasure) Compare(_, wf *workflow.Workflow) (float64, error) {
	// Cache only snapshot-owned candidates (an index candidate captured
	// across a compaction, or the query itself under IncludeQuery, is scored
	// but never cached — same ownership rule as the single-engine cache).
	cacheable := sm.cacheable && sm.pin.snap.Get(wf.ID) == wf
	// Evaluate in ID order (see PairsBlock): measures are symmetric in value
	// but not in bits, and the cache key is orientation-free, so a search
	// score must be computed exactly as the pair scan would compute it.
	x, xProj, xGen := sm.queryOrig, sm.queryProj, sm.queryGen
	y, yProj, yGen := wf, sm.pr.projOf(wf, sm.prep), sm.pin.Generation()
	if !workflow.IDsInOrder(x.ID, y.ID) {
		x, xProj, xGen, y, yProj, yGen = y, yProj, yGen, x, xProj, xGen
	}
	return sm.scorer.score(x, y, xProj, yProj, xGen, yGen, cacheable)
}

// Search implements Pin. The indexed filter-and-refine path is taken under
// exactly the single-engine conditions (index current for the pinned
// generation, no Exact/IncludeQuery/MinSimilarity); otherwise the pinned
// slice is scanned fully. Both paths score through the shard's cache and the
// scan's specialised measure.
//
//wfsimvet:hotpath
func (p *localPin) Search(ctx context.Context, prep *ScanPrep, q Query) ([]search.Result, ReadStats, error) {
	// A query resolved by a foreign symbol table carries module IDs that are
	// meaningless against this shard's corpus: the equal-ID fast paths would
	// compare symbols from two ID spaces. Strip the foreign resolution by
	// cloning — the clone is unresolved, so every comparison involving the
	// query falls back to exact string semantics (the index likewise falls
	// back to string lookup for unresolved queries).
	if q.Query != nil {
		if ref := q.Query.SymtabRef(); ref != nil && ref != p.s.syms {
			q.Query = q.Query.Clone()
		}
	}
	sm := &searchMeasure{
		pin:       p,
		prep:      prep,
		pr:        prep.For(p),
		queryOrig: q.Query,
		queryProj: prep.ProjectOne(q.Query),
		queryGen:  q.QueryGen,
		cacheable: q.Cacheable,
	}
	sm.scorer.prep = prep
	sm.scorer.cache = p.s.cache
	sm.scorer.tab = p.s.syms
	k := q.K
	if k <= 0 {
		k = 10
	}
	var stats ReadStats
	if p.idx != nil && p.idx.Generation() == p.snap.Generation() &&
		!q.Exact && !q.IncludeQuery && q.MinSimilarity == nil {
		res, err := p.idx.TopK(ctx, q.Query, sm, k, p.s.minShared)
		if err != nil {
			return nil, ReadStats{}, err
		}
		stats.Scored = res.CandidateCount - res.Skipped
		stats.Skipped = res.Skipped
		stats.Pruned = res.Pruned
		sm.scorer.fill(&stats)
		return res.Results, stats, nil
	}
	results, skipped, err := search.TopK(ctx, q.Query, p.snap, sm, search.Options{
		K:             k,
		Parallelism:   q.Par,
		IncludeQuery:  q.IncludeQuery,
		MinSimilarity: q.MinSimilarity,
	})
	if err != nil {
		return nil, ReadStats{}, err
	}
	stats.Skipped = skipped
	stats.Scored = p.snap.Size() - skipped
	if !q.IncludeQuery && p.snap.Get(q.Query.ID) != nil {
		stats.Scored--
	}
	sm.scorer.fill(&stats)
	return results, stats, nil
}

// PairsBlock implements Pin: the shard's own upper-triangle pair block
// (other == nil), or the full cross block self × other. Rows are fanned out
// with batch size 1 so uneven row lengths load-balance; results are
// unsorted — the coordinator merges and applies the global deterministic
// order.
//
//wfsimvet:hotpath
func (p *localPin) PairsBlock(ctx context.Context, other Pin, prep *ScanPrep, threshold float64, par int) ([]search.Pair, ReadStats, error) {
	self := prep.For(p)
	var scorer pairScorer
	scorer.prep = prep
	scorer.cache = p.s.cache
	scorer.tab = p.s.syms
	selfGen := p.Generation()

	cross := self
	otherGen := selfGen
	if other != nil {
		cross = prep.For(other)
		otherGen = other.Generation()
	}

	var mu sync.Mutex
	var out []search.Pair
	var skipped, scored atomic.Int64
	err := search.Batched(ctx, len(self.Orig), par, 1, func(i int) error {
		a, aProj := self.Orig[i], self.Proj[i]
		j0 := 0
		if other == nil {
			j0 = i + 1 // intra-shard: upper triangle only
		}
		var row []search.Pair
		for j := j0; j < len(cross.Orig); j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			b, bProj := cross.Orig[j], cross.Proj[j]
			// Evaluate in ID order (see search.Duplicates): the score must be
			// a function of the unordered pair, not of which shard's block
			// the pair landed in.
			x, xProj, xGen := a, aProj, selfGen
			y, yProj, yGen := b, bProj, otherGen
			if !workflow.IDsInOrder(x.ID, y.ID) {
				x, xProj, xGen, y, yProj, yGen = y, yProj, yGen, x, xProj, xGen
			}
			s, err := scorer.score(x, y, xProj, yProj, xGen, yGen, true)
			if err != nil {
				skipped.Add(1)
				continue
			}
			scored.Add(1)
			if s < threshold {
				continue
			}
			// Canonical orientation (A <= B by ID): block ownership must not
			// leak into the output, so N-shard and M-shard scans emit
			// identical pair lists.
			aID, bID := workflow.OrderIDs(a.ID, b.ID)
			row = append(row, search.Pair{A: aID, B: bID, Similarity: s})
		}
		if len(row) > 0 {
			mu.Lock()
			out = append(out, row...)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, ReadStats{}, err
	}
	stats := ReadStats{Scored: int(scored.Load()), Skipped: int(skipped.Load())}
	scorer.fill(&stats)
	return out, stats, nil
}
