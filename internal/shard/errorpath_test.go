package shard

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/storage"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

// A sharded data directory is pinned to its shard count: reopening with
// fewer or more shards must be refused in both directions, with the marker
// left intact so the original count still opens.
func TestCheckLayoutRefusesMismatchedShardCount(t *testing.T) {
	dir := t.TempDir()
	if err := CheckLayout(dir, 4); err != nil {
		t.Fatalf("fresh directory: %v", err)
	}
	if err := CheckLayout(dir, 4); err != nil {
		t.Fatalf("reopen with recorded count: %v", err)
	}
	for _, n := range []int{2, 8} {
		err := CheckLayout(dir, n)
		if err == nil {
			t.Fatalf("reopen with %d shards accepted; directory was written with 4", n)
		}
		if !strings.Contains(err.Error(), "4 shards") {
			t.Errorf("reopen with %d shards: error %q does not name the recorded count", n, err)
		}
	}
	// The refusals must not have rewritten the marker.
	recorded, ok, err := ReadMarker(dir)
	if err != nil || !ok || recorded != 4 {
		t.Fatalf("marker after refused reopens: n=%d ok=%v err=%v, want 4/true/nil", recorded, ok, err)
	}
	if err := CheckLayout(dir, 4); err != nil {
		t.Fatalf("original count no longer opens: %v", err)
	}
}

// A directory holding a flat (unsharded) corpus must not be adopted by a
// sharded engine: the corpus would be invisible under the shard
// subdirectories and a fork of the state would accrete next to it.
func TestCheckLayoutRefusesFlatDirectory(t *testing.T) {
	dir := t.TempDir()
	store, _, _, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	wf := &workflow.Workflow{ID: "flat-1", Modules: []*workflow.Module{{Label: "alpha"}}}
	if err := store.Commit(1, []corpus.Op{{Kind: corpus.OpAdd, ID: wf.ID, Workflow: wf}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	checkErr := CheckLayout(dir, 2)
	if checkErr == nil {
		t.Fatal("sharded open of a flat directory accepted")
	}
	if !strings.Contains(checkErr.Error(), "unsharded") {
		t.Errorf("error %q does not say the directory is unsharded", checkErr)
	}
	// No marker may have been written by the refusal: the directory must
	// still open as the flat corpus it is.
	if _, ok, err := ReadMarker(dir); err != nil || ok {
		t.Fatalf("refused sharded open left a marker behind (ok=%v err=%v)", ok, err)
	}
}

// A validation failure in one shard's sub-batch must leave every shard's
// durable state untouched too: after close and reopen, no generation has
// advanced and none of the batch's valid ops are visible.
func TestFailedApplyCommitsNothingDurably(t *testing.T) {
	c := testCorpus(t, 40)
	dir := t.TempDir()
	coord := buildLocal(t, c, 3, dir)
	v := coord.View()
	wantGens := v.Generations()
	wantSize := v.Size()

	// Ops spread across shards; the duplicate add fails validation on the
	// shard owning it while the fresh adds are valid on theirs.
	existing := c.Repo.Workflows()[0]
	ops := []corpus.Op{
		{Kind: corpus.OpAdd, ID: "fresh-a", Workflow: &workflow.Workflow{ID: "fresh-a", Modules: []*workflow.Module{{Label: "alpha"}}}},
		{Kind: corpus.OpAdd, ID: "fresh-b", Workflow: &workflow.Workflow{ID: "fresh-b", Modules: []*workflow.Module{{Label: "beta"}}}},
		{Kind: corpus.OpAdd, ID: existing.ID, Workflow: existing},
	}
	if _, err := coord.Apply(ops); err == nil {
		t.Fatal("Apply with an invalid op should fail")
	} else if !strings.Contains(err.Error(), "shard ") {
		t.Errorf("validation error %q does not name the failing shard", err)
	}
	if err := coord.Close(nil); err != nil {
		t.Fatal(err)
	}

	shards := make([]Shard, 3)
	tab := symtab.New()
	for i := range shards {
		s, err := NewLocal(i, LocalConfig{MinShared: 2, Dir: ShardDir(dir, i), Symtab: tab})
		if err != nil {
			t.Fatalf("reopen shard %d: %v", i, err)
		}
		shards[i] = s
	}
	coord2, err := NewCoordinator(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close(nil)
	v2 := coord2.View()
	gotGens := v2.Generations()
	for i := range wantGens {
		if gotGens[i] != wantGens[i] {
			t.Errorf("shard %d recovered at generation %d, want %d: failed Apply leaked a commit", i, gotGens[i], wantGens[i])
		}
	}
	if v2.Size() != wantSize {
		t.Errorf("recovered %d workflows, want %d", v2.Size(), wantSize)
	}
	if v2.Get("fresh-a") != nil || v2.Get("fresh-b") != nil {
		t.Error("valid ops of a failed batch survived a restart")
	}
}
