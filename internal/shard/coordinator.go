package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/search"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

// Coordinator implements the read/write surface of a single engine over N
// shards: it routes mutation batches to the owning shards with all-or-
// nothing validation (prepare on every touched shard before any commit),
// fans reads out via search.Batched, and merges per-shard results
// deterministically.
//
// Concurrency model: writers are serialized by applyMu; the commit section
// (WAL append + in-memory commit on every touched shard) additionally holds
// the write half of viewMu, while readers capture a View — every shard's pin
// — under the read half. A View is therefore always a commit-atomic frontier
// of the generation vector: readers never observe half a cross-shard batch.
type Coordinator struct {
	ring   *Ring
	shards []Shard

	applyMu sync.Mutex   // serializes cross-shard Apply transactions
	viewMu  sync.RWMutex // W: commit section; R: View capture
}

// NewCoordinator builds a coordinator over the given shards (in ring
// order). At least one shard is required. Shards that expose a symbol
// table (see Local.Symtab) must all share one instance: cross-shard
// scans compare interned module IDs directly, and IDs from two tables
// are meaningless against each other.
func NewCoordinator(shards []Shard) (*Coordinator, error) {
	ring, err := NewRing(len(shards))
	if err != nil {
		return nil, err
	}
	var tab *symtab.Table
	for i, s := range shards {
		st, ok := s.(interface{ Symtab() *symtab.Table })
		if !ok || st.Symtab() == nil {
			continue
		}
		switch {
		case tab == nil:
			tab = st.Symtab()
		case tab != st.Symtab():
			return nil, fmt.Errorf("shard: coordinator over %d shards with distinct symbol tables (shard %d differs); share one table via LocalConfig.Symtab", len(shards), i)
		}
	}
	return &Coordinator{ring: ring, shards: shards}, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Ring returns the coordinator's partitioning ring.
func (c *Coordinator) Ring() *Ring { return c.ring }

// Shard returns the i-th shard (tests and stats).
func (c *Coordinator) Shard(i int) Shard { return c.shards[i] }

// Infos reports every shard's stats, in shard order.
func (c *Coordinator) Infos() []Info {
	out := make([]Info, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.Info()
	}
	return out
}

// WarmLoad re-seeds every shard's cache from persisted warm entries.
func (c *Coordinator) WarmLoad(sig string, epoch uint64) int {
	n := 0
	for _, s := range c.shards {
		n += s.WarmLoad(sig, epoch)
	}
	return n
}

// Close closes every shard, returning the first error.
func (c *Coordinator) Close(warm *WarmSpec) error {
	var firstErr error
	for _, s := range c.shards {
		if err := s.Close(warm); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// View is a commit-atomic read frontier: one pin per shard, captured
// together. All reads of one engine operation run against a single View.
type View struct {
	pins []Pin
	ring *Ring
}

// View captures the current read frontier.
func (c *Coordinator) View() View {
	c.viewMu.RLock()
	defer c.viewMu.RUnlock()
	pins := make([]Pin, len(c.shards))
	for i, s := range c.shards {
		pins[i] = s.Pin()
	}
	return View{pins: pins, ring: c.ring}
}

// Pins returns the per-shard pins in shard order.
func (v View) Pins() []Pin { return v.pins }

// Generations returns the view's generation vector, indexed by shard.
func (v View) Generations() []uint64 {
	out := make([]uint64, len(v.pins))
	for i, p := range v.pins {
		out[i] = p.Generation()
	}
	return out
}

// AggregateGeneration is the sum of the generation vector — a monotonic
// scalar (every commit bumps at least one shard) for callers that want the
// single-engine shape; it equals the plain generation at one shard.
func (v View) AggregateGeneration() uint64 {
	var sum uint64
	for _, p := range v.pins {
		sum += p.Generation()
	}
	return sum
}

// Size is the total workflow count across the view.
func (v View) Size() int {
	n := 0
	for _, p := range v.pins {
		n += p.Size()
	}
	return n
}

// Owner returns the pin owning the given workflow ID.
func (v View) Owner(id string) Pin { return v.pins[v.ring.Owner(id)] }

// Get resolves a workflow by ID from its owning shard's pin.
func (v View) Get(id string) *workflow.Workflow { return v.Owner(id).Get(id) }

// Union returns all workflows of the view sorted by ID — the deterministic
// global order for whole-corpus operations (clustering). Sharding does not
// preserve global insertion order, so ID order is the documented corpus
// order of a sharded engine.
func (v View) Union() []*workflow.Workflow {
	out := make([]*workflow.Workflow, 0, v.Size())
	for _, p := range v.pins {
		out = append(out, p.Workflows()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Apply routes a mutation batch to the owning shards with all-or-nothing
// semantics: every touched shard validates its sub-batch (prepare) before
// any shard commits, so a batch that fails validation anywhere leaves every
// shard's generation and contents untouched. On success the sub-batches
// commit under the view write lock — readers observe the whole cross-shard
// batch or none of it — and the post-commit generation vector is returned.
//
// Caveat (documented limitation, not a code path): the commit phase appends
// to per-shard logs without a coordinator-level transaction record, so a
// crash or storage failure in the middle of the commit loop can leave a
// prefix of the touched shards committed. Validation failures — the only
// errors a well-formed deployment sees — are always atomic.
func (c *Coordinator) Apply(ops []corpus.Op) ([]uint64, error) {
	c.applyMu.Lock()
	defer c.applyMu.Unlock()

	split := make([][]corpus.Op, len(c.shards))
	for _, op := range ops {
		owner := c.ring.Owner(op.ID)
		split[owner] = append(split[owner], op)
	}
	// Prepare: validate every touched shard before committing to any.
	// applyMu guarantees no interleaved writer, so a passing validation
	// stays valid through the commit phase below.
	for i, sub := range split {
		if len(sub) == 0 {
			continue
		}
		if err := c.shards[i].Validate(sub); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	// Commit: apply every sub-batch under the view write lock, so readers
	// never capture a frontier with half the batch.
	c.viewMu.Lock()
	for i, sub := range split {
		if len(sub) == 0 {
			continue
		}
		if _, err := c.shards[i].Commit(sub); err != nil {
			c.viewMu.Unlock()
			return nil, fmt.Errorf("shard %d: commit after cross-shard validation: %w (shards before it committed — generations are mixed; see storage logs)", i, err)
		}
	}
	gens := make([]uint64, len(c.shards))
	for i, s := range c.shards {
		gens[i] = s.Info().Generation
	}
	c.viewMu.Unlock()
	// Deferrable maintenance (log compaction) outside the read-blocking
	// lock.
	for i, sub := range split {
		if len(sub) != 0 {
			c.shards[i].Maintain()
		}
	}
	return gens, nil
}

// Search fans the query out to every pin via search.Batched and merges the
// per-shard top-k lists into the global top-k with single-engine
// tie-breaking. Stats are summed across shards.
func (c *Coordinator) Search(ctx context.Context, v View, prep *ScanPrep, q Query) ([]search.Result, ReadStats, error) {
	per := make([][]search.Result, len(v.pins))
	perStats := make([]ReadStats, len(v.pins))
	err := search.Batched(ctx, len(v.pins), len(v.pins), 1, func(i int) error {
		res, st, err := v.pins[i].Search(ctx, prep, q)
		if err != nil {
			return err
		}
		per[i], perStats[i] = res, st
		return nil
	})
	if err != nil {
		return nil, ReadStats{}, err
	}
	var stats ReadStats
	for _, st := range perStats {
		stats.add(st)
	}
	return MergeTopK(per, q.K), stats, nil
}

// pairBlock is one unit of the Duplicates scan: the executing pin's slice
// against other's (other == nil for the intra-shard triangle).
type pairBlock struct {
	exec  Pin
	other Pin
}

// blocks decomposes the view's global pair triangle into N intra-shard
// triangles and N(N-1)/2 cross-shard rectangles. The executor of a cross
// block alternates between its two shards so cache population spreads
// instead of piling onto low shard indices.
func (v View) blocks() []pairBlock {
	var out []pairBlock
	for i := range v.pins {
		out = append(out, pairBlock{exec: v.pins[i]})
		for j := i + 1; j < len(v.pins); j++ {
			if (i+j)%2 == 0 {
				out = append(out, pairBlock{exec: v.pins[i], other: v.pins[j]})
			} else {
				out = append(out, pairBlock{exec: v.pins[j], other: v.pins[i]})
			}
		}
	}
	return out
}

// Duplicates scans the view's global pair triangle — every intra-shard and
// cross-shard block — for pairs scoring at or above threshold, fanning
// blocks out via search.Batched (each block runs its own row pool of width
// par, the per-shard worker budget). The merged list carries the exact
// single-engine order; pairs are oriented A <= B by ID regardless of which
// shard executed their block.
func (c *Coordinator) Duplicates(ctx context.Context, v View, prep *ScanPrep, threshold float64, par int) ([]search.Pair, ReadStats, error) {
	blocks := v.blocks()
	perPairs := make([][]search.Pair, len(blocks))
	perStats := make([]ReadStats, len(blocks))
	err := search.Batched(ctx, len(blocks), len(v.pins), 1, func(i int) error {
		b := blocks[i]
		pairs, st, err := b.exec.PairsBlock(ctx, b.other, prep, threshold, par)
		if err != nil {
			return err
		}
		perPairs[i], perStats[i] = pairs, st
		return nil
	})
	if err != nil {
		return nil, ReadStats{}, err
	}
	var stats ReadStats
	var out []search.Pair
	for i := range blocks {
		stats.add(perStats[i])
		out = append(out, perPairs[i]...)
	}
	SortPairs(out)
	return out, stats, nil
}

// unionMeasure scores arbitrary pairs of the view's union for matrix
// construction, routing each pair through the cache of the shard owning the
// lexicographically-smaller ID (matching the canonical cache-key
// orientation) and through the scan's specialised measure.
type unionMeasure struct {
	v       View
	prep    *ScanPrep
	scorers []pairScorer // one per shard, so counters stay per-cache
}

func (um *unionMeasure) Name() string { return um.prep.Name }

func (um *unionMeasure) Compare(a, b *workflow.Workflow) (float64, error) {
	pa := um.v.Owner(a.ID)
	pb := um.v.Owner(b.ID)
	aProj := um.prep.For(pa).projOf(a, um.prep)
	bProj := um.prep.For(pb).projOf(b, um.prep)
	execID := pa.Shard()
	if !workflow.IDsInOrder(a.ID, b.ID) {
		execID = pb.Shard()
	}
	return um.scorers[execID].score(a, b, aProj, bProj, pa.Generation(), pb.Generation(), true)
}

// Matrix computes the full pairwise similarity matrix over the view's union
// (in ID order) for clustering, reusing the cluster package's row-parallel
// builder with a shard-aware cached measure. The aggregated cache counters
// are returned alongside.
func (c *Coordinator) Matrix(ctx context.Context, v View, prep *ScanPrep, par int) (*cluster.Matrix, ReadStats, error) {
	um := &unionMeasure{v: v, prep: prep, scorers: make([]pairScorer, len(v.pins))}
	for i := range um.scorers {
		um.scorers[i].prep = prep
		if local, ok := v.pins[i].(*localPin); ok {
			um.scorers[i].cache = local.s.cache
		}
	}
	mat, err := cluster.BuildMatrix(ctx, unionCorpus(v.Union()), um, par)
	if err != nil {
		return nil, ReadStats{}, err
	}
	var stats ReadStats
	for i := range um.scorers {
		um.scorers[i].fill(&stats)
	}
	stats.Skipped = mat.Skipped
	n := len(mat.IDs)
	stats.Scored = n*(n-1)/2 - mat.Skipped
	return mat, stats, nil
}

// unionCorpus adapts a workflow slice to search.Corpus.
type unionCorpus []*workflow.Workflow

func (u unionCorpus) Workflows() []*workflow.Workflow { return u }
