package shard

import (
	"container/heap"
	"sort"

	"repro/internal/search"
)

// resultBetter is the global result order: descending similarity, ties
// broken by ascending ID — identical to search.SortResults, so a merged
// scatter-gather ranking ties exactly like a single-engine scan.
func resultBetter(a, b search.Result) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity > b.Similarity
	}
	return a.ID < b.ID
}

// mergeHeap is a k-way merge frontier over per-shard result lists, each
// already sorted by resultBetter (search.SortResults order).
type mergeHeap struct {
	heads []mergeHead
}

type mergeHead struct {
	list []search.Result
	pos  int
}

func (h *mergeHeap) Len() int { return len(h.heads) }
func (h *mergeHeap) Less(i, j int) bool {
	return resultBetter(h.heads[i].list[h.heads[i].pos], h.heads[j].list[h.heads[j].pos])
}
func (h *mergeHeap) Swap(i, j int) { h.heads[i], h.heads[j] = h.heads[j], h.heads[i] }
func (h *mergeHeap) Push(x any)    { h.heads = append(h.heads, x.(mergeHead)) }
func (h *mergeHeap) Pop() any {
	old := h.heads
	n := len(old)
	x := old[n-1]
	h.heads = old[:n-1]
	return x
}

// MergeTopK merges per-shard top-k result lists (each sorted in
// search.SortResults order) into the global top-k, preserving the exact
// single-engine order: each shard's local top-k contains every workflow that
// can appear in the global top-k from that shard, so the k-way merge of the
// heads is the global ranking.
func MergeTopK(lists [][]search.Result, k int) []search.Result {
	if k <= 0 {
		k = 10
	}
	h := &mergeHeap{heads: make([]mergeHead, 0, len(lists))}
	for _, list := range lists {
		if len(list) > 0 {
			h.heads = append(h.heads, mergeHead{list: list})
		}
	}
	heap.Init(h)
	out := make([]search.Result, 0, k)
	for h.Len() > 0 && len(out) < k {
		head := h.heads[0]
		out = append(out, head.list[head.pos])
		if head.pos+1 < len(head.list) {
			h.heads[0].pos++
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

// SortPairs applies the global duplicate-pair order — descending similarity,
// then ascending (A, B) — to a merged block union; identical to the order
// search.Duplicates emits.
func SortPairs(pairs []search.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Similarity != pairs[j].Similarity {
			return pairs[i].Similarity > pairs[j].Similarity
		}
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
}
