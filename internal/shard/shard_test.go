package shard

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/search"
	"repro/internal/storage"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

func testCorpus(t *testing.T, n int) *gen.Corpus {
	t.Helper()
	p := gen.Galaxy()
	p.Workflows = n
	p.Clusters = 8
	c, err := gen.Generate(p, 23)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func msMeasure() measures.Measure {
	return measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Normalize: true,
	})
}

func TestRingOwnerDeterministicAndCovering(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		ring, err := NewRing(n)
		if err != nil {
			t.Fatalf("NewRing(%d): %v", n, err)
		}
		counts := make([]int, n)
		for i := 0; i < 5000; i++ {
			id := fmt.Sprintf("wf-%04d", i)
			owner := ring.Owner(id)
			if owner < 0 || owner >= n {
				t.Fatalf("ring(%d).Owner(%q) = %d out of range", n, id, owner)
			}
			if again := ring.Owner(id); again != owner {
				t.Fatalf("ring(%d).Owner(%q) not deterministic: %d then %d", n, id, owner, again)
			}
			counts[owner]++
		}
		for s, c := range counts {
			if c == 0 {
				t.Errorf("ring(%d): shard %d owns no IDs out of 5000", n, s)
			}
		}
		if n == 1 && counts[0] != 5000 {
			t.Errorf("ring(1) must own everything, got %d", counts[0])
		}
	}
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) should fail")
	}
}

func TestRingStableAcrossInstances(t *testing.T) {
	a, _ := NewRing(4)
	b, _ := NewRing(4)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("workflow/%d", i)
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("two rings with the same shard count disagree on %q", id)
		}
	}
}

func TestMergeTopKMatchesGlobalSort(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		nShards := 1 + r.Intn(6)
		var all []search.Result
		lists := make([][]search.Result, nShards)
		for s := 0; s < nShards; s++ {
			n := r.Intn(20)
			for i := 0; i < n; i++ {
				// Coarse similarity buckets force plenty of ties so the
				// ID tie-break is actually exercised.
				res := search.Result{
					ID:         fmt.Sprintf("wf-%02d-%02d", s, i),
					Similarity: float64(r.Intn(5)) / 4,
				}
				lists[s] = append(lists[s], res)
				all = append(all, res)
			}
			sort.Slice(lists[s], func(i, j int) bool { return resultBetter(lists[s][i], lists[s][j]) })
		}
		sort.Slice(all, func(i, j int) bool { return resultBetter(all[i], all[j]) })
		k := 1 + r.Intn(15)
		got := MergeTopK(lists, k)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: merge returned %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: merged[%d] = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLayoutMarkerRoundTrip(t *testing.T) {
	root := t.TempDir()
	if _, ok, err := ReadMarker(root); err != nil || ok {
		t.Fatalf("ReadMarker on empty dir = ok=%v err=%v, want absent", ok, err)
	}
	if err := CheckLayout(root, 4); err != nil {
		t.Fatalf("CheckLayout on fresh dir: %v", err)
	}
	n, ok, err := ReadMarker(root)
	if err != nil || !ok || n != 4 {
		t.Fatalf("ReadMarker after CheckLayout = %d, %v, %v; want 4, true, nil", n, ok, err)
	}
	// Same count reopens fine; different count is refused with a clear error.
	if err := CheckLayout(root, 4); err != nil {
		t.Fatalf("CheckLayout same count: %v", err)
	}
	err = CheckLayout(root, 2)
	if err == nil {
		t.Fatal("CheckLayout with mismatched shard count should fail")
	}
	if !strings.Contains(err.Error(), "4 shards") || !strings.Contains(err.Error(), "-shards 4") {
		t.Errorf("mismatch error should name the recorded count and remedy, got: %v", err)
	}
	has, err := DirHasState(root)
	if err != nil || !has {
		t.Fatalf("DirHasState with marker only = %v, %v; want true", has, err)
	}
}

func TestCheckLayoutRefusesUnshardedDir(t *testing.T) {
	root := t.TempDir()
	store, _, _, err := storage.Open(root, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wf := &workflow.Workflow{ID: "w1", Modules: []*workflow.Module{{Label: "step one"}}}
	if err := store.Commit(1, []corpus.Op{{Kind: corpus.OpAdd, ID: "w1", Workflow: wf}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	err = CheckLayout(root, 2)
	if err == nil {
		t.Fatal("CheckLayout over a flat unsharded corpus should fail")
	}
	if !strings.Contains(err.Error(), "unsharded") {
		t.Errorf("error should say the directory is unsharded, got: %v", err)
	}
}

// buildLocal seeds nShards in-memory shards from the generated corpus,
// partitioned by the ring, and returns the coordinator.
func buildLocal(t *testing.T, c *gen.Corpus, nShards int, dir string) *Coordinator {
	t.Helper()
	ring, err := NewRing(nShards)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]*workflow.Workflow, nShards)
	for _, wf := range c.Repo.Workflows() {
		o := ring.Owner(wf.ID)
		parts[o] = append(parts[o], wf)
	}
	shards := make([]Shard, nShards)
	tab := symtab.New() // one table per coordinator, shared by its shards
	for i := range shards {
		cfg := LocalConfig{MinShared: 2, CacheSize: 1 << 16, Seed: parts[i], Symtab: tab}
		if dir != "" {
			cfg.Dir = ShardDir(dir, i)
		}
		s, err := NewLocal(i, cfg)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		shards[i] = s
	}
	coord, err := NewCoordinator(shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close(nil) })
	return coord
}

func TestCoordinatorApplyAtomicity(t *testing.T) {
	c := testCorpus(t, 60)
	coord := buildLocal(t, c, 3, "")
	before := coord.View()
	beforeGens := before.Generations()
	beforeSize := before.Size()

	// A batch touching several shards where one op is invalid (duplicate add)
	// must leave every shard untouched.
	existing := c.Repo.Workflows()[0]
	ops := []corpus.Op{
		{Kind: corpus.OpAdd, ID: "new-a", Workflow: &workflow.Workflow{ID: "new-a", Modules: []*workflow.Module{{Label: "alpha"}}}},
		{Kind: corpus.OpAdd, ID: "new-b", Workflow: &workflow.Workflow{ID: "new-b", Modules: []*workflow.Module{{Label: "beta"}}}},
		{Kind: corpus.OpAdd, ID: existing.ID, Workflow: existing},
	}
	if _, err := coord.Apply(ops); err == nil {
		t.Fatal("Apply with an invalid op should fail")
	}
	after := coord.View()
	afterGens := after.Generations()
	for i := range beforeGens {
		if afterGens[i] != beforeGens[i] {
			t.Errorf("shard %d generation moved %d -> %d after failed Apply", i, beforeGens[i], afterGens[i])
		}
	}
	if after.Size() != beforeSize {
		t.Errorf("size moved %d -> %d after failed Apply", beforeSize, after.Size())
	}
	if after.Get("new-a") != nil || after.Get("new-b") != nil {
		t.Error("failed Apply leaked workflows into shards")
	}

	// The valid prefix alone commits, bumping exactly the touched shards.
	gens, err := coord.Apply(ops[:2])
	if err != nil {
		t.Fatalf("valid Apply: %v", err)
	}
	v := coord.View()
	if v.Get("new-a") == nil || v.Get("new-b") == nil {
		t.Fatal("committed workflows not visible")
	}
	bumped := 0
	for i := range gens {
		switch gens[i] {
		case beforeGens[i]:
		case beforeGens[i] + 1:
			bumped++
		default:
			t.Errorf("shard %d generation jumped %d -> %d", i, beforeGens[i], gens[i])
		}
	}
	if bumped == 0 {
		t.Error("no shard generation advanced after successful Apply")
	}
	if got := v.AggregateGeneration(); got != sum(gens) {
		t.Errorf("AggregateGeneration = %d, want %d", got, sum(gens))
	}
}

func sum(v []uint64) uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

func TestSearchEquivalenceAcrossShardCounts(t *testing.T) {
	c := testCorpus(t, 80)
	prep1 := NewScanPrep(msMeasure(), 0)
	coord1 := buildLocal(t, c, 1, "")
	v1 := coord1.View()

	queries := c.Repo.Workflows()[:5]
	for _, nShards := range []int{2, 3, 5} {
		coordN := buildLocal(t, c, nShards, "")
		vN := coordN.View()
		prepN := NewScanPrep(msMeasure(), 0)
		for _, q := range queries {
			r1, _, err := coord1.Search(context.Background(), v1, prep1, Query{Query: q, K: 15})
			if err != nil {
				t.Fatal(err)
			}
			rN, _, err := coordN.Search(context.Background(), vN, prepN, Query{Query: q, K: 15})
			if err != nil {
				t.Fatal(err)
			}
			if len(r1) != len(rN) {
				t.Fatalf("%d shards, query %s: %d results vs %d at 1 shard", nShards, q.ID, len(rN), len(r1))
			}
			for i := range r1 {
				if r1[i].ID != rN[i].ID || r1[i].Similarity != rN[i].Similarity {
					t.Fatalf("%d shards, query %s, rank %d: got (%s, %g), want (%s, %g)",
						nShards, q.ID, i, rN[i].ID, rN[i].Similarity, r1[i].ID, r1[i].Similarity)
				}
			}
		}
	}
}

func TestDuplicatesEquivalenceAndCrossShardPairs(t *testing.T) {
	c := testCorpus(t, 60)
	threshold := 0.5

	coord1 := buildLocal(t, c, 1, "")
	p1, _, err := coord1.Duplicates(context.Background(), coord1.View(), NewScanPrep(msMeasure(), 0), threshold, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) == 0 {
		t.Fatal("expected duplicate pairs at threshold 0.5 in a clustered corpus")
	}

	coord4 := buildLocal(t, c, 4, "")
	p4, _, err := coord4.Duplicates(context.Background(), coord4.View(), NewScanPrep(msMeasure(), 0), threshold, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p4) {
		t.Fatalf("pair count differs: 1 shard %d vs 4 shards %d", len(p1), len(p4))
	}
	ring := coord4.Ring()
	cross := 0
	for i := range p1 {
		if p1[i] != p4[i] {
			t.Fatalf("pair %d differs: 1 shard %+v vs 4 shards %+v", i, p1[i], p4[i])
		}
		if ring.Owner(p4[i].A) != ring.Owner(p4[i].B) {
			cross++
		}
	}
	if cross == 0 {
		t.Error("no cross-shard pair in the duplicate set; block decomposition untested")
	}
	t.Logf("%d pairs, %d cross-shard", len(p4), cross)
}

func TestLocalShardDurableRoundTrip(t *testing.T) {
	c := testCorpus(t, 30)
	dir := t.TempDir()
	coord := buildLocal(t, c, 2, dir)
	v := coord.View()
	wantGens := v.Generations()
	wantIDs := make([]string, 0, v.Size())
	for _, wf := range v.Union() {
		wantIDs = append(wantIDs, wf.ID)
	}
	if err := coord.Close(nil); err != nil {
		t.Fatal(err)
	}

	// Reopen without seeds: state must come back per shard, assigning
	// symbols from one shared table exactly as the original deployment did.
	shards := make([]Shard, 2)
	tab := symtab.New()
	for i := range shards {
		s, err := NewLocal(i, LocalConfig{MinShared: 2, Dir: ShardDir(dir, i), Symtab: tab})
		if err != nil {
			t.Fatalf("reopen shard %d: %v", i, err)
		}
		shards[i] = s
	}
	coord2, err := NewCoordinator(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close(nil)
	v2 := coord2.View()
	gotGens := v2.Generations()
	for i := range wantGens {
		if gotGens[i] != wantGens[i] {
			t.Errorf("shard %d generation %d after restart, want %d", i, gotGens[i], wantGens[i])
		}
	}
	gotIDs := make([]string, 0, v2.Size())
	for _, wf := range v2.Union() {
		gotIDs = append(gotIDs, wf.ID)
	}
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("restart lost workflows: %d vs %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("restart changed corpus: ID[%d] = %s, want %s", i, gotIDs[i], wantIDs[i])
		}
	}

	// Seeding over recovered state is refused.
	if _, err := NewLocal(0, LocalConfig{Dir: ShardDir(dir, 0), Seed: c.Repo.Workflows()[:1]}); err == nil {
		t.Error("seeding a shard that recovered state should fail")
	}
	_ = filepath.Join // keep import if unused in future edits
}
