// Package shard partitions a workflow corpus across N engine shards and
// coordinates scatter-gather reads and transactional writes over them — the
// partition-first architecture of large astronomical catalogs (own the data
// in shards, push work to the partitions, merge small results centrally)
// applied to the similarity-search workloads of Starlinger et al.
//
// Ownership is by consistent-hashed workflow ID: a Ring maps every ID to
// exactly one shard, each shard owns its slice of the corpus together with
// its inverted label index, its pairwise score cache and (optionally) its
// own durable storage directory, and a Coordinator implements the read/write
// surface of a single engine on top — routing mutation batches to the owning
// shards with all-or-nothing validation, fanning Search/Duplicates out via
// search.Batched, and merging per-shard top-k heaps deterministically.
//
// The shard boundary is the Shard interface. This package ships the
// in-process implementation (NewLocal); the same Coordinator is designed to
// later drive remote shards over RPC, where the measures.Measure arguments
// become measure descriptors and pinned snapshots become generation tokens.
package shard

import (
	"fmt"
	"sort"
)

// ringReplicas is the number of virtual nodes per shard on the ring. It is
// part of the durable partitioning contract: changing it would re-home
// workflow IDs, so the value is fixed and recorded via the layout marker
// format version (see layout.go).
const ringReplicas = 64

// Ring is a consistent-hash ring assigning workflow IDs to shard indices.
// The assignment is a pure function of (ID, shard count): two rings built
// for the same N agree across processes and restarts.
type Ring struct {
	n      int
	hashes []uint64 // sorted virtual-node positions
	owners []int    // owners[i] = shard owning hashes[i]
}

// NewRing builds the ring for n shards (n >= 1).
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: ring needs at least 1 shard, got %d", n)
	}
	r := &Ring{n: n}
	if n == 1 {
		return r, nil // everything belongs to shard 0; no ring walk needed
	}
	type point struct {
		hash  uint64
		shard int
	}
	points := make([]point, 0, n*ringReplicas)
	for s := 0; s < n; s++ {
		for v := 0; v < ringReplicas; v++ {
			h := fnv64(fmt.Sprintf("shard-%d-vnode-%d", s, v))
			points = append(points, point{h, s})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].shard < points[j].shard // stable under (astronomically unlikely) collisions
	})
	r.hashes = make([]uint64, len(points))
	r.owners = make([]int, len(points))
	for i, p := range points {
		r.hashes[i] = p.hash
		r.owners[i] = p.shard
	}
	return r, nil
}

// Shards returns the number of shards the ring distributes over.
func (r *Ring) Shards() int { return r.n }

// Owner returns the shard index owning the given workflow ID.
func (r *Ring) Owner(id string) int {
	if r.n == 1 {
		return 0
	}
	h := fnv64(id)
	// First virtual node clockwise from h, wrapping past the end.
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// fnv64 is FNV-1a with a splitmix64 finalizer, inlined to keep Owner
// allocation-free on the hot path. Plain FNV-1a diffuses the final bytes of
// short strings poorly — sequential IDs ("wf-0001", "wf-0002", ...) land in
// clumps, starving shards of the ring — so the finalizer's avalanche step is
// part of the partitioning contract, like ringReplicas.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
