package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

// MarkerFormat identifies the on-disk sharded layout. It covers both the
// directory structure (shards.json + shard-NNNN subdirectories) and the
// partitioning function (FNV-1a ring, 64 virtual nodes per shard): a change
// to either needs a new format string.
const MarkerFormat = "wfsim-shards-v1"

// markerFile is the layout marker at the root of a sharded data directory.
const markerFile = "shards.json"

type marker struct {
	Format string `json:"format"`
	Shards int    `json:"shards"`
}

// ShardDir returns the storage subdirectory for shard i under root.
func ShardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%04d", i))
}

// ReadMarker reports the shard count recorded in root's layout marker.
// ok is false when no marker exists (the directory is unsharded or empty).
func ReadMarker(root string) (n int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(root, markerFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("shard: read layout marker: %w", err)
	}
	var m marker
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, false, fmt.Errorf("shard: parse %s: %w", filepath.Join(root, markerFile), err)
	}
	if m.Format != MarkerFormat {
		return 0, false, fmt.Errorf("shard: %s has unsupported layout format %q (want %q)", root, m.Format, MarkerFormat)
	}
	if m.Shards < 1 {
		return 0, false, fmt.Errorf("shard: %s records invalid shard count %d", root, m.Shards)
	}
	return m.Shards, true, nil
}

// WriteMarker records the shard count in root's layout marker. The marker is
// written once when a sharded data directory is initialised and never
// rewritten: reopening with a different count is refused, not resharded.
func WriteMarker(root string, n int) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("shard: create data directory: %w", err)
	}
	data, err := json.Marshal(marker{Format: MarkerFormat, Shards: n})
	if err != nil {
		return err
	}
	path := filepath.Join(root, markerFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: write layout marker: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: write layout marker: %w", err)
	}
	return nil
}

// CheckLayout validates root for opening with n shards and initialises the
// marker when the directory is fresh. It refuses, with a clear error, to
// reinterpret a directory written under a different shard count or an
// unsharded (flat) layout — resharding on disk is never silent.
func CheckLayout(root string, n int) error {
	recorded, ok, err := ReadMarker(root)
	if err != nil {
		return err
	}
	if ok {
		if recorded != n {
			return fmt.Errorf("shard: data directory %s was written with %d shards; refusing to open with %d (resharding on disk is not supported — start with -shards %d or point at a fresh directory)", root, recorded, n, recorded)
		}
		return nil
	}
	// No marker. A flat (unsharded) storage layout here means the directory
	// belongs to a 1-shard engine from before sharding existed.
	flat, err := storage.DirHasState(root)
	if err != nil {
		return err
	}
	if flat {
		return fmt.Errorf("shard: data directory %s holds an unsharded corpus; refusing to open with %d shards (run without -shards, or point at a fresh directory)", root, n)
	}
	return WriteMarker(root, n)
}

// DirHasState reports whether root holds any durable corpus state in the
// sharded layout: a layout marker, or stored state under any shard
// subdirectory.
func DirHasState(root string) (bool, error) {
	recorded, ok, err := ReadMarker(root)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	for i := 0; i < recorded; i++ {
		has, err := storage.DirHasState(ShardDir(root, i))
		if err != nil {
			return false, err
		}
		if has {
			return true, nil
		}
	}
	// The marker alone pins the directory to a shard count even before the
	// first commit: treat it as state so preloads don't silently adopt it.
	return true, nil
}
