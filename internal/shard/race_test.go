package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

// versionMeasure scores a pair as the sum of the two workflows' content
// versions (parsed from the first module label, "v<n>"). Scores are then an
// exact function of the content a pin captured: a cache entry computed
// against one generation's content and served against another's is
// immediately visible as a wrong sum.
type versionMeasure struct{}

func (versionMeasure) Name() string { return "version_sum" }

func (versionMeasure) Compare(a, b *workflow.Workflow) (float64, error) {
	va, err := versionOf(a)
	if err != nil {
		return 0, err
	}
	vb, err := versionOf(b)
	if err != nil {
		return 0, err
	}
	return float64(va + vb), nil
}

func versionOf(wf *workflow.Workflow) (int, error) {
	if len(wf.Modules) == 0 {
		return 0, fmt.Errorf("workflow %s has no modules", wf.ID)
	}
	return strconv.Atoi(wf.Modules[0].Label[1:])
}

func versionWorkflow(id string, version int) *workflow.Workflow {
	return &workflow.Workflow{ID: id, Modules: []*workflow.Module{{Label: fmt.Sprintf("v%d", version)}}}
}

// TestRacePinnedReadsDuringApply runs readers against coordinator views
// while writers churn the corpus through two-phase Apply, under -race. Each
// replace bumps the content version embedded in the workflow, and the
// measure returns the version sum, so every served score proves which
// content it was computed against. The readers assert three invariants the
// coordinator documents:
//
//  1. A View is a commit-atomic frontier: generation vectors observed by
//     one reader never move backwards on any shard.
//  2. A pinned read is stable: the same View searched twice returns
//     identical results even while commits land in between.
//  3. No stale-generation score is ever served: every result's similarity
//     equals the version sum of the *pinned* query and candidate content,
//     even though the shards' score caches are small enough to churn and
//     hold entries from many generations at once.
func TestRacePinnedReadsDuringApply(t *testing.T) {
	const nIDs = 24
	ids := make([]string, nIDs)
	seed := make([]*workflow.Workflow, nIDs)
	for i := range ids {
		ids[i] = fmt.Sprintf("wf-%02d", i)
		seed[i] = versionWorkflow(ids[i], 0)
	}

	const nShards = 3
	ring, err := NewRing(nShards)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]*workflow.Workflow, nShards)
	for _, wf := range seed {
		o := ring.Owner(wf.ID)
		parts[o] = append(parts[o], wf)
	}
	shards := make([]Shard, nShards)
	tab := symtab.New()
	for i := range shards {
		// A tiny cache forces eviction to race the generation churn.
		s, err := NewLocal(i, LocalConfig{CacheSize: 128, Seed: parts[i], Symtab: tab})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		shards[i] = s
	}
	coord, err := NewCoordinator(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close(nil)

	const (
		writers          = 2
		appliesPerWriter = 200
		readers          = 4
	)
	ctx := context.Background()
	var version atomic.Int64
	var writersDone atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersDone.Add(1)
			for i := 0; i < appliesPerWriter; i++ {
				id := ids[(w*appliesPerWriter+i)%nIDs]
				wf := versionWorkflow(id, int(version.Add(1)))
				if _, err := coord.Apply([]corpus.Op{{Kind: corpus.OpReplace, ID: id, Workflow: wf}}); err != nil {
					t.Errorf("writer %d: Apply: %v", w, err)
					return
				}
			}
		}(w)
	}

	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			lastGens := make([]uint64, nShards)
			for iter := 0; writersDone.Load() < writers; iter++ {
				v := coord.View()
				gens := v.Generations()
				for i, g := range gens {
					if g < lastGens[i] {
						t.Errorf("reader %d: shard %d generation moved backwards %d -> %d", rd, i, lastGens[i], g)
						return
					}
					lastGens[i] = g
				}

				id := ids[(rd*7+iter)%nIDs]
				query := v.Get(id)
				if query == nil {
					t.Errorf("reader %d: pinned view lost %s", rd, id)
					return
				}
				q := Query{
					Query:     query,
					QueryGen:  v.Owner(id).Generation(),
					Cacheable: true,
					K:         nIDs,
				}
				res, _, err := coord.Search(ctx, v, NewScanPrep(versionMeasure{}, 0), q)
				if err != nil {
					t.Errorf("reader %d: Search: %v", rd, err)
					return
				}
				qv, err := versionOf(query)
				if err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				for _, r := range res {
					cand := v.Get(r.ID)
					cv, err := versionOf(cand)
					if err != nil {
						t.Errorf("reader %d: %v", rd, err)
						return
					}
					if want := float64(qv + cv); r.Similarity != want {
						t.Errorf("reader %d: query %s vs %s scored %v, want %v: score not computed against the pinned content (stale generation served)",
							rd, id, r.ID, r.Similarity, want)
						return
					}
				}

				// The same view searched again must reproduce the results
				// exactly, however many commits landed in between.
				again, _, err := coord.Search(ctx, v, NewScanPrep(versionMeasure{}, 0), q)
				if err != nil {
					t.Errorf("reader %d: re-Search: %v", rd, err)
					return
				}
				if len(again) != len(res) {
					t.Errorf("reader %d: pinned re-read returned %d results, first read %d", rd, len(again), len(res))
					return
				}
				for i := range res {
					if res[i] != again[i] {
						t.Errorf("reader %d: pinned re-read diverged at rank %d: %+v then %+v", rd, i, res[i], again[i])
						return
					}
				}
			}
		}(rd)
	}
	wg.Wait()
}
