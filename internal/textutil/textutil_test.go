package textutil

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"blast", "blastn", 1},
		{"BLAST", "blast", 5}, // case-sensitive by design
		{"héllo", "hello", 1}, // rune-wise, not byte-wise
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if got := LevenshteinSimilarity("", ""); got != 1 {
		t.Errorf("sim of empties = %v, want 1", got)
	}
	if got := LevenshteinSimilarity("abc", "abc"); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := LevenshteinSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	if got := LevenshteinSimilarity("abcd", "abce"); got != 0.75 {
		t.Errorf("one-sub-of-four = %v, want 0.75", got)
	}
}

// Metric axioms for Levenshtein, checked by property testing on short
// random strings over a small alphabet (so collisions are frequent).
func randString(r *rand.Rand, n int) string {
	const alpha = "abcXYZ "
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[r.Intn(len(alpha))])
	}
	return b.String()
}

func TestPropertyLevenshteinMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randString(r, r.Intn(8))
		b := randString(r, r.Intn(8))
		c := randString(r, r.Intn(8))
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba { // symmetry
			return false
		}
		if (dab == 0) != (a == b) { // identity of indiscernibles
			return false
		}
		// triangle inequality
		if Levenshtein(a, c) > dab+Levenshtein(b, c) {
			return false
		}
		// upper bound: max length; lower bound: length difference
		la, lb := len([]rune(a)), len([]rune(b))
		hi, lo := la, la-lb
		if lb > hi {
			hi = lb
		}
		if lo < 0 {
			lo = -lo
		}
		return dab >= lo && dab <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLevenshteinSimilarityRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randString(r, r.Intn(10))
		b := randString(r, r.Intn(10))
		s := LevenshteinSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"KEGG pathway analysis", []string{"kegg", "pathway", "analysis"}},
		{"Get_Pathway-Genes by Entrez gene id", []string{"get", "pathwaygenes", "by", "entrez", "gene", "id"}},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
		{"(parens) & symbols!", []string{"parens", "symbols"}},
		{"___", nil},
		{"", nil},
		{"BLAST2GO v2.5", []string{"blast2go", "v25"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFilterStopwords(t *testing.T) {
	in := []string{"the", "kegg", "pathway", "of", "a", "gene"}
	want := []string{"kegg", "pathway", "gene"}
	if got := FilterStopwords(in); !reflect.DeepEqual(got, want) {
		t.Errorf("FilterStopwords = %v, want %v", got, want)
	}
	if !IsStopword("the") || IsStopword("kegg") {
		t.Error("IsStopword misclassifies")
	}
}

func TestTokenSet(t *testing.T) {
	set := TokenSet("The pathway, the PATHWAY and a Gene")
	want := map[string]bool{"pathway": true, "gene": true}
	if !reflect.DeepEqual(set, want) {
		t.Errorf("TokenSet = %v, want %v", set, want)
	}
}

func TestSetJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if got := SetJaccard(a, b); got != 1.0/3.0 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := SetJaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	if got := SetJaccard(nil, nil); got != 0 {
		t.Errorf("empty Jaccard = %v, want 0 (no evidence)", got)
	}
	if got := SetJaccard(a, nil); got != 0 {
		t.Errorf("half-empty Jaccard = %v, want 0", got)
	}
}

func TestPropertySetJaccardSymmetricBounded(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := map[string]bool{}, map[string]bool{}
		for _, x := range xs {
			a[string(rune('a'+x%16))] = true
		}
		for _, y := range ys {
			b[string(rune('a'+y%16))] = true
		}
		j1, j2 := SetJaccard(a, b), SetJaccard(b, a)
		if j1 != j2 {
			return false
		}
		return j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLevenshteinShortLabels(b *testing.B) {
	x, y := "getKEGGPathwayByGene", "get_pathway_by_entrez_gene_id"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(x, y)
	}
}

func BenchmarkTokenSet(b *testing.B) {
	text := "This workflow retrieves the KEGG pathways for a list of Entrez gene identifiers and renders them as annotated diagrams"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TokenSet(text)
	}
}
