package textutil

import (
	"strings"
	"unicode"
)

// Tokenize implements the Bag of Words preprocessing of Section 2.2:
// the input is split on whitespace and underscores, tokens are lowercased
// and cleansed of non-alphanumeric characters, and empty tokens are dropped.
// Stopwords are NOT removed here; see FilterStopwords.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return unicode.IsSpace(r) || r == '_'
	})
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		var b strings.Builder
		for _, r := range f {
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				b.WriteRune(unicode.ToLower(r))
			}
		}
		if b.Len() > 0 {
			out = append(out, b.String())
		}
	}
	return out
}

// stopwords is a compact English stopword list of the kind used for
// workflow-description cleansing. It intentionally covers function words
// only, never domain vocabulary.
var stopwords = map[string]bool{
	"a": true, "about": true, "above": true, "after": true, "again": true,
	"against": true, "all": true, "am": true, "an": true, "and": true,
	"any": true, "are": true, "as": true, "at": true, "be": true,
	"because": true, "been": true, "before": true, "being": true,
	"below": true, "between": true, "both": true, "but": true, "by": true,
	"can": true, "could": true, "did": true, "do": true, "does": true,
	"doing": true, "down": true, "during": true, "each": true, "few": true,
	"for": true, "from": true, "further": true, "get": true, "gets": true,
	"had": true, "has": true, "have": true, "having": true, "he": true,
	"her": true, "here": true, "hers": true, "him": true, "his": true,
	"how": true, "i": true, "if": true, "in": true, "into": true,
	"is": true, "it": true, "its": true, "itself": true, "just": true,
	"me": true, "more": true, "most": true, "my": true, "no": true,
	"nor": true, "not": true, "now": true, "of": true, "off": true,
	"on": true, "once": true, "only": true, "or": true, "other": true,
	"our": true, "ours": true, "out": true, "over": true, "own": true,
	"same": true, "she": true, "should": true, "so": true, "some": true,
	"such": true, "than": true, "that": true, "the": true, "their": true,
	"theirs": true, "them": true, "then": true, "there": true,
	"these": true, "they": true, "this": true, "those": true,
	"through": true, "to": true, "too": true, "under": true, "until": true,
	"up": true, "use": true, "used": true, "uses": true, "using": true,
	"very": true, "was": true, "we": true, "were": true, "what": true,
	"when": true, "where": true, "which": true, "while": true, "who": true,
	"whom": true, "why": true, "will": true, "with": true, "would": true,
	"you": true, "your": true, "yours": true,
}

// IsStopword reports whether the (already lowercased) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// FilterStopwords returns the tokens that are not stopwords, preserving
// order. The input slice is not modified.
func FilterStopwords(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// TokenSet tokenizes, filters stopwords, and deduplicates into a set.
// This is the full Bag of Words preprocessing pipeline (the measure is
// set-based: multiple occurrences of a token are not counted, per the
// paper's note that counted variants performed slightly worse).
func TokenSet(text string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(text) {
		if !stopwords[t] {
			set[t] = true
		}
	}
	return set
}

// SetJaccard computes |A∩B| / |A∪B| for two string sets. Two empty sets have
// similarity 0 (no evidence of similarity, matching the measure's use for
// retrieval: a workflow without annotations matches nothing).
func SetJaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// MatchMismatchRatio computes #matches / (#matches + #mismatches) where
// #matches is the number of tokens present in both sets and #mismatches the
// number present in exactly one — the simBW formula of Section 2.2, which
// equals the Jaccard index on sets.
func MatchMismatchRatio(a, b map[string]bool) float64 { return SetJaccard(a, b) }
