// Package textutil provides the text-processing primitives used by module
// and annotation comparison: Levenshtein edit distance (Levenshtein 1966),
// tokenization with stopword filtering as specified for the Bag of Words
// measure, and set-overlap (Jaccard) helpers.
package textutil

import "unicode/utf8"

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions and substitutions transforming a
// into b. It runs in O(len(a)*len(b)) time and O(min) space.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := toRunes(a), toRunes(b)
	// Keep the shorter string in rb to minimise the DP row.
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSimilarity normalises the edit distance into a similarity in
// [0,1]: 1 - dist/max(|a|,|b|). Two empty strings are defined as identical
// (similarity 1).
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}

func toRunes(s string) []rune {
	// Fast path for ASCII avoids the rune conversion allocation cost
	// mattering less; correctness for UTF-8 matters more here.
	return []rune(s)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
