package search

import (
	"context"
	"errors"
	"testing"

	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/workflow"
)

func testCorpus(t *testing.T) *gen.Corpus {
	t.Helper()
	p := gen.Taverna()
	p.Workflows = 100
	p.Clusters = 6
	c, err := gen.Generate(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func msMeasure() measures.Measure {
	return measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Normalize: true,
	})
}

func TestTopKBasic(t *testing.T) {
	c := testCorpus(t)
	query := c.Repo.Workflows()[0]
	results, skipped, err := TopK(context.Background(), query, c.Repo, msMeasure(), Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if len(results) != 10 {
		t.Fatalf("results = %d, want 10", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Similarity > results[i-1].Similarity {
			t.Fatal("results not sorted by similarity")
		}
	}
	for _, r := range results {
		if r.ID == query.ID {
			t.Error("query included in results")
		}
	}
}

func TestTopKIncludeQuery(t *testing.T) {
	c := testCorpus(t)
	query := c.Repo.Workflows()[0]
	results, _, _ := TopK(context.Background(), query, c.Repo, msMeasure(), Options{K: 5, IncludeQuery: true})
	if results[0].ID != query.ID || results[0].Similarity != 1 {
		t.Errorf("top result = %+v, want the query itself at similarity 1", results[0])
	}
}

func TestTopKFindsClusterSiblings(t *testing.T) {
	c := testCorpus(t)
	query := c.Repo.Workflows()[0]
	meta := c.Truth.Meta[query.ID]
	results, _, _ := TopK(context.Background(), query, c.Repo, msMeasure(), Options{K: 10})
	same := 0
	for _, r := range results {
		if c.Truth.Meta[r.ID].Cluster == meta.Cluster {
			same++
		}
	}
	if same < 5 {
		t.Errorf("only %d/10 top results from the query's cluster", same)
	}
}

func TestTopKDeterministic(t *testing.T) {
	c := testCorpus(t)
	query := c.Repo.Workflows()[3]
	r1, _, _ := TopK(context.Background(), query, c.Repo, msMeasure(), Options{K: 10})
	r2, _, _ := TopK(context.Background(), query, c.Repo, msMeasure(), Options{K: 10, Parallelism: 1})
	if len(r1) != len(r2) {
		t.Fatal("lengths differ")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestTopKMinSimilarity(t *testing.T) {
	c := testCorpus(t)
	query := c.Repo.Workflows()[0]
	zero := 0.99
	results, _, _ := TopK(context.Background(), query, c.Repo, msMeasure(), Options{K: 100, MinSimilarity: &zero})
	for _, r := range results {
		if r.Similarity <= zero {
			t.Errorf("result %v below threshold", r)
		}
	}
}

type failingMeasure struct{ failID string }

func (f failingMeasure) Name() string { return "fail" }
func (f failingMeasure) Compare(a, b *workflow.Workflow) (float64, error) {
	if b.ID == f.failID {
		return 0, errors.New("boom")
	}
	return 0.5, nil
}

func TestTopKSkipsErrors(t *testing.T) {
	c := testCorpus(t)
	query := c.Repo.Workflows()[0]
	failID := c.Repo.Workflows()[1].ID
	results, skipped, _ := TopK(context.Background(), query, c.Repo, failingMeasure{failID: failID}, Options{K: 1000})
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	for _, r := range results {
		if r.ID == failID {
			t.Error("failing pair included")
		}
	}
}

func TestIDsAndPool(t *testing.T) {
	a := []Result{{ID: "x", Similarity: 1}, {ID: "y", Similarity: 0.5}}
	b := []Result{{ID: "y", Similarity: 0.7}, {ID: "z", Similarity: 0.2}}
	if got := IDs(a); got[0] != "x" || got[1] != "y" {
		t.Errorf("IDs = %v", got)
	}
	pooled := PoolResults(a, b)
	want := []string{"x", "y", "z"}
	if len(pooled) != 3 {
		t.Fatalf("pooled = %v", pooled)
	}
	for i := range want {
		if pooled[i] != want[i] {
			t.Errorf("pooled = %v, want %v", pooled, want)
		}
	}
}

func TestDuplicates(t *testing.T) {
	// Two identical workflows plus one unrelated.
	w1 := workflow.New("1")
	w1.AddModule(&workflow.Module{Label: "get_pathway", Type: workflow.TypeWSDL})
	w2 := w1.Clone()
	w2.ID = "2"
	w3 := workflow.New("3")
	w3.AddModule(&workflow.Module{Label: "zzzzzz", Type: workflow.TypeWSDL})
	repo, err := corpus.NewRepository(w1, w2, w3)
	if err != nil {
		t.Fatal(err)
	}
	dups, skipped, err := Duplicates(context.Background(), repo, msMeasure(), 0.95, 2)
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(dups) != 1 {
		t.Fatalf("duplicates = %v, want exactly (1,2)", dups)
	}
	if dups[0].A != "1" || dups[0].B != "2" {
		t.Errorf("pair = %+v", dups[0])
	}
}

func BenchmarkTopK100Workflows(b *testing.B) {
	p := gen.Taverna()
	p.Workflows = 100
	p.Clusters = 6
	c, err := gen.Generate(p, 17)
	if err != nil {
		b.Fatal(err)
	}
	query := c.Repo.Workflows()[0]
	m := msMeasure()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(context.Background(), query, c.Repo, m, Options{K: 10})
	}
}

func TestTopKCancelledContext(t *testing.T) {
	c := testCorpus(t)
	query := c.Repo.Workflows()[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, _, err := TopK(ctx, query, c.Repo, msMeasure(), Options{K: 10})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Errorf("results = %v, want nil on cancellation", results)
	}
}

func TestDuplicatesCancelledContext(t *testing.T) {
	c := testCorpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Duplicates(ctx, c.Repo, msMeasure(), 0.9, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBatchedCoversAllIndexes(t *testing.T) {
	const n = 1000
	seen := make([]int32, n)
	err := Batched(context.Background(), n, 4, 7, func(i int) error {
		seen[i]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// A context that expires only after the final item was processed must not
// fail the scan: Batched returns nil iff fn ran for every index.
func TestBatchedCompletedScanSurvivesLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 3
	ran := 0
	err := Batched(ctx, n, 1, 1, func(i int) error {
		ran++
		if i == n-1 {
			cancel() // expires as the last item completes
		}
		return nil
	})
	if ran != n {
		t.Fatalf("fn ran %d times, want %d", ran, n)
	}
	if err != nil {
		t.Fatalf("err = %v, want nil for a completed scan", err)
	}
}
