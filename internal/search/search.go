// Package search provides similarity search over a workflow repository:
// scoring a query workflow against every repository workflow with a
// configurable similarity measure, in parallel, and returning the top-k
// results — the retrieval operation evaluated in Section 5.2 of Starlinger
// et al. (PVLDB 2014).
//
// All scans are context-aware: a cancelled or expired context stops the
// worker pool promptly and the scan returns the context's error. The paper's
// GED-timeout semantics ("disregard pairs that exceed the budget") map onto
// per-pair measure errors; whole-scan deadlines map onto context deadlines.
package search

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/measures"
	"repro/internal/workflow"
)

// Corpus is the minimal read view a scan needs. Both the mutable
// corpus.Repository and its immutable, generation-pinned corpus.Snapshot
// satisfy it; scans that must not observe concurrent mutation should be
// handed a pinned Snapshot.
type Corpus interface {
	// Workflows returns the workflows in repository order. Callers must
	// not modify the returned slice.
	Workflows() []*workflow.Workflow
}

// Result is one search hit.
type Result struct {
	ID         string
	Similarity float64
}

// Options configures a search.
type Options struct {
	// K is the number of results to return (default 10, the paper's top-10).
	K int
	// Parallelism bounds the scoring workers (default GOMAXPROCS).
	Parallelism int
	// BatchSize is the number of workflows a worker claims per scheduling
	// step (0 = automatic). Larger batches amortize scheduling overhead on
	// cheap measures; batch size 1 load-balances expensive ones.
	BatchSize int
	// IncludeQuery keeps the query workflow itself in the results
	// (off by default: a workflow trivially matches itself).
	IncludeQuery bool
	// MinSimilarity drops results scoring at or below the threshold.
	// The zero value drops nothing (scores can be negative for
	// unnormalized GE).
	MinSimilarity *float64
}

// Batched distributes the index range [0,n) over a pool of par workers in
// contiguous batches claimed from a shared atomic cursor (dynamic
// scheduling). fn is invoked once per index; the context is checked between
// invocations and the pool drains early when it is cancelled or when fn
// returns an error (multi-item tasks report mid-task cancellation that
// way). Batched returns nil iff fn ran to completion for every index — a
// context that expires only after the last invocation does not fail an
// already-complete scan; otherwise it returns the first error observed.
func Batched(ctx context.Context, n, par, batch int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if batch <= 0 {
		// Aim for several claims per worker so stragglers rebalance.
		batch = n / (par * 8)
		if batch < 1 {
			batch = 1
		}
		if batch > 64 {
			batch = 64
		}
	}
	var cursor atomic.Int64
	var stop atomic.Bool
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		stop.Store(true)
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				start := int(cursor.Add(int64(batch))) - batch
				if start >= n {
					return
				}
				end := start + batch
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
					if err := fn(i); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// TopK scores query against every workflow in repo using m and returns the
// k best results, ties broken by ID for determinism. Pairs for which the
// measure errors (e.g. GED timeouts) are skipped, mirroring the paper's
// treatment of incomputable pairs; the number of skipped pairs is returned.
// A cancelled or expired context aborts the scan: TopK then returns nil
// results and the context's error.
//
//wfsimvet:hotpath
func TopK(ctx context.Context, query *workflow.Workflow, repo Corpus, m measures.Measure, opts Options) ([]Result, int, error) {
	k := opts.K
	if k <= 0 {
		k = 10
	}
	wfs := repo.Workflows()

	type scored struct {
		res  Result
		ok   bool
		skip bool
	}
	out := make([]scored, len(wfs))
	err := Batched(ctx, len(wfs), opts.Parallelism, opts.BatchSize, func(i int) error {
		wf := wfs[i]
		if !opts.IncludeQuery && wf.ID == query.ID {
			return nil
		}
		s, err := m.Compare(query, wf)
		if err != nil {
			out[i] = scored{skip: true}
			return nil
		}
		out[i] = scored{res: Result{ID: wf.ID, Similarity: s}, ok: true}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}

	results := make([]Result, 0, len(wfs))
	skipped := 0
	for _, s := range out {
		switch {
		case s.skip:
			skipped++
		case s.ok:
			if opts.MinSimilarity != nil && s.res.Similarity <= *opts.MinSimilarity {
				continue
			}
			results = append(results, s.res)
		}
	}
	SortResults(results)
	if len(results) > k {
		results = results[:k]
	}
	return results, skipped, nil
}

// SortResults orders results by descending similarity, ties broken by ID.
func SortResults(results []Result) {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Similarity != results[j].Similarity {
			return results[i].Similarity > results[j].Similarity
		}
		return results[i].ID < results[j].ID
	})
}

// IDs extracts the result IDs in rank order.
func IDs(results []Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.ID
	}
	return out
}

// PoolResults merges several algorithms' result lists for the same query
// into a deduplicated union, preserving first-seen order — the merged lists
// presented to the raters in the paper's second experiment (21–68 elements
// depending on overlap).
func PoolResults(lists ...[]Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, list := range lists {
		for _, r := range list {
			if !seen[r.ID] {
				seen[r.ID] = true
				out = append(out, r.ID)
			}
		}
	}
	return out
}

// Duplicates finds near-duplicate workflow pairs in a repository: pairs
// scoring at or above threshold under m. It scans the upper triangle of the
// pair matrix with a row-per-task worker pool (batch size 1, so the uneven
// row lengths load-balance). Pairs the measure fails on are skipped and
// counted. A cancelled context aborts the scan with the context's error.
//
//wfsimvet:hotpath
func Duplicates(ctx context.Context, repo Corpus, m measures.Measure, threshold float64, par int) ([]Pair, int, error) {
	wfs := repo.Workflows()
	var mu sync.Mutex
	var out []Pair
	var skipped atomic.Int64
	err := Batched(ctx, len(wfs), par, 1, func(i int) error {
		a := wfs[i]
		var row []Pair
		for j := i + 1; j < len(wfs); j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Measures are mathematically symmetric but not always
			// bit-symmetric (summation order inside the matcher differs), so
			// the pair is evaluated in ID order: the score is a function of
			// the unordered pair, independent of corpus insertion order or of
			// which shard of a scatter-gather scan evaluates it.
			x, y := workflow.OrderPair(a, wfs[j])
			s, err := m.Compare(x, y)
			if err != nil {
				skipped.Add(1)
				continue
			}
			if s < threshold {
				continue
			}
			row = append(row, Pair{A: a.ID, B: wfs[j].ID, Similarity: s})
		}
		if len(row) > 0 {
			mu.Lock()
			out = append(out, row...)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, int(skipped.Load()), nil
}

// Pair is a scored workflow pair.
type Pair struct {
	A, B       string
	Similarity float64
}
