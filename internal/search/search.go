// Package search provides similarity search over a workflow repository:
// scoring a query workflow against every repository workflow with a
// configurable similarity measure, in parallel, and returning the top-k
// results — the retrieval operation evaluated in Section 5.2 of Starlinger
// et al. (PVLDB 2014).
package search

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/measures"
	"repro/internal/workflow"
)

// Result is one search hit.
type Result struct {
	ID         string
	Similarity float64
}

// Options configures a search.
type Options struct {
	// K is the number of results to return (default 10, the paper's top-10).
	K int
	// Parallelism bounds the scoring goroutines (default GOMAXPROCS).
	Parallelism int
	// IncludeQuery keeps the query workflow itself in the results
	// (off by default: a workflow trivially matches itself).
	IncludeQuery bool
	// MinSimilarity drops results scoring at or below the threshold.
	// The zero value drops nothing (scores can be negative for
	// unnormalized GE).
	MinSimilarity *float64
}

// TopK scores query against every workflow in repo using m and returns the
// k best results, ties broken by ID for determinism. Pairs for which the
// measure errors (e.g. GED timeouts) are skipped, mirroring the paper's
// treatment of incomputable pairs; the number of skipped pairs is returned.
func TopK(query *workflow.Workflow, repo *corpus.Repository, m measures.Measure, opts Options) ([]Result, int) {
	k := opts.K
	if k <= 0 {
		k = 10
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	wfs := repo.Workflows()

	type scored struct {
		res  Result
		ok   bool
		skip bool
	}
	out := make([]scored, len(wfs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i, wf := range wfs {
		if !opts.IncludeQuery && wf.ID == query.ID {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, wf *workflow.Workflow) {
			defer wg.Done()
			defer func() { <-sem }()
			s, err := m.Compare(query, wf)
			if err != nil {
				out[i] = scored{skip: true}
				return
			}
			out[i] = scored{res: Result{ID: wf.ID, Similarity: s}, ok: true}
		}(i, wf)
	}
	wg.Wait()

	results := make([]Result, 0, len(wfs))
	skipped := 0
	for _, s := range out {
		switch {
		case s.skip:
			skipped++
		case s.ok:
			if opts.MinSimilarity != nil && s.res.Similarity <= *opts.MinSimilarity {
				continue
			}
			results = append(results, s.res)
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Similarity != results[j].Similarity {
			return results[i].Similarity > results[j].Similarity
		}
		return results[i].ID < results[j].ID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results, skipped
}

// IDs extracts the result IDs in rank order.
func IDs(results []Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.ID
	}
	return out
}

// PoolResults merges several algorithms' result lists for the same query
// into a deduplicated union, preserving first-seen order — the merged lists
// presented to the raters in the paper's second experiment (21–68 elements
// depending on overlap).
func PoolResults(lists ...[]Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, list := range lists {
		for _, r := range list {
			if !seen[r.ID] {
				seen[r.ID] = true
				out = append(out, r.ID)
			}
		}
	}
	return out
}

// Duplicates finds near-duplicate workflow pairs in a repository: pairs
// scoring at or above threshold under m. It scans the upper triangle of the
// pair matrix in parallel. Errors are skipped.
func Duplicates(repo *corpus.Repository, m measures.Measure, threshold float64, par int) []Pair {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	wfs := repo.Workflows()
	var mu sync.Mutex
	var out []Pair
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := 0; i < len(wfs); i++ {
		for j := i + 1; j < len(wfs); j++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(a, b *workflow.Workflow) {
				defer wg.Done()
				defer func() { <-sem }()
				s, err := m.Compare(a, b)
				if err != nil || s < threshold {
					return
				}
				mu.Lock()
				out = append(out, Pair{A: a.ID, B: b.ID, Similarity: s})
				mu.Unlock()
			}(wfs[i], wfs[j])
		}
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Pair is a scored workflow pair.
type Pair struct {
	A, B       string
	Similarity float64
}
