package wfio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workflow"
)

// gaFile mirrors the Galaxy .ga workflow format: a JSON object with a name,
// an annotation, optional tags, and a "steps" map from step index to step.
type gaFile struct {
	Class      string            `json:"a_galaxy_workflow,omitempty"`
	Name       string            `json:"name"`
	Annotation string            `json:"annotation,omitempty"`
	Tags       []string          `json:"tags,omitempty"`
	UUID       string            `json:"uuid,omitempty"`
	Steps      map[string]gaStep `json:"steps"`
}

type gaStep struct {
	ID               int                     `json:"id"`
	Name             string                  `json:"name"`
	Label            string                  `json:"label,omitempty"`
	Type             string                  `json:"type"` // "tool" or "data_input"
	ToolID           string                  `json:"tool_id,omitempty"`
	ToolVersion      string                  `json:"tool_version,omitempty"`
	Annotation       string                  `json:"annotation,omitempty"`
	ToolState        map[string]string       `json:"tool_state,omitempty"`
	InputConnections map[string]gaConnection `json:"input_connections,omitempty"`
}

// gaConnection is the source of one step input: either a single connection
// object or a list of them (Galaxy emits both).
type gaConnection struct {
	Sources []gaSource
}

type gaSource struct {
	ID int `json:"id"`
}

// UnmarshalJSON accepts both `{"id":0}` and `[{"id":0},{"id":1}]`.
func (c *gaConnection) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		return json.Unmarshal(data, &c.Sources)
	}
	var one gaSource
	if err := json.Unmarshal(data, &one); err != nil {
		return err
	}
	c.Sources = []gaSource{one}
	return nil
}

// MarshalJSON emits a single object for one source and a list otherwise.
func (c gaConnection) MarshalJSON() ([]byte, error) {
	if len(c.Sources) == 1 {
		return json.Marshal(c.Sources[0])
	}
	return json.Marshal(c.Sources)
}

// ParseGalaxy reads a Galaxy .ga workflow. Data-input steps (workflow input
// ports) are dropped, matching the paper's corpus preparation; tool steps
// become modules of type "tool" with the tool id as service name.
func ParseGalaxy(r io.Reader) (*workflow.Workflow, error) {
	var doc gaFile
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("wfio: galaxy decode: %w", err)
	}
	id := doc.UUID
	if id == "" {
		id = doc.Name
	}
	if id == "" {
		return nil, fmt.Errorf("wfio: galaxy workflow without uuid or name")
	}
	wf := workflow.New(id)
	wf.Annotations = workflow.Annotations{
		Title:       doc.Name,
		Description: doc.Annotation,
		Tags:        doc.Tags,
	}

	// Steps in id order for deterministic module indexing.
	type numbered struct {
		key  string
		step gaStep
	}
	steps := make([]numbered, 0, len(doc.Steps))
	for k, s := range doc.Steps {
		steps = append(steps, numbered{k, s})
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].step.ID < steps[j].step.ID })

	moduleOf := map[int]int{} // step id -> module index (-1 for dropped inputs)
	for _, ns := range steps {
		s := ns.step
		if s.Type == "data_input" || s.Type == "data_collection_input" {
			moduleOf[s.ID] = -1
			continue
		}
		label := s.Label
		if label == "" {
			label = s.Name
		}
		if label == "" {
			label = fmt.Sprintf("step_%d", s.ID)
		}
		m := &workflow.Module{
			ID:          "step" + strconv.Itoa(s.ID),
			Label:       label,
			Type:        workflow.TypeTool,
			Description: s.Annotation,
			ServiceName: s.ToolID,
		}
		if s.ToolVersion != "" || len(s.ToolState) > 0 {
			m.Params = map[string]string{}
			if s.ToolVersion != "" {
				m.Params["version"] = s.ToolVersion
			}
			for k, v := range s.ToolState {
				m.Params[k] = v
			}
		}
		moduleOf[s.ID] = wf.AddModule(m)
	}
	// Edges from input connections, skipping dropped input steps.
	for _, ns := range steps {
		s := ns.step
		ti, ok := moduleOf[s.ID]
		if !ok || ti < 0 {
			continue
		}
		for _, conn := range s.InputConnections {
			for _, src := range conn.Sources {
				fi, ok := moduleOf[src.ID]
				if !ok {
					return nil, fmt.Errorf("wfio: galaxy step %d references unknown step %d", s.ID, src.ID)
				}
				if fi < 0 {
					continue // connection from a dropped input port
				}
				if err := wf.AddEdge(fi, ti); err != nil {
					return nil, fmt.Errorf("wfio: galaxy workflow %s: %w", id, err)
				}
			}
		}
	}
	if err := wf.Validate(); err != nil {
		return nil, fmt.Errorf("wfio: galaxy workflow %s invalid: %w", id, err)
	}
	return wf, nil
}

// WriteGalaxy serialises a workflow into the Galaxy .ga format. Non-tool
// module types are mapped to tool steps with their type recorded in the
// tool state.
func WriteGalaxy(w io.Writer, wf *workflow.Workflow) error {
	doc := gaFile{
		Class:      "true",
		Name:       wf.Annotations.Title,
		Annotation: wf.Annotations.Description,
		Tags:       wf.Annotations.Tags,
		UUID:       wf.ID,
		Steps:      map[string]gaStep{},
	}
	for i, m := range wf.Modules {
		step := gaStep{
			ID:         i,
			Name:       m.Label,
			Label:      m.Label,
			Type:       "tool",
			ToolID:     m.ServiceName,
			Annotation: m.Description,
		}
		if m.Type != workflow.TypeTool && m.Type != "" {
			if step.ToolState == nil {
				step.ToolState = map[string]string{}
			}
			step.ToolState["original_type"] = m.Type
		}
		for k, v := range m.Params {
			if k == "version" {
				step.ToolVersion = v
				continue
			}
			if step.ToolState == nil {
				step.ToolState = map[string]string{}
			}
			step.ToolState[k] = v
		}
		doc.Steps[strconv.Itoa(i)] = step
	}
	// Input connections: group inbound edges per target.
	inbound := map[int][]int{}
	for _, e := range wf.Edges {
		inbound[e.To] = append(inbound[e.To], e.From)
	}
	for to, froms := range inbound {
		key := strconv.Itoa(to)
		step := doc.Steps[key]
		step.InputConnections = map[string]gaConnection{}
		sort.Ints(froms)
		for n, from := range froms {
			step.InputConnections["input"+strconv.Itoa(n)] = gaConnection{Sources: []gaSource{{ID: from}}}
		}
		doc.Steps[key] = step
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("wfio: galaxy encode: %w", err)
	}
	return nil
}
