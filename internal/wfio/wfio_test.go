package wfio

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workflow"
)

func itoa(i int) string { return strconv.Itoa(i) }

const sampleT2 = `<workflow id="1189">
  <name>KEGG pathway analysis</name>
  <description>Retrieves KEGG pathways for genes</description>
  <author>someone</author>
  <tags><tag>kegg</tag><tag>pathway</tag></tags>
  <processors>
    <processor name="get_pathways" type="wsdl">
      <service uri="http://soap.genome.jp/KEGG.wsdl" operation="get_pathways_by_genes" authority="kegg"/>
    </processor>
    <processor name="split_string" type="localworker"/>
    <processor name="render" type="beanshell">
      <script>img = render(p);</script>
      <parameters><parameter name="dpi">300</parameter></parameters>
    </processor>
    <processor name="nested" type="dataflow">
      <dataflow ref="child-1"/>
    </processor>
  </processors>
  <datalinks>
    <datalink from="get_pathways" to="split_string"/>
    <datalink from="split_string" to="render"/>
    <datalink from="render" to="nested"/>
  </datalinks>
</workflow>`

func TestParseT2Flow(t *testing.T) {
	wf, err := ParseT2Flow(strings.NewReader(sampleT2))
	if err != nil {
		t.Fatal(err)
	}
	if wf.ID != "1189" || wf.Annotations.Title != "KEGG pathway analysis" {
		t.Errorf("header wrong: %s %q", wf.ID, wf.Annotations.Title)
	}
	if len(wf.Annotations.Tags) != 2 {
		t.Errorf("tags = %v", wf.Annotations.Tags)
	}
	if wf.Size() != 4 || wf.EdgeCount() != 3 {
		t.Fatalf("size = %d edges = %d", wf.Size(), wf.EdgeCount())
	}
	get := wf.Modules[0]
	if get.ServiceURI != "http://soap.genome.jp/KEGG.wsdl" || get.Authority != "kegg" {
		t.Errorf("service attrs lost: %+v", get)
	}
	render := wf.Modules[2]
	if render.Script == "" || render.Params["dpi"] != "300" {
		t.Errorf("script/params lost: %+v", render)
	}
	nested := wf.Modules[3]
	if nested.Type != workflow.TypeDataflow || nested.Params["dataflow"] != "child-1" {
		t.Errorf("dataflow ref lost: %+v", nested)
	}
}

func TestParseT2FlowErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not xml at all",
		"no id":         `<workflow><processors/></workflow>`,
		"dup processor": `<workflow id="x"><processors><processor name="a"/><processor name="a"/></processors></workflow>`,
		"unknown from":  `<workflow id="x"><processors><processor name="a"/></processors><datalinks><datalink from="zz" to="a"/></datalinks></workflow>`,
		"unknown to":    `<workflow id="x"><processors><processor name="a"/></processors><datalinks><datalink from="a" to="zz"/></datalinks></workflow>`,
		"unnamed":       `<workflow id="x"><processors><processor/></processors></workflow>`,
		"cycle": `<workflow id="x"><processors><processor name="a"/><processor name="b"/></processors>
			<datalinks><datalink from="a" to="b"/><datalink from="b" to="a"/></datalinks></workflow>`,
	}
	for name, doc := range cases {
		if _, err := ParseT2Flow(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestT2FlowRoundTrip(t *testing.T) {
	wf, err := ParseT2Flow(strings.NewReader(sampleT2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteT2Flow(&buf, wf); err != nil {
		t.Fatal(err)
	}
	wf2, err := ParseT2Flow(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	assertEquivalent(t, wf, wf2)
}

const sampleGA = `{
  "a_galaxy_workflow": "true",
  "name": "BWA mapping",
  "annotation": "Map reads with bwa and filter",
  "tags": ["mapping", "bwa"],
  "uuid": "ga-42",
  "steps": {
    "0": {"id": 0, "name": "Input dataset", "type": "data_input"},
    "1": {"id": 1, "name": "BWA-MEM", "type": "tool", "tool_id": "bwa_mem", "tool_version": "0.7.17",
          "input_connections": {"fastq": {"id": 0}}},
    "2": {"id": 2, "name": "Filter", "label": "filter_mapped", "type": "tool", "tool_id": "samtools_view",
          "tool_state": {"flag": "-F 4"},
          "input_connections": {"input": {"id": 1}}},
    "3": {"id": 3, "name": "MultiQC", "type": "tool", "tool_id": "multiqc",
          "input_connections": {"reports": [{"id": 1}, {"id": 2}]}}
  }
}`

func TestParseGalaxy(t *testing.T) {
	wf, err := ParseGalaxy(strings.NewReader(sampleGA))
	if err != nil {
		t.Fatal(err)
	}
	if wf.ID != "ga-42" || wf.Annotations.Title != "BWA mapping" {
		t.Errorf("header wrong: %s %q", wf.ID, wf.Annotations.Title)
	}
	// Input step dropped: 3 tool modules remain.
	if wf.Size() != 3 {
		t.Fatalf("size = %d, want 3 (input dropped)", wf.Size())
	}
	// Edges: 1->2, 1->3, 2->3 (input connection from dropped step skipped).
	if wf.EdgeCount() != 3 {
		t.Fatalf("edges = %v", wf.Edges)
	}
	bwa := wf.Modules[0]
	if bwa.ServiceName != "bwa_mem" || bwa.Params["version"] != "0.7.17" {
		t.Errorf("tool attrs lost: %+v", bwa)
	}
	filter := wf.Modules[1]
	if filter.Label != "filter_mapped" || filter.Params["flag"] != "-F 4" {
		t.Errorf("label/state lost: %+v", filter)
	}
	for _, m := range wf.Modules {
		if m.Type != workflow.TypeTool {
			t.Errorf("module type = %q, want tool", m.Type)
		}
	}
}

func TestParseGalaxyErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      `{{{`,
		"no id":        `{"steps":{}}`,
		"unknown step": `{"uuid":"x","steps":{"1":{"id":1,"type":"tool","input_connections":{"i":{"id":99}}}}}`,
	}
	for name, doc := range cases {
		if _, err := ParseGalaxy(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGalaxyRoundTrip(t *testing.T) {
	wf, err := ParseGalaxy(strings.NewReader(sampleGA))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGalaxy(&buf, wf); err != nil {
		t.Fatal(err)
	}
	wf2, err := ParseGalaxy(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	assertEquivalent(t, wf, wf2)
}

// assertEquivalent checks structural and annotation equality up to module
// order (which both round trips preserve).
func assertEquivalent(t *testing.T, a, b *workflow.Workflow) {
	t.Helper()
	if a.Size() != b.Size() || a.EdgeCount() != b.EdgeCount() {
		t.Fatalf("shape differs: %dx%d vs %dx%d", a.Size(), a.EdgeCount(), b.Size(), b.EdgeCount())
	}
	if a.Annotations.Title != b.Annotations.Title || a.Annotations.Description != b.Annotations.Description {
		t.Error("annotations differ")
	}
	if len(a.Annotations.Tags) != len(b.Annotations.Tags) {
		t.Error("tags differ")
	}
	for i := range a.Modules {
		ma, mb := a.Modules[i], b.Modules[i]
		if ma.Label != mb.Label || ma.ServiceName != mb.ServiceName || ma.Script != mb.Script {
			t.Errorf("module %d differs: %+v vs %+v", i, ma, mb)
		}
	}
	for _, e := range a.Edges {
		if !b.HasEdge(e.From, e.To) {
			t.Errorf("edge %v lost", e)
		}
	}
}

// randomWorkflow builds a random valid workflow for round-trip property
// tests.
func randomWorkflow(r *rand.Rand) *workflow.Workflow {
	wf := workflow.New("wf-" + itoa(r.Intn(1000)))
	wf.Annotations.Title = "T" + itoa(r.Intn(100))
	n := r.Intn(6) + 1
	types := []string{workflow.TypeWSDL, workflow.TypeBeanshell, workflow.TypeLocalWorker, workflow.TypeTool}
	for i := 0; i < n; i++ {
		wf.AddModule(&workflow.Module{
			ID:          "m" + itoa(i),
			Label:       "mod" + itoa(r.Intn(8)),
			Type:        types[r.Intn(len(types))],
			ServiceName: "svc" + itoa(r.Intn(4)),
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(3) == 0 {
				_ = wf.AddEdge(i, j)
			}
		}
	}
	return wf
}

func TestPropertyT2FlowRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wf := randomWorkflow(r)
		var buf bytes.Buffer
		if err := WriteT2Flow(&buf, wf); err != nil {
			return false
		}
		wf2, err := ParseT2Flow(&buf)
		if err != nil {
			return false
		}
		return wf2.Size() == wf.Size() && wf2.EdgeCount() == wf.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGalaxyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wf := randomWorkflow(r)
		var buf bytes.Buffer
		if err := WriteGalaxy(&buf, wf); err != nil {
			return false
		}
		wf2, err := ParseGalaxy(&buf)
		if err != nil {
			return false
		}
		return wf2.Size() == wf.Size() && wf2.EdgeCount() == wf.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestT2FlowInlineIntegration(t *testing.T) {
	// Parse a parent referencing a child dataflow, then inline it via a
	// resolver backed by parsed workflows — the paper's subworkflow
	// preparation pipeline.
	child := `<workflow id="child-1">
	  <name>child</name>
	  <processors>
	    <processor name="inner" type="wsdl"><service uri="http://x" operation="op" authority="a"/></processor>
	  </processors>
	</workflow>`
	cw, err := ParseT2Flow(strings.NewReader(child))
	if err != nil {
		t.Fatal(err)
	}
	pw, err := ParseT2Flow(strings.NewReader(sampleT2))
	if err != nil {
		t.Fatal(err)
	}
	flat := pw.Inline(func(m *workflow.Module) *workflow.Workflow {
		if m.Params["dataflow"] == "child-1" {
			return cw
		}
		return nil
	}, 0)
	if flat.Size() != 4 { // nested replaced by 1 inner module
		t.Fatalf("inlined size = %d, want 4", flat.Size())
	}
	for _, m := range flat.Modules {
		if m.Type == workflow.TypeDataflow {
			t.Error("dataflow survived inlining")
		}
	}
}
