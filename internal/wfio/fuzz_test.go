package wfio

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic and must only return workflows
// that validate. Successful parses must survive a write/re-parse round trip.

func FuzzParseT2Flow(f *testing.F) {
	f.Add(sampleT2)
	f.Add(`<workflow id="x"><processors><processor name="a" type="wsdl"/></processors></workflow>`)
	f.Add(`<workflow id="y"></workflow>`)
	f.Add(``)
	f.Add(`<workflow`)
	f.Fuzz(func(t *testing.T, doc string) {
		wf, err := ParseT2Flow(strings.NewReader(doc))
		if err != nil {
			return
		}
		if verr := wf.Validate(); verr != nil {
			t.Fatalf("parser returned invalid workflow: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteT2Flow(&buf, wf); werr != nil {
			t.Fatalf("write of parsed workflow failed: %v", werr)
		}
		wf2, rerr := ParseT2Flow(&buf)
		if rerr != nil {
			t.Fatalf("round trip re-parse failed: %v\n%s", rerr, buf.String())
		}
		if wf2.Size() != wf.Size() || wf2.EdgeCount() != wf.EdgeCount() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				wf.Size(), wf.EdgeCount(), wf2.Size(), wf2.EdgeCount())
		}
	})
}

func FuzzParseGalaxy(f *testing.F) {
	f.Add(sampleGA)
	f.Add(`{"uuid":"u","steps":{}}`)
	f.Add(`{"name":"n","steps":{"0":{"id":0,"type":"tool"}}}`)
	f.Add(``)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, doc string) {
		wf, err := ParseGalaxy(strings.NewReader(doc))
		if err != nil {
			return
		}
		if verr := wf.Validate(); verr != nil {
			t.Fatalf("parser returned invalid workflow: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteGalaxy(&buf, wf); werr != nil {
			t.Fatalf("write of parsed workflow failed: %v", werr)
		}
		if _, rerr := ParseGalaxy(&buf); rerr != nil {
			t.Fatalf("round trip re-parse failed: %v\n%s", rerr, buf.String())
		}
	})
}
