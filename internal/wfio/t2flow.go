// Package wfio imports and exports scientific workflows in external formats:
// a Taverna-style XML dialect (the myExperiment download the paper ingests,
// Section 4.1) and the Galaxy .ga JSON format (the paper's second corpus).
// Both import paths perform the paper's corpus preparation: workflow
// input/output ports are not represented, and nested subworkflows can be
// inlined via workflow.Inline.
package wfio

import (
	"encoding/xml"
	"fmt"
	"io"

	"repro/internal/workflow"
)

// t2Workflow is the XML envelope of the Taverna-style dialect.
type t2Workflow struct {
	XMLName     xml.Name      `xml:"workflow"`
	ID          string        `xml:"id,attr"`
	Name        string        `xml:"name"`
	Description string        `xml:"description"`
	Author      string        `xml:"author"`
	Tags        []string      `xml:"tags>tag"`
	Processors  []t2Processor `xml:"processors>processor"`
	Datalinks   []t2Datalink  `xml:"datalinks>datalink"`
}

type t2Processor struct {
	Name        string     `xml:"name,attr"`
	Type        string     `xml:"type,attr"`
	Description string     `xml:"description"`
	Script      string     `xml:"script"`
	Service     *t2Service `xml:"service"`
	Params      []t2Param  `xml:"parameters>parameter"`
	Dataflow    *t2Subflow `xml:"dataflow"`
}

type t2Service struct {
	URI       string `xml:"uri,attr"`
	Operation string `xml:"operation,attr"`
	Authority string `xml:"authority,attr"`
}

type t2Param struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

type t2Subflow struct {
	Ref string `xml:"ref,attr"`
}

type t2Datalink struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

// ParseT2Flow reads one Taverna-style XML workflow. Processor names must be
// unique; datalinks must reference existing processors.
func ParseT2Flow(r io.Reader) (*workflow.Workflow, error) {
	var doc t2Workflow
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("wfio: t2flow decode: %w", err)
	}
	if doc.ID == "" {
		return nil, fmt.Errorf("wfio: t2flow workflow without id attribute")
	}
	wf := workflow.New(doc.ID)
	wf.Annotations = workflow.Annotations{
		Title:       doc.Name,
		Description: doc.Description,
		Author:      doc.Author,
		Tags:        doc.Tags,
	}
	index := map[string]int{}
	for _, p := range doc.Processors {
		if p.Name == "" {
			return nil, fmt.Errorf("wfio: t2flow processor without name in workflow %s", doc.ID)
		}
		if _, dup := index[p.Name]; dup {
			return nil, fmt.Errorf("wfio: t2flow duplicate processor %q in workflow %s", p.Name, doc.ID)
		}
		m := &workflow.Module{
			ID:          p.Name,
			Label:       p.Name,
			Type:        p.Type,
			Description: p.Description,
			Script:      p.Script,
		}
		if p.Type == "" {
			m.Type = workflow.TypeUnknown
		}
		if p.Service != nil {
			m.ServiceURI = p.Service.URI
			m.ServiceName = p.Service.Operation
			m.Authority = p.Service.Authority
		}
		if len(p.Params) > 0 {
			m.Params = map[string]string{}
			for _, par := range p.Params {
				m.Params[par.Name] = par.Value
			}
		}
		if p.Dataflow != nil {
			m.Type = workflow.TypeDataflow
			if m.Params == nil {
				m.Params = map[string]string{}
			}
			m.Params["dataflow"] = p.Dataflow.Ref
		}
		index[p.Name] = wf.AddModule(m)
	}
	for _, l := range doc.Datalinks {
		fi, ok := index[l.From]
		if !ok {
			return nil, fmt.Errorf("wfio: t2flow datalink from unknown processor %q in workflow %s", l.From, doc.ID)
		}
		ti, ok := index[l.To]
		if !ok {
			return nil, fmt.Errorf("wfio: t2flow datalink to unknown processor %q in workflow %s", l.To, doc.ID)
		}
		if err := wf.AddEdge(fi, ti); err != nil {
			return nil, fmt.Errorf("wfio: t2flow workflow %s: %w", doc.ID, err)
		}
	}
	if err := wf.Validate(); err != nil {
		return nil, fmt.Errorf("wfio: t2flow workflow %s invalid: %w", doc.ID, err)
	}
	return wf, nil
}

// WriteT2Flow serialises a workflow into the Taverna-style XML dialect.
// Module IDs become processor names; if a module has no ID its label is
// used, deduplicated with a numeric suffix.
func WriteT2Flow(w io.Writer, wf *workflow.Workflow) error {
	doc := t2Workflow{
		ID:          wf.ID,
		Name:        wf.Annotations.Title,
		Description: wf.Annotations.Description,
		Author:      wf.Annotations.Author,
		Tags:        wf.Annotations.Tags,
	}
	names := make([]string, len(wf.Modules))
	used := map[string]bool{}
	for i, m := range wf.Modules {
		name := m.ID
		if name == "" {
			name = m.Label
		}
		if name == "" {
			name = fmt.Sprintf("processor%d", i)
		}
		base := name
		for n := 2; used[name]; n++ {
			name = fmt.Sprintf("%s_%d", base, n)
		}
		used[name] = true
		names[i] = name

		p := t2Processor{
			Name:        name,
			Type:        m.Type,
			Description: m.Description,
			Script:      m.Script,
		}
		if m.ServiceURI != "" || m.ServiceName != "" || m.Authority != "" {
			p.Service = &t2Service{URI: m.ServiceURI, Operation: m.ServiceName, Authority: m.Authority}
		}
		for _, k := range sortedKeys(m.Params) {
			if m.Type == workflow.TypeDataflow && k == "dataflow" {
				p.Dataflow = &t2Subflow{Ref: m.Params[k]}
				continue
			}
			p.Params = append(p.Params, t2Param{Name: k, Value: m.Params[k]})
		}
		doc.Processors = append(doc.Processors, p)
	}
	for _, e := range wf.Edges {
		doc.Datalinks = append(doc.Datalinks, t2Datalink{From: names[e.From], To: names[e.To]})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("wfio: t2flow encode: %w", err)
	}
	return enc.Flush()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
