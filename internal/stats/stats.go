// Package stats provides the small statistical toolkit the evaluation needs:
// mean, standard deviation, and the paired two-tailed Student t-test used for
// the paper's significance statements (p < 0.05).
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 when
// fewer than two values are given.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// ErrTooFewSamples is returned when a test needs more observations.
var ErrTooFewSamples = errors.New("stats: need at least two paired samples")

// TTestResult holds the outcome of a paired t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF int     // degrees of freedom (n-1)
	P  float64 // two-tailed p-value
}

// Significant reports whether the two-tailed p-value is below alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// PairedTTest performs a two-tailed paired Student t-test on equally long
// samples a and b. A zero-variance difference vector yields p = 1 when the
// means are equal and p = 0 otherwise (the distributions are degenerate).
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, errors.New("stats: paired samples must have equal length")
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, ErrTooFewSamples
	}
	d := make([]float64, n)
	for i := range a {
		d[i] = a[i] - b[i]
	}
	md := Mean(d)
	sd := StdDev(d)
	df := n - 1
	if sd == 0 {
		if md == 0 {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(md)), DF: df, P: 0}, nil
	}
	t := md / (sd / math.Sqrt(float64(n)))
	p := 2 * studentTTail(math.Abs(t), float64(df))
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTTail returns P(T > t) for t >= 0 under a Student t distribution
// with df degrees of freedom, via the regularized incomplete beta function:
// P(T > t) = I_{df/(df+t^2)}(df/2, 1/2) / 2.
func studentTTail(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes, betacf).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Summary bundles the descriptive statistics reported per algorithm in the
// paper's bar charts: mean with upper and lower standard deviation.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
}
