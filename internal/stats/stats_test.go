package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of the classic dataset is sqrt(32/7).
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs must give 0")
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// Classic paired example: differences [1, 2, 3, 4, 5]:
	// mean 3, sd sqrt(2.5), t = 3 / (sqrt(2.5)/sqrt(5)) = 4.2426, df 4,
	// two-tailed p ~ 0.0132.
	a := []float64{2, 4, 6, 8, 10}
	b := []float64{1, 2, 3, 4, 5}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.T, 4.242640687, 1e-6) {
		t.Errorf("T = %v, want 4.2426", res.T)
	}
	if res.DF != 4 {
		t.Errorf("DF = %d, want 4", res.DF)
	}
	if !almost(res.P, 0.0132, 5e-4) {
		t.Errorf("P = %v, want ~0.0132", res.P)
	}
	if !res.Significant(0.05) || res.Significant(0.01) {
		t.Errorf("significance thresholds wrong for p=%v", res.P)
	}
}

func TestPairedTTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Errorf("identical samples: T=%v P=%v, want 0, 1", res.T, res.P)
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 3, 4} // constant difference, zero variance
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 || !math.IsInf(res.T, -1) {
		t.Errorf("constant shift: T=%v P=%v, want -Inf, 0", res.T, res.P)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1}); err != ErrTooFewSamples {
		t.Errorf("err = %v, want ErrTooFewSamples", err)
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := regIncBeta(1, 1, x); !almost(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_0.5(a, a) = 0.5 by symmetry.
	for _, a := range []float64{0.5, 1, 2, 5} {
		if got := regIncBeta(a, a, 0.5); !almost(got, 0.5, 1e-10) {
			t.Errorf("I_0.5(%v,%v) = %v, want 0.5", a, a, got)
		}
	}
}

func TestStudentTTailKnownQuantiles(t *testing.T) {
	// For df=10, t=1.812 is the 0.95 quantile: tail ~0.05.
	if got := studentTTail(1.812, 10); !almost(got, 0.05, 2e-3) {
		t.Errorf("tail(1.812, 10) = %v, want ~0.05", got)
	}
	// For df=1 (Cauchy), t=1 gives tail 0.25.
	if got := studentTTail(1, 1); !almost(got, 0.25, 1e-6) {
		t.Errorf("tail(1,1) = %v, want 0.25", got)
	}
	if got := studentTTail(0, 5); !almost(got, 0.5, 1e-9) {
		t.Errorf("tail(0,5) = %v, want 0.5", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || !almost(s.StdDev, 1, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
}

func TestPropertyPValueRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(10) + 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		res, err := PairedTTest(a, b)
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTTestSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8) + 3
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		r1, err1 := PairedTTest(a, b)
		r2, err2 := PairedTTest(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(r1.P, r2.P, 1e-9) && almost(r1.T, -r2.T, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
