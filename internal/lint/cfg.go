package lint

import (
	"go/ast"
	"go/token"
)

// This file is the suite's dataflow substrate: a per-function control-flow
// graph with branch, loop, defer and return edges, plus a forward
// "facts held at block entry" fixpoint and natural-loop detection. The
// flow-sensitive analyzers (lockscope, errpath, hotalloc) are written
// against it; a new analyzer gets path sensitivity by building a CFG per
// function body and propagating its own fact set (see README, "writing a
// new analyzer against the CFG layer").

// A Block is one straight-line run of statements. Nodes holds the
// statements (and, for conditionals, the condition expression) in execution
// order; Succs are the possible successors. The synthetic Exit block of a
// CFG has no nodes and collects every return edge and the fall-off-the-end
// edge.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable identity).
	Index int
	// Nodes are the block's AST nodes in execution order.
	Nodes []ast.Node
	// Succs are the blocks control can transfer to next.
	Succs []*Block
	// Panics marks a block terminated by a call to panic: control reaches
	// Exit, but through stack unwinding rather than a normal return, so
	// resource-balance checks (lockscope's release-on-every-path) skip it.
	Panics bool
}

// A CFG is the control-flow graph of one function body. Defer statements
// appear both in their block (they execute their argument expressions in
// place) and in Defers (their deferred call runs at every function exit).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers are the function's defer statements in source order. Whether a
	// given defer has executed on a given path is path-dependent; analyzers
	// that care (lockscope) model the registration as a fact.
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the control-flow graph of a function body. It does
// not descend into nested function literals — each FuncLit body is its own
// function with its own CFG (see FuncBodies).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{}
	b.cfg = &CFG{}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmt(body)
	// Falling off the end of the body is a return.
	b.edge(b.cur, b.cfg.Exit)
	return b.cfg
}

// FuncBody is one analyzable function body: a declared function or a
// function literal nested inside one.
type FuncBody struct {
	// Decl is the enclosing declared function (nil for file-level init
	// expressions, which have no body and are not emitted).
	Decl *ast.FuncDecl
	// Lit is the function literal (nil when Body is Decl's own body).
	Lit *ast.FuncLit
	// Body is the function body to analyze.
	Body *ast.BlockStmt
}

// FuncBodies enumerates every function body in the file — each declared
// function and each function literal, innermost last — so analyzers can
// build one CFG per body without double-walking nested literals.
func FuncBodies(file *ast.File) []FuncBody {
	var out []FuncBody
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncBody{Decl: fd, Body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, FuncBody{Decl: fd, Lit: lit, Body: lit.Body})
			}
			return true
		})
	}
	return out
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// breaks/continues are the innermost targets for unlabeled branch
	// statements; labels maps a label name to its loop/switch targets.
	breaks    []*Block
	continues []*Block
	labels    map[string]*labelTarget
	// gotos are forward gotos waiting for their label's block.
	gotos map[string][]*Block
	// labelBlocks maps a label to the block its labeled statement starts in
	// (goto target).
	labelBlocks map[string]*Block
}

type labelTarget struct {
	brk, cont *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// dead replaces the current block with an unreachable one, after a
// terminating statement (return, branch, panic).
func (b *cfgBuilder) dead() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		join := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, join)
		}
		b.edge(head, body)
		b.pushLoop(s, join, post)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = join
	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		b.add(s.X)
		b.edge(b.cur, head)
		b.edge(head, body)
		b.edge(head, join) // a range over an empty container skips the body
		b.pushLoop(s, join, head)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = join
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s, s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s, s.Body)
	case *ast.SelectStmt:
		b.add(s) // the select itself is the (blocking) node
		head := b.cur
		join := b.newBlock()
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, join)
		}
		if len(s.Body.List) == 0 {
			b.edge(head, join)
		}
		b.cur = join
	case *ast.LabeledStmt:
		// The labeled statement begins a new block so gotos can target it.
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if b.labelBlocks == nil {
			b.labelBlocks = map[string]*Block{}
		}
		b.labelBlocks[s.Label.Name] = head
		for _, pending := range b.gotos[s.Label.Name] {
			b.edge(pending, head)
		}
		b.labelFor(s.Label.Name, s.Stmt)
		b.stmt(s.Stmt)
		delete(b.labels, s.Label.Name)
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, b.branchTarget(s, true))
			b.dead()
		case token.CONTINUE:
			b.edge(b.cur, b.branchTarget(s, false))
			b.dead()
		case token.GOTO:
			if tgt, ok := b.labelBlocks[s.Label.Name]; ok {
				b.edge(b.cur, tgt)
			} else {
				if b.gotos == nil {
					b.gotos = map[string][]*Block{}
				}
				b.gotos[s.Label.Name] = append(b.gotos[s.Label.Name], b.cur)
			}
			b.dead()
		case token.FALLTHROUGH:
			// Handled structurally by switchBody.
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.dead()
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur.Panics = true
			b.edge(b.cur, b.cfg.Exit)
			b.dead()
		}
	case nil:
		// nothing
	default:
		// Assignments, declarations, sends, go statements, inc/dec, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

// switchBody builds the case blocks of a switch or type switch; stmt is the
// switch statement itself (break target registration).
func (b *cfgBuilder) switchBody(sw ast.Stmt, body *ast.BlockStmt) {
	head := b.cur
	join := b.newBlock()
	b.breaks = append(b.breaks, join)
	defer func() { b.breaks = b.breaks[:len(b.breaks)-1] }()
	hasDefault := false
	var caseBlocks []*Block
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		caseBlocks = append(caseBlocks, blk)
		b.edge(head, blk)
	}
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		falls := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(st)
		}
		if falls && i+1 < len(caseBlocks) {
			b.edge(b.cur, caseBlocks[i+1])
		} else {
			b.edge(b.cur, join)
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) pushLoop(stmt ast.Stmt, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	// Retroactively bind a pending label to this loop's targets.
	for name, lt := range b.labels {
		if lt.brk == nil {
			b.labels[name] = &labelTarget{brk: brk, cont: cont}
		}
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// labelFor registers a label ahead of entering its statement, so the
// loop/switch builder can bind break/continue targets to it.
func (b *cfgBuilder) labelFor(name string, _ ast.Stmt) {
	if b.labels == nil {
		b.labels = map[string]*labelTarget{}
	}
	b.labels[name] = &labelTarget{}
}

// branchTarget resolves a break (brk=true) or continue statement to its
// target block; unresolvable targets (malformed code) fall back to Exit.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, brk bool) *Block {
	if s.Label != nil {
		if lt, ok := b.labels[s.Label.Name]; ok && lt.brk != nil {
			if brk {
				return lt.brk
			}
			return lt.cont
		}
		return b.cfg.Exit
	}
	if brk {
		if len(b.breaks) > 0 {
			return b.breaks[len(b.breaks)-1]
		}
	} else if len(b.continues) > 0 {
		return b.continues[len(b.continues)-1]
	}
	return b.cfg.Exit
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// FactSet is a set of named dataflow facts (what lockscope holds, what
// errpath has seen). Sets are compared by membership.
type FactSet map[string]bool

func (f FactSet) clone() FactSet {
	out := make(FactSet, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func (f FactSet) equal(o FactSet) bool {
	if len(f) != len(o) {
		return false
	}
	for k := range f {
		if !o[k] {
			return false
		}
	}
	return true
}

// Forward propagates facts through the CFG to a fixpoint and returns the
// set of facts holding at each block's entry. transfer maps a block and its
// entry facts to its exit facts (it must not mutate the input set). The
// join is union — "may" analysis: a fact holds at a block entry if it can
// hold on some path reaching it, the conservative direction for
// resource-leak checks.
func (g *CFG) Forward(entry FactSet, transfer func(b *Block, in FactSet) FactSet) map[*Block]FactSet {
	in := map[*Block]FactSet{g.Entry: entry.clone()}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		out := transfer(blk, in[blk])
		for _, succ := range blk.Succs {
			cur, ok := in[succ]
			if !ok {
				in[succ] = out.clone()
				work = append(work, succ)
				continue
			}
			merged := cur.clone()
			for k := range out {
				merged[k] = true
			}
			if !merged.equal(cur) {
				in[succ] = merged
				work = append(work, succ)
			}
		}
	}
	return in
}

// LoopBlocks returns the blocks that lie on some cycle of the CFG — the
// bodies (and heads) of the function's loops, found via back edges on a
// depth-first spanning tree and flood-filling each natural loop from its
// back edge. Statements in these blocks execute a data-dependent number of
// times; hotalloc flags per-iteration allocations in them.
func (g *CFG) LoopBlocks() map[*Block]bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	inLoop := map[*Block]bool{}
	type backEdge struct{ from, to *Block }
	var backs []backEdge
	var dfs func(b *Block)
	dfs = func(b *Block) {
		color[b.Index] = gray
		for _, s := range b.Succs {
			switch color[s.Index] {
			case white:
				dfs(s)
			case gray:
				backs = append(backs, backEdge{from: b, to: s})
			}
		}
		color[b.Index] = black
	}
	dfs(g.Entry)
	// For each back edge from→to, the natural loop is to plus every block
	// that reaches from without passing through to (walked backwards).
	preds := map[*Block][]*Block{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	for _, be := range backs {
		inLoop[be.to] = true
		stack := []*Block{be.from}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if inLoop[b] {
				continue
			}
			inLoop[b] = true
			stack = append(stack, preds[b]...)
		}
	}
	return inLoop
}
