package lint_test

import (
	"testing"
	"time"

	"repro/internal/lint"
)

// BenchmarkWfsimvet times the full 7-analyzer suite — CFG construction,
// dataflow fixpoints, and all syntactic passes — over every package of the
// module, exactly the work the CI lint gate does after loading. The guard
// at the end keeps the gate honest: if the suite creeps past 5s per run,
// the benchmark fails rather than letting CI latency drift silently.
// (Loading and type-checking the tree is measured once, untimed: it is
// shared with go vet and not a property of the analyzers.)
func BenchmarkWfsimvet(b *testing.B) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	u, err := lint.Load(root)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := lint.RunAnalyzers(u, u.Targets, lint.All)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range diags {
			if !d.Suppressed {
				b.Fatalf("unsuppressed finding during benchmark: %v", d)
			}
		}
	}
	b.StopTimer()
	if avg := b.Elapsed() / time.Duration(b.N); avg > 5*time.Second {
		b.Fatalf("7-analyzer suite averaged %v per run; the lint-gate budget is 5s", avg)
	}
}
