package lint

import (
	"go/ast"
)

const corpusPkg = "repro/internal/corpus"

// snapshotScope lists the packages whose read paths must be snapshot-
// pinned: the concurrent query layers, where interleaving a mutation
// between two repository reads would mix state from different generations
// inside one logical operation.
var snapshotScope = map[string]bool{
	"repro/internal/search":  true,
	"repro/internal/cluster": true,
	"repro/internal/shard":   true,
	"repro/pkg/wfsim":        true,
}

// repoReadMethods are the corpus.Repository methods that read corpus state
// and therefore must be reached through a pinned Snapshot. The remaining
// surface is allowed directly: Snapshot and Generation are the pinning
// primitives, and the mutation/lifecycle methods (ApplyBatch,
// ValidateBatch, Restore, SetCommitHook, Add, Remove, Replace) are the
// write path, which owns the repository lock.
var repoReadMethods = map[string]bool{
	"Get":       true,
	"Size":      true,
	"Workflows": true,
	"IDs":       true,
	"Validate":  true,
	"Save":      true,
	"SaveFile":  true,
}

// SnapshotPin enforces the snapshot-pinned read contract: inside the query
// layers (internal/search, internal/cluster, internal/shard, pkg/wfsim),
// corpus state may only be read via an immutable, generation-stamped
// corpus.Snapshot — never directly off the mutable corpus.Repository. One
// Snapshot() call pins one generation for the whole read, which is what
// keeps a search result internally consistent and correctly stamped while
// Apply batches land concurrently.
var SnapshotPin = &Analyzer{
	Name: "snapshotpin",
	Doc: `flag direct corpus.Repository reads on snapshot-pinned read paths

Query-layer packages must pin a corpus.Snapshot and read corpus state from
it; reading the mutable Repository mid-operation can observe two different
generations inside one result.`,
	Run: runSnapshotPin,
}

func runSnapshotPin(pass *Pass) error {
	if !snapshotScope[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.Info.Selections[sel]
			if selection == nil || !repoReadMethods[sel.Sel.Name] {
				return true
			}
			if namedType(selection.Recv(), corpusPkg, "Repository") {
				pass.Reportf(sel.Sel.Pos(), "direct %s read off corpus.Repository; pin a generation with Snapshot() and read from the snapshot", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
