package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

const servePkg = "repro/pkg/wfsim/serve"

// GenStamp enforces the HTTP read-result stamping contract in
// pkg/wfsim/serve: every response that reports read results carries the
// corpus generation (or per-shard generation vector) it was computed at, so
// clients can correlate results across requests and detect mutations
// between calls. Two rules:
//
//   - every struct type named *Response declares a Generation or
//     Generations field, directly or inside one nested named struct of the
//     same package (e.g. a shared stats payload);
//   - writeJSON only serializes named serve types ending in Response or
//     Payload — anonymous maps and raw domain values have no place to
//     carry the stamp.
var GenStamp = &Analyzer{
	Name: "genstamp",
	Doc: `flag serve responses without a generation stamp

Every pkg/wfsim/serve response struct must carry Generation(s), and
writeJSON must serialize named *Response/*Payload types, so read results
are always tagged with the corpus generation they came from.`,
	Run: runGenStamp,
}

func runGenStamp(pass *Pass) error {
	if pass.Pkg.Path() != servePkg {
		return nil
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !strings.HasSuffix(name, "Response") {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if !carriesGeneration(st, true) {
			pass.Reportf(obj.Pos(), "response struct %s has no Generation/Generations field; read results must be stamped with the corpus generation", name)
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "writeJSON" || len(call.Args) != 3 {
				return true
			}
			arg := call.Args[2]
			tv, ok := pass.Info.Types[arg]
			if !ok {
				return true
			}
			if !isServeResponseType(pass, tv.Type) {
				pass.Reportf(arg.Pos(), "writeJSON payload has type %s; serialize a named serve type ending in Response or Payload so it can carry the generation stamp", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			}
			return true
		})
	}
	return nil
}

// carriesGeneration reports whether st has a Generation or Generations
// field, looking one level into named struct fields of the serve package
// when nested is true.
func carriesGeneration(st *types.Struct, nested bool) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Generation" || f.Name() == "Generations" {
			return true
		}
		if !nested {
			continue
		}
		t := f.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == servePkg {
			if inner, ok := named.Underlying().(*types.Struct); ok && carriesGeneration(inner, false) {
				return true
			}
		}
	}
	return false
}

// isServeResponseType reports whether t is a named type of the serve
// package whose name ends in Response or Payload.
func isServeResponseType(pass *Pass, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != servePkg {
		return false
	}
	return strings.HasSuffix(obj.Name(), "Response") || strings.HasSuffix(obj.Name(), "Payload")
}
