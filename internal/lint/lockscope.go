package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockScopePackages are the concurrency-bearing packages whose lock
// discipline the analyzer enforces: the shard coordinator, the mutable
// corpus, the sharded score cache and the durability layer.
var lockScopePackages = map[string]bool{
	"repro/internal/shard":      true,
	"repro/internal/corpus":     true,
	"repro/internal/scorecache": true,
	"repro/internal/storage":    true,
}

// LockScope enforces the engine's lock-scope contract on the CFG of every
// function in the protected packages (internal/shard, internal/corpus,
// internal/scorecache, internal/storage):
//
//   - a sync.Mutex/RWMutex acquired in a function must be released on every
//     control-flow path out of it — either by a defer'd unlock (preferred)
//     or by an explicit unlock on each path. Paths that exit via panic are
//     exempt (unwinding, not a leak the caller can observe before dying).
//   - no blocking operation while a lock is held: channel send/receive,
//     select without a default case, time.Sleep, sync.WaitGroup.Wait, and
//     direct I/O on *os.File or net connections. A lock held across an
//     fsync turns every reader into a disk-latency victim; a lock held
//     across a channel op can deadlock against the goroutine meant to
//     drain it. Only the first blocking site per (function, lock) is
//     reported, so one justified suppression covers a deliberately
//     I/O-serializing mutex.
//
// Functions whose name ends in "Locked" are analyzed as entered with their
// receiver's mutex fields already held (the repository's convention for
// caller-locked helpers): their blocking operations are checked, but the
// release obligation stays with the caller.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: `flag locks not released on every path and blocking calls under a held lock

A held sync.Mutex/RWMutex must be released on every CFG path out of the
function (defer preferred), and no channel op, select, sleep or direct
file/network I/O may run while it is held.`,
	Run: runLockScope,
}

const (
	lockHeld     = "held:"    // acquired here; must be released on every path
	lockDeferred = "defer:"   // a defer'd unlock covers the rest of the function
	lockAssumed  = "assumed:" // held by the caller (xxxLocked convention)
)

func runLockScope(pass *Pass) error {
	if !lockScopePackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, fb := range FuncBodies(file) {
			checkLockScope(pass, fb)
		}
	}
	return nil
}

// lockState carries the per-function bookkeeping of one lockscope pass.
type lockState struct {
	pass *Pass
	// acquiredAt maps a lock key to its first acquisition position, the
	// anchor for release-obligation findings.
	acquiredAt map[string]token.Pos
	// blockingReported dedups blocking-op findings per lock key.
	blockingReported map[string]bool
	// comm holds select CommClause comm statements: the select itself is the
	// blocking point (and only without a default), not the individual comm
	// ops, which by selection are ready when they run.
	comm map[ast.Node]bool
}

func checkLockScope(pass *Pass, fb FuncBody) {
	cfg := BuildCFG(fb.Body)
	st := &lockState{
		pass:             pass,
		acquiredAt:       map[string]token.Pos{},
		blockingReported: map[string]bool{},
		comm:             map[ast.Node]bool{},
	}
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					st.comm[cc.Comm] = true
				}
			}
		}
		return true
	})
	entry := FactSet{}
	// The xxxLocked convention: the function body runs under its receiver's
	// mutexes, acquired by the caller. Only for the declared function itself
	// — a closure inside it starts from the facts of wherever it runs, which
	// the analyzer cannot know, so closures start clean.
	if fb.Lit == nil && fb.Decl != nil && strings.HasSuffix(fb.Decl.Name.Name, "Locked") {
		for _, key := range receiverMutexKeys(pass, fb.Decl) {
			entry[lockAssumed+key] = true
		}
	}
	transfer := func(b *Block, in FactSet) FactSet {
		out := in.clone()
		for _, n := range b.Nodes {
			st.apply(n, out, false)
		}
		return out
	}
	in := cfg.Forward(entry, transfer)
	// Reporting pass: re-walk each reached block with its fixpoint entry
	// facts, now emitting diagnostics.
	for _, b := range cfg.Blocks {
		facts, ok := in[b]
		if !ok {
			continue // unreachable
		}
		out := facts.clone()
		for _, n := range b.Nodes {
			st.apply(n, out, true)
		}
		// Release obligation: a lock still plainly held on a normal edge to
		// Exit was not released on this path.
		if !b.Panics && hasSucc(b, cfg.Exit) {
			for f := range out {
				if key, ok := strings.CutPrefix(f, lockHeld); ok && !out[lockDeferred+key] {
					pos := st.acquiredAt[key]
					if pos == token.NoPos {
						pos = fb.Body.Pos()
					}
					if !st.blockingReported["exit:"+key] {
						st.blockingReported["exit:"+key] = true
						pass.Reportf(pos, "%s is not released on every path out of the function; unlock on each return or defer the unlock", key)
					}
				}
			}
		}
	}
}

func hasSucc(b, succ *Block) bool {
	for _, s := range b.Succs {
		if s == succ {
			return true
		}
	}
	return false
}

// apply updates facts for one node; when report is set it also emits
// blocking-op diagnostics against the current fact set.
func (st *lockState) apply(n ast.Node, facts FactSet, report bool) {
	if st.comm[n] {
		return // a select comm op is ready by selection; the select blocks
	}
	// Lock transitions first (a node can be both, e.g. `defer mu.Unlock()`).
	switch n := n.(type) {
	case *ast.DeferStmt:
		if key, op, ok := lockCall(st.pass, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
			facts[lockDeferred+key] = true
		}
		return // a defer's call body runs at exit, not here
	case *ast.ExprStmt:
		st.applyExpr(n.X, facts, report)
		return
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			st.applyExpr(rhs, facts, report)
		}
		return
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			st.applyExpr(res, facts, report)
		}
		return
	case *ast.SendStmt:
		st.blocking(n.Pos(), "channel send", facts, report)
		return
	case *ast.SelectStmt:
		if !selectHasDefault(n) {
			st.blocking(n.Pos(), "select", facts, report)
		}
		return
	case *ast.GoStmt:
		return // the spawned body runs on its own goroutine
	}
	if e, ok := n.(ast.Expr); ok {
		st.applyExpr(e, facts, report)
	}
}

// applyExpr walks an expression for lock calls, channel receives and
// blocking calls, without descending into function literals.
func (st *lockState) applyExpr(e ast.Expr, facts FactSet, report bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body has its own CFG
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				st.blocking(n.Pos(), "channel receive", facts, report)
			}
		case *ast.CallExpr:
			if key, op, ok := lockCall(st.pass, n); ok {
				switch op {
				case "Lock", "RLock":
					facts[lockHeld+key] = true
					if _, seen := st.acquiredAt[key]; !seen {
						st.acquiredAt[key] = n.Pos()
					}
				case "Unlock", "RUnlock":
					delete(facts, lockHeld+key)
					delete(facts, lockAssumed+key)
				}
				return true
			}
			if desc, ok := blockingCall(st.pass, n); ok {
				st.blocking(n.Pos(), desc, facts, report)
			}
		}
		return true
	})
}

// blocking reports a blocking operation if any lock is currently held (or
// assumed held), once per (function, lock).
func (st *lockState) blocking(pos token.Pos, what string, facts FactSet, report bool) {
	if !report {
		return
	}
	for f := range facts {
		var key string
		switch {
		case strings.HasPrefix(f, lockHeld):
			key = strings.TrimPrefix(f, lockHeld)
		case strings.HasPrefix(f, lockAssumed):
			key = strings.TrimPrefix(f, lockAssumed)
		default:
			continue
		}
		if st.blockingReported[key] {
			continue
		}
		st.blockingReported[key] = true
		st.pass.Reportf(pos, "%s while %s is held; move the blocking operation outside the critical section", what, key)
	}
}

// lockCall recognizes mu.Lock()/Unlock()/RLock()/RUnlock() on a
// sync.Mutex or sync.RWMutex value and returns the lock's identity (the
// receiver expression, e.g. "s.mu") and the operation. RLock/RUnlock get a
// distinct identity suffix so read and write halves are tracked separately.
func lockCall(pass *Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, has := pass.Info.Types[sel.X]
	if !has {
		return "", "", false
	}
	if !namedType(tv.Type, "sync", "Mutex") && !namedType(tv.Type, "sync", "RWMutex") {
		return "", "", false
	}
	key = types.ExprString(sel.X)
	if op == "RLock" || op == "RUnlock" {
		key += " [read]"
	}
	return key, op, true
}

// blockingCall recognizes calls that can block: direct I/O on *os.File,
// methods on net.Conn/net.Listener, time.Sleep and sync.WaitGroup.Wait.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if p := usedPackage(pass, sel.X); p != "" {
		if p == "time" && name == "Sleep" {
			return "time.Sleep", true
		}
		if p == "net" && (strings.HasPrefix(name, "Dial") || name == "Listen") {
			return "net." + name, true
		}
		return "", false
	}
	tv, has := pass.Info.Types[sel.X]
	if !has {
		return "", false
	}
	t := tv.Type
	switch {
	case namedType(t, "os", "File"):
		switch name {
		case "Sync", "Write", "WriteString", "WriteAt", "Read", "ReadAt", "Close", "Truncate", "ReadFrom":
			return fmt.Sprintf("os.File.%s (%s.%s)", name, types.ExprString(sel.X), name), true
		}
	case namedType(t, "net", "Conn"), namedType(t, "net", "TCPConn"), namedType(t, "net", "Listener"):
		return "network I/O (" + name + ")", true
	case namedType(t, "sync", "WaitGroup") && name == "Wait":
		return "sync.WaitGroup.Wait", true
	}
	return "", false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// receiverMutexKeys lists the lock identities of every sync.Mutex/RWMutex
// field reachable as <recv>.<field> on the function's receiver — the locks
// a xxxLocked helper is entered holding.
func receiverMutexKeys(pass *Pass, fd *ast.FuncDecl) []string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return nil
	}
	tv, ok := pass.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var keys []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if namedType(f.Type(), "sync", "Mutex") {
			keys = append(keys, recvName+"."+f.Name())
		}
		if namedType(f.Type(), "sync", "RWMutex") {
			keys = append(keys, recvName+"."+f.Name(), recvName+"."+f.Name()+" [read]")
		}
	}
	return keys
}
