package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const (
	workflowPkg   = "repro/internal/workflow"
	scorecachePkg = "repro/internal/scorecache"
)

// PairOrder enforces the engine's canonical-pair contract: every pairwise
// score is a function of the unordered workflow pair, which holds only if
// every site orients the pair the same way — smaller ID first — before
// scoring or keying a cache. The blessed canonicalization points are
// workflow.OrderPair / OrderIDs / IDsInOrder and scorecache.PairKey; this
// analyzer flags the two ways sites drift from them:
//
//   - composite literals of scorecache.Key outside package scorecache,
//     which bypass PairKey's orientation, and
//   - ad-hoc ID-order comparisons (x.ID < y.ID and friends on workflow
//     values) outside package workflow, which re-derive the convention by
//     hand and silently diverge when it gains a tie-break rule.
//
// Comparator callbacks passed to sort/slices functions are exempt: sorting
// by ID is ordering a list, not orienting a score pair.
var PairOrder = &Analyzer{
	Name: "pairorder",
	Doc: `flag ad-hoc workflow pair ordering and raw scorecache.Key construction

Pairwise scores must be canonicalized smaller-ID-first through
workflow.OrderPair/OrderIDs/IDsInOrder, and cache keys built with
scorecache.PairKey, so N-shard and 1-shard runs stay bit-identical.`,
	Run: runPairOrder,
}

func runPairOrder(pass *Pass) error {
	if pass.Pkg.Path() == workflowPkg || pass.Pkg.Path() == scorecachePkg {
		return nil // the blessed helpers themselves
	}
	for _, file := range pass.Files {
		exempt := comparatorRanges(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if namedType(pass.Info.Types[n].Type, scorecachePkg, "Key") {
					pass.Reportf(n.Pos(), "raw scorecache.Key literal; build keys with scorecache.PairKey so the pair is canonicalized")
				}
			case *ast.BinaryExpr:
				if !orderingOp(n.Op) || exempt.covers(n.Pos()) {
					return true
				}
				if isWorkflowIDSel(pass, n.X) && isWorkflowIDSel(pass, n.Y) {
					pass.Reportf(n.Pos(), "ad-hoc workflow ID ordering; canonicalize pairs with workflow.OrderPair, workflow.OrderIDs or workflow.IDsInOrder")
				}
			}
			return true
		})
	}
	return nil
}

func orderingOp(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// isWorkflowIDSel reports whether e is an ID selector on a workflow value
// (w.ID with w of type workflow.Workflow or *workflow.Workflow).
func isWorkflowIDSel(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ID" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	return ok && namedType(tv.Type, workflowPkg, "Workflow")
}

// posRanges is a set of source intervals.
type posRanges [][2]token.Pos

func (r posRanges) covers(p token.Pos) bool {
	for _, iv := range r {
		if iv[0] <= p && p < iv[1] {
			return true
		}
	}
	return false
}

// comparatorRanges collects the extents of function literals passed to
// sort/slices package functions — comparator callbacks, where comparing IDs
// expresses list order, not pair orientation.
func comparatorRanges(pass *Pass, file *ast.File) posRanges {
	var out posRanges
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if p := usedPackage(pass, sel.X); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, [2]token.Pos{lit.Pos(), lit.End()})
			}
		}
		return true
	})
	return out
}

// usedPackage returns the import path when e is an identifier naming an
// imported package, and "" otherwise.
func usedPackage(pass *Pass, e ast.Expr) string {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
