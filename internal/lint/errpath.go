package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrPath enforces the engine's error-flow contract:
//
//   - no error-returning call may be discarded — neither via a blank
//     assignment (`_ = f()`, `x, _ := g()`) nor as a bare expression
//     statement. Exempt: defer statements (deferred cleanup), calls in the
//     body of an `if err != nil` error-propagation branch (the original
//     error wins; cleanup there is best-effort by design), and the
//     never-failing print/buffer families (fmt.Print*/Fprint*,
//     bytes.Buffer, strings.Builder). Everything else either handles the
//     error or carries a //wfsimvet:ignore errpath justification — the
//     audit trail for every deliberately dropped error.
//   - an error passed to fmt.Errorf must be wrapped with %w, not flattened
//     through %v/%s: flattening breaks errors.Is/As at package boundaries
//     (the serve layer's 409/400 mapping depends on the corpus sentinels
//     surviving the storage and shard layers).
//   - in internal/storage, an error assigned from a call must reach a use
//     (a check, a return, an argument) on every CFG path before the
//     function exits or the variable is reassigned. This is the
//     commit-path guarantee: an fsync/close error that only flows down one
//     branch can silently acknowledge a batch the log never made durable.
var ErrPath = &Analyzer{
	Name: "errpath",
	Doc: `flag discarded errors, unwrapped error formatting, and error values dead on some path

Every error-returning call is handled or carries a justified suppression;
fmt.Errorf wraps error args with %w; in internal/storage an assigned error
must be used on every CFG path before exit.`,
	Run: runErrPath,
}

// lostErrPackages are the packages where the flow-sensitive
// "error used on every path" check runs: the durability layer, where a
// dropped fsync/rename/close error can acknowledge a batch that was never
// made durable.
var lostErrPackages = map[string]bool{
	"repro/internal/storage": true,
}

func runErrPath(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		checkDiscards(pass, file)
		checkErrorfWrap(pass, file)
		if lostErrPackages[pass.Pkg.Path()] {
			for _, fb := range FuncBodies(file) {
				checkErrLiveness(pass, fb)
			}
		}
	}
	return nil
}

// checkDiscards flags blank-assigned and bare-call error discards.
func checkDiscards(pass *Pass, file *ast.File) {
	// parents maps each node to its parent so exemption contexts (defer,
	// error-propagation branches) can be walked upward.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkBlankErrAssign(pass, n)
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok || !callReturnsError(pass, call) {
				return true
			}
			if exemptDiscard(pass, parents, n, call) {
				return true
			}
			pass.Reportf(n.Pos(), "result of %s contains an error that is silently discarded; handle it or justify with //wfsimvet:ignore errpath", callName(pass, call))
		}
		return true
	})
}

// checkBlankErrAssign flags `_ = f()` and `a, _ := g()` where the
// blank-assigned position has type error.
func checkBlankErrAssign(pass *Pass, as *ast.AssignStmt) {
	// Multi-value form: x, _ := f() — one call, results positionally.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		sig, ok := pass.Info.Types[call.Fun].Type.(*types.Signature)
		if !ok {
			return
		}
		res := sig.Results()
		for i, lhs := range as.Lhs {
			if !isBlank(lhs) || i >= res.Len() {
				continue
			}
			if isErrorType(res.At(i).Type()) {
				pass.Reportf(as.Pos(), "error result of %s discarded into _; handle it or justify with //wfsimvet:ignore errpath", callName(pass, call))
				return
			}
		}
		return
	}
	// Parallel form: _ = f(), or _, _ = f(), g().
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		rhs := as.Rhs[i]
		tv, ok := pass.Info.Types[rhs]
		if !ok {
			continue
		}
		if isErrorType(tv.Type) {
			if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
				pass.Reportf(as.Pos(), "error result of %s discarded into _; handle it or justify with //wfsimvet:ignore errpath", callName(pass, ast.Unparen(rhs).(*ast.CallExpr)))
			}
		} else if tup, ok := tv.Type.(*types.Tuple); ok {
			for j := 0; j < tup.Len(); j++ {
				if isErrorType(tup.At(j).Type()) {
					pass.Reportf(as.Pos(), "error result discarded into _; handle it or justify with //wfsimvet:ignore errpath")
					return
				}
			}
		}
	}
}

// exemptDiscard reports whether a bare error-discarding call is in an
// accepted context: a defer statement, the body of an `if err != nil`
// error-propagation branch, or a call from the never-failing families.
func exemptDiscard(pass *Pass, parents map[ast.Node]ast.Node, n ast.Node, call *ast.CallExpr) bool {
	if neverFails(pass, call) {
		return true
	}
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch p := cur.(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			// A literal's body is its own error-flow scope, except when the
			// literal is itself deferred (defer func() { ... }()).
			if ds, ok := parents[parentCall(parents, p)].(*ast.DeferStmt); ok && ds != nil {
				return true
			}
			return false
		case *ast.IfStmt:
			// Inside the then-branch of `if <error> != nil`: an error is in
			// flight; cleanup calls are best-effort by design.
			if inThenBranch(p, n) && isErrNilCheck(pass, p.Cond) {
				return true
			}
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}

// parentCall returns the CallExpr directly invoking lit, if any.
func parentCall(parents map[ast.Node]ast.Node, lit *ast.FuncLit) ast.Node {
	call, ok := parents[lit].(*ast.CallExpr)
	if ok && ast.Unparen(call.Fun) == lit {
		return call
	}
	return nil
}

// inThenBranch reports whether n lies within the if statement's then block.
func inThenBranch(ifs *ast.IfStmt, n ast.Node) bool {
	return ifs.Body != nil && ifs.Body.Pos() <= n.Pos() && n.Pos() < ifs.Body.End()
}

// isErrNilCheck matches `x != nil` (either side) where x has type error.
func isErrNilCheck(pass *Pass, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if tv, ok := pass.Info.Types[side]; ok && isErrorType(tv.Type) {
			return true
		}
	}
	return false
}

// neverFails recognizes the call families whose error results are nil by
// documented contract (fmt print family, bytes.Buffer, strings.Builder,
// hash.Hash writes): requiring justifications there would train people to
// paste them.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if p := usedPackage(pass, sel.X); p != "" {
		return p == "fmt" && strings.HasPrefix(name, "Print") ||
			p == "fmt" && strings.HasPrefix(name, "Fprint")
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	if namedType(tv.Type, "bytes", "Buffer") || namedType(tv.Type, "strings", "Builder") {
		return true
	}
	// "It never returns an error." — hash.Hash's Write contract.
	if name == "Write" {
		return namedType(tv.Type, "hash", "Hash") ||
			namedType(tv.Type, "hash", "Hash32") || namedType(tv.Type, "hash", "Hash64")
	}
	return false
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error argument
// without a %w verb in a constant format string.
func checkErrorfWrap(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || usedPackage(pass, sel.X) != "fmt" || sel.Sel.Name != "Errorf" || len(call.Args) < 2 {
			return true
		}
		hasErrArg := false
		for _, arg := range call.Args[1:] {
			if tv, ok := pass.Info.Types[arg]; ok && isErrorType(tv.Type) {
				hasErrArg = true
				break
			}
		}
		if !hasErrArg {
			return true
		}
		tv, ok := pass.Info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true // dynamic format: cannot decide statically
		}
		if !strings.Contains(constant.StringVal(tv.Value), "%w") {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; flattening breaks errors.Is/As across package boundaries")
		}
		return true
	})
}

// checkErrLiveness is the flow-sensitive storage check: every error-typed
// variable assigned from a call must be used — checked, returned, or passed
// on — on every CFG path before the function exits or the variable is
// reassigned. The fact tracked per variable is "assigned, not yet used".
func checkErrLiveness(pass *Pass, fb FuncBody) {
	cfg := BuildCFG(fb.Body)
	type def struct {
		obj types.Object
		pos token.Pos
	}
	// Walk every reachable block; for each error def, scan forward through
	// the block and then flood successors looking for a path that reaches
	// Exit without a use.
	reachable := cfg.Forward(FactSet{}, func(b *Block, in FactSet) FactSet { return in })
	reported := map[token.Pos]bool{}
	for _, b := range cfg.Blocks {
		if _, ok := reachable[b]; !ok {
			continue
		}
		for i, n := range b.Nodes {
			d, ok := errDef(pass, n)
			if !ok {
				continue
			}
			// Scan the rest of this block.
			state := scanForUse(pass, b.Nodes[i+1:], d.obj, cfg)
			if state != liveUnknown {
				if state == liveLost {
					reportLost(pass, reported, d.pos, d.obj)
				}
				continue
			}
			// Flood successors.
			visited := map[*Block]bool{b: true}
			stack := append([]*Block{}, b.Succs...)
			lost := false
			if len(b.Succs) == 0 {
				lost = true // block falls off with no successor? (exit handled below)
			}
			for len(stack) > 0 && !lost {
				nb := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if visited[nb] {
					continue
				}
				visited[nb] = true
				if nb == cfg.Exit {
					lost = true
					break
				}
				switch scanForUse(pass, nb.Nodes, d.obj, cfg) {
				case liveUsed, liveKilled:
					continue // this path is satisfied
				case liveLost:
					lost = true
				case liveUnknown:
					if len(nb.Succs) == 0 {
						continue
					}
					stack = append(stack, nb.Succs...)
				}
			}
			if lost {
				reportLost(pass, reported, d.pos, d.obj)
			}
		}
	}
}

func reportLost(pass *Pass, reported map[token.Pos]bool, pos token.Pos, obj types.Object) {
	if reported[pos] {
		return
	}
	reported[pos] = true
	pass.Reportf(pos, "error assigned to %s is not used on every path before the function exits; a dropped storage error can acknowledge a batch that was never made durable", obj.Name())
}

type liveState int

const (
	liveUnknown liveState = iota // neither used nor killed in these nodes
	liveUsed                     // a use was found before any reassignment
	liveKilled                   // reassigned before any use
	liveLost                     // a return/exit passed without a use
)

// errDef recognizes an assignment of a call result to a named error
// variable and returns the variable's object.
func errDef(pass *Pass, n ast.Node) (struct {
	obj types.Object
	pos token.Pos
}, bool) {
	var zero struct {
		obj types.Object
		pos token.Pos
	}
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return zero, false
	}
	if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
		return zero, false
	}
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || !isErrorType(obj.Type()) {
			continue
		}
		zero.obj = obj
		zero.pos = as.Pos()
		return zero, true
	}
	return zero, false
}

// scanForUse scans a node list for the first use or kill of obj.
func scanForUse(pass *Pass, nodes []ast.Node, obj types.Object, cfg *CFG) liveState {
	for _, n := range nodes {
		// A reassignment kills the obligation (the new def gets its own).
		if as, ok := n.(*ast.AssignStmt); ok {
			usedInRHS := false
			for _, rhs := range as.Rhs {
				if usesObj(pass, rhs, obj) {
					usedInRHS = true
				}
			}
			if usedInRHS {
				return liveUsed
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if pass.Info.Defs[id] == obj || pass.Info.Uses[id] == obj {
						return liveKilled
					}
				}
			}
			continue
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				if usesObj(pass, res, obj) {
					return liveUsed
				}
			}
			return liveLost // returned without the error
		}
		if usesObj(pass, n, obj) {
			return liveUsed
		}
	}
	return liveUnknown
}

// usesObj reports whether the node references obj.
func usesObj(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callReturnsError reports whether any result of the call has type error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	if isErrorType(tv.Type) {
		return true
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

// callName renders a short name for the called function.
func callName(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	}
	return "call"
}
