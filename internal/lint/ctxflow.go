package lint

import (
	"go/ast"
	"strings"
)

// CtxFlow enforces the engine's cancellation contract: context flows in
// from the caller, it is never minted inside the library. Two rules:
//
//   - no context.Background() or context.TODO() in non-main, non-test
//     package code — a fresh root context silently detaches the work from
//     the caller's deadline and cancellation, which is how "cancelled"
//     searches keep burning CPU;
//   - exported functions and methods that accept a context.Context take it
//     as the first parameter, the position callers and wrappers expect.
//
// Binaries (package main) and test files own their lifetimes and are
// exempt.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: `flag fresh root contexts in library code and misplaced ctx parameters

Library code must thread the caller's context; context.Background()/TODO()
detach work from cancellation. Exported signatures take ctx first.`,
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || usedPackage(pass, sel.X) != "context" {
					return true
				}
				if name := sel.Sel.Name; name == "Background" || name == "TODO" {
					pass.Reportf(n.Pos(), "context.%s() in library code detaches work from the caller's cancellation; thread a ctx parameter instead", name)
				}
			case *ast.FuncDecl:
				checkCtxFirst(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCtxFirst flags exported functions whose context.Context parameter is
// not in first position.
func checkCtxFirst(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fn.Type.Params.List {
		isCtx := false
		if tv, ok := pass.Info.Types[field.Type]; ok {
			isCtx = namedType(tv.Type, "context", "Context")
		}
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isCtx && idx > 0 {
			pass.Reportf(field.Pos(), "%s takes context.Context at parameter %d; ctx must be the first parameter", fn.Name.Name, idx+1)
			return
		}
		idx += n
	}
}
