// Package lint is a self-contained static-analysis framework plus the
// analyzer suite that mechanically enforces this repository's concurrency,
// caching, and sharding contracts (command wfsimvet is the driver). The
// framework mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer owns a Run function over a type-checked Pass and reports
// position-anchored Diagnostics — but is built only on the standard
// library's go/ast, go/parser, go/token and go/types, so the checker builds
// and runs without network access or module downloads.
//
// Findings can be silenced at a specific site with a justification comment
// on the flagged line or the line directly above it:
//
//	//wfsimvet:ignore <analyzer> <justification>
//
// The analyzer name must match (or be "*"), and the justification must be
// non-empty — a bare ignore is not recognized and the finding stands. The
// driver still counts suppressed findings, so they stay visible.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// wfsimvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced contract; the
	// first line is the summary shown by the driver's -list flag.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	// A returned error aborts the whole run (reserved for internal
	// analyzer failures, not findings).
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed sources, with comments.
	Files []*ast.File
	// Pkg is the type-checked package; Pkg.Path() is the import path the
	// package was checked under (fixture packages are checked under the
	// path whose contract is being exercised).
	Pkg *types.Package
	// Info holds the type-checker's Uses/Defs/Types/Selections maps.
	Info *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed is set when a recognized wfsimvet:ignore directive
	// covers the finding; Justification holds the directive's reason.
	Suppressed    bool
	Justification string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	if d.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", d.Justification)
	}
	return s
}

// ignoreDirective is one parsed //wfsimvet:ignore comment.
type ignoreDirective struct {
	analyzer      string
	justification string
}

// suppressions maps file name -> line -> directives on that line.
type suppressions map[string]map[int][]ignoreDirective

const ignorePrefix = "wfsimvet:ignore"

// collectSuppressions parses every //wfsimvet:ignore directive in files.
// Malformed directives (no analyzer, or no justification) are returned
// separately as findings so they cannot silently mask anything.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "wfsimvet",
						Pos:      pos,
						Message:  "malformed ignore directive: want //wfsimvet:ignore <analyzer> <justification>",
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int][]ignoreDirective{}
					sup[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], ignoreDirective{
					analyzer:      fields[0],
					justification: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return sup, malformed
}

// match returns the covering directive for a finding of analyzer at pos: a
// directive on the same line or on the line directly above.
func (s suppressions) match(analyzer string, pos token.Position) (ignoreDirective, bool) {
	byLine := s[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.analyzer == analyzer || d.analyzer == "*" {
				return d, true
			}
		}
	}
	return ignoreDirective{}, false
}

// RunAnalyzers applies every analyzer to every package and returns all
// diagnostics — suppressed ones included, marked — sorted by position.
// Malformed ignore directives are themselves diagnostics.
func RunAnalyzers(u *Universe, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup, malformed := collectSuppressions(u.Fset, pkg.Files)
		out = append(out, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if dir, ok := sup.match(a.Name, d.Pos); ok {
					d.Suppressed = true
					d.Justification = dir.justification
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// All is the full analyzer suite, in the order the driver runs it.
var All = []*Analyzer{
	PairOrder,
	SnapshotPin,
	CtxFlow,
	GenStamp,
	LockScope,
	ErrPath,
	HotAlloc,
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// namedType reports whether t (after pointer indirection) is the named type
// pkgPath.name, the shared type test of the analyzer suite.
func namedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
