// Fixture: canonical pair handling the pairorder analyzer must accept.
package fixture

import (
	"sort"

	"repro/internal/scorecache"
	"repro/internal/workflow"
)

func scoreKey(measure string, a, b *workflow.Workflow, gen, proj uint64) scorecache.Key {
	x, y := workflow.OrderPair(a, b)
	return scorecache.PairKey(measure, x.SymID(), y.SymID(), gen, proj)
}

// Comparator callbacks order lists, not score pairs: exempt.
func sortByID(wfs []*workflow.Workflow) {
	sort.Slice(wfs, func(i, j int) bool { return wfs[i].ID < wfs[j].ID })
}

// Comparing non-workflow IDs is out of the analyzer's scope.
func minString(a, b string) string {
	if a < b {
		return a
	}
	return b
}
