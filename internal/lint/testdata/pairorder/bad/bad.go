// Fixture: every finding the pairorder analyzer must produce.
package fixture

import (
	"repro/internal/scorecache"
	"repro/internal/workflow"
)

func scoreKey(measure string, a, b *workflow.Workflow, gen, proj uint64) scorecache.Key {
	x, y := a, b
	if a.ID > b.ID { // want `ad-hoc workflow ID ordering`
		x, y = b, a
	}
	return scorecache.Key{Measure: measure, A: x.SymID(), B: y.SymID(), Gen: gen, Proj: proj} // want `raw scorecache.Key literal`
}

func firstOf(a, b *workflow.Workflow) *workflow.Workflow {
	if a.ID <= b.ID { // want `ad-hoc workflow ID ordering`
		return a
	}
	return b
}
