// Fixture: context handling the ctxflow analyzer must accept.
package fixture

import "context"

// Exported entry points thread the caller's context, first.
func Search(ctx context.Context, id string) error {
	return run(ctx, id)
}

// Unexported helpers may put ctx anywhere (first is still the idiom).
func run(ctx context.Context, id string) error {
	_ = id
	return ctx.Err()
}

// Exported functions without a context are fine.
func Name() string { return "fixture" }
