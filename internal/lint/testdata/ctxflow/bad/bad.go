// Fixture: context misuse the ctxflow analyzer must flag in library code.
package fixture

import "context"

func detached() error {
	ctx := context.Background() // want `context\.Background\(\) in library code`
	return ctx.Err()
}

func placeholder() error {
	return context.TODO().Err() // want `context\.TODO\(\) in library code`
}

func Search(id string, ctx context.Context) error { // want `ctx must be the first parameter`
	return ctx.Err()
}
