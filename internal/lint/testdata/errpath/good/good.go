// Fixture: error flow the errpath analyzer must accept, checked under the
// storage import path so the liveness rule is active too.
package fixture

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
)

var errSentinel = errors.New("sentinel")

func mayFail() error { return errSentinel }

// Checking and wrapping with %w is the contract.
func handled() error {
	if err := mayFail(); err != nil {
		return fmt.Errorf("handled: %w", err)
	}
	return nil
}

// Deferred cleanup may discard: the primary result already left the
// function by the time the defer runs.
func deferredClose(f *os.File) []byte {
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return nil
	}
	return buf[:n]
}

// Cleanup while an error is in flight is best-effort by design: the
// original error wins.
func cleanupInFlight(f *os.File) error {
	if err := mayFail(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// The print, buffer and hash families never fail by documented contract.
func printers(buf *bytes.Buffer) uint64 {
	fmt.Println("status")
	buf.WriteString("x")
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return h.Sum64()
}

// A dynamic format string cannot be decided statically and is not flagged.
func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err)
}

// Used on every path: the liveness rule is satisfied even though one path
// returns nil.
func usedBothPaths(f *os.File, fast bool) error {
	err := f.Sync()
	if fast {
		return err
	}
	if err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return nil
}

// A reassignment opens a fresh obligation only after the previous error
// was checked.
func reassigned(f *os.File) error {
	err := f.Sync()
	if err != nil {
		return err
	}
	err = f.Close()
	return err
}

// Passing the error on (here: as a print argument) is a use.
func logged(f *os.File) {
	if err := f.Sync(); err != nil {
		fmt.Println("sync failed:", err)
	}
}
