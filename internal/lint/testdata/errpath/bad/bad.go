// Fixture: every finding the errpath analyzer must produce, checked under
// the storage import path so the lost-error liveness rule is active.
package fixture

import (
	"errors"
	"fmt"
	"os"
)

var errSentinel = errors.New("sentinel")

func mayFail() error { return errSentinel }

func twoValues() (int, error) { return 0, errSentinel }

// Blank-assigning an error-returning call discards the error.
func blankAssign() {
	_ = mayFail() // want `error result of mayFail discarded into _`
}

// So does blanking the error position of a multi-value call.
func blankTuple() int {
	n, _ := twoValues() // want `error result of twoValues discarded into _`
	return n
}

// A bare call statement discards it too.
func bareCall() {
	mayFail() // want `result of mayFail contains an error that is silently discarded`
}

// Flattening an error through %v breaks errors.Is/As for every caller.
func flatten(err error) error {
	return fmt.Errorf("load: %v", err) // want `fmt\.Errorf formats an error without %w`
}

// In storage, an error must be used on every CFG path: the fast path here
// returns success even when the fsync failed.
func lostOnOnePath(f *os.File, fast bool) error {
	err := f.Sync() // want `error assigned to err is not used on every path`
	if fast {
		return nil
	}
	return err
}
