// Fixture: the suppression directive convention, checked under a
// snapshot-pinned import path so snapshotpin fires.
package fixture

import "repro/internal/corpus"

// A justified directive on the line above suppresses the finding.
func suppressedAbove(repo *corpus.Repository) int {
	//wfsimvet:ignore snapshotpin boot-time read before any reader can exist
	return repo.Size()
}

// A justified directive on the same line suppresses the finding.
func suppressedInline(repo *corpus.Repository) int {
	return repo.Size() //wfsimvet:ignore snapshotpin boot-time read before any reader can exist
}

// A directive without a justification is malformed: it suppresses nothing
// and is itself reported.
func bareDirective(repo *corpus.Repository) int {
	//wfsimvet:ignore snapshotpin
	return repo.Size()
}

// A directive for a different analyzer does not apply.
func wrongAnalyzer(repo *corpus.Repository) int {
	//wfsimvet:ignore pairorder reads are fine here
	return repo.Size()
}
