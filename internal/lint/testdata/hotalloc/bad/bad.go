// Fixture: every finding the hotalloc analyzer must produce.
package fixture

import "fmt"

type item struct {
	id    string
	score float64
}

//wfsimvet:hotpath
func formatInLoop(items []item) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, fmt.Sprintf("%s=%g", it.id, it.score)) // want `fmt\.Sprintf allocates per iteration`
	}
	return out
}

//wfsimvet:hotpath
func concatInLoop(items []item) string {
	s := ""
	for _, it := range items {
		s = s + it.id // want `string concatenation allocates per iteration`
	}
	return s
}

//wfsimvet:hotpath
func mapLiteralInLoop(items []item) int {
	n := 0
	for range items {
		m := map[string]int{} // want `map literal allocates per iteration`
		n += len(m)
	}
	return n
}

//wfsimvet:hotpath
func sliceLiteralInLoop(items []item) int {
	n := 0
	for range items {
		sl := []int{1, 2} // want `slice literal allocates per iteration`
		n += len(sl)
	}
	return n
}

//wfsimvet:hotpath
func closureInLoop(items []item, apply func(func() float64)) {
	for _, it := range items {
		apply(func() float64 { return it.score }) // want `closure allocated per iteration`
	}
}

// Loops inside a closure nested in a hot function are audited too.
//
//wfsimvet:hotpath
func nestedClosure(items []item, run func(func())) {
	run(func() {
		for _, it := range items {
			_ = fmt.Sprintf("%s", it.id) // want `fmt\.Sprintf allocates per iteration`
		}
	})
}

// Rendering a symbol pair to a string key defeats the point of interning:
// the packed-integer memo key is the accepted shape.
//
//wfsimvet:hotpath
func stringMemoKeyInLoop(memo map[string]float64, pairs [][2]uint32) float64 {
	var sum float64
	for _, p := range pairs {
		sum += memo[fmt.Sprintf("%d:%d", p[0], p[1])] // want `fmt\.Sprintf allocates per iteration`
	}
	return sum
}

// Materialising a per-pair ID slice in the merge loop allocates; the
// kernels walk their operands in place.
//
//wfsimvet:hotpath
func idSliceInLoop(pairs [][2]uint32) int {
	n := 0
	for _, p := range pairs {
		ids := []uint32{p[0], p[1]} // want `slice literal allocates per iteration`
		n += len(ids)
	}
	return n
}
