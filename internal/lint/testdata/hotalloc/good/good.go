// Fixture: allocation patterns the hotalloc analyzer must accept.
package fixture

import (
	"fmt"
	"math/bits"
)

type item struct {
	id    string
	score float64
}

// An unannotated function is not audited: formatting in its loop is fine.
func notHot(items []item) []string {
	var out []string
	for _, it := range items {
		out = append(out, fmt.Sprintf("%s", it.id))
	}
	return out
}

// Allocations hoisted above the loop are the intended shape.
//
//wfsimvet:hotpath
func hoisted(items []item) []float64 {
	scores := make([]float64, 0, len(items))
	seen := map[string]bool{}
	for _, it := range items {
		if seen[it.id] {
			continue
		}
		seen[it.id] = true
		scores = append(scores, it.score)
	}
	return scores
}

// Struct values stay on the stack; a per-iteration struct is fine.
//
//wfsimvet:hotpath
func structs(items []item) float64 {
	best := item{}
	for _, it := range items {
		cand := item{id: it.id, score: it.score}
		if cand.score > best.score {
			best = cand
		}
	}
	return best.score
}

// Constant-folded concatenation costs nothing at run time.
//
//wfsimvet:hotpath
func constConcat(items []item) int {
	n := 0
	for range items {
		s := "wf:" + "v1"
		n += len(s)
	}
	return n
}

// A closure defined before the loop is allocated once.
//
//wfsimvet:hotpath
func hoistedClosure(items []item, apply func(func(item) float64)) {
	score := func(it item) float64 { return it.score }
	for range items {
		apply(score)
	}
}

// The interned-kernel shapes must pass the gate allocation-free.

// Sorted-merge intersection over symbol IDs: index arithmetic only.
//
//wfsimvet:hotpath
func mergeIntersect(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Word-parallel bitset AND+popcount over fixed-width summaries.
//
//wfsimvet:hotpath
func popcountOverlap(xs, ys [][4]uint64) int {
	n := 0
	for i := range xs {
		x, y := &xs[i], &ys[i]
		n += bits.OnesCount64(x[0]&y[0]) +
			bits.OnesCount64(x[1]&y[1]) +
			bits.OnesCount64(x[2]&y[2]) +
			bits.OnesCount64(x[3]&y[3])
	}
	return n
}

// ID-pair memo probes: a packed integer key per iteration, no boxing, no
// string rendering.
//
//wfsimvet:hotpath
func memoLookups(memo map[uint64]float64, pairs [][2]uint32) float64 {
	var sum float64
	for _, p := range pairs {
		ida, idb := p[0], p[1]
		if idb < ida {
			ida, idb = idb, ida
		}
		if v, ok := memo[uint64(ida)<<32|uint64(idb)]; ok {
			sum += v
		}
	}
	return sum
}
