// Fixture: allocation patterns the hotalloc analyzer must accept.
package fixture

import "fmt"

type item struct {
	id    string
	score float64
}

// An unannotated function is not audited: formatting in its loop is fine.
func notHot(items []item) []string {
	var out []string
	for _, it := range items {
		out = append(out, fmt.Sprintf("%s", it.id))
	}
	return out
}

// Allocations hoisted above the loop are the intended shape.
//
//wfsimvet:hotpath
func hoisted(items []item) []float64 {
	scores := make([]float64, 0, len(items))
	seen := map[string]bool{}
	for _, it := range items {
		if seen[it.id] {
			continue
		}
		seen[it.id] = true
		scores = append(scores, it.score)
	}
	return scores
}

// Struct values stay on the stack; a per-iteration struct is fine.
//
//wfsimvet:hotpath
func structs(items []item) float64 {
	best := item{}
	for _, it := range items {
		cand := item{id: it.id, score: it.score}
		if cand.score > best.score {
			best = cand
		}
	}
	return best.score
}

// Constant-folded concatenation costs nothing at run time.
//
//wfsimvet:hotpath
func constConcat(items []item) int {
	n := 0
	for range items {
		s := "wf:" + "v1"
		n += len(s)
	}
	return n
}

// A closure defined before the loop is allocated once.
//
//wfsimvet:hotpath
func hoistedClosure(items []item, apply func(func(item) float64)) {
	score := func(it item) float64 { return it.score }
	for range items {
		apply(score)
	}
}
