// Fixture: lock usage the lockscope analyzer must accept.
package fixture

import (
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// A deferred unlock covers every path out.
func deferred(g *guarded, early bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if early {
		return 0
	}
	return g.n
}

// An explicit unlock on each path is accepted too.
func explicitBothPaths(g *guarded, early bool) int {
	g.mu.Lock()
	if early {
		g.mu.Unlock()
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

// A read lock released by a deferred RUnlock.
func readLocked(g *guarded) int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// A panic exit is stack unwinding, not a leaked lock.
func panicPath(g *guarded, bad bool) {
	g.mu.Lock()
	if bad {
		panic("invariant violated")
	}
	g.mu.Unlock()
}

// Blocking before acquisition and after release is the intended shape.
func blockOutside(g *guarded, f *os.File) {
	f.Sync()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// A select with a default never blocks, and a ready comm op is not a
// blocking point.
func selectDefault(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-ch:
		g.n = v
	default:
	}
}

// A goroutine body runs outside the spawning critical section.
func spawn(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// Acquire and release per iteration keeps no lock across the back edge.
func perItem(g *guarded, items []int) {
	for range items {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

// Unlocking before the blocking call is exactly what lockscope wants.
func unlockThenSync(g *guarded, f *os.File) error {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	if n > 0 {
		return f.Sync()
	}
	return nil
}
