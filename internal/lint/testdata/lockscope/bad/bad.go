// Fixture: every finding the lockscope analyzer must produce, checked
// under a lock-scoped import path.
package fixture

import (
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// The lock leaks on the early return.
func leakOnReturn(g *guarded, early bool) int {
	g.mu.Lock() // want `g\.mu is not released on every path`
	if early {
		return 0
	}
	g.mu.Unlock()
	return g.n
}

// A read lock is tracked separately and leaks here on every path.
func leakRLock(g *guarded) int {
	g.rw.RLock() // want `g\.rw \[read\] is not released on every path`
	return g.n
}

// Sleeping while holding the lock stalls every other acquirer.
func sleepUnderLock(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while g\.mu is held`
	g.mu.Unlock()
}

// A channel send can block forever against the goroutine meant to drain it.
func sendUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n // want `channel send while g\.mu is held`
}

// So can a receive.
func recvUnderLock(g *guarded, ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch // want `channel receive while g\.mu is held`
}

// A select without a default blocks until some case is ready.
func selectUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select while g\.mu is held`
	case v := <-ch:
		g.n = v
	}
}

// Direct file I/O under the lock turns readers into disk-latency victims.
func syncUnderLock(g *guarded, f *os.File) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f.Sync() // want `os\.File\.Sync .* while g\.mu is held`
}

// Waiting on a WaitGroup under the lock inverts the usual ordering.
func waitUnderLock(g *guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while g\.mu is held`
}

type logFile struct {
	mu sync.Mutex
	f  *os.File
}

// A xxxLocked helper runs under its receiver's mutex by convention:
// blocking inside is still blocking under the caller's lock.
func (s *logFile) flushLocked() {
	s.f.Sync() // want `os\.File\.Sync .* while s\.mu is held`
}
