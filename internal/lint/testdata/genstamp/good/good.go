// Fixture: generation-stamped responses the genstamp analyzer must accept.
package fixture

import "net/http"

// Directly stamped.
type fetchResponse struct {
	Generation uint64 `json:"generation"`
}

// Stamped with a per-shard generation vector.
type batchResponse struct {
	Generations []uint64 `json:"generations"`
}

// Stamped one level down, through a shared named payload.
type statsPayload struct {
	Generation uint64 `json:"generation"`
}

type searchResponse struct {
	Stats statsPayload `json:"stats"`
}

// Not a Response type: the stamp rule does not apply, but writeJSON still
// accepts it as a named Payload type.
type errorPayload struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {}

func handle(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, searchResponse{})
	writeJSON(w, http.StatusOK, &fetchResponse{})
	writeJSON(w, http.StatusOK, batchResponse{})
	writeJSON(w, http.StatusBadRequest, errorPayload{Error: "bad"})
}
