// Fixture: unstamped responses the genstamp analyzer must flag when the
// package is checked under the serve import path.
package fixture

import "net/http"

type listResponse struct { // want `response struct listResponse has no Generation`
	Items []string `json:"items"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {}

func handleList(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, listResponse{})
}

func handleHealth(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"}) // want `writeJSON payload has type map\[string\]any`
}
