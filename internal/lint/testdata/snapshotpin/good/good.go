// Fixture: snapshot-pinned reads the snapshotpin analyzer must accept.
package fixture

import (
	"repro/internal/corpus"
	"repro/internal/workflow"
)

func pinned(repo *corpus.Repository, id string) (*workflow.Workflow, int, uint64) {
	snap := repo.Snapshot()
	return snap.Get(id), snap.Size(), snap.Generation()
}

// The mutation path owns the repository lock and is allowed direct access.
func mutate(repo *corpus.Repository, wf *workflow.Workflow) (uint64, error) {
	return repo.ApplyBatch([]corpus.Op{{Kind: corpus.OpAdd, ID: wf.ID, Workflow: wf}})
}
