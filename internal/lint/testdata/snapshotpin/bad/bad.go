// Fixture: direct repository reads the snapshotpin analyzer must flag when
// the package is checked under a snapshot-pinned import path.
package fixture

import (
	"repro/internal/corpus"
	"repro/internal/workflow"
)

func size(repo *corpus.Repository) int {
	return repo.Size() // want `direct Size read off corpus\.Repository`
}

func fetch(repo *corpus.Repository, id string) *workflow.Workflow {
	return repo.Get(id) // want `direct Get read off corpus\.Repository`
}

func all(repo *corpus.Repository) []*workflow.Workflow {
	return repo.Workflows() // want `direct Workflows read off corpus\.Repository`
}
