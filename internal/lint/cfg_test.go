package lint_test

import (
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint"
)

// parseBodies parses a source snippet and returns its function bodies.
func parseBodies(t *testing.T, src string) []lint.FuncBody {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return lint.FuncBodies(file)
}

// The CFG substrate is exercised indirectly by every flow-sensitive
// analyzer; these tests pin its structural guarantees directly.

func TestCFGLoopDetection(t *testing.T) {
	bodies := parseBodies(t, `package p
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		total += x
	}
	return total
}
func straight(a, b int) int {
	if a > b {
		return a
	}
	return b
}`)
	if len(bodies) != 2 {
		t.Fatalf("got %d bodies, want 2", len(bodies))
	}
	withLoop := lint.BuildCFG(bodies[0].Body)
	if len(withLoop.LoopBlocks()) == 0 {
		t.Error("range loop produced no loop blocks")
	}
	noLoop := lint.BuildCFG(bodies[1].Body)
	if n := len(noLoop.LoopBlocks()); n != 0 {
		t.Errorf("straight-line function produced %d loop blocks, want 0", n)
	}
}

func TestCFGForwardReachesExit(t *testing.T) {
	bodies := parseBodies(t, `package p
func f(cond bool, xs []int) int {
	n := 0
	if cond {
		for _, x := range xs {
			n += x
		}
	} else {
		n = 1
	}
	return n
}`)
	cfg := lint.BuildCFG(bodies[0].Body)
	in := cfg.Forward(lint.FactSet{"seed": true}, func(b *lint.Block, facts lint.FactSet) lint.FactSet {
		return facts
	})
	exitFacts, ok := in[cfg.Exit]
	if !ok {
		t.Fatal("Exit block unreachable in forward fixpoint")
	}
	if !exitFacts["seed"] {
		t.Error("entry fact did not propagate to Exit")
	}
}

// An infinite loop has no normal edge to Exit: facts must not leak out of
// it, and the builder must still terminate.
func TestCFGInfiniteLoop(t *testing.T) {
	bodies := parseBodies(t, `package p
func spin(ch chan int) {
	for {
		<-ch
	}
}`)
	cfg := lint.BuildCFG(bodies[0].Body)
	in := cfg.Forward(lint.FactSet{}, func(b *lint.Block, facts lint.FactSet) lint.FactSet {
		return facts
	})
	if _, ok := in[cfg.Exit]; ok {
		t.Error("Exit reachable from a for{} loop with no break or return")
	}
	if len(cfg.LoopBlocks()) == 0 {
		t.Error("for{} loop produced no loop blocks")
	}
}

// A nested literal is its own body: the outer CFG must not contain the
// literal's statements.
func TestFuncBodiesSeparatesLiterals(t *testing.T) {
	bodies := parseBodies(t, `package p
func outer(run func(func())) {
	run(func() {
		for {
		}
	})
}`)
	if len(bodies) != 2 {
		t.Fatalf("got %d bodies, want 2 (decl + literal)", len(bodies))
	}
	outer := lint.BuildCFG(bodies[0].Body)
	if n := len(outer.LoopBlocks()); n != 0 {
		t.Errorf("outer body sees %d loop blocks from the nested literal, want 0", n)
	}
	inner := lint.BuildCFG(bodies[1].Body)
	if len(inner.LoopBlocks()) == 0 {
		t.Error("literal body produced no loop blocks")
	}
}
