package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, type-checked package.
type Package struct {
	Path     string
	Name     string
	Dir      string
	Standard bool
	// DepOnly marks packages pulled in only as dependencies of the
	// requested patterns; analyzers run over non-DepOnly packages.
	DepOnly bool
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Universe is the full dependency closure of one load: every package —
// including the standard library — parsed and type-checked from source, so
// analyzers see complete type information without any export-data reader.
type Universe struct {
	Fset *token.FileSet
	// Targets are the packages matched by the load patterns, in
	// dependency order.
	Targets []*Package

	all map[string]*Package
}

// Import implements types.Importer.
func (u *Universe) Import(path string) (*types.Package, error) {
	return u.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom over the loaded universe. The
// standard library vendors golang.org/x packages under the "vendor/"
// prefix while source files import them by their canonical path, so a
// failed lookup retries with the prefix.
func (u *Universe) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	for _, p := range []string{path, "vendor/" + path} {
		if pkg, ok := u.all[p]; ok && pkg.Types != nil {
			return pkg.Types, nil
		}
	}
	return nil, fmt.Errorf("package %q not in loaded universe", path)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load builds the universe for the module rooted at dir: `go list -deps`
// enumerates the patterns' full dependency closure in dependency order, and
// each package is parsed and type-checked from source. Type errors in
// target (non-DepOnly) packages fail the load; errors inside the standard
// library are tolerated, as dependency-only packages are checked without
// function bodies.
func Load(dir string, patterns ...string) (*Universe, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Without cgo the net and os/user packages list their pure-Go
	// fallbacks, which typecheck from source like everything else.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	u := &Universe{Fset: token.NewFileSet(), all: map[string]*Package{}}
	var order []*Package
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var m listedPackage
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		if m.Error != nil && !m.DepOnly {
			return nil, fmt.Errorf("load %s: %s", m.ImportPath, m.Error.Err)
		}
		pkg := &Package{
			Path:     m.ImportPath,
			Name:     m.Name,
			Dir:      m.Dir,
			Standard: m.Standard,
			DepOnly:  m.DepOnly,
		}
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(u.Fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", filepath.Join(m.Dir, name), err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		u.all[pkg.Path] = pkg
		order = append(order, pkg)
	}

	for _, pkg := range order {
		if err := u.check(pkg); err != nil && !pkg.Standard {
			return nil, fmt.Errorf("typecheck %s: %w", pkg.Path, err)
		}
		if !pkg.DepOnly {
			u.Targets = append(u.Targets, pkg)
		}
	}
	return u, nil
}

// check type-checks one package in place against the universe loaded so
// far. `go list -deps` emits dependencies before dependents, so every
// import is already resolved when its importer is checked.
func (u *Universe) check(pkg *Package) error {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{
		Importer: u,
		// Dependency-only stdlib packages only contribute their API;
		// skipping their bodies roughly halves full-universe check time.
		IgnoreFuncBodies: pkg.Standard && pkg.DepOnly,
		FakeImportC:      true,
		Error:            func(error) {}, // collect all, report first via Check's return
	}
	tpkg, err := cfg.Check(pkg.Path, u.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg // possibly incomplete on error; importers still need it
	return err
}

// CheckDir parses and type-checks the .go files of a single directory as a
// package with import path asPath, resolving its imports against the
// universe. This is the fixture loader: analyzer testdata lives in
// directories the go tool ignores, and is checked under the real import
// path whose contract the fixture exercises.
func (u *Universe) CheckDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	pkg := &Package{Path: asPath, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(u.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Name = pkg.Files[0].Name.Name
	if err := u.check(pkg); err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", dir, err)
	}
	return pkg, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod, the directory Load
// should run in.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
