package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// The universe (full dependency closure, type-checked from source) is
// loaded once per test binary; fixtures are checked against it.
var (
	loadOnce sync.Once
	loadedU  *lint.Universe
	loadErr  error
)

func universe(t *testing.T) *lint.Universe {
	t.Helper()
	loadOnce.Do(func() {
		root, err := lint.ModuleRoot(".")
		if err != nil {
			loadErr = err
			return
		}
		loadedU, loadErr = lint.Load(root)
	})
	if loadErr != nil {
		t.Fatalf("load universe: %v", loadErr)
	}
	return loadedU
}

// wantExpectation is one `// want "regex"` comment in a fixture.
type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("//\\s*want\\s+`([^`]+)`")

// collectWants parses the fixture package's `// want` comments.
func collectWants(t *testing.T, u *lint.Universe, pkg *lint.Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := u.Fset.Position(c.Pos())
				wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// checkFixture loads testdata/<dir> as a package with import path asPath,
// runs the analyzer, and matches the diagnostics one-to-one against the
// fixture's `// want` comments.
func checkFixture(t *testing.T, a *lint.Analyzer, dir, asPath string) []lint.Diagnostic {
	t.Helper()
	u := universe(t)
	pkg, err := u.CheckDir(filepath.Join("testdata", dir), asPath)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(u, []*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, u, pkg)
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: missing diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	return diags
}

func TestPairOrderFixtures(t *testing.T) {
	if diags := checkFixture(t, lint.PairOrder, "pairorder/bad", "repro/internal/fixture"); len(diags) == 0 {
		t.Error("bad fixture produced no findings")
	}
	checkFixture(t, lint.PairOrder, "pairorder/good", "repro/internal/fixture")
}

// The blessed package itself is exempt: checked under the workflow import
// path, even ad-hoc comparisons are accepted (they define the convention).
func TestPairOrderExemptInWorkflowPackage(t *testing.T) {
	u := universe(t)
	pkg, err := u.CheckDir(filepath.Join("testdata", "pairorder/bad"), "repro/internal/workflow")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(u, []*lint.Package{pkg}, []*lint.Analyzer{lint.PairOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("got %d findings inside the blessed package, want 0: %v", len(diags), diags)
	}
}

func TestSnapshotPinFixtures(t *testing.T) {
	for _, path := range []string{
		"repro/internal/search",
		"repro/internal/cluster",
		"repro/internal/shard",
		"repro/pkg/wfsim",
	} {
		if diags := checkFixture(t, lint.SnapshotPin, "snapshotpin/bad", path); len(diags) == 0 {
			t.Errorf("bad fixture under %s produced no findings", path)
		}
	}
	checkFixture(t, lint.SnapshotPin, "snapshotpin/good", "repro/internal/search")
}

// Outside the pinned read paths, direct repository reads are allowed — the
// corpus package itself, tools, and the write path use them legitimately.
func TestSnapshotPinScope(t *testing.T) {
	u := universe(t)
	pkg, err := u.CheckDir(filepath.Join("testdata", "snapshotpin/bad"), "repro/internal/tooling")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(u, []*lint.Package{pkg}, []*lint.Analyzer{lint.SnapshotPin})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("got %d findings outside the pinned scope, want 0: %v", len(diags), diags)
	}
}

func TestCtxFlowFixtures(t *testing.T) {
	if diags := checkFixture(t, lint.CtxFlow, "ctxflow/bad", "repro/internal/fixture"); len(diags) == 0 {
		t.Error("bad fixture produced no findings")
	}
	checkFixture(t, lint.CtxFlow, "ctxflow/good", "repro/internal/fixture")
}

func TestGenStampFixtures(t *testing.T) {
	if diags := checkFixture(t, lint.GenStamp, "genstamp/bad", "repro/pkg/wfsim/serve"); len(diags) == 0 {
		t.Error("bad fixture produced no findings")
	}
	checkFixture(t, lint.GenStamp, "genstamp/good", "repro/pkg/wfsim/serve")
	// The same structs under any other import path are out of scope.
	u := universe(t)
	pkg, err := u.CheckDir(filepath.Join("testdata", "genstamp/bad"), "repro/internal/other")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(u, []*lint.Package{pkg}, []*lint.Analyzer{lint.GenStamp})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("got %d findings outside serve, want 0: %v", len(diags), diags)
	}
}

func TestLockScopeFixtures(t *testing.T) {
	if diags := checkFixture(t, lint.LockScope, "lockscope/bad", "repro/internal/scorecache"); len(diags) == 0 {
		t.Error("bad fixture produced no findings")
	}
	checkFixture(t, lint.LockScope, "lockscope/good", "repro/internal/scorecache")
}

// Outside the lock-scoped packages the analyzer stays quiet: lock
// discipline elsewhere is not its contract.
func TestLockScopeScope(t *testing.T) {
	u := universe(t)
	pkg, err := u.CheckDir(filepath.Join("testdata", "lockscope/bad"), "repro/internal/other")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(u, []*lint.Package{pkg}, []*lint.Analyzer{lint.LockScope})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("got %d findings outside the lock scope, want 0: %v", len(diags), diags)
	}
}

func TestErrPathFixtures(t *testing.T) {
	if diags := checkFixture(t, lint.ErrPath, "errpath/bad", "repro/internal/storage"); len(diags) == 0 {
		t.Error("bad fixture produced no findings")
	}
	checkFixture(t, lint.ErrPath, "errpath/good", "repro/internal/storage")
}

// The CFG liveness rule is storage-only; the syntactic discard rules apply
// everywhere. Under a non-storage path the liveness finding disappears and
// the discard findings stay.
func TestErrPathLivenessScope(t *testing.T) {
	u := universe(t)
	pkg, err := u.CheckDir(filepath.Join("testdata", "errpath/bad"), "repro/internal/other")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(u, []*lint.Package{pkg}, []*lint.Analyzer{lint.ErrPath})
	if err != nil {
		t.Fatal(err)
	}
	var discards, liveness int
	for _, d := range diags {
		if strings.Contains(d.Message, "not used on every path") {
			liveness++
		} else {
			discards++
		}
	}
	if liveness != 0 {
		t.Errorf("liveness rule fired outside internal/storage:\n%s", diagLines(diags))
	}
	if discards == 0 {
		t.Error("discard rules did not fire outside internal/storage")
	}
}

func TestHotAllocFixtures(t *testing.T) {
	if diags := checkFixture(t, lint.HotAlloc, "hotalloc/bad", "repro/internal/fixture"); len(diags) == 0 {
		t.Error("bad fixture produced no findings")
	}
	checkFixture(t, lint.HotAlloc, "hotalloc/good", "repro/internal/fixture")
}

// TestSuppression exercises the //wfsimvet:ignore convention: justified
// directives (inline or line-above) suppress, bare or mismatched directives
// do not, and bare directives are themselves reported.
func TestSuppression(t *testing.T) {
	u := universe(t)
	pkg, err := u.CheckDir(filepath.Join("testdata", "suppress"), "repro/internal/search")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(u, []*lint.Package{pkg}, []*lint.Analyzer{lint.SnapshotPin})
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, active, malformed int
	for _, d := range diags {
		switch {
		case d.Analyzer == "wfsimvet" && strings.Contains(d.Message, "malformed"):
			malformed++
		case d.Suppressed:
			suppressed++
			if !strings.Contains(d.Justification, "boot-time read") {
				t.Errorf("suppressed finding lost its justification: %+v", d)
			}
		default:
			active++
		}
	}
	if suppressed != 2 || active != 2 || malformed != 1 {
		t.Errorf("suppressed/active/malformed = %d/%d/%d, want 2/2/1\n%s",
			suppressed, active, malformed, diagLines(diags))
	}
}

// TestSuiteCleanOnRepo is the self-test the CI lint job depends on: the
// full analyzer suite over the real module must report nothing.
func TestSuiteCleanOnRepo(t *testing.T) {
	u := universe(t)
	diags, err := lint.RunAnalyzers(u, u.Targets, lint.All)
	if err != nil {
		t.Fatal(err)
	}
	var active []lint.Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			active = append(active, d)
		}
	}
	if len(active) != 0 {
		t.Errorf("analyzer suite found %d unsuppressed findings on the repository:\n%s",
			len(active), diagLines(active))
	}
}

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != len(lint.All) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := lint.ByName("pairorder, genstamp")
	if err != nil || len(two) != 2 || two[0].Name != "pairorder" || two[1].Name != "genstamp" {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nope"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

// The fixture loader must reject fixtures that do not typecheck, so a
// broken fixture cannot silently pass as "no findings".
func TestCheckDirRejectsBrokenFixture(t *testing.T) {
	u := universe(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package fixture\n\nfunc f() int { return \"no\" }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := u.CheckDir(dir, "repro/internal/fixture"); err == nil {
		t.Fatal("CheckDir accepted a fixture with type errors")
	}
}

func diagLines(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
