package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// hotPathDirective marks a function whose loops are allocation-audited.
const hotPathDirective = "wfsimvet:hotpath"

// HotAlloc flags per-iteration allocations inside the loops of functions
// annotated //wfsimvet:hotpath — the per-pair scoring kernels in
// internal/measures, the refine loops in internal/search and
// internal/index, and internal/shard's scan kernels. The scan loops are
// O(n²) in corpus size; one fmt.Sprintf per pair is ~50M allocations at a
// 10k corpus, and the allocator (not the similarity math) becomes the
// profile.
//
// Inside a loop (any CFG cycle) of an annotated function, or of a closure
// nested in one, the analyzer rejects:
//
//   - fmt.Sprintf / Sprint / Sprintln / fmt.Errorf calls
//   - string concatenation with + unless constant-folded
//   - map and slice composite literals (struct literals and cap-guarded
//     make are fine: the former can stay on the stack, the latter is the
//     blessed way to pre-size)
//   - function-literal (closure) allocation
//
// Hoist the allocation above the loop, or justify the site with
// //wfsimvet:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: `flag per-iteration allocations in loops of //wfsimvet:hotpath functions

Inside the loops of an annotated hot function (and its nested closures), no
fmt.Sprintf-family call, non-constant string concatenation, map/slice
literal, or closure allocation is allowed; hoist it or justify the site.`,
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			// The declared body plus every closure nested in it: a hot
			// function's inner loops often live in a worker callback.
			checkHotBody(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkHotBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// isHotPath reports whether the declaration carries the hotpath directive in
// its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		if strings.TrimSpace(text) == hotPathDirective {
			return true
		}
	}
	return false
}

// checkHotBody builds the body's CFG and flags allocations in its loop
// blocks. Nested function literals are not descended into here — each gets
// its own checkHotBody call (a literal inside a loop is itself flagged as a
// per-iteration closure allocation).
func checkHotBody(pass *Pass, body *ast.BlockStmt) {
	cfg := BuildCFG(body)
	loops := cfg.LoopBlocks()
	for _, b := range cfg.Blocks {
		if !loops[b] {
			continue
		}
		for _, n := range b.Nodes {
			flagAllocs(pass, n)
		}
	}
}

// flagAllocs walks one loop-resident node for allocation sites.
func flagAllocs(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated per iteration in a //wfsimvet:hotpath loop; hoist the function literal above the loop")
			return false // its body is analyzed as its own hot body
		case *ast.CallExpr:
			if name, ok := sprintfFamily(pass, n); ok {
				pass.Reportf(n.Pos(), "fmt.%s allocates per iteration in a //wfsimvet:hotpath loop; hoist the formatting out of the loop", name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringConcat(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates per iteration in a //wfsimvet:hotpath loop; hoist it or use a preallocated buffer")
				return false // one finding per concatenation chain
			}
		case *ast.CompositeLit:
			if kind, ok := mapOrSliceLit(pass, n); ok {
				pass.Reportf(n.Pos(), "%s literal allocates per iteration in a //wfsimvet:hotpath loop; hoist the allocation or reuse a buffer", kind)
				return false
			}
		}
		return true
	})
}

// sprintfFamily matches the allocating fmt formatting entry points.
func sprintfFamily(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || usedPackage(pass, sel.X) != "fmt" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf":
		return sel.Sel.Name, true
	}
	return "", false
}

// isStringConcat reports whether the + expression is a string concatenation
// the compiler cannot constant-fold.
func isStringConcat(pass *Pass, be *ast.BinaryExpr) bool {
	tv, ok := pass.Info.Types[be]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	// Constant-folded concatenations ("a" + "b") cost nothing at run time.
	return tv.Value == nil || tv.Value.Kind() != constant.String
}

// mapOrSliceLit reports whether the composite literal allocates a map or
// slice (struct and array literals can live on the stack).
func mapOrSliceLit(pass *Pass, cl *ast.CompositeLit) (string, bool) {
	tv, ok := pass.Info.Types[cl]
	if !ok {
		return "", false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		return "map", true
	case *types.Slice:
		return "slice", true
	}
	return "", false
}
