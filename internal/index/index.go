// Package index accelerates similarity search over large repositories with a
// filter-and-refine strategy: an inverted index over canonicalized module
// labels generates candidate workflows sharing vocabulary with the query,
// and only candidates are scored exactly. The paper's conclusion calls for
// "topological information with less computational complexity"; candidate
// pruning is the standard systems answer for the module-set side.
//
// The filter is lossless for strict label matching (plm: workflows sharing
// no canonical label have similarity 0) and a high-recall heuristic for
// edit-distance schemes (two workflows can have nonzero label edit
// similarity without sharing a token). Search reports how many repository
// workflows were pruned so callers can trade recall for speed consciously.
package index

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/measures"
	"repro/internal/repoknow"
	"repro/internal/search"
	"repro/internal/workflow"
)

// Index is an inverted index from canonical module labels to workflows.
type Index struct {
	repo    *corpus.Repository
	posting map[string][]int // canonical label -> workflow positions
	labels  [][]string       // workflow position -> its canonical labels

	// Parallelism bounds the workers of the refine stage (0 = GOMAXPROCS).
	Parallelism int
}

// Build scans the repository once and indexes every workflow under the
// canonical forms of its module labels (see repoknow.CanonicalLabel).
func Build(repo *corpus.Repository) *Index {
	idx := &Index{
		repo:    repo,
		posting: map[string][]int{},
		labels:  make([][]string, repo.Size()),
	}
	for pos, wf := range repo.Workflows() {
		seen := map[string]bool{}
		for _, m := range wf.Modules {
			key := repoknow.CanonicalLabel(m.Label)
			if key == "" || seen[key] {
				continue
			}
			seen[key] = true
			idx.posting[key] = append(idx.posting[key], pos)
			idx.labels[pos] = append(idx.labels[pos], key)
		}
	}
	return idx
}

// Vocabulary returns the number of distinct canonical labels indexed.
func (idx *Index) Vocabulary() int { return len(idx.posting) }

// Candidates returns the positions of workflows sharing at least minShared
// canonical labels with the query, sorted by descending overlap count.
// minShared < 1 is treated as 1.
func (idx *Index) Candidates(query *workflow.Workflow, minShared int) []int {
	if minShared < 1 {
		minShared = 1
	}
	counts := map[int]int{}
	seen := map[string]bool{}
	for _, m := range query.Modules {
		key := repoknow.CanonicalLabel(m.Label)
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		for _, pos := range idx.posting[key] {
			counts[pos]++
		}
	}
	out := make([]int, 0, len(counts))
	for pos, c := range counts {
		if c >= minShared {
			out = append(out, pos)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// SearchResult is an accelerated top-k result with pruning statistics.
type SearchResult struct {
	Results []search.Result
	// CandidateCount is the number of workflows scored exactly.
	CandidateCount int
	// Pruned is the number of repository workflows never scored.
	Pruned int
	// Skipped counts candidates the measure failed on.
	Skipped int
}

// TopK runs filter-and-refine top-k search: candidates sharing at least
// minShared canonical labels with the query are scored with m in parallel;
// the k best are returned. The query itself is excluded. A cancelled or
// expired context aborts the refine stage with the context's error.
func (idx *Index) TopK(ctx context.Context, query *workflow.Workflow, m measures.Measure, k, minShared int) (SearchResult, error) {
	if k <= 0 {
		k = 10
	}
	cands := idx.Candidates(query, minShared)
	wfs := idx.repo.Workflows()
	var out SearchResult
	out.CandidateCount = len(cands)
	out.Pruned = idx.repo.Size() - len(cands)

	type scored struct {
		res  search.Result
		ok   bool
		self bool
	}
	buf := make([]scored, len(cands))
	var skipped atomic.Int64
	err := search.Batched(ctx, len(cands), idx.Parallelism, 0, func(i int) error {
		wf := wfs[cands[i]]
		if wf.ID == query.ID {
			buf[i] = scored{self: true}
			return nil
		}
		s, err := m.Compare(query, wf)
		if err != nil {
			skipped.Add(1)
			return nil
		}
		buf[i] = scored{res: search.Result{ID: wf.ID, Similarity: s}, ok: true}
		return nil
	})
	if err != nil {
		return SearchResult{}, err
	}
	out.Skipped = int(skipped.Load())
	results := make([]search.Result, 0, len(cands))
	for _, s := range buf {
		if s.self {
			out.CandidateCount--
			continue
		}
		if s.ok {
			results = append(results, s.res)
		}
	}
	search.SortResults(results)
	if len(results) > k {
		results = results[:k]
	}
	out.Results = results
	return out, nil
}

// RecallAgainst measures the top-k recall of the accelerated search against
// an exact scan with the same measure: the fraction of the exact top-k found
// in the accelerated top-k. It quantifies the filter's (heuristic) loss for
// edit-distance schemes.
func (idx *Index) RecallAgainst(ctx context.Context, query *workflow.Workflow, m measures.Measure, k, minShared int) (float64, error) {
	exact, _, err := search.TopK(ctx, query, idx.repo, m, search.Options{K: k, Parallelism: idx.Parallelism})
	if err != nil {
		return 0, err
	}
	if len(exact) == 0 {
		return 1, nil
	}
	fast, err := idx.TopK(ctx, query, m, k, minShared)
	if err != nil {
		return 0, err
	}
	got := map[string]bool{}
	for _, r := range fast.Results {
		got[r.ID] = true
	}
	hit := 0
	for _, r := range exact {
		if got[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact)), nil
}
