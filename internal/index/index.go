// Package index accelerates similarity search over large repositories with a
// filter-and-refine strategy: an inverted index over canonicalized module
// labels generates candidate workflows sharing vocabulary with the query,
// and only candidates are scored exactly. The paper's conclusion calls for
// "topological information with less computational complexity"; candidate
// pruning is the standard systems answer for the module-set side.
//
// The filter is lossless for strict label matching (plm: workflows sharing
// no canonical label have similarity 0) and a high-recall heuristic for
// edit-distance schemes (two workflows can have nonzero label edit
// similarity without sharing a token). Search reports how many repository
// workflows were pruned so callers can trade recall for speed consciously.
//
// The index is incrementally maintainable: Insert and Delete update the
// postings and per-workflow label lists in O(labels of the workflow) instead
// of rescanning the corpus, so a mutable repository never pays a full Build
// on churn. Deletions tombstone their posting positions and a periodic
// compaction sweeps dead entries once they outnumber a quarter of the index;
// compaction reuses the stored canonical label lists, so even it never
// re-canonicalizes a module label. All methods are safe for concurrent use:
// mutations take a write lock, and searches capture a consistent candidate
// set under a read lock before scoring outside any lock.
package index

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/measures"
	"repro/internal/search"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

// Source is any provider of workflows to index — a corpus.Repository, a
// pinned corpus.Snapshot, or a test fixture.
type Source interface {
	Workflows() []*workflow.Workflow
}

// entry is one indexed workflow slot. Deleted entries stay in place as
// tombstones (dead = true) until compaction renumbers the positions.
// Labels are stored as canonical-label symbol IDs in the index's table.
type entry struct {
	wf     *workflow.Workflow
	labels []uint32
	dead   bool
}

// Index is an inverted index from canonical module labels — represented
// as interned symbol IDs — to workflows.
type Index struct {
	mu          sync.RWMutex
	syms        *symtab.Table    // symbol space of the posting keys
	posting     map[uint32][]int // canonical label symbol -> entry positions
	entries     []entry          // position -> indexed workflow
	byID        map[string]int   // live workflow ID -> position
	dead        int              // tombstoned entries awaiting compaction
	gen         uint64           // repository generation this index reflects
	compactions int

	// Parallelism bounds the workers of the refine stage (0 = GOMAXPROCS).
	Parallelism int
}

// compactionThreshold: compact once tombstones are at least a quarter of all
// entries (and more than a handful, so tiny indexes don't churn).
const compactionMinDead = 32

// New returns an empty index ready for incremental Insert calls.
func New() *Index {
	return &Index{
		posting: map[uint32][]int{},
		byID:    map[string]int{},
	}
}

// Build scans the source once and indexes every workflow under the
// canonical forms of its module labels (see repoknow.CanonicalLabel).
func Build(src Source) *Index {
	idx := New()
	idx.mu.Lock()
	defer idx.mu.Unlock()
	for _, wf := range src.Workflows() {
		idx.insertLocked(wf)
	}
	return idx
}

// labelIDsLocked returns the deduplicated canonical-label symbol IDs of a
// workflow in the index's symbol space. A workflow resolved by the same
// table contributes its cached sorted label set with no canonicalization
// at all; anything else (unresolved, or resolved by a foreign table) is
// canonicalized and interned here. The first insert fixes the index's
// table — adopting the repository's shared table when available — so one
// index always speaks one ID space.
func (idx *Index) labelIDsLocked(wf *workflow.Workflow) []uint32 {
	if t := wf.SymtabRef(); t != nil && (idx.syms == nil || idx.syms == t) {
		idx.syms = t
		return wf.LabelSet()
	}
	if idx.syms == nil {
		idx.syms = symtab.New()
	}
	seen := map[uint32]bool{}
	var out []uint32
	for _, m := range wf.Modules {
		key := workflow.CanonicalLabel(m.Label)
		if key == "" {
			continue
		}
		id := idx.syms.Intern(key)
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

func (idx *Index) insertLocked(wf *workflow.Workflow) {
	pos := len(idx.entries)
	labels := idx.labelIDsLocked(wf)
	idx.entries = append(idx.entries, entry{wf: wf, labels: labels})
	idx.byID[wf.ID] = pos
	for _, key := range labels {
		idx.posting[key] = append(idx.posting[key], pos)
	}
}

// Insert indexes one workflow in O(its labels). The ID must not already be
// indexed (Replace handles updates).
func (idx *Index) Insert(wf *workflow.Workflow) error {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return idx.insertChecked(wf)
}

func (idx *Index) insertChecked(wf *workflow.Workflow) error {
	if wf == nil || wf.ID == "" {
		return fmt.Errorf("index: workflow without ID")
	}
	if _, dup := idx.byID[wf.ID]; dup {
		return fmt.Errorf("index: workflow %q already indexed", wf.ID)
	}
	idx.insertLocked(wf)
	return nil
}

// Delete tombstones the workflow with the given ID in O(1); its posting
// positions are swept by a later compaction. It reports whether the ID was
// indexed.
func (idx *Index) Delete(id string) bool {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	ok := idx.deleteLocked(id)
	idx.maybeCompactLocked()
	return ok
}

func (idx *Index) deleteLocked(id string) bool {
	pos, ok := idx.byID[id]
	if !ok {
		return false
	}
	idx.entries[pos].dead = true
	idx.entries[pos].wf = nil
	delete(idx.byID, id)
	idx.dead++
	return true
}

// Apply maintains the index for a validated corpus mutation batch under one
// write lock, stamping gen — the repository generation the batch committed —
// in the same critical section, so concurrent searches observe either none
// or all of the batch and the generation check can never pass against a
// half-stamped index. Ops are assumed pre-validated by
// corpus.Repository.ApplyBatch; an error here means the index has drifted
// from the repository and the caller should rebuild it (the generation is
// left unstamped in that case).
func (idx *Index) Apply(ops []corpus.Op, gen uint64) error {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	// Validation pass against a staged membership overlay, so a drifted
	// batch is rejected whole and never leaves the index half-applied.
	staged := map[string]bool{}
	present := func(id string) bool {
		if stagedState, ok := staged[id]; ok {
			return stagedState
		}
		_, ok := idx.byID[id]
		return ok
	}
	for _, op := range ops {
		switch op.Kind {
		case corpus.OpAdd:
			if op.Workflow == nil || op.Workflow.ID == "" {
				return fmt.Errorf("index: workflow without ID")
			}
			if present(op.Workflow.ID) {
				return fmt.Errorf("index: workflow %q already indexed", op.Workflow.ID)
			}
			staged[op.Workflow.ID] = true
		case corpus.OpRemove:
			if !present(op.ID) {
				return fmt.Errorf("index: workflow %q not indexed", op.ID)
			}
			staged[op.ID] = false
		case corpus.OpReplace:
			if op.Workflow == nil || op.Workflow.ID == "" {
				return fmt.Errorf("index: workflow without ID")
			}
			if !present(op.Workflow.ID) {
				return fmt.Errorf("index: workflow %q not indexed", op.Workflow.ID)
			}
		default:
			return fmt.Errorf("index: invalid op kind %d", op.Kind)
		}
	}
	for _, op := range ops {
		switch op.Kind {
		case corpus.OpAdd:
			idx.insertLocked(op.Workflow)
		case corpus.OpRemove:
			idx.deleteLocked(op.ID)
		case corpus.OpReplace:
			idx.deleteLocked(op.Workflow.ID)
			idx.insertLocked(op.Workflow)
		}
	}
	idx.maybeCompactLocked()
	idx.gen = gen
	return nil
}

// maybeCompactLocked sweeps tombstones once they pass the threshold.
func (idx *Index) maybeCompactLocked() {
	if idx.dead < compactionMinDead || idx.dead*4 < len(idx.entries) {
		return
	}
	idx.compactLocked()
}

// compactLocked renumbers live entries and rebuilds the postings from the
// stored canonical label lists — O(total live labels), no module rescans.
func (idx *Index) compactLocked() {
	live := make([]entry, 0, len(idx.entries)-idx.dead)
	idx.byID = make(map[string]int, len(idx.entries)-idx.dead)
	idx.posting = make(map[uint32][]int, len(idx.posting))
	for _, e := range idx.entries {
		if e.dead {
			continue
		}
		pos := len(live)
		live = append(live, e)
		idx.byID[e.wf.ID] = pos
		for _, key := range e.labels {
			idx.posting[key] = append(idx.posting[key], pos)
		}
	}
	idx.entries = live
	idx.dead = 0
	idx.compactions++
}

// SetGeneration records the repository generation the index now reflects.
func (idx *Index) SetGeneration(gen uint64) {
	idx.mu.Lock()
	idx.gen = gen
	idx.mu.Unlock()
}

// Generation returns the repository generation the index reflects.
func (idx *Index) Generation() uint64 {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.gen
}

// Stats describes the index's incremental-maintenance state.
type Stats struct {
	// Live is the number of searchable workflows.
	Live int
	// Dead is the number of tombstoned entries awaiting compaction.
	Dead int
	// Vocabulary is the number of distinct canonical labels indexed.
	Vocabulary int
	// Compactions counts tombstone sweeps since construction.
	Compactions int
	// Generation is the repository generation the index reflects.
	Generation uint64
}

// Stats returns the current maintenance statistics.
func (idx *Index) Stats() Stats {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return Stats{
		Live:        len(idx.entries) - idx.dead,
		Dead:        idx.dead,
		Vocabulary:  len(idx.posting),
		Compactions: idx.compactions,
		Generation:  idx.gen,
	}
}

// Vocabulary returns the number of distinct canonical labels indexed.
func (idx *Index) Vocabulary() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return len(idx.posting)
}

// Size returns the number of live (searchable) workflows.
func (idx *Index) Size() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return len(idx.entries) - idx.dead
}

// candidatesLocked computes candidate positions under the caller's read
// lock, skipping tombstones.
//
//wfsimvet:hotpath
func (idx *Index) candidatesLocked(query *workflow.Workflow, minShared int) []int {
	if minShared < 1 {
		minShared = 1
	}
	counts := map[int]int{}
	for _, key := range idx.queryLabelIDsLocked(query) {
		for _, pos := range idx.posting[key] {
			if idx.entries[pos].dead {
				continue
			}
			counts[pos]++
		}
	}
	out := make([]int, 0, len(counts))
	for pos, c := range counts {
		if c >= minShared {
			out = append(out, pos)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// queryLabelIDsLocked projects the query's deduplicated canonical labels
// into the index's symbol space without interning: a label the table has
// never seen cannot have postings, so it is skipped. A query resolved by
// the index's own table short-circuits to its cached sorted label set.
func (idx *Index) queryLabelIDsLocked(query *workflow.Workflow) []uint32 {
	if idx.syms == nil {
		return nil
	}
	if query.ResolvedBy(idx.syms) {
		return query.LabelSet()
	}
	seen := map[uint32]bool{}
	var out []uint32
	for _, m := range query.Modules {
		key := workflow.CanonicalLabel(m.Label)
		if key == "" {
			continue
		}
		id, ok := idx.syms.Lookup(key)
		if !ok || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// Candidates returns the positions of live workflows sharing at least
// minShared canonical labels with the query, sorted by descending overlap
// count. minShared < 1 is treated as 1. Positions are only stable until the
// next compaction; prefer TopK for scoring.
func (idx *Index) Candidates(query *workflow.Workflow, minShared int) []int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.candidatesLocked(query, minShared)
}

// WorkflowAt returns the live workflow at an index position, or nil.
func (idx *Index) WorkflowAt(pos int) *workflow.Workflow {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	if pos < 0 || pos >= len(idx.entries) || idx.entries[pos].dead {
		return nil
	}
	return idx.entries[pos].wf
}

// SearchResult is an accelerated top-k result with pruning statistics.
type SearchResult struct {
	Results []search.Result
	// CandidateCount is the number of workflows scored exactly.
	CandidateCount int
	// Pruned is the number of live indexed workflows never scored.
	Pruned int
	// Skipped counts candidates the measure failed on.
	Skipped int
}

// TopK runs filter-and-refine top-k search: candidates sharing at least
// minShared canonical labels with the query are scored with m in parallel;
// the k best are returned. The query itself is excluded. The candidate set
// is captured atomically under a read lock, so a search racing a mutation
// batch sees either the whole batch or none of it; scoring itself runs
// outside any lock. A cancelled or expired context aborts the refine stage
// with the context's error.
//
//wfsimvet:hotpath
func (idx *Index) TopK(ctx context.Context, query *workflow.Workflow, m measures.Measure, k, minShared int) (SearchResult, error) {
	if k <= 0 {
		k = 10
	}

	// Capture phase: candidate workflows and the live count, atomically.
	idx.mu.RLock()
	positions := idx.candidatesLocked(query, minShared)
	cands := make([]*workflow.Workflow, len(positions))
	for i, pos := range positions {
		cands[i] = idx.entries[pos].wf
	}
	live := len(idx.entries) - idx.dead
	par := idx.Parallelism
	idx.mu.RUnlock()

	var out SearchResult
	out.CandidateCount = len(cands)
	out.Pruned = live - len(cands)

	type scored struct {
		res  search.Result
		ok   bool
		self bool
	}
	buf := make([]scored, len(cands))
	var skipped atomic.Int64
	err := search.Batched(ctx, len(cands), par, 0, func(i int) error {
		wf := cands[i]
		if wf.ID == query.ID {
			buf[i] = scored{self: true}
			return nil
		}
		s, err := m.Compare(query, wf)
		if err != nil {
			skipped.Add(1)
			return nil
		}
		buf[i] = scored{res: search.Result{ID: wf.ID, Similarity: s}, ok: true}
		return nil
	})
	if err != nil {
		return SearchResult{}, err
	}
	out.Skipped = int(skipped.Load())
	results := make([]search.Result, 0, len(cands))
	for _, s := range buf {
		if s.self {
			out.CandidateCount--
			continue
		}
		if s.ok {
			results = append(results, s.res)
		}
	}
	search.SortResults(results)
	if len(results) > k {
		results = results[:k]
	}
	out.Results = results
	return out, nil
}

// liveCorpus adapts the index's current live workflows to search.Corpus.
type liveCorpus struct{ wfs []*workflow.Workflow }

func (c liveCorpus) Workflows() []*workflow.Workflow { return c.wfs }

// Live returns the currently searchable workflows in position order.
func (idx *Index) Live() []*workflow.Workflow {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	out := make([]*workflow.Workflow, 0, len(idx.entries)-idx.dead)
	for _, e := range idx.entries {
		if !e.dead {
			out = append(out, e.wf)
		}
	}
	return out
}

// RecallAgainst measures the top-k recall of the accelerated search against
// an exact scan over the index's live workflows with the same measure: the
// fraction of the exact top-k found in the accelerated top-k. It quantifies
// the filter's (heuristic) loss for edit-distance schemes.
func (idx *Index) RecallAgainst(ctx context.Context, query *workflow.Workflow, m measures.Measure, k, minShared int) (float64, error) {
	exact, _, err := search.TopK(ctx, query, liveCorpus{idx.Live()}, m, search.Options{K: k, Parallelism: idx.Parallelism})
	if err != nil {
		return 0, err
	}
	if len(exact) == 0 {
		return 1, nil
	}
	fast, err := idx.TopK(ctx, query, m, k, minShared)
	if err != nil {
		return 0, err
	}
	got := map[string]bool{}
	for _, r := range fast.Results {
		got[r.ID] = true
	}
	hit := 0
	for _, r := range exact {
		if got[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact)), nil
}
