package index

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/search"
	"repro/internal/workflow"
)

func testCorpus(t testing.TB) *gen.Corpus {
	t.Helper()
	p := gen.Taverna()
	p.Workflows = 200
	p.Clusters = 10
	c, err := gen.Generate(p, 31)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pllMS() measures.Measure {
	return measures.NewStructural(measures.Config{
		Topology: measures.ModuleSets, Scheme: module.PLL(), Normalize: true,
	})
}

func plmMS() measures.Measure {
	return measures.NewStructural(measures.Config{
		Topology: measures.ModuleSets, Scheme: module.PLM(), Normalize: true,
	})
}

func TestBuildIndexesAllWorkflows(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	if idx.Vocabulary() == 0 {
		t.Fatal("empty vocabulary")
	}
	for pos := range c.Repo.Workflows() {
		if len(idx.entries[pos].labels) == 0 {
			t.Fatalf("workflow at %d has no indexed labels", pos)
		}
	}
	if idx.Size() != c.Repo.Size() {
		t.Errorf("index size %d vs repo size %d", idx.Size(), c.Repo.Size())
	}
}

func TestCandidatesShareLabels(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	query := c.Repo.Workflows()[0]
	cands := idx.Candidates(query, 1)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// Every candidate shares at least one canonical label by construction;
	// spot check the top candidate overlaps heavily.
	if len(cands) == c.Repo.Size() {
		t.Log("warning: no pruning on this corpus (labels too shared)")
	}
	// With a high minShared the candidate set shrinks monotonically.
	strict := idx.Candidates(query, 4)
	if len(strict) > len(cands) {
		t.Errorf("minShared=4 yields more candidates (%d) than minShared=1 (%d)", len(strict), len(cands))
	}
}

func TestTopKExcludesQueryAndSorts(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	query := c.Repo.Workflows()[0]
	res, err := idx.TopK(context.Background(), query, pllMS(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 10 {
		t.Fatalf("results = %d", len(res.Results))
	}
	for i, r := range res.Results {
		if r.ID == query.ID {
			t.Error("query in results")
		}
		if i > 0 && r.Similarity > res.Results[i-1].Similarity {
			t.Error("not sorted")
		}
	}
	if res.CandidateCount+res.Pruned != c.Repo.Size() && res.CandidateCount+res.Pruned != c.Repo.Size()-1 {
		t.Errorf("accounting: %d candidates + %d pruned vs %d total",
			res.CandidateCount, res.Pruned, c.Repo.Size())
	}
}

func TestLosslessForStrictLabelMatching(t *testing.T) {
	// For plm (strict label matching on the canonical... actually raw
	// labels), workflows sharing no canonical label score 0 under MS: the
	// filter at minShared=1 must reproduce the exact top-k whenever the
	// exact top-k has positive scores.
	c := testCorpus(t)
	idx := Build(c.Repo)
	m := plmMS()
	for _, query := range c.Repo.Workflows()[:10] {
		exact, _, _ := search.TopK(context.Background(), query, c.Repo, m, search.Options{K: 5})
		fast, err := idx.TopK(context.Background(), query, m, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, er := range exact {
			if er.Similarity <= 0 {
				break // zero-score tail may differ arbitrarily
			}
			if i >= len(fast.Results) {
				t.Fatalf("query %s: accelerated list too short", query.ID)
			}
			if fast.Results[i].Similarity < er.Similarity-1e-9 {
				t.Errorf("query %s rank %d: fast %.4f < exact %.4f",
					query.ID, i, fast.Results[i].Similarity, er.Similarity)
			}
		}
	}
}

func TestRecallHighForEditDistance(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	m := pllMS()
	var total float64
	queries := c.Repo.Workflows()[:8]
	for _, q := range queries {
		r, err := idx.RecallAgainst(context.Background(), q, m, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		total += r
	}
	mean := total / float64(len(queries))
	if mean < 0.9 {
		t.Errorf("mean top-10 recall = %.2f, want >= 0.9", mean)
	}
}

func TestPruningActuallyHappens(t *testing.T) {
	// Two disjoint vocabularies: query from one must prune the other.
	w1 := workflow.New("a")
	w1.AddModule(&workflow.Module{Label: "alpha_one", Type: workflow.TypeWSDL})
	w2 := workflow.New("b")
	w2.AddModule(&workflow.Module{Label: "alpha_one_v2", Type: workflow.TypeWSDL})
	w3 := workflow.New("c")
	w3.AddModule(&workflow.Module{Label: "totally_different", Type: workflow.TypeWSDL})
	repo, err := corpus.NewRepository(w1, w2, w3)
	if err != nil {
		t.Fatal(err)
	}
	idx := Build(repo)
	res, err := idx.TopK(context.Background(), w1, pllMS(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned < 1 {
		t.Errorf("expected pruning, got %d", res.Pruned)
	}
	// Canonicalization strips the _v2-style digits... "alpha_one_v2" ->
	// "alphaonev": shares no key with "alphaone"; so only exact-canonical
	// matches are candidates.
	for _, r := range res.Results {
		if r.ID == "c" {
			t.Error("disjoint workflow not pruned")
		}
	}
}

func BenchmarkIndexedVsExactSearch(b *testing.B) {
	c := testCorpus(b)
	idx := Build(c.Repo)
	query := c.Repo.Workflows()[0]
	m := pllMS()
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.TopK(context.Background(), query, m, 10, 1)
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			search.TopK(context.Background(), query, c.Repo, m, search.Options{K: 10, Parallelism: 1})
		}
	})
}

func TestTopKCancelledContext(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.TopK(ctx, c.Repo.Workflows()[0], pllMS(), 10, 1); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// sameTopK asserts two indexes answer a query identically.
func sameTopK(t *testing.T, a, b *Index, query *workflow.Workflow) {
	t.Helper()
	ra, err := a.TopK(context.Background(), query, plmMS(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.TopK(context.Background(), query, plmMS(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Results) != len(rb.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(ra.Results), len(rb.Results))
	}
	for i := range ra.Results {
		if ra.Results[i] != rb.Results[i] {
			t.Fatalf("rank %d differs: %+v vs %+v", i, ra.Results[i], rb.Results[i])
		}
	}
	if ra.CandidateCount != rb.CandidateCount || ra.Pruned != rb.Pruned {
		t.Fatalf("stats differ: %d/%d vs %d/%d", ra.CandidateCount, ra.Pruned, rb.CandidateCount, rb.Pruned)
	}
}

// TestIncrementalMatchesFullBuild grows an index one Insert at a time and
// checks it answers exactly like a from-scratch Build at every tenth step,
// then deletes half the corpus and checks again against a Build over the
// survivors.
func TestIncrementalMatchesFullBuild(t *testing.T) {
	c := testCorpus(t)
	wfs := c.Repo.Workflows()[:60]
	query := wfs[0]

	inc := New()
	for i, wf := range wfs {
		if err := inc.Insert(wf); err != nil {
			t.Fatal(err)
		}
		if (i+1)%20 == 0 {
			ref, _ := corpus.NewRepository(wfs[:i+1]...)
			sameTopK(t, inc, Build(ref), query)
		}
	}
	if err := inc.Insert(wfs[3]); err == nil {
		t.Error("duplicate insert accepted")
	}

	// Delete every other workflow (keeping the query) and compare against a
	// fresh build over the survivors.
	var kept []*workflow.Workflow
	for i, wf := range wfs {
		if i != 0 && i%2 == 1 {
			if !inc.Delete(wf.ID) {
				t.Fatalf("delete %q failed", wf.ID)
			}
		} else {
			kept = append(kept, wf)
		}
	}
	if inc.Delete("no-such-id") {
		t.Error("deleting unknown ID reported true")
	}
	ref, _ := corpus.NewRepository(kept...)
	sameTopK(t, inc, Build(ref), query)
}

// extraTwin builds a one-module workflow for drift probes.
func extraTwin(id string) *workflow.Workflow {
	w := workflow.New(id)
	w.AddModule(&workflow.Module{Label: "drift_probe_label", Type: workflow.TypeWSDL})
	return w
}

// TestApplyBatchAndReplace routes a corpus-style batch through Apply and
// checks equivalence with a full rebuild of the mutated repository.
func TestApplyBatchAndReplace(t *testing.T) {
	c := testCorpus(t)
	wfs := c.Repo.Workflows()[:40]
	repo, _ := corpus.NewRepository(wfs...)
	idx := Build(repo)

	repl := workflow.New(wfs[5].ID)
	repl.AddModule(&workflow.Module{Label: "completely_fresh_label", Type: workflow.TypeWSDL})
	extra := workflow.New("batch-new")
	extra.AddModule(&workflow.Module{Label: "another_fresh_label", Type: workflow.TypeWSDL})
	ops := []corpus.Op{
		{Kind: corpus.OpAdd, Workflow: extra},
		{Kind: corpus.OpRemove, ID: wfs[7].ID},
		{Kind: corpus.OpReplace, Workflow: repl},
	}
	if _, err := repo.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := idx.Apply(ops, repo.Generation()); err != nil {
		t.Fatal(err)
	}
	if idx.Generation() != repo.Generation() {
		t.Errorf("Apply did not stamp the generation: %d vs %d", idx.Generation(), repo.Generation())
	}
	sameTopK(t, idx, Build(repo), wfs[0])
	if got := idx.WorkflowAt(idx.Candidates(repl, 1)[0]); got == nil {
		t.Error("replaced workflow not findable via candidates")
	}
	genBefore := idx.Generation()
	liveBefore := idx.Stats().Live
	if err := idx.Apply([]corpus.Op{
		{Kind: corpus.OpAdd, Workflow: extraTwin("drift-probe")},
		{Kind: corpus.OpRemove, ID: "never-there"},
	}, genBefore+1); err == nil {
		t.Error("drifted Apply accepted")
	}
	// A rejected batch must leave the index untouched and unstamped.
	if idx.Generation() != genBefore {
		t.Errorf("failed Apply stamped generation %d", idx.Generation())
	}
	if idx.Stats().Live != liveBefore {
		t.Errorf("failed Apply half-applied: live %d -> %d", liveBefore, idx.Stats().Live)
	}
}

// TestCompactionSweepsTombstones deletes most of the index and verifies the
// tombstones are swept and searches stay correct.
func TestCompactionSweepsTombstones(t *testing.T) {
	c := testCorpus(t)
	wfs := c.Repo.Workflows()
	idx := Build(c.Repo)
	for _, wf := range wfs[100:] {
		idx.Delete(wf.ID)
	}
	st := idx.Stats()
	if st.Compactions == 0 {
		t.Errorf("no compaction after %d deletes (dead=%d)", len(wfs)-100, st.Dead)
	}
	if st.Live != 100 {
		t.Errorf("live = %d, want 100", st.Live)
	}
	if st.Dead >= compactionMinDead && st.Dead*4 >= st.Live+st.Dead {
		t.Errorf("tombstones not swept: %+v", st)
	}
	ref, _ := corpus.NewRepository(wfs[:100]...)
	sameTopK(t, idx, Build(ref), wfs[0])
}

// TestConcurrentSearchAndMutate hammers TopK while a writer churns the
// index; run with -race this is the index's torn-read detector.
func TestConcurrentSearchAndMutate(t *testing.T) {
	c := testCorpus(t)
	wfs := c.Repo.Workflows()
	idx := Build(c.Repo)
	query := wfs[0]
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 5; round++ {
			for _, wf := range wfs[150:] {
				idx.Delete(wf.ID)
			}
			for _, wf := range wfs[150:] {
				if err := idx.Insert(wf); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; ; i++ {
		select {
		case <-done:
			// One final search against the settled index.
			res, err := idx.TopK(context.Background(), query, plmMS(), 10, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Results) == 0 {
				t.Fatal("no results after churn")
			}
			return
		default:
			if _, err := idx.TopK(context.Background(), query, plmMS(), 5, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
}
