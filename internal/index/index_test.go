package index

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/gen"
	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/search"
	"repro/internal/workflow"
)

func testCorpus(t testing.TB) *gen.Corpus {
	t.Helper()
	p := gen.Taverna()
	p.Workflows = 200
	p.Clusters = 10
	c, err := gen.Generate(p, 31)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pllMS() measures.Measure {
	return measures.NewStructural(measures.Config{
		Topology: measures.ModuleSets, Scheme: module.PLL(), Normalize: true,
	})
}

func plmMS() measures.Measure {
	return measures.NewStructural(measures.Config{
		Topology: measures.ModuleSets, Scheme: module.PLM(), Normalize: true,
	})
}

func TestBuildIndexesAllWorkflows(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	if idx.Vocabulary() == 0 {
		t.Fatal("empty vocabulary")
	}
	for pos := range c.Repo.Workflows() {
		if len(idx.labels[pos]) == 0 {
			t.Fatalf("workflow at %d has no indexed labels", pos)
		}
	}
}

func TestCandidatesShareLabels(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	query := c.Repo.Workflows()[0]
	cands := idx.Candidates(query, 1)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// Every candidate shares at least one canonical label by construction;
	// spot check the top candidate overlaps heavily.
	if len(cands) == c.Repo.Size() {
		t.Log("warning: no pruning on this corpus (labels too shared)")
	}
	// With a high minShared the candidate set shrinks monotonically.
	strict := idx.Candidates(query, 4)
	if len(strict) > len(cands) {
		t.Errorf("minShared=4 yields more candidates (%d) than minShared=1 (%d)", len(strict), len(cands))
	}
}

func TestTopKExcludesQueryAndSorts(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	query := c.Repo.Workflows()[0]
	res, err := idx.TopK(context.Background(), query, pllMS(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 10 {
		t.Fatalf("results = %d", len(res.Results))
	}
	for i, r := range res.Results {
		if r.ID == query.ID {
			t.Error("query in results")
		}
		if i > 0 && r.Similarity > res.Results[i-1].Similarity {
			t.Error("not sorted")
		}
	}
	if res.CandidateCount+res.Pruned != c.Repo.Size() && res.CandidateCount+res.Pruned != c.Repo.Size()-1 {
		t.Errorf("accounting: %d candidates + %d pruned vs %d total",
			res.CandidateCount, res.Pruned, c.Repo.Size())
	}
}

func TestLosslessForStrictLabelMatching(t *testing.T) {
	// For plm (strict label matching on the canonical... actually raw
	// labels), workflows sharing no canonical label score 0 under MS: the
	// filter at minShared=1 must reproduce the exact top-k whenever the
	// exact top-k has positive scores.
	c := testCorpus(t)
	idx := Build(c.Repo)
	m := plmMS()
	for _, query := range c.Repo.Workflows()[:10] {
		exact, _, _ := search.TopK(context.Background(), query, c.Repo, m, search.Options{K: 5})
		fast, err := idx.TopK(context.Background(), query, m, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, er := range exact {
			if er.Similarity <= 0 {
				break // zero-score tail may differ arbitrarily
			}
			if i >= len(fast.Results) {
				t.Fatalf("query %s: accelerated list too short", query.ID)
			}
			if fast.Results[i].Similarity < er.Similarity-1e-9 {
				t.Errorf("query %s rank %d: fast %.4f < exact %.4f",
					query.ID, i, fast.Results[i].Similarity, er.Similarity)
			}
		}
	}
}

func TestRecallHighForEditDistance(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	m := pllMS()
	var total float64
	queries := c.Repo.Workflows()[:8]
	for _, q := range queries {
		r, err := idx.RecallAgainst(context.Background(), q, m, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		total += r
	}
	mean := total / float64(len(queries))
	if mean < 0.9 {
		t.Errorf("mean top-10 recall = %.2f, want >= 0.9", mean)
	}
}

func TestPruningActuallyHappens(t *testing.T) {
	// Two disjoint vocabularies: query from one must prune the other.
	w1 := workflow.New("a")
	w1.AddModule(&workflow.Module{Label: "alpha_one", Type: workflow.TypeWSDL})
	w2 := workflow.New("b")
	w2.AddModule(&workflow.Module{Label: "alpha_one_v2", Type: workflow.TypeWSDL})
	w3 := workflow.New("c")
	w3.AddModule(&workflow.Module{Label: "totally_different", Type: workflow.TypeWSDL})
	repo, err := corpus.NewRepository(w1, w2, w3)
	if err != nil {
		t.Fatal(err)
	}
	idx := Build(repo)
	res, err := idx.TopK(context.Background(), w1, pllMS(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned < 1 {
		t.Errorf("expected pruning, got %d", res.Pruned)
	}
	// Canonicalization strips the _v2-style digits... "alpha_one_v2" ->
	// "alphaonev": shares no key with "alphaone"; so only exact-canonical
	// matches are candidates.
	for _, r := range res.Results {
		if r.ID == "c" {
			t.Error("disjoint workflow not pruned")
		}
	}
}

func BenchmarkIndexedVsExactSearch(b *testing.B) {
	c := testCorpus(b)
	idx := Build(c.Repo)
	query := c.Repo.Workflows()[0]
	m := pllMS()
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.TopK(context.Background(), query, m, 10, 1)
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			search.TopK(context.Background(), query, c.Repo, m, search.Options{K: 10, Parallelism: 1})
		}
	})
}

func TestTopKCancelledContext(t *testing.T) {
	c := testCorpus(t)
	idx := Build(c.Repo)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.TopK(ctx, c.Repo.Workflows()[0], pllMS(), 10, 1); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
