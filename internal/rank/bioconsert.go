package rank

import (
	"math"
	"sort"
)

// BioConsert computes a consensus ranking for a set of (possibly incomplete)
// rankings with ties, after Cohen-Boulakia, Denise & Hamel (SSDBM 2011),
// extended — as in Section 4.2 of the paper — to incomplete rankings: an
// input ranking contributes distance only over the pairs of elements it
// ranks, so "unsure" ratings simply leave elements unranked.
//
// The algorithm is a local search for a median ranking under the generalized
// Kendall-tau distance with tie penalty 1/2: starting from each input
// ranking (completed with unranked elements in a trailing bucket), elements
// are repeatedly moved into other buckets or new singleton buckets whenever
// the move reduces the summed distance to all inputs; the best local optimum
// over all starts is returned.
func BioConsert(inputs []Ranking) Ranking {
	universe := unionItems(inputs)
	if len(universe) == 0 {
		return Ranking{}
	}
	idx := make(map[string]int, len(universe))
	for i, id := range universe {
		idx[id] = i
	}
	// Precompute, for every input ranking, the bucket position of each
	// element (-1 = unranked).
	pos := make([][]int, len(inputs))
	for k, r := range inputs {
		pos[k] = make([]int, len(universe))
		for i := range pos[k] {
			pos[k][i] = -1
		}
		for b, bucket := range r.Buckets {
			for _, id := range bucket {
				pos[k][idx[id]] = b
			}
		}
	}

	best := []int(nil)
	bestCost := math.Inf(1)
	for _, start := range startStates(inputs, universe, idx) {
		state := localSearch(start, pos, len(universe))
		c := totalCost(state, pos)
		if c < bestCost-1e-12 {
			bestCost = c
			best = state
		}
	}
	return stateToRanking(best, universe)
}

// unionItems returns the sorted union of items over all rankings.
func unionItems(inputs []Ranking) []string {
	set := map[string]bool{}
	for _, r := range inputs {
		for _, b := range r.Buckets {
			for _, id := range b {
				set[id] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// startStates builds one candidate start per input ranking: the ranking's
// own bucket assignment with unranked elements appended as a final bucket.
// A single all-tied state is added as a neutral start.
func startStates(inputs []Ranking, universe []string, idx map[string]int) [][]int {
	var starts [][]int
	for _, r := range inputs {
		state := make([]int, len(universe))
		for i := range state {
			state[i] = -1
		}
		for b, bucket := range r.Buckets {
			for _, id := range bucket {
				state[idx[id]] = b
			}
		}
		last := len(r.Buckets)
		for i := range state {
			if state[i] == -1 {
				state[i] = last
			}
		}
		starts = append(starts, normalize(state))
	}
	starts = append(starts, make([]int, len(universe))) // all tied
	return starts
}

// pairCost returns the generalized Kendall-tau contribution of the ordered
// element pair (i, j) between a consensus assignment (ci, cj) and an input
// ranking's positions (ri, rj), with unranked elements (position -1)
// contributing nothing and ties penalised by 1/2.
func pairCost(ci, cj, ri, rj int) float64 {
	if ri == -1 || rj == -1 {
		return 0
	}
	dc, dr := ci-cj, ri-rj
	switch {
	case dc == 0 && dr == 0:
		return 0
	case dc == 0 || dr == 0:
		return 0.5
	case (dc < 0) == (dr < 0):
		return 0
	default:
		return 1
	}
}

// totalCost sums the distance of the consensus state to all input rankings.
func totalCost(state []int, pos [][]int) float64 {
	n := len(state)
	var cost float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := range pos {
				cost += pairCost(state[i], state[j], pos[k][i], pos[k][j])
			}
		}
	}
	return cost
}

// moveDelta computes the cost change of moving element e from its current
// bucket to bucket nb (which may be a fresh bucket value not used by any
// other element).
func moveDelta(state []int, pos [][]int, e, nb int) float64 {
	old := state[e]
	if old == nb {
		return 0
	}
	var delta float64
	for j := range state {
		if j == e {
			continue
		}
		for k := range pos {
			delta += pairCost(nb, state[j], pos[k][e], pos[k][j]) -
				pairCost(old, state[j], pos[k][e], pos[k][j])
		}
	}
	return delta
}

// localSearch applies best-improvement moves until a local optimum.
// Bucket values are kept sparse (normalised lazily); candidate targets are
// every existing bucket value plus "between" positions realised as fresh
// values via renormalisation.
func localSearch(start []int, pos [][]int, n int) []int {
	state := normalize(start)
	for iter := 0; iter < 1000; iter++ {
		improved := false
		// Candidate bucket values: existing buckets and new buckets between
		// them. After normalize, buckets are 0..m-1; we scale by 2 so odd
		// values denote fresh in-between (and boundary) buckets.
		scaled := make([]int, len(state))
		maxB := 0
		for i, b := range state {
			scaled[i] = 2*b + 1
			if scaled[i] > maxB {
				maxB = scaled[i]
			}
		}
		state = scaled
		for e := 0; e < n; e++ {
			bestDelta := -1e-9 // strict improvement required
			bestTarget := state[e]
			for nb := 0; nb <= maxB+1; nb++ {
				if nb == state[e] {
					continue
				}
				if d := moveDelta(state, pos, e, nb); d < bestDelta {
					bestDelta = d
					bestTarget = nb
				}
			}
			if bestTarget != state[e] {
				state[e] = bestTarget
				improved = true
			}
		}
		state = normalize(state)
		if !improved {
			break
		}
	}
	return state
}

// normalize renumbers bucket values to consecutive integers starting at 0,
// preserving order.
func normalize(state []int) []int {
	vals := map[int]bool{}
	for _, b := range state {
		vals[b] = true
	}
	sorted := make([]int, 0, len(vals))
	for v := range vals {
		sorted = append(sorted, v)
	}
	sort.Ints(sorted)
	remap := make(map[int]int, len(sorted))
	for i, v := range sorted {
		remap[v] = i
	}
	out := make([]int, len(state))
	for i, b := range state {
		out[i] = remap[b]
	}
	return out
}

func stateToRanking(state []int, universe []string) Ranking {
	if state == nil {
		return Ranking{}
	}
	maxB := 0
	for _, b := range state {
		if b > maxB {
			maxB = b
		}
	}
	buckets := make([][]string, maxB+1)
	for i, b := range state {
		buckets[b] = append(buckets[b], universe[i])
	}
	var r Ranking
	for _, b := range buckets {
		if len(b) > 0 {
			sort.Strings(b)
			r.Buckets = append(r.Buckets, b)
		}
	}
	return r
}

// ConsensusCost returns the summed generalized Kendall-tau distance from the
// consensus to the inputs — exposed for testing and for inter-annotator
// agreement reporting.
func ConsensusCost(consensus Ranking, inputs []Ranking) float64 {
	universe := unionItems(append([]Ranking{consensus}, inputs...))
	idx := make(map[string]int, len(universe))
	for i, id := range universe {
		idx[id] = i
	}
	state := make([]int, len(universe))
	for i := range state {
		state[i] = -1
	}
	for b, bucket := range consensus.Buckets {
		for _, id := range bucket {
			state[idx[id]] = b
		}
	}
	// Unranked-by-consensus elements go to a trailing bucket.
	last := len(consensus.Buckets)
	for i := range state {
		if state[i] == -1 {
			state[i] = last
		}
	}
	pos := make([][]int, len(inputs))
	for k, r := range inputs {
		pos[k] = make([]int, len(universe))
		for i := range pos[k] {
			pos[k][i] = -1
		}
		for b, bucket := range r.Buckets {
			for _, id := range bucket {
				pos[k][idx[id]] = b
			}
		}
	}
	return totalCost(state, pos)
}
