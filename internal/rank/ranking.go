// Package rank provides rankings with ties, the ranking correctness and
// completeness measures used to evaluate similarity algorithms against
// expert consensus (Cheng et al. 2010, as adopted in Section 4.3 of
// Starlinger et al., PVLDB 2014), and the BioConsert median-ranking
// consensus algorithm (Cohen-Boulakia et al. 2011) extended to incomplete
// rankings.
package rank

import (
	"fmt"
	"sort"
	"strings"
)

// Ranking is an ordered sequence of buckets. Items in earlier buckets rank
// higher (more similar); items within a bucket are tied. A Ranking may be
// incomplete: items absent from all buckets are unranked (e.g. rated
// "unsure" by an expert).
type Ranking struct {
	Buckets [][]string
}

// FromScores builds a ranking from similarity scores, higher scores first.
// Scores within eps of each other are placed in the same bucket (ties).
// A strictly positive eps models measures with coarse similarity output
// (label matching, tag overlap); eps 0 ties exactly equal scores only.
func FromScores(scores map[string]float64, eps float64) Ranking {
	type kv struct {
		id string
		s  float64
	}
	items := make([]kv, 0, len(scores))
	for id, s := range scores {
		items = append(items, kv{id, s})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].s != items[j].s {
			return items[i].s > items[j].s
		}
		return items[i].id < items[j].id
	})
	var r Ranking
	for i := 0; i < len(items); {
		j := i + 1
		for j < len(items) && items[i].s-items[j].s <= eps {
			j++
		}
		bucket := make([]string, 0, j-i)
		for k := i; k < j; k++ {
			bucket = append(bucket, items[k].id)
		}
		sort.Strings(bucket)
		r.Buckets = append(r.Buckets, bucket)
		i = j
	}
	return r
}

// Positions returns a map from item to bucket index. Unranked items are
// absent from the map.
func (r Ranking) Positions() map[string]int {
	pos := make(map[string]int)
	for b, bucket := range r.Buckets {
		for _, id := range bucket {
			pos[id] = b
		}
	}
	return pos
}

// Items returns all ranked items in rank order.
func (r Ranking) Items() []string {
	var out []string
	for _, b := range r.Buckets {
		out = append(out, b...)
	}
	return out
}

// Len returns the number of ranked items.
func (r Ranking) Len() int {
	n := 0
	for _, b := range r.Buckets {
		n += len(b)
	}
	return n
}

// String renders the ranking as "a > b = c > d".
func (r Ranking) String() string {
	parts := make([]string, len(r.Buckets))
	for i, b := range r.Buckets {
		parts[i] = strings.Join(b, " = ")
	}
	return strings.Join(parts, " > ")
}

// Validate reports an error if any item appears in more than one bucket.
func (r Ranking) Validate() error {
	seen := map[string]bool{}
	for _, b := range r.Buckets {
		for _, id := range b {
			if seen[id] {
				return fmt.Errorf("rank: item %q appears twice", id)
			}
			seen[id] = true
		}
	}
	return nil
}

// PairCounts tallies the pair classifications between a reference (expert)
// ranking and an evaluated (algorithmic) ranking, over items ranked by both.
type PairCounts struct {
	// Concordant pairs are strictly ordered the same way in both rankings.
	Concordant int
	// Discordant pairs are strictly ordered oppositely.
	Discordant int
	// RefOrdered is the number of pairs strictly ordered by the reference
	// (the completeness denominator).
	RefOrdered int
}

// CountPairs classifies every pair of items ranked by both rankings.
// Pairs tied in either ranking count neither as concordant nor discordant;
// pairs strictly ordered by the reference but tied by the evaluated ranking
// reduce completeness.
func CountPairs(ref, eval Ranking) PairCounts {
	refPos := ref.Positions()
	evalPos := eval.Positions()
	// Deterministic iteration: common items sorted.
	common := make([]string, 0, len(refPos))
	for id := range refPos {
		if _, ok := evalPos[id]; ok {
			common = append(common, id)
		}
	}
	sort.Strings(common)
	var pc PairCounts
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			a, b := common[i], common[j]
			dr := refPos[a] - refPos[b]
			de := evalPos[a] - evalPos[b]
			if dr == 0 {
				continue // tied by reference: not counted at all
			}
			pc.RefOrdered++
			if de == 0 {
				continue // tied by evaluated ranking: incompleteness
			}
			if (dr < 0) == (de < 0) {
				pc.Concordant++
			} else {
				pc.Discordant++
			}
		}
	}
	return pc
}

// Correctness computes (#concordant - #discordant)/(#concordant +
// #discordant) in [-1, 1]; 1 means full correlation with the reference,
// 0 no correlation. Pairs tied in either ranking do not count. If no pair
// qualifies, correctness is 0.
func Correctness(ref, eval Ranking) float64 {
	pc := CountPairs(ref, eval)
	den := pc.Concordant + pc.Discordant
	if den == 0 {
		return 0
	}
	return float64(pc.Concordant-pc.Discordant) / float64(den)
}

// Completeness computes (#concordant + #discordant) / #pairs strictly
// ordered by the reference, penalising the evaluated ranking for tying
// items the reference distinguishes. If the reference orders no pairs,
// completeness is 1 (nothing to distinguish).
func Completeness(ref, eval Ranking) float64 {
	pc := CountPairs(ref, eval)
	if pc.RefOrdered == 0 {
		return 1
	}
	return float64(pc.Concordant+pc.Discordant) / float64(pc.RefOrdered)
}
