package rank_test

import (
	"fmt"

	"repro/internal/rank"
)

// ExampleFromScores builds a ranking with ties from similarity scores.
func ExampleFromScores() {
	scores := map[string]float64{
		"wf1": 0.92,
		"wf2": 0.92,
		"wf3": 0.41,
	}
	r := rank.FromScores(scores, 0)
	fmt.Println(r)
	// Output: wf1 = wf2 > wf3
}

// ExampleBioConsert aggregates expert rankings — including incomplete ones —
// into a consensus.
func ExampleBioConsert() {
	expert1 := rank.Ranking{Buckets: [][]string{{"a"}, {"b"}, {"c"}}}
	expert2 := rank.Ranking{Buckets: [][]string{{"a"}, {"c"}, {"b"}}}
	expert3 := rank.Ranking{Buckets: [][]string{{"a"}, {"b"}}} // unsure about c
	consensus := rank.BioConsert([]rank.Ranking{expert1, expert2, expert3})
	fmt.Println(consensus)
	// Output: a > b > c
}

// ExampleCorrectness evaluates an algorithmic ranking against an expert
// consensus: tied pairs are excluded from correctness and penalised in
// completeness.
func ExampleCorrectness() {
	consensus := rank.Ranking{Buckets: [][]string{{"a"}, {"b"}, {"c"}}}
	algorithm := rank.Ranking{Buckets: [][]string{{"a"}, {"b", "c"}}}
	fmt.Printf("correctness %.2f completeness %.2f\n",
		rank.Correctness(consensus, algorithm),
		rank.Completeness(consensus, algorithm))
	// Output: correctness 1.00 completeness 0.67
}
