package rank

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFromScores(t *testing.T) {
	scores := map[string]float64{"a": 0.9, "b": 0.5, "c": 0.5, "d": 0.1}
	r := FromScores(scores, 0)
	want := [][]string{{"a"}, {"b", "c"}, {"d"}}
	if !reflect.DeepEqual(r.Buckets, want) {
		t.Errorf("Buckets = %v, want %v", r.Buckets, want)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
}

func TestFromScoresEps(t *testing.T) {
	scores := map[string]float64{"a": 0.91, "b": 0.90, "c": 0.1}
	if got := len(FromScores(scores, 0.05).Buckets); got != 2 {
		t.Errorf("eps-tied buckets = %d, want 2", got)
	}
	if got := len(FromScores(scores, 0).Buckets); got != 3 {
		t.Errorf("exact buckets = %d, want 3", got)
	}
}

func TestCorrectnessPerfectAndInverted(t *testing.T) {
	ref := Ranking{Buckets: [][]string{{"a"}, {"b"}, {"c"}}}
	if got := Correctness(ref, ref); got != 1 {
		t.Errorf("self correctness = %v, want 1", got)
	}
	inv := Ranking{Buckets: [][]string{{"c"}, {"b"}, {"a"}}}
	if got := Correctness(ref, inv); got != -1 {
		t.Errorf("inverted correctness = %v, want -1", got)
	}
	if got := Completeness(ref, ref); got != 1 {
		t.Errorf("self completeness = %v, want 1", got)
	}
}

func TestCorrectnessIgnoresTiedPairs(t *testing.T) {
	ref := Ranking{Buckets: [][]string{{"a"}, {"b"}, {"c"}}}
	// Algorithm ties b and c: pair (b,c) doesn't count for correctness,
	// pairs (a,b), (a,c) are concordant.
	algo := Ranking{Buckets: [][]string{{"a"}, {"b", "c"}}}
	if got := Correctness(ref, algo); got != 1 {
		t.Errorf("correctness = %v, want 1 (tied pair excluded)", got)
	}
	if got := Completeness(ref, algo); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("completeness = %v, want 2/3", got)
	}
}

func TestCorrectnessRefTiesDontCount(t *testing.T) {
	// Reference ties a,b; algorithm orders them: no penalty either way.
	ref := Ranking{Buckets: [][]string{{"a", "b"}, {"c"}}}
	algo := Ranking{Buckets: [][]string{{"a"}, {"b"}, {"c"}}}
	pc := CountPairs(ref, algo)
	if pc.RefOrdered != 2 { // (a,c) and (b,c)
		t.Errorf("RefOrdered = %d, want 2", pc.RefOrdered)
	}
	if got := Correctness(ref, algo); got != 1 {
		t.Errorf("correctness = %v, want 1", got)
	}
}

func TestIncompleteRankingsUseCommonItems(t *testing.T) {
	ref := Ranking{Buckets: [][]string{{"a"}, {"b"}, {"c"}, {"d"}}}
	algo := Ranking{Buckets: [][]string{{"b"}, {"a"}}} // only ranks a, b
	pc := CountPairs(ref, algo)
	if pc.Concordant != 0 || pc.Discordant != 1 {
		t.Errorf("pc = %+v, want 1 discordant pair", pc)
	}
	if got := Correctness(ref, algo); got != -1 {
		t.Errorf("correctness = %v, want -1", got)
	}
}

func TestCorrectnessNoQualifyingPairs(t *testing.T) {
	ref := Ranking{Buckets: [][]string{{"a", "b"}}}
	algo := Ranking{Buckets: [][]string{{"a"}, {"b"}}}
	if got := Correctness(ref, algo); got != 0 {
		t.Errorf("correctness = %v, want 0", got)
	}
	if got := Completeness(ref, algo); got != 1 {
		t.Errorf("completeness with no ref-ordered pairs = %v, want 1", got)
	}
}

func TestRankingString(t *testing.T) {
	r := Ranking{Buckets: [][]string{{"a"}, {"b", "c"}}}
	if got := r.String(); got != "a > b = c" {
		t.Errorf("String = %q", got)
	}
}

func TestValidateDuplicate(t *testing.T) {
	r := Ranking{Buckets: [][]string{{"a"}, {"a"}}}
	if err := r.Validate(); err == nil {
		t.Error("duplicate item accepted")
	}
}

func TestBioConsertUnanimous(t *testing.T) {
	r := Ranking{Buckets: [][]string{{"a"}, {"b"}, {"c"}}}
	consensus := BioConsert([]Ranking{r, r, r})
	if !reflect.DeepEqual(consensus.Buckets, r.Buckets) {
		t.Errorf("consensus = %v, want unanimous input %v", consensus.Buckets, r.Buckets)
	}
	if got := ConsensusCost(consensus, []Ranking{r, r, r}); got != 0 {
		t.Errorf("unanimous cost = %v, want 0", got)
	}
}

func TestBioConsertMajority(t *testing.T) {
	maj := Ranking{Buckets: [][]string{{"a"}, {"b"}, {"c"}}}
	minr := Ranking{Buckets: [][]string{{"c"}, {"b"}, {"a"}}}
	consensus := BioConsert([]Ranking{maj, maj, maj, minr})
	if !reflect.DeepEqual(consensus.Buckets, maj.Buckets) {
		t.Errorf("consensus = %v, want majority %v", consensus.Buckets, maj.Buckets)
	}
}

func TestBioConsertEmpty(t *testing.T) {
	if got := BioConsert(nil); got.Len() != 0 {
		t.Errorf("empty consensus = %v", got)
	}
}

func TestBioConsertIncomplete(t *testing.T) {
	// Two raters each rank a strict subset; consensus must cover the union
	// and respect both partial orders (they are compatible).
	r1 := Ranking{Buckets: [][]string{{"a"}, {"b"}}}
	r2 := Ranking{Buckets: [][]string{{"b"}, {"c"}}}
	consensus := BioConsert([]Ranking{r1, r2})
	if consensus.Len() != 3 {
		t.Fatalf("consensus items = %d, want 3 (%v)", consensus.Len(), consensus)
	}
	pos := consensus.Positions()
	if !(pos["a"] <= pos["b"] && pos["b"] <= pos["c"]) {
		t.Errorf("consensus %v violates compatible partial orders", consensus)
	}
	if pos["a"] == pos["c"] {
		t.Errorf("consensus %v should separate a and c", consensus)
	}
}

func TestBioConsertNotWorseThanAnyInput(t *testing.T) {
	// The consensus cost must not exceed the cost of adopting any single
	// input as consensus (inputs are among the start states).
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		inputs := randomRankings(r, 4, 6)
		consensus := BioConsert(inputs)
		cCost := ConsensusCost(consensus, inputs)
		for _, in := range inputs {
			if inCost := ConsensusCost(in, inputs); cCost > inCost+1e-9 {
				t.Fatalf("consensus cost %v exceeds input cost %v", cCost, inCost)
			}
		}
	}
}

func randomRankings(r *rand.Rand, k, n int) []Ranking {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = string(rune('a' + i))
	}
	out := make([]Ranking, k)
	for i := range out {
		perm := r.Perm(n)
		var rk Ranking
		var bucket []string
		for _, p := range perm {
			if r.Intn(4) == 0 { // skip: incomplete
				continue
			}
			bucket = append(bucket, ids[p])
			if r.Intn(2) == 0 {
				rk.Buckets = append(rk.Buckets, bucket)
				bucket = nil
			}
		}
		if len(bucket) > 0 {
			rk.Buckets = append(rk.Buckets, bucket)
		}
		out[i] = rk
	}
	return out
}

func TestPropertyCorrectnessBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rks := randomRankings(r, 2, 6)
		c := Correctness(rks[0], rks[1])
		comp := Completeness(rks[0], rks[1])
		return c >= -1 && c <= 1 && comp >= 0 && comp <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFromScoresValidAndComplete(t *testing.T) {
	f := func(raw []uint8) bool {
		scores := map[string]float64{}
		for i, v := range raw {
			if i >= 12 {
				break
			}
			scores[string(rune('a'+i))] = float64(v) / 255
		}
		r := FromScores(scores, 0)
		if err := r.Validate(); err != nil {
			return false
		}
		return r.Len() == len(scores)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBioConsertCoversUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inputs := randomRankings(r, 3, 5)
		consensus := BioConsert(inputs)
		if err := consensus.Validate(); err != nil {
			return false
		}
		union := map[string]bool{}
		for _, in := range inputs {
			for _, id := range in.Items() {
				union[id] = true
			}
		}
		return consensus.Len() == len(union)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBioConsert10Items5Raters(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	inputs := randomRankings(r, 5, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BioConsert(inputs)
	}
}

func BenchmarkCorrectness(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rks := randomRankings(r, 2, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Correctness(rks[0], rks[1])
	}
}
