package measures_test

import (
	"fmt"

	"repro/internal/measures"
	"repro/internal/module"
	"repro/internal/repoknow"
	"repro/internal/workflow"
)

func buildPair() (*workflow.Workflow, *workflow.Workflow) {
	a := workflow.New("1189")
	a.Annotations = workflow.Annotations{
		Title: "KEGG pathway analysis",
		Tags:  []string{"kegg", "pathway"},
	}
	g := a.AddModule(&workflow.Module{Label: "get_pathways_by_genes", Type: workflow.TypeWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_pathways_by_genes", Authority: "kegg"})
	s := a.AddModule(&workflow.Module{Label: "split_string", Type: workflow.TypeLocalWorker})
	r := a.AddModule(&workflow.Module{Label: "render_pathway", Type: workflow.TypeBeanshell, Script: "render(p)"})
	_ = a.AddEdge(g, s)
	_ = a.AddEdge(s, r)

	b := workflow.New("2805")
	b.Annotations = workflow.Annotations{
		Title: "Get Pathway-Genes by Entrez gene id",
		Tags:  []string{"kegg", "entrez"},
	}
	g2 := b.AddModule(&workflow.Module{Label: "getPathwaysByGenes", Type: workflow.TypeArbitraryWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_pathways_by_genes", Authority: "kegg"})
	r2 := b.AddModule(&workflow.Module{Label: "render_pathway_image", Type: workflow.TypeRShell, Script: "render(p)"})
	_ = b.AddEdge(g2, r2)
	return a, b
}

// ExampleStructural shows the paper's best structural configuration:
// Module Sets with importance projection, type equivalence and label edit
// distance (MS_ip_te_pll).
func ExampleStructural() {
	a, b := buildPair()
	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	m := measures.NewStructural(measures.Config{
		Topology:  measures.ModuleSets,
		Scheme:    module.PLL(),
		Preselect: module.TypeEquivalence,
		Project:   proj.Project,
		Normalize: true,
	})
	sim, err := m.Compare(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s = %.2f\n", m.Name(), sim)
	// Output: MS_ip_te_pll = 0.55
}

// ExampleBagOfWords compares workflows by their titles and descriptions.
func ExampleBagOfWords() {
	a, b := buildPair()
	sim, _ := measures.BagOfWords{}.Compare(a, b)
	fmt.Printf("BW = %.2f\n", sim)
	// Output: BW = 0.00
}

// ExampleBagOfTags compares workflows by their keyword tags.
func ExampleBagOfTags() {
	a, b := buildPair()
	sim, _ := measures.BagOfTags{}.Compare(a, b)
	fmt.Printf("BT = %.2f\n", sim)
	// Output: BT = 0.33
}

// ExampleNewEnsemble combines annotational and structural evidence by mean
// score, the paper's best-performing setup.
func ExampleNewEnsemble() {
	a, b := buildPair()
	ms := measures.NewStructural(measures.Config{
		Topology: measures.ModuleSets, Scheme: module.PLL(), Normalize: true,
	})
	ens := measures.NewEnsemble(measures.BagOfWords{}, ms)
	sim, _ := ens.Compare(a, b)
	fmt.Printf("%s = %.2f\n", ens.Name(), sim)
	// Output: ENS(BW+MS_np_ta_pll) = 0.20
}

// ExampleParse resolves measure names in the paper's notation.
func ExampleParse() {
	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	m, err := measures.Parse("MS_ip_te_pll", measures.ParseOptions{Project: proj.Project})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name())
	// Output: MS_ip_te_pll
}
