package measures

import (
	"strings"

	"repro/internal/textutil"
	"repro/internal/workflow"
)

// BagOfWords implements simBW (Section 2.2, after Costa et al.): workflows
// are compared by their titles and descriptions. Both are tokenized on
// whitespace and underscores, lowercased, cleansed of non-alphanumeric
// characters and filtered for stopwords; similarity is
// #matches / (#matches + #mismatches), the Jaccard index on token sets.
// Multiple occurrences of a token are deliberately not counted (the paper
// reports counted variants performed slightly worse).
type BagOfWords struct{}

// Name implements Measure.
func (BagOfWords) Name() string { return "BW" }

// Compare implements Measure.
func (BagOfWords) Compare(a, b *workflow.Workflow) (float64, error) {
	return textutil.SetJaccard(bwTokens(a), bwTokens(b)), nil
}

func bwTokens(w *workflow.Workflow) map[string]bool {
	return textutil.TokenSet(w.Annotations.Title + " " + w.Annotations.Description)
}

// HasWords reports whether the workflow carries any Bag of Words evidence.
func HasWords(w *workflow.Workflow) bool { return len(bwTokens(w)) > 0 }

// BagOfTags implements simBT (after Stoyanovich et al.): the keyword tags
// assigned in the repository are treated as a bag of tags and compared by
// the same match/mismatch quotient. Following the original approach, no
// stopword removal or other preprocessing is applied beyond trimming and
// case folding, reflecting the expectation that tags are deliberately chosen
// by the author.
type BagOfTags struct{}

// Name implements Measure.
func (BagOfTags) Name() string { return "BT" }

// Compare implements Measure. Workflows without tags (about 15% of the
// myExperiment corpus) match nothing: the similarity is 0. Callers that
// rank should exclude tagless query workflows, as the paper's evaluation
// does; see HasTags.
func (BagOfTags) Compare(a, b *workflow.Workflow) (float64, error) {
	return textutil.SetJaccard(tagSet(a), tagSet(b)), nil
}

func tagSet(w *workflow.Workflow) map[string]bool {
	set := make(map[string]bool, len(w.Annotations.Tags))
	for _, t := range w.Annotations.Tags {
		t = strings.ToLower(strings.TrimSpace(t))
		if t != "" {
			set[t] = true
		}
	}
	return set
}

// HasTags reports whether the workflow carries any tags. Queries without
// tags cannot be ranked by BT and are excluded from its evaluation.
func HasTags(w *workflow.Workflow) bool { return len(tagSet(w)) > 0 }
