package measures

import (
	"testing"
	"time"

	"repro/internal/repoknow"
)

func parseOpts() ParseOptions {
	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	return ParseOptions{Project: proj.Project, GEDDeadline: time.Second, GEDBeamWidth: 16}
}

func TestParseRoundTripsNames(t *testing.T) {
	names := []string{
		"BW", "BT",
		"MS_np_ta_pw0", "MS_ip_te_pll", "PS_np_ta_pw3", "PS_ip_te_pll",
		"GE_ip_te_pll", "GE_np_ta_pw0_nonorm", "MS_np_ta_pw0_greedy",
		"MS_np_tm_plm", "MS_np_ta_gw1", "MS_np_ta_gll",
	}
	for _, name := range names {
		m, err := Parse(name, parseOpts())
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		if m.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, m.Name())
		}
	}
}

func TestParseEnsemble(t *testing.T) {
	m, err := Parse("ENS(BW+MS_ip_te_pll)", parseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "ENS(BW+MS_ip_te_pll)" {
		t.Errorf("Name = %q", m.Name())
	}
	ens, ok := m.(*Ensemble)
	if !ok || len(ens.Members()) != 2 {
		t.Errorf("ensemble structure wrong: %T", m)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "XX", "MS", "MS_np", "MS_np_ta", "MS_np_ta_nope",
		"ZZ_np_ta_pll", "MS_xx_ta_pll", "MS_np_xx_pll",
		"MS_np_ta_pll_bogus", "ENS(BW)", "ENS(BW+",
	}
	for _, name := range bad {
		if _, err := Parse(name, parseOpts()); err == nil {
			t.Errorf("Parse(%q) should fail", name)
		}
	}
	// ip without a projector.
	if _, err := Parse("MS_ip_ta_pll", ParseOptions{}); err == nil {
		t.Error("ip without Project should fail")
	}
}

func TestParseAppliesGEDBudget(t *testing.T) {
	m, err := Parse("GE_np_ta_pll", parseOpts())
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m.(*Structural)
	if !ok {
		t.Fatalf("not structural: %T", m)
	}
	if st.Config().GEDDeadline != time.Second || st.Config().GEDBeamWidth != 16 {
		t.Errorf("GED budget not applied: %+v", st.Config())
	}
}
