package measures

import (
	"fmt"
	"strings"

	"repro/internal/workflow"
)

// Ensemble combines two or more measures by the mean of their scores
// (Section 5.1.6). The paper's best ensembles aggregate BW with MS or PS
// under ip, te and pll; the combination is both significantly and
// substantially better than any single algorithm, with lower variance.
//
// Member scores should be normalized to comparable ranges ([0,1]) for the
// mean to be meaningful.
type Ensemble struct {
	members []Measure
	weights []float64
}

// NewEnsemble builds an equally weighted ensemble.
func NewEnsemble(members ...Measure) *Ensemble {
	w := make([]float64, len(members))
	for i := range w {
		w[i] = 1
	}
	return &Ensemble{members: members, weights: w}
}

// NewWeightedEnsemble builds an ensemble with per-member weights.
// It panics if the slice lengths differ or no member is given, which is a
// programming error in experiment setup.
func NewWeightedEnsemble(members []Measure, weights []float64) *Ensemble {
	if len(members) == 0 || len(members) != len(weights) {
		panic("measures: ensemble members and weights must be non-empty and equal length")
	}
	return &Ensemble{members: members, weights: weights}
}

// Name implements Measure, e.g. "ENS(BW+MS_ip_te_pll)".
func (e *Ensemble) Name() string {
	parts := make([]string, len(e.members))
	for i, m := range e.members {
		parts[i] = m.Name()
	}
	return fmt.Sprintf("ENS(%s)", strings.Join(parts, "+"))
}

// Compare implements Measure: the weighted mean of member scores. If a
// member fails (e.g. a GED timeout), the error propagates so the caller can
// disregard the pair consistently across measures.
func (e *Ensemble) Compare(a, b *workflow.Workflow) (float64, error) {
	var sum, wsum float64
	for i, m := range e.members {
		s, err := m.Compare(a, b)
		if err != nil {
			return 0, err
		}
		sum += e.weights[i] * s
		wsum += e.weights[i]
	}
	if wsum == 0 {
		return 0, nil
	}
	return sum / wsum, nil
}

// Members returns the ensemble's member measures.
func (e *Ensemble) Members() []Measure { return e.members }
