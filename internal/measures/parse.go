package measures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/module"
)

// ParseOptions supplies the context a parsed measure needs: how to project
// workflows for ip configurations and the GED budget.
type ParseOptions struct {
	// Project realises the ip token. Required for ip configurations.
	Project Projector
	// GEDDeadline is the per-pair budget for GE measures (0 = unlimited).
	GEDDeadline time.Duration
	// GEDBeamWidth bounds the GE search (0 = exact).
	GEDBeamWidth int
}

// Parse resolves a measure name in the paper's notation (Table 2):
// "BW", "BT", or "{MS|PS|GE}_{np|ip}_{ta|tm|te}_{scheme}", with optional
// "_greedy" and "_nonorm" suffixes, e.g. "MS_ip_te_pll" or
// "GE_np_ta_pw0_nonorm". Ensembles are written "ENS(a+b)" with member names
// in the same notation.
func Parse(name string, opts ParseOptions) (Measure, error) {
	switch name {
	case "BW":
		return BagOfWords{}, nil
	case "BT":
		return BagOfTags{}, nil
	}
	if inner, ok := strings.CutPrefix(name, "ENS("); ok {
		inner, ok = strings.CutSuffix(inner, ")")
		if !ok {
			return nil, fmt.Errorf("measures: unterminated ensemble %q", name)
		}
		var members []Measure
		for _, part := range strings.Split(inner, "+") {
			m, err := Parse(strings.TrimSpace(part), opts)
			if err != nil {
				return nil, err
			}
			members = append(members, m)
		}
		if len(members) < 2 {
			return nil, fmt.Errorf("measures: ensemble %q needs >= 2 members", name)
		}
		return NewEnsemble(members...), nil
	}

	parts := strings.Split(name, "_")
	if len(parts) < 4 {
		return nil, fmt.Errorf("measures: %q is not BW, BT, ENS(...) or TOPO_{np|ip}_{ta|tm|te}_{scheme}[_greedy][_nonorm]", name)
	}
	cfg := Config{
		Normalize:    true,
		GEDDeadline:  opts.GEDDeadline,
		GEDBeamWidth: opts.GEDBeamWidth,
	}
	switch parts[0] {
	case "MS":
		cfg.Topology = ModuleSets
	case "PS":
		cfg.Topology = PathSets
	case "GE":
		cfg.Topology = GraphEdit
	default:
		return nil, fmt.Errorf("measures: unknown topology %q in %q", parts[0], name)
	}
	switch parts[1] {
	case "np":
	case "ip":
		if opts.Project == nil {
			return nil, fmt.Errorf("measures: %q needs ParseOptions.Project for ip", name)
		}
		cfg.Project = opts.Project
	default:
		return nil, fmt.Errorf("measures: unknown preprocessing %q in %q (want np or ip)", parts[1], name)
	}
	switch parts[2] {
	case "ta":
		cfg.Preselect = module.AllPairs
	case "tm":
		cfg.Preselect = module.TypeMatch
	case "te":
		cfg.Preselect = module.TypeEquivalence
	default:
		return nil, fmt.Errorf("measures: unknown preselection %q in %q (want ta, tm or te)", parts[2], name)
	}
	scheme, ok := module.SchemeByName(parts[3])
	if !ok {
		return nil, fmt.Errorf("measures: unknown scheme %q in %q", parts[3], name)
	}
	cfg.Scheme = scheme
	for _, suffix := range parts[4:] {
		switch suffix {
		case "greedy":
			cfg.Mapping = GreedyMapping
		case "nonorm":
			cfg.Normalize = false
		default:
			return nil, fmt.Errorf("measures: unknown suffix %q in %q", suffix, name)
		}
	}
	return NewStructural(cfg), nil
}
