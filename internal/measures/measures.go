// Package measures implements the workflow similarity measures of
// Starlinger et al. (PVLDB 2014) inside one uniform framework:
//
//   - structural measures — Module Sets (MS), Path Sets (PS) and Graph Edit
//     Distance (GE) — parameterised by a module-comparison scheme, a
//     module-pair preselection strategy, a module-mapping strategy, optional
//     importance-projection preprocessing and optional normalization;
//   - annotation measures — Bag of Words (BW) over titles and descriptions,
//     Bag of Tags (BT) over keyword tags;
//   - ensembles combining any set of measures by their mean score.
//
// Measure names follow the paper's notation, e.g. "MS_ip_te_pll" is Module
// Sets comparison with importance projection, type-equivalence preselection
// and label-edit-distance module similarity.
package measures

import (
	"sync/atomic"

	"repro/internal/workflow"
)

// Measure computes the similarity of two scientific workflows. Higher is
// more similar; normalized measures return values in [0,1].
type Measure interface {
	// Name returns the identifier in the paper's notation.
	Name() string
	// Compare computes the similarity of a and b. An error indicates the
	// pair could not be scored (e.g. a GED timeout); the caller decides
	// whether to disregard the pair, as the paper does.
	Compare(a, b *workflow.Workflow) (float64, error)
}

// PairCounter accumulates module-pair comparison statistics across many
// workflow comparisons. It backs the paper's runtime observation that type
// equivalence reduces pairwise module comparisons by a factor of ~2.3.
// It is safe for concurrent use.
type PairCounter struct {
	total    atomic.Int64
	compared atomic.Int64
}

// Add records one weight-matrix computation's statistics.
func (c *PairCounter) Add(total, compared int) {
	if c == nil {
		return
	}
	c.total.Add(int64(total))
	c.compared.Add(int64(compared))
}

// Total returns the number of module pairs in all Cartesian products seen.
func (c *PairCounter) Total() int64 { return c.total.Load() }

// Compared returns the number of module pairs actually compared.
func (c *PairCounter) Compared() int64 { return c.compared.Load() }

// Reset zeroes the counters.
func (c *PairCounter) Reset() {
	c.total.Store(0)
	c.compared.Store(0)
}
