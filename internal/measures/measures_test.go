package measures

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/module"
	"repro/internal/repoknow"
	"repro/internal/workflow"
)

// keggWorkflow builds a small realistic workflow: fetch pathway from KEGG,
// split result, render.
func keggWorkflow(id string) *workflow.Workflow {
	w := workflow.New(id)
	w.Annotations = workflow.Annotations{
		Title:       "KEGG pathway analysis",
		Description: "Retrieves KEGG pathways for a list of genes and renders them",
		Tags:        []string{"kegg", "pathway", "bioinformatics"},
	}
	get := w.AddModule(&workflow.Module{
		ID: "m0", Label: "get_pathways_by_genes", Type: workflow.TypeWSDL,
		ServiceURI: "http://soap.genome.jp/KEGG.wsdl", ServiceName: "get_pathways_by_genes", Authority: "kegg",
	})
	split := w.AddModule(&workflow.Module{
		ID: "m1", Label: "split_string", Type: workflow.TypeLocalWorker,
	})
	render := w.AddModule(&workflow.Module{
		ID: "m2", Label: "render_pathway_diagram", Type: workflow.TypeBeanshell, Script: "render(input);",
	})
	_ = w.AddEdge(get, split)
	_ = w.AddEdge(split, render)
	return w
}

// blastWorkflow builds a functionally unrelated workflow.
func blastWorkflow(id string) *workflow.Workflow {
	w := workflow.New(id)
	w.Annotations = workflow.Annotations{
		Title:       "Protein sequence alignment",
		Description: "Runs NCBI BLAST against swissprot and filters hits",
		Tags:        []string{"blast", "alignment"},
	}
	fetch := w.AddModule(&workflow.Module{
		ID: "m0", Label: "fetch_sequence", Type: workflow.TypeSoaplabWSDL,
		ServiceURI: "http://www.ebi.ac.uk/soaplab/fetchseq", ServiceName: "fetchseq", Authority: "ebi",
	})
	blast := w.AddModule(&workflow.Module{
		ID: "m1", Label: "run_ncbi_blast", Type: workflow.TypeSoaplabWSDL,
		ServiceURI: "http://www.ebi.ac.uk/soaplab/blast", ServiceName: "blastall", Authority: "ebi",
	})
	filter := w.AddModule(&workflow.Module{
		ID: "m2", Label: "filter_hits", Type: workflow.TypeRShell, Script: "hits[hits$eval < 1e-5,]",
	})
	_ = w.AddEdge(fetch, blast)
	_ = w.AddEdge(blast, filter)
	return w
}

func msConfig() Config {
	return Config{Topology: ModuleSets, Scheme: module.PW0(), Preselect: module.AllPairs, Normalize: true}
}

func allTopologies() []Config {
	base := msConfig()
	ps := base
	ps.Topology = PathSets
	ge := base
	ge.Topology = GraphEdit
	return []Config{base, ps, ge}
}

func TestStructuralIdentity(t *testing.T) {
	a := keggWorkflow("a")
	for _, cfg := range allTopologies() {
		m := NewStructural(cfg)
		got, err := m.Compare(a, a)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("%s self-similarity = %v, want 1", m.Name(), got)
		}
	}
}

func TestStructuralUnrelatedLow(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	for _, cfg := range allTopologies() {
		m := NewStructural(cfg)
		self, _ := m.Compare(a, a)
		cross, err := m.Compare(a, b)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if cross >= self {
			t.Errorf("%s: unrelated pair %v >= identical pair %v", m.Name(), cross, self)
		}
	}
}

func TestStructuralSymmetry(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	for _, cfg := range allTopologies() {
		m := NewStructural(cfg)
		ab, err1 := m.Compare(a, b)
		ba, err2 := m.Compare(b, a)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", m.Name(), err1, err2)
		}
		if math.Abs(ab-ba) > 1e-9 {
			t.Errorf("%s asymmetric: %v vs %v", m.Name(), ab, ba)
		}
	}
}

func TestStructuralEmptyWorkflows(t *testing.T) {
	empty := workflow.New("empty")
	a := keggWorkflow("a")
	for _, cfg := range allTopologies() {
		m := NewStructural(cfg)
		got, err := m.Compare(a, empty)
		if err != nil {
			t.Fatalf("%s vs empty: %v", m.Name(), err)
		}
		if got < 0 || got > 0.2 {
			t.Errorf("%s vs empty = %v, want near 0", m.Name(), got)
		}
	}
}

func TestNames(t *testing.T) {
	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	cfg := Config{
		Topology:  ModuleSets,
		Scheme:    module.PLL(),
		Preselect: module.TypeEquivalence,
		Project:   proj.Project,
		Normalize: true,
	}
	if got := NewStructural(cfg).Name(); got != "MS_ip_te_pll" {
		t.Errorf("Name = %q, want MS_ip_te_pll", got)
	}
	cfg.Project = nil
	cfg.Preselect = module.AllPairs
	cfg.Scheme = module.PW0()
	cfg.Topology = GraphEdit
	cfg.Normalize = false
	if got := NewStructural(cfg).Name(); got != "GE_np_ta_pw0_nonorm" {
		t.Errorf("Name = %q, want GE_np_ta_pw0_nonorm", got)
	}
	cfg.Normalize = true
	cfg.Mapping = GreedyMapping
	if got := NewStructural(cfg).Name(); got != "GE_np_ta_pw0_greedy" {
		t.Errorf("Name = %q, want GE_np_ta_pw0_greedy", got)
	}
}

func TestImportanceProjectionAffectsMS(t *testing.T) {
	// Two workflows identical except for trivial local shims: under ip
	// they become identical.
	a := keggWorkflow("a")
	b := keggWorkflow("b")
	extra := b.AddModule(&workflow.Module{Label: "flatten_list", Type: workflow.TypeLocalWorker})
	_ = b.AddEdge(0, extra)

	proj := repoknow.NewProjector(repoknow.TypeScorer{}, 0.5)
	with := NewStructural(Config{Topology: ModuleSets, Scheme: module.PW0(), Normalize: true, Project: proj.Project})
	without := NewStructural(msConfig())

	sWith, _ := with.Compare(a, b)
	sWithout, _ := without.Compare(a, b)
	if math.Abs(sWith-1) > 1e-9 {
		t.Errorf("ip similarity = %v, want 1 (shims projected away)", sWith)
	}
	if sWithout >= sWith {
		t.Errorf("np similarity %v should be below ip similarity %v", sWithout, sWith)
	}
}

func TestGEDTimeoutPropagates(t *testing.T) {
	// Large random-ish workflows with a microscopic deadline must yield an
	// error, mirroring the paper's disregarded pairs.
	a, b := workflow.New("a"), workflow.New("b")
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 16; i++ {
		a.AddModule(&workflow.Module{Label: randLabel(r), Type: workflow.TypeWSDL})
		b.AddModule(&workflow.Module{Label: randLabel(r), Type: workflow.TypeWSDL})
	}
	for i := 0; i < 15; i++ {
		_ = a.AddEdge(i, i+1)
		_ = b.AddEdge(i, i+1)
	}
	cfg := msConfig()
	cfg.Topology = GraphEdit
	cfg.GEDDeadline = time.Nanosecond
	if _, err := NewStructural(cfg).Compare(a, b); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestUnnormalizedGE(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	cfg := msConfig()
	cfg.Topology = GraphEdit
	cfg.Normalize = false
	m := NewStructural(cfg)
	self, _ := m.Compare(a, a)
	if self != 0 {
		t.Errorf("unnormalized GE self = %v, want 0 (-cost)", self)
	}
	cross, _ := m.Compare(a, b)
	if cross >= 0 {
		t.Errorf("unnormalized GE cross = %v, want negative", cross)
	}
}

func TestPairCounterAndPreselectionReduction(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	var all, te PairCounter

	cfgAll := msConfig()
	cfgAll.Counter = &all
	if _, err := NewStructural(cfgAll).Compare(a, b); err != nil {
		t.Fatal(err)
	}
	cfgTE := msConfig()
	cfgTE.Preselect = module.TypeEquivalence
	cfgTE.Counter = &te
	if _, err := NewStructural(cfgTE).Compare(a, b); err != nil {
		t.Fatal(err)
	}
	if all.Compared() != 9 {
		t.Errorf("ta compared = %d, want 9", all.Compared())
	}
	if te.Compared() >= all.Compared() {
		t.Errorf("te compared %d not below ta %d", te.Compared(), all.Compared())
	}
	if te.Total() != 9 {
		t.Errorf("te total = %d, want 9", te.Total())
	}
}

func TestBagOfWords(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	bw := BagOfWords{}
	if got, _ := bw.Compare(a, a); got != 1 {
		t.Errorf("BW self = %v, want 1", got)
	}
	cross, _ := bw.Compare(a, b)
	if cross >= 0.5 {
		t.Errorf("BW unrelated = %v, want low", cross)
	}
	if bw.Name() != "BW" {
		t.Errorf("BW name = %q", bw.Name())
	}
	bare := workflow.New("bare")
	if got, _ := bw.Compare(a, bare); got != 0 {
		t.Errorf("BW vs annotation-less = %v, want 0", got)
	}
	if HasWords(bare) {
		t.Error("HasWords on bare workflow")
	}
}

func TestBagOfTags(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	bt := BagOfTags{}
	if got, _ := bt.Compare(a, a); got != 1 {
		t.Errorf("BT self = %v, want 1", got)
	}
	if got, _ := bt.Compare(a, b); got != 0 {
		t.Errorf("BT disjoint tags = %v, want 0", got)
	}
	c := keggWorkflow("c")
	c.Annotations.Tags = []string{"KEGG", " pathway "} // case/space folding
	got, _ := bt.Compare(a, c)
	if math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("BT partial = %v, want 2/3", got)
	}
	if HasTags(workflow.New("x")) {
		t.Error("HasTags on tagless workflow")
	}
}

func TestEnsemble(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	ms := NewStructural(msConfig())
	ens := NewEnsemble(BagOfWords{}, ms)
	if got := ens.Name(); got != "ENS(BW+MS_np_ta_pw0)" {
		t.Errorf("ensemble name = %q", got)
	}
	self, err := ens.Compare(a, a)
	if err != nil || math.Abs(self-1) > 1e-9 {
		t.Errorf("ensemble self = %v, %v", self, err)
	}
	sBW, _ := BagOfWords{}.Compare(a, b)
	sMS, _ := ms.Compare(a, b)
	got, _ := ens.Compare(a, b)
	want := (sBW + sMS) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ensemble mean = %v, want %v", got, want)
	}
}

func TestWeightedEnsemble(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	ms := NewStructural(msConfig())
	ens := NewWeightedEnsemble([]Measure{BagOfWords{}, ms}, []float64{3, 1})
	sBW, _ := BagOfWords{}.Compare(a, b)
	sMS, _ := ms.Compare(a, b)
	got, _ := ens.Compare(a, b)
	want := (3*sBW + sMS) / 4
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted ensemble = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched weights must panic")
		}
	}()
	NewWeightedEnsemble([]Measure{ms}, []float64{1, 2})
}

func randLabel(r *rand.Rand) string {
	words := []string{"get", "fetch", "run", "parse", "blast", "align", "merge", "split", "render", "filter"}
	return words[r.Intn(len(words))] + "_" + words[r.Intn(len(words))]
}

func randWorkflow(r *rand.Rand, id string) *workflow.Workflow {
	w := workflow.New(id)
	n := r.Intn(6) + 1
	types := []string{workflow.TypeWSDL, workflow.TypeBeanshell, workflow.TypeLocalWorker}
	for i := 0; i < n; i++ {
		w.AddModule(&workflow.Module{Label: randLabel(r), Type: types[r.Intn(len(types))]})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(3) == 0 {
				_ = w.AddEdge(i, j)
			}
		}
	}
	w.Annotations.Title = randLabel(r) + " workflow"
	return w
}

func TestPropertyMeasuresSymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randWorkflow(r, "a")
		b := randWorkflow(r, "b")
		for _, cfg := range allTopologies() {
			m := NewStructural(cfg)
			ab, err1 := m.Compare(a, b)
			ba, err2 := m.Compare(b, a)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(ab-ba) > 1e-9 {
				return false
			}
			if ab < -1e-9 || ab > 1+1e-9 {
				return false
			}
			self, err := m.Compare(a, a)
			if err != nil || math.Abs(self-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkModuleSetsCompare(b *testing.B) {
	x, y := keggWorkflow("x"), blastWorkflow("y")
	m := NewStructural(msConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compare(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathSetsCompare(b *testing.B) {
	x, y := keggWorkflow("x"), blastWorkflow("y")
	cfg := msConfig()
	cfg.Topology = PathSets
	m := NewStructural(cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compare(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphEditCompare(b *testing.B) {
	x, y := keggWorkflow("x"), blastWorkflow("y")
	cfg := msConfig()
	cfg.Topology = GraphEdit
	cfg.GEDBeamWidth = 64
	m := NewStructural(cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compare(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGEDBipartiteMode(t *testing.T) {
	a, b := keggWorkflow("a"), blastWorkflow("b")
	cfg := msConfig()
	cfg.Topology = GraphEdit
	cfg.GEDBipartite = true
	m := NewStructural(cfg)
	self, err := m.Compare(a, a)
	if err != nil || math.Abs(self-1) > 1e-9 {
		t.Fatalf("bipartite GE self = %v, %v", self, err)
	}
	cross, err := m.Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cross < 0 || cross >= self {
		t.Errorf("bipartite GE cross = %v, want in [0, 1)", cross)
	}
	// The bipartite bound never exceeds the exact similarity (cost is an
	// upper bound, so normalized similarity is a lower bound).
	cfg.GEDBipartite = false
	exact := NewStructural(cfg)
	es, err := exact.Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cross > es+1e-9 {
		t.Errorf("bipartite similarity %v above exact %v", cross, es)
	}
}
