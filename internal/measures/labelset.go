package measures

import (
	"repro/internal/workflow"
)

// Label-set similarity helpers over the canonical module-label sets of
// two workflows. On the interned hot representation (both workflows
// resolved by the same symbol table) they run as word-parallel kernels:
// a 256-bit popcount prescreen rejects provably disjoint pairs and a
// single sorted-merge pass counts the overlap. Unresolved workflows fall
// back to canonical label string sets; the two paths count the same sets,
// so every result is bit-identical to the string baseline.

// LabelSets is the pure label-set measure: workflow similarity as the
// Jaccard index (or containment coefficient) of the canonical module-label
// sets, ignoring topology and module weights entirely. It is the cheapest
// structural signal the engine has — on interned corpora a pair costs a
// bitset prescreen plus one sorted merge — and serves as a registrable
// custom measure (wfsim.Registry.Register) and as the reference workload
// for label-set scan benchmarks.
type LabelSets struct {
	// Containment switches from Jaccard to |A ∩ B| / min(|A|, |B|).
	Containment bool
}

// Name implements Measure ("LS", "LS-containment").
func (l LabelSets) Name() string {
	if l.Containment {
		return "LS-containment"
	}
	return "LS"
}

// Compare implements Measure.
func (l LabelSets) Compare(a, b *workflow.Workflow) (float64, error) {
	if l.Containment {
		return LabelContainment(a, b), nil
	}
	return LabelJaccard(a, b), nil
}

// LabelJaccard returns |A ∩ B| / |A ∪ B| over canonical label sets. Two
// empty sets yield 0 (no evidence), mirroring textutil.SetJaccard.
func LabelJaccard(a, b *workflow.Workflow) float64 {
	na, nb, shared := labelOverlap(a, b)
	union := na + nb - shared
	if union == 0 {
		return 0
	}
	return float64(shared) / float64(union)
}

// LabelContainment returns |A ∩ B| / min(|A|, |B|) over canonical label
// sets — 1 when the smaller vocabulary is fully contained in the larger.
// Either set empty yields 0.
func LabelContainment(a, b *workflow.Workflow) float64 {
	na, nb, shared := labelOverlap(a, b)
	m := na
	if nb < m {
		m = nb
	}
	if m == 0 {
		return 0
	}
	return float64(shared) / float64(m)
}

// LabelOverlap returns |A ∩ B| over canonical label sets.
func LabelOverlap(a, b *workflow.Workflow) int {
	_, _, shared := labelOverlap(a, b)
	return shared
}

// labelOverlap returns the two set sizes and the overlap, taking the
// merge/popcount kernel when both sides carry the same interned
// representation and the string fallback otherwise.
func labelOverlap(a, b *workflow.Workflow) (na, nb, shared int) {
	if s := workflow.LabelOverlap(a, b); s >= 0 {
		return len(a.LabelSet()), len(b.LabelSet()), s
	}
	sa, sb := canonLabelSet(a), canonLabelSet(b)
	na, nb = len(sa), len(sb)
	for k := range sa {
		if sb[k] {
			shared++
		}
	}
	return na, nb, shared
}

// canonLabelSet builds the canonical label string set of an unresolved
// workflow (the pre-intern representation).
func canonLabelSet(w *workflow.Workflow) map[string]bool {
	set := make(map[string]bool, len(w.Modules))
	for _, m := range w.Modules {
		key := workflow.CanonicalLabel(m.Label)
		if key != "" {
			set[key] = true
		}
	}
	return set
}
