package measures

import (
	"repro/internal/module"
	"repro/internal/workflow"
)

// Specialisable is implemented by measures that can be specialised for a
// whole-repository scan: the scan driver hoists the importance projection out
// of the per-pair Compare (projecting each workflow once per scan instead of
// once per pair) and installs a scan-scoped memo for repeated attribute
// comparisons. The specialised measure returns bit-identical scores; only
// redundant work is removed.
type Specialisable interface {
	// Specialise returns the projection to apply per workflow (nil when the
	// measure has none) and a measure that compares PRE-PROJECTED workflows
	// with the memo installed. The returned measure keeps the original
	// Name(), so stats and cache keys are unaffected.
	Specialise(memo *module.SimMemo) (Projector, Measure)
}

// Specialise implements Specialisable for structural measures.
func (s *Structural) Specialise(memo *module.SimMemo) (Projector, Measure) {
	cfg := s.cfg
	project := cfg.Project
	cfg.Project = nil
	cfg.Memo = memo
	return project, &renamed{inner: NewStructural(cfg), name: s.Name()}
}

// renamed preserves the un-specialised measure's notation name (e.g. the
// "ip" of a projection hoisted out by Specialise) on the specialised inner
// measure.
type renamed struct {
	inner Measure
	name  string
}

func (r *renamed) Name() string { return r.name }

func (r *renamed) Compare(a, b *workflow.Workflow) (float64, error) {
	return r.inner.Compare(a, b)
}
