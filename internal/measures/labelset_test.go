package measures

import (
	"fmt"
	"testing"

	"repro/internal/symtab"
	"repro/internal/workflow"
)

func labelWorkflow(id string, labels ...string) *workflow.Workflow {
	w := workflow.New(id)
	for i, l := range labels {
		w.AddModule(&workflow.Module{
			ID:    fmt.Sprintf("m%d", i),
			Label: l,
			Type:  workflow.TypeWSDL,
		})
	}
	return w
}

func TestLabelSetValues(t *testing.T) {
	a := labelWorkflow("a", "fetch_sequence", "run_blast", "plot_hits")
	b := labelWorkflow("b", "Fetch Sequence", "run_blast", "align_reads", "trim_ends")

	// Canonicalization folds case and separators: 2 shared of 3 vs 4.
	if got := LabelOverlap(a, b); got != 2 {
		t.Fatalf("LabelOverlap = %d, want 2", got)
	}
	if got, want := LabelJaccard(a, b), 2.0/5.0; got != want {
		t.Errorf("LabelJaccard = %v, want %v", got, want)
	}
	if got, want := LabelContainment(a, b), 2.0/3.0; got != want {
		t.Errorf("LabelContainment = %v, want %v", got, want)
	}

	empty := labelWorkflow("e")
	if LabelJaccard(empty, empty) != 0 || LabelContainment(empty, a) != 0 {
		t.Error("empty label sets must score 0, not NaN")
	}
}

// The interned kernel (bitset prescreen + sorted merge) and the string
// fallback must agree bit for bit on every pair, including pairs where only
// one side is resolved (mixed pairs take the fallback).
func TestLabelSetKernelMatchesStringFallback(t *testing.T) {
	mk := func() []*workflow.Workflow {
		return []*workflow.Workflow{
			labelWorkflow("a", "fetch_sequence", "run_blast", "plot_hits"),
			labelWorkflow("b", "Fetch Sequence", "RUN_BLAST", "align_reads"),
			labelWorkflow("c", "segment_cells", "load_image"),
			labelWorkflow("d"),
			labelWorkflow("e", "fetch_sequence"),
		}
	}
	plain := mk()
	resolved := mk()
	tab := symtab.New()
	for _, w := range resolved {
		w.Resolve(tab)
	}
	for _, m := range []Measure{LabelSets{}, LabelSets{Containment: true}} {
		for i := range plain {
			for j := range plain {
				want, err := m.Compare(plain[i], plain[j])
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.Compare(resolved[i], resolved[j])
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%s(%s,%s): interned %v vs string %v",
						m.Name(), plain[i].ID, plain[j].ID, got, want)
				}
				mixed, err := m.Compare(plain[i], resolved[j])
				if err != nil {
					t.Fatal(err)
				}
				if mixed != want {
					t.Errorf("%s(%s,%s) mixed pair: %v vs string %v",
						m.Name(), plain[i].ID, plain[j].ID, mixed, want)
				}
			}
		}
	}
}
