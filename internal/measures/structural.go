package measures

import (
	"fmt"
	"time"

	"repro/internal/ged"
	"repro/internal/matching"
	"repro/internal/module"
	"repro/internal/workflow"
)

// Topology selects the topological comparison class of Section 2.1.3.
type Topology int

const (
	// ModuleSets compares workflows as sets of modules (structure
	// agnostic), after Silva et al., Santos et al., Stoyanovich et al.
	ModuleSets Topology = iota
	// PathSets decomposes workflows into source-to-sink paths and compares
	// the path sets (substructure based), after Krinke's maximum similar
	// subgraph notion.
	PathSets
	// GraphEdit compares the full DAG structures by graph edit distance,
	// after Xiang & Madey (SUBDUE).
	GraphEdit
)

// String returns the notation prefix (MS, PS, GE).
func (t Topology) String() string {
	switch t {
	case ModuleSets:
		return "MS"
	case PathSets:
		return "PS"
	case GraphEdit:
		return "GE"
	}
	return "??"
}

// MappingKind selects the module-mapping strategy of Section 2.1.2.
type MappingKind int

const (
	// MaxWeight computes the mapping of maximum overall weight (mw).
	MaxWeight MappingKind = iota
	// GreedyMapping selects pairs greedily by descending weight.
	GreedyMapping
)

// String implements fmt.Stringer.
func (m MappingKind) String() string {
	if m == GreedyMapping {
		return "greedy"
	}
	return "mw"
}

// Projector preprocesses a workflow before structural comparison; the
// importance projection of package repoknow satisfies this signature.
type Projector func(*workflow.Workflow) *workflow.Workflow

// Config fully describes one structural similarity algorithm configuration —
// one cell of the paper's 72-configuration sweep.
type Config struct {
	// Topology is the comparison class: MS, PS or GE.
	Topology Topology
	// Scheme is the module-comparison scheme (pw0, pw3, pll, plm, ...).
	Scheme module.Scheme
	// Preselect is the module-pair preselection strategy (ta, tm, te).
	Preselect module.Preselect
	// Project, when non-nil, is applied to both workflows before
	// comparison (the paper's ip). Nil means no preprocessing (np).
	Project Projector
	// Mapping is the module-mapping strategy (mw or greedy).
	Mapping MappingKind
	// Normalize enables the Section 2.1.4 normalization. The paper shows
	// disabling it significantly hurts GE ranking quality (Fig. 7).
	Normalize bool
	// PathCap bounds path enumeration for PS; 0 uses the default.
	PathCap int
	// GEDBeamWidth bounds the GED search frontier; 0 means exact.
	GEDBeamWidth int
	// GEDBipartite switches GED to the polynomial assignment-based upper
	// bound (Riesen & Bunke) instead of the A*/beam search — the fastest
	// option for whole-repository scans.
	GEDBipartite bool
	// GEDDeadline is the per-pair GED time budget; 0 means unlimited.
	// The paper used 5 minutes per pair and disregarded timeouts.
	GEDDeadline time.Duration
	// MappingLabelThreshold is the minimum module-pair similarity for a
	// mapped pair to receive a shared node label in GED preprocessing.
	// 0 uses DefaultMappingLabelThreshold.
	MappingLabelThreshold float64
	// Counter, when non-nil, accumulates module-pair comparison counts.
	Counter *PairCounter
	// Memo, when non-nil, memoizes EditDistance attribute comparisons
	// across compares — scan-scoped sharing installed by Specialise.
	// Scores are bit-identical with or without it.
	Memo *module.SimMemo
}

// DefaultMappingLabelThreshold is the minimum mapped-pair similarity that
// identifies two modules for GED label preprocessing. A mapped pair below
// the threshold is treated as distinct nodes; without a threshold every
// maximum-weight-mapped pair — however dissimilar — would count as
// identical.
const DefaultMappingLabelThreshold = 0.5

// Structural is a configured structural similarity measure.
type Structural struct {
	cfg Config
}

// NewStructural validates and wraps a configuration.
func NewStructural(cfg Config) *Structural {
	return &Structural{cfg: cfg}
}

// Config returns the measure's configuration.
func (s *Structural) Config() Config { return s.cfg }

// Name renders the paper's notation: TOPO_{ip|np}_{ta|tm|te}_{scheme},
// with non-default mapping or normalization noted as suffixes.
func (s *Structural) Name() string {
	proj := "np"
	if s.cfg.Project != nil {
		proj = "ip"
	}
	name := fmt.Sprintf("%s_%s_%s_%s", s.cfg.Topology, proj, s.cfg.Preselect, s.cfg.Scheme.Name)
	if s.cfg.Mapping == GreedyMapping {
		name += "_greedy"
	}
	if !s.cfg.Normalize {
		name += "_nonorm"
	}
	return name
}

// Compare computes the configured structural similarity of a and b.
func (s *Structural) Compare(a, b *workflow.Workflow) (float64, error) {
	if s.cfg.Project != nil {
		a = s.cfg.Project(a)
		b = s.cfg.Project(b)
	}
	switch s.cfg.Topology {
	case ModuleSets:
		return s.moduleSets(a, b), nil
	case PathSets:
		return s.pathSets(a, b), nil
	case GraphEdit:
		return s.graphEdit(a, b)
	}
	return 0, fmt.Errorf("measures: unknown topology %d", s.cfg.Topology)
}

func (s *Structural) match(w matching.Weights) matching.Matching {
	if s.cfg.Mapping == GreedyMapping {
		return matching.Greedy(w)
	}
	return matching.MaxWeight(w)
}

// moduleSets implements simMS: the additive similarity score of the mapped
// module pairs, normalized by the similarity-Jaccard
// nnsim / (|V1| + |V2| - nnsim).
func (s *Structural) moduleSets(a, b *workflow.Workflow) float64 {
	if a.Size() == 0 || b.Size() == 0 {
		return 0
	}
	w, st := module.WeightMatrixMemo(a, b, s.cfg.Scheme, s.cfg.Preselect, s.cfg.Memo)
	s.cfg.Counter.Add(st.Total, st.Compared)
	nnsim := s.match(w).TotalWeight()
	if !s.cfg.Normalize {
		return nnsim
	}
	return jaccardNorm(nnsim, float64(a.Size()), float64(b.Size()))
}

// pathSets implements simPS: workflows are decomposed into source-to-sink
// paths; each pair of paths is aligned by maximum-weight non-crossing
// matching (mwnc) respecting module order; path-pair similarities are then
// combined by a maximum-weight matching over the path sets.
//
// Path-pair scores are themselves Jaccard-normalized into [0,1] so that the
// outer normalization nnsim / (|PS1| + |PS2| - nnsim) attains 1 exactly for
// identical workflows (see DESIGN.md).
//
//wfsimvet:hotpath
func (s *Structural) pathSets(a, b *workflow.Workflow) float64 {
	pa := a.Paths(s.cfg.PathCap)
	pb := b.Paths(s.cfg.PathCap)
	if len(pa) == 0 || len(pb) == 0 {
		return 0
	}
	// Module similarities are computed once for the workflow pair; path
	// alignment then indexes into the shared matrix. Modules occur on many
	// paths, so recomputing per path pair would be quadratically wasteful.
	full, st := module.WeightMatrixMemo(a, b, s.cfg.Scheme, s.cfg.Preselect, s.cfg.Memo)
	s.cfg.Counter.Add(st.Total, st.Compared)

	pathWeights := make(matching.Weights, len(pa))
	var buf matching.Weights // reused per path pair
	for i, p := range pa {
		pathWeights[i] = make([]float64, len(pb))
		for j, q := range pb {
			w := sliceWeights(&buf, full, p, q)
			nn := matching.MaxWeightNonCrossing(w).TotalWeight()
			pathWeights[i][j] = jaccardNorm(nn, float64(len(p)), float64(len(q)))
		}
	}
	nnsim := s.match(pathWeights).TotalWeight()
	if !s.cfg.Normalize {
		return nnsim
	}
	return jaccardNorm(nnsim, float64(len(pa)), float64(len(pb)))
}

// sliceWeights materialises the sub-matrix of full for the module sequences
// along paths p and q, reusing buf's backing storage.
func sliceWeights(buf *matching.Weights, full matching.Weights, p, q workflow.Path) matching.Weights {
	w := *buf
	if cap(w) < len(p) {
		w = make(matching.Weights, len(p))
	}
	w = w[:len(p)]
	for i, pi := range p {
		if cap(w[i]) < len(q) {
			w[i] = make([]float64, len(q))
		}
		w[i] = w[i][:len(q)]
		for j, qj := range q {
			w[i][j] = full[pi][qj]
		}
	}
	*buf = w
	return w
}

// graphEdit implements simGE: the module mapping derived from maximum-weight
// matching assigns shared node labels to mapped pairs (the paper's SUBDUE
// input conversion); the labeled DAGs are then compared by uniform-cost
// graph edit distance. Normalized similarity is
//
//	1 - cost / (max(|V1|,|V2|) + |E1| + |E2|);
//
// unnormalized similarity is -cost.
func (s *Structural) graphEdit(a, b *workflow.Workflow) (float64, error) {
	// Canonicalize the orientation: the maximum-weight module mapping can
	// have multiple optima, and which one the matcher returns depends on
	// argument order; fixing the order keeps the measure symmetric.
	a, b = workflow.OrderPair(a, b)
	g1, g2 := s.labeledGraphs(a, b)
	var cost float64
	var err error
	if s.cfg.GEDBipartite {
		cost = ged.BipartiteUpper(g1, g2)
	} else {
		cost, err = ged.Distance(g1, g2, ged.Options{
			BeamWidth: s.cfg.GEDBeamWidth,
			Deadline:  s.cfg.GEDDeadline,
		})
		if err != nil {
			return 0, fmt.Errorf("GE on (%s, %s): %w", a.ID, b.ID, err)
		}
	}
	if !s.cfg.Normalize {
		return -cost, nil
	}
	max := ged.MaxCost(g1, g2)
	if max == 0 {
		return 1, nil // two empty graphs are identical
	}
	return 1 - cost/max, nil
}

// labeledGraphs converts the two workflows into labeled GED graphs: modules
// mapped onto each other (with similarity >= the mapping label threshold)
// share a label; all other modules receive unique labels.
func (s *Structural) labeledGraphs(a, b *workflow.Workflow) (*ged.Graph, *ged.Graph) {
	w, st := module.WeightMatrixMemo(a, b, s.cfg.Scheme, s.cfg.Preselect, s.cfg.Memo)
	s.cfg.Counter.Add(st.Total, st.Compared)
	mapping := s.match(w)

	threshold := s.cfg.MappingLabelThreshold
	if threshold == 0 {
		threshold = DefaultMappingLabelThreshold
	}

	g1 := ged.NewGraph(a.Size())
	g2 := ged.NewGraph(b.Size())
	// Unique labels by default: positive for g1, negative for g2.
	for i := range g1.Labels {
		g1.Labels[i] = i + 1
	}
	for j := range g2.Labels {
		g2.Labels[j] = -(j + 1)
	}
	shared := a.Size() + b.Size() + 1
	for _, p := range mapping {
		if p.Weight >= threshold {
			g1.Labels[p.I] = shared
			g2.Labels[p.J] = shared
			shared++
		}
	}
	for _, e := range a.Edges {
		g1.AddEdge(e.From, e.To)
	}
	for _, e := range b.Edges {
		g2.AddEdge(e.From, e.To)
	}
	return g1, g2
}

// jaccardNorm is the paper's modified Jaccard index for similarity-based
// overlaps: nnsim / (sizeA + sizeB - nnsim). It maps identical inputs
// (nnsim == sizeA == sizeB) to 1 and disjoint ones (nnsim == 0) to 0.
func jaccardNorm(nnsim, sizeA, sizeB float64) float64 {
	den := sizeA + sizeB - nnsim
	if den <= 0 {
		return 0
	}
	v := nnsim / den
	if v > 1 {
		return 1
	}
	return v
}

func modulesOn(w *workflow.Workflow, p workflow.Path) []*workflow.Module {
	out := make([]*workflow.Module, len(p))
	for i, idx := range p {
		out[i] = w.Modules[idx]
	}
	return out
}
