package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/corpus"
	"repro/internal/symtab"
	"repro/internal/workflow"
)

// ErrClosed is returned by operations on a closed Store — e.g. a mutation
// committed after graceful shutdown already flushed the final snapshot.
var ErrClosed = errors.New("storage: store is closed")

// Options tunes a Store. The zero value is production-ready: every commit
// is fsynced and compaction triggers at the default thresholds.
type Options struct {
	// CompactBytes triggers compaction when the log exceeds this many bytes
	// (default 8 MiB; < 0 disables the byte trigger).
	CompactBytes int64
	// CompactRecords triggers compaction when the log holds this many
	// records (default 4096; < 0 disables the record trigger).
	CompactRecords int64
	// NoSync skips the per-commit fsync. Only for tests and benchmarks:
	// a crash may then lose recent commits (never corrupt the store).
	NoSync bool
	// Warnf receives recovery warnings (torn tail truncated, unreadable
	// snapshot skipped, legacy layout migrated). Nil discards them;
	// RecoveryStats records the facts either way.
	Warnf func(format string, args ...any)
	// Symtab is the shared symbol table whose assignment order the store
	// persists: recovery re-interns the recorded strings in order, so every
	// ID a workflow cached before a crash resolves to the same string
	// after. In a sharded deployment all stores share one table; each
	// persists its own contiguous prefix of the table's global order, so
	// recovery from any subset of shards, in any order, rebuilds identical
	// IDs. Nil gets a private table — symbols still round-trip through the
	// files, but nothing else observes them.
	Symtab *symtab.Table
}

func (o Options) withDefaults() Options {
	if o.CompactBytes == 0 {
		o.CompactBytes = 8 << 20
	}
	if o.CompactRecords == 0 {
		o.CompactRecords = 4096
	}
	if o.Warnf == nil {
		o.Warnf = func(string, ...any) {}
	}
	if o.Symtab == nil {
		o.Symtab = symtab.New()
	}
	return o
}

// RecoveryStats describes what Open found and did.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot seeded recovery.
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// SnapshotGeneration is the loaded snapshot's generation (0 if none).
	SnapshotGeneration uint64 `json:"snapshot_generation"`
	// ReplayedRecords is the number of log records replayed on top.
	ReplayedRecords int64 `json:"replayed_records"`
	// ReplayedOps is the number of mutations inside those records.
	ReplayedOps int64 `json:"replayed_ops"`
	// TornTailTruncated reports whether trailing bytes of the log failed
	// validation and were truncated — the normal aftermath of a crash
	// mid-append; everything before them recovered intact.
	TornTailTruncated bool `json:"torn_tail_truncated"`
	// Generation is the recovered repository generation.
	Generation uint64 `json:"generation"`
	// Workflows is the recovered repository size.
	Workflows int `json:"workflows"`
	// SymbolsRecovered is the number of symbol-table positions this store's
	// files covered (snapshot symbol list plus log deltas): the prefix of
	// the shared table's assignment order whose IDs recovery reproduced
	// without re-interning.
	SymbolsRecovered int `json:"symbols_recovered"`
	// MigratedFormat reports that the directory held a pre-symbol-table
	// (v1) snapshot or log. Its workflows recovered normally; their labels
	// are re-interned from scratch, and the next compaction rewrites the
	// directory in the current format.
	MigratedFormat bool `json:"migrated_format"`
}

// Stats describes a Store's current state for monitoring.
type Stats struct {
	// Dir is the data directory.
	Dir string `json:"dir"`
	// LogBytes is the mutation log's current size.
	LogBytes int64 `json:"log_bytes"`
	// LogRecords is the number of records currently in the log (replayed
	// tail plus appends since the last compaction).
	LogRecords int64 `json:"log_records"`
	// SnapshotGeneration is the generation covered by the latest durable
	// snapshot (0 when none has been written yet).
	SnapshotGeneration uint64 `json:"snapshot_generation"`
	// Compactions counts snapshot-compaction cycles since Open.
	Compactions int64 `json:"compactions"`
	// Recovery reports what boot-time recovery found.
	Recovery RecoveryStats `json:"recovery"`
}

// Store is the durable backing of one repository: a write-ahead mutation
// log plus snapshot checkpoints in a single data directory. Commit is safe
// for concurrent use with Compact; Open recovers the directory's state.
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File // the log, positioned for append
	logBytes    int64
	logRecords  int64
	snapGen     uint64
	compactions int64
	lastGen     uint64
	closed      bool
	recovery    RecoveryStats
	// symHW is the symbol high-water mark: how many positions of the
	// shared table's assignment order this store has made durable. Commit
	// persists SymbolsFrom(symHW) as the record's delta and advances the
	// mark only on success, so a failed append retries the same symbols.
	symHW int
	// wedged is non-nil when a failed append could not be rolled back: the
	// log has torn bytes at its tail that a later append would land behind,
	// making every subsequent record invisible to recovery (readLog stops
	// at the first torn frame). While wedged, Commit refuses — an explicit
	// error to the writer instead of a silent loss at the next boot. A
	// successful Compact rewrites the log from its valid records and clears
	// the wedge.
	wedged error
}

// Open opens (creating if needed) the data directory and recovers its
// state: the latest valid snapshot, with the log tail replayed on top up to
// the last fully-committed generation. A torn final record — a crash
// mid-append — is truncated with a warning; a semantic inconsistency
// between snapshot and log (which no crash can produce) is an error.
// The recovered workflows are returned in repository insertion order.
func Open(dir string, opts Options) (*Store, []*workflow.Workflow, uint64, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, err
	}
	snap, haveSnap, snapLegacy, err := loadLatestSnapshot(dir, opts.Warnf)
	if err != nil {
		return nil, nil, 0, err
	}
	logPath := filepath.Join(dir, walName)
	recs, validSize, torn, logLegacy, err := readLog(logPath)
	if err != nil {
		return nil, nil, 0, err
	}
	if torn {
		opts.Warnf("storage: %s: torn tail after offset %d truncated; recovering to last committed record", walName, validSize)
	}
	legacy := (haveSnap && snapLegacy) || logLegacy
	if legacy {
		opts.Warnf("storage: %s: legacy pre-symbol-table layout; migrating by re-interning recovered labels (next compaction rewrites the current format)", dir)
	}

	// Re-intern the persisted symbol sequence in its recorded order: the
	// snapshot's full list, then each record's delta. Every sequence is a
	// contiguous prefix of the shared table's assignment order, so Intern
	// either reproduces the recorded ID or confirms another shard's store
	// already did.
	covered := len(snap.Symbols)
	for _, sym := range snap.Symbols {
		opts.Symtab.Intern(sym)
	}

	state := newReplayState(snap.Workflows)
	gen := snap.Gen
	stats := RecoveryStats{
		SnapshotLoaded:     haveSnap,
		SnapshotGeneration: snap.Gen,
		TornTailTruncated:  torn,
		MigratedFormat:     legacy,
	}
	logRecords := int64(0)
	for _, rec := range recs {
		// Symbol deltas are replayed even for generation-covered records: a
		// record the snapshot subsumes carries a delta the snapshot's
		// symbol list also subsumes, so interning is a no-op, but the
		// coverage check below must still see a gapless sequence.
		if len(rec.Syms) > 0 {
			if rec.SymBase > covered {
				return nil, nil, 0, fmt.Errorf("storage: %s: symbol delta at position %d leaves gap after %d (log and snapshot disagree)", walName, rec.SymBase, covered)
			}
			for _, sym := range rec.Syms {
				opts.Symtab.Intern(sym)
			}
			if end := rec.SymBase + len(rec.Syms); end > covered {
				covered = end
			}
		}
		if rec.Gen <= gen {
			// Covered by the snapshot (or a compaction that died between
			// snapshot write and log rewrite): already applied.
			continue
		}
		if rec.Gen != gen+1 {
			return nil, nil, 0, fmt.Errorf("storage: %s: record generation %d after %d (log and snapshot disagree)", walName, rec.Gen, gen)
		}
		ops, err := decodeOps(rec.Ops)
		if err != nil {
			return nil, nil, 0, err
		}
		if err := state.apply(ops); err != nil {
			return nil, nil, 0, fmt.Errorf("storage: %s: replay to generation %d: %w", walName, rec.Gen, err)
		}
		gen = rec.Gen
		logRecords++
		stats.ReplayedRecords++
		stats.ReplayedOps += int64(len(ops))
	}

	f, size, err := openLogForAppend(logPath, validSize)
	if err != nil {
		return nil, nil, 0, err
	}
	if torn {
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	wfs := state.workflows()
	stats.Generation = gen
	stats.Workflows = len(wfs)
	stats.SymbolsRecovered = covered
	s := &Store{
		dir:        dir,
		opts:       opts,
		f:          f,
		logBytes:   size,
		logRecords: logRecords,
		snapGen:    snap.Gen,
		lastGen:    gen,
		recovery:   stats,
		symHW:      covered,
	}
	return s, wfs, gen, nil
}

// replayState reproduces repository insertion-order semantics while
// replaying logged batches: adds append, removes splice, replaces keep
// their position — exactly what corpus.Repository does on commit.
type replayState struct {
	order []*workflow.Workflow
	byID  map[string]int // ID -> index in order
}

func newReplayState(wfs []*workflow.Workflow) *replayState {
	st := &replayState{
		order: append([]*workflow.Workflow(nil), wfs...),
		byID:  make(map[string]int, len(wfs)),
	}
	for i, wf := range wfs {
		st.byID[wf.ID] = i
	}
	return st
}

func (st *replayState) apply(ops []corpus.Op) error {
	for _, op := range ops {
		switch op.Kind {
		case corpus.OpAdd:
			if _, dup := st.byID[op.Workflow.ID]; dup {
				return fmt.Errorf("logged add of existing workflow %q", op.Workflow.ID)
			}
			st.byID[op.Workflow.ID] = len(st.order)
			st.order = append(st.order, op.Workflow)
		case corpus.OpRemove:
			i, ok := st.byID[op.ID]
			if !ok {
				return fmt.Errorf("logged remove of unknown workflow %q", op.ID)
			}
			st.order = append(st.order[:i], st.order[i+1:]...)
			delete(st.byID, op.ID)
			for j := i; j < len(st.order); j++ {
				st.byID[st.order[j].ID] = j
			}
		case corpus.OpReplace:
			i, ok := st.byID[op.Workflow.ID]
			if !ok {
				return fmt.Errorf("logged replace of unknown workflow %q", op.Workflow.ID)
			}
			st.order[i] = op.Workflow
		}
	}
	return nil
}

func (st *replayState) workflows() []*workflow.Workflow { return st.order }

// Commit appends one committed transaction to the log and makes it durable
// before returning. It is designed to run inside the repository's
// transaction boundary (corpus.CommitHook): an error here aborts the
// in-memory commit, so the repository never holds state the log lacks.
func (s *Store) Commit(gen uint64, ops []corpus.Op) error {
	encoded, err := encodeOps(ops)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wedged != nil {
		return s.wedged
	}
	if gen != s.lastGen+1 {
		return fmt.Errorf("storage: commit generation %d does not follow %d", gen, s.lastGen)
	}
	// Capture the symbol delta under s.mu so successive records persist
	// contiguous, non-overlapping ranges of the shared table's assignment
	// order. The repository interns a batch's strings before its commit
	// hook fires, so the delta always covers this record's ops (plus any
	// symbols interned by batches whose hooks failed — harmless: they ride
	// along and stay a prefix of the table).
	delta := s.opts.Symtab.SymbolsFrom(s.symHW)
	rec := logRecord{Gen: gen, Ops: encoded}
	if len(delta) > 0 {
		rec.SymBase = s.symHW
		rec.Syms = delta
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	n, err := appendFrame(s.f, payload)
	if err != nil {
		// The append may have partially written; truncate back so the torn
		// bytes cannot shadow a later, successful record.
		s.rollbackAppendLocked()
		return fmt.Errorf("storage: append commit record: %w", err)
	}
	if !s.opts.NoSync {
		//wfsimvet:ignore lockscope s.mu is the WAL's serialization point: the record must be durable before the next writer appends
		if err := s.f.Sync(); err != nil {
			s.rollbackAppendLocked()
			return fmt.Errorf("storage: sync commit record: %w", err)
		}
	}
	s.logBytes += n
	s.logRecords++
	s.lastGen = gen
	s.symHW += len(delta)
	return nil
}

// rollbackAppendLocked restores the log tail after a failed append. If the
// torn bytes cannot be removed, the store wedges: acknowledging a later
// append behind them would hand the caller a durability promise that
// recovery cannot keep.
func (s *Store) rollbackAppendLocked() {
	//wfsimvet:ignore lockscope rollback must run before s.mu is released or a concurrent Commit appends behind the torn bytes
	if err := s.f.Truncate(s.logBytes); err != nil {
		s.wedged = fmt.Errorf("storage: log wedged: failed append could not be rolled back (truncate: %w); compact to rewrite the log", err)
		return
	}
	if _, err := s.f.Seek(s.logBytes, io.SeekStart); err != nil {
		s.wedged = fmt.Errorf("storage: log wedged: failed append could not be rolled back (seek: %w); compact to rewrite the log", err)
	}
}

// ShouldCompact reports whether the log has outgrown the configured
// thresholds and a Compact would usefully truncate it.
func (s *Store) ShouldCompact() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.logRecords == 0 {
		return false
	}
	return (s.opts.CompactBytes > 0 && s.logBytes >= s.opts.CompactBytes) ||
		(s.opts.CompactRecords > 0 && s.logRecords >= s.opts.CompactRecords)
}

// Compact checkpoints the given repository view: it durably writes a
// snapshot at gen, rewrites the log keeping only records newer than gen,
// and deletes older snapshot files. The view must be a pinned snapshot of
// the repository this store backs (Compact never reads the repository
// itself, so it cannot deadlock with a commit in flight). On error the log
// is untouched and recovery remains correct — at worst the old, longer log
// replays.
func (s *Store) Compact(gen uint64, wfs []*workflow.Workflow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked(gen, wfs)
}

func (s *Store) compactLocked(gen uint64, wfs []*workflow.Workflow) error {
	if s.closed {
		return ErrClosed
	}
	if gen > s.lastGen {
		// Only legitimate as the baseline checkpoint of a pre-populated
		// repository adopting a fresh store: the snapshot itself asserts
		// the state at gen, and commits continue from there.
		if s.logRecords > 0 {
			return fmt.Errorf("storage: compact at generation %d beyond last committed %d", gen, s.lastGen)
		}
		s.lastGen = gen
	}
	if gen < s.snapGen {
		return fmt.Errorf("storage: compact at generation %d behind snapshot %d", gen, s.snapGen)
	}
	// Snapshot the full symbol table: holding s.mu excludes Commit, so the
	// list is a superset of every delta the kept log records carry (their
	// ranges replay as no-ops on recovery) and the high-water mark can jump
	// to its length.
	syms := s.opts.Symtab.Symbols()
	if _, err := writeSnapshot(s.dir, gen, wfs, syms); err != nil {
		return err
	}
	// The snapshot is durable; now the log prefix it covers can go. Re-read
	// the log from disk so records committed by other goroutines since our
	// caller pinned its view are preserved verbatim.
	logPath := filepath.Join(s.dir, walName)
	recs, _, _, _, err := readLog(logPath)
	if err != nil {
		return err
	}
	keep := recs[:0]
	for _, rec := range recs {
		if rec.Gen > gen {
			keep = append(keep, rec)
		}
	}
	f, size, n, err := rewriteLog(logPath, keep)
	if err != nil {
		return err
	}
	//wfsimvet:ignore lockscope swapping the log handle must be atomic with the counters it serializes
	if cerr := s.f.Close(); cerr != nil {
		s.opts.Warnf("storage: close pre-compaction log handle: %v", cerr)
	}
	s.f = f
	s.logBytes = size
	s.logRecords = n
	s.snapGen = gen
	s.symHW = len(syms)
	s.compactions++
	// The rewritten log has a clean tail built only from valid records, so
	// a rollback wedge (torn tail that could not be truncated) is healed.
	s.wedged = nil
	removeSnapshotsBefore(s.dir, gen, s.opts.Warnf)
	return nil
}

// Checkpoint is Compact guarded by staleness: it is a no-op when gen is
// already covered by the latest snapshot and the log is empty.
func (s *Store) Checkpoint(gen uint64, wfs []*workflow.Workflow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if gen == s.snapGen && s.logRecords == 0 {
		return nil
	}
	return s.compactLocked(gen, wfs)
}

// Close closes the store. Further Commit/Compact calls fail with ErrClosed.
// Close does not checkpoint; callers wanting a final snapshot call
// Checkpoint first (the log alone already guarantees correct recovery).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	//wfsimvet:ignore lockscope the closed flag and the handle close must be atomic so no Commit writes to a closed file
	return s.f.Close()
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the store's current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:                s.dir,
		LogBytes:           s.logBytes,
		LogRecords:         s.logRecords,
		SnapshotGeneration: s.snapGen,
		Compactions:        s.compactions,
		Recovery:           s.recovery,
	}
}

// DirHasState reports whether dir holds recoverable repository state: a
// snapshot file or at least one committed log record. A directory that was
// merely opened (empty log, no snapshots) has none.
func DirHasState(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	for _, ent := range entries {
		if _, ok := parseSnapshotName(ent.Name()); ok && !ent.IsDir() {
			return true, nil
		}
	}
	recs, _, _, _, err := readLog(filepath.Join(dir, walName))
	if err != nil {
		return false, err
	}
	return len(recs) > 0, nil
}

// WriteLegacyFixture writes a data directory in the pre-symbol-table (v1)
// layout: a v1-magic snapshot of wfs at gen and a v1-magic log containing
// one add record per tail workflow at generations gen+1, gen+2, … — the
// on-disk state a pre-migration deployment would leave behind. It exists
// for migration tests and tooling; production code always writes the
// current format.
func WriteLegacyFixture(dir string, gen uint64, wfs, tail []*workflow.Workflow) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	payload, err := json.Marshal(snapshotPayload{Gen: gen, Workflows: wfs})
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, snapshotName(gen)), snapMagicV1, payload); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, walName))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte(walMagicV1)); err != nil {
		return err
	}
	for i, wf := range tail {
		rec := logRecord{Gen: gen + uint64(i) + 1, Ops: []opRecord{{Op: "add", ID: wf.ID, Workflow: wf}}}
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := appendFrame(f, payload); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return syncDir(dir)
}
